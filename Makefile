GO ?= go

.PHONY: all build test race bench bench-engine bench-smoke vet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, with -short so the heavyweight
# stress loops run their reduced forms (the full forms run in `test`).
# This includes the telemetry snapshot-under-race tests: counters are read
# concurrently with live searches and must stay race-clean.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Substrate benchmarks (pooled vs spawn vs sequential) plus the
# machine-readable BENCH_engine.json artifact with its telemetry section.
bench-engine:
	$(GO) test -bench='BenchmarkEnginePooled' -benchmem -run='^$$' ./internal/engine/
	$(GO) run ./cmd/gtbench -enginebench BENCH_engine.json

# CI bench smoke: one benchmark iteration to prove the harness runs, then
# a fresh enginebench document validated by the -checkbench gate (schema,
# pooled >= sequential on the split-dense workload, single-worker
# telemetry sanity).
bench-smoke:
	$(GO) test -bench='BenchmarkEnginePooled' -benchtime=1x -run='^$$' ./internal/engine/
	$(GO) run ./cmd/gtbench -enginebench /tmp/bench-smoke.json -enginereps 2
	$(GO) run ./cmd/gtbench -checkbench /tmp/bench-smoke.json

vet:
	$(GO) vet ./...

# Lint gate used by CI: gofmt must be a no-op and vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
