GO ?= go

.PHONY: all build test race bench bench-engine vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector stress of the concurrent subsystems: the pooled
# work-stealing engine (and its shared transposition table), the real-game
# stress tests, and the message-passing evaluator.
race:
	$(GO) test -race ./internal/engine/ ./internal/games/ ./internal/msgpass/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Substrate benchmarks (pooled vs spawn vs sequential) plus the
# machine-readable BENCH_engine.json artifact.
bench-engine:
	$(GO) test -bench='BenchmarkEnginePooled' -benchmem -run='^$$' ./internal/engine/
	$(GO) run ./cmd/gtbench -enginebench BENCH_engine.json

vet:
	$(GO) vet ./...
