GO ?= go

.PHONY: all build test race chaos fuzz bench bench-engine bench-smoke serve-smoke solve-smoke shard-smoke load stat vet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, with -short so the heavyweight
# stress loops run their reduced forms (the full forms run in `test`).
# This includes the telemetry snapshot-under-race tests (counters read
# concurrently with live searches) and the recursive-split suite: the
# YBWC nested-abort drain, where a grandparent beta cutoff pre-empts two
# levels of split points, must stay race-clean.
race:
	$(GO) test -race -short ./...

# Fault-injection regression suite under the race detector: the chaos
# matrix (drop/dup/reorder/delay/crash/stall × seeds) on the Section 7
# machine, the injector's determinism and seed-replay tests, and the
# pooled engine's panic-isolation traps. -short trims the seed matrix to
# fit a CI budget; the full matrix runs in `test`.
chaos:
	$(GO) test -race -short -count=1 -run 'Chaos|Protocol|Perfect|Injector|Seed|Lane|Validate|ParseSpec|Panic|YBWC' \
		./internal/faultnet/ ./internal/msgpass/ ./internal/engine/

# Frame-codec fuzzing on a bounded budget: the length-prefixed TCP
# frame reader must never panic or over-allocate on arbitrary bytes.
# The seeded unit form of FuzzFrameRoundTrip already rides in `test`
# and `race`; this throws randomized mutations at it for FUZZTIME
# (default 30s) and is wired into the CI race matrix.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -race -run='^$$' -fuzz=FuzzFrameRoundTrip -fuzztime=$(FUZZTIME) ./internal/transport/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Substrate benchmarks (pooled vs spawn vs sequential) plus the
# machine-readable BENCH_engine.json artifact with its telemetry section.
bench-engine:
	$(GO) test -bench='BenchmarkEnginePooled' -benchmem -run='^$$' ./internal/engine/
	$(GO) run ./cmd/gtbench -enginebench BENCH_engine.json

# CI bench smoke: one benchmark iteration to prove the harness runs, then
# two enginebench runs appended to a fresh trajectory — validated by the
# -checkbench gate (schema, pooled >= sequential on the split-dense
# workload, single-worker telemetry sanity) and diffed by gtstat (latest
# run vs the first; both ran on this machine, so >15% is a real
# regression, not host noise). The final gtstat -ab line is the YBWC
# gate: within the latest run, recursive splitting (pooled) must not be
# more than 10% slower on wall clock than spine-only (pooled_spine) at
# any worker width — same run, same runner, so host speed cancels out.
# The Prometheus exposition of the instrumented pass lands in
# /tmp/bench-smoke.prom.
bench-smoke:
	$(GO) test -bench='BenchmarkEnginePooled' -benchtime=1x -run='^$$' ./internal/engine/
	rm -f /tmp/bench-smoke.json
	$(GO) run ./cmd/gtbench -enginebench /tmp/bench-smoke.json -enginereps 2
	$(GO) run ./cmd/gtbench -enginebench /tmp/bench-smoke.json -enginereps 2 -promout /tmp/bench-smoke.prom
	$(GO) run ./cmd/gtbench -checkbench /tmp/bench-smoke.json
	$(GO) run ./cmd/gtstat -threshold 0.15 /tmp/bench-smoke.json
	$(GO) run ./cmd/gtstat -ab pooled:pooled_spine -metric ns_per_op -threshold 0.10 /tmp/bench-smoke.json

# Serving-layer smoke (CI gate): boot a race-built gtserve on an
# ephemeral port, drive it with gtload, and assert exact search values,
# /metrics exposure, overload shedding (429/503) and a clean SIGTERM
# drain. Artifacts (logs, metrics scrape) in serve-smoke-artifacts/.
serve-smoke:
	./scripts/serve_smoke.sh

# Proof-number solver smoke (CI gate): boot a race-built gtserve, assert
# exact Sprague-Grundy verdicts through /v1/solve, a concurrent solve
# burst, a mid-solve client cancel (pns counters must go flat — workers
# released — and the partial tree parked), then run the gtprove bench
# suite into the artifact dir. Artifacts in solve-smoke-artifacts/.
solve-smoke:
	./scripts/solve_smoke.sh

# Distributed serving smoke (CI gate): a race-built three-process ring
# (coordinator + two shard workers over TCP), exact values under
# fan-out, kill -9 of one worker mid-burst (values stay exact, orphaned
# tasks reissued), /metrics from all three processes, and — on hosts
# with more than one CPU — a 2-worker vs 1-worker qps scaling ratio.
# Artifacts in shard-smoke-artifacts/.
shard-smoke:
	./scripts/shard_smoke.sh

# Regenerate BENCH_serve.json: the per-request baseline and the resident
# service measured on the identical workload, gated by gtstat on QPS.
load:
	./scripts/load_compare.sh BENCH_serve.json

# Diff the committed trajectory: latest run vs all earlier runs, failing
# on a >15% nodes/sec regression in any aligned configuration.
stat:
	$(GO) run ./cmd/gtstat BENCH_engine.json

vet:
	$(GO) vet ./...

# Lint gate used by CI: gofmt must be a no-op and vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
