package gametree_test

// One benchmark per reproduction experiment (E1-E13, see DESIGN.md and
// EXPERIMENTS.md) plus micro-benchmarks of the underlying machinery. The
// headline quantity of each experiment is attached to the benchmark via
// b.ReportMetric, so `go test -bench=.` regenerates the paper's numbers.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"gametree"
)

// sink defeats dead-code elimination across benchmark iterations.
var sink atomic.Int64

func mustMetrics(b *testing.B) func(gametree.Metrics, error) gametree.Metrics {
	return func(m gametree.Metrics, err error) gametree.Metrics {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(m.Steps)
		return m
	}
}

func mustExpand(b *testing.B) func(gametree.ExpandMetrics, error) gametree.ExpandMetrics {
	return func(m gametree.ExpandMetrics, err error) gametree.ExpandMetrics {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(m.Steps)
		return m
	}
}

// BenchmarkE1TeamSolve — Proposition 1: Team SOLVE's sqrt(p) speedup on
// the maximal-pruning family.
func BenchmarkE1TeamSolve(b *testing.B) {
	t := gametree.BestCaseNOR(2, 14, 1)
	seq := mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{}))
	const p = 64
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.TeamSolve(t, p, gametree.Options{}))
	}
	b.ReportMetric(float64(seq.Steps)/float64(last.Steps), "speedup")
	b.ReportMetric(8, "sqrt(p)")
}

// BenchmarkE2ParallelSolve — Theorem 1: width-1 linear speedup on
// worst-case B(2,14).
func BenchmarkE2ParallelSolve(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 14, 1)
	seq := mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{}))
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.ParallelSolve(t, 1, gametree.Options{}))
	}
	speedup := float64(seq.Steps) / float64(last.Steps)
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(speedup/float64(t.Height+1), "c")
}

// BenchmarkE3TotalWork — Corollary 1: W(T)/S(T) stays constant.
func BenchmarkE3TotalWork(b *testing.B) {
	t := gametree.IIDNor(2, 14, gametree.StationaryBias(2), 1)
	seq := mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{}))
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.ParallelSolve(t, 1, gametree.Options{}))
	}
	b.ReportMetric(float64(last.Work)/float64(seq.Work), "W/S")
}

// BenchmarkE4StepBound — Proposition 3: width-1 on the skeleton H_T.
func BenchmarkE4StepBound(b *testing.B) {
	t := gametree.IIDNor(2, 14, gametree.StationaryBias(2), 1)
	seq := mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{RecordLeaves: true}))
	h, _ := gametree.Skeleton(t, seq.Leaves)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustMetrics(b)(gametree.ParallelSolve(h, 1, gametree.Options{}))
	}
}

// BenchmarkE5LowerBounds — Facts 1-2: sequential work on the best case
// meets the proof-tree bound.
func BenchmarkE5LowerBounds(b *testing.B) {
	t := gametree.BestCaseNOR(2, 16, 1)
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{}))
	}
	b.ReportMetric(float64(last.Work)/float64(gametree.Fact1(2, 16)), "work/bound")
}

// BenchmarkE6ParallelAlphaBeta — Theorem 3 on i.i.d. M(2,12).
func BenchmarkE6ParallelAlphaBeta(b *testing.B) {
	t := gametree.IIDMinMax(2, 12, -1_000_000, 1_000_000, 1)
	seq := mustMetrics(b)(gametree.SequentialAlphaBeta(t, gametree.Options{}))
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.ParallelAlphaBeta(t, 1, gametree.Options{}))
	}
	speedup := float64(seq.Steps) / float64(last.Steps)
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(speedup/float64(t.Height+1), "c")
}

// BenchmarkE7NodeExpansion — Theorem 4 in the node-expansion model.
func BenchmarkE7NodeExpansion(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	seq := mustExpand(b)(gametree.NSequentialSolve(t, gametree.ExpandOptions{}))
	var last gametree.ExpandMetrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustExpand(b)(gametree.NParallelSolve(t, 1, gametree.ExpandOptions{}))
	}
	b.ReportMetric(float64(seq.Steps)/float64(last.Steps), "speedup")
}

// BenchmarkE8Randomized — Theorem 5: R-Parallel SOLVE on the worst case.
func BenchmarkE8Randomized(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExpand(b)(gametree.RParallelSolve(t, 1, int64(i), gametree.ExpandOptions{}))
	}
}

// BenchmarkE9GoldenBias — Section 6's critical-bias instances.
func BenchmarkE9GoldenBias(b *testing.B) {
	t := gametree.IIDNor(2, 14, gametree.StationaryBias(2), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustMetrics(b)(gametree.ParallelSolve(t, 1, gametree.Options{}))
	}
}

// BenchmarkE10WidthSweep — Conclusion: widths 0..3.
func BenchmarkE10WidthSweep(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	for _, w := range []int{0, 1, 2, 3} {
		b.Run("width="+string(rune('0'+w)), func(b *testing.B) {
			var last gametree.Metrics
			for i := 0; i < b.N; i++ {
				last = mustMetrics(b)(gametree.ParallelSolve(t, w, gametree.Options{}))
			}
			b.ReportMetric(float64(last.Processors), "procs")
		})
	}
}

// BenchmarkE11NearUniform — Corollary 2 instances.
func BenchmarkE11NearUniform(b *testing.B) {
	t := gametree.NearUniform(gametree.NOR, 4, 10, 0.5, 0.5, 1,
		func(i int) int32 { return int32(i) & 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustMetrics(b)(gametree.ParallelSolve(t, 1, gametree.Options{}))
	}
}

// BenchmarkE12MessagePassing — Section 7 with one goroutine per level.
func BenchmarkE12MessagePassing(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gametree.EvaluateMessagePassing(t, gametree.MsgPassOptions{})
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(m.Expansions)
	}
}

// BenchmarkE12Engine — wall-clock parallel speedup on Connect-4, on the
// pooled work-stealing substrate. nodes/sec and allocs/op are the headline
// metrics; the worker sweep feeds BENCH_engine.json (cmd/gtbench -enginebench).
func BenchmarkE12Engine(b *testing.B) {
	pos := gametree.StandardConnect4()
	const depth = 7
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			r := gametree.Search(pos, depth)
			nodes += r.Nodes
		}
		sink.Add(nodes)
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			r, err := gametree.SearchParallel(context.Background(), pos, depth, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			nodes += r.Nodes
		}
		sink.Add(nodes)
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
	})
	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var nodes int64
			for i := 0; i < b.N; i++ {
				r, err := gametree.SearchParallel(context.Background(), pos, depth, w)
				if err != nil {
					b.Fatal(err)
				}
				nodes += r.Nodes
			}
			sink.Add(nodes)
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
		})
	}
}

// BenchmarkE13Constant — the measured Theorem 1 constant at n=16.
func BenchmarkE13Constant(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 16, 1)
	seq := mustMetrics(b)(gametree.SequentialSolve(t, gametree.Options{}))
	var last gametree.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = mustMetrics(b)(gametree.ParallelSolve(t, 1, gametree.Options{}))
	}
	b.ReportMetric(float64(seq.Steps)/float64(last.Steps)/17, "c")
}

// --- micro-benchmarks -------------------------------------------------------

func BenchmarkUniformGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := gametree.Uniform(gametree.NOR, 2, 14, nil)
		sink.Add(int64(t.Len()))
	}
}

func BenchmarkEvaluateReference(b *testing.B) {
	t := gametree.IIDMinMax(2, 14, -1000, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Add(int64(t.Evaluate()))
	}
}

func BenchmarkClassicalAlphaBeta(b *testing.B) {
	t := gametree.IIDMinMax(4, 7, -1000, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := gametree.AlphaBeta(t)
		sink.Add(r.Leaves)
	}
}

func BenchmarkScout(b *testing.B) {
	t := gametree.IIDMinMax(4, 7, -1000, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := gametree.Scout(t)
		sink.Add(r.Leaves)
	}
}

func BenchmarkRSequentialSolve(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, w := gametree.RSequentialSolve(t, int64(i))
		sink.Add(w)
	}
}

func BenchmarkHornProofTree(b *testing.B) {
	kb, goal := gametree.LayeredHornKB(5, 4, 3, 2, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := kb.ProofTree(goal, 0)
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(int64(t.Len()))
	}
}

// --- benchmarks for the extension systems ------------------------------------

func BenchmarkSSS(b *testing.B) {
	t := gametree.WorstOrderedMinMax(2, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := gametree.SSS(t)
		sink.Add(r.Leaves)
	}
}

func BenchmarkMsgPassAlphaBeta(b *testing.B) {
	t := gametree.IIDMinMax(2, 10, -1000, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gametree.EvaluateMessagePassingAlphaBeta(t, gametree.MsgPassOptions{})
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(m.Expansions)
	}
}

func BenchmarkParallelSolveFixed(b *testing.B) {
	t := gametree.WorstCaseNOR(2, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gametree.ParallelSolveFixed(t, 3, 8, gametree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(m.Steps)
	}
}

func BenchmarkTraceParallelSolve(b *testing.B) {
	t := gametree.IIDNor(2, 12, gametree.StationaryBias(2), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steps, _, err := gametree.TraceParallelSolve(t, 1, gametree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(int64(len(steps)))
	}
}

func BenchmarkEngineTT(b *testing.B) {
	pos := gametree.StandardConnect4()
	const depth = 7
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink.Add(gametree.Search(pos, depth).Nodes)
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab := gametree.NewTranspositionTable(1 << 16)
			r, err := gametree.SearchTT(context.Background(), pos, depth, gametree.EngineOptions{Table: tab})
			if err != nil {
				b.Fatal(err)
			}
			sink.Add(r.Nodes)
		}
	})
}

func BenchmarkDomineering(b *testing.B) {
	pos := gametree.NewDomineering(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gametree.SearchTT(context.Background(), pos, 9, gametree.EngineOptions{Table: gametree.NewTranspositionTable(1 << 14)})
		if err != nil {
			b.Fatal(err)
		}
		sink.Add(r.Nodes)
	}
}
