package main

// Engine substrate benchmark → BENCH_engine.json.
//
// `gtbench -enginebench BENCH_engine.json` measures the game engine's
// execution substrates and appends one run to a machine-readable JSON
// trajectory (internal/benchfmt): machine info, the commit, and one
// record per configuration with ns/op, nodes/op, nodes/sec, allocs/op
// and bytes/op. Two workloads are measured:
//
//   - "tree": a pessimally-ordered synthetic tree (engine.NewPessimalTree)
//     where alpha-beta prunes little and nearly every interior node splits
//     — the regime where per-split scheduling overhead dominates, so the
//     spawn-vs-pooled substrate difference is the signal.
//   - "connect4": standard 7x6 Connect-4 at fixed depth — a real game
//     whose per-node cost (move generation, boxing) is the signal.
//
// Configurations: sequential negamax, the legacy goroutine-per-split
// "spawn" cascade (engine.SearchParallelSpawn), and the pooled
// work-stealing cascade across a worker sweep. Each run is stamped with
// the commit, UTC date, Go version and GOMAXPROCS and appended to the
// document's runs[] history (the latest run is mirrored at the top
// level for v1 consumers); regressions show up as a broken time series,
// and `gtstat` turns two points of it into a pass/fail verdict.

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"gametree/internal/benchfmt"
	"gametree/internal/engine"
	"gametree/internal/games"
	"gametree/internal/telemetry"
)

// measure times reps runs of search (after one untimed warm-up), with
// allocation counts from runtime.ReadMemStats deltas. Ops here are
// short (around a millisecond on the tree workload), so the mean over
// reps is at the mercy of any scheduler hiccup landing in one rep;
// NsPerOp and the derived NodesPerSec therefore report the *median* rep
// — the gtstat gates compare medians, which stay put when one rep is
// perturbed. Nodes and allocation columns stay means over all reps.
func measure(workload, name string, workers, reps int, search func() (engine.Result, error)) (benchfmt.Item, error) {
	if _, err := search(); err != nil {
		return benchfmt.Item{}, fmt.Errorf("%s/%s: %w", workload, name, err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var nodes int64
	var value int32
	repNs := make([]float64, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, err := search()
		repNs[i] = float64(time.Since(start).Nanoseconds())
		if err != nil {
			return benchfmt.Item{}, fmt.Errorf("%s/%s: %w", workload, name, err)
		}
		nodes += r.Nodes
		value = r.Value
	}
	runtime.ReadMemStats(&after)
	sort.Float64s(repNs)
	medNs := repNs[reps/2]
	if reps%2 == 0 {
		medNs = (repNs[reps/2-1] + repNs[reps/2]) / 2
	}
	nodesPerOp := float64(nodes) / float64(reps)
	return benchfmt.Item{
		Workload:    workload,
		Name:        name,
		Workers:     workers,
		Reps:        reps,
		NsPerOp:     medNs,
		NodesPerOp:  nodesPerOp,
		NodesPerSec: nodesPerOp / (medNs / 1e9),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
		Value:       value,
	}, nil
}

// benchWorkload measures every substrate configuration on one position.
// plain is the seed-engine view of the position (no MoveAppender); pos is
// the preferred view (with AppendMoves where the game supports it).
func benchWorkload(workload string, plain, pos engine.Position, depth, reps int) ([]benchfmt.Item, error) {
	ctx := context.Background()
	maxWorkers := runtime.GOMAXPROCS(0)
	var items []benchfmt.Item

	seq, err := measure(workload, "sequential", 0, reps, func() (engine.Result, error) {
		return engine.Search(plain, depth), nil
	})
	if err != nil {
		return nil, err
	}
	items = append(items, seq)

	spawn, err := measure(workload, "spawn", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelSpawn(ctx, plain, depth, maxWorkers)
	})
	if err != nil {
		return nil, err
	}
	items = append(items, spawn)

	// The pooled sweep measures both splitting disciplines at every width:
	// "pooled" is recursive YBWC (the engine default), "pooled_spine" the
	// pre-YBWC spine-only splitter. The pairs share (workload, workers),
	// which is what the gtstat -ab ybwc gate aligns on. 8 workers is in
	// the sweep even on narrower hosts — oversubscription is part of what
	// the YBWC-vs-spine comparison must survive.
	workers := []int{1, 2, 4, 8}
	if maxWorkers != 1 && maxWorkers != 2 && maxWorkers != 4 && maxWorkers != 8 {
		workers = append(workers, maxWorkers)
	}
	for _, w := range workers {
		w := w
		item, err := measure(workload, "pooled", w, reps, func() (engine.Result, error) {
			return engine.SearchParallel(ctx, pos, depth, w)
		})
		if err != nil {
			return nil, err
		}
		item.YBWC = "on"
		items = append(items, item)

		spine, err := measure(workload, "pooled_spine", w, reps, func() (engine.Result, error) {
			return engine.SearchParallelOpt(ctx, pos, depth,
				engine.SearchOptions{Workers: w, SpineOnly: true})
		})
		if err != nil {
			return nil, err
		}
		spine.YBWC = "off"
		items = append(items, spine)
	}

	// Watermark probe (ROADMAP "splitting knobs" open item), tree
	// workload only — the split-dense regime is where an eagerly-opened
	// split could pay. pooled_wmK holds the demand-driven split gate K
	// tasks above drained, so a thief arriving between splits finds work
	// queued instead of stalling; the "pooled" rows above are the
	// watermark-0 baseline. The default only flips on a ≥5% geomean
	// nodes/sec win across the sweep (reported by runEngineBench).
	if workload == "tree" {
		for _, wm := range []int{1, 2} {
			wm := wm
			for _, w := range workers {
				w := w
				item, err := measure(workload, fmt.Sprintf("pooled_wm%d", wm), w, reps, func() (engine.Result, error) {
					return engine.SearchParallelOpt(ctx, pos, depth,
						engine.SearchOptions{Workers: w, Watermark: wm})
				})
				if err != nil {
					return nil, err
				}
				item.YBWC = "on"
				items = append(items, item)
			}
		}
	}

	for i := range items {
		it := &items[i]
		if it.Value != seq.Value {
			return nil, fmt.Errorf("%s/%s(workers=%d): value %d disagrees with sequential %d",
				workload, it.Name, it.Workers, it.Value, seq.Value)
		}
		if it.Name != "sequential" {
			it.SpeedupVsSequential = it.NodesPerSec / seq.NodesPerSec
		}
		if it.Name == "pooled" || it.Name == "pooled_spine" {
			it.SpeedupVsSpawn = it.NodesPerSec / spawn.NodesPerSec
		}
	}
	return items, nil
}

// collectTelemetry runs one instrumented pooled search per configuration
// of interest on the session recorder and returns the resulting reports
// (counters plus the histogram quantiles — abort-drain latency, task run
// time, steal retries). These runs are untimed — the timed benchmark
// rows stay uninstrumented so the trajectory is not polluted by counter
// overhead. The recorder is Reset before each configuration so every
// report stands alone; the last configuration's counters are left live
// for the /metrics endpoint and -promout. When tracePath is non-empty
// the 4-way tree run's split-point spans are written there as Chrome
// trace_event JSON (load via chrome://tracing or Perfetto).
func collectTelemetry(rec *telemetry.Recorder, depth int, tracePath string, deepProbe bool) ([]benchfmt.TelemetryEntry, error) {
	ctx := context.Background()
	maxWorkers := runtime.GOMAXPROCS(0)
	var entries []benchfmt.TelemetryEntry

	run := func(workload, name string, workers int, pos engine.Position, d int, table *engine.Table, spine bool) error {
		rec.Reset()
		if _, err := engine.SearchParallelOpt(ctx, pos, d,
			engine.SearchOptions{Table: table, Workers: workers, Telemetry: rec, SpineOnly: spine}); err != nil {
			return fmt.Errorf("telemetry %s/%s(workers=%d): %w", workload, name, workers, err)
		}
		ybwc := "on"
		if spine {
			ybwc = "off"
		}
		entries = append(entries, benchfmt.TelemetryEntry{
			Workload: workload, Name: name, Workers: workers, YBWC: ybwc,
			Report: rec.Snapshot().Report(),
		})
		return nil
	}

	// Split-dense synthetic tree: single-worker runs under both splitting
	// disciplines (steal counters must read zero there; the YBWC run also
	// pins that nested cutoffs fire with no concurrency at all), then
	// 4-way concurrency so steal and abort-drain figures are populated
	// even on narrow hosts — again on vs off, the E12g comparison pair.
	tree := engine.NewPessimalTree(8, 4, 0)
	if err := run("tree", "pooled", 1, (*engine.BenchTreeAppender)(tree), 8, nil, false); err != nil {
		return nil, err
	}
	if err := run("tree", "pooled_spine", 1, (*engine.BenchTreeAppender)(tree), 8, nil, true); err != nil {
		return nil, err
	}
	if tracePath != "" {
		rec.EnableTrace(0)
	}
	concurrency := 4
	if maxWorkers > concurrency {
		concurrency = maxWorkers
	}
	if err := run("tree", "pooled", concurrency, (*engine.BenchTreeAppender)(tree), 8, nil, false); err != nil {
		return nil, err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if err := run("tree", "pooled_spine", concurrency, (*engine.BenchTreeAppender)(tree), 8, nil, true); err != nil {
		return nil, err
	}

	// Real game with a shared transposition table: TT probe/hit/eviction
	// counters and the probe-depth histogram are the signal here.
	if err := run("connect4", "pooled_tt", maxWorkers,
		games.StandardConnect4(), depth, engine.NewTable(1<<18), false); err != nil {
		return nil, err
	}

	// Deep probe: Connect-4 at depth 12, the E12f workload where the
	// spine-only engine showed abort_drain_ns n=0 and a 3000x task-size
	// skew — the recursive-YBWC entry must show drains firing. Opt-in
	// (-deepprobe), not part of the CI smoke pass; the committed
	// BENCH_engine.json carries it under its own name so the depth-12
	// report is distinguishable from the depth-8 pooled_tt entry.
	if deepProbe {
		if err := run("connect4", "pooled_tt_deep", concurrency,
			games.StandardConnect4(), 12, engine.NewTable(1<<20), false); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// runEngineBench measures both workloads and appends the run to the
// trajectory at path (creating the document if absent, upgrading a v1
// snapshot in place). The instrumented telemetry passes run on rec —
// shared with the -pprof /metrics endpoint — and, when tracePath is
// non-empty, also emit a Chrome trace_event file there.
func runEngineBench(path string, depth, reps int, tracePath string, rec *telemetry.Recorder, deepProbe bool) error {
	tree := engine.NewPessimalTree(8, 4, 0)
	items, err := benchWorkload("tree", tree, (*engine.BenchTreeAppender)(tree), 8, reps)
	if err != nil {
		return err
	}
	reportWatermarkSweep(items)

	c4 := games.StandardConnect4()
	c4Items, err := benchWorkload("connect4", c4, c4, depth, reps)
	if err != nil {
		return err
	}
	items = append(items, c4Items...)

	// A shared-table configuration on the real game: fresh table per rep
	// would be dominated by the table allocation, so this row measures the
	// realistic warm-table regime (the value check still applies).
	table := engine.NewTable(1 << 18)
	maxWorkers := runtime.GOMAXPROCS(0)
	tt, err := measure("connect4", "pooled_tt", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelTT(context.Background(), c4, depth,
			engine.SearchOptions{Table: table, Workers: maxWorkers})
	})
	if err != nil {
		return err
	}
	if tt.Value != c4Items[0].Value {
		return fmt.Errorf("connect4/pooled_tt: value %d disagrees with sequential %d", tt.Value, c4Items[0].Value)
	}
	tt.YBWC = "on"
	items = append(items, tt)

	entries, err := collectTelemetry(rec, depth, tracePath, deepProbe)
	if err != nil {
		return err
	}

	doc := &benchfmt.Doc{Schema: benchfmt.SchemaV2}
	if _, statErr := os.Stat(path); statErr == nil {
		// Append to the existing trajectory; a corrupt document is an
		// error, not a silent restart of the history.
		if doc, err = benchfmt.Load(path); err != nil {
			return err
		}
	}
	doc.Machine = benchfmt.Machine{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	doc.Append(benchfmt.Run{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Commit:     vcsRevision(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: items,
		Telemetry:  entries,
	})
	return benchfmt.Write(path, doc)
}

// reportWatermarkSweep prints the pooled_wmK-vs-pooled nodes/sec
// geomean over the tree worker sweep — the decision number for the
// watermark-default question: the default flips to K only on a ≥5%
// geomean win (it has not; see EXPERIMENTS §E12).
func reportWatermarkSweep(items []benchfmt.Item) {
	base := map[int]float64{}
	for _, it := range items {
		if it.Workload == "tree" && it.Name == "pooled" {
			base[it.Workers] = it.NodesPerSec
		}
	}
	for _, wm := range []int{1, 2} {
		logSum, n := 0.0, 0
		for _, it := range items {
			if it.Workload == "tree" && it.Name == fmt.Sprintf("pooled_wm%d", wm) && base[it.Workers] > 0 {
				logSum += math.Log(it.NodesPerSec / base[it.Workers])
				n++
			}
		}
		if n == 0 {
			continue
		}
		ratio := math.Exp(logSum / float64(n))
		verdict := "default stays 0 (<5%)"
		if ratio >= 1.05 {
			verdict = "≥5% — candidate to flip the default"
		}
		fmt.Printf("gtbench: tree watermark sweep wm%d/wm0 geomean %.3fx over %d widths — %s\n",
			wm, ratio, n, verdict)
	}
}

// checkEngineBench validates a BENCH_engine.json document — the CI
// bench-smoke gate. It accepts schema v1 and v2, and asserts that the
// latest run parses, that every workload has a sequential baseline and
// at least one pooled row, and that on the split-dense "tree" workload
// the best pooled configuration is at least as fast as sequential (that
// workload has a multiple-x margin, so the assertion is robust to
// CI-runner noise; the connect4 ratio hovers near 1.0 on narrow hosts
// and is deliberately not gated).
func checkEngineBench(path string) error {
	doc, err := benchfmt.Load(path)
	if err != nil {
		return err
	}
	latest := doc.Latest()
	if latest == nil {
		return fmt.Errorf("%s: document has no runs", path)
	}
	seq := map[string]float64{}
	bestPooled := map[string]float64{}
	pooledAt := map[string]bool{}
	var spineRows []benchfmt.Item
	for _, it := range latest.Benchmarks {
		if it.NodesPerSec <= 0 {
			return fmt.Errorf("%s: %s/%s has non-positive nodes_per_sec", path, it.Workload, it.Name)
		}
		switch it.Name {
		case "sequential":
			seq[it.Workload] = it.NodesPerSec
		case "pooled":
			if it.NodesPerSec > bestPooled[it.Workload] {
				bestPooled[it.Workload] = it.NodesPerSec
			}
			pooledAt[fmt.Sprintf("%s/w%d", it.Workload, it.Workers)] = true
		case "pooled_spine":
			spineRows = append(spineRows, it)
		}
	}
	// Every spine-only row must have its YBWC counterpart at the same
	// width, or the -ab ybwc gate has nothing to align.
	for _, it := range spineRows {
		if !pooledAt[fmt.Sprintf("%s/w%d", it.Workload, it.Workers)] {
			return fmt.Errorf("%s: %s/pooled_spine(workers=%d) has no matching pooled row",
				path, it.Workload, it.Workers)
		}
	}
	for _, workload := range []string{"tree", "connect4"} {
		if seq[workload] == 0 {
			return fmt.Errorf("%s: missing sequential baseline for workload %q", path, workload)
		}
		if bestPooled[workload] == 0 {
			return fmt.Errorf("%s: missing pooled rows for workload %q", path, workload)
		}
	}
	if bestPooled["tree"] < seq["tree"] {
		return fmt.Errorf("%s: best pooled tree throughput %.0f nodes/s below sequential %.0f",
			path, bestPooled["tree"], seq["tree"])
	}
	for _, te := range latest.Telemetry {
		if te.Workers == 1 && (te.Report.Steals != 0 || te.Report.StealAttempts != 0) {
			return fmt.Errorf("%s: single-worker telemetry reports steals (%d attempts, %d steals)",
				path, te.Report.StealAttempts, te.Report.Steals)
		}
	}
	fmt.Printf("checkbench %s: ok (%d runs, %d benchmark rows, %d telemetry entries, tree pooled/seq %.2fx)\n",
		path, len(doc.Runs), len(latest.Benchmarks), len(latest.Telemetry), bestPooled["tree"]/seq["tree"])
	return nil
}

// vcsRevision digs the commit hash out of the build info; "unknown" when
// the binary was built without VCS stamping (e.g. plain `go run` in some
// configurations).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}

// writeProm dumps the session recorder's Prometheus exposition to path —
// the same text /metrics serves, as a file artifact for CI.
func writeProm(path string, rec *telemetry.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
