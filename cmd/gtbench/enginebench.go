package main

// Engine substrate benchmark → BENCH_engine.json.
//
// `gtbench -enginebench BENCH_engine.json` measures the game engine's
// execution substrates and writes a single machine-readable JSON document:
// machine info, the commit, and one record per configuration with ns/op,
// nodes/op, nodes/sec, allocs/op and bytes/op. Two workloads are measured:
//
//   - "tree": a pessimally-ordered synthetic tree (engine.NewPessimalTree)
//     where alpha-beta prunes little and nearly every interior node splits
//     — the regime where per-split scheduling overhead dominates, so the
//     spawn-vs-pooled substrate difference is the signal.
//   - "connect4": standard 7x6 Connect-4 at fixed depth — a real game
//     whose per-node cost (move generation, boxing) is the signal.
//
// Configurations: sequential negamax, the legacy goroutine-per-split
// "spawn" cascade (engine.SearchParallelSpawn), and the pooled
// work-stealing cascade across a worker sweep. The file is the first point
// of the BENCH_*.json trajectory: later commits append comparable
// documents, so regressions show up as a broken time series.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"gametree/internal/engine"
	"gametree/internal/games"
	"gametree/internal/telemetry"
)

const engineBenchSchema = "gametree/bench-engine/v1"

type engineBenchDoc struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	Commit    string            `json:"commit"`
	Machine   machineInfo       `json:"machine"`
	Results   []engineBenchItem `json:"benchmarks"`
	// Telemetry holds one search-telemetry report per instrumented
	// configuration (an extra, untimed run — the timed rows above stay
	// uninstrumented). See internal/telemetry for counter semantics.
	Telemetry []telemetryEntry `json:"telemetry,omitempty"`
}

// telemetryEntry pairs a telemetry report with the configuration that
// produced it.
type telemetryEntry struct {
	Workload string           `json:"workload"`
	Name     string           `json:"name"`
	Workers  int              `json:"workers"`
	Report   telemetry.Report `json:"report"`
}

type machineInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

type engineBenchItem struct {
	Workload    string  `json:"workload"` // tree | connect4
	Name        string  `json:"name"`     // sequential | spawn | pooled | pooled_tt
	Workers     int     `json:"workers"`  // 0 for sequential
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	NodesPerOp  float64 `json:"nodes_per_op"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Value       int32   `json:"value"` // search value: must agree per workload
	// Throughput ratios against the two baselines of the same workload
	// (zero for the baselines themselves).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	SpeedupVsSpawn      float64 `json:"speedup_vs_spawn,omitempty"`
}

// measure times reps runs of search (after one untimed warm-up), with
// allocation counts from runtime.ReadMemStats deltas.
func measure(workload, name string, workers, reps int, search func() (engine.Result, error)) (engineBenchItem, error) {
	if _, err := search(); err != nil {
		return engineBenchItem{}, fmt.Errorf("%s/%s: %w", workload, name, err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var nodes int64
	var value int32
	for i := 0; i < reps; i++ {
		r, err := search()
		if err != nil {
			return engineBenchItem{}, fmt.Errorf("%s/%s: %w", workload, name, err)
		}
		nodes += r.Nodes
		value = r.Value
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return engineBenchItem{
		Workload:    workload,
		Name:        name,
		Workers:     workers,
		Reps:        reps,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(reps),
		NodesPerOp:  float64(nodes) / float64(reps),
		NodesPerSec: float64(nodes) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
		Value:       value,
	}, nil
}

// benchWorkload measures every substrate configuration on one position.
// plain is the seed-engine view of the position (no MoveAppender); pos is
// the preferred view (with AppendMoves where the game supports it).
func benchWorkload(workload string, plain, pos engine.Position, depth, reps int) ([]engineBenchItem, error) {
	ctx := context.Background()
	maxWorkers := runtime.GOMAXPROCS(0)
	var items []engineBenchItem

	seq, err := measure(workload, "sequential", 0, reps, func() (engine.Result, error) {
		return engine.Search(plain, depth), nil
	})
	if err != nil {
		return nil, err
	}
	items = append(items, seq)

	spawn, err := measure(workload, "spawn", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelSpawn(ctx, plain, depth, maxWorkers)
	})
	if err != nil {
		return nil, err
	}
	items = append(items, spawn)

	workers := []int{1, 2, 4}
	if maxWorkers != 1 && maxWorkers != 2 && maxWorkers != 4 {
		workers = append(workers, maxWorkers)
	}
	for _, w := range workers {
		w := w
		item, err := measure(workload, "pooled", w, reps, func() (engine.Result, error) {
			return engine.SearchParallel(ctx, pos, depth, w)
		})
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}

	for i := range items {
		it := &items[i]
		if it.Value != seq.Value {
			return nil, fmt.Errorf("%s/%s(workers=%d): value %d disagrees with sequential %d",
				workload, it.Name, it.Workers, it.Value, seq.Value)
		}
		if it.Name != "sequential" {
			it.SpeedupVsSequential = it.NodesPerSec / seq.NodesPerSec
		}
		if it.Name == "pooled" {
			it.SpeedupVsSpawn = it.NodesPerSec / spawn.NodesPerSec
		}
	}
	return items, nil
}

// collectTelemetry runs one instrumented pooled search per configuration
// of interest and returns the resulting reports. These runs are untimed —
// the timed benchmark rows stay uninstrumented so the trajectory is not
// polluted by counter overhead. When tracePath is non-empty the tree
// workload's split-point spans are written there as Chrome trace_event
// JSON (load via chrome://tracing or Perfetto).
func collectTelemetry(depth int, tracePath string) ([]telemetryEntry, error) {
	ctx := context.Background()
	maxWorkers := runtime.GOMAXPROCS(0)
	var entries []telemetryEntry

	run := func(workload, name string, workers int, rec *telemetry.Recorder, pos engine.Position, d int, table *engine.Table) error {
		if _, err := engine.SearchParallelOpt(ctx, pos, d,
			engine.SearchOptions{Table: table, Workers: workers, Telemetry: rec}); err != nil {
			return fmt.Errorf("telemetry %s/%s(workers=%d): %w", workload, name, workers, err)
		}
		entries = append(entries, telemetryEntry{
			Workload: workload, Name: name, Workers: workers,
			Report: rec.Snapshot().Report(),
		})
		return nil
	}

	// Split-dense synthetic tree: one single-worker run (steal counters
	// must read zero there) and one at 4-way concurrency so steal and
	// abort-drain figures are populated even on narrow hosts.
	tree := engine.NewPessimalTree(8, 4, 0)
	rec := telemetry.NewRecorder()
	if err := run("tree", "pooled", 1, rec, (*engine.BenchTreeAppender)(tree), 8, nil); err != nil {
		return nil, err
	}
	traced := telemetry.NewRecorder()
	if tracePath != "" {
		traced.EnableTrace(0)
	}
	concurrency := 4
	if maxWorkers > concurrency {
		concurrency = maxWorkers
	}
	if err := run("tree", "pooled", concurrency, traced, (*engine.BenchTreeAppender)(tree), 8, nil); err != nil {
		return nil, err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := traced.WriteTrace(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	// Real game with a shared transposition table: TT probe/hit/eviction
	// counters are the signal here.
	ttRec := telemetry.NewRecorder()
	if err := run("connect4", "pooled_tt", maxWorkers, ttRec,
		games.StandardConnect4(), depth, engine.NewTable(1<<18)); err != nil {
		return nil, err
	}
	return entries, nil
}

// runEngineBench measures both workloads and writes the document to path.
// When tracePath is non-empty, the instrumented tree run also emits a
// Chrome trace_event file there.
func runEngineBench(path string, depth, reps int, tracePath string) error {
	tree := engine.NewPessimalTree(8, 4, 0)
	items, err := benchWorkload("tree", tree, (*engine.BenchTreeAppender)(tree), 8, reps)
	if err != nil {
		return err
	}

	c4 := games.StandardConnect4()
	c4Items, err := benchWorkload("connect4", c4, c4, depth, reps)
	if err != nil {
		return err
	}
	items = append(items, c4Items...)

	// A shared-table configuration on the real game: fresh table per rep
	// would be dominated by the table allocation, so this row measures the
	// realistic warm-table regime (the value check still applies).
	table := engine.NewTable(1 << 18)
	maxWorkers := runtime.GOMAXPROCS(0)
	tt, err := measure("connect4", "pooled_tt", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelTT(context.Background(), c4, depth,
			engine.SearchOptions{Table: table, Workers: maxWorkers})
	})
	if err != nil {
		return err
	}
	if tt.Value != c4Items[0].Value {
		return fmt.Errorf("connect4/pooled_tt: value %d disagrees with sequential %d", tt.Value, c4Items[0].Value)
	}
	items = append(items, tt)

	entries, err := collectTelemetry(depth, tracePath)
	if err != nil {
		return err
	}

	doc := engineBenchDoc{
		Schema:    engineBenchSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Commit:    vcsRevision(),
		Machine: machineInfo{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Results:   items,
		Telemetry: entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// checkEngineBench validates a BENCH_engine.json document — the CI
// bench-smoke gate. It asserts that the JSON parses against the current
// schema, that every workload has a sequential baseline and at least one
// pooled row, and that on the split-dense "tree" workload the best pooled
// configuration is at least as fast as sequential (that workload has a
// multiple-x margin, so the assertion is robust to CI-runner noise; the
// connect4 ratio hovers near 1.0 on narrow hosts and is deliberately not
// gated).
func checkEngineBench(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc engineBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != engineBenchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, engineBenchSchema)
	}
	seq := map[string]float64{}
	bestPooled := map[string]float64{}
	for _, it := range doc.Results {
		if it.NodesPerSec <= 0 {
			return fmt.Errorf("%s: %s/%s has non-positive nodes_per_sec", path, it.Workload, it.Name)
		}
		switch it.Name {
		case "sequential":
			seq[it.Workload] = it.NodesPerSec
		case "pooled":
			if it.NodesPerSec > bestPooled[it.Workload] {
				bestPooled[it.Workload] = it.NodesPerSec
			}
		}
	}
	for _, workload := range []string{"tree", "connect4"} {
		if seq[workload] == 0 {
			return fmt.Errorf("%s: missing sequential baseline for workload %q", path, workload)
		}
		if bestPooled[workload] == 0 {
			return fmt.Errorf("%s: missing pooled rows for workload %q", path, workload)
		}
	}
	if bestPooled["tree"] < seq["tree"] {
		return fmt.Errorf("%s: best pooled tree throughput %.0f nodes/s below sequential %.0f",
			path, bestPooled["tree"], seq["tree"])
	}
	for _, te := range doc.Telemetry {
		if te.Workers == 1 && (te.Report.Steals != 0 || te.Report.StealAttempts != 0) {
			return fmt.Errorf("%s: single-worker telemetry reports steals (%d attempts, %d steals)",
				path, te.Report.StealAttempts, te.Report.Steals)
		}
	}
	fmt.Printf("checkbench %s: ok (%d benchmark rows, %d telemetry entries, tree pooled/seq %.2fx)\n",
		path, len(doc.Results), len(doc.Telemetry), bestPooled["tree"]/seq["tree"])
	return nil
}

// vcsRevision digs the commit hash out of the build info; "unknown" when
// the binary was built without VCS stamping (e.g. plain `go run` in some
// configurations).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}
