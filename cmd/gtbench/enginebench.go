package main

// Engine substrate benchmark → BENCH_engine.json.
//
// `gtbench -enginebench BENCH_engine.json` measures the game engine's
// execution substrates and writes a single machine-readable JSON document:
// machine info, the commit, and one record per configuration with ns/op,
// nodes/op, nodes/sec, allocs/op and bytes/op. Two workloads are measured:
//
//   - "tree": a pessimally-ordered synthetic tree (engine.NewPessimalTree)
//     where alpha-beta prunes little and nearly every interior node splits
//     — the regime where per-split scheduling overhead dominates, so the
//     spawn-vs-pooled substrate difference is the signal.
//   - "connect4": standard 7x6 Connect-4 at fixed depth — a real game
//     whose per-node cost (move generation, boxing) is the signal.
//
// Configurations: sequential negamax, the legacy goroutine-per-split
// "spawn" cascade (engine.SearchParallelSpawn), and the pooled
// work-stealing cascade across a worker sweep. The file is the first point
// of the BENCH_*.json trajectory: later commits append comparable
// documents, so regressions show up as a broken time series.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"gametree/internal/engine"
	"gametree/internal/games"
)

const engineBenchSchema = "gametree/bench-engine/v1"

type engineBenchDoc struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	Commit    string            `json:"commit"`
	Machine   machineInfo       `json:"machine"`
	Results   []engineBenchItem `json:"benchmarks"`
}

type machineInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

type engineBenchItem struct {
	Workload    string  `json:"workload"` // tree | connect4
	Name        string  `json:"name"`     // sequential | spawn | pooled | pooled_tt
	Workers     int     `json:"workers"`  // 0 for sequential
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	NodesPerOp  float64 `json:"nodes_per_op"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Value       int32   `json:"value"` // search value: must agree per workload
	// Throughput ratios against the two baselines of the same workload
	// (zero for the baselines themselves).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	SpeedupVsSpawn      float64 `json:"speedup_vs_spawn,omitempty"`
}

// measure times reps runs of search (after one untimed warm-up), with
// allocation counts from runtime.ReadMemStats deltas.
func measure(workload, name string, workers, reps int, search func() (engine.Result, error)) (engineBenchItem, error) {
	if _, err := search(); err != nil {
		return engineBenchItem{}, fmt.Errorf("%s/%s: %w", workload, name, err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var nodes int64
	var value int32
	for i := 0; i < reps; i++ {
		r, err := search()
		if err != nil {
			return engineBenchItem{}, fmt.Errorf("%s/%s: %w", workload, name, err)
		}
		nodes += r.Nodes
		value = r.Value
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return engineBenchItem{
		Workload:    workload,
		Name:        name,
		Workers:     workers,
		Reps:        reps,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(reps),
		NodesPerOp:  float64(nodes) / float64(reps),
		NodesPerSec: float64(nodes) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
		Value:       value,
	}, nil
}

// benchWorkload measures every substrate configuration on one position.
// plain is the seed-engine view of the position (no MoveAppender); pos is
// the preferred view (with AppendMoves where the game supports it).
func benchWorkload(workload string, plain, pos engine.Position, depth, reps int) ([]engineBenchItem, error) {
	ctx := context.Background()
	maxWorkers := runtime.GOMAXPROCS(0)
	var items []engineBenchItem

	seq, err := measure(workload, "sequential", 0, reps, func() (engine.Result, error) {
		return engine.Search(plain, depth), nil
	})
	if err != nil {
		return nil, err
	}
	items = append(items, seq)

	spawn, err := measure(workload, "spawn", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelSpawn(ctx, plain, depth, maxWorkers)
	})
	if err != nil {
		return nil, err
	}
	items = append(items, spawn)

	workers := []int{1, 2, 4}
	if maxWorkers != 1 && maxWorkers != 2 && maxWorkers != 4 {
		workers = append(workers, maxWorkers)
	}
	for _, w := range workers {
		w := w
		item, err := measure(workload, "pooled", w, reps, func() (engine.Result, error) {
			return engine.SearchParallel(ctx, pos, depth, w)
		})
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}

	for i := range items {
		it := &items[i]
		if it.Value != seq.Value {
			return nil, fmt.Errorf("%s/%s(workers=%d): value %d disagrees with sequential %d",
				workload, it.Name, it.Workers, it.Value, seq.Value)
		}
		if it.Name != "sequential" {
			it.SpeedupVsSequential = it.NodesPerSec / seq.NodesPerSec
		}
		if it.Name == "pooled" {
			it.SpeedupVsSpawn = it.NodesPerSec / spawn.NodesPerSec
		}
	}
	return items, nil
}

// runEngineBench measures both workloads and writes the document to path.
func runEngineBench(path string, depth, reps int) error {
	tree := engine.NewPessimalTree(8, 4, 0)
	items, err := benchWorkload("tree", tree, (*engine.BenchTreeAppender)(tree), 8, reps)
	if err != nil {
		return err
	}

	c4 := games.StandardConnect4()
	c4Items, err := benchWorkload("connect4", c4, c4, depth, reps)
	if err != nil {
		return err
	}
	items = append(items, c4Items...)

	// A shared-table configuration on the real game: fresh table per rep
	// would be dominated by the table allocation, so this row measures the
	// realistic warm-table regime (the value check still applies).
	table := engine.NewTable(1 << 18)
	maxWorkers := runtime.GOMAXPROCS(0)
	tt, err := measure("connect4", "pooled_tt", maxWorkers, reps, func() (engine.Result, error) {
		return engine.SearchParallelTT(context.Background(), c4, depth,
			engine.SearchOptions{Table: table, Workers: maxWorkers})
	})
	if err != nil {
		return err
	}
	if tt.Value != c4Items[0].Value {
		return fmt.Errorf("connect4/pooled_tt: value %d disagrees with sequential %d", tt.Value, c4Items[0].Value)
	}
	items = append(items, tt)

	doc := engineBenchDoc{
		Schema:    engineBenchSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Commit:    vcsRevision(),
		Machine: machineInfo{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Results: items,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// vcsRevision digs the commit hash out of the build info; "unknown" when
// the binary was built without VCS stamping (e.g. plain `go run` in some
// configurations).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}
