// Command gtbench regenerates the full reproduction suite E1-E13 (one
// experiment per quantitative claim of Karp & Zhang 1989) and prints the
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	gtbench                 # full suite (minutes)
//	gtbench -quick          # reduced sizes (seconds)
//	gtbench -only E2,E6     # a subset
//	gtbench -csv dir/       # additionally write each table as CSV
//	gtbench -enginebench BENCH_engine.json
//	                        # engine substrate benchmark only: write the
//	                        # machine-readable BENCH_engine.json document
//	gtbench -enginebench BENCH_engine.json -telemetry trace.json
//	                        # ... and a Chrome trace_event file of the
//	                        # instrumented run (chrome://tracing, Perfetto)
//	gtbench -enginebench BENCH_engine.json -promout metrics.prom
//	                        # ... and dump the Prometheus text exposition
//	                        # of the instrumented run to a file
//	gtbench -checkbench BENCH_engine.json
//	                        # validate a previously written document (CI)
//	gtbench -pprof localhost:6060 ...
//	                        # serve net/http/pprof + expvar + /metrics
//	                        # while running
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gametree/internal/experiments"
	"gametree/internal/telemetry"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run reduced sizes")
		only    = flag.String("only", "", "comma-separated experiment ids (e.g. E2,E6); empty = all")
		csvDir  = flag.String("csv", "", "directory to write per-table CSV files")
		jsonDir = flag.String("json", "", "directory to write per-table JSON files")
		seed    = flag.Int64("seed", 0, "override base seed (0 = default)")
		trials  = flag.Int("trials", 0, "override trials per data point (0 = default)")

		engineBench = flag.String("enginebench", "", "write the engine substrate benchmark to this JSON file and exit")
		engineDepth = flag.Int("enginedepth", 8, "search depth for -enginebench")
		engineReps  = flag.Int("enginereps", 5, "repetitions per configuration for -enginebench")
		deepProbe   = flag.Bool("deepprobe", false, "with -enginebench: add the Connect-4 depth-12 telemetry probe (minutes)")

		checkBench   = flag.String("checkbench", "", "validate an -enginebench JSON document and exit (CI smoke gate)")
		telemetryOut = flag.String("telemetry", "", "with -enginebench: also write a Chrome trace_event file of the instrumented run")
		promOut      = flag.String("promout", "", "with -enginebench: write the final Prometheus exposition to this file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060) while running")
	)
	flag.Parse()

	// Session recorder for the instrumented -enginebench passes; /metrics
	// serves its live counters and histograms (PromHandler is nil-safe, so
	// the endpoint also exists — all zeros — for plain suite runs).
	rec := telemetry.NewRecorder()

	if *pprofAddr != "" {
		startPprof(*pprofAddr, rec)
	}

	if *checkBench != "" {
		if err := checkEngineBench(*checkBench); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		return
	}

	if *engineBench != "" {
		if *engineDepth < 1 || *engineReps < 1 {
			fmt.Fprintln(os.Stderr, "gtbench: -enginedepth and -enginereps must be at least 1")
			os.Exit(1)
		}
		start := time.Now()
		if err := runEngineBench(*engineBench, *engineDepth, *engineReps, *telemetryOut, rec, *deepProbe); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		if *promOut != "" {
			if err := writeProm(*promOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "gtbench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %s in %s\n", *engineBench, time.Since(start).Round(time.Millisecond))
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Trials: *trials}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
	}

	suite := experiments.Suite()
	known := map[string]bool{}
	for _, e := range suite {
		known[e.ID] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "gtbench: unknown experiment %q\n", id)
			os.Exit(1)
		}
	}

	total := time.Now()
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Claim)
		start := time.Now()
		tables := e.Run(cfg)
		for _, tb := range tables {
			fmt.Println()
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "gtbench:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				writeTable(*csvDir, sanitize(tb.Title)+".csv", tb.RenderCSV)
			}
			if *jsonDir != "" {
				writeTable(*jsonDir, sanitize(tb.Title)+".json", tb.RenderJSON)
			}
		}
		fmt.Printf("\n(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("suite completed in %s\n", time.Since(total).Round(time.Millisecond))
}

// startPprof serves the default mux — which the blank net/http/pprof
// import populates with /debug/pprof/ and the expvar import with
// /debug/vars — on addr, in the background, plus a Prometheus /metrics
// endpoint exposing the session recorder's counters and histograms.
// Profile a live run with e.g.
// `go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10`.
func startPprof(addr string, rec *telemetry.Recorder) {
	expvar.NewString("gtbench_start").Set(time.Now().UTC().Format(time.RFC3339))
	http.Handle("/metrics", telemetry.PromHandler(rec))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench: pprof server:", err)
		}
	}()
	fmt.Printf("pprof/expvar/metrics listening on http://%s/debug/pprof/\n", addr)
}

func writeTable(dir, name string, render func(io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtbench:", err)
		os.Exit(1)
	}
	if err := render(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "gtbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gtbench:", err)
		os.Exit(1)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == ' ', r == ',', r == '(', r == ')':
			return '_'
		default:
			return '-'
		}
	}, s)
}
