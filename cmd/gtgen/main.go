// Command gtgen freezes instance suites to disk and evaluates instances
// loaded from files, so experiment inputs are reproducible artifacts
// rather than in-process randomness.
//
// Usage:
//
//	gtgen -out suite/                # write the standard suite
//	gtgen -out suite/ -seed 99       # with a different seed
//	gtgen -eval suite/               # load a suite and evaluate everything
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gametree"
	"gametree/internal/dataset"
)

func main() {
	var (
		out  = flag.String("out", "", "directory to write the standard suite to")
		eval = flag.String("eval", "", "directory to load a suite from and evaluate")
		seed = flag.Int64("seed", 1989, "suite seed")
	)
	flag.Parse()
	switch {
	case *out != "":
		m := dataset.StandardSuite(*seed)
		if err := dataset.Write(*out, m); err != nil {
			fmt.Fprintln(os.Stderr, "gtgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d instances to %s\n", len(m.Instances), *out)
	case *eval != "":
		if err := evaluate(*eval); err != nil {
			fmt.Fprintln(os.Stderr, "gtgen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "gtgen: one of -out or -eval is required")
		os.Exit(1)
	}
}

func evaluate(dir string) error {
	m, trees, err := dataset.Load(dir)
	if err != nil {
		return err
	}
	fmt.Printf("suite: %s (%d instances)\n", m.Title, len(m.Instances))
	names := make([]string, 0, len(trees))
	for n := range trees {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := trees[name]
		fmt.Printf("\n%-24s %s, value %d\n", name, t, t.Evaluate())
		if t.Kind == gametree.NOR {
			seq, err := gametree.SequentialSolve(t, gametree.Options{})
			if err != nil {
				return err
			}
			par, err := gametree.ParallelSolve(t, 1, gametree.Options{})
			if err != nil {
				return err
			}
			fmt.Printf("%-24s SOLVE: seq %d steps, width-1 %d steps (%.2fx, %d procs)\n",
				"", seq.Steps, par.Steps, float64(seq.Steps)/float64(par.Steps), par.Processors)
			continue
		}
		seq, err := gametree.SequentialAlphaBeta(t, gametree.Options{})
		if err != nil {
			return err
		}
		par, err := gametree.ParallelAlphaBeta(t, 1, gametree.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-24s alpha-beta: seq %d steps, width-1 %d steps (%.2fx, %d procs)\n",
			"", seq.Steps, par.Steps, float64(seq.Steps)/float64(par.Steps), par.Processors)
	}
	return nil
}
