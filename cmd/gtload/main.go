// Command gtload drives load at a gtserve instance (or at the engine
// directly, for a baseline) and reports completed-request throughput,
// latency quantiles and shed rates. It is the measurement half of the
// serving experiment: the same workload run with -baseline (one
// SearchParallelTT call per request, shared table, no residency, no
// coalescing) and with -url (the resident service) produces two runs in
// one benchfmt document whose rows align by Item key, so
// `gtstat -metric qps` gates the service against the baseline.
//
// Usage:
//
//	gtload -url http://127.0.0.1:8080 -duration 5s -clients 8
//	gtload -baseline -duration 5s -clients 8 -out BENCH_serve.json
//	gtload -url ... -qps 200 -maxinflight 64      # open loop
//	gtload -url ... -game ttt -depth 9 -expect 0  # exact-value assert
//
// The workload is a position mix: each request picks a position from a
// fixed hot set with probability -dup (these coalesce and cache on the
// server), otherwise a fresh never-repeated position. Generation is
// deterministic per -seed, so baseline and serve runs measure the same
// request stream.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/benchfmt"
	"gametree/internal/engine"
	"gametree/internal/metrics"
	"gametree/internal/pns"
	"gametree/internal/serve"
)

type config struct {
	url      string
	baseline bool
	solve    bool
	game     string
	depth    int
	branch   int
	hot      int
	dup      float64
	seed     int64

	clients     int
	qps         float64
	maxInflight int
	duration    time.Duration
	deadline    time.Duration
	workers     int

	shards int

	expect    int64
	hasExpect bool
	out       string
	label     string
	chaos     bool

	trace string // X-GT-Trace prefix; "" = no header
}

// counters aggregates the run. Latency is recorded only for completed
// (2xx) requests; the error rate counts everything else, shed included.
type counters struct {
	issued    atomic.Int64
	completed atomic.Int64
	shed429   atomic.Int64
	shed503   atomic.Int64
	timeout   atomic.Int64 // 504 or engine deadline
	failed    atomic.Int64 // 5xx other / transport / engine error
	dropped   atomic.Int64 // open loop: client-side inflight cap hit
	cached    atomic.Int64
	coalesced atomic.Int64
	degraded  atomic.Int64 // 200s answered in degraded mode (ring empty, local fallback)
	nodes     atomic.Int64

	latency metrics.Histogram

	mu     sync.Mutex
	values map[string]int32 // position key -> root value (consistency check)
	badkey string           // first inconsistency, "" when clean
}

func (c *counters) recordValue(key string, v int32) {
	if key == "" { // partial solve: no verdict to check
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.values == nil {
		c.values = make(map[string]int32)
	}
	if prev, ok := c.values[key]; ok {
		if prev != v && c.badkey == "" {
			c.badkey = fmt.Sprintf("%s: value %d then %d", key, prev, v)
		}
		return
	}
	c.values[key] = v
}

// workload deterministically generates the request position stream. The
// hot set is fixed up front; fresh positions never repeat.
type workload struct {
	game  string
	depth int
	mu    sync.Mutex
	rng   *rand.Rand
	hot   []string
	dup   float64
	next  uint64 // fresh-position counter (random game)
}

func newWorkload(cfg config) *workload {
	w := &workload{
		game:  cfg.game,
		depth: cfg.depth,
		rng:   rand.New(rand.NewSource(cfg.seed)),
		dup:   cfg.dup,
		next:  1 << 32, // fresh random seeds live far above the hot set
	}
	for i := 0; i < cfg.hot; i++ {
		w.hot = append(w.hot, w.fresh(cfg, uint64(i)))
	}
	return w
}

// fresh renders a position that is unique for the given ordinal.
func (w *workload) fresh(cfg config, n uint64) string {
	switch w.game {
	case "nim", "kayles":
		// Solve workload: four small heaps/rows derived from the
		// ordinal, so every instance solves well inside a deadline. The
		// space is finite (7^4 specs), so a long run revisits positions
		// — verdicts are deterministic, so the consistency check holds.
		return fmt.Sprintf("%d,%d,%d,%d", 1+n%7, 1+(n/7)%7, 1+(n/49)%7, 1+(n/343)%7)
	case "ttt":
		return "" // single position; ttt is the exact-value smoke game
	case "connect4":
		// A 4-move prefix cannot fill a column, so any digit string in
		// 0..6 is legal. Mix the ordinal so prefixes are distinct.
		var b [4]byte
		for i := range b {
			b[i] = byte('0' + (n>>(3*i)+uint64(i))%7)
		}
		return string(b[:])
	default: // random
		return fmt.Sprintf("%d:%d", n+1, cfg.branch)
	}
}

// pick returns the next request position.
func (w *workload) pick(cfg config) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.hot) > 0 && w.rng.Float64() < w.dup {
		return w.hot[w.rng.Intn(len(w.hot))]
	}
	n := w.next
	w.next++
	return w.fresh(cfg, n)
}

// issuer performs one request and classifies the outcome.
type issuer interface {
	issue(ctx context.Context, position string) outcome
}

type outcome struct {
	status    int // HTTP-style: 200, 429, 503, 504, 500
	key       string
	value     int32
	nodes     int64
	cached    bool
	coalesced bool
	degraded  bool
}

// httpIssuer drives a gtserve instance.
type httpIssuer struct {
	cfg    config
	client *http.Client
	seq    atomic.Uint64 // -trace: per-request trace-ID suffix
}

func (h *httpIssuer) issue(ctx context.Context, position string) outcome {
	if h.cfg.solve {
		return h.issueSolve(ctx, position)
	}
	body, _ := json.Marshal(serve.SearchRequest{
		Game:       h.cfg.game,
		Position:   position,
		Depth:      h.cfg.depth,
		DeadlineMs: int(h.cfg.deadline / time.Millisecond),
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.cfg.url+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return outcome{status: 500}
	}
	req.Header.Set("Content-Type", "application/json")
	if h.cfg.trace != "" {
		// Force-sample this request under a deterministic ID: the server
		// always honours an inbound X-GT-Trace, whatever its -trace-sample.
		req.Header.Set("X-GT-Trace", fmt.Sprintf("%s-%d", h.cfg.trace, h.seq.Add(1)))
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return outcome{status: 500}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return outcome{status: resp.StatusCode}
	}
	var sr serve.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return outcome{status: 500}
	}
	return outcome{
		status:    200,
		key:       sr.Game + "|" + sr.Position,
		value:     sr.Value,
		nodes:     sr.Nodes,
		cached:    sr.Cached,
		coalesced: sr.Coalesced,
		degraded:  sr.Degraded,
	}
}

// issueSolve drives POST /v1/solve. The recorded "value" is the verdict
// (1 proven, 0 disproven), which is what -expect asserts against; a
// partial (budget-stopped) answer is a completion for latency purposes
// but records no verdict, since unknown is not a value.
func (h *httpIssuer) issueSolve(ctx context.Context, position string) outcome {
	body, _ := json.Marshal(serve.SolveRequest{
		Game:       h.cfg.game,
		Position:   position,
		DeadlineMs: int(h.cfg.deadline / time.Millisecond),
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.cfg.url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return outcome{status: 500}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return outcome{status: 500}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return outcome{status: resp.StatusCode}
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return outcome{status: 500}
	}
	out := outcome{
		status:    200,
		nodes:     sr.Nodes,
		cached:    sr.Cached,
		coalesced: sr.Coalesced,
	}
	if !sr.Partial {
		out.key = sr.Game + "|" + sr.Position
		if sr.Verdict == "proven" {
			out.value = 1
		}
	}
	return out
}

// baselineIssuer is the no-residency reference: every request is an
// independent SearchParallelTT call, exactly what a stateless handler
// would do — a fresh pool spun up per request, no coalescing, no result
// cache, and (by default) a fresh per-request transposition table, so
// duplicates are re-searched from scratch. With -baseline-shared-table
// the table persists across requests, isolating the table's share of
// the resident architecture's win from the cache/coalescing share.
type baselineIssuer struct {
	cfg   config
	table *engine.Table // non-nil only with -baseline-shared-table
}

func (b *baselineIssuer) issue(ctx context.Context, position string) outcome {
	pos, key, err := serve.ParsePosition(b.cfg.game, position)
	if err != nil {
		return outcome{status: 500}
	}
	table := b.table
	if table == nil {
		table = engine.NewTable(1 << 16)
	}
	sctx, cancel := context.WithTimeout(ctx, b.cfg.deadline)
	defer cancel()
	if b.cfg.solve {
		res, err := pns.New(pos, pns.Options{Table: table}).Solve(sctx)
		if err != nil {
			if sctx.Err() != nil {
				return outcome{status: 504}
			}
			return outcome{status: 500}
		}
		out := outcome{status: 200, nodes: res.Nodes}
		if res.Verdict != pns.Unknown {
			out.key = key
			if res.Verdict == pns.Proven {
				out.value = 1
			}
		}
		return out
	}
	res, err := engine.SearchParallelTT(sctx, pos, b.cfg.depth, engine.SearchOptions{
		Workers: b.cfg.workers,
		Table:   table,
	})
	if err != nil {
		if sctx.Err() != nil {
			return outcome{status: 504}
		}
		return outcome{status: 500}
	}
	return outcome{status: 200, key: key, value: res.Value, nodes: res.Nodes}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "", "gtserve base URL (e.g. http://127.0.0.1:8080); empty requires -baseline")
	flag.BoolVar(&cfg.baseline, "baseline", false, "run searches in-process, one SearchParallelTT per request")
	flag.BoolVar(&cfg.solve, "solve", false, "drive POST /v1/solve (game must be nim or kayles); -expect asserts the verdict (1 proven, 0 disproven)")
	sharedTable := flag.Bool("baseline-shared-table", false, "with -baseline: share one table across requests instead of a fresh per-request table")
	flag.StringVar(&cfg.game, "game", "random", "workload game: random | ttt | connect4")
	flag.IntVar(&cfg.depth, "depth", 8, "search depth per request")
	flag.IntVar(&cfg.branch, "branch", 5, "branching factor (random game)")
	flag.IntVar(&cfg.hot, "hot", 16, "hot-set size for duplicate traffic")
	flag.Float64Var(&cfg.dup, "dup", 0.75, "fraction of requests drawn from the hot set")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.IntVar(&cfg.clients, "clients", 8, "closed loop: concurrent clients")
	flag.Float64Var(&cfg.qps, "qps", 0, "open loop: target request rate (0 = closed loop)")
	flag.IntVar(&cfg.maxInflight, "maxinflight", 256, "open loop: client-side in-flight cap")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.DurationVar(&cfg.deadline, "deadline", 10*time.Second, "per-request deadline")
	flag.IntVar(&cfg.workers, "workers", 0, "workers per search, stamped on the benchmark row (baseline: actually used; serve: must match the server)")
	flag.IntVar(&cfg.shards, "shards", 0, "worker processes behind the server, stamped on the benchmark row (0 = single process)")
	expect := flag.String("expect", "", "assert every completed value equals this integer")
	flag.StringVar(&cfg.out, "out", "", "append a run to this benchfmt JSON document")
	flag.StringVar(&cfg.label, "label", "", "run label (default: baseline | serve, or chaos with -chaos)")
	flag.BoolVar(&cfg.chaos, "chaos", false, "fault-drill run: label the row chaos and report the degraded-mode request count")
	flag.StringVar(&cfg.trace, "trace", "", "send X-GT-Trace: <prefix>-<n> on every request, force-sampling them for /debug/gttrace")
	flag.Parse()

	if cfg.url == "" && !cfg.baseline {
		fmt.Fprintln(os.Stderr, "gtload: need -url or -baseline")
		os.Exit(2)
	}
	if cfg.url != "" && cfg.baseline {
		fmt.Fprintln(os.Stderr, "gtload: -url and -baseline are mutually exclusive")
		os.Exit(2)
	}
	if cfg.solve && cfg.game != "nim" && cfg.game != "kayles" {
		fmt.Fprintln(os.Stderr, "gtload: -solve wants -game nim or -game kayles")
		os.Exit(2)
	}
	if *expect != "" {
		if _, err := fmt.Sscanf(*expect, "%d", &cfg.expect); err != nil {
			fmt.Fprintln(os.Stderr, "gtload: bad -expect:", err)
			os.Exit(2)
		}
		cfg.hasExpect = true
	}
	if cfg.label == "" {
		switch {
		case cfg.chaos:
			cfg.label = "chaos"
		case cfg.baseline:
			cfg.label = "baseline"
		default:
			cfg.label = "serve"
		}
	}

	var is issuer
	if cfg.baseline {
		bi := &baselineIssuer{cfg: cfg}
		if *sharedTable {
			bi.table = engine.NewTable(1 << 20)
		}
		is = bi
	} else {
		is = &httpIssuer{cfg: cfg, client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: cfg.clients + cfg.maxInflight},
		}}
	}

	w := newWorkload(cfg)
	var c counters
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	start := time.Now()
	if cfg.qps > 0 {
		runOpen(ctx, cfg, w, is, &c)
	} else {
		runClosed(ctx, cfg, w, is, &c)
	}
	wall := time.Since(start)

	ok := report(cfg, &c, wall)
	if cfg.out != "" {
		if err := writeRun(cfg, &c, wall); err != nil {
			fmt.Fprintln(os.Stderr, "gtload:", err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// runClosed keeps -clients requests permanently in flight.
func runClosed(ctx context.Context, cfg config, w *workload, is issuer, c *counters) {
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				one(ctx, cfg, w, is, c)
			}
		}()
	}
	wg.Wait()
}

// runOpen issues at a fixed rate regardless of completions (the
// overload probe: arrivals above capacity must be shed by the server,
// not absorbed by client back-pressure). The in-flight cap only bounds
// client memory; requests hitting the cap count as dropped.
func runOpen(ctx context.Context, cfg config, w *workload, is issuer, c *counters) {
	interval := time.Duration(float64(time.Second) / cfg.qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, cfg.maxInflight)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					one(ctx, cfg, w, is, c)
					<-sem
				}()
			default:
				c.dropped.Add(1)
			}
		}
	}
}

// one issues a single request and accumulates its outcome.
func one(ctx context.Context, cfg config, w *workload, is issuer, c *counters) {
	pos := w.pick(cfg)
	c.issued.Add(1)
	t0 := time.Now()
	out := is.issue(ctx, pos)
	el := time.Since(t0)
	switch out.status {
	case 200:
		c.completed.Add(1)
		c.latency.Observe(el.Nanoseconds())
		c.nodes.Add(out.nodes)
		if out.cached {
			c.cached.Add(1)
		}
		if out.coalesced {
			c.coalesced.Add(1)
		}
		if out.degraded {
			c.degraded.Add(1)
		}
		c.recordValue(out.key, out.value)
	case 429:
		c.shed429.Add(1)
	case 503:
		c.shed503.Add(1)
	case 504:
		c.timeout.Add(1)
	default:
		if ctx.Err() != nil {
			return // cut off by the run deadline, not a server failure
		}
		c.failed.Add(1)
	}
}

// report prints the summary and returns whether the run passes its own
// assertions (value consistency, -expect, any completions at all).
func report(cfg config, c *counters, wall time.Duration) bool {
	snap := c.latency.Snapshot()
	completed := c.completed.Load()
	issued := c.issued.Load()
	qps := float64(completed) / wall.Seconds()
	fmt.Printf("gtload: label=%s game=%s depth=%d dup=%.2f hot=%d wall=%s\n",
		cfg.label, cfg.game, cfg.depth, cfg.dup, cfg.hot, wall.Round(time.Millisecond))
	p50, p99 := time.Duration(0), time.Duration(0)
	if completed > 0 {
		p50 = time.Duration(snap.P50())
		p99 = time.Duration(snap.P99())
	}
	fmt.Printf("gtload: issued=%d completed=%d qps=%.1f p50=%s p99=%s\n",
		issued, completed, qps, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	fmt.Printf("gtload: shed_429=%d shed_503=%d timeout_504=%d failed=%d dropped=%d cached=%d coalesced=%d degraded=%d\n",
		c.shed429.Load(), c.shed503.Load(), c.timeout.Load(), c.failed.Load(),
		c.dropped.Load(), c.cached.Load(), c.coalesced.Load(), c.degraded.Load())

	ok := true
	if completed == 0 {
		fmt.Println("gtload: FAIL no request completed")
		ok = false
	}
	if c.badkey != "" {
		fmt.Println("gtload: FAIL inconsistent values:", c.badkey)
		ok = false
	}
	if cfg.hasExpect {
		for key, v := range c.values {
			if int64(v) != cfg.expect {
				fmt.Printf("gtload: FAIL %s: value %d, expected %d\n", key, v, cfg.expect)
				ok = false
			}
		}
	}
	return ok
}

// writeRun appends this run to the benchfmt trajectory document.
func writeRun(cfg config, c *counters, wall time.Duration) error {
	snap := c.latency.Snapshot()
	completed := c.completed.Load()
	issued := c.issued.Load()
	name := "search"
	if cfg.solve {
		name = "solve"
	}
	item := benchfmt.Item{
		Workload: fmt.Sprintf("%s-d%d-dup%02.0f", cfg.game, cfg.depth, cfg.dup*100),
		Name:     name,
		Workers:  cfg.workers,
		Shards:   cfg.shards,
		Reps:     int(completed),
		QPS:      float64(completed) / wall.Seconds(),
	}
	if completed > 0 {
		item.NsPerOp = snap.Mean()
		item.P50Ns = snap.P50()
		item.P99Ns = snap.P99()
	}
	if issued > 0 {
		item.ErrRate = float64(issued-completed) / float64(issued)
	}
	if completed > 0 {
		item.NodesPerOp = float64(c.nodes.Load()) / float64(completed)
		item.NodesPerSec = float64(c.nodes.Load()) / wall.Seconds()
	}
	item.Degraded = int(c.degraded.Load())

	doc := &benchfmt.Doc{Schema: benchfmt.SchemaV2}
	if _, statErr := os.Stat(cfg.out); statErr == nil {
		var err error
		if doc, err = benchfmt.Load(cfg.out); err != nil {
			return err
		}
	}
	doc.Machine = benchfmt.Machine{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	doc.Append(benchfmt.Run{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Commit:     vcsRevision(),
		Label:      cfg.label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []benchfmt.Item{item},
	})
	return benchfmt.Write(cfg.out, doc)
}

func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}
