// Command gtobs assembles the distributed view of the shard ring's
// request traces: it scrapes /debug/gttrace on every ring process,
// aligns worker clocks onto the coordinator's using the ping-echo
// offset estimates carried in the coordinator's dump, and merges the
// spans into one timeline — a Chrome/Perfetto trace_event file with one
// lane per process, plus a per-request latency-breakdown table.
//
// Usage:
//
//	gtobs -ring http://c:8080,http://w1:8081,http://w2:8082 \
//	      -out ring.trace.json               # Perfetto file
//	gtobs -ring ... -trace smoke             # only trace IDs with this prefix
//	gtobs -ring ... -out ring.trace.json -table=false
//
// The breakdown table (stdout) lists every request oldest-first with
// its per-stage span counts and summed durations, so "where did this
// request's latency go" is answerable from a terminal; the -out file
// answers it visually. Scrape-time identity and offset quality go to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"gametree/internal/reqtrace"
)

func main() {
	var (
		ring    = flag.String("ring", "", "comma-separated base URLs of every ring process (coordinator first by convention)")
		out     = flag.String("out", "", "write the merged Chrome trace_event JSON here")
		table   = flag.Bool("table", true, "print the per-request latency-breakdown table to stdout")
		traceID = flag.String("trace", "", "keep only trace IDs with this prefix")
		timeout = flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
		partial = flag.Bool("partial", false, "tolerate unreachable processes instead of failing")
	)
	flag.Parse()
	if *ring == "" {
		fmt.Fprintln(os.Stderr, "gtobs: -ring is required")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	var dumps []reqtrace.Dump
	for _, base := range strings.Split(*ring, ",") {
		base = strings.TrimSuffix(strings.TrimSpace(base), "/")
		if base == "" {
			continue
		}
		d, err := scrape(client, base)
		if err != nil {
			if *partial {
				fmt.Fprintf(os.Stderr, "gtobs: skipping %s: %v\n", base, err)
				continue
			}
			fmt.Fprintf(os.Stderr, "gtobs: %s: %v\n", base, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gtobs: %s: proc %d (%s) %d spans, %d dropped, %d offsets\n",
			base, d.Proc, d.Role, len(d.Spans), d.Dropped, len(d.Offsets))
		dumps = append(dumps, d)
	}
	if len(dumps) == 0 {
		fmt.Fprintln(os.Stderr, "gtobs: nothing scraped")
		os.Exit(1)
	}

	spans, base := reqtrace.Merge(dumps)
	if *traceID != "" {
		kept := spans[:0]
		for _, s := range spans {
			if strings.HasPrefix(s.Trace, *traceID) {
				kept = append(kept, s)
			}
		}
		spans = kept
		base = 0
		if len(spans) > 0 {
			base = spans[0].StartNs // merged spans are sorted by start
		}
	}
	procs := map[int]bool{}
	for _, s := range spans {
		procs[s.Proc] = true
	}
	plist := make([]int, 0, len(procs))
	for p := range procs {
		plist = append(plist, p)
	}
	sort.Ints(plist)
	fmt.Fprintf(os.Stderr, "gtobs: merged %d spans from procs %v\n", len(spans), plist)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtobs:", err)
			os.Exit(1)
		}
		if err := reqtrace.WriteChromeTrace(f, spans, base, reqtrace.MergeRoles(dumps)); err != nil {
			fmt.Fprintln(os.Stderr, "gtobs:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gtobs:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gtobs: wrote %s\n", *out)
	}
	if *table {
		if err := reqtrace.WriteBreakdown(os.Stdout, reqtrace.Breakdown(spans)); err != nil {
			fmt.Fprintln(os.Stderr, "gtobs:", err)
			os.Exit(1)
		}
	}
}

// scrape fetches one process's /debug/gttrace dump.
func scrape(client *http.Client, base string) (reqtrace.Dump, error) {
	var d reqtrace.Dump
	resp, err := client.Get(base + "/debug/gttrace")
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return d, fmt.Errorf("bad dump: %w", err)
	}
	return d, nil
}
