// Command gtplay plays tic-tac-toe or Connect-4 against the parallel
// game-tree engine, the practical face of the paper's algorithms.
//
// Usage:
//
//	gtplay -game ttt
//	gtplay -game connect4 -depth 9 -workers 8
//	gtplay -game connect4 -selfplay       # engine vs engine
//	gtplay -game connect4 -selfplay -telemetry trace.json
//	                                      # + counters on exit, Chrome trace
//	gtplay -game connect4 -selfplay -events events.jsonl
//	                                      # + structured scheduler event log
//	                                      # (replay: gttrace -events ...)
//	gtplay -pprof localhost:6060 ...      # live pprof/expvar//metrics while
//	                                      # playing
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gametree"
	"gametree/internal/games"
	"gametree/internal/telemetry"
)

func main() {
	var (
		game         = flag.String("game", "ttt", "ttt, connect4, nim, kayles or domineering")
		depth        = flag.Int("depth", 9, "search depth")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		selfplay     = flag.Bool("selfplay", false, "engine plays both sides")
		telemetryOut = flag.String("telemetry", "", "record search telemetry across the game; write a Chrome trace_event file here and print the counter report on exit")
		eventsOut    = flag.String("events", "", "record scheduler events (split-open/join/abort/steal) across the game; write a JSONL log here on exit")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof, expvar and Prometheus /metrics on this address (e.g. localhost:6060) while playing")
	)
	flag.Parse()

	// One recorder spans the whole game: every engine move accumulates
	// into the same counters, so the exit report covers the session.
	var rec *gametree.TelemetryRecorder
	if *telemetryOut != "" || *eventsOut != "" || *pprofAddr != "" {
		rec = gametree.NewTelemetryRecorder()
	}
	if *telemetryOut != "" {
		rec.EnableTrace(0)
	}
	if *eventsOut != "" {
		rec.EnableEvents(0)
	}
	if *pprofAddr != "" {
		expvar.Publish("gtplay_telemetry", expvar.Func(func() any {
			return rec.Snapshot().Report()
		}))
		http.Handle("/metrics", telemetry.PromHandler(rec))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gtplay: pprof server:", err)
			}
		}()
		fmt.Printf("pprof/expvar/metrics listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var err error
	switch *game {
	case "ttt":
		err = playTTT(*depth, *workers, *selfplay, rec, os.Stdin, os.Stdout)
	case "connect4":
		err = playConnect4(*depth, *workers, *selfplay, rec, os.Stdin, os.Stdout)
	case "nim":
		err = selfplayGame(games.NewNim(3, 5, 7), *workers, rec, os.Stdout)
	case "kayles":
		err = selfplayGame(games.NewKayles(9), *workers, rec, os.Stdout)
	case "domineering":
		err = selfplayGame(gametree.NewDomineering(4, 4), *workers, rec, os.Stdout)
	default:
		err = fmt.Errorf("unknown game %q", *game)
	}
	if err == nil && *telemetryOut != "" {
		err = dumpTelemetry(rec, *telemetryOut)
	}
	if err == nil && *eventsOut != "" {
		err = dumpEvents(rec, *eventsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtplay:", err)
		os.Exit(1)
	}
}

// dumpEvents writes the session's scheduler event log as JSONL, one
// event per line (replayable with gttrace -events).
func dumpEvents(rec *gametree.TelemetryRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteEvents(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	events, dropped := rec.Events()
	if dropped > 0 {
		fmt.Printf("wrote event log %s (%d events, %d dropped past the buffer cap)\n", path, len(events), dropped)
	} else {
		fmt.Printf("wrote event log %s (%d events)\n", path, len(events))
	}
	return nil
}

// dumpTelemetry prints the session's counter report and writes the
// recorded split-point spans as a Chrome trace_event file.
func dumpTelemetry(rec *gametree.TelemetryRecorder, path string) error {
	report, err := json.MarshalIndent(rec.Snapshot().Report(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("telemetry: %s\n", report)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote trace %s\n", path)
	return nil
}

// selfplayGame runs an engine-vs-engine game to completion on any
// Position with a String method, printing each move. The search depth is
// unbounded enough to play these small games perfectly.
func selfplayGame(start gametree.Position, workers int, rec *gametree.TelemetryRecorder, outF *os.File) error {
	out := bufio.NewWriter(outF)
	defer out.Flush()
	pos := start
	for moveNo := 1; ; moveNo++ {
		moves := pos.Moves()
		if len(moves) == 0 {
			fmt.Fprintf(out, "\nplayer to move has no moves after %d plies - they lose\n", moveNo-1)
			return nil
		}
		r, err := gametree.SearchParallelOpt(context.Background(), pos, 40,
			gametree.EngineOptions{Workers: workers, Telemetry: rec})
		if err != nil {
			return err
		}
		pos = moves[r.Best]
		fmt.Fprintf(out, "move %2d -> %v (value %d, %d nodes)\n", moveNo, pos, r.Value, r.Nodes)
		if moveNo > 200 {
			return fmt.Errorf("game did not terminate")
		}
	}
}

func engineMove(pos gametree.Position, depth, workers int, rec *gametree.TelemetryRecorder, out *bufio.Writer) (int, error) {
	start := time.Now()
	r, err := gametree.SearchParallelOpt(context.Background(), pos, depth,
		gametree.EngineOptions{Workers: workers, Telemetry: rec})
	if err != nil {
		return -1, err
	}
	fmt.Fprintf(out, "engine: move %d (value %d, %d nodes, %s)\n",
		r.Best, r.Value, r.Nodes, time.Since(start).Round(time.Millisecond))
	return r.Best, nil
}

func playTTT(depth, workers int, selfplay bool, rec *gametree.TelemetryRecorder, in *os.File, outF *os.File) error {
	out := bufio.NewWriter(outF)
	defer out.Flush()
	sc := bufio.NewScanner(in)
	pos := games.TTT{}
	human := int8(1) // X
	if selfplay {
		human = -1 // matches no player (TTT's zero-value ToMove aliases X)
	}
	for {
		fmt.Fprintf(out, "\n%s\n", pos)
		moves := pos.Moves()
		if len(moves) == 0 {
			return announceTTT(pos, out)
		}
		var idx int
		if pos.ToMove == human || (human == 1 && pos.ToMove == 0) {
			out.Flush()
			fmt.Fprint(out, "your move (cell 0-8): ")
			out.Flush()
			if !sc.Scan() {
				return nil
			}
			cell, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
			if err != nil || cell < 0 || cell > 8 || pos.Cells[cell] != 0 {
				fmt.Fprintln(out, "illegal move")
				continue
			}
			idx = -1
			for i, m := range moves {
				if pos.MoveCell(m.(games.TTT)) == cell {
					idx = i
					break
				}
			}
			if idx < 0 {
				fmt.Fprintln(out, "illegal move")
				continue
			}
		} else {
			var err error
			idx, err = engineMove(pos, depth, workers, rec, out)
			if err != nil {
				return err
			}
		}
		pos = moves[idx].(games.TTT)
	}
}

func announceTTT(pos games.TTT, out *bufio.Writer) error {
	switch pos.Winner() {
	case 1:
		fmt.Fprintln(out, "X wins")
	case 2:
		fmt.Fprintln(out, "O wins")
	default:
		fmt.Fprintln(out, "draw")
	}
	return nil
}

func playConnect4(depth, workers int, selfplay bool, rec *gametree.TelemetryRecorder, in *os.File, outF *os.File) error {
	out := bufio.NewWriter(outF)
	defer out.Flush()
	sc := bufio.NewScanner(in)
	pos := games.StandardConnect4()
	for moveNo := 0; ; moveNo++ {
		fmt.Fprintf(out, "\n%s\n", pos)
		moves := pos.Moves()
		if len(moves) == 0 || pos.Full() {
			if len(moves) == 0 && moveNo > 0 {
				fmt.Fprintf(out, "player %d wins\n", 3-pos.Mover)
			} else {
				fmt.Fprintln(out, "draw")
			}
			return nil
		}
		humanTurn := !selfplay && pos.Mover == 1
		var idx int
		if humanTurn {
			fmt.Fprintf(out, "your move (column 0-%d): ", pos.W-1)
			out.Flush()
			if !sc.Scan() {
				return nil
			}
			col, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
			if err != nil {
				fmt.Fprintln(out, "illegal move")
				moveNo--
				continue
			}
			idx = -1
			for i, m := range moves {
				if int(m.(*games.Connect4).LastCol) == col {
					idx = i
					break
				}
			}
			if idx < 0 {
				fmt.Fprintln(out, "illegal move")
				moveNo--
				continue
			}
		} else {
			var err error
			idx, err = engineMove(pos, depth, workers, rec, out)
			if err != nil {
				return err
			}
		}
		pos = moves[idx].(*games.Connect4)
	}
}
