// Command gtprove demonstrates the paper's theorem-proving motivation: it
// reads a propositional Horn knowledge base, builds the backward-chaining
// AND/OR search space as a NOR tree, and decides the query with the
// paper's sequential and parallel SOLVE algorithms.
//
// Knowledge-base syntax (one clause per line, '#' comments):
//
//	socrates.                 # a fact
//	man :- socrates.          # a rule
//	mortal :- man.
//
// Usage:
//
//	gtprove -kb rules.txt -query mortal
//	gtprove -demo                 # run the built-in demo KB
//	gtprove -layered 4,3,2,2 -bias 0.5   # synthetic layered KB benchmark
//
// The command also fronts the proof-number solver (internal/pns) on
// combinatorial game instances:
//
//	gtprove -game nim -pos 3,5,7 -workers 4   # seq PN vs PN² vs pooled PNS
//	gtprove -game andor -pos 6,3,0.4,1        # random AND/OR search space
//	gtprove -bench -out BENCH_prove.json      # benchfmt v2 trajectory
//
// Unknown games or malformed instance specs exit with status 2 and a
// usage summary on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gametree"
	"gametree/internal/games"
)

func main() {
	var (
		kbPath  = flag.String("kb", "", "knowledge base file")
		query   = flag.String("query", "", "atom to prove")
		demo    = flag.Bool("demo", false, "run the built-in demo")
		layered = flag.String("layered", "", "layers,atoms,rules,bodyLen for a synthetic KB")
		bias    = flag.Float64("bias", 0.5, "fact probability for the synthetic KB")
		seed    = flag.Int64("seed", 1, "seed for the synthetic KB")
		width   = flag.Int("width", 1, "Parallel SOLVE width")

		game     = flag.String("game", "", "proof-number solve: nim, kayles or andor")
		pos      = flag.String("pos", "", "instance spec for -game (see -game usage)")
		workers  = flag.Int("workers", 4, "pooled PNS workers for -game")
		pn2      = flag.Int64("pn2", 64, "PN² nested-search budget for -game")
		maxNodes = flag.Int64("maxnodes", 0, "expansion budget for -game (0 = unbounded)")
		bench    = flag.Bool("bench", false, "run the proof-number benchmark suite")
		benchOut = flag.String("out", "BENCH_prove.json", "output document for -bench")
		reps     = flag.Int("reps", 3, "timed reps per -bench row")
	)
	flag.Parse()

	switch {
	case *bench:
		if err := solveBench(*benchOut, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "gtprove:", err)
			os.Exit(1)
		}
		return
	case *game != "":
		if err := solveGame(*game, *pos, *workers, *pn2, *maxNodes); err != nil {
			fmt.Fprintln(os.Stderr, "gtprove:", err)
			os.Exit(1)
		}
		return
	}

	kb, goal, err := loadKB(*kbPath, *query, *demo, *layered, *bias, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtprove:", err)
		os.Exit(1)
	}
	if err := prove(kb, goal, *width); err != nil {
		fmt.Fprintln(os.Stderr, "gtprove:", err)
		os.Exit(1)
	}
}

func loadKB(path, query string, demo bool, layered string, bias float64, seed int64) (*games.KB, string, error) {
	switch {
	case demo:
		kb, err := games.NewKB([]games.Rule{
			{Head: "socrates"},
			{Head: "plato"},
			{Head: "man", Body: []string{"socrates"}},
			{Head: "man", Body: []string{"plato"}},
			{Head: "mortal", Body: []string{"man"}},
			{Head: "philosopher", Body: []string{"man", "wise"}},
			{Head: "wise", Body: []string{"plato"}},
		})
		return kb, "philosopher", err
	case layered != "":
		parts := strings.Split(layered, ",")
		if len(parts) != 4 {
			return nil, "", fmt.Errorf("-layered wants layers,atoms,rules,bodyLen")
		}
		nums := make([]int, 4)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, "", fmt.Errorf("-layered: %v", err)
			}
			nums[i] = v
		}
		kb, goal := games.LayeredKB(nums[0], nums[1], nums[2], nums[3], bias, seed)
		return kb, goal, nil
	case path != "":
		if query == "" {
			return nil, "", fmt.Errorf("-query is required with -kb")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		rules, err := parseRules(f)
		if err != nil {
			return nil, "", err
		}
		kb, err := games.NewKB(rules)
		return kb, query, err
	default:
		return nil, "", fmt.Errorf("one of -kb, -demo, -layered is required")
	}
}

func parseRules(f *os.File) ([]games.Rule, error) {
	var rules []games.Rule
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		line = strings.TrimSuffix(line, ".")
		head, body, found := strings.Cut(line, ":-")
		head = strings.TrimSpace(head)
		if head == "" {
			return nil, fmt.Errorf("line %d: empty head", lineNo)
		}
		r := games.Rule{Head: head}
		if found {
			for _, p := range strings.Split(body, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					return nil, fmt.Errorf("line %d: empty premise", lineNo)
				}
				r.Body = append(r.Body, p)
			}
		}
		rules = append(rules, r)
	}
	return rules, sc.Err()
}

func prove(kb *games.KB, goal string, width int) error {
	fmt.Printf("query: %s\n", goal)
	t, err := kb.ProofTree(goal, 0)
	if err != nil {
		return err
	}
	fmt.Printf("search space: %s\n", t)

	direct := kb.Provable(goal)
	start := time.Now()
	seq, err := gametree.SequentialSolve(t, gametree.Options{})
	if err != nil {
		return err
	}
	seqTime := time.Since(start)
	start = time.Now()
	par, err := gametree.ParallelSolve(t, width, gametree.Options{})
	if err != nil {
		return err
	}
	parTime := time.Since(start)

	provable := seq.Value == 0 // NOR root complements the AND/OR root
	if provable != direct || (par.Value == 0) != direct {
		return fmt.Errorf("internal disagreement: direct=%v seq=%v par=%v", direct, provable, par.Value == 0)
	}
	fmt.Printf("provable: %v\n", provable)
	fmt.Printf("sequential SOLVE:  %6d steps (%s)\n", seq.Steps, seqTime.Round(time.Microsecond))
	fmt.Printf("parallel SOLVE(%d): %6d steps, %d processors (%s)\n",
		width, par.Steps, par.Processors, parTime.Round(time.Microsecond))
	if par.Steps > 0 {
		fmt.Printf("model speedup: %.2fx\n", float64(seq.Steps)/float64(par.Steps))
	}
	return nil
}
