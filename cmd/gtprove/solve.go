// Proof-number solver modes of gtprove: -game solves one combinatorial
// game instance with sequential PN, PN² and pooled parallel PNS, and
// -bench runs the fixed instance suite into BENCH_prove.json (benchfmt
// v2 trajectory, same document discipline as gtbench).
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"gametree"
	"gametree/internal/benchfmt"
	"gametree/internal/engine"
	"gametree/internal/games"
	"gametree/internal/pns"
	"gametree/internal/tree"
)

// solveUsage is printed (with exit status 2) for an unknown game or a
// malformed instance spec — the caller mistyped, so the contract is the
// conventional flag-error status, not a runtime failure.
func solveUsage(w *os.File) {
	fmt.Fprint(w, `gtprove -game <game> -pos <instance> [-workers N] [-pn2 B] [-maxnodes N]

games and instance specs:
  nim     comma-separated heap sizes, e.g. -pos 3,5,7
  kayles  comma-separated row lengths, e.g. -pos 5,6
  andor   depth,branch[,bias[,seed]] for an i.i.d. random AND/OR
          (NOR) search space, e.g. -pos 6,3,0.4,1

gtprove -bench [-out BENCH_prove.json] [-reps N]
  runs the proof-number benchmark suite: sequential PN, PN² and pooled
  parallel PNS at 1, 2 and 4 workers, appended to the benchfmt v2
  trajectory document.
`)
}

// specErr reports a bad -game/-pos spec: usage on stderr, exit 2.
func specErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gtprove: "+format+"\n\n", args...)
	solveUsage(os.Stderr)
	os.Exit(2)
}

// parseInstance turns (game, spec) into a solvable position plus an
// oracle verdict (1 = first player wins, 0 = loses): Sprague-Grundy
// theory for nim and kayles, direct NOR evaluation of the materialized
// arena for andor.
func parseInstance(game, spec string) (engine.Position, int) {
	if spec == "" {
		specErr("-pos is required with -game")
	}
	ints := func(max int) []int {
		parts := strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' })
		vals := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 || v > max {
				specErr("bad %s instance %q: want integers in 0..%d", game, spec, max)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			specErr("empty %s instance", game)
		}
		return vals
	}
	switch game {
	case "nim":
		heaps := ints(64)
		pos := games.NewNim(heaps...)
		oracle := 0
		if pos.XorValue() != 0 {
			oracle = 1
		}
		return pos, oracle
	case "kayles":
		rows := ints(64)
		pos := games.NewKayles(rows...)
		oracle := 0
		if pos.GrundyValue() != 0 {
			oracle = 1
		}
		return pos, oracle
	case "andor":
		parts := strings.Split(spec, ",")
		if len(parts) < 2 || len(parts) > 4 {
			specErr("bad andor instance %q: want depth,branch[,bias[,seed]]", spec)
		}
		depth, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		branch, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		bias, seed := 0.4, int64(1)
		var err3, err4 error
		if len(parts) > 2 {
			bias, err3 = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		}
		if len(parts) > 3 {
			seed, err4 = strconv.ParseInt(strings.TrimSpace(parts[3]), 10, 64)
		}
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			depth < 1 || depth > 16 || branch < 1 || branch > 8 || bias < 0 || bias > 1 {
			specErr("bad andor instance %q: want depth,branch[,bias[,seed]]", spec)
		}
		t := tree.IIDNor(branch, depth, bias, seed)
		pos := games.NewNORTree(t, uint64(seed))
		// The arena tree is fully materialized, so the exact game value
		// doubles as the oracle: the mover wins iff the NOR root is 0.
		oracle := 0
		if t.Evaluate() == 0 {
			oracle = 1
		}
		return pos, oracle
	default:
		specErr("unknown game %q", game)
		panic("unreachable")
	}
}

// solveGame is the -game mode: solve one instance three ways, check the
// verdicts agree (and match the oracle when there is one), and print a
// small comparison table.
func solveGame(game, spec string, workers int, pn2Budget, maxNodes int64) error {
	pos, oracle := parseInstance(game, spec)
	fmt.Printf("instance: %s %s\n", game, spec)
	ctx := context.Background()
	table := engine.NewTable(1 << 16)

	type row struct {
		name string
		res  pns.Result
		dur  time.Duration
	}
	var rows []row
	run := func(name string, f func() (pns.Result, error)) error {
		start := time.Now()
		res, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, row{name, res, time.Since(start)})
		return nil
	}
	// Each run gets its own table so no variant inherits another's
	// proofs; the shared-table speedup is measured separately in -bench.
	if err := run("pn_seq", func() (pns.Result, error) {
		return pns.New(pos, pns.Options{Table: engine.NewTable(1 << 16), MaxNodes: maxNodes}).Solve(ctx)
	}); err != nil {
		return err
	}
	if err := run("pn2", func() (pns.Result, error) {
		return pns.New(pos, pns.Options{Table: engine.NewTable(1 << 16), MaxNodes: maxNodes, PN2Budget: pn2Budget}).Solve(ctx)
	}); err != nil {
		return err
	}
	pool := engine.NewPool(workers, table, nil)
	defer pool.Close()
	if err := run(fmt.Sprintf("pns_pooled(w=%d)", workers), func() (pns.Result, error) {
		return pns.New(pos, pns.Options{Table: table, MaxNodes: maxNodes}).SolveParallel(ctx, pool)
	}); err != nil {
		return err
	}

	for _, r := range rows {
		fmt.Printf("%-16s %-10s pn=%-6s dn=%-6s %8d nodes %7d expands  %s\n",
			r.name, r.res.Verdict, pnString(r.res.PN), pnString(r.res.DN),
			r.res.Nodes, r.res.Expands, r.dur.Round(time.Microsecond))
	}
	for _, r := range rows {
		if r.res.Verdict != rows[0].res.Verdict {
			return fmt.Errorf("verdict disagreement: %s says %s, %s says %s",
				rows[0].name, rows[0].res.Verdict, r.name, r.res.Verdict)
		}
	}
	want := pns.Disproven
	if oracle == 1 {
		want = pns.Proven
	}
	if got := rows[0].res.Verdict; got != pns.Unknown && got != want {
		return fmt.Errorf("oracle disagreement: oracle says %s, solver says %s", want, got)
	}
	fmt.Printf("oracle: %s (agrees)\n", want)
	return nil
}

func pnString(v uint32) string {
	if v == pns.Inf {
		return "inf"
	}
	return strconv.FormatUint(uint64(v), 10)
}

// benchInstance is one suite entry: big enough that the pooled variant
// has work to distribute, small enough for CI.
type benchInstance struct {
	workload string
	pos      engine.Position
}

func benchSuite() []benchInstance {
	return []benchInstance{
		{"nim", games.NewNim(6, 7, 8, 9)},
		{"kayles", games.NewKayles(7, 6, 5)},
		{"andor", games.NewNORTree(tree.IIDNor(3, 11, 0.38, 7), 7)},
	}
}

// solveBench is the -bench mode. For each suite instance it measures
// sequential PN, PN² and pooled PNS at 1, 2 and 4 workers — every rep on
// a fresh transposition table so rows measure cold solves — and appends
// one run to the benchfmt v2 document at path. A final warm-table rep
// per workload is reported on stdout only (TT sharing effect, not a
// trajectory row: it measures the table, not the solver).
func solveBench(path string, reps int) error {
	ctx := context.Background()
	var items []benchfmt.Item

	measure := func(workload, name string, workers int, f func() (pns.Result, error)) (benchfmt.Item, error) {
		if _, err := f(); err != nil { // warm-up rep, untimed
			return benchfmt.Item{}, fmt.Errorf("%s/%s: %w", workload, name, err)
		}
		var nodes int64
		var verdict pns.Verdict
		start := time.Now()
		for i := 0; i < reps; i++ {
			res, err := f()
			if err != nil {
				return benchfmt.Item{}, fmt.Errorf("%s/%s: %w", workload, name, err)
			}
			if res.Verdict == pns.Unknown {
				return benchfmt.Item{}, fmt.Errorf("%s/%s: solve did not finish", workload, name)
			}
			nodes += res.Nodes
			verdict = res.Verdict
		}
		elapsed := time.Since(start)
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(reps)
		nodesPerOp := float64(nodes) / float64(reps)
		it := benchfmt.Item{
			Workload:    workload,
			Name:        name,
			Workers:     workers,
			Reps:        reps,
			NsPerOp:     nsPerOp,
			NodesPerOp:  nodesPerOp,
			NodesPerSec: nodesPerOp / (nsPerOp / 1e9),
			Value:       int32(verdict),
		}
		fmt.Printf("%-8s %-12s w=%d  %10.0f nodes/op  %12.0f nodes/sec  %s\n",
			workload, name, workers, it.NodesPerOp, it.NodesPerSec, verdict)
		return it, nil
	}

	for _, bi := range benchSuite() {
		seq, err := measure(bi.workload, "pn_seq", 0, func() (pns.Result, error) {
			return pns.New(bi.pos, pns.Options{Table: engine.NewTable(1 << 16)}).Solve(ctx)
		})
		if err != nil {
			return err
		}
		items = append(items, seq)

		pn2, err := measure(bi.workload, "pn2", 0, func() (pns.Result, error) {
			return pns.New(bi.pos, pns.Options{Table: engine.NewTable(1 << 16), PN2Budget: 64}).Solve(ctx)
		})
		if err != nil {
			return err
		}
		pn2.SpeedupVsSequential = pn2.NodesPerSec / seq.NodesPerSec
		items = append(items, pn2)

		for _, w := range []int{1, 2, 4} {
			w := w
			it, err := measure(bi.workload, "pns_pooled", w, func() (pns.Result, error) {
				table := engine.NewTable(1 << 16)
				pool := engine.NewPool(w, table, nil)
				defer pool.Close()
				return pns.New(bi.pos, pns.Options{Table: table}).SolveParallel(ctx, pool)
			})
			if err != nil {
				return err
			}
			it.SpeedupVsSequential = it.NodesPerSec / seq.NodesPerSec
			items = append(items, it)
		}

		// Warm-table effect, stdout only: re-solving over a table that
		// already holds the proof touches almost nothing.
		table := engine.NewTable(1 << 16)
		if _, err := pns.New(bi.pos, pns.Options{Table: table}).Solve(ctx); err != nil {
			return err
		}
		warm, err := pns.New(bi.pos, pns.Options{Table: table}).Solve(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s warm-table resolve: %d expands (cold %0.f nodes/op)\n",
			bi.workload, warm.Expands, seq.NodesPerOp)
	}

	doc := &benchfmt.Doc{Schema: benchfmt.SchemaV2}
	if _, statErr := os.Stat(path); statErr == nil {
		var err error
		if doc, err = benchfmt.Load(path); err != nil {
			return err
		}
	}
	doc.Machine = benchfmt.Machine{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	doc.Append(benchfmt.Run{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Commit:     proveVCSRevision(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: items,
	})
	if err := benchfmt.Write(path, doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(items))
	return nil
}

// gtproveFacadeCheck pins at compile time that the public facade exposes
// the solver this command builds on.
var _ = gametree.SolveParallel

func proveVCSRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}
