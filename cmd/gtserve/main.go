// Command gtserve runs the resident search service: a fixed set of warm
// engine pools over one shared transposition table behind an HTTP JSON
// API, with admission control, request coalescing and a result cache
// (package serve has the full semantics).
//
// Usage:
//
//	gtserve -addr :8080
//	gtserve -addr 127.0.0.1:0 -portfile /tmp/gtserve.port
//	                # bind an ephemeral port and publish the bound
//	                # address for a harness to read (CI smoke test)
//	gtserve -pools 2 -workers 4 -queue 64 -cache 4096
//
// Distributed roles (package shard has the full semantics):
//
//	gtserve -role worker -shard-proc 1 -shard-listen 127.0.0.1:0 \
//	        -shard-portfile /tmp/w1.shard -shard-peers 0=<coord>
//	                # resident pool behind the shard protocol; the HTTP
//	                # address serves /metrics and /healthz only
//	gtserve -role coordinator -shard-listen 127.0.0.1:0 \
//	        -shard-peers 1=<w1>,2=<w2> -expand-depth 1
//	                # the HTTP API with searches expanded at the root
//	                # and fanned out to the workers by consistent hash
//
// Endpoints:
//
//	POST /v1/search   {"game","position","depth","deadline_ms"}
//	GET  /healthz     200 serving | 503 draining
//	GET  /metrics     Prometheus text exposition (engine + serve + shard)
//
// On SIGINT/SIGTERM the server drains: new requests are shed with 503,
// in-flight requests finish (or are cancelled when -drain-grace runs
// out, still receiving a 5xx response), then the process exits — 0 for a
// clean drain, 1 for a forced one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

// options is the parsed flag set, shared by the three roles.
type options struct {
	role     string
	addr     string
	portFile string

	workers      int
	pools        int
	queueDepth   int
	tableSize    int
	cacheEntries int
	deadline     time.Duration
	maxDeadline  time.Duration
	maxDepth     int
	horizon      int
	spineOnly    bool
	drainGrace   time.Duration
	solveNodes   int64
	solveStore   int

	shardListen   string
	shardPortFile string
	shardPeers    string
	shardProc     int
	shardProcs    string
	expandDepth   int
	taskTimeout   time.Duration
	deadAfter     time.Duration
	taskRetries   int
	localFallback bool

	traceSample int
	accessLog   string
	pprof       bool
}

func main() {
	var o options
	flag.StringVar(&o.role, "role", "single", "process role: single | coordinator | worker")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 = ephemeral)")
	flag.StringVar(&o.portFile, "portfile", "", "write the bound HTTP address to this file once listening")
	flag.IntVar(&o.workers, "workers", 0, "workers per engine pool (0 = GOMAXPROCS)")
	flag.IntVar(&o.pools, "pools", 2, "resident engine pools (max concurrent searches)")
	queue := flag.Int("queue", 64, "admission queue depth before 429 (-1 = no queue)")
	flag.IntVar(&o.tableSize, "table", 1<<20, "shared transposition table entries")
	cacheSize := flag.Int("cache", 4096, "result cache entries (-1 = disable)")
	flag.DurationVar(&o.deadline, "deadline", 2*time.Second, "default per-request deadline")
	flag.DurationVar(&o.maxDeadline, "maxdeadline", 30*time.Second, "cap on client-requested deadlines")
	flag.IntVar(&o.maxDepth, "maxdepth", 16, "maximum request depth")
	flag.IntVar(&o.horizon, "split-horizon", 0, "sequential split horizon in plies (0 = engine default)")
	ybwc := flag.Bool("ybwc", true, "recursive YBWC splitting inside speculative subtrees (false = spine-only splits)")
	flag.DurationVar(&o.drainGrace, "drain-grace", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.Int64Var(&o.solveNodes, "solve-max-nodes", 0, "per-request /v1/solve expansion budget cap (0 = server default)")
	flag.IntVar(&o.solveStore, "solve-store", 0, "parked partial solvers kept for resume (0 = server default)")

	flag.StringVar(&o.shardListen, "shard-listen", "127.0.0.1:0", "coordinator/worker: shard transport listen address")
	flag.StringVar(&o.shardPortFile, "shard-portfile", "", "coordinator/worker: write the bound shard transport address here")
	flag.StringVar(&o.shardPeers, "shard-peers", "", "coordinator/worker: comma-separated proc=host:port shard peer table (proc 0 = coordinator)")
	flag.IntVar(&o.shardProc, "shard-proc", 0, "worker: this process's shard processor id (> 0)")
	flag.StringVar(&o.shardProcs, "shard-procs", "", "comma-separated worker processor ids forming the ring (default: derived from -shard-peers); must agree across all processes")
	flag.IntVar(&o.expandDepth, "expand-depth", 1, "coordinator: plies expanded before fan-out")
	flag.DurationVar(&o.taskTimeout, "task-timeout", 2*time.Second, "coordinator: per-task reissue timeout (base of the retry backoff)")
	flag.DurationVar(&o.deadAfter, "dead-after", 3*time.Second, "coordinator: declare a worker dead after this much ping silence")
	flag.IntVar(&o.taskRetries, "task-retries", 6, "coordinator: reissues per task before it is quarantined")
	flag.BoolVar(&o.localFallback, "local-fallback", true, "coordinator: compute leaves on a resident local pool when the ring is empty or a task exhausts its retries (degraded mode, exact answers)")

	flag.IntVar(&o.traceSample, "trace-sample", 0, "record request spans for 1-in-N headerless requests (0 = only requests with an X-GT-Trace header, 1 = all)")
	flag.StringVar(&o.accessLog, "access-log", "", "append one JSON line per request to this file")
	flag.BoolVar(&o.pprof, "pprof", true, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	o.queueDepth = *queue
	if o.queueDepth < 0 {
		o.queueDepth = -1 // Config: negative = no queue
	}
	o.cacheEntries = *cacheSize
	if o.cacheEntries < 0 {
		o.cacheEntries = -1 // Config: negative = disabled
	}
	o.spineOnly = !*ybwc

	switch o.role {
	case "single":
		os.Exit(runSingle(o))
	case "coordinator":
		os.Exit(runCoordinator(o))
	case "worker":
		os.Exit(runWorker(o))
	default:
		fmt.Fprintf(os.Stderr, "gtserve: unknown -role %q (want single, coordinator or worker)\n", o.role)
		os.Exit(2)
	}
}

func runSingle(o options) int {
	rec := telemetry.NewRecorder()
	tracer := reqtrace.New(0, "single", o.traceSample, 0)
	rec.AddPromSection(telemetry.BuildInfoSection())
	rec.AddPromSection(tracer.PromSection())
	accessLog, closeLog, err := openAccessLog(o.accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	defer closeLog()
	srv := serve.New(serve.Config{
		Workers:           o.workers,
		Pools:             o.pools,
		QueueDepth:        o.queueDepth,
		TableEntries:      o.tableSize,
		CacheEntries:      o.cacheEntries,
		DefaultDeadline:   o.deadline,
		MaxDeadline:       o.maxDeadline,
		MaxDepth:          o.maxDepth,
		SplitHorizon:      o.horizon,
		SpineOnly:         o.spineOnly,
		SolveMaxNodes:     o.solveNodes,
		SolveStoreEntries: o.solveStore,
		Telemetry:         rec,
		Tracer:            tracer,
		AccessLog:         accessLog,
	})
	return serveHTTP(srv, o)
}

// openAccessLog opens (appending) the -access-log file. An empty path
// disables the log: nil writer, no-op closer.
func openAccessLog(path string) (io.Writer, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	return f, func() { f.Close() }, nil
}

// withPprof wraps a handler with the explicit net/http/pprof mux (the
// blank-import default-mux route would leak the handlers into every
// process importing this package).
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveHTTP runs the HTTP service (single or coordinator role) through
// its full lifecycle: listen, publish the port, serve, drain on signal.
func serveHTTP(srv *serve.Server, o options) int {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	bound := ln.Addr().String()
	if o.portFile != "" {
		if err := os.WriteFile(o.portFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gtserve: portfile:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "gtserve: listening on %s (role=%s pools=%d workers=%d queue=%d)\n",
		bound, o.role, o.pools, o.workers, o.queueDepth)

	handler := srv.Handler()
	if o.pprof {
		handler = withPprof(handler)
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	stop()

	fmt.Fprintf(os.Stderr, "gtserve: draining (grace %s)\n", o.drainGrace)
	dctx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer cancel()
	drainErr := srv.Drain(dctx)

	// The handlers have all answered; close the listener and idle conns.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		hs.Close()
	}

	stats := srv.Stats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "gtserve: %-18s %d\n", k, stats[k])
	}

	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gtserve: forced drain:", drainErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "gtserve: clean drain")
	return 0
}
