// Command gtserve runs the resident search service: a fixed set of warm
// engine pools over one shared transposition table behind an HTTP JSON
// API, with admission control, request coalescing and a result cache
// (package serve has the full semantics).
//
// Usage:
//
//	gtserve -addr :8080
//	gtserve -addr 127.0.0.1:0 -portfile /tmp/gtserve.port
//	                # bind an ephemeral port and publish the bound
//	                # address for a harness to read (CI smoke test)
//	gtserve -pools 2 -workers 4 -queue 64 -cache 4096
//
// Endpoints:
//
//	POST /v1/search   {"game","position","depth","deadline_ms"}
//	GET  /healthz     200 serving | 503 draining
//	GET  /metrics     Prometheus text exposition (engine + serve)
//
// On SIGINT/SIGTERM the server drains: new requests are shed with 503,
// in-flight requests finish (or are cancelled when -drain-grace runs
// out, still receiving a 5xx response), then the process exits — 0 for a
// clean drain, 1 for a forced one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 = ephemeral)")
		portFile    = flag.String("portfile", "", "write the bound address to this file once listening")
		workers     = flag.Int("workers", 0, "workers per engine pool (0 = GOMAXPROCS)")
		pools       = flag.Int("pools", 2, "resident engine pools (max concurrent searches)")
		queue       = flag.Int("queue", 64, "admission queue depth before 429 (-1 = no queue)")
		tableSize   = flag.Int("table", 1<<20, "shared transposition table entries")
		cacheSize   = flag.Int("cache", 4096, "result cache entries (-1 = disable)")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("maxdeadline", 30*time.Second, "cap on client-requested deadlines")
		maxDepth    = flag.Int("maxdepth", 16, "maximum request depth")
		horizon     = flag.Int("split-horizon", 0, "sequential split horizon in plies (0 = engine default)")
		ybwc        = flag.Bool("ybwc", true, "recursive YBWC splitting inside speculative subtrees (false = spine-only splits)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	queueDepth := *queue
	if queueDepth < 0 {
		queueDepth = -1 // Config: negative = no queue
	}
	cacheEntries := *cacheSize
	if cacheEntries < 0 {
		cacheEntries = -1 // Config: negative = disabled
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		Pools:           *pools,
		QueueDepth:      queueDepth,
		TableEntries:    *tableSize,
		CacheEntries:    cacheEntries,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxDepth:        *maxDepth,
		SplitHorizon:    *horizon,
		SpineOnly:       !*ybwc,
		Telemetry:       telemetry.NewRecorder(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gtserve: portfile:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "gtserve: listening on %s (pools=%d workers=%d queue=%d)\n",
		bound, *pools, *workers, queueDepth)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		os.Exit(1)
	}
	stop()

	fmt.Fprintf(os.Stderr, "gtserve: draining (grace %s)\n", *drainGrace)
	dctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	drainErr := srv.Drain(dctx)

	// The handlers have all answered; close the listener and idle conns.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		hs.Close()
	}

	stats := srv.Stats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "gtserve: %-18s %d\n", k, stats[k])
	}

	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gtserve: forced drain:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "gtserve: clean drain")
}
