package main

// Shard-role plumbing for gtserve: flag parsing for the peer table and
// the coordinator/worker runners. The single-process role lives in
// main.go and is untouched by any of this.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gametree/internal/engine"
	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/shard"
	"gametree/internal/telemetry"
	"gametree/internal/transport"
)

// parsePeers parses "0=127.0.0.1:7000,1=127.0.0.1:7001" into a proc →
// address map.
func parsePeers(spec string) (map[int]string, error) {
	peers := make(map[int]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		procStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want proc=host:port", part)
		}
		proc, err := strconv.Atoi(procStr)
		if err != nil {
			return nil, fmt.Errorf("peer %q: %w", part, err)
		}
		if _, dup := peers[proc]; dup {
			return nil, fmt.Errorf("peer %q: duplicate proc %d", part, proc)
		}
		peers[proc] = addr
	}
	return peers, nil
}

// workerProcs resolves the ring membership. The explicit -shard-procs
// list wins (and is mandatory for workers that learn their peers from
// hellos rather than flags — every process must agree on the ring, or
// the consistent-hash owners diverge); otherwise membership is derived
// from the peer table: every proc id above 0 (0 is the coordinator by
// convention), plus self when self is a worker.
func workerProcs(spec string, peers map[int]string, self int) ([]int, error) {
	if spec != "" {
		var procs []int
		seen := map[int]bool{}
		for _, part := range strings.Split(spec, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("-shard-procs %q: %w", spec, err)
			}
			if p <= 0 || seen[p] {
				return nil, fmt.Errorf("-shard-procs %q: ids must be positive and distinct", spec)
			}
			seen[p] = true
			procs = append(procs, p)
		}
		sort.Ints(procs)
		return procs, nil
	}
	set := map[int]bool{}
	for p := range peers {
		if p > 0 {
			set[p] = true
		}
	}
	if self > 0 {
		set[self] = true
	}
	procs := make([]int, 0, len(set))
	for p := range set {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs, nil
}

// newShardTransport builds the TCP transport for one shard process and
// optionally publishes its bound address.
func newShardTransport(listen, portFile string, self int, peers map[int]string) (*transport.TCP, error) {
	tr, err := transport.New(transport.Config{
		Listen: listen,
		Local:  []int{self},
		Peers:  peers,
		Codec:  shard.Codec{},
	})
	if err != nil {
		return nil, err
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(tr.Addr()+"\n"), 0o644); err != nil {
			tr.Close()
			return nil, fmt.Errorf("shard portfile: %w", err)
		}
	}
	return tr, nil
}

// runCoordinator runs the HTTP service with the shard coordinator as its
// search backend and blocks until shutdown. Returns the exit code.
func runCoordinator(o options) int {
	peers, err := parsePeers(o.shardPeers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 2
	}
	procs, err := workerProcs(o.shardProcs, peers, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 2
	}
	if len(procs) == 0 {
		fmt.Fprintln(os.Stderr, "gtserve: coordinator needs -shard-peers with at least one worker (proc > 0)")
		return 2
	}
	rec := telemetry.NewRecorder()
	tr, err := newShardTransport(o.shardListen, o.shardPortFile, 0, peers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	peersWithSelf := map[int]string{0: tr.Addr()}
	for p, a := range peers {
		peersWithSelf[p] = a
	}
	tracer := reqtrace.New(0, "coordinator", o.traceSample, 0)
	// The degraded-mode pool must outlive the coordinator (which may hold
	// in-flight local searches at Close), so its defer registers first.
	var fallback *engine.Pool
	if o.localFallback {
		fallback = engine.NewPoolOpt(engine.SearchOptions{Workers: o.workers}, 0)
		defer fallback.Close()
	}
	coord := shard.NewCoordinator(shard.Config{
		Net:         tr,
		Self:        0,
		Workers:     procs,
		ExpandDepth: o.expandDepth,
		TaskTimeout: o.taskTimeout,
		DeadAfter:   o.deadAfter,
		RetryBudget: o.taskRetries,
		Fallback:    fallback,
		PeerAddrs:   peersWithSelf,
		Telemetry:   rec,
		Tracer:      tracer,
	})
	// The coordinator's ping-echo estimates ride the trace dump so gtobs
	// can align worker clocks at merge time.
	tracer.SetOffsets(coord.ClockOffsets)
	rec.AddPromSection(telemetry.BuildInfoSection())
	rec.AddPromSection(tracer.PromSection())
	rec.AddPromSection(coord.PromSection())
	coord.Start()
	defer coord.Close()

	accessLog, closeLog, err := openAccessLog(o.accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	defer closeLog()

	fmt.Fprintf(os.Stderr, "gtserve: coordinator proc 0 on %s, workers %v, expand %d plies\n",
		tr.Addr(), procs, o.expandDepth)
	srv := serve.New(serve.Config{
		Pools:           o.pools,
		QueueDepth:      o.queueDepth,
		CacheEntries:    o.cacheEntries,
		DefaultDeadline: o.deadline,
		MaxDeadline:     o.maxDeadline,
		MaxDepth:        o.maxDepth,
		Telemetry:       rec,
		Backend:         coord,
		Tracer:          tracer,
		AccessLog:       accessLog,
	})
	return serveHTTP(srv, o)
}

// runWorker runs one shard worker: the resident pool behind the shard
// protocol, with /metrics and /healthz on the HTTP address for
// observability. Blocks until SIGINT/SIGTERM. Returns the exit code.
func runWorker(o options) int {
	if o.shardProc <= 0 {
		fmt.Fprintln(os.Stderr, "gtserve: worker needs -shard-proc > 0")
		return 2
	}
	peers, err := parsePeers(o.shardPeers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 2
	}
	procs, err := workerProcs(o.shardProcs, peers, o.shardProc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 2
	}
	rec := telemetry.NewRecorder()
	tr, err := newShardTransport(o.shardListen, o.shardPortFile, o.shardProc, peers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		return 1
	}
	tracer := reqtrace.New(o.shardProc, "worker", o.traceSample, 0)
	w := shard.NewWorker(shard.WorkerConfig{
		Net:           tr,
		Self:          o.shardProc,
		Coordinator:   0,
		Workers:       procs,
		PoolWorkers:   o.workers,
		TableEntries:  o.tableSize,
		SplitHorizon:  o.horizon,
		SpineOnly:     o.spineOnly,
		AdvertiseAddr: tr.Addr(),
		Telemetry:     rec,
		Tracer:        tracer,
	})
	rec.AddPromSection(telemetry.BuildInfoSection())
	rec.AddPromSection(tracer.PromSection())
	rec.AddPromSection(w.PromSection())
	w.Start()
	fmt.Fprintf(os.Stderr, "gtserve: worker proc %d on %s, ring %v\n", o.shardProc, tr.Addr(), procs)

	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.PromHandler(rec))
	mux.Handle("/debug/gttrace", reqtrace.Handler(tracer))
	if o.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, "{\"status\":\"ok\",\"role\":\"worker\",\"proc\":%d}\n", o.shardProc)
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		w.Close()
		return 1
	}
	if o.portFile != "" {
		if err := os.WriteFile(o.portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gtserve: portfile:", err)
			w.Close()
			return 1
		}
	}
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "gtserve:", err)
		w.Close()
		return 1
	}
	stop()
	fmt.Fprintln(os.Stderr, "gtserve: worker shutting down")
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	_ = hs.Shutdown(shCtx)
	w.Close()
	return 0
}
