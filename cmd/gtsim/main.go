// Command gtsim runs one game-tree evaluation algorithm on one generated
// instance and prints the step-model metrics. It is the workbench for
// exploring the paper's algorithms interactively.
//
// Usage:
//
//	gtsim -algo parallel-solve -d 2 -n 12 -width 1 -instance worst
//	gtsim -algo team-solve -p 64 -d 2 -n 14 -instance iid -bias 0.618
//	gtsim -algo parallel-ab -d 2 -n 10 -width 1 -instance iid
//	gtsim -algo msgpass -n 12 -instance worst
//	gtsim -algo msgpass -n 12 -p 4 -faults drop=0.1,dup=0.02,crash=3@50ms
//	gtsim -algo n-parallel-solve -d 3 -n 8 -width 2 -instance best
//
// Instances: worst, best, iid (NOR, with -bias; MinMax with -lo/-hi),
// best-ordered, worst-ordered (MinMax), near-uniform (with -alpha/-beta).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gametree"
)

func main() {
	var (
		algo     = flag.String("algo", "parallel-solve", "algorithm: sequential-solve, team-solve, parallel-solve, sequential-ab, parallel-ab, n-sequential-solve, n-parallel-solve, n-sequential-ab, n-parallel-ab, r-sequential-solve, r-parallel-solve, r-sequential-ab, r-parallel-ab, msgpass, minimax, alphabeta, scout")
		d        = flag.Int("d", 2, "branching factor")
		n        = flag.Int("n", 10, "tree height")
		width    = flag.Int("width", 1, "pruning-number width for parallel algorithms")
		procs    = flag.Int("p", 4, "processors for team-solve / msgpass (msgpass: 0 = one per level)")
		instance = flag.String("instance", "worst", "instance family: worst, best, iid, best-ordered, worst-ordered, near-uniform")
		bias     = flag.Float64("bias", -1, "i.i.d. leaf bias for NOR instances (-1 = stationary/hardest bias)")
		lo       = flag.Int("lo", -1000, "min leaf value for MinMax iid instances")
		hi       = flag.Int("hi", 1000, "max leaf value for MinMax iid instances")
		alpha    = flag.Float64("alpha", 0.5, "degree ratio for near-uniform instances")
		beta     = flag.Float64("beta", 0.5, "depth ratio for near-uniform instances")
		seed     = flag.Int64("seed", 1, "random seed")
		rootVal  = flag.Int("rootval", 1, "root value for worst/best NOR instances")
		dot      = flag.String("dot", "", "write the instance as Graphviz DOT to this file")
		faults   = flag.String("faults", "", "msgpass only: fault spec, e.g. drop=0.1,dup=0.02,crash=3@50ms (keys: drop, dup, reorder, delayp, delay=<dur>, crash=N@T, stall=N@T+D, seed=N)")
	)
	flag.Parse()

	if err := run(*algo, *d, *n, *width, *procs, *instance, *bias, int32(*lo), int32(*hi),
		*alpha, *beta, *seed, int32(*rootVal), *dot, *faults); err != nil {
		fmt.Fprintln(os.Stderr, "gtsim:", err)
		os.Exit(1)
	}
}

func run(algo string, d, n, width, procs int, instance string, bias float64, lo, hi int32,
	alpha, beta float64, seed int64, rootVal int32, dot, faults string) error {
	if faults != "" && algo != "msgpass" {
		return fmt.Errorf("-faults applies only to -algo msgpass (got %q): the fault-injectable network is the Section 7 machine's transport", algo)
	}
	minmax := strings.Contains(algo, "ab") || algo == "minimax" || algo == "scout"
	t, err := buildInstance(instance, minmax, d, n, bias, lo, hi, alpha, beta, seed, rootVal)
	if err != nil {
		return err
	}
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		if err := t.WriteDOT(f, "instance"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dot)
	}
	fmt.Printf("instance: %s (%s, exact value %d)\n", instance, t, t.Evaluate())

	start := time.Now()
	switch algo {
	case "sequential-solve":
		return report(gametree.SequentialSolve(t, gametree.Options{}))(start)
	case "team-solve":
		return report(gametree.TeamSolve(t, procs, gametree.Options{}))(start)
	case "parallel-solve":
		return report(gametree.ParallelSolve(t, width, gametree.Options{}))(start)
	case "sequential-ab":
		return report(gametree.SequentialAlphaBeta(t, gametree.Options{}))(start)
	case "parallel-ab":
		return report(gametree.ParallelAlphaBeta(t, width, gametree.Options{}))(start)
	case "n-sequential-solve":
		return reportExpand(gametree.NSequentialSolve(t, gametree.ExpandOptions{}))(start)
	case "n-parallel-solve":
		return reportExpand(gametree.NParallelSolve(t, width, gametree.ExpandOptions{}))(start)
	case "n-sequential-ab":
		return reportExpand(gametree.NSequentialAlphaBeta(t, gametree.ExpandOptions{}))(start)
	case "n-parallel-ab":
		return reportExpand(gametree.NParallelAlphaBeta(t, width, gametree.ExpandOptions{}))(start)
	case "r-sequential-solve":
		v, work := gametree.RSequentialSolve(t, seed)
		fmt.Printf("value=%d expansions=%d elapsed=%s\n", v, work, time.Since(start).Round(time.Microsecond))
		return nil
	case "r-parallel-solve":
		return reportExpand(gametree.RParallelSolve(t, width, seed, gametree.ExpandOptions{}))(start)
	case "r-sequential-ab":
		v, work := gametree.RSequentialAlphaBeta(t, seed)
		fmt.Printf("value=%d expansions=%d elapsed=%s\n", v, work, time.Since(start).Round(time.Microsecond))
		return nil
	case "r-parallel-ab":
		return reportExpand(gametree.RParallelAlphaBeta(t, width, seed, gametree.ExpandOptions{}))(start)
	case "msgpass":
		opt := gametree.MsgPassOptions{Processors: procs}
		if faults != "" {
			cfg, err := gametree.ParseFaultSpec(faults)
			if err != nil {
				return fmt.Errorf("-faults: %w", err)
			}
			if err := validateFaultProcs(cfg, procs, n); err != nil {
				return err
			}
			fmt.Printf("faults: %s\n", cfg.Summary())
			opt.Net = gametree.NewFaultInjector(cfg)
		}
		m, err := gametree.EvaluateMessagePassing(t, opt)
		if err != nil {
			return err
		}
		fmt.Printf("value=%d expansions=%d messages=%d processors=%d elapsed=%s\n",
			m.Value, m.Expansions, m.Messages, m.Processors, time.Since(start).Round(time.Microsecond))
		if faults != "" {
			p := m.Protocol
			fmt.Printf("protocol: retransmits=%d heartbeats=%d deaths=%d reassigned-levels=%d dup-dropped=%d memo-replies=%d\n",
				p.Retransmits, p.Heartbeats, p.Deaths, p.LevelsReassigned, p.DupDropped, p.MemoReplies)
			fmt.Printf("network: %v\n", m.Net)
		}
		return nil
	case "minimax":
		r := gametree.Minimax(t)
		fmt.Printf("value=%d leaves=%d elapsed=%s\n", r.Value, r.Leaves, time.Since(start).Round(time.Microsecond))
		return nil
	case "alphabeta":
		r := gametree.AlphaBeta(t)
		fmt.Printf("value=%d leaves=%d elapsed=%s\n", r.Value, r.Leaves, time.Since(start).Round(time.Microsecond))
		return nil
	case "scout":
		r := gametree.Scout(t)
		fmt.Printf("value=%d leaves=%d elapsed=%s\n", r.Value, r.Leaves, time.Since(start).Round(time.Microsecond))
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
}

// validateFaultProcs rejects crash/stall schedules naming processors the
// run will not have: msgpass Processors 0 (or any excess) means one per
// level, i.e. height+1 processors.
func validateFaultProcs(cfg gametree.FaultConfig, procs, height int) error {
	np := procs
	if np <= 0 || np > height+1 {
		np = height + 1
	}
	for _, c := range cfg.Crashes {
		if c.Proc < 0 || c.Proc >= np {
			return fmt.Errorf("-faults: crash names processor %d, but this run has processors 0..%d", c.Proc, np-1)
		}
	}
	for _, s := range cfg.Stalls {
		if s.Proc < 0 || s.Proc >= np {
			return fmt.Errorf("-faults: stall names processor %d, but this run has processors 0..%d", s.Proc, np-1)
		}
	}
	if len(cfg.Crashes) >= np {
		return fmt.Errorf("-faults: %d scheduled crashes would kill all %d processors; at least one must survive", len(cfg.Crashes), np)
	}
	return nil
}

func buildInstance(instance string, minmax bool, d, n int, bias float64, lo, hi int32,
	alpha, beta float64, seed int64, rootVal int32) (*gametree.Tree, error) {
	if bias < 0 {
		bias = gametree.StationaryBias(d)
	}
	switch instance {
	case "worst":
		if minmax {
			return gametree.WorstOrderedMinMax(d, n, seed), nil
		}
		return gametree.WorstCaseNOR(d, n, rootVal), nil
	case "best":
		if minmax {
			return gametree.BestOrderedMinMax(d, n, seed), nil
		}
		return gametree.BestCaseNOR(d, n, rootVal), nil
	case "best-ordered":
		return gametree.BestOrderedMinMax(d, n, seed), nil
	case "worst-ordered":
		return gametree.WorstOrderedMinMax(d, n, seed), nil
	case "iid":
		if minmax {
			return gametree.IIDMinMax(d, n, lo, hi, seed), nil
		}
		return gametree.IIDNor(d, n, bias, seed), nil
	case "near-uniform":
		kind := gametree.NOR
		if minmax {
			kind = gametree.MinMax
		}
		var assign gametree.LeafAssigner
		if minmax {
			assign = func(i int) int32 { return lo + int32(int64(i*2654435761)%int64(hi-lo+1)) }
		} else {
			assign = func(i int) int32 {
				if float64((i*2654435761)%1000)/1000 < bias {
					return 1
				}
				return 0
			}
		}
		return gametree.NearUniform(kind, d, n, alpha, beta, seed, assign), nil
	default:
		return nil, fmt.Errorf("unknown instance family %q", instance)
	}
}

func report(m gametree.Metrics, err error) func(time.Time) error {
	return func(start time.Time) error {
		if err != nil {
			return err
		}
		fmt.Printf("value=%d steps=%d work=%d processors=%d elapsed=%s\n",
			m.Value, m.Steps, m.Work, m.Processors, time.Since(start).Round(time.Microsecond))
		fmt.Printf("degree histogram (degree:steps):")
		for k, c := range m.DegreeHist {
			if c > 0 {
				fmt.Printf(" %d:%d", k, c)
			}
		}
		fmt.Println()
		return nil
	}
}

func reportExpand(m gametree.ExpandMetrics, err error) func(time.Time) error {
	return func(start time.Time) error {
		if err != nil {
			return err
		}
		fmt.Printf("value=%d steps=%d expansions=%d processors=%d elapsed=%s\n",
			m.Value, m.Steps, m.Work, m.Processors, time.Since(start).Round(time.Microsecond))
		return nil
	}
}
