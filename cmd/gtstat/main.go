// Command gtstat is the bench-regression differ for the
// BENCH_engine.json and BENCH_serve.json trajectories (internal/benchfmt).
// Engine rows gate on nodes/sec (or ns/op, allocs/op); serving rows from
// gtload gate on qps or p99_ns via -metric.
//
// It loads one or more documents, aligns benchmark rows across runs by
// (workload, configuration, workers), and compares the candidate run —
// the latest run of the last file — against the baseline sample formed
// by every other run. For each configuration it reports the throughput
// delta (nodes/sec, candidate vs baseline mean) and the two-sided
// Mann-Whitney rank-test p-value of the baseline-vs-candidate samples
// (internal/stats), and exits nonzero if any configuration regressed
// beyond the threshold.
//
// Usage:
//
//	gtstat BENCH_engine.json
//	        # trajectory mode: latest run vs all earlier runs
//	gtstat old.json new.json
//	        # cross-file mode: new's latest run vs every run of old
//	gtstat -threshold 0.10 old.json mid.json new.json
//	        # tighter gate; baseline pools old and mid
//	gtstat -ab pooled:pooled_spine -metric ns_per_op new.json
//	        # A/B mode: within new's latest run only, compare the two
//	        # named configurations at each (workload, workers) pair and
//	        # fail if A is more than -threshold worse than B — the CI
//	        # ybwc-on vs ybwc-off gate. Same-run comparison, so runner
//	        # speed cancels out.
//
// A configuration present on only one side is reported and skipped, not
// failed: worker sweeps legitimately differ across hosts.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"gametree/internal/benchfmt"
	"gametree/internal/stats"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.15, "fail on throughput regressions beyond this fraction (0.15 = 15%)")
		metric    = flag.String("metric", "nodes_per_sec", "benchmark column to compare: nodes_per_sec | ns_per_op | allocs_per_op | qps | p99_ns")
		ab        = flag.String("ab", "", "A:B — compare configuration A against B within the last document's latest run (e.g. pooled:pooled_spine)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "gtstat: need at least one BENCH_engine.json document")
		flag.Usage()
		os.Exit(2)
	}
	var regressions int
	var err error
	if *ab != "" {
		regressions, err = compareAB(os.Stdout, flag.Arg(flag.NArg()-1), *ab, *metric, *threshold)
	} else {
		regressions, err = compare(os.Stdout, flag.Args(), *metric, *threshold)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtstat:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "gtstat: %d configuration(s) regressed beyond %.0f%%\n",
			regressions, *threshold*100)
		os.Exit(1)
	}
}

// metricOf extracts the compared column. Direction matters: nodes/sec
// regresses downward, ns/op and allocs/op regress upward, so the latter
// two are negated to make "lower sample value = worse" uniform.
func metricOf(it benchfmt.Item, metric string) (float64, error) {
	switch metric {
	case "nodes_per_sec":
		return it.NodesPerSec, nil
	case "ns_per_op":
		return -it.NsPerOp, nil
	case "allocs_per_op":
		return -it.AllocsPerOp, nil
	case "qps":
		return it.QPS, nil
	case "p99_ns":
		return -it.P99Ns, nil
	}
	return 0, fmt.Errorf("unknown metric %q", metric)
}

// compare runs the diff and returns the number of regressed
// configurations. Baseline = every run except the last file's latest;
// candidate = the last file's latest run.
func compare(w io.Writer, paths []string, metric string, threshold float64) (int, error) {
	var docs []*benchfmt.Doc
	for _, p := range paths {
		d, err := benchfmt.Load(p)
		if err != nil {
			return 0, err
		}
		if d.Latest() == nil {
			return 0, fmt.Errorf("%s: document has no runs", p)
		}
		docs = append(docs, d)
	}

	last := docs[len(docs)-1]
	candidate := last.Latest()
	baseline := map[string][]float64{}
	candVals := map[string]float64{}
	var baseRuns int
	addRun := func(r *benchfmt.Run) error {
		baseRuns++
		for _, it := range r.Benchmarks {
			v, err := metricOf(it, metric)
			if err != nil {
				return err
			}
			baseline[it.Key()] = append(baseline[it.Key()], v)
		}
		return nil
	}
	for _, d := range docs[:len(docs)-1] {
		for i := range d.Runs {
			if err := addRun(&d.Runs[i]); err != nil {
				return 0, err
			}
		}
	}
	for i := range last.Runs[:len(last.Runs)-1] {
		if err := addRun(&last.Runs[i]); err != nil {
			return 0, err
		}
	}
	if baseRuns == 0 {
		return 0, fmt.Errorf("no baseline runs: need a second document or a trajectory with >= 2 runs")
	}
	for _, it := range candidate.Benchmarks {
		v, err := metricOf(it, metric)
		if err != nil {
			return 0, err
		}
		candVals[it.Key()] = v
	}

	keys := make([]string, 0, len(candVals))
	for k := range candVals {
		if _, ok := baseline[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("no configurations in common between baseline and candidate")
	}

	fmt.Fprintf(w, "candidate: %s (%s), baseline: %d run(s), metric: %s, threshold: %.0f%%\n\n",
		candidate.Commit, candidate.Generated, baseRuns, metric, threshold*100)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tbaseline(n)\tcandidate\tdelta\tp(MW)\tverdict")
	regressions := 0
	for _, k := range keys {
		base := baseline[k]
		var bw stats.Welford
		for _, v := range base {
			bw.Add(v)
		}
		cand := candVals[k]
		// (cand-mean)/|mean| keeps "negative delta = regression" for the
		// negated metrics too, where both values are below zero.
		delta := (cand - bw.Mean()) / math.Abs(bw.Mean())
		p := stats.MannWhitneyP(base, []float64{cand})
		verdict := "ok"
		if delta < -threshold {
			verdict = "REGRESSED"
			regressions++
		} else if delta > threshold {
			verdict = "improved"
		}
		fmt.Fprintf(tw, "%s\t%s(%d)\t%s\t%+.1f%%\t%.3f\t%s\n",
			k, fmtMetric(bw.Mean()), len(base), fmtMetric(cand), delta*100, p, verdict)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	for k := range baseline {
		if _, ok := candVals[k]; !ok {
			fmt.Fprintf(w, "note: %s only in baseline\n", k)
		}
	}
	for _, it := range candidate.Benchmarks {
		if _, ok := baseline[it.Key()]; !ok {
			fmt.Fprintf(w, "note: %s only in candidate\n", it.Key())
		}
	}
	return regressions, nil
}

// compareAB gates configuration A against configuration B *within* the
// last document's latest run: across the (workload, workers) pairs
// carrying both names, A must not be more than threshold worse than B on
// the metric *in geometric mean*. Both rows of a pair come from the same
// run on the same host, so absolute runner speed cancels out — this is
// the CI gate for "recursive YBWC (pooled) must not be slower than
// spine-only (pooled_spine)". Per-pair deltas are reported but not
// individually gated: a single multi-worker pair on a busy runner swings
// tens of percent either way from speculative node-count variance, while
// the geometric mean across the sweep isolates a systematic slowdown.
func compareAB(w io.Writer, path, ab, metric string, threshold float64) (int, error) {
	nameA, nameB, ok := strings.Cut(ab, ":")
	if !ok || nameA == "" || nameB == "" {
		return 0, fmt.Errorf("-ab wants A:B (e.g. pooled:pooled_spine), got %q", ab)
	}
	doc, err := benchfmt.Load(path)
	if err != nil {
		return 0, err
	}
	run := doc.Latest()
	if run == nil {
		return 0, fmt.Errorf("%s: document has no runs", path)
	}
	type pairKey struct {
		workload string
		workers  int
	}
	va := map[pairKey]float64{}
	vb := map[pairKey]float64{}
	var keys []pairKey
	for _, it := range run.Benchmarks {
		if it.Name != nameA && it.Name != nameB {
			continue
		}
		v, err := metricOf(it, metric)
		if err != nil {
			return 0, err
		}
		k := pairKey{it.Workload, it.Workers}
		if it.Name == nameA {
			va[k] = v
		} else {
			vb[k] = v
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].workload != keys[j].workload {
			return keys[i].workload < keys[j].workload
		}
		return keys[i].workers < keys[j].workers
	})
	fmt.Fprintf(w, "A/B within run %s (%s): %s vs %s, metric: %s, threshold: %.0f%%\n\n",
		run.Commit, run.Generated, nameA, nameB, metric, threshold*100)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "config\t%s\t%s\tdelta\tverdict\n", nameA, nameB)
	pairs := 0
	logSum := 0.0
	seen := map[pairKey]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		a, okA := va[k]
		b, okB := vb[k]
		if !okA || !okB {
			fmt.Fprintf(tw, "%s/w%d\t-\t-\t-\tunpaired\n", k.workload, k.workers)
			continue
		}
		pairs++
		// metricOf negates "lower is better" columns, so a/b on absolute
		// values is uniformly "A's cost relative to B's".
		ratio := math.Abs(a) / math.Abs(b)
		if a < 0 { // negated metric: a is the cost, invert to a benefit ratio
			ratio = 1 / ratio
		}
		logSum += math.Log(ratio)
		delta := ratio - 1
		note := "ok"
		if delta < -threshold {
			note = "slower"
		} else if delta > threshold {
			note = "faster"
		}
		fmt.Fprintf(tw, "%s/w%d\t%s\t%s\t%+.1f%%\t%s\n",
			k.workload, k.workers, fmtMetric(a), fmtMetric(b), delta*100, note)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	if pairs == 0 {
		return 0, fmt.Errorf("%s: no (workload, workers) pair carries both %q and %q", path, nameA, nameB)
	}
	geoDelta := math.Expm1(logSum / float64(pairs))
	verdict := "ok"
	regressions := 0
	if geoDelta < -threshold {
		verdict = "REGRESSED"
		regressions = 1
	} else if geoDelta > threshold {
		verdict = "improved"
	}
	fmt.Fprintf(w, "\ngeometric mean over %d pair(s): %+.1f%% — %s\n", pairs, geoDelta*100, verdict)
	return regressions, nil
}

// fmtMetric renders an absolute metric value compactly (the sign flip
// from metricOf is undone for display).
func fmtMetric(v float64) string {
	if v < 0 {
		v = -v
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.1f", v)
}
