package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gametree/internal/benchfmt"
)

// synthRun builds one trajectory point whose tree/pooled/w2 row runs at
// the given throughput; the other rows are held constant so only one
// configuration can move.
func synthRun(commit string, pooledNps float64) benchfmt.Run {
	item := func(name string, workers int, nps float64) benchfmt.Item {
		return benchfmt.Item{
			Workload: "tree", Name: name, Workers: workers, Reps: 5,
			NsPerOp: 1e9 / nps * 1000, NodesPerOp: 1000, NodesPerSec: nps,
		}
	}
	return benchfmt.Run{
		Generated:  "2026-08-06T00:00:00Z",
		Commit:     commit,
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 1,
		Benchmarks: []benchfmt.Item{
			item("sequential", 0, 20e6),
			item("pooled", 2, pooledNps),
		},
	}
}

func writeDoc(t *testing.T, path string, runs ...benchfmt.Run) {
	t.Helper()
	var d benchfmt.Doc
	d.Schema = benchfmt.SchemaV2
	for _, r := range runs {
		d.Append(r)
	}
	if err := benchfmt.Write(path, &d); err != nil {
		t.Fatal(err)
	}
}

// TestCompareIdentical: identical baseline and candidate must pass with
// zero regressions (the acceptance gate's exit-zero case).
func TestCompareIdentical(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, base, synthRun("aaa", 30e6))
	writeDoc(t, cand, synthRun("bbb", 30e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{base, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("identical docs reported %d regressions:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "tree/pooled/w2") {
		t.Fatalf("output missing aligned config key:\n%s", sb.String())
	}
}

// TestCompareRegressed: a 30% throughput drop must be flagged (the
// acceptance gate's exit-nonzero case), and the verdict column must say
// so for the right configuration only.
func TestCompareRegressed(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, base, synthRun("aaa", 30e6), synthRun("aab", 31e6), synthRun("aac", 29e6))
	writeDoc(t, cand, synthRun("bbb", 21e6)) // ~30% below the 30e6 mean
	var sb strings.Builder
	n, err := compare(&sb, []string{base, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want exactly 1 regression, got %d:\n%s", n, sb.String())
	}
	out := sb.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "REGRESSED") && !strings.Contains(line, "tree/pooled/w2") {
			t.Fatalf("wrong configuration flagged:\n%s", out)
		}
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	// The inverted metrics must flag the same regression (ns/op rose).
	sb.Reset()
	if n, err = compare(&sb, []string{base, cand}, "ns_per_op", 0.15); err != nil || n != 1 {
		t.Fatalf("ns_per_op direction broken: n=%d err=%v\n%s", n, err, sb.String())
	}
}

// TestCompareTrajectory: a single v2 file with multiple runs diffs its
// latest run against the earlier ones.
func TestCompareTrajectory(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "traj.json")
	writeDoc(t, traj, synthRun("aaa", 30e6), synthRun("bbb", 30.5e6), synthRun("ccc", 12e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{traj}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("trajectory mode missed the regression (n=%d):\n%s", n, sb.String())
	}
	// A single-run trajectory has no baseline: that is an error, not a pass.
	solo := filepath.Join(dir, "solo.json")
	writeDoc(t, solo, synthRun("aaa", 30e6))
	if _, err := compare(&sb, []string{solo}, "nodes_per_sec", 0.15); err == nil {
		t.Fatal("single-run trajectory must error, not pass")
	}
}

// TestCompareV1Baseline: a legacy v1 snapshot document must be accepted
// as a baseline (Load normalizes it into a one-run history).
func TestCompareV1Baseline(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.json")
	run := synthRun("aaa", 30e6)
	d := benchfmt.Doc{
		Schema:     benchfmt.SchemaV1,
		Generated:  run.Generated,
		Commit:     run.Commit,
		Benchmarks: run.Benchmarks,
	}
	if err := benchfmt.Write(v1, &d); err != nil {
		t.Fatal(err)
	}
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, cand, synthRun("bbb", 29e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{v1, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("3%% wobble flagged as regression:\n%s", sb.String())
	}
}
