package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gametree/internal/benchfmt"
)

// synthRun builds one trajectory point whose tree/pooled/w2 row runs at
// the given throughput; the other rows are held constant so only one
// configuration can move.
func synthRun(commit string, pooledNps float64) benchfmt.Run {
	item := func(name string, workers int, nps float64) benchfmt.Item {
		return benchfmt.Item{
			Workload: "tree", Name: name, Workers: workers, Reps: 5,
			NsPerOp: 1e9 / nps * 1000, NodesPerOp: 1000, NodesPerSec: nps,
		}
	}
	return benchfmt.Run{
		Generated:  "2026-08-06T00:00:00Z",
		Commit:     commit,
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 1,
		Benchmarks: []benchfmt.Item{
			item("sequential", 0, 20e6),
			item("pooled", 2, pooledNps),
		},
	}
}

func writeDoc(t *testing.T, path string, runs ...benchfmt.Run) {
	t.Helper()
	var d benchfmt.Doc
	d.Schema = benchfmt.SchemaV2
	for _, r := range runs {
		d.Append(r)
	}
	if err := benchfmt.Write(path, &d); err != nil {
		t.Fatal(err)
	}
}

// TestCompareIdentical: identical baseline and candidate must pass with
// zero regressions (the acceptance gate's exit-zero case).
func TestCompareIdentical(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, base, synthRun("aaa", 30e6))
	writeDoc(t, cand, synthRun("bbb", 30e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{base, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("identical docs reported %d regressions:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "tree/pooled/w2") {
		t.Fatalf("output missing aligned config key:\n%s", sb.String())
	}
}

// TestCompareRegressed: a 30% throughput drop must be flagged (the
// acceptance gate's exit-nonzero case), and the verdict column must say
// so for the right configuration only.
func TestCompareRegressed(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, base, synthRun("aaa", 30e6), synthRun("aab", 31e6), synthRun("aac", 29e6))
	writeDoc(t, cand, synthRun("bbb", 21e6)) // ~30% below the 30e6 mean
	var sb strings.Builder
	n, err := compare(&sb, []string{base, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want exactly 1 regression, got %d:\n%s", n, sb.String())
	}
	out := sb.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "REGRESSED") && !strings.Contains(line, "tree/pooled/w2") {
			t.Fatalf("wrong configuration flagged:\n%s", out)
		}
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	// The inverted metrics must flag the same regression (ns/op rose).
	sb.Reset()
	if n, err = compare(&sb, []string{base, cand}, "ns_per_op", 0.15); err != nil || n != 1 {
		t.Fatalf("ns_per_op direction broken: n=%d err=%v\n%s", n, err, sb.String())
	}
}

// TestCompareTrajectory: a single v2 file with multiple runs diffs its
// latest run against the earlier ones.
func TestCompareTrajectory(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "traj.json")
	writeDoc(t, traj, synthRun("aaa", 30e6), synthRun("bbb", 30.5e6), synthRun("ccc", 12e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{traj}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("trajectory mode missed the regression (n=%d):\n%s", n, sb.String())
	}
	// A single-run trajectory has no baseline: that is an error, not a pass.
	solo := filepath.Join(dir, "solo.json")
	writeDoc(t, solo, synthRun("aaa", 30e6))
	if _, err := compare(&sb, []string{solo}, "nodes_per_sec", 0.15); err == nil {
		t.Fatal("single-run trajectory must error, not pass")
	}
}

// TestCompareV1Baseline: a legacy v1 snapshot document must be accepted
// as a baseline (Load normalizes it into a one-run history).
func TestCompareV1Baseline(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.json")
	run := synthRun("aaa", 30e6)
	d := benchfmt.Doc{
		Schema:     benchfmt.SchemaV1,
		Generated:  run.Generated,
		Commit:     run.Commit,
		Benchmarks: run.Benchmarks,
	}
	if err := benchfmt.Write(v1, &d); err != nil {
		t.Fatal(err)
	}
	cand := filepath.Join(dir, "cand.json")
	writeDoc(t, cand, synthRun("bbb", 29e6))
	var sb strings.Builder
	n, err := compare(&sb, []string{v1, cand}, "nodes_per_sec", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("3%% wobble flagged as regression:\n%s", sb.String())
	}
}

// synthABRun builds one run carrying pooled and pooled_spine rows at two
// widths, with the pooled ns/op scaled by slowdown (1.0 = identical).
func synthABRun(slowdown float64) benchfmt.Run {
	item := func(name, ybwc string, workers int, nsPerOp float64) benchfmt.Item {
		return benchfmt.Item{
			Workload: "tree", Name: name, YBWC: ybwc, Workers: workers, Reps: 5,
			NsPerOp: nsPerOp, NodesPerOp: 1000, NodesPerSec: 1e12 / nsPerOp,
		}
	}
	return benchfmt.Run{
		Generated:  "2026-08-06T00:00:00Z",
		Commit:     "abc",
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 1,
		Benchmarks: []benchfmt.Item{
			item("pooled", "on", 1, 1e6*slowdown),
			item("pooled_spine", "off", 1, 1e6),
			item("pooled", "on", 8, 2e6*slowdown),
			item("pooled_spine", "off", 8, 2e6),
			item("sequential", "", 0, 1e6), // must be ignored by -ab
		},
	}
}

// TestCompareABOk: equal A and B rows pass the same-run gate.
func TestCompareABOk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	writeDoc(t, path, synthABRun(1.0))
	var sb strings.Builder
	n, err := compareAB(&sb, path, "pooled:pooled_spine", "ns_per_op", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("identical A/B rows reported %d regressions:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "tree/w8") {
		t.Fatalf("output missing the w8 pair:\n%s", sb.String())
	}
}

// TestCompareABRegressed: A systematically 25% slower than B on ns/op
// (both pairs, so the geometric mean moves with them) must fail the gate.
func TestCompareABRegressed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	writeDoc(t, path, synthABRun(1.25))
	var sb strings.Builder
	n, err := compareAB(&sb, path, "pooled:pooled_spine", "ns_per_op", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want the geometric-mean gate to regress, got %d:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("summary line missing REGRESSED:\n%s", sb.String())
	}
}

// TestCompareABOutlierTolerated: one pair wildly slower (multi-worker
// speculation variance on a busy runner) while the other is at parity
// must NOT fail the gate — only a systematic slowdown moves the
// geometric mean past the threshold. sqrt(1.0 * 1/1.30) - 1 = -12%...
// so use 1.18: sqrt(1/1.18)-1 = -8% — inside a 10% threshold.
func TestCompareABOutlierTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	run := synthABRun(1.0)
	run.Benchmarks[2].NsPerOp *= 1.18 // only the w8 pooled row
	writeDoc(t, path, run)
	var sb strings.Builder
	n, err := compareAB(&sb, path, "pooled:pooled_spine", "ns_per_op", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("single-pair outlier failed the geometric-mean gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "slower") {
		t.Fatalf("outlier pair not annotated as slower:\n%s", sb.String())
	}
}

// TestCompareABUnpaired: a document with no overlapping (workload,
// workers) pair is a usage error, not a silent pass.
func TestCompareABUnpaired(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	writeDoc(t, path, synthRun("aaa", 30e6)) // has pooled but no pooled_spine
	var sb strings.Builder
	if _, err := compareAB(&sb, path, "pooled:pooled_spine", "ns_per_op", 0.10); err == nil {
		t.Fatal("expected an error for a document with no A/B pairs")
	}
}
