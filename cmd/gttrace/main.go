// Command gttrace prints a step-by-step execution of Parallel SOLVE,
// showing the base path, its Proposition 3 code, and the leaves evaluated
// at every step, plus a Gantt-style evaluation timeline. It makes the
// paper's counting argument visible on real instances.
//
// Usage:
//
//	gttrace -d 2 -n 5 -width 1 -instance worst
//	gttrace -d 2 -n 6 -width 1 -instance iid -seed 7 -tree
//	gttrace -events events.jsonl -eventtrace sched.json
//	        # replay a gtplay/engine scheduler event log (JSONL) into a
//	        # Chrome trace_event file (chrome://tracing, Perfetto)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gametree"
	"gametree/internal/core"
	"gametree/internal/telemetry"
	"gametree/internal/trace"
	"gametree/internal/tree"
)

func main() {
	var (
		d        = flag.Int("d", 2, "branching factor")
		n        = flag.Int("n", 5, "tree height")
		width    = flag.Int("width", 1, "pruning-number width")
		instance = flag.String("instance", "worst", "worst, best or iid")
		bias     = flag.Float64("bias", -1, "i.i.d. bias (-1 = stationary/hardest)")
		seed     = flag.Int64("seed", 1, "seed for iid instances")
		showTree = flag.Bool("tree", false, "also print the tree with evaluated leaves marked")
		maxCols  = flag.Int("cols", 120, "timeline column limit (0 = unlimited)")
		frames   = flag.String("frames", "", "directory to write per-step Graphviz DOT frames")

		eventsIn   = flag.String("events", "", "replay a scheduler event log (JSONL from gtplay -events) instead of tracing a SOLVE run")
		eventTrace = flag.String("eventtrace", "", "with -events: write the replayed log as a Chrome trace_event file (default stdout)")
	)
	flag.Parse()
	if *eventsIn != "" {
		if err := replayEvents(*eventsIn, *eventTrace); err != nil {
			fmt.Fprintln(os.Stderr, "gttrace:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*d, *n, *width, *instance, *bias, *seed, *showTree, *maxCols, *frames); err != nil {
		fmt.Fprintln(os.Stderr, "gttrace:", err)
		os.Exit(1)
	}
}

// replayEvents converts a JSONL scheduler event log into the Chrome
// trace_event format, one instant event per log line on the emitting
// worker's track — the same visual timeline as the engine's span trace,
// reconstructed offline from the log alone.
func replayEvents(inPath, outPath string) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	events, err := telemetry.ReadEvents(in)
	if err != nil {
		return err
	}
	out := io.WriteCloser(os.Stdout)
	if outPath != "" {
		if out, err = os.Create(outPath); err != nil {
			return err
		}
	}
	if err := telemetry.WriteEventTrace(out, events); err != nil {
		if outPath != "" {
			out.Close()
		}
		return err
	}
	if outPath != "" {
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("replayed %d events from %s into %s\n", len(events), inPath, outPath)
	}
	return nil
}

func run(d, n, width int, instance string, bias float64, seed int64, showTree bool, maxCols int, frames string) error {
	if bias < 0 {
		bias = gametree.StationaryBias(d)
	}
	var t *tree.Tree
	switch instance {
	case "worst":
		t = gametree.WorstCaseNOR(d, n, 1)
	case "best":
		t = gametree.BestCaseNOR(d, n, 1)
	case "iid":
		t = gametree.IIDNor(d, n, bias, seed)
	default:
		return fmt.Errorf("unknown instance %q", instance)
	}
	fmt.Printf("instance: %s, value %d\n\n", t, t.Evaluate())

	steps, m, err := core.TraceParallelSolve(t, width, core.Options{})
	if err != nil {
		return err
	}
	if err := trace.WriteSteps(os.Stdout, t, steps); err != nil {
		return err
	}
	fmt.Println()
	if err := trace.WriteTimeline(os.Stdout, t, steps, maxCols); err != nil {
		return err
	}
	fmt.Printf("\n%s\n", trace.Summarize(steps))
	fmt.Printf("metrics: %s\n", m)

	if frames != "" {
		if err := os.MkdirAll(frames, 0o755); err != nil {
			return err
		}
		err := trace.WriteDOTFrames(t, steps, func(step int) (io.WriteCloser, error) {
			return os.Create(filepath.Join(frames, fmt.Sprintf("step%03d.dot", step+1)))
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d DOT frames to %s\n", len(steps), frames)
	}

	if showTree {
		evaluated := map[tree.NodeID]bool{}
		for _, st := range steps {
			for _, l := range st.Leaves {
				evaluated[l] = true
			}
		}
		fmt.Println()
		if err := trace.WriteTree(os.Stdout, t, evaluated); err != nil {
			return err
		}
	}
	return nil
}
