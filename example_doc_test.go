package gametree_test

// Runnable godoc examples for the main entry points. Each one is also a
// test: go test verifies the printed output.

import (
	"context"
	"fmt"

	"gametree"
)

// The sqrt(p) law of Proposition 1: Team SOLVE's speedup on a
// maximal-pruning instance doubles only every fourfold processor increase.
func ExampleTeamSolve() {
	t := gametree.BestCaseNOR(2, 12, 1)
	seq, _ := gametree.SequentialSolve(t, gametree.Options{})
	for _, p := range []int{4, 16, 64} {
		m, _ := gametree.TeamSolve(t, p, gametree.Options{})
		fmt.Printf("p=%-3d speedup %.0f\n", p, float64(seq.Steps)/float64(m.Steps))
	}
	// Output:
	// p=4   speedup 2
	// p=16  speedup 4
	// p=64  speedup 8
}

// The pruning process of Section 4 evaluates exactly the classical
// alpha-beta leaf set; on a perfectly ordered tree that is the
// Knuth-Moore optimum.
func ExampleSequentialAlphaBeta() {
	t := gametree.BestOrderedMinMax(2, 10, 1)
	m, _ := gametree.SequentialAlphaBeta(t, gametree.Options{})
	fmt.Printf("leaves evaluated: %d\n", m.Work)
	fmt.Printf("knuth-moore optimum: %d\n", gametree.Fact2(2, 10))
	// Output:
	// leaves evaluated: 63
	// knuth-moore optimum: 63
}

// Fact 1: no algorithm can beat the proof-tree bound; the best-case
// instance meets it.
func ExampleProofTreeSize() {
	t := gametree.BestCaseNOR(3, 6, 1)
	seq, _ := gametree.SequentialSolve(t, gametree.Options{})
	fmt.Printf("work %d, proof tree %d, Fact 1 bound %d\n",
		seq.Work, gametree.ProofTreeSize(t), gametree.Fact1(3, 6))
	// Output:
	// work 27, proof tree 27, Fact 1 bound 27
}

// The Section 7 message-passing machine computes exact values with one
// goroutine per level.
func ExampleEvaluateMessagePassing() {
	t := gametree.WorstCaseNOR(2, 10, 1)
	m, _ := gametree.EvaluateMessagePassing(t, gametree.MsgPassOptions{})
	fmt.Printf("value %d with %d processors\n", m.Value, m.Processors)
	// Output:
	// value 1 with 11 processors
}

// Horn-clause proving is AND/OR tree evaluation (the paper's Section 1
// motivation).
func ExampleHornKB() {
	kb, _ := gametree.NewHornKB([]gametree.HornRule{
		{Head: "socrates"},
		{Head: "man", Body: []string{"socrates"}},
		{Head: "mortal", Body: []string{"man"}},
	})
	ok, _ := kb.ProvableByTree("mortal")
	fmt.Println("mortal provable:", ok)
	// Output:
	// mortal provable: true
}

// Nim's closed-form xor rule validates the engine.
func ExampleNewNim() {
	p := gametree.NewNim(1, 2, 3) // nim-sum 0: second player wins
	r := gametree.Search(p, p.TotalObjects())
	fmt.Println("first player wins:", r.Value > 0, "— xor rule:", p.XorValue() != 0)
	// Output:
	// first player wins: false — xor rule: false
}

// The exact i.i.d. theory of Section 6.
func ExampleExpectedSolveWork() {
	q := gametree.StationaryBias(2)
	fmt.Printf("stationary bias: %.4f\n", q)
	fmt.Printf("E[S(T)] on B(2,10): %.1f\n", gametree.ExpectedSolveWork(2, 10, q))
	// Output:
	// stationary bias: 0.3820
	// E[S(T)] on B(2,10): 123.0
}

// Iterative deepening returns the principal variation: the forced line of
// perfect play.
func ExampleSearchIterative() {
	pos := gametree.NewDomineering(2, 2) // Vertical to move, wins
	r, pv, _ := gametree.SearchIterative(context.Background(), pos, 4, gametree.EngineOptions{})
	fmt.Println("vertical wins:", r.Value > 0, "| moves in pv:", len(pv))
	// Output:
	// vertical wins: true | moves in pv: 1
}

// Kayles' Grundy theory gives another closed-form oracle.
func ExampleNewKayles() {
	p := gametree.NewKayles(5, 4, 1)
	r := gametree.Search(p, p.TotalPins()+1)
	fmt.Println("first player wins:", r.Value > 0, "— Grundy:", p.GrundyValue() != 0)
	// Output:
	// first player wins: true — Grundy: true
}
