// Connect-4 example: the practical face of the paper's cascade idea. The
// engine searches the standard 7x6 board with sequential alpha-beta and
// with the parallel cascade (leftmost successor first, speculative
// siblings in goroutines), and reports the wall-clock speedup on this
// machine. It also verifies the engine against Nim's closed-form theory.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"gametree"
)

func main() {
	pos := gametree.StandardConnect4()
	const depth = 9

	fmt.Printf("Connect-4 7x6, search depth %d, GOMAXPROCS %d\n\n", depth, runtime.GOMAXPROCS(0))

	start := time.Now()
	seq := gametree.Search(pos, depth)
	seqTime := time.Since(start)
	fmt.Printf("sequential: value %d, %d nodes, %s\n", seq.Value, seq.Nodes, seqTime.Round(time.Millisecond))

	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		start = time.Now()
		par, err := gametree.SearchParallel(context.Background(), pos, depth, workers)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		if par.Value != seq.Value {
			log.Fatalf("parallel value %d != sequential %d", par.Value, seq.Value)
		}
		fmt.Printf("parallel %2d workers: %d nodes, %s (%.2fx)\n",
			workers, par.Nodes, el.Round(time.Millisecond), float64(seqTime)/float64(el))
	}

	// Best opening move for the first player.
	best, err := gametree.Play(context.Background(), pos, depth, 0)
	if err != nil {
		log.Fatal(err)
	}
	col := pos.Moves()[best].(*gametree.Connect4).LastCol
	fmt.Printf("\nengine's opening move: column %d (center-first ordering pays, as the\n"+
		"paper's left-to-right semantics predict)\n", col)

	// Nim sanity check: the engine must reproduce the xor rule.
	fmt.Println("\nNim cross-check (engine vs Sprague-Grundy xor rule):")
	for _, heaps := range [][]int{{1, 2, 3}, {1, 1}, {4, 2, 6}, {3, 3}} {
		nim := gametree.NewNim(heaps...)
		r := gametree.Search(nim, nim.TotalObjects())
		engineWin := r.Value > 0
		xorWin := nim.XorValue() != 0
		status := "ok"
		if engineWin != xorWin {
			status = "MISMATCH"
		}
		fmt.Printf("  %v: engine win=%v, xor win=%v  %s\n", heaps, engineWin, xorWin, status)
	}
}
