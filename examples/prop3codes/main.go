// Proposition 3 made visible: trace a width-1 Parallel SOLVE run and
// print, for every step, the base path's code — the vector counting live
// right-siblings along the path to the leftmost live leaf. The paper's
// counting argument rests on two facts this run exhibits directly:
//
//  1. successive codes strictly decrease in lexicographic order, and
//  2. the parallel degree of a step is 1 + (non-zero code components),
//
// which together cap the number of low-degree steps by the binomial
// sigma_k = C(n,k)(d-1)^k and yield Theorem 1.
package main

import (
	"fmt"
	"log"

	"gametree"
)

func main() {
	const d, n = 2, 6
	t := gametree.IIDNor(d, n, gametree.StationaryBias(d), 11)
	fmt.Printf("instance: %s, value %d\n\n", t, t.Evaluate())

	steps, m, err := gametree.TraceParallelSolve(t, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-20s %-8s %s\n", "step", "code", "degree", "1+nonzero")
	ok := true
	for i, st := range steps {
		nz := st.NonZeroCode()
		fmt.Printf("%-6d %-20s %-8d %d\n", i+1, fmt.Sprint(st.Code), st.Degree(), 1+nz)
		if st.Degree() != 1+nz {
			ok = false
		}
		if i > 0 && gametree.CompareCodes(st.Code, steps[i-1].Code) >= 0 {
			ok = false
		}
	}
	fmt.Printf("\ncodes strictly decreasing and degree identity hold: %v\n", ok)
	fmt.Printf("run: %d steps, %d leaves evaluated, %d processors\n",
		m.Steps, m.Work, m.Processors)

	// The same machinery on the alpha-beta pruning process — the claim
	// Section 4 states without proof.
	mt := gametree.IIDMinMax(2, 6, -100, 100, 11)
	mSteps, mm, err := gametree.TraceParallelAlphaBeta(mt, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	okM := true
	for i, st := range mSteps {
		if i > 0 && gametree.CompareCodes(st.Code, mSteps[i-1].Code) >= 0 {
			okM = false
		}
	}
	fmt.Printf("\nMIN/MAX run: %d steps, %d leaves; codes strictly decreasing: %v\n",
		mm.Steps, mm.Work, okM)
}
