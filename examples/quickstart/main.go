// Quickstart: build a uniform game tree, evaluate it with the paper's
// sequential and parallel algorithms, and observe Theorem 1's linear
// speedup with n+1 processors.
package main

import (
	"fmt"
	"log"

	"gametree"
)

func main() {
	// A stationary-bias i.i.d. instance of B(2,14) — the hard regime of
	// the Section 6 model, where pruning is real and the contrast between
	// the naive Team parallelization (sqrt(p)) and the paper's Parallel
	// SOLVE (linear in n+1) is visible. (On the no-pruning worst-case
	// family Team SOLVE is trivially fully efficient; see EXPERIMENTS E1.)
	const d, n = 2, 14
	t := gametree.IIDNor(d, n, gametree.StationaryBias(d), 1989)
	fmt.Printf("instance: %s, exact value %d\n\n", t, t.Evaluate())

	seq, err := gametree.SequentialSolve(t, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sequential SOLVE:      %6d steps (one leaf per step)\n", seq.Steps)

	// Team SOLVE: the obvious parallelization. Its worst-case guarantee
	// is only Theta(sqrt(p)) — on maximal-pruning instances it saturates
	// hard (see examples/speedup and experiment E1) — and buying more
	// speedup costs processors at a declining efficiency. Parallel SOLVE
	// below guarantees c(n+1) on EVERY instance with just n+1 processors.
	for _, p := range []int{n + 1, (n + 1) * (n + 1)} {
		team, err := gametree.TeamSolve(t, p, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sp := float64(seq.Steps) / float64(team.Steps)
		fmt.Printf("Team SOLVE (%3d procs):     %5d steps, speedup %5.1fx, efficiency %.2f\n",
			p, team.Steps, sp, sp/float64(p))
	}

	// Parallel SOLVE of width 1: the paper's algorithm, n+1 processors,
	// linear speedup at constant efficiency.
	par, err := gametree.ParallelSolve(t, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spPar := float64(seq.Steps) / float64(par.Steps)
	fmt.Printf("Parallel SOLVE w=1 (%2d procs): %2d steps, speedup %5.1fx, efficiency %.2f\n",
		par.Processors, par.Steps, spPar, spPar/float64(par.Processors))

	fmt.Printf("\nTheorem 1: speedup >= c(n+1); measured c = %.2f\n",
		float64(seq.Steps)/float64(par.Steps)/float64(n+1))

	// The same story for MIN/MAX trees and alpha-beta (Theorem 3).
	mt := gametree.IIDMinMax(2, 12, -1000, 1000, 7)
	seqAB, err := gametree.SequentialAlphaBeta(mt, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	parAB, err := gametree.ParallelAlphaBeta(mt, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMIN/MAX %s (value %d):\n", mt, mt.Evaluate())
	fmt.Printf("Sequential alpha-beta: %6d leaf evaluations\n", seqAB.Steps)
	fmt.Printf("Parallel alpha-beta:   %6d steps, speedup %.1fx with %d processors\n",
		parAB.Steps, float64(seqAB.Steps)/float64(parAB.Steps), parAB.Processors)
}
