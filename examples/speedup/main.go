// Speedup example: reproduce the paper's headline curves in one run.
// It sweeps the tree height n and prints, for each model, the measured
// width-1 speedup next to the (n+1)-processor budget — the Theorem 1/3/4
// shape: speedup growing linearly in n+1 — and contrasts Team SOLVE's
// sqrt(p) law (Proposition 1).
package main

import (
	"fmt"
	"log"
	"math"

	"gametree"
)

func main() {
	fmt.Println("Theorem 1 — Parallel SOLVE width 1 on worst-case B(2,n):")
	fmt.Printf("%4s %10s %10s %10s %8s\n", "n", "S(T)", "P(T)", "speedup", "c")
	for n := 6; n <= 16; n += 2 {
		t := gametree.WorstCaseNOR(2, n, 1)
		seq, err := gametree.SequentialSolve(t, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		par, err := gametree.ParallelSolve(t, 1, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sp := float64(seq.Steps) / float64(par.Steps)
		fmt.Printf("%4d %10d %10d %10.2f %8.3f\n", n, seq.Steps, par.Steps, sp, sp/float64(n+1))
	}

	fmt.Println("\nTheorem 3 — Parallel alpha-beta width 1 on i.i.d. M(2,n):")
	fmt.Printf("%4s %10s %10s %10s %8s\n", "n", "S~(T)", "P~(T)", "speedup", "c")
	for n := 6; n <= 12; n += 2 {
		t := gametree.IIDMinMax(2, n, -1_000_000, 1_000_000, int64(n))
		seq, err := gametree.SequentialAlphaBeta(t, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		par, err := gametree.ParallelAlphaBeta(t, 1, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sp := float64(seq.Steps) / float64(par.Steps)
		fmt.Printf("%4d %10d %10d %10.2f %8.3f\n", n, seq.Steps, par.Steps, sp, sp/float64(n+1))
	}

	fmt.Println("\nProposition 1 — Team SOLVE on best-case B(2,14) (sqrt(p) ceiling):")
	fmt.Printf("%6s %10s %10s\n", "p", "speedup", "sqrt(p)")
	t := gametree.BestCaseNOR(2, 14, 1)
	seq, err := gametree.SequentialSolve(t, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for p := 1; p <= 256; p *= 4 {
		team, err := gametree.TeamSolve(t, p, gametree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %10.2f %10.2f\n", p,
			float64(seq.Steps)/float64(team.Steps), math.Sqrt(float64(p)))
	}

	fmt.Println("\nSection 7 — message-passing implementation (goroutine per level):")
	tr := gametree.WorstCaseNOR(2, 12, 1)
	m, err := gametree.EvaluateMessagePassing(tr, gametree.MsgPassOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value %d with %d processors, %d expansions, %d messages\n",
		m.Value, m.Processors, m.Expansions, m.Messages)
}
