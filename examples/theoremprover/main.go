// Theorem prover example: the paper's Section 1 motivation. A backward-
// chaining proof search over a propositional Horn knowledge base IS an
// AND/OR tree evaluation; this example builds a large synthetic KB, maps
// the search space to a NOR tree, and compares the sequential and parallel
// SOLVE algorithms on it.
package main

import (
	"fmt"
	"log"

	"gametree"
)

func main() {
	// A hand-written KB first: the classic syllogism plus a conjunction.
	kb, err := gametree.NewHornKB([]gametree.HornRule{
		{Head: "socrates"},
		{Head: "plato"},
		{Head: "man", Body: []string{"socrates"}},
		{Head: "man", Body: []string{"plato"}},
		{Head: "mortal", Body: []string{"man"}},
		{Head: "philosopher", Body: []string{"man", "wise"}},
		{Head: "wise", Body: []string{"plato"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []string{"mortal", "philosopher", "immortal"} {
		ok, err := kb.ProvableByTree(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s provable: %v\n", q, ok)
	}

	// Now a synthetic layered KB whose proof space is a deep AND/OR tree
	// — the workload where parallel evaluation pays.
	fmt.Println("\nlayered KB (6 layers, 4 atoms, 3 rules/atom, 2 premises/rule):")
	big, goal := gametree.LayeredHornKB(6, 4, 3, 2, 0.45, 42)
	t, err := big.ProofTree(goal, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search space: %s\n", t)

	seq, err := gametree.SequentialSolve(t, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	par, err := gametree.ParallelSolve(t, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	provable := seq.Value == 0 // the NOR root complements the AND/OR root
	fmt.Printf("%s provable: %v\n", goal, provable)
	fmt.Printf("sequential SOLVE:   %5d leaf evaluations\n", seq.Steps)
	fmt.Printf("parallel SOLVE w=1: %5d steps with %d processors (%.1fx)\n",
		par.Steps, par.Processors, float64(seq.Steps)/float64(par.Steps))

	// Cross-check against direct backward chaining.
	if big.Provable(goal) != provable {
		log.Fatal("tree evaluation disagrees with direct backward chaining")
	}
	fmt.Println("cross-check vs direct backward chaining: ok")
}
