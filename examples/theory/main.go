// Theory vs. measurement: the i.i.d. model of Section 6 admits an exact
// two-state dynamic program for the expected sequential work and the root
// value distribution. This example runs the simulator against the theory
// across biases and heights — the measured means must track the DP — and
// shows why the stationary bias (the NOR-side image of the golden-ratio
// constant the paper cites) is the hard regime.
package main

import (
	"fmt"
	"log"

	"gametree"
)

func main() {
	const d = 2
	stationary := gametree.StationaryBias(d)
	fmt.Printf("stationary NOR leaf bias for d=%d: %.6f (1 - golden ratio conjugate)\n\n", d, stationary)

	fmt.Println("expected sequential work E[S(T)] on B(2,n): theory vs measured mean (200 trees)")
	fmt.Printf("%4s %12s %12s %8s\n", "n", "theory", "measured", "rel.err")
	const trials = 200
	for _, n := range []int{6, 8, 10, 12} {
		want := gametree.ExpectedSolveWork(d, n, stationary)
		var sum float64
		for i := 0; i < trials; i++ {
			t := gametree.IIDNor(d, n, stationary, int64(100+i))
			m, err := gametree.SequentialSolve(t, gametree.Options{})
			if err != nil {
				log.Fatal(err)
			}
			sum += float64(m.Work)
		}
		got := sum / trials
		fmt.Printf("%4d %12.2f %12.2f %7.1f%%\n", n, want, got, 100*(got-want)/want)
	}

	fmt.Println("\nroot value distribution P(val=1) by bias (height 10):")
	fmt.Printf("%10s %10s %s\n", "bias", "P(val=1)", "regime")
	for _, p := range []float64{0.2, stationary, 0.5, 0.8} {
		q := gametree.RootOneProbability(d, 10, p)
		regime := "degenerating toward the 0/1 cycle"
		if p == stationary {
			regime = "stationary: hard at every height"
		}
		fmt.Printf("%10.4f %10.4f %s\n", p, q, regime)
	}

	fmt.Println("\nwidth-1 speedup at the stationary bias, height 12 (theory has no closed")
	fmt.Println("form here — this is the measured Theorem 1 constant):")
	t := gametree.IIDNor(d, 12, stationary, 7)
	seq, err := gametree.SequentialSolve(t, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	par, err := gametree.ParallelSolve(t, 1, gametree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sp := float64(seq.Steps) / float64(par.Steps)
	fmt.Printf("S=%d P=%d speedup %.2f c=%.3f with %d processors (bound %d)\n",
		seq.Steps, par.Steps, sp, sp/13, par.Processors, gametree.WidthProcessorBound(2, 12, 1))
}
