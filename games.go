package gametree

import (
	"gametree/internal/games"
)

// This file re-exports the game substrates: concrete Position
// implementations for the engine (tic-tac-toe, Connect-4, Nim) and the
// Horn-clause prover behind the paper's theorem-proving motivation.

// TicTacToe is a tic-tac-toe position; the zero value is the empty board
// with X to move. It implements Position.
type TicTacToe = games.TTT

// ParseTicTacToe parses a 9-character board like "XOX.O..X.".
func ParseTicTacToe(s string) (TicTacToe, error) { return games.ParseTTT(s) }

// Connect4 is a connect-four position on a parametric board. It implements
// Position.
type Connect4 = games.Connect4

// NewConnect4 returns an empty w-by-h board needing `need` in a row.
func NewConnect4(w, h, need int) *Connect4 { return games.NewConnect4(w, h, need) }

// StandardConnect4 returns the classic 7x6, four-in-a-row board.
func StandardConnect4() *Connect4 { return games.StandardConnect4() }

// Nim is a normal-play Nim position; its exact value is known in closed
// form (the xor rule), making it a correctness oracle for the engine. It
// implements Position.
type Nim = games.Nim

// NewNim returns a Nim position with the given heap sizes.
func NewNim(heaps ...int) Nim { return games.NewNim(heaps...) }

// HornRule is a definite Horn clause Head :- Body...; empty Body is a fact.
type HornRule = games.Rule

// HornKB is a propositional Horn knowledge base whose backward-chaining
// search space is an AND/OR tree (Section 1's theorem-proving motivation).
type HornKB = games.KB

// NewHornKB builds a knowledge base, rejecting cyclic rule sets.
func NewHornKB(rules []HornRule) (*HornKB, error) { return games.NewKB(rules) }

// LayeredHornKB generates a synthetic layered knowledge base whose proof
// search space is a near-uniform AND/OR tree; returns the KB and the top
// goal.
func LayeredHornKB(layers, atomsPer, rulesPer, bodyLen int, factBias float64, seed int64) (*HornKB, string) {
	return games.LayeredKB(layers, atomsPer, rulesPer, bodyLen, factBias, seed)
}

// Domineering is the classic combinatorial game on a grid (Vertical vs
// Horizontal dominoes, last player to move wins). It implements Position
// and Hasher.
type Domineering = games.Domineering

// NewDomineering returns an empty w-by-h Domineering board with Vertical
// to move.
func NewDomineering(w, h int) *Domineering { return games.NewDomineering(w, h) }

// Kayles is the octal game 0.77 (knock one pin or two adjacent pins);
// its Sprague-Grundy values are eventually periodic, giving a closed-form
// oracle. It implements Position and Hasher.
type Kayles = games.Kayles

// NewKayles returns a Kayles position with the given row lengths.
func NewKayles(rows ...int) Kayles { return games.NewKayles(rows...) }

// RandomGameTree is a lazy deterministic synthetic game tree: node
// identities and leaf values are pure functions of a 64-bit seed, so a
// position is fully described by (seed, branch) — the serving-layer
// benchmark workload. It implements Position, Hasher and MoveAppender.
type RandomGameTree = games.RandomTree

// NewRandomGameTree returns the root of the synthetic tree for seed with
// the given branching factor (clamped to [2, 16]).
func NewRandomGameTree(seed uint64, branch int) RandomGameTree {
	return games.NewRandomTree(seed, branch)
}
