// Package gametree is a complete Go implementation of
//
//	Richard M. Karp and Yanjun Zhang,
//	"On Parallel Evaluation of Game Trees", SPAA 1989
//	(UC Berkeley TR-89-025),
//
// covering every algorithm and model in the paper plus the substrates
// needed to exercise them:
//
//   - The leaf-evaluation model (Sections 2-4): Sequential SOLVE, Team
//     SOLVE(p) and Parallel SOLVE(w) on NOR trees; the general pruning
//     process with Sequential and Parallel alpha-beta(w) on MIN/MAX trees.
//   - The node-expansion model (Section 5): the N- variants of all four.
//   - The randomized algorithms (Section 6): the R- variants.
//   - The message-passing implementation (Section 7) with goroutine
//     processors, the six message types and the pre-emption rule.
//   - A practical goroutine engine for real games (tic-tac-toe, Connect-4,
//     Nim, Horn-clause theorem proving) built on the same cascade idea.
//   - Instance generators (worst/best case, i.i.d., near-uniform) and the
//     combinatorial bounds from the paper's analysis.
//
// This package is the public facade; see DESIGN.md for the package map and
// EXPERIMENTS.md for the reproduction of every quantitative claim.
//
// # Quick start
//
//	t := gametree.WorstCaseNOR(2, 12, 1)           // an instance of B(2,12)
//	seq, _ := gametree.SequentialSolve(t, gametree.Options{})
//	par, _ := gametree.ParallelSolve(t, 1, gametree.Options{})
//	fmt.Printf("speedup %.1f with %d processors\n",
//	        float64(seq.Steps)/float64(par.Steps), par.Processors)
package gametree

import (
	"context"

	"gametree/internal/alphabeta"
	"gametree/internal/bounds"
	"gametree/internal/core"
	"gametree/internal/engine"
	"gametree/internal/expand"
	"gametree/internal/faultnet"
	"gametree/internal/msgpass"
	"gametree/internal/pns"
	"gametree/internal/randomized"
	"gametree/internal/sched"
	"gametree/internal/telemetry"
	"gametree/internal/tree"
)

// ---------------------------------------------------------------------------
// Trees and generators (internal/tree)

// Tree is a game tree stored in a flat arena; see NewBuilder and the
// generators below for construction.
type Tree = tree.Tree

// Kind distinguishes NOR trees (Boolean AND/OR trees in NOR normal form)
// from real-valued MIN/MAX trees.
type Kind = tree.Kind

// NodeID indexes a node in a Tree.
type NodeID = tree.NodeID

// Builder constructs arbitrary trees top-down.
type Builder = tree.Builder

// LeafAssigner assigns leaf values during generation, by leaf index.
type LeafAssigner = tree.LeafAssigner

// Tree kinds.
const (
	NOR    = tree.NOR
	MinMax = tree.MinMax
)

// NewBuilder starts an explicit tree of the given kind.
func NewBuilder(kind Kind) *Builder { return tree.NewBuilder(kind) }

// Uniform builds the uniform d-ary tree of height n (the classes B(d,n)
// and M(d,n) of the paper) with leaf values from assign.
func Uniform(kind Kind, d, n int, assign LeafAssigner) *Tree {
	return tree.Uniform(kind, d, n, assign)
}

// WorstCaseNOR builds the B(d,n) member on which Sequential SOLVE must
// evaluate every leaf; rootValue selects val(root).
func WorstCaseNOR(d, n int, rootValue int32) *Tree { return tree.WorstCaseNOR(d, n, rootValue) }

// BestCaseNOR builds the B(d,n) member with maximal pruning (sequential
// work equal to the proof-tree size).
func BestCaseNOR(d, n int, rootValue int32) *Tree { return tree.BestCaseNOR(d, n, rootValue) }

// IIDNor builds a B(d,n) member with i.i.d. Bernoulli(p) leaves — the
// i.i.d. model of Section 6.
func IIDNor(d, n int, p float64, seed int64) *Tree { return tree.IIDNor(d, n, p, seed) }

// IIDMinMax builds an M(d,n) member with i.i.d. uniform leaf values.
func IIDMinMax(d, n int, lo, hi int32, seed int64) *Tree {
	return tree.IIDMinMax(d, n, lo, hi, seed)
}

// BestOrderedMinMax builds an M(d,n) member in Knuth-Moore perfect
// ordering: sequential alpha-beta evaluates exactly
// d^ceil(n/2)+d^floor(n/2)-1 leaves on it.
func BestOrderedMinMax(d, n int, seed int64) *Tree { return tree.BestOrderedMinMax(d, n, seed) }

// WorstOrderedMinMax builds an M(d,n) member in pessimal ordering.
func WorstOrderedMinMax(d, n int, seed int64) *Tree { return tree.WorstOrderedMinMax(d, n, seed) }

// NearUniform builds a tree meeting the hypotheses of Corollary 2 (degrees
// in [alpha*d, d], leaf depths in [beta*n, n]).
func NearUniform(kind Kind, d, n int, alpha, beta float64, seed int64, assign LeafAssigner) *Tree {
	return tree.NearUniform(kind, d, n, alpha, beta, seed, assign)
}

// FromNested builds a tree from nested literals; ints are leaves, []any
// are internal nodes.
func FromNested(kind Kind, spec any) *Tree { return tree.FromNested(kind, spec) }

// ParseSExpr parses a tree from "((3 5) (2 9))"-style notation.
func ParseSExpr(kind Kind, s string) (*Tree, error) { return tree.ParseSExpr(kind, s) }

// Permute returns a copy of t with every node's children independently and
// uniformly permuted.
func Permute(t *Tree, seed int64) *Tree { return tree.Permute(t, seed) }

// Skeleton builds H_T, the subtree of t spanned by the given evaluated
// leaves (Section 3), with a new-to-original node mapping.
func Skeleton(t *Tree, evaluated []NodeID) (*Tree, []NodeID) { return tree.Skeleton(t, evaluated) }

// ProofTreeSize returns the size of a smallest proof tree of a NOR tree
// (the Fact 1 certificate).
func ProofTreeSize(t *Tree) int64 { return tree.ProofTreeSize(t) }

// ---------------------------------------------------------------------------
// Leaf-evaluation model (internal/core)

// Metrics reports a leaf-evaluation-model run: steps (time), work (leaves
// evaluated), processors (max leaves per step) and the per-degree step
// histogram.
type Metrics = core.Metrics

// Options configures a simulated run.
type Options = core.Options

// SequentialSolve runs the left-to-right sequential algorithm on a NOR
// tree: one leftmost live leaf per step.
func SequentialSolve(t *Tree, opt Options) (Metrics, error) { return core.SequentialSolve(t, opt) }

// TeamSolve evaluates the leftmost p live leaves per step (Proposition 1:
// Theta(sqrt(p)) speedup).
func TeamSolve(t *Tree, p int, opt Options) (Metrics, error) { return core.TeamSolve(t, p, opt) }

// ParallelSolve evaluates all live leaves with pruning number at most w
// per step (Theorem 1: width 1 gives a linear speedup with n+1 processors
// on B(d,n)).
func ParallelSolve(t *Tree, w int, opt Options) (Metrics, error) {
	return core.ParallelSolve(t, w, opt)
}

// SequentialAlphaBeta runs the alpha-beta pruning procedure on a MIN/MAX
// tree in the leaf-evaluation model.
func SequentialAlphaBeta(t *Tree, opt Options) (Metrics, error) {
	return core.SequentialAlphaBeta(t, opt)
}

// ParallelAlphaBeta runs Parallel alpha-beta of width w (Theorem 3).
func ParallelAlphaBeta(t *Tree, w int, opt Options) (Metrics, error) {
	return core.ParallelAlphaBeta(t, w, opt)
}

// ---------------------------------------------------------------------------
// Node-expansion model (internal/expand)

// ExpandMetrics reports a node-expansion-model run.
type ExpandMetrics = expand.Metrics

// ExpandOptions configures a node-expansion run.
type ExpandOptions = expand.Options

// NSequentialSolve expands the leftmost frontier node per step.
func NSequentialSolve(t *Tree, opt ExpandOptions) (ExpandMetrics, error) {
	return expand.NSequentialSolve(t, opt)
}

// NParallelSolve expands all frontier nodes with pruning number at most w
// per step (Theorem 4).
func NParallelSolve(t *Tree, w int, opt ExpandOptions) (ExpandMetrics, error) {
	return expand.NParallelSolve(t, w, opt)
}

// NSequentialAlphaBeta is the node-expansion alpha-beta procedure.
func NSequentialAlphaBeta(t *Tree, opt ExpandOptions) (ExpandMetrics, error) {
	return expand.NSequentialAlphaBeta(t, opt)
}

// NParallelAlphaBeta is the node-expansion Parallel alpha-beta of width w.
func NParallelAlphaBeta(t *Tree, w int, opt ExpandOptions) (ExpandMetrics, error) {
	return expand.NParallelAlphaBeta(t, w, opt)
}

// ---------------------------------------------------------------------------
// Randomized algorithms (internal/randomized)

// RSequentialSolve runs the randomized sequential SOLVE (random depth-first
// order); returns the value and the expansions used.
func RSequentialSolve(t *Tree, seed int64) (int32, int64) {
	return randomized.RSequentialSolve(t, seed)
}

// RParallelSolve runs R-Parallel SOLVE of width w (Theorem 5).
func RParallelSolve(t *Tree, w int, seed int64, opt ExpandOptions) (ExpandMetrics, error) {
	return randomized.RParallelSolve(t, w, seed, opt)
}

// RSequentialAlphaBeta runs the randomized sequential alpha-beta.
func RSequentialAlphaBeta(t *Tree, seed int64) (int32, int64) {
	return randomized.RSequentialAlphaBeta(t, seed)
}

// RParallelAlphaBeta runs R-Parallel alpha-beta of width w (Theorem 6).
func RParallelAlphaBeta(t *Tree, w int, seed int64, opt ExpandOptions) (ExpandMetrics, error) {
	return randomized.RParallelAlphaBeta(t, w, seed, opt)
}

// ---------------------------------------------------------------------------
// Message-passing implementation (internal/msgpass, Section 7)

// MsgPassOptions configures the Section 7 message-passing run.
type MsgPassOptions = msgpass.Options

// MsgPassMetrics reports a message-passing run.
type MsgPassMetrics = msgpass.Metrics

// FaultNetwork is the pluggable transport the message-passing machine
// routes all traffic through. Plug a NewFaultInjector into
// MsgPassOptions.Net to subject a run to drops, duplication, reordering,
// delay, processor stalls and crashes; nil means the in-process perfect
// path with zero protocol overhead.
type FaultNetwork = faultnet.Network

// FaultConfig parameterises a deterministic fault injector.
type FaultConfig = faultnet.Config

// FaultStats counts what a fault network did to the traffic.
type FaultStats = faultnet.Stats

// ProcCrash schedules a permanent processor failure.
type ProcCrash = faultnet.ProcCrash

// ProcStall schedules a temporary processor freeze.
type ProcStall = faultnet.ProcStall

// MsgProtocolConfig tunes the ack/retransmit + heartbeat reliability
// protocol the msgpass machine runs when a FaultNetwork is attached.
type MsgProtocolConfig = msgpass.ProtocolConfig

// MsgProtocolStats reports the reliability protocol's work: retransmits,
// heartbeats, declared deaths, reassigned levels, suppressed duplicates.
type MsgProtocolStats = msgpass.ProtocolStats

// NewPerfectNetwork returns a lossless, ordered, synchronous transport —
// the explicit form of the default in-process delivery.
func NewPerfectNetwork() FaultNetwork { return faultnet.NewPerfect() }

// NewFaultInjector returns a deterministic seeded fault network: the fate
// of the k'th packet on each (from,to) link depends only on the seed and
// the link, never on goroutine scheduling.
func NewFaultInjector(cfg FaultConfig) FaultNetwork { return faultnet.NewInjector(cfg) }

// ParseFaultSpec parses a compact fault specification such as
// "drop=0.1,dup=0.02,crash=3@50ms,seed=7" into a FaultConfig.
func ParseFaultSpec(spec string) (FaultConfig, error) { return faultnet.ParseSpec(spec) }

// EvaluateMessagePassing runs the Section 7 implementation of N-Parallel
// SOLVE of width 1 on a binary NOR tree, with one goroutine processor per
// level (or per zone when Options.Processors is set).
func EvaluateMessagePassing(t *Tree, opt MsgPassOptions) (MsgPassMetrics, error) {
	return msgpass.Evaluate(t, opt)
}

// ---------------------------------------------------------------------------
// Classic baselines (internal/alphabeta)

// BaselineResult reports a classic recursive search: the value and the
// leaves evaluated.
type BaselineResult = alphabeta.Result

// Minimax evaluates a tree exhaustively.
func Minimax(t *Tree) BaselineResult { return alphabeta.Minimax(t) }

// AlphaBeta evaluates a MIN/MAX tree with classical recursive alpha-beta.
func AlphaBeta(t *Tree) BaselineResult { return alphabeta.AlphaBeta(t) }

// Scout evaluates a MIN/MAX tree with Pearl's SCOUT.
func Scout(t *Tree) BaselineResult { return alphabeta.Scout(t) }

// ---------------------------------------------------------------------------
// Engine for real games (internal/engine)

// Position is a game state searchable by the engine (negamax convention).
type Position = engine.Position

// MoveAppender is an optional Position extension: games that implement it
// let the engine recycle per-worker move buffers instead of allocating a
// fresh slice at every node (TTT, Connect4 and Domineering opt in).
type MoveAppender = engine.MoveAppender

// SearchResult reports an engine search.
type SearchResult = engine.Result

// ErrSearchCancelled is returned by the engine searches when their
// context is cancelled mid-search.
var ErrSearchCancelled = engine.ErrCancelled

// ErrSearchPanic is returned (wrapped, carrying the recovered value) when
// a Position implementation panics inside a pooled search: the panic is
// confined to the worker that hit it instead of crashing the process.
var ErrSearchPanic = engine.ErrSearchPanic

// Search evaluates pos to the given depth sequentially.
func Search(pos Position, depth int) SearchResult { return engine.Search(pos, depth) }

// SearchParallel evaluates pos using the width-style cascade over up to
// `workers` goroutines; it returns exactly Search's value.
func SearchParallel(ctx context.Context, pos Position, depth, workers int) (SearchResult, error) {
	return engine.SearchParallel(ctx, pos, depth, workers)
}

// Play returns the index of the best root move.
func Play(ctx context.Context, pos Position, depth, workers int) (int, error) {
	return engine.Play(ctx, pos, depth, workers)
}

// ---------------------------------------------------------------------------
// Bounds (internal/bounds)

// Fact1 returns the d^floor(n/2) lower bound on total work for B(d,n).
func Fact1(d, n int) int64 {
	v := bounds.Fact1(d, n)
	if !v.IsInt64() {
		return -1
	}
	return v.Int64()
}

// Fact2 returns the d^floor(n/2)+d^ceil(n/2)-1 lower bound for M(d,n)
// (also the Knuth-Moore optimal alpha-beta leaf count).
func Fact2(d, n int) int64 {
	v := bounds.Fact2(d, n)
	if !v.IsInt64() {
		return -1
	}
	return v.Int64()
}

// CriticalBias returns the root of x^d + x - 1 = 0, the hardest i.i.d.
// leaf bias for uniform d-ary NOR trees; (sqrt(5)-1)/2 for d = 2.
func CriticalBias(d int) float64 { return bounds.CriticalBias(d) }

// ---------------------------------------------------------------------------
// Additional algorithms and utilities

// SSS evaluates a MIN/MAX tree with Stockman's SSS* best-first search (the
// baseline of the paper's reference [11]); it dominates AlphaBeta on trees
// with distinct leaf values.
func SSS(t *Tree) BaselineResult { return alphabeta.SSS(t) }

// AndOrToNOR converts a Boolean AND/OR tree (MinMax kind, 0/1 leaves) to
// its NOR representation (Section 2); the NOR root evaluates to the
// complement of the AND/OR root.
func AndOrToNOR(t *Tree) *Tree { return tree.AndOrToNOR(t) }

// NORToAndOr is the inverse conversion.
func NORToAndOr(t *Tree) *Tree { return tree.NORToAndOr(t) }

// EvaluateMessagePassingAlphaBeta runs the message-passing width-1
// Parallel alpha-beta machine (the Section 7 construction carried over to
// MIN/MAX trees) on a binary MIN/MAX tree.
func EvaluateMessagePassingAlphaBeta(t *Tree, opt MsgPassOptions) (MsgPassMetrics, error) {
	return msgpass.EvaluateAlphaBeta(t, opt)
}

// ParallelSolveFixed runs Parallel SOLVE of width w restricted to p
// processors (the leaf-model counterpart of Section 7's fixed-p remark):
// of the width-w candidates, the p with the smallest pruning numbers are
// evaluated each step. p <= 0 means unrestricted.
func ParallelSolveFixed(t *Tree, w, p int, opt Options) (Metrics, error) {
	return core.ParallelSolveFixed(t, w, p, opt)
}

// ParallelAlphaBetaFixed is the MIN/MAX counterpart of ParallelSolveFixed.
func ParallelAlphaBetaFixed(t *Tree, w, p int, opt Options) (Metrics, error) {
	return core.ParallelAlphaBetaFixed(t, w, p, opt)
}

// StepTrace records one instrumented step of Parallel SOLVE: the base
// path, its Proposition 3 code, and the evaluated leaves.
type StepTrace = core.StepTrace

// TraceParallelSolve runs Parallel SOLVE of width w recording, for every
// step, the base path and its code — the proof objects of Proposition 3.
func TraceParallelSolve(t *Tree, w int, opt Options) ([]StepTrace, Metrics, error) {
	return core.TraceParallelSolve(t, w, opt)
}

// CompareCodes compares two base-path codes lexicographically (-1, 0, +1),
// zero-padding the shorter one.
func CompareCodes(a, b []int) int { return core.CompareCodes(a, b) }

// ---------------------------------------------------------------------------
// Engine extensions

// TranspositionTable is a fixed-size lock-free table shared between search
// goroutines; positions opt in by implementing Hasher.
type TranspositionTable = engine.Table

// Hasher marks positions that can hash themselves, enabling the
// transposition table.
type Hasher = engine.Hasher

// SearchOptions configures the table-driven searches, including the
// recursive-splitting knobs: SplitHorizon (remaining depth at and below
// which a worker searches sequentially in place; 0 = the default two
// ply) and SpineOnly (true restores the pre-YBWC discipline where only
// the leftmost spine opens split points and speculative subtrees run
// sequentially).
type EngineOptions = engine.SearchOptions

// NewTranspositionTable allocates a table with at least the given number
// of entries (rounded up to a power of two).
func NewTranspositionTable(entries int) *TranspositionTable { return engine.NewTable(entries) }

// SearchTT is Search with a transposition table. Cancelling ctx aborts
// the search with ErrSearchCancelled and a zero Result.
func SearchTT(ctx context.Context, pos Position, depth int, opt EngineOptions) (SearchResult, error) {
	return engine.SearchTT(ctx, pos, depth, opt)
}

// EnginePool is a resident work-stealing search pool: the worker set of
// SearchParallelTT kept alive across searches, so a long-lived caller
// (such as the gtserve service) pays pool construction once instead of
// per request. One pool runs one search at a time; several pools may
// share one TranspositionTable.
type EnginePool = engine.Pool

// NewEnginePool builds a resident pool of workers (0 = GOMAXPROCS) over
// table (nil disables the transposition table).
func NewEnginePool(workers int, table *TranspositionTable, rec *TelemetryRecorder) *EnginePool {
	return engine.NewPool(workers, table, rec)
}

// SearchIterative performs iterative deepening with a transposition table
// and returns the final result plus the principal variation.
func SearchIterative(ctx context.Context, pos Position, maxDepth int, opt EngineOptions) (SearchResult, []int, error) {
	return engine.SearchIterative(ctx, pos, maxDepth, opt)
}

// SearchParallelTT combines the parallel cascade with a shared lock-free
// transposition table.
func SearchParallelTT(ctx context.Context, pos Position, depth int, opt EngineOptions) (SearchResult, error) {
	return engine.SearchParallelTT(ctx, pos, depth, opt)
}

// StationaryBias returns the fixed point of the NOR level map
// q -> (1-q)^d: the i.i.d. leaf bias under which the value distribution of
// a uniform d-ary NOR tree is the same at every height (the genuinely
// hard i.i.d. regime). It equals 1 - CriticalBias(d) via the Section 2
// complementation.
func StationaryBias(d int) float64 { return bounds.StationaryBias(d) }

// ExpectedSolveWork returns the exact expected number of leaves Sequential
// SOLVE evaluates on B(d,n) with i.i.d. Bernoulli(p) leaves (a two-state
// dynamic program over the height).
func ExpectedSolveWork(d, n int, p float64) float64 { return bounds.ExpectedSolveWork(d, n, p) }

// RootOneProbability returns P(val(T)=1) for T in B(d,n) with Bernoulli(p)
// leaves.
func RootOneProbability(d, n int, p float64) float64 { return bounds.RootOneProbability(d, n, p) }

// BinarizeNOR rewrites a d-ary NOR tree as an equivalent strictly binary
// NOR tree (using NOT/OR gadgets with constant 0-leaves), so any tree can
// drive the Section 7 message-passing machine.
func BinarizeNOR(t *Tree) *Tree { return tree.BinarizeNOR(t) }

// TeamAlphaBeta evaluates the leftmost p unfinished leaves of the pruned
// tree per step — the MIN/MAX counterpart of TeamSolve.
func TeamAlphaBeta(t *Tree, p int, opt Options) (Metrics, error) {
	return core.TeamAlphaBeta(t, p, opt)
}

// NTeamSolve expands the leftmost p frontier nodes per step — the
// node-expansion counterpart of TeamSolve.
func NTeamSolve(t *Tree, p int, opt ExpandOptions) (ExpandMetrics, error) {
	return expand.NTeamSolve(t, p, opt)
}

// TraceParallelAlphaBeta is the MIN/MAX counterpart of TraceParallelSolve.
func TraceParallelAlphaBeta(t *Tree, w int, opt Options) ([]StepTrace, Metrics, error) {
	return core.TraceParallelAlphaBeta(t, w, opt)
}

// SearchPVS evaluates pos with principal variation search (NegaScout, the
// modern form of SCOUT); same value as Search. Cancelling ctx returns
// ErrSearchCancelled within the engine's node-poll budget.
func SearchPVS(ctx context.Context, pos Position, depth int, opt EngineOptions) (SearchResult, error) {
	return engine.SearchPVS(ctx, pos, depth, opt)
}

// MTDF evaluates pos with Plaat's MTD(f) — zero-window searches driven by
// the transposition table, the depth-first reformulation of SSS*.
func MTDF(pos Position, depth int, first int32, opt EngineOptions) SearchResult {
	return engine.MTDF(pos, depth, first, opt)
}

// WidthProcessorBound returns sum_{k<=w} C(n,k)(d-1)^k, the maximum
// parallel degree Parallel SOLVE of width w can reach on a uniform d-ary
// tree of height n (the O(n^w) processor count of the paper's
// conclusion). Returns -1 if it overflows int64.
func WidthProcessorBound(d, n, w int) int64 {
	v := bounds.WidthProcessorBound(d, n, w)
	if !v.IsInt64() {
		return -1
	}
	return v.Int64()
}

// Profile is the per-step parallel-degree sequence of a simulated run,
// replayable under any finite processor count (ceil(degree/P) time per
// step — greedy list scheduling, bounded by Brent's theorem).
type Profile = sched.Profile

// ProfileOf extracts a replayable Profile from a run's metrics.
func ProfileOf(m Metrics) Profile { return sched.FromMetrics(m) }

// RScout runs the randomized SCOUT variant of the paper's Section 6
// closing remark (children visited in random order in both test and
// evaluation phases); returns the value and leaf evaluations used.
func RScout(t *Tree, seed int64) (int32, int64) { return randomized.RScout(t, seed) }

// SearchRootSplit is the classical root-splitting parallel search (the
// paper's references [2,4] era baseline): root moves distributed across
// workers with a shared atomically-tightened alpha. It now runs as a
// special case of the pooled searcher — one split point at the root,
// sequential subtrees below — kept as a baseline for the cascade; same
// value as Search.
func SearchRootSplit(ctx context.Context, pos Position, depth, workers int) (SearchResult, error) {
	return engine.SearchRootSplit(ctx, pos, depth, workers)
}

// ---------------------------------------------------------------------------
// Search telemetry (internal/telemetry)

// TelemetryRecorder collects per-worker search counters (tasks, steals,
// splits, aborts, transposition-table traffic) and, when tracing is
// enabled, split-point lifetime spans writable as Chrome trace_event
// JSON. Attach one via EngineOptions.Telemetry; a nil recorder means
// telemetry off and costs the engine one branch per event.
type TelemetryRecorder = telemetry.Recorder

// TelemetrySnapshot is a point-in-time view of a recorder's counters.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryReport is the condensed, JSON-serialisable form of a snapshot:
// steal efficiency, abort-drain latency, TT hit rate, load skew.
type TelemetryReport = telemetry.Report

// NewTelemetryRecorder returns an empty recorder with tracing off.
func NewTelemetryRecorder() *TelemetryRecorder { return telemetry.NewRecorder() }

// SearchParallelOpt is SearchParallel with the full option set: optional
// transposition table and optional telemetry recorder.
func SearchParallelOpt(ctx context.Context, pos Position, depth int, opt EngineOptions) (SearchResult, error) {
	return engine.SearchParallelOpt(ctx, pos, depth, opt)
}

// ---------------------------------------------------------------------------
// Proof-number solver (internal/pns)

// ProofVerdict is the outcome of a proof-number solve: whether the side
// to move at the root wins (Proven), loses (Disproven), or the solve
// stopped first (Unknown).
type ProofVerdict = pns.Verdict

// Proof-number verdicts.
const (
	ProofUnknown   = pns.Unknown
	ProofProven    = pns.Proven
	ProofDisproven = pns.Disproven
)

// ProofOptions configures a proof-number solve: optional shared
// TranspositionTable (proof/disproof numbers pack into the standard
// entry layout, so solvers and alpha-beta searches share one table),
// MaxNodes expansion budget, and PN2Budget enabling the two-level PN²
// variant in sequential solves.
type ProofOptions = pns.Options

// ProofResult reports a solve: verdict, root proof/disproof numbers and
// work counters.
type ProofResult = pns.Result

// ProofSolver holds the solve state for one root position; it is
// retained across calls, so a budget- or deadline-stopped solve resumes
// where it left off.
type ProofSolver = pns.Solver

// NewProofSolver builds a solver for pos (implement Hasher on the
// position for transposition-table sharing).
func NewProofSolver(pos Position, opt ProofOptions) *ProofSolver { return pns.New(pos, opt) }

// SolvePN runs sequential proof-number search (PN² when
// ProofOptions.PN2Budget is set) to a verdict, budget stop or
// cancellation.
func SolvePN(ctx context.Context, pos Position, opt ProofOptions) (ProofResult, error) {
	return pns.New(pos, opt).Solve(ctx)
}

// SolveParallel runs proof-number search on the resident workers of an
// EnginePool: concurrent most-proving-node descents steered apart by
// virtual proof numbers, with real numbers deciding the verdict. With
// one worker it expands exactly the sequential PN node sequence.
func SolveParallel(ctx context.Context, pool *EnginePool, pos Position, opt ProofOptions) (ProofResult, error) {
	s := pns.New(pos, opt)
	return s.SolveParallel(ctx, pool)
}
