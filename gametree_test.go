package gametree_test

import (
	"context"
	"fmt"
	"testing"

	"gametree"
)

// The public facade is exercised end to end, the way a downstream user
// would: generators -> simulators -> models -> engine.

func TestPublicQuickstartFlow(t *testing.T) {
	tr := gametree.WorstCaseNOR(2, 10, 1)
	seq, err := gametree.SequentialSolve(tr, gametree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := gametree.ParallelSolve(tr, 1, gametree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Value != 1 || par.Value != 1 {
		t.Fatalf("values: %d %d", seq.Value, par.Value)
	}
	if par.Steps >= seq.Steps {
		t.Errorf("no speedup: %d vs %d", par.Steps, seq.Steps)
	}
	if par.Processors > tr.Height+1 {
		t.Errorf("width 1 used %d processors", par.Processors)
	}
}

func TestPublicModelsAgree(t *testing.T) {
	tr := gametree.IIDNor(2, 8, gametree.CriticalBias(2), 42)
	want := tr.Evaluate()

	leaf, err := gametree.ParallelSolve(tr, 1, gametree.Options{})
	if err != nil || leaf.Value != want {
		t.Errorf("leaf model: %v %v", leaf.Value, err)
	}
	nexp, err := gametree.NParallelSolve(tr, 1, gametree.ExpandOptions{})
	if err != nil || nexp.Value != want {
		t.Errorf("node-expansion model: %v %v", nexp.Value, err)
	}
	if v, _ := gametree.RSequentialSolve(tr, 7); v != want {
		t.Errorf("randomized: %v", v)
	}
	mp, err := gametree.EvaluateMessagePassing(tr, gametree.MsgPassOptions{})
	if err != nil || mp.Value != want {
		t.Errorf("message passing: %v %v", mp.Value, err)
	}
	if got := gametree.Minimax(tr).Value; got != want {
		t.Errorf("minimax: %v", got)
	}
}

func TestPublicMinMaxSurface(t *testing.T) {
	tr := gametree.BestOrderedMinMax(2, 8, 3)
	ab := gametree.AlphaBeta(tr)
	if ab.Leaves != gametree.Fact2(2, 8) {
		t.Errorf("Knuth-Moore optimum missed: %d vs %d", ab.Leaves, gametree.Fact2(2, 8))
	}
	sc := gametree.Scout(tr)
	if sc.Value != ab.Value {
		t.Errorf("SCOUT disagrees: %d vs %d", sc.Value, ab.Value)
	}
	seq, err := gametree.SequentialAlphaBeta(tr, gametree.Options{})
	if err != nil || seq.Value != ab.Value || seq.Work != ab.Leaves {
		t.Errorf("pruning process: %+v %v", seq, err)
	}
	par, err := gametree.ParallelAlphaBeta(tr, 1, gametree.Options{})
	if err != nil || par.Value != ab.Value {
		t.Errorf("parallel alpha-beta: %+v %v", par, err)
	}
	np, err := gametree.NParallelAlphaBeta(tr, 1, gametree.ExpandOptions{})
	if err != nil || np.Value != ab.Value {
		t.Errorf("node-expansion alpha-beta: %+v %v", np, err)
	}
	rp, err := gametree.RParallelAlphaBeta(tr, 1, 11, gametree.ExpandOptions{})
	if err != nil || rp.Value != ab.Value {
		t.Errorf("randomized parallel alpha-beta: %+v %v", rp, err)
	}
	if v, _ := gametree.RSequentialAlphaBeta(tr, 5); v != ab.Value {
		t.Errorf("randomized alpha-beta: %v", v)
	}
}

func TestPublicTreeUtilities(t *testing.T) {
	tr, err := gametree.ParseSExpr(gametree.MinMax, "((3 5) (2 9))")
	if err != nil || tr.Evaluate() != 3 {
		t.Fatalf("sexpr: %v %v", tr, err)
	}
	nested := gametree.FromNested(gametree.NOR, []any{1, 0})
	if nested.Evaluate() != 0 {
		t.Error("nested NOR")
	}
	perm := gametree.Permute(nested, 1)
	if perm.Evaluate() != 0 {
		t.Error("permute changed NOR value")
	}
	b := gametree.NewBuilder(gametree.NOR)
	first := b.AddChildren(b.Root(), 2)
	b.SetLeafValue(first, 0)
	b.SetLeafValue(first+1, 0)
	built := b.Build()
	if built.Evaluate() != 1 {
		t.Error("builder tree")
	}
	wc := gametree.BestCaseNOR(2, 6, 1)
	seq, err := gametree.SequentialSolve(wc, gametree.Options{RecordLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Work != gametree.ProofTreeSize(wc) {
		t.Error("best case should match proof tree size")
	}
	h, _ := gametree.Skeleton(wc, seq.Leaves)
	if int64(h.NumLeaves()) != seq.Work {
		t.Error("skeleton leaves mismatch")
	}
	near := gametree.NearUniform(gametree.NOR, 4, 8, 0.5, 0.5, 1, nil)
	if err := near.Validate(); err != nil {
		t.Error(err)
	}
	u := gametree.Uniform(gametree.MinMax, 3, 2, func(i int) int32 { return int32(i) })
	if u.NumLeaves() != 9 {
		t.Error("uniform leaves")
	}
}

func TestPublicEngine(t *testing.T) {
	// A two-ply position: mover picks the child minimizing the
	// opponent's best reply.
	pos := examplePos{
		kids: []examplePos{
			{val: -3},
			{val: -8},
		},
	}
	r := gametree.Search(pos, 4)
	if r.Value != 8 || r.Best != 1 {
		t.Errorf("search: %+v", r)
	}
	pr, err := gametree.SearchParallel(context.Background(), pos, 4, 2)
	if err != nil || pr.Value != 8 {
		t.Errorf("parallel: %+v %v", pr, err)
	}
	idx, err := gametree.Play(context.Background(), pos, 4, 2)
	if err != nil || idx != 1 {
		t.Errorf("play: %d %v", idx, err)
	}
}

type examplePos struct {
	kids []examplePos
	val  int32
}

func (p examplePos) Moves() []gametree.Position {
	out := make([]gametree.Position, len(p.kids))
	for i, k := range p.kids {
		out[i] = k
	}
	return out
}

func (p examplePos) Evaluate() int32 { return p.val }

func TestPublicBounds(t *testing.T) {
	if gametree.Fact1(2, 10) != 32 {
		t.Error("Fact1")
	}
	if gametree.Fact2(2, 10) != 63 {
		t.Error("Fact2")
	}
	if b := gametree.CriticalBias(2); b < 0.61 || b > 0.62 {
		t.Errorf("critical bias %v", b)
	}
}

// ExampleParallelSolve demonstrates the headline Theorem 1 measurement.
func ExampleParallelSolve() {
	t := gametree.WorstCaseNOR(2, 12, 1)
	seq, _ := gametree.SequentialSolve(t, gametree.Options{})
	par, _ := gametree.ParallelSolve(t, 1, gametree.Options{})
	fmt.Printf("sequential steps: %d\n", seq.Steps)
	fmt.Printf("parallel processors: %d\n", par.Processors)
	fmt.Printf("speedup at least (n+1)/3: %v\n", seq.Steps/par.Steps >= int64(t.Height+1)/3)
	// Output:
	// sequential steps: 4096
	// parallel processors: 13
	// speedup at least (n+1)/3: true
}

func TestPublicNewSurface(t *testing.T) {
	// SSS* agrees with alpha-beta and dominates it.
	mm := gametree.WorstOrderedMinMax(2, 8, 1)
	sss := gametree.SSS(mm)
	ab := gametree.AlphaBeta(mm)
	if sss.Value != ab.Value || sss.Leaves > ab.Leaves {
		t.Errorf("SSS %+v vs AB %+v", sss, ab)
	}

	// AND/OR conversions.
	nor := gametree.IIDNor(2, 6, 0.618, 9)
	ao := gametree.NORToAndOr(nor)
	if ao.Evaluate() != 1-nor.Evaluate() {
		t.Error("NORToAndOr complement broken")
	}
	if back := gametree.AndOrToNOR(ao); back.Evaluate() != nor.Evaluate() {
		t.Error("AndOrToNOR round trip broken")
	}

	// Message-passing alpha-beta machine.
	mp, err := gametree.EvaluateMessagePassingAlphaBeta(gametree.IIDMinMax(2, 7, -50, 50, 3), gametree.MsgPassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Value != gametree.IIDMinMax(2, 7, -50, 50, 3).Evaluate() {
		t.Error("msgpass alpha-beta wrong value")
	}

	// Fixed-processor variants.
	fx, err := gametree.ParallelSolveFixed(nor, 2, 3, gametree.Options{})
	if err != nil || fx.Value != nor.Evaluate() || fx.Processors > 3 {
		t.Errorf("fixed solve: %+v %v", fx, err)
	}
	fm, err := gametree.ParallelAlphaBetaFixed(mm, 1, 2, gametree.Options{})
	if err != nil || fm.Value != mm.Evaluate() || fm.Processors > 2 {
		t.Errorf("fixed alpha-beta: %+v %v", fm, err)
	}

	// Trace API: codes strictly decrease for width 1.
	steps, _, err := gametree.TraceParallelSolve(nor, 1, gametree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(steps); i++ {
		if gametree.CompareCodes(steps[i].Code, steps[i-1].Code) >= 0 {
			t.Fatal("codes not decreasing")
		}
	}

	// Engine extensions on a real game.
	tab := gametree.NewTranspositionTable(1 << 14)
	pos := gametree.NewDomineering(4, 3)
	plain := gametree.Search(pos, 7)
	tt, err := gametree.SearchTT(context.Background(), pos, 7, gametree.EngineOptions{Table: tab})
	if err != nil || tt.Value != plain.Value {
		t.Errorf("SearchTT %d != %d (err %v)", tt.Value, plain.Value, err)
	}
	it, pv, err := gametree.SearchIterative(context.Background(), pos, 7, gametree.EngineOptions{})
	if err != nil || it.Value != plain.Value || len(pv) == 0 {
		t.Errorf("iterative: %+v %v %v", it, pv, err)
	}
	pt, err := gametree.SearchParallelTT(context.Background(), pos, 7, gametree.EngineOptions{Workers: 4})
	if err != nil || pt.Value != plain.Value {
		t.Errorf("parallel tt: %+v %v", pt, err)
	}
}

// Sweep the remaining public surface: overflow sentinels, profiles, the
// game parsers and the second facade's helpers.
func TestPublicSurfaceRemainder(t *testing.T) {
	// Overflow sentinels return -1 rather than wrapping.
	if gametree.Fact1(2, 200) != -1 || gametree.Fact2(2, 200) != -1 {
		t.Error("big bounds should report -1")
	}
	if gametree.WidthProcessorBound(2, 500, 250) != -1 {
		t.Error("huge processor bound should report -1")
	}
	if gametree.WidthProcessorBound(2, 12, 1) != 13 {
		t.Error("width-1 bound on B(2,12) is 13")
	}

	// Profiles replay under Brent scheduling.
	tr := gametree.WorstCaseNOR(2, 10, 1)
	m, err := gametree.ParallelSolve(tr, 1, gametree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := gametree.ProfileOf(m)
	if prof.Work() != m.Work || prof.Steps() != m.Steps {
		t.Error("profile mismatch")
	}
	if prof.Replay(tr.Height+1) != m.Steps {
		t.Error("replay at n+1 processors must equal the step count")
	}

	// Game parsers and helpers.
	p, err := gametree.ParseTicTacToe("XOX.O..X.")
	if err != nil || p.Winner() != 0 {
		t.Errorf("parse: %v %v", p, err)
	}
	c4 := gametree.StandardConnect4()
	if c4.W != 7 || c4.H != 6 || c4.Need != 4 {
		t.Error("standard board dimensions")
	}
	kb, goal := gametree.LayeredHornKB(3, 2, 2, 2, 0.5, 1)
	if _, err := kb.ProofTree(goal, 0); err != nil {
		t.Error(err)
	}

	// Message-passing alpha-beta under zones.
	mm := gametree.IIDMinMax(2, 6, -50, 50, 4)
	mp, err := gametree.EvaluateMessagePassingAlphaBeta(mm, gametree.MsgPassOptions{Processors: 2})
	if err != nil || mp.Value != mm.Evaluate() {
		t.Errorf("msgpass ab zones: %+v %v", mp, err)
	}

	// Root splitting and the team variants through the facade.
	rs, err := gametree.SearchRootSplit(context.Background(), gametree.NewNim(2, 3), 6, 2)
	if err != nil || (rs.Value > 0) != (gametree.NewNim(2, 3).XorValue() != 0) {
		t.Errorf("root split: %+v %v", rs, err)
	}
	ta, err := gametree.TeamAlphaBeta(mm, 3, gametree.Options{})
	if err != nil || ta.Value != mm.Evaluate() {
		t.Errorf("team ab: %+v %v", ta, err)
	}
	nt, err := gametree.NTeamSolve(tr, 3, gametree.ExpandOptions{})
	if err != nil || nt.Value != 1 {
		t.Errorf("n-team: %+v %v", nt, err)
	}
	if v, _ := gametree.RScout(mm, 9); v != mm.Evaluate() {
		t.Errorf("rscout: %v", v)
	}

	// Binarize + message passing end to end through the facade.
	ternary := gametree.IIDNor(3, 4, 0.3, 2)
	bin := gametree.BinarizeNOR(ternary)
	bm, err := gametree.EvaluateMessagePassing(bin, gametree.MsgPassOptions{})
	if err != nil || bm.Value != ternary.Evaluate() {
		t.Errorf("binarized msgpass: %+v %v", bm, err)
	}
}
