module gametree

go 1.22
