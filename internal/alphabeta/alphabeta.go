// Package alphabeta provides reference sequential implementations of the
// classical game-tree search algorithms on explicit trees: full minimax,
// depth-first alpha-beta pruning (Knuth & Moore 1975, reference [5] of the
// paper) and SCOUT (Pearl, reference [7]). They serve three purposes:
//
//  1. correctness oracles for the step-model simulators in internal/core,
//  2. sequential baselines for the experiment harness, and
//  3. the leaf-count cross-check that the paper's Sequential alpha-beta
//     (the width-0 pruning process) visits exactly the classical set of
//     leaves.
package alphabeta

import (
	"math"

	"gametree/internal/tree"
)

// Result reports the value computed and the number of leaves evaluated.
type Result struct {
	Value  int32
	Leaves int64
}

// Minimax evaluates the tree with no pruning; every leaf is visited.
func Minimax(t *tree.Tree) Result {
	var leaves int64
	var eval func(v tree.NodeID) int32
	eval = func(v tree.NodeID) int32 {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			return nd.Value
		}
		best := eval(nd.FirstChild)
		if t.IsMaxNode(v) {
			for i := int32(1); i < nd.NumChildren; i++ {
				if x := eval(nd.FirstChild + tree.NodeID(i)); x > best {
					best = x
				}
			}
		} else {
			for i := int32(1); i < nd.NumChildren; i++ {
				if x := eval(nd.FirstChild + tree.NodeID(i)); x < best {
					best = x
				}
			}
		}
		return best
	}
	return Result{Value: eval(t.Root()), Leaves: leaves}
}

// AlphaBeta evaluates a MIN/MAX tree with fail-hard alpha-beta pruning and
// returns the root value and the number of leaves evaluated. With the
// cutoff condition value >= beta (resp. <= alpha) it evaluates exactly the
// leaf set of the paper's Sequential alpha-beta pruning process.
func AlphaBeta(t *tree.Tree) Result {
	if t.Kind != tree.MinMax {
		panic("alphabeta: AlphaBeta requires a MinMax tree")
	}
	var leaves int64
	var search func(v tree.NodeID, alpha, beta int64) int64
	search = func(v tree.NodeID, alpha, beta int64) int64 {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			return int64(nd.Value)
		}
		if t.IsMaxNode(v) {
			best := int64(math.MinInt32)
			for i := int32(0); i < nd.NumChildren; i++ {
				x := search(nd.FirstChild+tree.NodeID(i), alpha, beta)
				if x > best {
					best = x
				}
				if best > alpha {
					alpha = best
				}
				if alpha >= beta {
					break
				}
			}
			return best
		}
		best := int64(math.MaxInt32)
		for i := int32(0); i < nd.NumChildren; i++ {
			x := search(nd.FirstChild+tree.NodeID(i), alpha, beta)
			if x < best {
				best = x
			}
			if best < beta {
				beta = best
			}
			if alpha >= beta {
				break
			}
		}
		return best
	}
	v := search(t.Root(), math.MinInt32, math.MaxInt32)
	return Result{Value: int32(v), Leaves: leaves}
}

// Scout evaluates a MIN/MAX tree with Pearl's SCOUT algorithm: the first
// child is evaluated exactly; each subsequent child is first *tested*
// against the current best with a boolean test procedure, and re-evaluated
// only if the test fails to dismiss it.
func Scout(t *tree.Tree) Result {
	if t.Kind != tree.MinMax {
		panic("alphabeta: Scout requires a MinMax tree")
	}
	var leaves int64

	// test reports whether val(v) > bound (when gt) or val(v) < bound.
	var test func(v tree.NodeID, bound int64, gt bool) bool
	var eval func(v tree.NodeID) int64

	test = func(v tree.NodeID, bound int64, gt bool) bool {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			if gt {
				return int64(nd.Value) > bound
			}
			return int64(nd.Value) < bound
		}
		if t.IsMaxNode(v) {
			// val(v) > bound iff some child > bound;
			// val(v) < bound iff all children < bound.
			for i := int32(0); i < nd.NumChildren; i++ {
				if test(nd.FirstChild+tree.NodeID(i), bound, gt) {
					if gt {
						return true
					}
				} else if !gt {
					return false
				}
			}
			return !gt
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			if test(nd.FirstChild+tree.NodeID(i), bound, gt) {
				if !gt {
					return true
				}
			} else if gt {
				return false
			}
		}
		return gt
	}

	eval = func(v tree.NodeID) int64 {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			return int64(nd.Value)
		}
		best := eval(nd.FirstChild)
		for i := int32(1); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if t.IsMaxNode(v) {
				if test(c, best, true) {
					best = eval(c)
				}
			} else {
				if test(c, best, false) {
					best = eval(c)
				}
			}
		}
		return best
	}
	return Result{Value: int32(eval(t.Root())), Leaves: leaves}
}

// SolveLTR is the reference recursive "left-to-right" algorithm S-SOLVE of
// Section 2 for NOR trees, counting evaluated leaves. It must agree
// leaf-for-leaf with core.SequentialSolve.
func SolveLTR(t *tree.Tree) Result {
	if t.Kind != tree.NOR {
		panic("alphabeta: SolveLTR requires a NOR tree")
	}
	var leaves int64
	var solve func(v tree.NodeID) int32
	solve = func(v tree.NodeID) int32 {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			return nd.Value
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			if solve(nd.FirstChild+tree.NodeID(i)) == 1 {
				return 0
			}
		}
		return 1
	}
	return Result{Value: solve(t.Root()), Leaves: leaves}
}
