package alphabeta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gametree/internal/tree"
)

func TestMinimaxVisitsAllLeaves(t *testing.T) {
	tr := tree.IIDMinMax(3, 4, -10, 10, 1)
	r := Minimax(tr)
	if r.Leaves != int64(tr.NumLeaves()) {
		t.Errorf("minimax visited %d of %d leaves", r.Leaves, tr.NumLeaves())
	}
	if r.Value != tr.Evaluate() {
		t.Errorf("minimax value %d, want %d", r.Value, tr.Evaluate())
	}
}

func TestAlphaBetaAgreesWithMinimax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDMinMax(2+rng.Intn(3), rng.Intn(5), -100, 100, rng.Int63())
		ab := AlphaBeta(tr)
		mm := Minimax(tr)
		return ab.Value == mm.Value && ab.Leaves <= mm.Leaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScoutAgreesWithMinimax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDMinMax(2+rng.Intn(3), rng.Intn(5), -100, 100, rng.Int63())
		return Scout(tr).Value == Minimax(tr).Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScoutCompetitiveOnOrderedTrees(t *testing.T) {
	// On best-ordered trees SCOUT's tests always succeed cheaply; it
	// should evaluate no more leaves than plain minimax and typically no
	// more than alpha-beta.
	for n := 1; n <= 6; n++ {
		tr := tree.BestOrderedMinMax(2, n, int64(n))
		sc := Scout(tr)
		ab := AlphaBeta(tr)
		mm := Minimax(tr)
		if sc.Leaves > mm.Leaves {
			t.Errorf("n=%d: SCOUT %d > minimax %d", n, sc.Leaves, mm.Leaves)
		}
		if sc.Value != ab.Value {
			t.Errorf("n=%d: SCOUT value %d != %d", n, sc.Value, ab.Value)
		}
	}
}

func TestSolveLTRAgainstEvaluate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDNor(2+rng.Intn(3), rng.Intn(6), 0.5, rng.Int63())
		r := SolveLTR(tr)
		return r.Value == tr.Evaluate() && r.Leaves >= 1 && r.Leaves <= int64(tr.NumLeaves())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAlphaBetaOnDegenerateTrees(t *testing.T) {
	leaf := tree.FromNested(tree.MinMax, 7)
	if r := AlphaBeta(leaf); r.Value != 7 || r.Leaves != 1 {
		t.Errorf("leaf: %+v", r)
	}
	chain := tree.FromNested(tree.MinMax, []any{[]any{[]any{5}}})
	if r := AlphaBeta(chain); r.Value != 5 || r.Leaves != 1 {
		t.Errorf("chain: %+v", r)
	}
	if r := Scout(chain); r.Value != 5 {
		t.Errorf("scout chain: %+v", r)
	}
}

func TestKindPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	nor := tree.IIDNor(2, 2, 0.5, 1)
	mm := tree.IIDMinMax(2, 2, 0, 9, 1)
	mustPanic("AlphaBeta on NOR", func() { AlphaBeta(nor) })
	mustPanic("Scout on NOR", func() { Scout(nor) })
	mustPanic("SolveLTR on MinMax", func() { SolveLTR(mm) })
}
