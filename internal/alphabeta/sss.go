package alphabeta

import (
	"container/heap"
	"math"

	"gametree/internal/tree"
)

// This file implements Stockman's SSS* (1979), the best-first game-tree
// search the paper cites through reference [11] ("Parallel alpha-beta
// versus parallel SSS*", Vornberger 1987). SSS* maintains a priority
// queue (OPEN) of states (node, LIVE|SOLVED, merit) popped in order of
// decreasing merit. A state's merit is an upper bound on what the root
// can achieve through that node: children of a MAX node enter OPEN
// together as competing alternatives, while children of a MIN node are
// examined left to right, each brother inheriting the previous one's
// solved merit as its cap — so the cap threads min() through MIN levels
// while the pop discipline realizes max() at MAX levels. When a child of
// a MAX node is popped SOLVED it was the best alternative anywhere in
// OPEN, so it solves its parent and the siblings' pending work is purged.
// SSS* dominates alpha-beta: on trees with distinct leaf values it never
// evaluates a leaf that alpha-beta prunes.

type sssStatus uint8

const (
	sssLive sssStatus = iota
	sssSolved
)

type sssState struct {
	node   tree.NodeID
	status sssStatus
	merit  int64
	order  int32 // preorder index for left-first tie-breaking
}

type sssQueue []sssState

func (q sssQueue) Len() int { return len(q) }
func (q sssQueue) Less(i, j int) bool {
	if q[i].merit != q[j].merit {
		return q[i].merit > q[j].merit // max merit first
	}
	return q[i].order < q[j].order // ties: leftmost first
}
func (q sssQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *sssQueue) Push(x any)         { *q = append(*q, x.(sssState)) }
func (q *sssQueue) Pop() any           { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }
func (q *sssQueue) popState() sssState { return heap.Pop(q).(sssState) }

// SSS evaluates a MIN/MAX tree with SSS* and returns the root value and
// the number of leaves evaluated.
func SSS(t *tree.Tree) Result {
	if t.Kind != tree.MinMax {
		panic("alphabeta: SSS requires a MinMax tree")
	}
	// Preorder indices give the left-first tie-breaking SSS*'s dominance
	// proof assumes.
	order := make([]int32, t.Len())
	idx := int32(0)
	var number func(v tree.NodeID)
	number = func(v tree.NodeID) {
		order[v] = idx
		idx++
		nd := t.Node(v)
		for i := int32(0); i < nd.NumChildren; i++ {
			number(nd.FirstChild + tree.NodeID(i))
		}
	}
	number(t.Root())

	var leaves int64
	evaluated := make([]bool, t.Len())
	purgedRoots := make([]bool, t.Len())
	isPurged := func(v tree.NodeID) bool {
		for x := v; x != tree.None; x = t.Node(x).Parent {
			if purgedRoots[x] {
				return true
			}
		}
		return false
	}

	q := &sssQueue{}
	heap.Push(q, sssState{node: t.Root(), status: sssLive, merit: math.MaxInt32, order: order[t.Root()]})
	for q.Len() > 0 {
		st := q.popState()
		if isPurged(st.node) {
			continue // lazily deleted by a case-5 purge
		}
		nd := t.Node(st.node)
		if st.status == sssLive {
			switch {
			case nd.NumChildren == 0:
				if !evaluated[st.node] {
					evaluated[st.node] = true
					leaves++
				}
				m := int64(nd.Value)
				if st.merit < m {
					m = st.merit
				}
				heap.Push(q, sssState{st.node, sssSolved, m, st.order})
			case t.IsMaxNode(st.node):
				// MAX: every child starts a competing alternative;
				// the max-merit pop discipline explores the most
				// promising one first.
				for i := int32(0); i < nd.NumChildren; i++ {
					c := nd.FirstChild + tree.NodeID(i)
					heap.Push(q, sssState{c, sssLive, st.merit, order[c]})
				}
			default:
				// MIN: children are examined left to right; the
				// merit cap threads the running minimum through the
				// brother chain.
				c := nd.FirstChild
				heap.Push(q, sssState{c, sssLive, st.merit, order[c]})
			}
			continue
		}
		// SOLVED
		if st.node == t.Root() {
			return Result{Value: int32(st.merit), Leaves: leaves}
		}
		p := nd.Parent
		if t.IsMaxNode(p) {
			// Parent is MAX: this child was the best alternative in
			// OPEN, so its capped value solves the parent; the sibling
			// alternatives below p are no longer needed. Mark each
			// child as a purge root (p itself must stay poppable for
			// the SOLVED state pushed next).
			pn := t.Node(p)
			for i := int32(0); i < pn.NumChildren; i++ {
				purgedRoots[pn.FirstChild+tree.NodeID(i)] = true
			}
			heap.Push(q, sssState{p, sssSolved, st.merit, order[p]})
			continue
		}
		// Parent is MIN: move to the next brother with the tightened cap,
		// or solve the parent when this was the last one.
		if nd.ChildIndex+1 < t.Node(p).NumChildren {
			next := st.node + 1
			heap.Push(q, sssState{next, sssLive, st.merit, order[next]})
		} else {
			heap.Push(q, sssState{p, sssSolved, st.merit, order[p]})
		}
	}
	panic("alphabeta: SSS* queue exhausted without solving the root (bug)")
}
