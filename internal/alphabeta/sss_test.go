package alphabeta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gametree/internal/tree"
)

func TestSSSAgreesWithMinimax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDMinMax(2+rng.Intn(3), rng.Intn(5), -100, 100, rng.Int63())
		return SSS(tr).Value == Minimax(tr).Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Stockman's dominance theorem: with distinct leaf values, SSS* evaluates
// a subset of the leaves alpha-beta evaluates.
func TestSSSDominatesAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(4)
		nl := 1
		for i := 0; i < n; i++ {
			nl *= d
		}
		perm := rng.Perm(nl)
		tr := tree.Uniform(tree.MinMax, d, n, func(i int) int32 { return int32(perm[i]) })
		sss := SSS(tr)
		ab := AlphaBeta(tr)
		if sss.Value != ab.Value {
			t.Fatalf("trial %d: SSS %d != alpha-beta %d", trial, sss.Value, ab.Value)
		}
		if sss.Leaves > ab.Leaves {
			t.Fatalf("trial %d (d=%d n=%d): SSS* evaluated %d leaves, alpha-beta %d (dominance violated)",
				trial, d, n, sss.Leaves, ab.Leaves)
		}
	}
}

// On a best-ordered tree both SSS* and alpha-beta hit the Knuth-Moore
// optimum; on worst-ordered trees SSS* is strictly better.
func TestSSSOnOrderedTrees(t *testing.T) {
	for n := 2; n <= 6; n++ {
		best := tree.BestOrderedMinMax(2, n, int64(n))
		sssBest := SSS(best)
		abBest := AlphaBeta(best)
		if sssBest.Leaves > abBest.Leaves {
			t.Errorf("n=%d best-ordered: SSS %d > AB %d", n, sssBest.Leaves, abBest.Leaves)
		}
		worst := tree.WorstOrderedMinMax(2, n, int64(n))
		sssWorst := SSS(worst)
		abWorst := AlphaBeta(worst)
		if sssWorst.Value != abWorst.Value {
			t.Errorf("n=%d: value mismatch", n)
		}
		if n >= 4 && sssWorst.Leaves >= abWorst.Leaves {
			t.Errorf("n=%d worst-ordered: SSS %d not better than AB %d",
				n, sssWorst.Leaves, abWorst.Leaves)
		}
	}
}

func TestSSSDegenerate(t *testing.T) {
	leaf := tree.FromNested(tree.MinMax, 9)
	if r := SSS(leaf); r.Value != 9 || r.Leaves != 1 {
		t.Errorf("leaf: %+v", r)
	}
	chain := tree.FromNested(tree.MinMax, []any{[]any{[]any{4}}})
	if r := SSS(chain); r.Value != 4 {
		t.Errorf("chain: %+v", r)
	}
}

func TestSSSPanicsOnNOR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SSS(tree.IIDNor(2, 2, 0.5, 1))
}
