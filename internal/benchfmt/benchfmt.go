// Package benchfmt defines the BENCH_engine.json document shared by
// gtbench (writer) and gtstat (reader/differ).
//
// Schema v1 was a single snapshot: machine info plus one set of
// benchmark rows, overwritten on every run. Schema v2 turns the file
// into a trajectory: a runs[] history — each run stamped with the
// commit, UTC date, Go version and GOMAXPROCS — with the latest run
// mirrored at the top level so v1 consumers (gtbench -checkbench,
// dashboards) keep working unchanged. Load normalizes both versions
// into the v2 shape, so readers only ever see a populated Runs slice.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"

	"gametree/internal/telemetry"
)

// Schema identifiers. V2 readers accept both.
const (
	SchemaV1 = "gametree/bench-engine/v1"
	SchemaV2 = "gametree/bench-engine/v2"
)

// Machine describes the host a document was produced on. Per-run
// variation (GOMAXPROCS, Go version) is also stamped on each Run, since
// a trajectory may span toolchain upgrades.
type Machine struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Item is one benchmark row: a (workload, configuration, workers)
// triple with its throughput measurements.
type Item struct {
	Workload string `json:"workload"` // tree | connect4
	Name     string `json:"name"`     // sequential | spawn | pooled | pooled_spine | pooled_tt
	Workers  int    `json:"workers"`  // 0 for sequential
	// YBWC records the splitting discipline of pooled rows: "on" for
	// recursive YBWC (the default engine), "off" for spine-only splits.
	// Empty for configurations where the knob does not apply. The
	// discipline is also encoded in Name (pooled vs pooled_spine) so
	// Key() alignment across runs stays unchanged.
	YBWC string `json:"ybwc,omitempty"`
	// Shards is the number of worker processes behind the serving tier
	// for distributed gtload rows; 0 (the default) means a single
	// process and keeps the row key identical to pre-shard documents.
	Shards      int     `json:"shards,omitempty"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	NodesPerOp  float64 `json:"nodes_per_op"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Value       int32   `json:"value"` // search value: must agree per workload
	// Throughput ratios against the two baselines of the same workload
	// (zero for the baselines themselves).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	SpeedupVsSpawn      float64 `json:"speedup_vs_spawn,omitempty"`
	// Serving-layer measurements (gtload / BENCH_serve.json rows only):
	// completed-request throughput, latency quantiles over completed
	// requests, and the fraction of requests that did not complete with
	// 2xx (shed, timed out or failed).
	QPS     float64 `json:"qps,omitempty"`
	P50Ns   float64 `json:"p50_ns,omitempty"`
	P99Ns   float64 `json:"p99_ns,omitempty"`
	ErrRate float64 `json:"err_rate,omitempty"`
	// Degraded counts 200s answered in degraded mode (shard ring empty,
	// coordinator fell back to local compute) — exact values, reduced
	// capacity. Nonzero only for chaos/fault rows.
	Degraded int `json:"degraded,omitempty"`
}

// Key identifies the configuration a row measures, for aligning rows
// across runs.
func (it Item) Key() string {
	key := fmt.Sprintf("%s/%s/w%d", it.Workload, it.Name, it.Workers)
	if it.Shards > 0 {
		key += fmt.Sprintf("/s%d", it.Shards)
	}
	return key
}

// TelemetryEntry pairs a telemetry report (counters plus histogram
// quantiles) with the configuration that produced it.
type TelemetryEntry struct {
	Workload string           `json:"workload"`
	Name     string           `json:"name"`
	Workers  int              `json:"workers"`
	YBWC     string           `json:"ybwc,omitempty"` // on | off; empty when not applicable
	Report   telemetry.Report `json:"report"`
}

// Run is one point of the trajectory. Label distinguishes runs of the
// same document measuring different setups (gtload stamps "baseline" vs
// "serve"); rows still align across runs by Item.Key alone, which is
// what lets gtstat gate one setup against the other.
type Run struct {
	Generated  string           `json:"generated"` // UTC RFC3339
	Commit     string           `json:"commit"`
	Label      string           `json:"label,omitempty"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []Item           `json:"benchmarks"`
	Telemetry  []TelemetryEntry `json:"telemetry,omitempty"`
}

// Doc is the on-disk document. The top-level Generated/Commit/
// Benchmarks/Telemetry fields mirror the latest run (v1 compatibility);
// Runs holds the full history, oldest first.
type Doc struct {
	Schema     string           `json:"schema"`
	Generated  string           `json:"generated"`
	Commit     string           `json:"commit"`
	Machine    Machine          `json:"machine"`
	Benchmarks []Item           `json:"benchmarks"`
	Telemetry  []TelemetryEntry `json:"telemetry,omitempty"`
	Runs       []Run            `json:"runs,omitempty"`
}

// Normalize brings a parsed document to the v2 shape: a v1 document (or
// a v2 document with an empty history) has its top-level snapshot
// synthesized into a single-entry Runs slice. Returns an error for an
// unknown schema.
func (d *Doc) Normalize() error {
	switch d.Schema {
	case SchemaV1, SchemaV2:
	default:
		return fmt.Errorf("unknown schema %q (want %q or %q)", d.Schema, SchemaV1, SchemaV2)
	}
	if len(d.Runs) == 0 && len(d.Benchmarks) > 0 {
		d.Runs = []Run{{
			Generated:  d.Generated,
			Commit:     d.Commit,
			GoVersion:  d.Machine.GoVersion,
			GOMAXPROCS: d.Machine.GOMAXPROCS,
			Benchmarks: d.Benchmarks,
			Telemetry:  d.Telemetry,
		}}
	}
	return nil
}

// Append adds a run to the history and mirrors it at the top level,
// upgrading the document to schema v2.
func (d *Doc) Append(r Run) {
	d.Schema = SchemaV2
	d.Runs = append(d.Runs, r)
	d.Generated = r.Generated
	d.Commit = r.Commit
	d.Benchmarks = r.Benchmarks
	d.Telemetry = r.Telemetry
}

// Latest returns the most recent run, or nil for an empty document.
func (d *Doc) Latest() *Run {
	if len(d.Runs) == 0 {
		return nil
	}
	return &d.Runs[len(d.Runs)-1]
}

// Load reads and normalizes a document (v1 or v2).
func Load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := d.Normalize(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// Write marshals the document to path with a trailing newline.
func Write(path string, d *Doc) error {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
