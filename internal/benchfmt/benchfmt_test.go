package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func run(commit string) Run {
	return Run{
		Generated: "2026-08-06T00:00:00Z", Commit: commit,
		GoVersion: "go1.24.0", GOMAXPROCS: 2,
		Benchmarks: []Item{{Workload: "tree", Name: "pooled", Workers: 2, NodesPerSec: 1e6}},
	}
}

// TestAppendMirrorsLatest: Append must keep the v1-compatible top-level
// snapshot in lockstep with the newest history entry.
func TestAppendMirrorsLatest(t *testing.T) {
	var d Doc
	d.Append(run("aaa"))
	d.Append(run("bbb"))
	if d.Schema != SchemaV2 || len(d.Runs) != 2 {
		t.Fatalf("history wrong: schema=%q runs=%d", d.Schema, len(d.Runs))
	}
	if d.Commit != "bbb" || d.Latest().Commit != "bbb" {
		t.Fatalf("top level mirrors %q, latest is %q", d.Commit, d.Latest().Commit)
	}
	if len(d.Benchmarks) != 1 || d.Benchmarks[0].Key() != "tree/pooled/w2" {
		t.Fatalf("mirrored benchmarks wrong: %+v", d.Benchmarks)
	}
}

// TestLoadNormalizesV1: a v1 snapshot round-trips through disk into a
// one-run v2-shaped history carrying the machine's Go version.
func TestLoadNormalizesV1(t *testing.T) {
	r := run("ccc")
	d := Doc{
		Schema: SchemaV1, Generated: r.Generated, Commit: r.Commit,
		Machine:    Machine{GoVersion: "go1.24.0", GOMAXPROCS: 2},
		Benchmarks: r.Benchmarks,
	}
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := Write(path, &d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Commit != "ccc" || got.Runs[0].GoVersion != "go1.24.0" {
		t.Fatalf("v1 not normalized: %+v", got.Runs)
	}
	// Appending to the loaded doc upgrades the schema and grows history.
	got.Append(run("ddd"))
	if err := Write(path, got); err != nil {
		t.Fatal(err)
	}
	again, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Schema != SchemaV2 || len(again.Runs) != 2 {
		t.Fatalf("upgrade broken: schema=%q runs=%d", again.Schema, len(again.Runs))
	}
}

// TestLoadRejectsUnknownSchema guards the error path the CLIs rely on.
func TestLoadRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	raw, _ := json.Marshal(map[string]any{"schema": "gametree/bench-engine/v99"})
	if err := writeRaw(path, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func writeRaw(path string, raw []byte) error {
	return os.WriteFile(path, raw, 0o644)
}

func TestItemKeyShards(t *testing.T) {
	plain := Item{Workload: "random-d8-dup75", Name: "search", Workers: 8}
	if got, want := plain.Key(), "random-d8-dup75/search/w8"; got != want {
		t.Errorf("unsharded key %q, want %q (must align with pre-shard documents)", got, want)
	}
	sharded := plain
	sharded.Shards = 2
	if got, want := sharded.Key(), "random-d8-dup75/search/w8/s2"; got != want {
		t.Errorf("sharded key %q, want %q", got, want)
	}
}
