// Package bounds implements the combinatorial quantities appearing in the
// paper's analysis: the proof-tree lower bounds (Fact 1 and Fact 2), the
// base-path code bounds of Propositions 3 and 6, the thresholds k1 and k2
// of Lemmas 1 and 2, the Knuth–Moore optimal alpha-beta leaf count, and the
// critical leaf bias of the i.i.d. model discussed in Section 6.
//
// All exact counts use math/big so bounds stay exact for any (d, n) the
// simulators can reach.
package bounds

import (
	"math"
	"math/big"
)

// Binomial returns C(n, k) exactly; 0 when k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Pow returns b^e as a big integer (e >= 0).
func Pow(b, e int) *big.Int {
	return new(big.Int).Exp(big.NewInt(int64(b)), big.NewInt(int64(e)), nil)
}

// Fact1 returns the Section 2 lower bound d^floor(n/2) on the total work of
// ANY algorithm that evaluates an instance of B(d, n): a proof tree of a
// uniform NOR tree has degree 1 and d on alternating levels.
func Fact1(d, n int) *big.Int {
	return Pow(d, n/2)
}

// Fact2 returns the Section 4 lower bound d^floor(n/2) + d^ceil(n/2) - 1 on
// the total work of any algorithm evaluating an instance of M(d, n): the
// two one-sided proof trees share exactly one leaf.
func Fact2(d, n int) *big.Int {
	s := new(big.Int).Add(Pow(d, n/2), Pow(d, (n+1)/2))
	return s.Sub(s, big.NewInt(1))
}

// KnuthMoore returns the number of leaves examined by alpha-beta on a
// perfectly ordered uniform d-ary tree of height n: the classical optimum
// d^ceil(n/2) + d^floor(n/2) - 1 (Knuth & Moore 1975). Numerically equal to
// Fact2; both names are provided because they bound different things.
func KnuthMoore(d, n int) *big.Int { return Fact2(d, n) }

// SigmaK returns sigma_k = C(n,k) * (d-1)^k, the number of vectors in
// {0,...,d-1}^n with exactly k non-zero components — the Proposition 3
// bound on the number of width-1 steps of parallel degree k+1 on a
// skeleton:  t_{k+1}(H_T) <= sigma_k.
func SigmaK(d, n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Mul(Binomial(n, k), Pow(d-1, k))
}

// Prop6Bound returns the node-expansion-model analogue of SigmaK
// (Proposition 6): t*_{k+1}(H_T) <= (n-k+1) * C(n,k) * (d-1)^k.
//
// The paper prints the factor as (n-k), but its own derivation sums
// C(m,k)(d-1)^k over m = k..n, which has n-k+1 terms (for k=0 the count of
// admissible base-path lengths is n+1, not n); we use the corrected factor,
// which is what the experiments confirm. The O(n) slack relative to
// Proposition 3 is unchanged, so Theorem 4 is unaffected.
func Prop6Bound(d, n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Mul(big.NewInt(int64(n-k+1)), SigmaK(d, n, k))
}

// K1 returns k1 = max{ k : C(n,k) d^k <= d^floor(n/2) } from Lemma 1.
// Lemma 1 shows k1 >= alpha*n for an absolute constant alpha once n is
// large enough.
func K1(d, n int) int {
	limit := Fact1(d, n)
	k1 := 0
	for k := 0; k <= n; k++ {
		v := new(big.Int).Mul(Binomial(n, k), Pow(d, k))
		if v.Cmp(limit) <= 0 {
			k1 = k
		} else {
			break
		}
	}
	return k1
}

// K2 returns k2 = max{ k : sum_{i=0}^{k} (i+1) C(n,i) (d-1)^i <= d^floor(n/2) }
// from Lemma 2. Lemma 2 shows k2 >= alpha*n for large n.
func K2(d, n int) int {
	limit := Fact1(d, n)
	sum := new(big.Int)
	k2 := -1
	for k := 0; k <= n; k++ {
		term := new(big.Int).Mul(big.NewInt(int64(k+1)), SigmaK(d, n, k))
		sum.Add(sum, term)
		if sum.Cmp(limit) <= 0 {
			k2 = k
		} else {
			break
		}
	}
	return k2
}

// StepUpperBound returns the Proposition 4 upper bound on the number of
// steps of Parallel SOLVE of width 1 on a skeleton with S evaluated leaves:
// the maximum of sum t_i subject to t_{i+1} <= sigma_i and sum i*t_i <= S.
// It is the quantity the proof of Theorem 1 bounds by S/(c(n+1)).
func StepUpperBound(d, n int, s *big.Int) *big.Int {
	steps := new(big.Int)
	used := new(big.Int)
	for k := 0; k <= n; k++ {
		sig := SigmaK(d, n, k)
		cost := new(big.Int).Mul(big.NewInt(int64(k+1)), sig)
		rest := new(big.Int).Sub(s, used)
		if rest.Sign() <= 0 {
			break
		}
		if cost.Cmp(rest) <= 0 {
			steps.Add(steps, sig)
			used.Add(used, cost)
			continue
		}
		// Partial level: floor(rest / (k+1)) more steps of degree k+1.
		part := new(big.Int).Div(rest, big.NewInt(int64(k+1)))
		steps.Add(steps, part)
		break
	}
	return steps
}

// CriticalBias returns the root in (0,1) of x^d + x - 1 = 0. For d = 2 it
// is the golden ratio conjugate (sqrt(5)-1)/2 ~= 0.6180..., the bias used
// by Althofer's analysis cited in Section 6 — stated there for AND/OR
// trees, where it is the stationary probability of value 1 under the
// alternating AND/OR two-level map. Under this repository's NOR normal
// form (Section 2 complements leaves at even depth), the corresponding
// stationary NOR leaf bias is its complement; see StationaryBias.
func CriticalBias(d int) float64 {
	if d < 1 {
		panic("bounds: CriticalBias requires d >= 1")
	}
	f := func(x float64) float64 { return math.Pow(x, float64(d)) + x - 1 }
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// StationaryBias returns the fixed point q* in (0,1) of the NOR level map
// q -> (1-q)^d, i.e. the i.i.d. leaf bias under which the value
// distribution of a uniform d-ary NOR tree is the same at every height —
// the genuinely critical (hardest) regime for NOR trees. It equals
// 1 - CriticalBias(d): the Section 2 equivalence complements leaf values,
// carrying Althofer's AND/OR constant to the NOR side. Any other bias is
// driven by the map toward the degenerate alternating 0/1 cycle as the
// height grows.
func StationaryBias(d int) float64 { return 1 - CriticalBias(d) }

// AlphaBetaBranchingFactor returns Pearl's asymptotic branching factor
// xi_d / (1 - xi_d) of alpha-beta on uniform d-ary MIN/MAX trees with
// i.i.d. continuous leaf values (Pearl 1982, reference [8]), where xi_d is
// the root of x^d + x - 1 = 0. The expected sequential work grows like
// this factor raised to the height.
func AlphaBetaBranchingFactor(d int) float64 {
	xi := CriticalBias(d)
	return xi / (1 - xi)
}

// TheoremSpeedupFloor returns the paper's asymptotic prediction c*(n+1) for
// the width-1 speedup given a measured constant c (Theorems 1 and 3).
func TheoremSpeedupFloor(c float64, n int) float64 { return c * float64(n+1) }

// Float converts a big integer to float64 (with the usual loss of
// precision for very large values), for reporting.
func Float(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}

// WidthProcessorBound returns an upper bound on the number of processors
// Parallel SOLVE of width w can ever use on a uniform d-ary tree of
// height n: the number of root-leaf paths whose pruning-number budget
// survives, sum_{k=0}^{w} C(n,k)(d-1)^k. For w = 1 this is 1 + n(d-1),
// refining the paper's statement that width 1 needs n+1 processors on
// binary trees; the conclusion's O(n^w) processor count for general width
// is this polynomial.
func WidthProcessorBound(d, n, w int) *big.Int {
	sum := new(big.Int)
	for k := 0; k <= w && k <= n; k++ {
		sum.Add(sum, SigmaK(d, n, k))
	}
	return sum
}
