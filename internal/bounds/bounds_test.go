package bounds

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k).Int64(); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		nn, kk := int(n%40), int(k%40)
		return Binomial(nn, kk).Cmp(Binomial(nn, nn-kk)) == 0 ||
			kk > nn // out of range on one side only
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPascalProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		nn, kk := 1+int(n%30), int(k%30)
		lhs := Binomial(nn, kk)
		rhs := new(big.Int).Add(Binomial(nn-1, kk-1), Binomial(nn-1, kk))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFact1Fact2(t *testing.T) {
	if got := Fact1(2, 4).Int64(); got != 4 {
		t.Errorf("Fact1(2,4) = %d, want 4", got)
	}
	if got := Fact1(3, 5).Int64(); got != 9 {
		t.Errorf("Fact1(3,5) = %d, want 9", got)
	}
	if got := Fact2(2, 4).Int64(); got != 7 { // 4 + 4 - 1
		t.Errorf("Fact2(2,4) = %d, want 7", got)
	}
	if got := Fact2(2, 5).Int64(); got != 11 { // 4 + 8 - 1
		t.Errorf("Fact2(2,5) = %d, want 11", got)
	}
	if KnuthMoore(3, 4).Cmp(Fact2(3, 4)) != 0 {
		t.Error("KnuthMoore must equal Fact2 numerically")
	}
}

func TestSigmaKSumsToDToTheN(t *testing.T) {
	// sum_k sigma_k = d^n: every vector in {0..d-1}^n has some number of
	// non-zero components.
	for _, d := range []int{2, 3, 5} {
		for n := 0; n <= 8; n++ {
			sum := new(big.Int)
			for k := 0; k <= n; k++ {
				sum.Add(sum, SigmaK(d, n, k))
			}
			if sum.Cmp(Pow(d, n)) != 0 {
				t.Errorf("sum sigma_k for d=%d n=%d: %v != %v", d, n, sum, Pow(d, n))
			}
		}
	}
	if SigmaK(2, 5, -1).Sign() != 0 || SigmaK(2, 5, 6).Sign() != 0 {
		t.Error("sigma_k out of range should be 0")
	}
}

func TestK1K2GrowLinearly(t *testing.T) {
	// Lemmas 1 and 2: k1, k2 >= alpha*n for large n. Empirically for d=2
	// the ratio k1/n settles well above 0.2; check monotone growth and a
	// floor.
	for _, d := range []int{2, 3} {
		prev1, prev2 := -1, -1
		for n := 10; n <= 60; n += 10 {
			k1, k2 := K1(d, n), K2(d, n)
			if k1 < prev1 || k2 < prev2 {
				t.Errorf("d=%d n=%d: k1=%d k2=%d not monotone (prev %d,%d)", d, n, k1, k2, prev1, prev2)
			}
			prev1, prev2 = k1, k2
			// The asymptotic ratio is small (~0.085 for d=2: the
			// solution of H(a)+a*log2(d) = 1/2); check a loose
			// linear floor consistent with Lemma 1's "absolute
			// constant alpha".
			if n >= 30 && float64(k1) < 0.05*float64(n) {
				t.Errorf("d=%d n=%d: k1=%d below 0.05n", d, n, k1)
			}
			if k2 > k1 {
				// k2's constraint sums (i+1)*sigma_i with sigma
				// using d-1 < d, so k2 can exceed k1 for small d;
				// both must still be linear. Just sanity-check range.
				if k2 > n {
					t.Errorf("k2=%d > n=%d", k2, n)
				}
			}
		}
	}
}

func TestStepUpperBound(t *testing.T) {
	// With S = Fact1(d,n), the bound must be at least 1 and at most S.
	for _, d := range []int{2, 3} {
		for n := 2; n <= 20; n += 3 {
			s := Fact1(d, n)
			ub := StepUpperBound(d, n, s)
			if ub.Sign() <= 0 {
				t.Errorf("d=%d n=%d: non-positive bound", d, n)
			}
			if ub.Cmp(s) > 0 {
				t.Errorf("d=%d n=%d: bound %v exceeds S %v", d, n, ub, s)
			}
		}
	}
	// Larger S can only increase the bound.
	a := StepUpperBound(2, 10, big.NewInt(100))
	b := StepUpperBound(2, 10, big.NewInt(1000))
	if a.Cmp(b) > 0 {
		t.Error("StepUpperBound not monotone in S")
	}
}

func TestCriticalBias(t *testing.T) {
	golden := (math.Sqrt(5) - 1) / 2
	if got := CriticalBias(2); math.Abs(got-golden) > 1e-12 {
		t.Errorf("CriticalBias(2) = %v, want golden ratio conjugate %v", got, golden)
	}
	for d := 1; d <= 10; d++ {
		x := CriticalBias(d)
		if r := math.Pow(x, float64(d)) + x - 1; math.Abs(r) > 1e-9 {
			t.Errorf("d=%d: residual %v", d, r)
		}
		if x <= 0 || x >= 1 {
			t.Errorf("d=%d: bias %v out of (0,1)", d, x)
		}
	}
	// Bias increases with d (deeper trees need leaves to be 1 more often).
	if CriticalBias(3) <= CriticalBias(2) {
		t.Error("critical bias should increase with d")
	}
}

func TestAlphaBetaBranchingFactor(t *testing.T) {
	// Pearl: for d=2 the branching factor is xi/(1-xi) with xi the golden
	// conjugate, i.e. about 1.618 = golden ratio.
	if got := AlphaBetaBranchingFactor(2); math.Abs(got-1.6180339887) > 1e-6 {
		t.Errorf("branching factor d=2 = %v, want ~1.618", got)
	}
	// It must lie strictly between sqrt(d) (the perfect-ordering rate)
	// and d (no pruning).
	for d := 2; d <= 8; d++ {
		bf := AlphaBetaBranchingFactor(d)
		if bf <= math.Sqrt(float64(d)) || bf >= float64(d) {
			t.Errorf("d=%d: branching factor %v outside (sqrt d, d)", d, bf)
		}
	}
}

func TestProp6BoundDominatesSigma(t *testing.T) {
	for n := 2; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			if Prop6Bound(2, n, k).Cmp(SigmaK(2, n, k)) < 0 {
				t.Errorf("Prop6Bound(2,%d,%d) below SigmaK", n, k)
			}
		}
	}
}

func TestFloatAndTheoremFloor(t *testing.T) {
	if got := Float(big.NewInt(1 << 20)); got != float64(1<<20) {
		t.Errorf("Float = %v", got)
	}
	if got := TheoremSpeedupFloor(0.5, 9); got != 5 {
		t.Errorf("TheoremSpeedupFloor = %v", got)
	}
}

func TestWidthProcessorBound(t *testing.T) {
	// w=0: exactly 1 (the sequential algorithm).
	if got := WidthProcessorBound(3, 10, 0).Int64(); got != 1 {
		t.Errorf("w=0: %d", got)
	}
	// Binary trees at w=1: 1 + n.
	if got := WidthProcessorBound(2, 12, 1).Int64(); got != 13 {
		t.Errorf("w=1 d=2: %d, want 13", got)
	}
	// d=3, w=1: 1 + 2n.
	if got := WidthProcessorBound(3, 10, 1).Int64(); got != 21 {
		t.Errorf("w=1 d=3: %d, want 21", got)
	}
	// Monotone in w, capped by d^n.
	prev := int64(0)
	for w := 0; w <= 12; w++ {
		v := WidthProcessorBound(2, 12, w).Int64()
		if v < prev {
			t.Errorf("not monotone at w=%d", w)
		}
		prev = v
	}
	if prev != Pow(2, 12).Int64() {
		t.Errorf("full-width bound %d != 2^12", prev)
	}
}
