package bounds

import "math"

// This file computes the exact distribution-level theory of the i.i.d.
// model of Section 6 for NOR trees: the probability that a uniform d-ary
// subtree of height k evaluates to 1, and the expected number of leaves
// the left-to-right Sequential SOLVE evaluates, conditioned on the
// subtree's value. Both follow from a two-state dynamic program over the
// height:
//
//	q_{k+1}       = (1 - q_k)^d                    (NOR of d i.i.d. children)
//	c1_{k+1}      = d * c0_k                       (value 1: all children 0, all scanned)
//	c0_{k+1}      = E[(i-1) c0_k + c1_k]           (value 0: scan stops at the first 1-child,
//	                                                i ~ truncated geometric)
//
// These give exact reference values for the simulators: on B(d,n) with
// Bernoulli(p) leaves, the measured mean of S(T) must converge to
// ExpectedSolveWork(d, n, p).

// IIDTheory carries the DP state at one height.
type IIDTheory struct {
	Q  float64 // P(value = 1)
	C0 float64 // E[leaves evaluated by Sequential SOLVE | value = 0]
	C1 float64 // E[leaves evaluated | value = 1]
}

// Mean returns the unconditional expected work at this height.
func (s IIDTheory) Mean() float64 {
	return s.Q*s.C1 + (1-s.Q)*s.C0
}

// IIDSolveTheory runs the DP up to height n for Bernoulli(p) leaves on
// uniform d-ary NOR trees and returns the state at every height
// (index 0 = leaves).
func IIDSolveTheory(d, n int, p float64) []IIDTheory {
	if d < 1 || n < 0 || p < 0 || p > 1 {
		panic("bounds: IIDSolveTheory requires d >= 1, n >= 0, p in [0,1]")
	}
	out := make([]IIDTheory, n+1)
	out[0] = IIDTheory{Q: p, C0: 1, C1: 1}
	for k := 0; k < n; k++ {
		q, c0, c1 := out[k].Q, out[k].C0, out[k].C1
		next := IIDTheory{}
		next.Q = math.Pow(1-q, float64(d))
		next.C1 = float64(d) * c0
		// Value 0: the first 1-child appears at position i with
		// probability (1-q)^(i-1) q, conditioned on i <= d. Cost is
		// (i-1)*c0 + c1.
		pAny := 1 - math.Pow(1-q, float64(d))
		if pAny <= 0 {
			// Value 0 impossible (q = 0): C0 is irrelevant; keep it
			// finite for downstream arithmetic.
			next.C0 = float64(d) * c0
		} else {
			var e float64
			for i := 1; i <= d; i++ {
				pi := math.Pow(1-q, float64(i-1)) * q / pAny
				e += pi * (float64(i-1)*c0 + c1)
			}
			next.C0 = e
		}
		out[k+1] = next
	}
	return out
}

// ExpectedSolveWork returns E[S(T)] for T in B(d,n) with Bernoulli(p)
// leaves.
func ExpectedSolveWork(d, n int, p float64) float64 {
	s := IIDSolveTheory(d, n, p)
	return s[n].Mean()
}

// RootOneProbability returns P(val(T) = 1) for T in B(d,n) with
// Bernoulli(p) leaves. At the stationary bias (StationaryBias(d)) this
// probability equals p at every height — the value distribution does not
// degenerate with depth, which is why stationary-bias instances stay
// hard; at any other bias the level map drives it toward the alternating
// 0/1 cycle.
func RootOneProbability(d, n int, p float64) float64 {
	return IIDSolveTheory(d, n, p)[n].Q
}

// SolveGrowthRate estimates the per-two-level growth factor of the
// expected sequential work at height n: E[S]/E[S two levels down]. At the
// critical bias this converges to the square of the effective branching
// factor of SOLVE.
func SolveGrowthRate(d, n int, p float64) float64 {
	if n < 2 {
		panic("bounds: SolveGrowthRate needs n >= 2")
	}
	s := IIDSolveTheory(d, n, p)
	return s[n].Mean() / s[n-2].Mean()
}
