package bounds

import (
	"math"
	"testing"
)

func TestIIDTheoryBaseCases(t *testing.T) {
	s := IIDSolveTheory(2, 0, 0.3)
	if s[0].Q != 0.3 || s[0].C0 != 1 || s[0].C1 != 1 {
		t.Errorf("height 0: %+v", s[0])
	}
	// Height 1, d=2, p: Q = (1-p)^2; C1 = 2 (both children scanned);
	// C0 = E[(i-1)+1 | first 1 at i<=2].
	p := 0.5
	s = IIDSolveTheory(2, 1, p)
	if got, want := s[1].Q, 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Q1 = %v, want %v", got, want)
	}
	if got := s[1].C1; got != 2 {
		t.Errorf("C1 = %v, want 2", got)
	}
	// P(first 1 at 1) = 0.5, at 2 = 0.25; conditioned on any: 2/3, 1/3.
	// Cost: at 1 -> 1 leaf; at 2 -> 2 leaves. E = 2/3*1 + 1/3*2 = 4/3.
	if got, want := s[1].C0, 4.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("C0 = %v, want %v", got, want)
	}
}

func TestStationaryBiasIsFixedPoint(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		q := StationaryBias(d)
		if math.Abs(q-(1-CriticalBias(d))) > 1e-12 {
			t.Errorf("d=%d: StationaryBias != 1-CriticalBias", d)
		}
		// One-step fixed point of the NOR level map.
		if next := math.Pow(1-q, float64(d)); math.Abs(next-q) > 1e-9 {
			t.Errorf("d=%d: map moved stationary bias %v -> %v", d, q, next)
		}
		// The DP keeps the root distribution at q at every height.
		for n := 1; n <= 10; n++ {
			if got := RootOneProbability(d, n, q); math.Abs(got-q) > 1e-9 {
				t.Errorf("d=%d n=%d: root probability %v, want %v", d, n, got, q)
			}
		}
	}
	// Away from the stationary bias the probability degenerates to the
	// alternating 0/1 cycle; at p=0.9, even heights saturate toward 1.
	if q := RootOneProbability(2, 10, 0.9); q < 0.9 {
		t.Errorf("expected saturation toward 1 at even heights, got %v", q)
	}
	// The AND/OR-side constant is NOT stationary for NOR trees: it
	// saturates (this is the Section 2 complementation at work).
	if q := RootOneProbability(2, 10, CriticalBias(2)); math.Abs(q-CriticalBias(2)) < 0.1 {
		t.Errorf("CriticalBias unexpectedly stationary on the NOR side: %v", q)
	}
}

func TestExpectedWorkMonotoneAndBounded(t *testing.T) {
	for _, d := range []int{2, 3} {
		p := StationaryBias(d)
		prev := 0.0
		for n := 0; n <= 12; n++ {
			w := ExpectedSolveWork(d, n, p)
			if w < prev {
				t.Errorf("d=%d n=%d: expected work decreased %v -> %v", d, n, prev, w)
			}
			prev = w
			full := math.Pow(float64(d), float64(n))
			if w < 1 || w > full {
				t.Errorf("d=%d n=%d: expected work %v outside [1, %v]", d, n, w, full)
			}
			// Fact 1 in expectation: at least the proof-tree size for
			// one of the two conditional values... the unconditional
			// mean must be at least d^floor(n/2) * min prob mass; use
			// the weaker sanity bound of 1 leaf per two levels:
			if w < float64(n)/2 && n > 4 {
				t.Errorf("d=%d n=%d: expected work %v implausibly small", d, n, w)
			}
		}
	}
}

func TestSolveGrowthRate(t *testing.T) {
	// At the stationary bias the growth rate per two levels is strictly
	// between d (the Fact 1 proof-tree rate, attained by the degenerate
	// alternating-values regime) and d^2 (full scan).
	for _, d := range []int{2, 3} {
		r := SolveGrowthRate(d, 14, StationaryBias(d))
		if r <= float64(d)+1e-9 || r >= float64(d*d) {
			t.Errorf("d=%d: growth rate %v outside (d, d^2)", d, r)
		}
	}
	// Saturated regimes collapse to the proof-tree rate d.
	if r := SolveGrowthRate(2, 14, 0.95); math.Abs(r-2) > 0.05 {
		t.Errorf("saturated growth rate %v, want ~2", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n < 2")
		}
	}()
	SolveGrowthRate(2, 1, 0.5)
}

func TestIIDTheoryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { IIDSolveTheory(0, 3, 0.5) },
		func() { IIDSolveTheory(2, -1, 0.5) },
		func() { IIDSolveTheory(2, 3, -0.1) },
		func() { IIDSolveTheory(2, 3, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDegenerateBiases(t *testing.T) {
	// p=1: every leaf is 1 -> height-1 node is 0 after scanning exactly
	// one child; height-2 node: all children 0, scans all d.
	s := IIDSolveTheory(2, 2, 1)
	if s[1].Q != 0 {
		t.Errorf("q1 = %v", s[1].Q)
	}
	if math.Abs(s[1].C0-1) > 1e-12 {
		t.Errorf("c0 at height 1 = %v, want 1", s[1].C0)
	}
	if math.Abs(s[2].Mean()-2) > 1e-12 {
		t.Errorf("mean work at height 2 = %v, want 2", s[2].Mean())
	}
	// p=0: all leaves 0, so values alternate deterministically by level
	// (height 1 nodes are 1, height 2 nodes are 0, ...). Height-2 nodes
	// stop at their first (1-valued) child: cost 2; height-3 nodes scan
	// both 0-valued children: cost 4 — NOT the full 8, because the
	// short circuit still fires at the 1-levels.
	s0 := IIDSolveTheory(2, 3, 0)
	if math.Abs(s0[2].Mean()-2) > 1e-12 {
		t.Errorf("p=0 mean work at h=2 = %v, want 2", s0[2].Mean())
	}
	if math.Abs(s0[3].Mean()-4) > 1e-12 {
		t.Errorf("p=0 mean work at h=3 = %v, want 4", s0[3].Mean())
	}
}
