package core

import (
	"fmt"
	"sort"

	"gametree/internal/tree"
)

// This file implements the fixed-processor-count variants of the width
// algorithms: the paper's closing remark of Section 7 adapts the
// implementation to "the restriction of having only a fixed number p of
// processors available". In the leaf-evaluation model the natural
// counterpart evaluates, at each step, at most p of the width-w candidate
// leaves, preferring smaller pruning numbers (the leaves the sequential
// algorithm would reach soonest) and breaking ties left to right. With
// p >= the candidate count this is exactly Parallel SOLVE of width w;
// with w large and p fixed it interpolates toward Team SOLVE.

// candidate records a live leaf together with its pruning number.
type candidate struct {
	leaf tree.NodeID
	pn   int
}

// collectWidthPN is collectWidth recording each selected leaf's pruning
// number (the budget consumed on the way down).
func (s *norState) collectWidthPN(v tree.NodeID, budget, pn int, out *[]candidate) {
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		*out = append(*out, candidate{leaf: v, pn: pn})
		return
	}
	live := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.det[c] >= 0 {
			continue
		}
		if budget-live < 0 {
			return
		}
		s.collectWidthPN(c, budget-live, pn+live, out)
		live++
	}
}

// ParallelSolveFixed runs Parallel SOLVE of width w restricted to p
// processors: at each step, of the live leaves with pruning number at
// most w, evaluate the p with the smallest pruning numbers (ties left to
// right). p <= 0 means unrestricted (identical to ParallelSolve).
func ParallelSolveFixed(t *tree.Tree, w, p int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("core: width must be >= 0, got %d", w)
	}
	if p <= 0 {
		return ParallelSolve(t, w, opt)
	}
	s := newNorState(t)
	var cands []candidate
	return s.run(opt, func() {
		cands = cands[:0]
		s.collectWidthPN(0, w, 0, &cands)
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].pn < cands[j].pn })
		if len(cands) > p {
			cands = cands[:p]
		}
		for _, c := range cands {
			s.selected = append(s.selected, c.leaf)
		}
	})
}

// collectWidthPN for the pruning process (MIN/MAX).
func (s *minmaxState) collectWidthPN(v tree.NodeID, budget, pn int, out *[]candidate) {
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		*out = append(*out, candidate{leaf: v, pn: pn})
		return
	}
	unfinished := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || s.finished[c] {
			continue
		}
		if budget-unfinished < 0 {
			return
		}
		s.collectWidthPN(c, budget-unfinished, pn+unfinished, out)
		unfinished++
	}
}

// ParallelAlphaBetaFixed is the fixed-processor variant of Parallel
// alpha-beta of width w. p <= 0 means unrestricted.
func ParallelAlphaBetaFixed(t *tree.Tree, w, p int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("core: width must be >= 0, got %d", w)
	}
	if p <= 0 {
		return ParallelAlphaBeta(t, w, opt)
	}
	s := newMinmaxState(t)
	var m Metrics
	var cands []candidate
	for !s.finished[0] {
		cands = cands[:0]
		s.collectWidthPN(0, w, 0, &cands)
		if len(cands) == 0 {
			return m, fmt.Errorf("core: no unfinished leaves selected but root unfinished (bug)")
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].pn < cands[j].pn })
		if len(cands) > p {
			cands = cands[:p]
		}
		s.selected = s.selected[:0]
		for _, c := range cands {
			s.selected = append(s.selected, c.leaf)
		}
		for _, l := range s.selected {
			s.bumpEval(l)
			s.finishLeaf(l)
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, s.selected...)
		}
		m.recordStep(len(s.selected))
		for s.prunePass() {
		}
		if err := opt.check(m.Steps); err != nil {
			return m, err
		}
	}
	m.Value = s.val[0]
	return m, nil
}
