package core

import (
	"math/rand"
	"testing"

	"gametree/internal/tree"
)

func TestFixedPCorrectValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nor := tree.IIDNor(2+rng.Intn(2), rng.Intn(6), 0.5, rng.Int63())
		want := nor.Evaluate()
		for w := 0; w <= 2; w++ {
			for _, p := range []int{1, 2, 3, 100} {
				m, err := ParallelSolveFixed(nor, w, p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if m.Value != want {
					t.Fatalf("trial %d w=%d p=%d: value %d, want %d", trial, w, p, m.Value, want)
				}
				if m.Processors > p {
					t.Fatalf("trial %d w=%d p=%d: used %d processors", trial, w, p, m.Processors)
				}
			}
		}
		mm := tree.IIDMinMax(2, rng.Intn(5), -50, 50, rng.Int63())
		wantM := mm.Evaluate()
		for _, p := range []int{1, 2, 100} {
			m, err := ParallelAlphaBetaFixed(mm, 1, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != wantM {
				t.Fatalf("trial %d minmax p=%d: value %d, want %d", trial, p, m.Value, wantM)
			}
			if m.Processors > p {
				t.Fatalf("trial %d minmax p=%d: used %d processors", trial, p, m.Processors)
			}
		}
	}
}

// With one processor the fixed variant always evaluates the leftmost
// candidate, i.e. it IS the sequential algorithm, step for step.
func TestFixedPOneProcessorIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nor := tree.IIDNor(2, 1+rng.Intn(5), 0.618, rng.Int63())
		a, err := ParallelSolveFixed(nor, 3, 1, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SequentialSolve(nor, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps {
			t.Fatalf("trial %d: %d steps vs sequential %d", trial, a.Steps, b.Steps)
		}
		for i := range a.Leaves {
			if a.Leaves[i] != b.Leaves[i] {
				t.Fatalf("trial %d: leaf order diverges at %d", trial, i)
			}
		}
		mm := tree.IIDMinMax(2, 1+rng.Intn(4), -50, 50, rng.Int63())
		am, err := ParallelAlphaBetaFixed(mm, 3, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bm, err := SequentialAlphaBeta(mm, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if am.Steps != bm.Steps || am.Work != bm.Work {
			t.Fatalf("trial %d minmax: %+v vs %+v", trial, am, bm)
		}
	}
}

// Unlimited p must equal the plain width algorithm exactly.
func TestFixedPUnlimitedEqualsPlain(t *testing.T) {
	nor := tree.WorstCaseNOR(2, 10, 1)
	for w := 0; w <= 3; w++ {
		a, err := ParallelSolveFixed(nor, w, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParallelSolve(nor, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps || a.Work != b.Work {
			t.Errorf("w=%d: fixed(0) %+v != plain %+v", w, a, b)
		}
		big, err := ParallelSolveFixed(nor, w, 1<<20, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if big.Steps != b.Steps {
			t.Errorf("w=%d: fixed(huge) %d steps != plain %d", w, big.Steps, b.Steps)
		}
	}
}

// More processors can only help (steps non-increasing in p).
func TestFixedPMonotoneInP(t *testing.T) {
	nor := tree.WorstCaseNOR(2, 10, 1)
	prev := int64(1 << 62)
	for _, p := range []int{1, 2, 4, 8, 16} {
		m, err := ParallelSolveFixed(nor, 3, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Steps > prev {
			t.Errorf("p=%d: steps %d > previous %d", p, m.Steps, prev)
		}
		prev = m.Steps
	}
}

func TestFixedPErrors(t *testing.T) {
	nor := tree.IIDNor(2, 3, 0.5, 1)
	if _, err := ParallelSolveFixed(nor, -1, 2, Options{}); err == nil {
		t.Error("negative width accepted")
	}
	mm := tree.IIDMinMax(2, 3, 0, 9, 1)
	if _, err := ParallelAlphaBetaFixed(mm, -1, 2, Options{}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := ParallelAlphaBetaFixed(mm, 1, 2, Options{MaxSteps: 1}); err != ErrStepLimit {
		t.Error("step limit not enforced")
	}
}
