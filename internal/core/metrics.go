// Package core implements the leaf-evaluation model of Karp & Zhang (1989)
// and the paper's algorithms in that model:
//
//   - Sequential SOLVE, Team SOLVE(p) and Parallel SOLVE(w) for NOR trees
//     (Section 2), and
//   - the general pruning process with Sequential α-β and Parallel α-β(w)
//     for MIN/MAX trees (Section 4).
//
// A run proceeds in synchronous basic steps. At each step the algorithm
// evaluates a set of leaves simultaneously; the running time is the number
// of steps, the number of processors is the maximum number of leaves
// evaluated in one step, and the total work is the number of leaves
// evaluated (all other computation is free in this model).
package core

import (
	"errors"
	"fmt"

	"gametree/internal/tree"
)

// ErrStepLimit is returned when a simulation exceeds its MaxSteps budget.
var ErrStepLimit = errors.New("core: step limit exceeded")

// Metrics is the outcome of one simulated run.
type Metrics struct {
	Value      int32   // value of the root
	Steps      int64   // number of basic steps (the running time)
	Work       int64   // total leaves evaluated
	Processors int     // max leaves evaluated in a single step
	DegreeHist []int64 // DegreeHist[k] = number of steps of parallel degree k (index 0 unused)

	// Leaves lists the evaluated leaves in evaluation order (ties within
	// one step in left-to-right order) when Options.RecordLeaves is set;
	// nil otherwise.
	Leaves []tree.NodeID
}

// Speedup returns s.Steps-based speedup of this run relative to a
// sequential run that used seqSteps steps.
func (m Metrics) Speedup(seqSteps int64) float64 {
	if m.Steps == 0 {
		return 0
	}
	return float64(seqSteps) / float64(m.Steps)
}

func (m Metrics) String() string {
	return fmt.Sprintf("value=%d steps=%d work=%d procs=%d", m.Value, m.Steps, m.Work, m.Processors)
}

// Options configures a simulated run.
type Options struct {
	// RecordLeaves makes the simulator record the evaluated leaves in
	// order (needed to build skeletons H_T).
	RecordLeaves bool
	// MaxSteps bounds the number of basic steps; 0 means no limit.
	MaxSteps int64
}

func (o Options) check(steps int64) error {
	if o.MaxSteps > 0 && steps > o.MaxSteps {
		return ErrStepLimit
	}
	return nil
}

func (m *Metrics) recordStep(degree int) {
	m.Steps++
	m.Work += int64(degree)
	if degree > m.Processors {
		m.Processors = degree
	}
	for len(m.DegreeHist) <= degree {
		m.DegreeHist = append(m.DegreeHist, 0)
	}
	m.DegreeHist[degree]++
}
