package core

import (
	"fmt"
	"math"

	"gametree/internal/tree"
)

// minmaxState implements the general pruning process of Section 4: the
// pruned tree T~ (via deleted flags), finished nodes and their values in
// T~, and the pruning rule "delete an unfinished v if alpha(v) >= beta(v)".
// Sequential alpha-beta and Parallel alpha-beta of width w are the
// instances of this process that evaluate, at each step, the unfinished
// leaves of the pruned tree with pruning number 0 (resp. at most w).
type minmaxState struct {
	t         *tree.Tree
	deleted   []bool
	finished  []bool
	val       []int32 // value in the pruned tree; valid when finished
	finKids   []int32 // finished, non-deleted children
	liveKids  []int32 // non-deleted children
	evalBelow []int32 // evaluated leaves in the subtree (guides the pruning walk)
	selected  []tree.NodeID
}

const (
	negInf = math.MinInt32
	posInf = math.MaxInt32
)

func newMinmaxState(t *tree.Tree) *minmaxState {
	if t.Kind != tree.MinMax {
		panic("core: alpha-beta algorithms require a MinMax tree")
	}
	s := &minmaxState{
		t:         t,
		deleted:   make([]bool, t.Len()),
		finished:  make([]bool, t.Len()),
		val:       make([]int32, t.Len()),
		finKids:   make([]int32, t.Len()),
		liveKids:  make([]int32, t.Len()),
		evalBelow: make([]int32, t.Len()),
	}
	for i := range s.liveKids {
		s.liveKids[i] = t.Node(tree.NodeID(i)).NumChildren
	}
	return s
}

// finishLeaf marks leaf l as evaluated and propagates "finished" upward.
// A node of the pruned tree is finished when every leaf below it in T~ is
// evaluated; its value in T~ is then the max/min of its non-deleted
// children's values.
func (s *minmaxState) finishLeaf(l tree.NodeID) {
	s.finished[l] = true
	s.val[l] = s.t.LeafValue(l)
	if p := s.t.Node(l).Parent; p != tree.None {
		s.finKids[p]++
		s.maybeFinish(p)
	}
}

// maybeFinish finishes p if all its remaining (non-deleted) children are
// finished, and propagates the condition upward.
func (s *minmaxState) maybeFinish(p tree.NodeID) {
	for p != tree.None && !s.finished[p] && s.liveKids[p] > 0 && s.finKids[p] == s.liveKids[p] {
		s.refreshValue(p)
		s.finished[p] = true
		q := s.t.Node(p).Parent
		if q != tree.None {
			s.finKids[q]++
		}
		p = q
	}
}

// bumpEval increments the evaluated-leaf counters on the path to the root.
func (s *minmaxState) bumpEval(l tree.NodeID) {
	for v := l; v != tree.None; v = s.t.Node(v).Parent {
		s.evalBelow[v]++
	}
}

// refreshValue recomputes val[v] from the finished non-deleted children.
func (s *minmaxState) refreshValue(v tree.NodeID) {
	nd := s.t.Node(v)
	first := true
	var best int32
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || !s.finished[c] {
			continue
		}
		cv := s.val[c]
		if first {
			best = cv
			first = false
			continue
		}
		if s.t.IsMaxNode(v) {
			if cv > best {
				best = cv
			}
		} else if cv < best {
			best = cv
		}
	}
	if first {
		panic("core: refreshValue on node with no finished children")
	}
	s.val[v] = best
}

// deleteSubtree removes v (and implicitly its whole subtree) from the
// pruned tree, possibly finishing ancestors whose remaining children are
// all finished.
func (s *minmaxState) deleteSubtree(v tree.NodeID) {
	s.deleted[v] = true
	p := s.t.Node(v).Parent
	if p == tree.None {
		return
	}
	s.liveKids[p]--
	if s.finished[v] {
		s.finKids[p]--
	}
	s.maybeFinish(p)
}

// prunePass walks the pruned tree top-down carrying the alpha/beta window
// and applies the pruning rule. It only descends into subtrees that
// contain at least one evaluated leaf: a subtree with no evaluated leaf
// contains no finished node, hence no sibling contributions, hence no
// descendant whose window is tighter than the subtree root's. Returns
// whether anything was deleted.
func (s *minmaxState) prunePass() bool {
	pruned := false
	var walk func(v tree.NodeID, alpha, beta int64)
	walk = func(v tree.NodeID, alpha, beta int64) {
		nd := s.t.Node(v)
		if nd.NumChildren == 0 {
			return
		}
		isMax := s.t.IsMaxNode(v)
		// Contribution of finished children to the siblings' window.
		contrib := int64(negInf)
		if !isMax {
			contrib = int64(posInf)
		}
		have := false
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.deleted[c] || !s.finished[c] {
				continue
			}
			cv := int64(s.val[c])
			if isMax {
				if cv > contrib {
					contrib = cv
				}
			} else if cv < contrib {
				contrib = cv
			}
			have = true
		}
		ca, cb := alpha, beta
		if have {
			if isMax {
				if contrib > ca {
					ca = contrib
				}
			} else if contrib < cb {
				cb = contrib
			}
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.deleted[c] || s.finished[c] {
				continue
			}
			if ca >= cb {
				s.deleteSubtree(c)
				pruned = true
				continue
			}
			if s.evalBelow[c] > 0 {
				walk(c, ca, cb)
			}
		}
	}
	if !s.finished[0] && !s.deleted[0] {
		walk(0, int64(negInf), int64(posInf))
	}
	return pruned
}

// collectWidth gathers the unfinished leaves of the pruned tree with
// pruning number at most w, where the pruning number of an unfinished leaf
// is the total number of unfinished left-siblings of its ancestors
// (Section 4).
func (s *minmaxState) collectWidth(v tree.NodeID, budget int) {
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		s.selected = append(s.selected, v)
		return
	}
	unfinished := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || s.finished[c] {
			continue
		}
		if budget-unfinished < 0 {
			return
		}
		s.collectWidth(c, budget-unfinished)
		unfinished++
	}
}

// run drives the step loop until the root is finished.
func (s *minmaxState) run(w int, opt Options) (Metrics, error) {
	var m Metrics
	for !s.finished[0] {
		s.selected = s.selected[:0]
		s.collectWidth(0, w)
		if len(s.selected) == 0 {
			return m, fmt.Errorf("core: no unfinished leaves selected but root unfinished (bug)")
		}
		for _, l := range s.selected {
			s.bumpEval(l)
			s.finishLeaf(l)
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, s.selected...)
		}
		m.recordStep(len(s.selected))
		for s.prunePass() {
		}
		if err := opt.check(m.Steps); err != nil {
			return m, err
		}
	}
	m.Value = s.val[0]
	return m, nil
}

// SequentialAlphaBeta runs the sequential alpha-beta pruning procedure in
// the leaf-evaluation model: at each step, evaluate the leftmost unfinished
// leaf of the current pruned tree, then prune by the rule
// alpha(v) >= beta(v).
func SequentialAlphaBeta(t *tree.Tree, opt Options) (Metrics, error) {
	return ParallelAlphaBeta(t, 0, opt)
}

// ParallelAlphaBeta runs Parallel alpha-beta of width w: at each step,
// evaluate all unfinished leaves of the current pruned tree whose pruning
// numbers are at most w. Width 0 is identical to Sequential alpha-beta;
// width 1 is the algorithm of Theorem 3.
func ParallelAlphaBeta(t *tree.Tree, w int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("core: ParallelAlphaBeta requires width >= 0, got %d", w)
	}
	s := newMinmaxState(t)
	return s.run(w, opt)
}

// AlphaBetaBounds returns the alpha- and beta-bound of node v in the pruned
// tree reached after evaluating the given leaves in one batch and pruning
// to fixpoint. It exists for tests of Theorem 2's invariants.
func AlphaBetaBounds(t *tree.Tree, evaluated []tree.NodeID, v tree.NodeID) (alpha, beta int64) {
	s := newMinmaxState(t)
	for _, l := range evaluated {
		s.bumpEval(l)
		s.finishLeaf(l)
	}
	for s.prunePass() {
	}
	alpha, beta = int64(negInf), int64(posInf)
	for x := v; x != tree.None; x = s.t.Node(x).Parent {
		p := s.t.Node(x).Parent
		if p == tree.None {
			break
		}
		// x is an ancestor of v; siblings of x contribute to alpha when
		// x is on a MIN level (odd depth), to beta when on a MAX level.
		pn := s.t.Node(p)
		for i := int32(0); i < pn.NumChildren; i++ {
			u := pn.FirstChild + tree.NodeID(i)
			if u == x || s.deleted[u] || !s.finished[u] {
				continue
			}
			uv := int64(s.val[u])
			if s.t.Depth(x)%2 == 1 { // x on MIN level, parent is MAX
				if uv > alpha {
					alpha = uv
				}
			} else {
				if uv < beta {
					beta = uv
				}
			}
		}
	}
	return alpha, beta
}

// collectLeftmost gathers the leftmost `limit` unfinished leaves of the
// pruned tree (the step of Team alpha-beta).
func (s *minmaxState) collectLeftmost(v tree.NodeID, limit int) {
	if len(s.selected) >= limit {
		return
	}
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		s.selected = append(s.selected, v)
		return
	}
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || s.finished[c] {
			continue
		}
		s.collectLeftmost(c, limit)
		if len(s.selected) >= limit {
			return
		}
	}
}

// TeamAlphaBeta runs the Team parallelization of the alpha-beta pruning
// process: at each step, evaluate the leftmost p unfinished leaves of the
// current pruned tree. It is the MIN/MAX counterpart of TeamSolve
// (Proposition 1's direct parallelization, with the same sqrt(p)
// behavior).
func TeamAlphaBeta(t *tree.Tree, p int, opt Options) (Metrics, error) {
	if p < 1 {
		return Metrics{}, fmt.Errorf("core: TeamAlphaBeta requires p >= 1, got %d", p)
	}
	s := newMinmaxState(t)
	var m Metrics
	for !s.finished[0] {
		s.selected = s.selected[:0]
		s.collectLeftmost(0, p)
		if len(s.selected) == 0 {
			return m, fmt.Errorf("core: no unfinished leaves selected but root unfinished (bug)")
		}
		for _, l := range s.selected {
			s.bumpEval(l)
			s.finishLeaf(l)
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, s.selected...)
		}
		m.recordStep(len(s.selected))
		for s.prunePass() {
		}
		if err := opt.check(m.Steps); err != nil {
			return m, err
		}
	}
	m.Value = s.val[0]
	return m, nil
}
