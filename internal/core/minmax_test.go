package core

import (
	"math/rand"
	"testing"

	"gametree/internal/alphabeta"
	"gametree/internal/bounds"
	"gametree/internal/tree"
)

func TestAlphaBetaCorrectValueAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(5)
		tr := tree.IIDMinMax(d, n, -100, 100, rng.Int63())
		want := tr.Evaluate()
		for w := 0; w <= 3; w++ {
			m, err := ParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d width %d: value %d, want %d", trial, w, m.Value, want)
			}
		}
	}
}

// The width-0 pruning process must evaluate exactly as many leaves as the
// classical recursive alpha-beta procedure.
func TestSequentialAlphaBetaMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(5)
		// Distinct leaf values avoid tie-breaking ambiguity between
		// fail-hard variants.
		nl := 1
		for i := 0; i < n; i++ {
			nl *= d
		}
		perm := rng.Perm(nl)
		tr := tree.Uniform(tree.MinMax, d, n, func(i int) int32 { return int32(perm[i]) })
		ref := alphabeta.AlphaBeta(tr)
		m, err := SequentialAlphaBeta(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != ref.Value {
			t.Fatalf("trial %d (d=%d n=%d): value %d != classical %d", trial, d, n, m.Value, ref.Value)
		}
		if m.Work != ref.Leaves {
			t.Fatalf("trial %d (d=%d n=%d): work %d != classical leaf count %d",
				trial, d, n, m.Work, ref.Leaves)
		}
		if m.Steps != m.Work || m.Processors != 1 {
			t.Fatalf("trial %d: not one leaf per step: %+v", trial, m)
		}
	}
}

func TestKnuthMooreOptimum(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for n := 1; n <= 5; n++ {
			tr := tree.BestOrderedMinMax(d, n, int64(100*d+n))
			m, err := SequentialAlphaBeta(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := bounds.KnuthMoore(d, n).Int64()
			if m.Work != want {
				t.Errorf("M(%d,%d) best-ordered: work %d, want Knuth-Moore %d", d, n, m.Work, want)
			}
		}
	}
}

func TestWorstOrderingCostsMore(t *testing.T) {
	for _, d := range []int{2, 3} {
		for n := 2; n <= 5; n++ {
			best, err := SequentialAlphaBeta(tree.BestOrderedMinMax(d, n, 1), Options{})
			if err != nil {
				t.Fatal(err)
			}
			worst, err := SequentialAlphaBeta(tree.WorstOrderedMinMax(d, n, 1), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if worst.Work < best.Work {
				t.Errorf("M(%d,%d): worst ordering %d < best ordering %d", d, n, worst.Work, best.Work)
			}
		}
	}
}

func TestFact2LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		n := 1 + rng.Intn(4)
		tr := tree.IIDMinMax(d, n, -50, 50, rng.Int63())
		lb := bounds.Fact2(d, n).Int64()
		for w := 0; w <= 2; w++ {
			m, err := ParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Work < lb {
				t.Fatalf("trial %d width %d: work %d below Fact 2 bound %d (d=%d n=%d)",
					trial, w, m.Work, lb, d, n)
			}
		}
	}
}

func TestParallelAlphaBetaProcessorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		tr := tree.IIDMinMax(d, n, -50, 50, rng.Int63())
		m, err := ParallelAlphaBeta(tr, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Processors > n+1 {
			t.Fatalf("width 1 used %d processors on height %d", m.Processors, n)
		}
	}
}

// Theorem 2 invariants: the alpha-bound never decreases, the beta-bound
// never increases, and pruning preserves the root value (checked against
// minimax on every random instance above; here we check bound monotonicity
// explicitly over growing evaluated prefixes).
func TestBoundMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 15; trial++ {
		d := 2
		n := 3
		tr := tree.IIDMinMax(d, n, -50, 50, rng.Int63())
		seq, err := SequentialAlphaBeta(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		// Pick a live-ish node to track: the last evaluated leaf.
		v := seq.Leaves[len(seq.Leaves)-1]
		prevA, prevB := int64(negInf), int64(posInf)
		for k := 0; k <= len(seq.Leaves); k++ {
			a, b := AlphaBetaBounds(tr, seq.Leaves[:k], v)
			if a < prevA {
				t.Fatalf("trial %d: alpha decreased %d -> %d at k=%d", trial, prevA, a, k)
			}
			if b > prevB {
				t.Fatalf("trial %d: beta increased %d -> %d at k=%d", trial, prevB, b, k)
			}
			prevA, prevB = a, b
		}
	}
}

func TestMinMaxWidthZeroEqualsSequentialStepwise(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		tr := tree.IIDMinMax(2+rng.Intn(2), rng.Intn(5), -20, 20, rng.Int63())
		a, err := ParallelAlphaBeta(tr, 0, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SequentialAlphaBeta(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps || a.Work != b.Work {
			t.Fatalf("trial %d: width-0 %+v vs sequential %+v", trial, a, b)
		}
		for i := range a.Leaves {
			if a.Leaves[i] != b.Leaves[i] {
				t.Fatalf("trial %d: leaf order differs at %d", trial, i)
			}
		}
	}
}

// Parallel alpha-beta's total work may exceed the sequential work but the
// number of steps must never exceed the sequential step count.
func TestParallelNeverSlowerInSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 30; trial++ {
		tr := tree.IIDMinMax(2+rng.Intn(2), 1+rng.Intn(4), -50, 50, rng.Int63())
		seq, err := SequentialAlphaBeta(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev := seq.Steps
		for w := 1; w <= 3; w++ {
			m, err := ParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Steps > prev {
				t.Errorf("trial %d: width %d steps %d > width %d steps %d",
					trial, w, m.Steps, w-1, prev)
			}
			prev = m.Steps
		}
	}
}

func TestMinMaxDegreeHistogram(t *testing.T) {
	tr := tree.IIDMinMax(3, 4, -50, 50, 9)
	m, err := ParallelAlphaBeta(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var steps, work int64
	for k, c := range m.DegreeHist {
		steps += c
		work += int64(k) * c
	}
	if steps != m.Steps || work != m.Work {
		t.Errorf("histogram inconsistent: %+v", m)
	}
}

func TestMinMaxSingleLeaf(t *testing.T) {
	tr := tree.FromNested(tree.MinMax, 42)
	m, err := SequentialAlphaBeta(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value != 42 || m.Work != 1 {
		t.Errorf("single leaf: %+v", m)
	}
}

func TestMinMaxStepLimit(t *testing.T) {
	tr := tree.WorstOrderedMinMax(2, 8, 1)
	if _, err := SequentialAlphaBeta(tr, Options{MaxSteps: 3}); err != ErrStepLimit {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	nor := tree.IIDNor(2, 2, 0.5, 1)
	mm := tree.IIDMinMax(2, 2, 0, 9, 1)
	mustPanic("alpha-beta on NOR", func() { _, _ = SequentialAlphaBeta(nor, Options{}) })
	mustPanic("SOLVE on MinMax", func() { _, _ = SequentialSolve(mm, Options{}) })
}

func TestTeamAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		tr := tree.IIDMinMax(2+rng.Intn(2), rng.Intn(5), -50, 50, rng.Int63())
		want := tr.Evaluate()
		prev := int64(1 << 62)
		for _, p := range []int{1, 2, 4, 8} {
			m, err := TeamAlphaBeta(tr, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d p=%d: value %d, want %d", trial, p, m.Value, want)
			}
			if m.Processors > p {
				t.Fatalf("trial %d p=%d: used %d processors", trial, p, m.Processors)
			}
			if m.Steps > prev {
				t.Fatalf("trial %d p=%d: steps not monotone", trial, p)
			}
			prev = m.Steps
		}
	}
	// p=1 is Sequential alpha-beta exactly.
	tr := tree.WorstOrderedMinMax(2, 7, 1)
	a, err := TeamAlphaBeta(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SequentialAlphaBeta(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Work != b.Work {
		t.Errorf("TeamAlphaBeta(1) %+v != sequential %+v", a, b)
	}
	if _, err := TeamAlphaBeta(tr, 0, Options{}); err == nil {
		t.Error("p=0 accepted")
	}
}

// Proposition 5 states (without proof) that P~_w(T) <= P~_w(H~_T). Under
// the literal pruning-process semantics this is FALSE verbatim: T contains
// subtrees absent from H~_T, and the root is only "finished" once their
// leaves are evaluated or pruned away, so the width-w schedule pays a
// straggler cost H~_T never sees (measured: violations on most i.i.d.
// instances, with P~(T)/P~(H~_T) up to ~1.9 at n=10 but apparently bounded
// by a constant). The bounded ratio is what Theorem 3 actually needs — and
// experiment E6 confirms the theorem's conclusion directly on T. This test
// pins the measured behavior: the ratio stays below 3.
func TestProposition5RatioBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	violations := 0
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(5)
		tr := tree.IIDMinMax(d, n, -100, 100, rng.Int63())
		seq, err := SequentialAlphaBeta(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		for w := 1; w <= 2; w++ {
			pt, err := ParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ph, err := ParallelAlphaBeta(h, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if pt.Steps > ph.Steps {
				violations++
			}
			if ratio := float64(pt.Steps) / float64(ph.Steps); ratio > 3 {
				t.Errorf("trial %d w=%d: P~(T)/P~(H~_T) = %.2f (%d vs %d) — beyond the constant regime",
					trial, w, ratio, pt.Steps, ph.Steps)
			}
		}
	}
	if violations == 0 {
		t.Log("no verbatim Prop 5 violations in this sample (they are common on larger n)")
	}
}

// The skeleton of Sequential alpha-beta contains exactly its evaluated
// leaves, and running Sequential alpha-beta on the skeleton evaluates all
// of them (the MIN/MAX analogue of S(H_T) = S(T)).
func TestMinMaxSkeletonWork(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		tr := tree.IIDMinMax(2, 1+rng.Intn(5), -50, 50, rng.Int63())
		seq, err := SequentialAlphaBeta(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		if int64(h.NumLeaves()) != seq.Work {
			t.Fatalf("trial %d: skeleton leaves %d != S~(T) %d", trial, h.NumLeaves(), seq.Work)
		}
		seqH, err := SequentialAlphaBeta(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seqH.Work != seq.Work {
			t.Fatalf("trial %d: S~(H~_T) %d != S~(T) %d", trial, seqH.Work, seq.Work)
		}
	}
}
