package core

import (
	"fmt"

	"gametree/internal/tree"
)

// norState is the shared step-synchronous machinery for the SOLVE family on
// NOR trees. It tracks, per node, the determined value (-1 while unknown)
// and the count of children determined to 0, which together drive both
// determination ("the value of v can be computed from the evaluated
// leaves") and death ("some ancestor of v is determined").
type norState struct {
	t        *tree.Tree
	det      []int8  // -1 unknown, else 0/1: the determined value of the node
	zeroKids []int32 // number of children determined to 0
	selected []tree.NodeID
}

func newNorState(t *tree.Tree) *norState {
	if t.Kind != tree.NOR {
		panic("core: SOLVE algorithms require a NOR tree")
	}
	s := &norState{
		t:        t,
		det:      make([]int8, t.Len()),
		zeroKids: make([]int32, t.Len()),
	}
	for i := range s.det {
		s.det[i] = -1
	}
	return s
}

// determine records that val(v) = b and propagates determination upward:
// a NOR node is determined 0 as soon as one child is determined 1, and
// determined 1 once all children are determined 0.
func (s *norState) determine(v tree.NodeID, b int8) {
	for v != tree.None {
		if s.det[v] >= 0 {
			return // already determined (possibly by a different child)
		}
		s.det[v] = b
		p := s.t.Node(v).Parent
		if p == tree.None {
			return
		}
		if b == 1 {
			b = 0 // parent NOR of a 1-child is 0
			v = p
			continue
		}
		s.zeroKids[p]++
		if s.zeroKids[p] == s.t.Node(p).NumChildren {
			b = 1
			v = p
			continue
		}
		return
	}
}

// collectWidth gathers, in left-to-right order, every live leaf whose
// pruning number is at most w (the step of Parallel SOLVE of width w).
// The pruning number of a live leaf v is the total number of live
// left-siblings of the ancestors of v (Section 2); the walk threads the
// remaining budget down the tree, spending one unit per live left-sibling
// passed over.
func (s *norState) collectWidth(v tree.NodeID, budget int) {
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		s.selected = append(s.selected, v)
		return
	}
	live := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.det[c] >= 0 {
			continue // dead child: its value is determined
		}
		if budget-live < 0 {
			return
		}
		s.collectWidth(c, budget-live)
		live++
	}
}

// collectLeftmost gathers the leftmost `limit` live leaves (the step of
// Team SOLVE with p processors; limit=1 gives Sequential SOLVE).
func (s *norState) collectLeftmost(v tree.NodeID, limit int) {
	if len(s.selected) >= limit {
		return
	}
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		s.selected = append(s.selected, v)
		return
	}
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.det[c] >= 0 {
			continue
		}
		s.collectLeftmost(c, limit)
		if len(s.selected) >= limit {
			return
		}
	}
}

// run drives the step loop with the given per-step selector until the root
// is determined.
func (s *norState) run(opt Options, selectLeaves func()) (Metrics, error) {
	var m Metrics
	for s.det[0] < 0 {
		s.selected = s.selected[:0]
		selectLeaves()
		if len(s.selected) == 0 {
			return m, fmt.Errorf("core: no live leaves selected but root undetermined (bug)")
		}
		for _, l := range s.selected {
			s.determine(l, int8(s.t.LeafValue(l)))
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, s.selected...)
		}
		m.recordStep(len(s.selected))
		if err := opt.check(m.Steps); err != nil {
			return m, err
		}
	}
	m.Value = int32(s.det[0])
	return m, nil
}

// SequentialSolve runs the left-to-right sequential algorithm of Section 2:
// at each step, evaluate the leftmost live leaf.
func SequentialSolve(t *tree.Tree, opt Options) (Metrics, error) {
	return TeamSolve(t, 1, opt)
}

// TeamSolve runs Team SOLVE with p processors: at each step, evaluate the
// leftmost p live leaves. Proposition 1 of the paper shows this achieves a
// speedup of Theta(sqrt(p)) over Sequential SOLVE on uniform trees.
func TeamSolve(t *tree.Tree, p int, opt Options) (Metrics, error) {
	if p < 1 {
		return Metrics{}, fmt.Errorf("core: TeamSolve requires p >= 1, got %d", p)
	}
	s := newNorState(t)
	return s.run(opt, func() { s.collectLeftmost(0, p) })
}

// ParallelSolve runs Parallel SOLVE of width w: at each step, evaluate all
// live leaves with pruning number at most w. Width 0 is identical to
// Sequential SOLVE; width 1 is the algorithm of Theorem 1, which achieves a
// linear speedup with n+1 processors on every instance of B(d,n).
func ParallelSolve(t *tree.Tree, w int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("core: ParallelSolve requires width >= 0, got %d", w)
	}
	s := newNorState(t)
	return s.run(opt, func() { s.collectWidth(0, w) })
}

// PruningNumbersNOR returns, for every currently live leaf of t given the
// set of already-determined values, the pruning number computed directly
// from the definition. It exists for tests that cross-check the budgeted
// walk; production code uses collectWidth. The evaluated map gives values
// of already-evaluated leaves.
func PruningNumbersNOR(t *tree.Tree, evaluated map[tree.NodeID]int32) map[tree.NodeID]int {
	s := newNorState(t)
	for l, v := range evaluated {
		s.determine(l, int8(v))
	}
	out := make(map[tree.NodeID]int)
	var walk func(v tree.NodeID, pn int)
	walk = func(v tree.NodeID, pn int) {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			out[v] = pn
			return
		}
		live := 0
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.det[c] >= 0 {
				continue
			}
			walk(c, pn+live)
			live++
		}
	}
	if s.det[0] < 0 {
		walk(0, 0)
	}
	return out
}
