package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gametree/internal/alphabeta"
	"gametree/internal/bounds"
	"gametree/internal/tree"
)

func seqWork(t *testing.T, tr *tree.Tree) int64 {
	t.Helper()
	m, err := SequentialSolve(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m.Work
}

func TestSequentialSolveMatchesRecursiveLTR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(6)
		tr := tree.IIDNor(d, n, []float64{0.3, 0.5, 0.618}[rng.Intn(3)], rng.Int63())
		ref := alphabeta.SolveLTR(tr)
		m, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != ref.Value {
			t.Fatalf("trial %d: value %d != recursive %d", trial, m.Value, ref.Value)
		}
		if m.Work != ref.Leaves {
			t.Fatalf("trial %d: work %d != recursive leaf count %d", trial, m.Work, ref.Leaves)
		}
		if m.Steps != m.Work || m.Processors != 1 {
			t.Fatalf("trial %d: sequential run not one leaf per step: %+v", trial, m)
		}
		// Leaves must come out in strictly left-to-right (increasing id
		// within a level-ordered uniform arena is not guaranteed across
		// subtrees, so check via position ordering instead): each
		// evaluated leaf must be the leftmost live at its step.
		if len(m.Leaves) != int(m.Work) {
			t.Fatalf("trial %d: recorded %d leaves, work %d", trial, len(m.Leaves), m.Work)
		}
	}
}

func TestSolveCorrectValueAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(6)
		tr := tree.IIDNor(d, n, 0.5, rng.Int63())
		want := tr.Evaluate()
		for w := 0; w <= 4; w++ {
			m, err := ParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d width %d: value %d, want %d", trial, w, m.Value, want)
			}
		}
	}
}

func TestWidthZeroIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		tr := tree.IIDNor(2+rng.Intn(2), rng.Intn(6), 0.5, rng.Int63())
		a, err := ParallelSolve(tr, 0, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps || a.Work != b.Work {
			t.Fatalf("trial %d: width 0 differs from sequential: %+v vs %+v", trial, a, b)
		}
		for i := range a.Leaves {
			if a.Leaves[i] != b.Leaves[i] {
				t.Fatalf("trial %d: leaf order differs at %d", trial, i)
			}
		}
	}
}

func TestWorstCaseEvaluatesEveryLeaf(t *testing.T) {
	for _, d := range []int{2, 3} {
		for n := 1; n <= 6; n++ {
			for _, rv := range []int32{0, 1} {
				tr := tree.WorstCaseNOR(d, n, rv)
				want := int64(tr.NumLeaves())
				if got := seqWork(t, tr); got != want {
					t.Errorf("WorstCaseNOR(%d,%d,%d): work %d, want all %d", d, n, rv, got, want)
				}
			}
		}
	}
}

func TestBestCaseMatchesProofTree(t *testing.T) {
	for _, d := range []int{2, 3} {
		for n := 1; n <= 6; n++ {
			for _, rv := range []int32{0, 1} {
				tr := tree.BestCaseNOR(d, n, rv)
				if got, want := seqWork(t, tr), tree.ProofTreeSize(tr); got != want {
					t.Errorf("BestCaseNOR(%d,%d,%d): work %d, want proof size %d", d, n, rv, got, want)
				}
			}
		}
	}
}

func TestFact1LowerBoundNeverViolated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		n := 1 + rng.Intn(5)
		tr := tree.IIDNor(d, n, 0.618, rng.Int63())
		lb := bounds.Fact1(d, n).Int64()
		for w := 0; w <= 2; w++ {
			m, err := ParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Work < lb {
				t.Fatalf("trial %d width %d: work %d below Fact 1 bound %d", trial, w, m.Work, lb)
			}
		}
	}
}

func TestTeamSolveBasics(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 8, 1)
	seq := seqWork(t, tr)
	prev := seq
	for _, p := range []int{1, 2, 4, 8, 16} {
		m, err := TeamSolve(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != tr.Evaluate() {
			t.Fatalf("TeamSolve(%d): wrong value", p)
		}
		if m.Processors > p {
			t.Fatalf("TeamSolve(%d): used %d processors", p, m.Processors)
		}
		if m.Steps > prev {
			t.Errorf("TeamSolve(%d): steps %d not monotone (prev %d)", p, m.Steps, prev)
		}
		prev = m.Steps
	}
	if _, err := TeamSolve(tr, 0, Options{}); err == nil {
		t.Error("TeamSolve(0) should fail")
	}
	if _, err := ParallelSolve(tr, -1, Options{}); err == nil {
		t.Error("ParallelSolve(-1) should fail")
	}
}

func TestParallelSolveProcessorBound(t *testing.T) {
	// Width 1 on B(d, n) uses at most n+1 processors (Theorem 1 statement).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(6)
		tr := tree.IIDNor(d, n, 0.5, rng.Int63())
		m, err := ParallelSolve(tr, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Processors > n+1 {
			t.Fatalf("width 1 used %d processors on height %d", m.Processors, n)
		}
	}
}

func TestDegreeHistogramConsistency(t *testing.T) {
	tr := tree.IIDNor(3, 5, 0.5, 77)
	m, err := ParallelSolve(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var steps, work int64
	for k, c := range m.DegreeHist {
		steps += c
		work += int64(k) * c
	}
	if steps != m.Steps || work != m.Work {
		t.Errorf("histogram inconsistent: steps %d/%d work %d/%d", steps, m.Steps, work, m.Work)
	}
}

// TestProposition3 checks t_{k+1}(H_T) <= C(n,k)(d-1)^k for width 1 runs
// on skeletons of random and adversarial uniform trees.
func TestProposition3(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	check := func(tr *tree.Tree, d, n int) {
		t.Helper()
		seq, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		m, err := ParallelSolve(h, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for deg := 1; deg < len(m.DegreeHist); deg++ {
			bound := bounds.SigmaK(d, n, deg-1)
			if bound.IsInt64() && m.DegreeHist[deg] > bound.Int64() {
				t.Errorf("B(%d,%d): t_%d = %d exceeds sigma_%d = %d",
					d, n, deg, m.DegreeHist[deg], deg-1, bound.Int64())
			}
		}
	}
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(5)
		check(tree.IIDNor(d, n, 0.618, rng.Int63()), d, n)
	}
	check(tree.WorstCaseNOR(2, 8, 1), 2, 8)
	check(tree.BestCaseNOR(2, 8, 1), 2, 8)
}

// TestProposition2 checks P_w(T) <= P_w(H_T) on sampled instances.
func TestProposition2(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(5)
		tr := tree.IIDNor(d, n, 0.5, rng.Int63())
		seq, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		for w := 1; w <= 2; w++ {
			pt, err := ParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ph, err := ParallelSolve(h, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if pt.Steps > ph.Steps {
				t.Errorf("trial %d width %d: P(T)=%d > P(H_T)=%d (Prop 2 violated)",
					trial, w, pt.Steps, ph.Steps)
			}
		}
	}
}

// TestSkeletonWorkEqualsSequential: H_T's leaves are exactly L(T), so
// running Sequential SOLVE on H_T evaluates all of them and S(H_T) = S(T).
func TestSkeletonWorkEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		tr := tree.IIDNor(2+rng.Intn(2), 1+rng.Intn(5), 0.5, rng.Int63())
		seq, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		if int64(h.NumLeaves()) != seq.Work {
			t.Fatalf("trial %d: skeleton leaves %d != S(T) %d", trial, h.NumLeaves(), seq.Work)
		}
		seqH, err := SequentialSolve(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seqH.Work != seq.Work {
			t.Fatalf("trial %d: S(H_T) %d != S(T) %d", trial, seqH.Work, seq.Work)
		}
	}
}

// Property: the leftmost live leaf always has pruning number 0, and
// pruning numbers from the budgeted walk agree with the naive definition.
func TestPruningNumbersAgainstDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDNor(2+rng.Intn(2), 1+rng.Intn(4), 0.5, rng.Int63())
		// Evaluate a random prefix of leaves sequentially to get a
		// mid-run state.
		seq, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			return false
		}
		k := rng.Intn(len(seq.Leaves))
		ev := map[tree.NodeID]int32{}
		for _, l := range seq.Leaves[:k] {
			ev[l] = tr.LeafValue(l)
		}
		got := PruningNumbersNOR(tr, ev)
		want := naivePruningNumbers(tr, ev)
		if len(got) != len(want) {
			return false
		}
		minPN, minLeaf := 1<<30, tree.None
		for l, pn := range got {
			if want[l] != pn {
				return false
			}
			if pn < minPN || (pn == minPN && l < minLeaf) {
				minPN, minLeaf = pn, l
			}
		}
		return minPN == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// naivePruningNumbers computes pruning numbers straight from the paper's
// definition: for each live leaf, sum over its ancestors the number of
// live left-siblings.
func naivePruningNumbers(t *tree.Tree, evaluated map[tree.NodeID]int32) map[tree.NodeID]int {
	s := newNorState(t)
	for l, v := range evaluated {
		s.determine(l, int8(v))
	}
	live := func(v tree.NodeID) bool {
		for x := v; x != tree.None; x = t.Node(x).Parent {
			if s.det[x] >= 0 {
				return false
			}
		}
		return true
	}
	out := map[tree.NodeID]int{}
	for _, l := range t.Leaves() {
		if !live(l) {
			continue
		}
		pn := 0
		for a := l; a != tree.None; a = t.Node(a).Parent {
			p := t.Node(a).Parent
			if p == tree.None {
				continue
			}
			pn0 := t.Node(p).FirstChild
			for i := int32(0); i < t.Node(a).ChildIndex; i++ {
				sib := pn0 + tree.NodeID(i)
				if s.det[sib] < 0 { // live sibling (parent chain shared with a)
					pn++
				}
			}
		}
		out[l] = pn
	}
	return out
}

func TestStepLimit(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 10, 1)
	_, err := SequentialSolve(tr, Options{MaxSteps: 5})
	if err != ErrStepLimit {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := tree.FromNested(tree.NOR, 1)
	m, err := ParallelSolve(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value != 1 || m.Steps != 1 || m.Work != 1 {
		t.Errorf("single leaf: %+v", m)
	}
}

// The exact i.i.d. theory (two-state DP in internal/bounds) must predict
// the measured mean sequential work. Deterministic given the seeds.
func TestSequentialWorkMatchesIIDTheory(t *testing.T) {
	const trials = 400
	for _, cse := range []struct {
		d, n int
		p    float64
	}{
		{2, 8, 0.5}, {2, 8, 0.618034}, {3, 5, 0.3}, {2, 10, 0.7},
	} {
		want := bounds.ExpectedSolveWork(cse.d, cse.n, cse.p)
		var sum float64
		for i := 0; i < trials; i++ {
			tr := tree.IIDNor(cse.d, cse.n, cse.p, int64(1000+i*37))
			m, err := SequentialSolve(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(m.Work)
		}
		got := sum / trials
		if rel := (got - want) / want; rel < -0.12 || rel > 0.12 {
			t.Errorf("d=%d n=%d p=%v: measured mean %.2f vs theory %.2f (rel %.3f)",
				cse.d, cse.n, cse.p, got, want, rel)
		}
	}
}

// The root-value distribution must match the DP too.
func TestRootDistributionMatchesTheory(t *testing.T) {
	const trials = 1200
	d, n, p := 2, 9, 0.618034
	want := bounds.RootOneProbability(d, n, p)
	ones := 0
	for i := 0; i < trials; i++ {
		if tree.IIDNor(d, n, p, int64(5000+i)).Evaluate() == 1 {
			ones++
		}
	}
	got := float64(ones) / trials
	if diff := got - want; diff < -0.05 || diff > 0.05 {
		t.Errorf("P(root=1) measured %.3f vs theory %.3f", got, want)
	}
}

// The measured max parallel degree of a width-w run never exceeds the
// combinatorial processor bound sum_{k<=w} C(n,k)(d-1)^k.
func TestWidthProcessorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(6)
		tr := tree.IIDNor(d, n, 0.382, rng.Int63())
		for w := 0; w <= 3; w++ {
			m, err := ParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			bound := bounds.WidthProcessorBound(d, n, w)
			if bound.IsInt64() && int64(m.Processors) > bound.Int64() {
				t.Fatalf("trial %d d=%d n=%d w=%d: %d processors exceed bound %d",
					trial, d, n, w, m.Processors, bound.Int64())
			}
		}
	}
	// The worst case drives the degree close to the bound at w=1.
	tr := tree.WorstCaseNOR(2, 12, 1)
	m, err := ParallelSolve(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(m.Processors) != bounds.WidthProcessorBound(2, 12, 1).Int64() {
		t.Errorf("worst case width-1 procs %d, bound %d",
			m.Processors, bounds.WidthProcessorBound(2, 12, 1).Int64())
	}
}
