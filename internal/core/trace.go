package core

import (
	"fmt"

	"gametree/internal/tree"
)

// This file instruments Parallel SOLVE with the proof objects of
// Proposition 3: the base path of each step (the root-leaf path to the
// leftmost live leaf) and its code — the vector whose i-th component is
// the number of live right-siblings of the i-th path node before the
// step. The proof of Proposition 3 shows that for width 1 the codes of
// successive steps strictly decrease in lexicographic order, and that the
// parallel degree of a step equals one plus the number of non-zero code
// components; TraceParallelSolve exposes both facts for verification.

// StepTrace records one step of an instrumented run.
type StepTrace struct {
	// BasePath is the root-leaf path to the leftmost live leaf before
	// the step, root first.
	BasePath []tree.NodeID
	// Code is the base path's code: Code[i] counts the live
	// right-siblings of BasePath[i+1] (the paper indexes path nodes from
	// the first level below the root; the root itself has no siblings).
	Code []int
	// Leaves are the leaves evaluated at this step, in left-to-right
	// order.
	Leaves []tree.NodeID
}

// Degree returns the parallel degree of the step.
func (s StepTrace) Degree() int { return len(s.Leaves) }

// NonZeroCode returns the number of non-zero code components.
func (s StepTrace) NonZeroCode() int {
	k := 0
	for _, c := range s.Code {
		if c > 0 {
			k++
		}
	}
	return k
}

// CompareCodes compares two codes lexicographically, padding the shorter
// one with zeros (paths can have different lengths on non-uniform trees).
// It returns -1, 0 or +1.
func CompareCodes(a, b []int) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		av, bv := 0, 0
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	}
	return 0
}

// TraceParallelSolve runs Parallel SOLVE of width w on a NOR tree and
// records, for every step, the base path, its code, and the leaves
// evaluated. Metrics match ParallelSolve exactly.
func TraceParallelSolve(t *tree.Tree, w int, opt Options) ([]StepTrace, Metrics, error) {
	if w < 0 {
		return nil, Metrics{}, fmt.Errorf("core: TraceParallelSolve requires width >= 0, got %d", w)
	}
	s := newNorState(t)
	var traces []StepTrace
	var m Metrics
	for s.det[0] < 0 {
		st := StepTrace{}
		st.BasePath, st.Code = s.basePath()
		s.selected = s.selected[:0]
		s.collectWidth(0, w)
		if len(s.selected) == 0 {
			return traces, m, fmt.Errorf("core: no live leaves selected but root undetermined (bug)")
		}
		st.Leaves = append([]tree.NodeID(nil), s.selected...)
		traces = append(traces, st)
		for _, l := range s.selected {
			s.determine(l, int8(s.t.LeafValue(l)))
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, st.Leaves...)
		}
		m.recordStep(len(st.Leaves))
		if err := opt.check(m.Steps); err != nil {
			return traces, m, err
		}
	}
	m.Value = int32(s.det[0])
	return traces, m, nil
}

// basePath returns the path from the root to the leftmost live leaf and
// its code. The receiver's root must be live.
func (s *norState) basePath() ([]tree.NodeID, []int) {
	var path []tree.NodeID
	var code []int
	v := tree.NodeID(0)
	path = append(path, v)
	for !s.t.IsLeaf(v) {
		nd := s.t.Node(v)
		// Find the leftmost live child and count the live siblings to
		// its right.
		next := tree.None
		liveRight := 0
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.det[c] >= 0 {
				continue
			}
			if next == tree.None {
				next = c
			} else {
				liveRight++
			}
		}
		if next == tree.None {
			panic("core: basePath on a node with no live children")
		}
		path = append(path, next)
		code = append(code, liveRight)
		v = next
	}
	return path, code
}
