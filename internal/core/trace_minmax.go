package core

import (
	"fmt"

	"gametree/internal/tree"
)

// TraceParallelAlphaBeta is the MIN/MAX counterpart of TraceParallelSolve:
// it runs Parallel alpha-beta of width w recording, for each step, the
// base path (root to the leftmost unfinished leaf of the pruned tree) and
// its code (per path node, the number of unfinished right-siblings).
// Section 4 asserts without proof that "the conclusion of Proposition 3
// remains valid for MIN/MAX trees"; the traces let tests check the
// underlying code machinery — strict lexicographic decrease and the
// degree identity — directly on the pruning process.
func TraceParallelAlphaBeta(t *tree.Tree, w int, opt Options) ([]StepTrace, Metrics, error) {
	if w < 0 {
		return nil, Metrics{}, fmt.Errorf("core: TraceParallelAlphaBeta requires width >= 0, got %d", w)
	}
	s := newMinmaxState(t)
	var traces []StepTrace
	var m Metrics
	for !s.finished[0] {
		st := StepTrace{}
		st.BasePath, st.Code = s.basePath()
		s.selected = s.selected[:0]
		s.collectWidth(0, w)
		if len(s.selected) == 0 {
			return traces, m, fmt.Errorf("core: no unfinished leaves selected but root unfinished (bug)")
		}
		st.Leaves = append([]tree.NodeID(nil), s.selected...)
		traces = append(traces, st)
		for _, l := range s.selected {
			s.bumpEval(l)
			s.finishLeaf(l)
		}
		if opt.RecordLeaves {
			m.Leaves = append(m.Leaves, st.Leaves...)
		}
		m.recordStep(len(st.Leaves))
		for s.prunePass() {
		}
		if err := opt.check(m.Steps); err != nil {
			return traces, m, err
		}
	}
	m.Value = s.val[0]
	return traces, m, nil
}

// basePath returns the path to the leftmost unfinished leaf of the pruned
// tree and its code (unfinished right-siblings per path node).
func (s *minmaxState) basePath() ([]tree.NodeID, []int) {
	var path []tree.NodeID
	var code []int
	v := tree.NodeID(0)
	path = append(path, v)
	for !s.t.IsLeaf(v) {
		nd := s.t.Node(v)
		next := tree.None
		right := 0
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.deleted[c] || s.finished[c] {
				continue
			}
			if next == tree.None {
				next = c
			} else {
				right++
			}
		}
		if next == tree.None {
			panic("core: basePath on a node with no unfinished children")
		}
		path = append(path, next)
		code = append(code, right)
		v = next
	}
	return path, code
}
