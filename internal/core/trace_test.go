package core

import (
	"math/rand"
	"testing"

	"gametree/internal/tree"
)

// The central fact behind Proposition 3: during a width-1 run, the codes
// of successive base paths strictly decrease in lexicographic order.
func TestBasePathCodesStrictlyDecrease(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(tr *tree.Tree, label string) {
		t.Helper()
		traces, m, err := TraceParallelSolve(tr, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != tr.Evaluate() {
			t.Fatalf("%s: wrong value", label)
		}
		for i := 1; i < len(traces); i++ {
			if CompareCodes(traces[i].Code, traces[i-1].Code) >= 0 {
				t.Fatalf("%s: code at step %d (%v) does not decrease from %v",
					label, i, traces[i].Code, traces[i-1].Code)
			}
		}
	}
	// On skeletons (the setting of the proposition).
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(5)
		tr := tree.IIDNor(d, n, 0.618, rng.Int63())
		seq, err := SequentialSolve(tr, Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		check(h, "skeleton")
	}
	// The argument does not depend on skeleton-ness; verify on raw trees.
	for trial := 0; trial < 20; trial++ {
		check(tree.IIDNor(2, 2+rng.Intn(6), 0.5, rng.Int63()), "raw")
	}
	check(tree.WorstCaseNOR(2, 8, 1), "worst")
	check(tree.BestCaseNOR(3, 6, 0), "best")
}

// The degree relation from the proof: at every width-1 step, the parallel
// degree equals 1 + (number of non-zero code components).
func TestDegreeEqualsOnePlusNonZeroCode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		tr := tree.IIDNor(2+rng.Intn(2), 2+rng.Intn(5), 0.618, rng.Int63())
		traces, _, err := TraceParallelSolve(tr, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range traces {
			if st.Degree() != 1+st.NonZeroCode() {
				t.Fatalf("trial %d step %d: degree %d != 1+%d (code %v)",
					trial, i, st.Degree(), st.NonZeroCode(), st.Code)
			}
		}
	}
}

// The base path must end at the leftmost live leaf, which is the first
// leaf evaluated at the step, and the recorded metrics must match the
// uninstrumented run exactly.
func TestTraceConsistentWithPlainRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		tr := tree.IIDNor(2, 2+rng.Intn(6), 0.5, rng.Int63())
		for w := 0; w <= 2; w++ {
			traces, m, err := TraceParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := ParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Steps != plain.Steps || m.Work != plain.Work || m.Value != plain.Value {
				t.Fatalf("trial %d w=%d: trace metrics %+v != plain %+v", trial, w, m, plain)
			}
			for i, st := range traces {
				last := st.BasePath[len(st.BasePath)-1]
				if st.Leaves[0] != last {
					t.Fatalf("trial %d w=%d step %d: first leaf %d != base path end %d",
						trial, w, i, st.Leaves[0], last)
				}
				if len(st.Code) != len(st.BasePath)-1 {
					t.Fatalf("trial %d step %d: code length %d for path length %d",
						trial, i, len(st.Code), len(st.BasePath))
				}
			}
		}
	}
}

// Distinctness: base paths of different steps are distinct (they end at
// different leftmost live leaves), hence so are their codes.
func TestBasePathsDistinct(t *testing.T) {
	tr := tree.IIDNor(2, 8, 0.618, 7)
	traces, _, err := TraceParallelSolve(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[tree.NodeID]bool{}
	for i, st := range traces {
		end := st.BasePath[len(st.BasePath)-1]
		if seen[end] {
			t.Fatalf("step %d: base path endpoint %d repeated", i, end)
		}
		seen[end] = true
	}
}

func TestCompareCodes(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{0, 1}, []int{0, 1}, 0},
		{[]int{0, 1}, []int{1, 0}, -1},
		{[]int{1}, []int{0, 5}, 1},
		{[]int{0, 0}, []int{0}, 0}, // zero padding
		{nil, []int{0, 0}, 0},
		{[]int{2, 9}, []int{3}, -1},
	}
	for _, c := range cases {
		if got := CompareCodes(c.a, c.b); got != c.want {
			t.Errorf("CompareCodes(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 6, 1)
	if _, _, err := TraceParallelSolve(tr, -1, Options{}); err == nil {
		t.Error("negative width accepted")
	}
	if _, _, err := TraceParallelSolve(tr, 1, Options{MaxSteps: 1}); err != ErrStepLimit {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
}

// Section 4 asserts (without proof) that the Proposition 3 machinery
// carries over to MIN/MAX trees. Check the code properties on the
// alpha-beta pruning process directly.
func TestMinMaxBasePathCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	check := func(tr *tree.Tree, label string) {
		t.Helper()
		traces, m, err := TraceParallelAlphaBeta(tr, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != tr.Evaluate() {
			t.Fatalf("%s: wrong value", label)
		}
		for i, st := range traces {
			if i > 0 && CompareCodes(st.Code, traces[i-1].Code) >= 0 {
				t.Fatalf("%s: code at step %d (%v) does not decrease from %v",
					label, i, st.Code, traces[i-1].Code)
			}
			if st.Degree() != 1+st.NonZeroCode() {
				t.Fatalf("%s step %d: degree %d != 1+%d", label, i, st.Degree(), st.NonZeroCode())
			}
		}
	}
	for trial := 0; trial < 20; trial++ {
		check(tree.IIDMinMax(2+rng.Intn(2), 1+rng.Intn(5), -100, 100, rng.Int63()), "iid")
	}
	check(tree.WorstOrderedMinMax(2, 8, 1), "worst-ordered")
	check(tree.BestOrderedMinMax(2, 8, 1), "best-ordered")
}

// The trace must match the plain parallel alpha-beta run step for step.
func TestMinMaxTraceConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		tr := tree.IIDMinMax(2, 1+rng.Intn(5), -50, 50, rng.Int63())
		for w := 0; w <= 2; w++ {
			_, m, err := TraceParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := ParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Steps != plain.Steps || m.Work != plain.Work || m.Value != plain.Value {
				t.Fatalf("trial %d w=%d: %+v != %+v", trial, w, m, plain)
			}
		}
	}
	if _, _, err := TraceParallelAlphaBeta(tree.IIDMinMax(2, 3, 0, 9, 1), -1, Options{}); err == nil {
		t.Error("negative width accepted")
	}
}
