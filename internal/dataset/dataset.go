// Package dataset provides reproducible instance suites on disk: a
// manifest (JSON) describing a family of generated instances plus one
// encoded tree file per instance. It exists so experiment inputs can be
// frozen, shared and re-loaded bit-for-bit — the reproducibility layer
// behind cmd/gtgen.
package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gametree/internal/tree"
)

// Spec describes one instance to generate.
type Spec struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`   // "nor" or "minmax"
	Family   string  `json:"family"` // worst, best, iid, best-ordered, worst-ordered, near-uniform
	D        int     `json:"d"`      // branching factor
	N        int     `json:"n"`      // height
	Bias     float64 `json:"bias"`   // NOR iid leaf bias
	Lo       int32   `json:"lo"`     // MinMax iid value range, lower end
	Hi       int32   `json:"hi"`     // MinMax iid value range, upper end
	Alpha    float64 `json:"alpha"`  // near-uniform degree ratio
	Beta     float64 `json:"beta"`   // near-uniform depth ratio
	Seed     int64   `json:"seed"`
	RootVal  int32   `json:"rootval"`  // worst/best NOR root value
	Checksum string  `json:"checksum"` // filled at write time: value + size
}

// Manifest is the on-disk description of a suite.
type Manifest struct {
	Title     string `json:"title"`
	Instances []Spec `json:"instances"`
}

// Generate materializes the tree a Spec describes.
func Generate(s Spec) (*tree.Tree, error) {
	switch s.Kind {
	case "nor":
		switch s.Family {
		case "worst":
			return tree.WorstCaseNOR(s.D, s.N, s.RootVal), nil
		case "best":
			return tree.BestCaseNOR(s.D, s.N, s.RootVal), nil
		case "iid":
			return tree.IIDNor(s.D, s.N, s.Bias, s.Seed), nil
		case "near-uniform":
			return tree.NearUniform(tree.NOR, s.D, s.N, s.Alpha, s.Beta, s.Seed,
				tree.BernoulliLeaves(s.Bias, s.Seed+1)), nil
		}
	case "minmax":
		switch s.Family {
		case "iid":
			return tree.IIDMinMax(s.D, s.N, s.Lo, s.Hi, s.Seed), nil
		case "best-ordered":
			return tree.BestOrderedMinMax(s.D, s.N, s.Seed), nil
		case "worst-ordered":
			return tree.WorstOrderedMinMax(s.D, s.N, s.Seed), nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown kind/family %q/%q", s.Kind, s.Family)
}

// checksum is a cheap content fingerprint: value, node count, height.
func checksum(t *tree.Tree) string {
	return fmt.Sprintf("v%d-n%d-h%d", t.Evaluate(), t.Len(), t.Height)
}

// Write materializes every instance of the manifest into dir: one
// <name>.tree file per instance plus manifest.json (with checksums).
func Write(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range m.Instances {
		s := &m.Instances[i]
		if s.Name == "" {
			return fmt.Errorf("dataset: instance %d has no name", i)
		}
		t, err := Generate(*s)
		if err != nil {
			return err
		}
		s.Checksum = checksum(t)
		f, err := os.Create(filepath.Join(dir, s.Name+".tree"))
		if err != nil {
			return err
		}
		if err := t.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	mf, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}

// Load reads a suite back: the manifest and every tree, verifying each
// checksum.
func Load(dir string) (Manifest, map[string]*tree.Tree, error) {
	var m Manifest
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return m, nil, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, nil, fmt.Errorf("dataset: bad manifest: %w", err)
	}
	trees := make(map[string]*tree.Tree, len(m.Instances))
	for _, s := range m.Instances {
		f, err := os.Open(filepath.Join(dir, s.Name+".tree"))
		if err != nil {
			return m, nil, err
		}
		t, err := tree.Decode(f)
		f.Close()
		if err != nil {
			return m, nil, fmt.Errorf("dataset: %s: %w", s.Name, err)
		}
		if got := checksum(t); s.Checksum != "" && got != s.Checksum {
			return m, nil, fmt.Errorf("dataset: %s: checksum %s, manifest says %s", s.Name, got, s.Checksum)
		}
		trees[s.Name] = t
	}
	return m, trees, nil
}

// StandardSuite returns the manifest used by the repository's frozen
// benchmark inputs: one instance per family at moderate sizes.
func StandardSuite(seed int64) Manifest {
	return Manifest{
		Title: "gametree standard suite",
		Instances: []Spec{
			{Name: "nor-worst-2-12", Kind: "nor", Family: "worst", D: 2, N: 12, RootVal: 1},
			{Name: "nor-best-2-12", Kind: "nor", Family: "best", D: 2, N: 12, RootVal: 1},
			{Name: "nor-iid-2-12", Kind: "nor", Family: "iid", D: 2, N: 12, Bias: 0.381966, Seed: seed},
			{Name: "nor-near-uniform-4-10", Kind: "nor", Family: "near-uniform", D: 4, N: 10,
				Bias: 0.317672, Alpha: 0.5, Beta: 0.5, Seed: seed},
			{Name: "mm-iid-2-10", Kind: "minmax", Family: "iid", D: 2, N: 10, Lo: -1000, Hi: 1000, Seed: seed},
			{Name: "mm-best-2-10", Kind: "minmax", Family: "best-ordered", D: 2, N: 10, Seed: seed},
			{Name: "mm-worst-2-10", Kind: "minmax", Family: "worst-ordered", D: 2, N: 10, Seed: seed},
		},
	}
}
