package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := StandardSuite(7)
	if err := Write(dir, m); err != nil {
		t.Fatal(err)
	}
	loaded, trees, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Title != m.Title || len(loaded.Instances) != len(m.Instances) {
		t.Fatalf("manifest mismatch: %+v", loaded)
	}
	for _, s := range loaded.Instances {
		tr, ok := trees[s.Name]
		if !ok {
			t.Fatalf("missing tree %s", s.Name)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Regenerating from the spec gives the identical tree.
		regen, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		if regen.Len() != tr.Len() || regen.Evaluate() != tr.Evaluate() {
			t.Fatalf("%s: regeneration differs", s.Name)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Title: "t", Instances: []Spec{
		{Name: "a", Kind: "nor", Family: "worst", D: 2, N: 4, RootVal: 1},
	}}
	if err := Write(dir, m); err != nil {
		t.Fatal(err)
	}
	// Swap the tree file for a different instance.
	other := Manifest{Title: "t", Instances: []Spec{
		{Name: "a", Kind: "nor", Family: "worst", D: 2, N: 5, RootVal: 1},
	}}
	dir2 := t.TempDir()
	if err := Write(dir2, other); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir2, "a.tree"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.tree"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Kind: "nor", Family: "nope"}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Generate(Spec{Kind: "xxx", Family: "worst"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := Write(t.TempDir(), Manifest{Instances: []Spec{{}}}); err == nil {
		t.Error("nameless instance accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Error("bad json should fail")
	}
}
