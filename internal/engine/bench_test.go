package engine

// Benchmarks of the execution substrate swap: the pooled work-stealing
// cascade against the original goroutine-per-sibling spawn path. The
// workload is a pessimally-ordered tree (every child improves on its
// predecessor, so alpha-beta prunes little and almost every interior node
// above the sequential horizon becomes a split point) — the regime where
// per-split scheduling overhead dominates. The headline metrics are
// nodes/sec and allocs/op; see BENCH_engine.json and EXPERIMENTS.md E12
// for recorded numbers.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

const (
	benchDepth  = 8
	benchBranch = 4
)

var benchRoot = NewPessimalTree(benchDepth, benchBranch, 0)

func reportNodes(b *testing.B, nodes int64) {
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
}

// BenchmarkEnginePooled compares the substrates at GOMAXPROCS workers and
// sweeps the pooled worker count. "spawn" is the seed engine (goroutine +
// channel + context per split, positions without AppendMoves); "pooled" is
// the new substrate with per-worker deques and recycled move buffers.
func BenchmarkEnginePooled(b *testing.B) {
	plain := benchRoot
	appender := (*BenchTreeAppender)(benchRoot)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			nodes += Search(plain, benchDepth).Nodes
		}
		reportNodes(b, nodes)
	})
	b.Run("spawn", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			r, err := searchParallelSpawn(context.Background(), plain, benchDepth, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			nodes += r.Nodes
		}
		reportNodes(b, nodes)
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			r, err := SearchParallel(context.Background(), appender, benchDepth, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			nodes += r.Nodes
		}
		reportNodes(b, nodes)
	})
	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("pooled-workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var nodes int64
			for i := 0; i < b.N; i++ {
				r, err := SearchParallel(context.Background(), appender, benchDepth, w)
				if err != nil {
					b.Fatal(err)
				}
				nodes += r.Nodes
			}
			reportNodes(b, nodes)
		})
	}
}

// BenchmarkEnginePooledTT is the pooled substrate with a shared 4-way
// bucketed transposition table in the loop (hashed positions).
func BenchmarkEnginePooledTT(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	var next uint64
	pos := buildHashed(rng, 8, 4, &next)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		table := NewTable(1 << 16)
		var nodes int64
		for i := 0; i < b.N; i++ {
			r, err := SearchParallelTT(context.Background(), pos, 8,
				SearchOptions{Table: table, Workers: runtime.GOMAXPROCS(0)})
			if err != nil {
				b.Fatal(err)
			}
			nodes += r.Nodes
		}
		reportNodes(b, nodes)
	})
}
