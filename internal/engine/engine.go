// Package engine is the practical, wall-clock-parallel counterpart of the
// paper's step-model algorithms: a goroutine-based game evaluator for real
// games exposed through the Position interface.
//
// The parallel search uses the paper's central idea — spend extra
// processors on the nodes a left-to-right sequential search would reach
// soonest — in its engineering form: at every node the first (leftmost)
// successor is searched before the others ("young brothers wait", the
// cascade of Section 2's P-SOLVE), and the remaining successors are then
// searched concurrently with the window established by the first. A
// speculative sibling search is aborted when a cutoff is found, mirroring
// the pre-emption rule of Section 7.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Position is a game state. Implementations must be immutable values:
// Moves returns successor states and must not mutate the receiver.
type Position interface {
	// Moves returns the legal successor positions in preference order.
	// An empty slice means the position is terminal.
	Moves() []Position
	// Evaluate returns a static score from the perspective of the side
	// to move (negamax convention). It is called at terminal positions
	// and at the depth horizon.
	Evaluate() int32
}

// Result reports the outcome of a search.
type Result struct {
	Value int32 // negamax value of the root (side to move's perspective)
	Best  int   // index of the best root move; -1 for terminal/depth-0 roots
	Nodes int64 // positions visited
}

// ErrCancelled is returned when the context is cancelled mid-search.
var ErrCancelled = errors.New("engine: search cancelled")

const (
	winScore  = int32(1 << 24) // larger than any heuristic score
	scoreInf  = int64(math.MaxInt32)
	checkMask = 255 // context poll frequency in nodes
)

// Search evaluates the position to the given depth with sequential
// fail-hard alpha-beta (negamax form). depth < 0 means no horizon.
func Search(pos Position, depth int) Result {
	e := &searcher{ctx: context.Background()}
	v, best := e.negamax(pos, depth, -scoreInf, scoreInf, true)
	return Result{Value: int32(v), Best: best, Nodes: e.nodes.Load()}
}

// SearchParallel evaluates the position to the given depth using up to
// workers concurrent goroutines (0 means GOMAXPROCS). It returns the same
// value as Search.
func SearchParallel(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &searcher{ctx: ctx, sem: make(chan struct{}, workers)}
	v, best := e.parallel(pos, depth, -scoreInf, scoreInf, true)
	if ctx.Err() != nil {
		return Result{}, ErrCancelled
	}
	return Result{Value: int32(v), Best: best, Nodes: e.nodes.Load()}, nil
}

type searcher struct {
	ctx   context.Context
	sem   chan struct{} // bounds concurrent speculative searches
	table *Table        // optional shared transposition table
	nodes atomic.Int64
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (e *searcher) cancelled() bool {
	select {
	case <-e.ctx.Done():
		return true
	default:
		return false
	}
}

// negamax is the sequential fail-hard search. wantBest selects whether the
// best-move index is tracked (only needed at the root). When the searcher
// carries a transposition table and the position implements Hasher,
// sufficient-depth entries cut off immediately and stored best moves are
// tried first.
func (e *searcher) negamax(pos Position, depth int, alpha, beta int64, wantBest bool) (int64, int) {
	n := e.nodes.Add(1)
	if n&checkMask == 0 && e.cancelled() {
		return alpha, -1
	}
	if depth == 0 {
		return int64(pos.Evaluate()), -1
	}
	moves := pos.Moves()
	if len(moves) == 0 {
		return int64(pos.Evaluate()), -1
	}

	var hash uint64
	hashed := false
	ttBest := -1
	if e.table != nil {
		if h, ok := pos.(Hasher); ok {
			hash, hashed = h.Hash(), true
			if v, d, flag, tb, hit := e.table.Probe(hash); hit {
				if tb >= 0 && tb < len(moves) {
					ttBest = tb
				}
				if d >= depth {
					switch flag {
					case boundExact:
						return int64(v), ttBest
					case boundLower:
						if int64(v) > alpha {
							alpha = int64(v)
						}
					case boundUpper:
						if int64(v) < beta {
							beta = int64(v)
						}
					}
					if alpha >= beta {
						return int64(v), ttBest
					}
				}
			}
		}
	}
	alpha0 := alpha

	best := int64(-scoreInf)
	bestIdx := -1
	for j := 0; j < len(moves); j++ {
		// Visit the stored best move first, then the rest in order.
		i := j
		if ttBest >= 0 {
			switch {
			case j == 0:
				i = ttBest
			case j <= ttBest:
				i = j - 1
			}
		}
		v, _ := e.negamax(moves[i], depth-1, -beta, -alpha, false)
		v = -v
		if v > best {
			best = v
			bestIdx = i
		}
		if best > alpha {
			alpha = best
		}
		if alpha >= beta {
			break
		}
	}
	if hashed && !e.cancelled() {
		flag := boundExact
		switch {
		case best <= alpha0:
			flag = boundUpper
		case best >= beta:
			flag = boundLower
		}
		e.table.Store(hash, int32(best), depth, flag, bestIdx)
	}
	if !wantBest {
		return best, -1
	}
	return best, bestIdx
}

// parallel is the cascade search: leftmost child first (recursively
// parallel), then the remaining children speculatively in goroutines, each
// running the sequential search with the window sharpened by the first
// child's value. A beta cutoff cancels the speculative siblings.
func (e *searcher) parallel(pos Position, depth int, alpha, beta int64, wantBest bool) (int64, int) {
	e.nodes.Add(1)
	if e.cancelled() {
		return alpha, -1
	}
	if depth == 0 {
		return int64(pos.Evaluate()), -1
	}
	moves := pos.Moves()
	if len(moves) == 0 {
		return int64(pos.Evaluate()), -1
	}
	// Shallow subtrees are cheaper to search in place than to schedule.
	if depth <= 2 || len(moves) == 1 {
		return e.negamax(pos, depth, alpha, beta, wantBest)
	}

	// Phase 1: the leftmost child establishes the window, exactly as the
	// sequential algorithm would.
	v0, _ := e.parallel(moves[0], depth-1, -beta, -alpha, false)
	best := -v0
	bestIdx := 0
	if best > alpha {
		alpha = best
	}
	if alpha >= beta || e.cancelled() {
		return best, bestIdx
	}

	// Phase 2: speculative siblings. Each runs with the spawn-time
	// window; a wider (stale) alpha only loses sharpness, never
	// correctness.
	type sibling struct {
		idx int
		val int64
	}
	subCtx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	results := make(chan sibling, len(moves)-1)
	var wg sync.WaitGroup
	a0 := atomic.Int64{}
	a0.Store(alpha)
	for i := 1; i < len(moves); i++ {
		wg.Add(1)
		go func(i int, m Position) {
			defer wg.Done()
			if e.sem != nil {
				select {
				case e.sem <- struct{}{}:
					defer func() { <-e.sem }()
				case <-subCtx.Done():
					results <- sibling{i, -scoreInf}
					return
				}
			}
			sub := &searcher{ctx: subCtx, sem: e.sem, table: e.table}
			v, _ := sub.negamax(m, depth-1, -beta, -a0.Load(), false)
			e.nodes.Add(sub.nodes.Load())
			results <- sibling{i, -v}
		}(i, moves[i])
	}
	go func() { wg.Wait(); close(results) }()

	cut := false
	for r := range results {
		if cut || e.cancelled() {
			continue // drain
		}
		if r.val > best {
			best = r.val
			bestIdx = r.idx
		}
		if best > alpha {
			alpha = best
			a0.Store(alpha)
		}
		if alpha >= beta {
			cut = true
			cancel() // abort remaining speculative siblings
		}
	}
	return best, bestIdx
}

// Play returns the index of the best move at the root, or an error if the
// position is terminal.
func Play(ctx context.Context, pos Position, depth, workers int) (int, error) {
	if len(pos.Moves()) == 0 {
		return -1, fmt.Errorf("engine: no legal moves")
	}
	r, err := SearchParallel(ctx, pos, depth, workers)
	if err != nil {
		return -1, err
	}
	if r.Best < 0 {
		return -1, fmt.Errorf("engine: search found no move")
	}
	return r.Best, nil
}

// WinScore is the magnitude used by game implementations for a decided
// game; heuristic scores must stay strictly below it.
func WinScore() int32 { return winScore }
