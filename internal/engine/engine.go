// Package engine is the practical, wall-clock-parallel counterpart of the
// paper's step-model algorithms: a goroutine-based game evaluator for real
// games exposed through the Position interface.
//
// The parallel search uses the paper's central idea — spend extra
// processors on the nodes a left-to-right sequential search would reach
// soonest — in its engineering form: at every node the first (leftmost)
// successor is searched before the others ("young brothers wait", the
// cascade of Section 2's P-SOLVE), and the remaining successors are then
// searched concurrently with the window established by the first. A
// speculative sibling search is aborted when a cutoff is found, mirroring
// the pre-emption rule of Section 7.
//
// Execution happens on a fixed pool of worker goroutines with per-worker
// work-stealing deques (see pool.go), not a goroutine per speculative
// sibling; the original spawn-based implementation is kept below
// (parallelSpawn) as a measurable baseline.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gametree/internal/telemetry"
)

// Position is a game state. Implementations must be immutable values:
// Moves returns successor states and must not mutate the receiver.
type Position interface {
	// Moves returns the legal successor positions in preference order.
	// An empty slice means the position is terminal.
	Moves() []Position
	// Evaluate returns a static score from the perspective of the side
	// to move (negamax convention). It is called at terminal positions
	// and at the depth horizon.
	Evaluate() int32
}

// MoveAppender is an optional Position interface: implementations append
// their successors to dst (reusing its capacity) instead of allocating a
// fresh slice per call, letting the engine recycle per-worker move
// buffers on the hot path. AppendMoves must behave exactly like Moves.
type MoveAppender interface {
	AppendMoves(dst []Position) []Position
}

// Result reports the outcome of a search.
type Result struct {
	Value int32 // negamax value of the root (side to move's perspective)
	Best  int   // index of the best root move; -1 for terminal/depth-0 roots
	Nodes int64 // positions visited
}

// ErrCancelled is returned when the context is cancelled mid-search.
var ErrCancelled = errors.New("engine: search cancelled")

// ErrSearchPanic is returned (wrapped, with the recovered value) when a
// Position implementation panics inside a pooled search. The panic is
// confined to the worker that hit it: the pool aborts, every join drains,
// and the helper goroutines exit cleanly instead of crashing the process.
var ErrSearchPanic = errors.New("engine: panic during search")

const (
	winScore  = int32(1 << 24) // larger than any heuristic score
	scoreInf  = int64(math.MaxInt32)
	checkMask = 255 // interrupt poll frequency in nodes
)

// Search evaluates the position to the given depth with sequential
// fail-hard alpha-beta (negamax form). depth < 0 means no horizon.
func Search(pos Position, depth int) Result {
	e := &searcher{ctx: context.Background()}
	v, best := e.negamax(pos, depth, -scoreInf, scoreInf, true)
	return Result{Value: int32(v), Best: best, Nodes: e.nodes}
}

// SearchParallel evaluates the position to the given depth on a pool of
// up to `workers` worker goroutines (0 means GOMAXPROCS) with per-worker
// work-stealing deques. It returns the same value as Search.
func SearchParallel(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	return searchPooled(ctx, pos, depth, workers, nil, nil, poolConfig{})
}

// searcher is the sequential search state of one goroutine: the node
// counter is a plain per-worker integer (summed by the pool at the end,
// never contended), free recycles move buffers for MoveAppender
// positions, and stop/sp carry the pool's cancellation flag and the abort
// chain of the current speculative task.
type searcher struct {
	ctx   context.Context
	sem   chan struct{}    // bounds concurrency of the legacy spawn path
	table *Table           // optional shared transposition table
	stop  *atomic.Bool     // pooled: set when the search context is cancelled
	sp    *splitPoint      // pooled: abort chain of the current task
	tm    *telemetry.Shard // optional telemetry shard (this worker's, single-writer)
	nodes int64
	halt  bool         // latched by interrupted(): unwind every node, not 1-in-256
	free  [][]Position // recycled move buffers (MoveAppender positions)
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// interrupted reports whether this searcher should unwind: the pool's
// cancellation flag (one uncontended atomic load), an aborted enclosing
// split, or — for non-pooled searches — the context. It is polled every
// checkMask nodes; global triggers (stop flag, context) latch e.halt so
// that once tripped, EVERY subsequent node entry returns immediately.
// Without the latch a poll only prunes the single node it fires on and
// the siblings keep expanding — on a deep lazily-generated tree the
// unwind would take longer than the search it is cancelling. Split
// aborts are deliberately not latched: they end one speculative subtree,
// not the whole search.
func (e *searcher) interrupted() bool {
	if e.halt {
		return true
	}
	if e.stop != nil && e.stop.Load() {
		e.halt = true
		return true
	}
	if e.sp != nil && e.sp.aborted() {
		return true
	}
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			e.halt = true
			return true
		default:
		}
	}
	return false
}

// genMoves returns the successors of pos, through a recycled per-worker
// buffer when the position opts in via MoveAppender. The second return
// value must be passed back to putMoves.
func (e *searcher) genMoves(pos Position) ([]Position, bool) {
	if ap, ok := pos.(MoveAppender); ok {
		var buf []Position
		if n := len(e.free); n > 0 {
			buf = e.free[n-1]
			e.free = e.free[:n-1]
		}
		return ap.AppendMoves(buf), true
	}
	return pos.Moves(), false
}

// putMoves recycles a buffer obtained from genMoves. The Position
// references are cleared so finished subtrees stay collectable.
func (e *searcher) putMoves(moves []Position, scratch bool) {
	if !scratch {
		return
	}
	clear(moves)
	e.free = append(e.free, moves[:0])
}

// negamax is the sequential fail-hard search. wantBest selects whether the
// best-move index is tracked (only needed at the root). When the searcher
// carries a transposition table and the position implements Hasher,
// sufficient-depth entries cut off immediately and stored best moves are
// tried first.
func (e *searcher) negamax(pos Position, depth int, alpha, beta int64, wantBest bool) (int64, int) {
	e.nodes++
	if (e.halt || e.nodes&checkMask == 0) && e.interrupted() {
		return alpha, -1
	}
	if depth == 0 {
		return int64(pos.Evaluate()), -1
	}
	moves, scratch := e.genMoves(pos)
	if len(moves) == 0 {
		e.putMoves(moves, scratch)
		return int64(pos.Evaluate()), -1
	}

	var hash uint64
	hashed := false
	ttBest := -1
	if e.table != nil {
		if h, ok := pos.(Hasher); ok {
			hash, hashed = h.Hash(), true
			if e.tm != nil {
				e.tm.TTProbes.Add(1)
				e.tm.Hist[telemetry.HistTTProbeDepth].Observe(int64(depth))
			}
			if v, d, flag, tb, hit := e.table.ProbeAt(hash, depth); hit {
				if e.tm != nil {
					e.tm.TTHits.Add(1)
				}
				if tb >= 0 && tb < len(moves) {
					ttBest = tb
				}
				if d >= depth {
					switch flag {
					case BoundExact:
						e.putMoves(moves, scratch)
						return int64(v), ttBest
					case BoundLower:
						if int64(v) > alpha {
							alpha = int64(v)
						}
					case BoundUpper:
						if int64(v) < beta {
							beta = int64(v)
						}
					}
					if alpha >= beta {
						e.putMoves(moves, scratch)
						return int64(v), ttBest
					}
				}
			}
		}
	}
	alpha0 := alpha

	best := int64(-scoreInf)
	bestIdx := -1
	for j := 0; j < len(moves); j++ {
		// Visit the stored best move first, then the rest in order.
		i := j
		if ttBest >= 0 {
			switch {
			case j == 0:
				i = ttBest
			case j <= ttBest:
				i = j - 1
			}
		}
		v, _ := e.negamax(moves[i], depth-1, -beta, -alpha, false)
		v = -v
		if v > best {
			best = v
			bestIdx = i
		}
		if best > alpha {
			alpha = best
		}
		if alpha >= beta {
			break
		}
	}
	if hashed && !e.interrupted() {
		flag := BoundExact
		switch {
		case best <= alpha0:
			flag = BoundUpper
		case best >= beta:
			flag = BoundLower
		}
		evicted := e.table.StoreShared(hash, int32(best), depth, flag, bestIdx)
		if e.tm != nil {
			e.tm.TTStores.Add(1)
			if evicted {
				e.tm.TTEvictions.Add(1)
			}
		}
	}
	e.putMoves(moves, scratch)
	if !wantBest {
		return best, -1
	}
	return best, bestIdx
}

// parallelSpawn is the original cascade implementation — a goroutine,
// channel and searcher struct per speculative sibling, bounded by a
// semaphore — retained as the measurable baseline the pooled substrate is
// benchmarked against (BenchmarkEnginePooled/spawn).
func (e *searcher) parallelSpawn(pos Position, depth int, alpha, beta int64, wantBest bool) (int64, int) {
	e.nodes++
	if e.interrupted() {
		return alpha, -1
	}
	if depth == 0 {
		return int64(pos.Evaluate()), -1
	}
	moves := pos.Moves()
	if len(moves) == 0 {
		return int64(pos.Evaluate()), -1
	}
	// Shallow subtrees are cheaper to search in place than to schedule.
	if depth <= 2 || len(moves) == 1 {
		return e.negamax(pos, depth, alpha, beta, wantBest)
	}

	// Phase 1: the leftmost child establishes the window, exactly as the
	// sequential algorithm would.
	v0, _ := e.parallelSpawn(moves[0], depth-1, -beta, -alpha, false)
	best := -v0
	bestIdx := 0
	if best > alpha {
		alpha = best
	}
	if alpha >= beta || e.interrupted() {
		return best, bestIdx
	}

	// Phase 2: speculative siblings. Each runs with the spawn-time
	// window; a wider (stale) alpha only loses sharpness, never
	// correctness.
	type sibling struct {
		idx int
		val int64
	}
	subCtx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	results := make(chan sibling, len(moves)-1)
	var extra atomic.Int64
	var wg sync.WaitGroup
	a0 := atomic.Int64{}
	a0.Store(alpha)
	for i := 1; i < len(moves); i++ {
		wg.Add(1)
		go func(i int, m Position) {
			defer wg.Done()
			if e.sem != nil {
				select {
				case e.sem <- struct{}{}:
					defer func() { <-e.sem }()
				case <-subCtx.Done():
					results <- sibling{i, -scoreInf}
					return
				}
			}
			sub := &searcher{ctx: subCtx, sem: e.sem, table: e.table}
			v, _ := sub.negamax(m, depth-1, -beta, -a0.Load(), false)
			extra.Add(sub.nodes)
			results <- sibling{i, -v}
		}(i, moves[i])
	}
	go func() { wg.Wait(); close(results) }()

	cut := false
	for r := range results {
		if cut || e.interrupted() {
			continue // drain
		}
		if r.val > best {
			best = r.val
			bestIdx = r.idx
		}
		if best > alpha {
			alpha = best
			a0.Store(alpha)
		}
		if alpha >= beta {
			cut = true
			cancel() // abort remaining speculative siblings
		}
	}
	e.nodes += extra.Load()
	return best, bestIdx
}

// SearchParallelSpawn is the pre-pool SearchParallel (a goroutine, channel
// and context per split point), kept as the A/B baseline for benchmarking
// the substrates — gtbench -enginebench records it in BENCH_engine.json.
//
// Deprecated: use SearchParallel; this exists only to measure it against.
func SearchParallelSpawn(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	return searchParallelSpawn(ctx, pos, depth, workers)
}

func searchParallelSpawn(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	e := &searcher{ctx: ctx, sem: make(chan struct{}, workers)}
	v, best := e.parallelSpawn(pos, depth, -scoreInf, scoreInf, true)
	if ctx.Err() != nil {
		return Result{}, ErrCancelled
	}
	return Result{Value: int32(v), Best: best, Nodes: e.nodes}, nil
}

// Play returns the index of the best move at the root, or an error if the
// position is terminal. The root move list is generated once, inside the
// search — not pre-checked and recomputed.
func Play(ctx context.Context, pos Position, depth, workers int) (int, error) {
	r, err := SearchParallel(ctx, pos, depth, workers)
	if err != nil {
		return -1, err
	}
	if r.Best < 0 {
		return -1, fmt.Errorf("engine: no legal moves")
	}
	return r.Best, nil
}

// WinScore is the magnitude used by game implementations for a decided
// game; heuristic scores must stay strictly below it.
func WinScore() int32 { return winScore }
