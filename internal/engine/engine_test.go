package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// treePos adapts an explicit random tree to the Position interface so the
// parallel engine can be validated against exhaustive search.
type treePos struct {
	kids []*treePos
	val  int32
}

func (p *treePos) Moves() []Position {
	out := make([]Position, len(p.kids))
	for i, k := range p.kids {
		out[i] = k
	}
	return out
}

func (p *treePos) Evaluate() int32 { return p.val }

// buildRandomPos builds a random game DAG-free tree with values at the
// leaves (negamax convention: leaf value is from the mover's perspective).
func buildRandomPos(rng *rand.Rand, depth, maxKids int) *treePos {
	p := &treePos{val: int32(rng.Intn(201) - 100)}
	if depth == 0 {
		return p
	}
	n := 1 + rng.Intn(maxKids)
	for i := 0; i < n; i++ {
		p.kids = append(p.kids, buildRandomPos(rng, depth-1, maxKids))
	}
	return p
}

// negamaxRef is an independent exhaustive reference.
func negamaxRef(p *treePos, depth int) int32 {
	if depth == 0 || len(p.kids) == 0 {
		return p.val
	}
	best := int32(-1 << 30)
	for _, k := range p.kids {
		if v := -negamaxRef(k, depth-1); v > best {
			best = v
		}
	}
	return best
}

func TestSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		depth := 1 + rng.Intn(5)
		p := buildRandomPos(rng, depth, 4)
		want := negamaxRef(p, depth)
		got := Search(p, depth)
		if got.Value != want {
			t.Fatalf("trial %d: Search=%d ref=%d", trial, got.Value, want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		depth := 3 + rng.Intn(4)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)
		for _, workers := range []int{1, 2, 4, 8} {
			par, err := SearchParallel(context.Background(), p, depth, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Value != seq.Value {
				t.Fatalf("trial %d workers %d: parallel %d != sequential %d",
					trial, workers, par.Value, seq.Value)
			}
		}
	}
}

func TestBestMoveIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		depth := 3 + rng.Intn(3)
		p := buildRandomPos(rng, depth, 4)
		if len(p.kids) < 2 {
			continue
		}
		r, err := SearchParallel(context.Background(), p, depth, 4)
		if err != nil {
			t.Fatal(err)
		}
		if r.Best < 0 || r.Best >= len(p.kids) {
			t.Fatalf("trial %d: bad best index %d", trial, r.Best)
		}
		if got := -negamaxRef(p.kids[r.Best], depth-1); got != r.Value {
			t.Fatalf("trial %d: chosen move worth %d, root value %d", trial, got, r.Value)
		}
	}
}

func TestDepthZeroAndTerminal(t *testing.T) {
	leaf := &treePos{val: 7}
	if r := Search(leaf, 5); r.Value != 7 || r.Best != -1 {
		t.Errorf("terminal: %+v", r)
	}
	deep := buildRandomPos(rand.New(rand.NewSource(4)), 3, 3)
	if r := Search(deep, 0); r.Value != deep.val || r.Best != -1 {
		t.Errorf("depth 0: %+v", r)
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := buildRandomPos(rng, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SearchParallel(ctx, p, 10, 4); err != ErrCancelled {
		t.Errorf("want ErrCancelled, got %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	big := buildRandomPos(rand.New(rand.NewSource(6)), 14, 4)
	start := time.Now()
	_, err := SearchParallel(ctx2, big, 14, 4)
	if err != ErrCancelled && time.Since(start) > 5*time.Second {
		t.Errorf("cancellation did not stop the search (err=%v)", err)
	}
}

func TestPlay(t *testing.T) {
	p := &treePos{kids: []*treePos{{val: -5}, {val: -9}}}
	// Negamax: root value = max(-(-5), -(-9)) = 9 via child 1.
	idx, err := Play(context.Background(), p, 3, 2)
	if err != nil || idx != 1 {
		t.Errorf("Play = %d, %v; want 1", idx, err)
	}
	if _, err := Play(context.Background(), &treePos{}, 3, 2); err == nil {
		t.Error("Play on terminal position should fail")
	}
}

func TestNodeCounting(t *testing.T) {
	p := buildRandomPos(rand.New(rand.NewSource(7)), 4, 3)
	seq := Search(p, 4)
	if seq.Nodes <= 0 {
		t.Error("no nodes counted")
	}
	par, err := SearchParallel(context.Background(), p, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Nodes <= 0 {
		t.Error("no parallel nodes counted")
	}
}

func TestRootSplitMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		depth := 2 + rng.Intn(4)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)
		for _, workers := range []int{1, 2, 4} {
			rs, err := SearchRootSplit(context.Background(), p, depth, workers)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Value != seq.Value {
				t.Fatalf("trial %d workers %d: root-split %d != sequential %d",
					trial, workers, rs.Value, seq.Value)
			}
		}
	}
}

func TestRootSplitTerminalAndCancel(t *testing.T) {
	leaf := &treePos{val: 3}
	r, err := SearchRootSplit(context.Background(), leaf, 4, 2)
	if err != nil || r.Value != 3 || r.Best != -1 {
		t.Errorf("terminal: %+v %v", r, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	big := buildRandomPos(rand.New(rand.NewSource(9)), 10, 3)
	if _, err := SearchRootSplit(ctx, big, 10, 2); err != ErrCancelled {
		t.Errorf("want ErrCancelled, got %v", err)
	}
}

// Root splitting wastes work relative to the cascade: on positions where
// the first move is best (good ordering), the speculative siblings search
// with a stale alpha and visit more nodes in total.
func TestRootSplitVisitsMoreNodesThanSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var seqTotal, rsTotal int64
	for trial := 0; trial < 10; trial++ {
		p := buildRandomPos(rng, 5, 4)
		seqTotal += Search(p, 5).Nodes
		rs, err := SearchRootSplit(context.Background(), p, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		rsTotal += rs.Nodes
	}
	if rsTotal < seqTotal {
		t.Errorf("root split %d nodes < sequential %d — speculation should cost work", rsTotal, seqTotal)
	}
}
