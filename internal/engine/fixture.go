package engine

// Benchmark fixtures: synthetic trees with known search behaviour, shared
// by the in-package benchmarks and cmd/gtbench's BENCH_engine.json writer.
// They live in the package proper (not a _test.go file) so the bench
// command can build against them; they are tiny and have no dependencies.

// BenchTree is an explicit game tree used as a benchmark Position. Moves
// allocates a fresh slice on every call — the behaviour of a game that has
// not opted into MoveAppender.
type BenchTree struct {
	kids []*BenchTree
	val  int32
}

// Evaluate returns the node's static value.
func (p *BenchTree) Evaluate() int32 { return p.val }

// Moves returns the children, boxed into a freshly allocated slice.
func (p *BenchTree) Moves() []Position {
	out := make([]Position, len(p.kids))
	for i, k := range p.kids {
		out[i] = k
	}
	return out
}

// BenchTreeAppender is the same tree exposed through MoveAppender, so the
// engine's per-worker move buffers are exercised. Convert with
// (*BenchTreeAppender)(t).
type BenchTreeAppender BenchTree

// Evaluate returns the node's static value.
func (p *BenchTreeAppender) Evaluate() int32 { return p.val }

// Moves returns the children (via AppendMoves on a nil buffer).
func (p *BenchTreeAppender) Moves() []Position { return p.AppendMoves(nil) }

// AppendMoves implements MoveAppender.
func (p *BenchTreeAppender) AppendMoves(dst []Position) []Position {
	dst = dst[:0]
	for _, k := range p.kids {
		dst = append(dst, (*BenchTreeAppender)(k))
	}
	return dst
}

var (
	_ Position     = (*BenchTree)(nil)
	_ MoveAppender = (*BenchTreeAppender)(nil)
)

// NewPessimalTree builds a uniform tree whose move ordering is pessimal
// for alpha-beta: from every node's perspective its children's values
// strictly increase, so the running best improves on every child, cutoffs
// are rare, and nearly every interior node above the sequential horizon
// becomes a split point. That is the regime where per-split scheduling
// overhead dominates, which makes the tree the canonical workload for
// comparing execution substrates. The root's negamax value is `want`.
func NewPessimalTree(depth, branch int, want int32) *BenchTree {
	p := &BenchTree{val: want}
	if depth == 0 {
		return p
	}
	for i := 0; i < branch; i++ {
		p.kids = append(p.kids, NewPessimalTree(depth-1, branch, -want+int32(branch-1-i)))
	}
	return p
}
