package engine

import (
	"context"

	"gametree/internal/telemetry"
)

// SearchOptions configures the table-driven searches.
type SearchOptions struct {
	// Table, when non-nil, enables transposition-table probing and
	// storing. Positions must implement Hasher for it to take effect.
	Table *Table
	// Workers bounds the concurrency of SearchParallelTT; 0 means
	// GOMAXPROCS.
	Workers int
	// Telemetry, when non-nil, attaches the search to a telemetry
	// recorder: per-worker counters (tasks, steals, splits, aborts, TT
	// traffic, deque depth) and — if the recorder has tracing enabled —
	// split-point lifetime spans. Nil keeps the hot path uninstrumented
	// (one nil-check branch per event).
	Telemetry *telemetry.Recorder
	// SplitHorizon is the remaining depth at or below which the pooled
	// searches evaluate a subtree sequentially in place instead of
	// splitting it into stealable tasks. 0 means the default (2 ply);
	// raising it coarsens task granularity.
	SplitHorizon int
	// SpineOnly restores the pre-YBWC splitting discipline: stolen tasks
	// run the plain sequential negamax and never open split points of
	// their own, so splits exist only on the leftmost spine. The default
	// (false) is recursive YBWC — speculative subtrees re-enter the
	// splittable searcher and may split again, with per-node windows
	// narrowed by the freshest shared bound.
	SpineOnly bool
	// Watermark raises the demand-driven split gate: a worker opens a
	// split point while its own deque holds at most this many queued
	// tasks. The default 0 splits only once the queue has drained
	// (thieves are provably hungry); 1 or 2 keep that many tasks queued
	// ahead of demand so a thief arriving between splits never stalls.
	Watermark int
}

// poolConfig maps the option set's split-shaping knobs onto the pool's
// internal config.
func (opt SearchOptions) poolConfig() poolConfig {
	return poolConfig{horizon: opt.SplitHorizon, spineOnly: opt.SpineOnly, watermark: opt.Watermark}
}

// SearchTT is Search with a transposition table: results of previous
// (possibly shallower) searches seed move ordering and produce immediate
// cutoffs at sufficient depth. The search polls ctx every checkMask nodes
// and returns ErrCancelled once it is done; the partial Result is
// discarded (zero value), matching SearchPVS and the pooled searches.
func SearchTT(ctx context.Context, pos Position, depth int, opt SearchOptions) (Result, error) {
	opt.Table.Advance()
	e := &searcher{ctx: ctx, table: opt.Table, tm: opt.Telemetry.Shard(0)}
	v, best := e.negamax(pos, depth, -scoreInf, scoreInf, true)
	if e.tm != nil {
		e.tm.Nodes.Add(e.nodes)
	}
	if ctx.Err() != nil {
		return Result{}, ErrCancelled
	}
	return Result{Value: int32(v), Best: best, Nodes: e.nodes}, nil
}

// SearchIterative performs iterative deepening to maxDepth with a
// transposition table, returning the final-depth result plus the
// principal variation (the sequence of best-move indices from the root).
// The table accelerates each deeper iteration via move ordering; the
// returned value equals a direct Search to maxDepth.
func SearchIterative(ctx context.Context, pos Position, maxDepth int, opt SearchOptions) (Result, []int, error) {
	if opt.Table == nil {
		opt.Table = NewTable(1 << 16)
	}
	var last Result
	for d := 1; d <= maxDepth; d++ {
		select {
		case <-ctx.Done():
			return last, nil, ErrCancelled
		default:
		}
		opt.Table.Advance()
		e := &searcher{ctx: ctx, table: opt.Table}
		v, best := e.negamax(pos, d, -scoreInf, scoreInf, true)
		if ctx.Err() != nil {
			return last, nil, ErrCancelled
		}
		last = Result{Value: int32(v), Best: best, Nodes: last.Nodes + e.nodes}
	}
	return last, extractPV(pos, maxDepth, opt.Table, last.Best), nil
}

// SearchParallelTT combines the parallel cascade with a shared lock-free
// transposition table, on the same pooled substrate as SearchParallel.
func SearchParallelTT(ctx context.Context, pos Position, depth int, opt SearchOptions) (Result, error) {
	opt.Table.Advance()
	return searchPooled(ctx, pos, depth, opt.Workers, opt.Table, opt.Telemetry, opt.poolConfig())
}

// SearchParallelOpt is SearchParallel with the full option set: an
// optional transposition table and an optional telemetry recorder. It is
// the instrumented entry point used by gtbench and gtplay.
//
// Deadline contract: a search cut short by ctx never returns a partial
// Result as if complete — the Result is the zero value and the error is
// ErrCancelled, wrapping context.DeadlineExceeded when the ctx deadline
// (rather than an explicit cancel) ended the search, so
// errors.Is(err, context.DeadlineExceeded) distinguishes timeouts.
func SearchParallelOpt(ctx context.Context, pos Position, depth int, opt SearchOptions) (Result, error) {
	opt.Table.Advance() // nil-safe
	return searchPooled(ctx, pos, depth, opt.Workers, opt.Table, opt.Telemetry, opt.poolConfig())
}

// extractPV walks the transposition table from the root, following stored
// best moves, to reconstruct the principal variation. The walk stops at
// the depth horizon, at terminal positions, or at a table miss.
func extractPV(pos Position, depth int, table *Table, rootBest int) []int {
	var pv []int
	cur := pos
	for d := 0; d < depth; d++ {
		moves := cur.Moves()
		if len(moves) == 0 {
			break
		}
		best := -1
		if d == 0 {
			best = rootBest
		} else if h, ok := cur.(Hasher); ok {
			if _, _, _, b, hit := table.Probe(h.Hash()); hit {
				best = b
			}
		}
		if best < 0 || best >= len(moves) {
			break
		}
		pv = append(pv, best)
		cur = moves[best]
	}
	return pv
}
