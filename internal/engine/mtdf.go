package engine

import "context"

// MTDF implements Plaat's MTD(f): a sequence of zero-window alpha-beta
// calls that binary-searches the minimax value, each call re-using the
// shared transposition table. MTD(f) is the memory-enhanced reformulation
// of Stockman's SSS* (Plaat et al. 1996), so together with
// alphabeta.SSS the repository has both faces of the best-first/
// depth-first equivalence. first is the initial guess (0 is fine; a
// previous iteration's value converges faster).
func MTDF(pos Position, depth int, first int32, opt SearchOptions) Result {
	table := opt.Table
	if table == nil {
		table = NewTable(1 << 16)
	}
	table.Advance()
	g := int64(first)
	lower, upper := -scoreInf, scoreInf
	var total int64
	best := -1
	for lower < upper {
		beta := g
		if g == lower {
			beta = g + 1
		}
		e := &searcher{ctx: context.Background(), table: table}
		v, b := e.negamax(pos, depth, beta-1, beta, true)
		total += e.nodes
		g = v
		if b >= 0 {
			best = b
		}
		if g < beta {
			upper = g
		} else {
			lower = g
		}
	}
	return Result{Value: int32(g), Best: best, Nodes: total}
}
