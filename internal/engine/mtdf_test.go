package engine

import (
	"math/rand"
	"testing"
)

func TestMTDFMatchesSearchOnHashedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		var next uint64
		depth := 2 + rng.Intn(4)
		pos := buildHashed(rng, depth, 3, &next)
		plain := Search(pos, depth)
		for _, guess := range []int32{0, plain.Value, plain.Value + 50, plain.Value - 50} {
			r := MTDF(pos, depth, guess, SearchOptions{Table: NewTable(1 << 12)})
			if r.Value != plain.Value {
				t.Fatalf("trial %d guess %d: MTDF %d != search %d", trial, guess, r.Value, plain.Value)
			}
		}
	}
}

func TestMTDFGoodGuessIsCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var next uint64
	depth := 6
	pos := buildHashed(rng, depth, 3, &next)
	plain := Search(pos, depth)
	exact := MTDF(pos, depth, plain.Value, SearchOptions{Table: NewTable(1 << 14)})
	far := MTDF(pos, depth, plain.Value+1000, SearchOptions{Table: NewTable(1 << 14)})
	if exact.Value != plain.Value || far.Value != plain.Value {
		t.Fatal("wrong values")
	}
	if exact.Nodes > far.Nodes {
		t.Errorf("exact guess used %d nodes, far guess %d — guess quality should pay",
			exact.Nodes, far.Nodes)
	}
}

func TestMTDFWithoutTable(t *testing.T) {
	// A nil table allocates an internal one; correctness unaffected.
	rng := rand.New(rand.NewSource(3))
	var next uint64
	pos := buildHashed(rng, 4, 3, &next)
	plain := Search(pos, 4)
	if r := MTDF(pos, 4, 0, SearchOptions{}); r.Value != plain.Value {
		t.Errorf("MTDF %d != %d", r.Value, plain.Value)
	}
}

func TestMTDFTerminal(t *testing.T) {
	leaf := &treePos{val: 5}
	if r := MTDF(leaf, 4, 0, SearchOptions{}); r.Value != 5 {
		t.Errorf("terminal: %+v", r)
	}
}
