package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// trapPos is a uniform tree whose Position methods panic at one chosen
// node. The trap coordinates (depth-from-root, child index at that depth)
// let tests plant the bomb on the phase-1 spine (index 0, hit by the
// joining owner) or on a speculative sibling (index > 0, often hit by a
// helper worker — the case that would crash the process without recover).
type trapPos struct {
	trap     *trapSpec
	depth    int // distance from the root
	index    int // child index within the parent
	maxDepth int
	fanout   int
}

type trapSpec struct {
	depth   int // node depth at which to detonate
	index   int // child index at that depth
	inEval  bool
	tripped atomic.Bool
}

func (p *trapPos) armed() bool {
	return p.depth == p.trap.depth && p.index == p.trap.index
}

func (p *trapPos) Moves() []Position {
	if p.armed() && !p.trap.inEval {
		p.trap.tripped.Store(true)
		panic(fmt.Sprintf("trap: Moves at depth %d index %d", p.depth, p.index))
	}
	if p.depth == p.maxDepth {
		return nil
	}
	out := make([]Position, p.fanout)
	for i := range out {
		out[i] = &trapPos{
			trap: p.trap, depth: p.depth + 1, index: i,
			maxDepth: p.maxDepth, fanout: p.fanout,
		}
	}
	return out
}

func (p *trapPos) Evaluate() int32 {
	if p.armed() && p.trap.inEval {
		p.trap.tripped.Store(true)
		panic(fmt.Sprintf("trap: Evaluate at depth %d index %d", p.depth, p.index))
	}
	return int32(p.depth - p.index)
}

// runTrapped runs one pooled search over a booby-trapped tree under a
// watchdog: a panic that escapes a worker goroutine would abort the whole
// test process, and a protocol bug that loses a join shows up as a hang.
func runTrapped(t *testing.T, spec *trapSpec, depth, workers int) error {
	t.Helper()
	root := &trapPos{trap: spec, depth: 0, index: 0, maxDepth: depth, fanout: 4}
	done := make(chan error, 1)
	go func() {
		_, err := SearchParallel(context.Background(), root, depth, workers)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("watchdog: trapped search (depth %d, workers %d) did not return", depth, workers)
		return nil
	}
}

// TestSearchPanicIsolated plants a panic at every depth of the tree, on
// both the spine (index 0) and a speculative sibling (index 2), in both
// Moves and Evaluate, across worker counts. Every case must return
// ErrSearchPanic — not crash, not hang, not silently succeed.
func TestSearchPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for depth := 3; depth <= 7; depth++ {
			for _, trapDepth := range []int{1, depth - 1, depth} {
				for _, trapIdx := range []int{0, 2} {
					for _, inEval := range []bool{false, true} {
						if inEval && trapDepth != depth {
							continue // Evaluate only runs at the horizon
						}
						name := fmt.Sprintf("w%d/d%d/trap%d.%d/eval=%v",
							workers, depth, trapDepth, trapIdx, inEval)
						t.Run(name, func(t *testing.T) {
							spec := &trapSpec{depth: trapDepth, index: trapIdx, inEval: inEval}
							err := runTrapped(t, spec, depth, workers)
							if !spec.tripped.Load() {
								t.Skip("trap not reached (pruned subtree)")
							}
							if !errors.Is(err, ErrSearchPanic) {
								t.Fatalf("want ErrSearchPanic, got %v", err)
							}
						})
					}
				}
			}
		}
	}
}

// TestSearchPanicMessage pins that the recovered value survives into the
// returned error, so a user debugging their Position sees the panic text.
func TestSearchPanicMessage(t *testing.T) {
	spec := &trapSpec{depth: 2, index: 0}
	err := runTrapped(t, spec, 4, 2)
	if err == nil || !errors.Is(err, ErrSearchPanic) {
		t.Fatalf("want wrapped ErrSearchPanic, got %v", err)
	}
	want := "trap: Moves at depth 2 index 0"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("error %q does not carry the panic value %q", got, want)
	}
}

// TestSearchPanicRootSplit covers the root-splitting baseline, whose
// tasks all run under helper joins.
func TestSearchPanicRootSplit(t *testing.T) {
	spec := &trapSpec{depth: 3, index: 1}
	root := &trapPos{trap: spec, depth: 0, index: 0, maxDepth: 5, fanout: 4}
	done := make(chan error, 1)
	go func() {
		_, err := SearchRootSplit(context.Background(), root, 5, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrSearchPanic) {
			t.Fatalf("want ErrSearchPanic, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog: root-split trapped search did not return")
	}
}

// TestNoPanicNoError is the control: the same tree with the trap placed
// outside the reachable coordinate space searches cleanly.
func TestNoPanicNoError(t *testing.T) {
	spec := &trapSpec{depth: -1, index: -1}
	root := &trapPos{trap: spec, depth: 0, index: 0, maxDepth: 6, fanout: 4}
	r, err := SearchParallel(context.Background(), root, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := Search(root, 6)
	if r.Value != seq.Value {
		t.Fatalf("parallel %d != sequential %d", r.Value, seq.Value)
	}
}
