package engine

// This file is the pooled work-stealing execution substrate of the parallel
// cascade. The original engine paid a scheduler tax the paper never
// modeled: a fresh goroutine, channel and searcher struct per speculative
// sibling at every interior node, plus one contended atomic node counter
// bumped on every visit. Here a fixed set of worker goroutines is created
// once per pool — resident across searches for long-lived owners (the
// exported Pool, held by the gtserve service), once per call for the
// one-shot entry points; speculative siblings become tasks pushed onto the
// owning worker's lock-free Chase-Lev deque, idle workers steal from the
// top, and the splitting worker joins by helping (popping its own deque,
// then stealing) until a per-split join counter drains. Beta-cutoff
// cancellation propagates through a per-split abort flag checked at task
// dequeue and every checkMask nodes inside the sequential sub-searches;
// node counts live in per-worker plain counters summed once at the end.
//
// The cascade semantics are unchanged: at every spine node the leftmost
// child is searched first with the full window ("young brothers wait"),
// the remaining siblings run speculatively with the window sharpened by
// completed siblings, and sibling results are merged in completion order
// until a cutoff — exactly the discipline of the goroutine-per-sibling
// implementation this replaces (kept as parallelSpawn for comparison).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/telemetry"
)

// seqSplitDepth is the default horizon below which subtrees are searched in
// place: scheduling a task costs more than searching a 2-ply subtree.
const seqSplitDepth = 2

// poolConfig shapes how a pool splits work. The zero value is not used
// directly — constructors pass it through normalize, which applies the
// default horizon — so a zero SplitHorizon always means seqSplitDepth.
type poolConfig struct {
	// horizon is the remaining depth at or below which a subtree is
	// searched sequentially in place rather than split into tasks.
	horizon int
	// spineOnly restores the pre-YBWC behaviour: stolen tasks run plain
	// negamax and never open split points of their own, so splits exist
	// only on the leftmost spine walked by worker 0.
	spineOnly bool
	// noYBW is the root-split baseline: every root move becomes a task
	// with the full window and there is no young-brothers phase 1. Only
	// meaningful together with a depth-1 horizon and spineOnly.
	noYBW bool
	// watermark is the demand-driven split gate: a worker opens a split
	// point only while its own deque holds at most this many queued
	// tasks (default 0 — split only when the queue has drained, i.e.
	// thieves are actually hungry). Tests raise it to force eager
	// splitting; production code leaves it at zero.
	watermark int
}

// normalize applies the default horizon.
func (c poolConfig) normalize() poolConfig {
	if c.horizon <= 0 {
		c.horizon = seqSplitDepth
	}
	return c
}

// task is one speculative sibling search, embedded in its split point's
// task slab so a split costs O(1) allocations, not O(branching).
// fn-tasks are the second task kind (fanout): instead of a sibling
// position they carry a function run with the executing worker — the hook
// other engines (the proof-number solver) use to borrow the resident
// worker set without duplicating the park/steal machinery.
type task struct {
	sp    *splitPoint
	pos   Position
	idx   int // move index at the split node
	depth int // remaining depth for the child search
	fn    func(w *worker)
}

// splitPoint coordinates the speculative siblings of one spine node: the
// join counter the parent blocks on, the shared (monotonically raised)
// alpha that sharpens later siblings' windows, and the abort flag that
// propagates a beta cutoff to tasks still queued or running.
type splitPoint struct {
	up      *splitPoint  // enclosing split, for chained abort checks
	shared  atomic.Int64 // freshest alpha, read once at task start
	pending atomic.Int32 // tasks not yet finished or skipped
	abort   atomic.Bool  // set on beta cutoff; never cleared while live

	mu      sync.Mutex
	beta    int64
	alpha   int64 // current sharpened alpha (mirrors the sequential loop)
	best    int64
	bestIdx int

	// Telemetry (nil/zero when the search is uninstrumented): the pool's
	// recorder, the span-open timestamp, and the moment the beta cutoff
	// was raised (read by the joining owner after pending drains — the
	// seq-cst pending counter orders that read after the write).
	rec    *telemetry.Recorder
	openNs int64
	cutNs  int64

	tasks []task
}

// aborted reports whether this split or any enclosing one has been cut.
func (sp *splitPoint) aborted() bool {
	for s := sp; s != nil; s = s.up {
		if s.abort.Load() {
			return true
		}
	}
	return false
}

// complete merges one finished sibling. Results are merged in completion
// order and ignored once a cutoff has been found — the same discipline as
// the channel-draining loop of the spawn-based implementation, so the
// returned values are identical. ok is false for siblings that were
// skipped or interrupted; their (partial) values must not be merged.
func (sp *splitPoint) complete(idx int, v int64, ok bool) {
	if ok {
		sp.mu.Lock()
		if !sp.abort.Load() {
			if v > sp.best {
				sp.best = v
				sp.bestIdx = idx
			}
			if sp.best > sp.alpha {
				sp.alpha = sp.best
				sp.shared.Store(sp.alpha)
			}
			if sp.alpha >= sp.beta {
				sp.abort.Store(true) // pre-empt the remaining siblings
				if sp.rec != nil {
					sp.cutNs = sp.rec.Now() // abort-to-drain latency start
				}
			}
		}
		sp.mu.Unlock()
	}
	sp.pending.Add(-1)
}

// ---------------------------------------------------------------------------
// Chase-Lev work-stealing deque

// taskRing is the growable circular buffer behind a deque. Stale rings stay
// reachable by in-flight steals; the GC reclaims them.
type taskRing struct {
	mask int64
	slot []atomic.Pointer[task]
}

func newTaskRing(capacity int64) *taskRing {
	return &taskRing{mask: capacity - 1, slot: make([]atomic.Pointer[task], capacity)}
}

func (r *taskRing) get(i int64) *task    { return r.slot[i&r.mask].Load() }
func (r *taskRing) put(i int64, t *task) { r.slot[i&r.mask].Store(t) }

// deque is a lock-free work-stealing deque (Chase & Lev 2005): the owner
// pushes and pops at the bottom (LIFO, preserving the sequential move
// order), thieves steal from the top (FIFO, taking the most speculative
// siblings first). Go's sync/atomic operations are sequentially
// consistent, which the bottom/top handshake in pop relies on.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[taskRing]
}

func (d *deque) init() { d.buf.Store(newTaskRing(64)) }

// push appends a task at the bottom. Owner-only.
func (d *deque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.buf.Load()
	if b-tp > r.mask {
		grown := newTaskRing(2 * (r.mask + 1))
		for i := tp; i < b; i++ {
			grown.put(i, r.get(i))
		}
		d.buf.Store(grown)
		r = grown
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner-only.
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore the canonical state.
		d.bottom.Store(tp)
		return nil
	}
	t := d.buf.Load().get(b)
	if tp == b {
		// Last element: race against a thief for it.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil
		}
		d.bottom.Store(tp + 1)
	}
	return t
}

// steal removes the oldest task. Safe from any goroutine. sawWork
// reports whether the deque was ever observed non-empty — it separates
// "victim had nothing" from a real steal attempt, so the telemetry's
// steal-efficiency ratio measures contention, not idle spinning. retries
// counts the CAS rounds lost to other thieves (or the owner's pop) before
// this attempt resolved; its distribution is the HistStealRetries family.
func (d *deque) steal() (t *task, sawWork bool, retries int64) {
	for {
		tp := d.top.Load()
		b := d.bottom.Load()
		if tp >= b {
			return nil, sawWork, retries
		}
		sawWork = true
		t = d.buf.Load().get(tp)
		if d.top.CompareAndSwap(tp, tp+1) {
			return t, true, retries
		}
		// Lost the race; re-read indices and try again.
		retries++
	}
}

// ---------------------------------------------------------------------------
// Worker pool

// worker is one pool member. It embeds a searcher, so the sequential
// negamax (with its transposition table, scratch move buffers and plain
// node counter) runs unchanged on pool workers; the pad keeps the thief-
// contended deque words off the cache line of the owner-hot counter.
type worker struct {
	searcher
	pool   *pool
	id     int
	spFree []*splitPoint
	_      [64]byte // separate owner-hot fields from the stolen-from deque
	dq     deque
	rng    uint64
}

// pool is a resident worker set. The goroutine calling runSearch becomes
// worker 0 for that search; workers 1..n-1 run idleLoop for the pool's
// whole lifetime, parking on a condition variable between searches so an
// idle resident pool costs nothing. One-shot callers (searchPooled) build
// a pool, run one search and close it — the construction cost they pay is
// exactly what the exported Pool amortizes across requests.
type pool struct {
	workers []*worker
	cfg     poolConfig          // split-shaping knobs, fixed at construction
	rec     *telemetry.Recorder // nil when the search is uninstrumented
	stop    atomic.Bool         // current search cancelled or a worker panicked
	active  atomic.Bool         // a search is in flight; helpers spin, not park
	closed  atomic.Bool         // pool shut down; helpers exit

	parkMu   sync.Mutex // guards the active/closed transitions helpers wait on
	parkCond *sync.Cond
	wg       sync.WaitGroup // helper goroutines

	failMu  sync.Mutex
	failure error // first recovered panic, wrapped in ErrSearchPanic
}

// fail records the first worker panic and aborts the search. Setting the
// stop flag pre-empts every queued task (runTask's skip path completes
// them with ok=false), so open joins drain and finish returns normally;
// the panic surfaces as an error from the search entry point instead of
// killing the worker goroutine — and with it the process.
func (p *pool) fail(v any) {
	p.failMu.Lock()
	if p.failure == nil {
		p.failure = fmt.Errorf("%w: %v", ErrSearchPanic, v)
	}
	p.failMu.Unlock()
	p.stop.Store(true)
}

// err returns the first recorded worker panic, if any. Call after finish:
// the pool has quiesced, so no later fail can race the read.
func (p *pool) err() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failure
}

// newPool builds a resident pool with the caller of runSearch as worker 0
// and launches the helper goroutines, which immediately park. shardBase
// offsets the telemetry shard indices so several pools can share one
// recorder without overlapping single-writer shards (the serve layer runs
// pool k on shards [k*workers, (k+1)*workers)).
func newPool(workers int, table *Table, rec *telemetry.Recorder, shardBase int, cfg poolConfig) *pool {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	p := &pool{workers: make([]*worker, workers), cfg: cfg.normalize(), rec: rec}
	p.parkCond = sync.NewCond(&p.parkMu)
	for i := range p.workers {
		w := &worker{pool: p, id: i, rng: uint64(shardBase+i)*0x9e3779b97f4a7c15 + 1}
		w.table = table
		w.stop = &p.stop
		w.tm = rec.Shard(shardBase + i) // nil when rec is nil
		w.dq.init()
		p.workers[i] = w
	}
	for _, w := range p.workers[1:] {
		p.wg.Add(1)
		go func(w *worker) {
			defer p.wg.Done()
			p.idleLoop(w)
		}(w)
	}
	return p
}

// runSearch executes one search on the resident pool, with the calling
// goroutine as worker 0 driving body (the phase-1 spine, or the root
// split of the tree-splitting baseline). Calls must be serialized by the
// owner — the exported Pool holds a mutex across it; the one-shot entry
// points call it exactly once.
//
// Reading the per-worker node counters here without waiting for the
// helpers is safe: body returns only after every split point it opened
// has joined, so each helper's last counter write happens-before the
// owner's pending.Load()==0 (both sequentially consistent atomics) and
// the helpers are back to empty-handed spinning or parking.
func (p *pool) runSearch(ctx context.Context, body func(w0 *worker) (int64, int)) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, cancelErr(err)
	}
	p.stop.Store(false)
	p.failMu.Lock()
	p.failure = nil
	p.failMu.Unlock()

	var watchWG sync.WaitGroup
	watch := make(chan struct{})
	if done := ctx.Done(); done != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-done:
				p.stop.Store(true)
			case <-watch:
			}
		}()
	}
	if len(p.workers) > 1 {
		p.parkMu.Lock()
		p.active.Store(true)
		p.parkMu.Unlock()
		p.parkCond.Broadcast()
	}

	var v int64
	var best int
	// Worker 0's spine runs on the caller's stack, outside runTask's
	// recover, so a phase-1 panic unwinds to here. Splits are opened and
	// joined within a single search frame, so at any point of the phase-1
	// descent no ancestor frame holds an undrained split — failing the
	// pool and returning is a clean teardown.
	func() {
		defer func() {
			if r := recover(); r != nil {
				p.fail(r)
			}
		}()
		v, best = body(p.workers[0])
	}()

	close(watch)
	watchWG.Wait()
	p.active.Store(false)
	var nodes int64
	for _, w := range p.workers {
		nodes += w.nodes
		if w.tm != nil {
			w.tm.Nodes.Add(w.nodes) // fold in at the quiesce point
		}
		w.nodes = 0    // the pool outlives the search; counters are per search
		w.halt = false // likewise the cancellation latch
	}
	if err := p.err(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, cancelErr(err)
	}
	return Result{Value: int32(v), Best: best, Nodes: nodes}, nil
}

// cancelErr maps a non-nil ctx.Err() to the search error contract: plain
// cancellation keeps the bare ErrCancelled sentinel (existing callers
// compare with ==), while a deadline expiry additionally carries
// context.DeadlineExceeded in the wrap chain so callers can tell a
// timed-out search — whose partial Result must not be trusted — from an
// explicit cancel. errors.Is(err, ErrCancelled) matches both.
func cancelErr(ctxErr error) error {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCancelled, context.DeadlineExceeded)
	}
	return ErrCancelled
}

// close shuts the resident pool down: helpers are woken if parked and
// exit their loops. Must not be called concurrently with runSearch.
func (p *pool) close() {
	p.parkMu.Lock()
	p.closed.Store(true)
	p.parkMu.Unlock()
	p.parkCond.Broadcast()
	p.wg.Wait()
}

// idleLoop is the life of workers 1..n-1: while a search is active, steal,
// run, back off (capped at a 1ms sleep, so task discovery latency stays
// bounded); between searches, park on the condition variable so a
// resident pool costs nothing while idle. The active flag is re-checked
// under parkMu, and runSearch raises it under the same lock before
// broadcasting, so a wakeup cannot be lost.
func (p *pool) idleLoop(w *worker) {
	backoff := 0
	for {
		if p.closed.Load() {
			return
		}
		if !p.active.Load() {
			p.parkMu.Lock()
			for !p.active.Load() && !p.closed.Load() {
				p.parkCond.Wait()
			}
			p.parkMu.Unlock()
			backoff = 0
			continue
		}
		t := w.dq.pop()
		if t == nil {
			t = p.trySteal(w)
		}
		if t != nil {
			w.runTask(t)
			backoff = 0
			continue
		}
		backoff++
		switch {
		case backoff < 32:
			runtime.Gosched()
		case backoff < 64:
			time.Sleep(20 * time.Microsecond)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// trySteal scans the other workers' deques once, starting at a random
// victim so thieves do not convoy on worker 0.
func (p *pool) trySteal(w *worker) *task {
	n := len(p.workers)
	if n == 1 {
		return nil
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(off+i)%n]
		if v == w {
			continue
		}
		t, sawWork, retries := v.dq.steal()
		if w.tm != nil && sawWork {
			w.tm.StealAttempts.Add(1)
			w.tm.Hist[telemetry.HistStealRetries].Observe(retries)
		}
		if t != nil {
			if w.tm != nil {
				w.tm.Steals.Add(1)
				if rec := p.rec; rec.EventsEnabled() {
					rec.RecordEvent(telemetry.Event{
						Ns: rec.Now(), Kind: telemetry.EventSteal,
						Worker: w.id, Depth: t.depth,
					})
				}
			}
			return t
		}
	}
	return nil
}

// nextRand is a xorshift64 step for steal-victim randomization.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// runTask executes one speculative sibling, reading the freshest shared
// alpha at start (a stale, wider window only loses sharpness, never
// correctness). Above the sequential horizon the sibling re-enters the
// splittable searcher with the split as its enclosing abort scope, so
// helpers working a stolen subtree open split points of their own
// (recursive YBWC); at or below the horizon — or in spine-only mode — it
// runs the plain sequential negamax. Siblings cut or interrupted on the
// way report ok=false so their partial values are never merged.
func (w *worker) runTask(t *task) {
	if t.fn != nil {
		w.runFn(t)
		return
	}
	sp := t.sp
	if w.pool.stop.Load() || sp.aborted() {
		if w.tm != nil {
			w.noteAbort(t) // skipped before running
		}
		sp.complete(t.idx, 0, false)
		return
	}
	var startNs int64
	if w.tm != nil {
		w.tm.Tasks.Add(1)
		startNs = w.pool.rec.Now()
	}
	prev := w.sp
	w.sp = sp
	// Position implementations are user code and may panic mid-search.
	// Confine the blast radius to this task: record the panic on the pool
	// (aborting the search) and complete the sibling with ok=false so the
	// owner's join still drains. Without this a panic on a helper worker
	// would crash the whole process.
	defer func() {
		w.sp = prev
		if r := recover(); r != nil {
			w.pool.fail(r)
			if w.tm != nil {
				w.noteAbort(t)
			}
			sp.complete(t.idx, 0, false)
		}
	}()
	var v int64
	if !w.pool.cfg.spineOnly && t.depth > w.pool.cfg.horizon {
		// Recursive YBWC: the stolen subtree runs the full cascade and may
		// split again. The enclosing split chains the abort scopes, so a
		// beta cutoff anywhere above pre-empts every nested split here.
		v, _ = w.search(t.pos, t.depth, -sp.beta, -sp.shared.Load(), sp, false)
	} else {
		v, _ = w.negamax(t.pos, t.depth, -sp.beta, -sp.shared.Load(), false)
	}
	ok := !w.pool.stop.Load() && !sp.aborted()
	if w.tm != nil {
		w.tm.Hist[telemetry.HistTaskRunNs].Observe(w.pool.rec.Now() - startNs)
		if !ok {
			w.noteAbort(t) // pre-empted mid-search
		}
	}
	sp.complete(t.idx, -v, ok)
}

// runFn executes one fanout task with the same panic isolation as the
// speculative siblings: a panic fails the pool (aborting every sibling
// invocation through the stop flag) instead of killing the process, and
// the pending decrement runs regardless so the owner's join drains.
func (w *worker) runFn(t *task) {
	sp := t.sp
	defer func() {
		if r := recover(); r != nil {
			w.pool.fail(r)
		}
		sp.pending.Add(-1)
	}()
	if !w.pool.stop.Load() {
		t.fn(w)
	}
}

// fanout runs fn once per pool worker: worker 0 pushes one fn-task per
// helper onto its deque (the parked helpers wake and steal them the
// moment runSearch raises active) and runs its own invocation in place,
// then helps until the join drains. fn must poll p.stop (via the caller's
// stop predicate) and return promptly on cancellation; runSearch maps a
// cancelled ctx onto the usual ErrCancelled contract.
func (p *pool) fanout(ctx context.Context, fn func(w *worker)) error {
	_, err := p.runSearch(ctx, func(w0 *worker) (int64, int) {
		if n := len(p.workers); n > 1 {
			sp := &splitPoint{}
			sp.pending.Store(int32(n - 1))
			sp.tasks = make([]task, n-1)
			for i := n - 2; i >= 0; i-- {
				sp.tasks[i] = task{sp: sp, fn: fn}
				w0.dq.push(&sp.tasks[i])
			}
			fn(w0)
			w0.join(sp)
		} else {
			fn(w0)
		}
		return 0, -1
	})
	return err
}

// noteAbort accounts one aborted task: the plain counter, the nested-abort
// counter when the cutoff came from an *ancestor* split (the chained abort
// rule pre-empting a whole speculative subtree rather than a local
// cutoff), and the structured event log. Only called when w.tm != nil.
func (w *worker) noteAbort(t *task) {
	w.tm.Aborts.Add(1)
	if sp := t.sp; !sp.abort.Load() && sp.aborted() {
		w.tm.NestedAborts.Add(1)
	}
	if rec := w.pool.rec; rec.EventsEnabled() {
		rec.RecordEvent(telemetry.Event{
			Ns: rec.Now(), Kind: telemetry.EventAbort,
			Worker: w.id, Depth: t.depth,
		})
	}
}

// join blocks the splitting worker on the split's counter by helping: pop
// the own deque (the split's own siblings, in move order), then steal, and
// only then yield. Every pending task is either in a deque (some worker
// will run it) or already running, so the loop terminates.
func (w *worker) join(sp *splitPoint) {
	var joinNs int64
	if sp.rec.TraceEnabled() {
		joinNs = sp.rec.Now()
	}
	for sp.pending.Load() > 0 {
		if t := w.dq.pop(); t != nil {
			w.runTask(t)
			continue
		}
		if t := w.pool.trySteal(w); t != nil {
			w.runTask(t)
			continue
		}
		runtime.Gosched()
	}
	if sp.rec == nil {
		return
	}
	// Drained. Record the cutoff-to-drain latency (if a beta cutoff was
	// raised here) and the split's lifetime span.
	if w.tm != nil && sp.cutNs != 0 {
		drainNs := sp.rec.Now() - sp.cutNs
		w.tm.AbortDrains.Add(1)
		w.tm.AbortDrainNs.Add(drainNs)
		w.tm.Hist[telemetry.HistAbortDrainNs].Observe(drainNs)
	}
	if sp.rec.EventsEnabled() && len(sp.tasks) > 0 {
		sp.rec.RecordEvent(telemetry.Event{
			Ns: sp.rec.Now(), Kind: telemetry.EventJoin,
			Worker: w.id, Depth: sp.tasks[0].depth, Tasks: len(sp.tasks),
		})
	}
	if joinNs != 0 {
		sp.rec.RecordSpan(telemetry.Span{
			Worker: w.id, Name: "split",
			Start: sp.openNs, Join: joinNs, End: sp.rec.Now(),
			Tasks: len(sp.tasks), Aborted: sp.abort.Load(),
		})
	}
}

// newSplit readies a split point over moves[1:] (or all moves when
// firstIncluded) and pushes the sibling tasks in reverse, so the owner's
// LIFO pops visit them in the sequential move order while thieves take the
// most speculative ones from the far end.
func (w *worker) newSplit(up *splitPoint, alpha, beta, best int64, bestIdx int, moves []Position, depth, from int) *splitPoint {
	var sp *splitPoint
	if n := len(w.spFree); n > 0 {
		sp = w.spFree[n-1]
		w.spFree = w.spFree[:n-1]
	} else {
		sp = new(splitPoint)
	}
	sp.up = up
	sp.beta = beta
	sp.alpha = alpha
	sp.best = best
	sp.bestIdx = bestIdx
	sp.abort.Store(false)
	sp.shared.Store(alpha)
	sp.rec = w.pool.rec
	sp.cutNs = 0
	if sp.rec.TraceEnabled() {
		sp.openNs = sp.rec.Now()
	}
	n := len(moves) - from
	if cap(sp.tasks) < n {
		sp.tasks = make([]task, n)
	} else {
		sp.tasks = sp.tasks[:n]
	}
	sp.pending.Store(int32(n))
	for i := len(moves) - 1; i >= from; i-- {
		sp.tasks[i-from] = task{sp: sp, pos: moves[i], idx: i, depth: depth}
		w.dq.push(&sp.tasks[i-from])
	}
	if w.tm != nil {
		w.tm.Splits.Add(1)
		if up != nil {
			w.tm.NestedSplits.Add(1)
		}
		// depth is the remaining depth of the sibling subtrees; the split
		// node itself sits one ply above.
		w.tm.Hist[telemetry.HistSplitDepth].Observe(int64(depth) + 1)
		w.tm.ObserveDeque(w.dq.bottom.Load() - w.dq.top.Load())
		if sp.rec.EventsEnabled() {
			sp.rec.RecordEvent(telemetry.Event{
				Ns: sp.rec.Now(), Kind: telemetry.EventSplitOpen,
				Worker: w.id, Depth: depth, Tasks: n,
			})
		}
	}
	return sp
}

// releaseSplit recycles a joined split point. Safe: pending has hit zero,
// so no other worker holds a reference (complete's counter decrement is
// each sibling's final access).
func (w *worker) releaseSplit(sp *splitPoint) {
	clear(sp.tasks) // drop Position references for the GC
	sp.tasks = sp.tasks[:0]
	sp.up = nil
	sp.rec = nil
	sp.openNs, sp.cutNs = 0, 0
	// Recursive YBWC nests splits (one live per frame of the cascade plus
	// the recycled ones), so the free list is sized for deep nesting, not
	// just the spine's churn.
	if len(w.spFree) < 32 {
		w.spFree = append(w.spFree, sp)
	}
}

// search is the pooled cascade: leftmost child first (recursively, exactly
// as the sequential search would), then the remaining children as
// stealable speculative tasks with the window established by the first.
// With recursive YBWC (the default), stolen tasks re-enter this function
// and the cascade repeats inside the speculative subtree, down to the
// configured horizon.
func (w *worker) search(pos Position, depth int, alpha, beta int64, encl *splitPoint, wantBest bool) (int64, int) {
	if w.pool.stop.Load() || (encl != nil && encl.aborted()) {
		return alpha, -1
	}
	// Shallow (or horizonless) subtrees are cheaper in place than scheduled.
	if depth <= w.pool.cfg.horizon {
		prev := w.sp
		w.sp = encl
		v, b := w.negamax(pos, depth, alpha, beta, wantBest)
		w.sp = prev
		return v, b
	}
	w.nodes++
	moves, scratch := w.genMoves(pos)
	if len(moves) == 0 {
		w.putMoves(moves, scratch)
		return int64(pos.Evaluate()), -1
	}

	// Root-split baseline: all children become tasks with the caller's
	// (full) window and no phase-1 eldest brother. With the depth-1 horizon
	// SearchRootSplit configures, the root is the only node above the
	// horizon, so this reproduces classical tree splitting exactly.
	if w.pool.cfg.noYBW {
		sp := w.newSplit(encl, alpha, beta, -scoreInf, -1, moves, depth-1, 0)
		w.putMoves(moves, scratch)
		w.join(sp)
		best, bestIdx := sp.best, sp.bestIdx
		w.releaseSplit(sp)
		if !wantBest {
			return best, -1
		}
		return best, bestIdx
	}

	// Phase 1: the leftmost child establishes the window, exactly as the
	// sequential algorithm would.
	v0, _ := w.search(moves[0], depth-1, -beta, -alpha, encl, false)
	best := -v0
	bestIdx := 0
	if best > alpha {
		alpha = best
	}
	if alpha >= beta || len(moves) == 1 ||
		w.pool.stop.Load() || (encl != nil && encl.aborted()) {
		w.putMoves(moves, scratch)
		return best, bestIdx
	}

	// Splitting pays deque, join and merge machinery per sibling, so it
	// is demand-driven: a worker opens a split point only when its own
	// deque has drained — thieves took everything queued (or nothing was
	// ever queued: the spine). A worker still holding queued tasks has
	// already exposed unclaimed parallelism, so it searches the siblings
	// in place instead; the recursion re-checks at every node, so the
	// subtree starts splitting again the moment the queue empties.
	// Without this gate every interior node above the horizon pays the
	// split overhead and recursive YBWC loses ~30% wall clock to
	// spine-only splitting; with it, split points track steal demand.
	if w.dq.bottom.Load()-w.dq.top.Load() > int64(w.pool.cfg.watermark) {
		for i := 1; i < len(moves); i++ {
			v, _ := w.search(moves[i], depth-1, -beta, -alpha, encl, false)
			if -v > best {
				best = -v
				bestIdx = i
			}
			if best > alpha {
				alpha = best
			}
			if alpha >= beta || w.pool.stop.Load() ||
				(encl != nil && encl.aborted()) {
				break
			}
		}
		w.putMoves(moves, scratch)
		if !wantBest {
			return best, -1
		}
		return best, bestIdx
	}

	// Phase 2: speculative siblings as tasks; help until the join drains.
	sp := w.newSplit(encl, alpha, beta, best, bestIdx, moves, depth-1, 1)
	w.putMoves(moves, scratch) // tasks hold their own Position copies
	w.join(sp)
	best, bestIdx = sp.best, sp.bestIdx
	w.releaseSplit(sp)
	if !wantBest {
		return best, -1
	}
	return best, bestIdx
}

// searchPooled runs the cascade on a fresh one-shot pool, with the
// calling goroutine as worker 0 (zero handoff cost: with one worker the
// search is plainly sequential). Long-lived callers should hold a Pool
// instead and amortize the construction.
func searchPooled(ctx context.Context, pos Position, depth, workers int, table *Table, rec *telemetry.Recorder, cfg poolConfig) (Result, error) {
	p := newPool(workers, table, rec, 0, cfg)
	defer p.close()
	return p.runSearch(ctx, func(w0 *worker) (int64, int) {
		return w0.search(pos, depth, -scoreInf, scoreInf, nil, true)
	})
}

// SearchRootSplit is the classical tree-splitting baseline: every root
// move is a task, searched with the shared, atomically tightened alpha; no
// phase-1 spine, no cutoffs (the root window stays full), so its
// speculation waste is preserved for comparison. It is the pooled cascade
// configured with a depth-1 horizon — the root is the only split node —
// rather than a separate entry point.
func SearchRootSplit(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	horizon := depth - 1
	if horizon < 1 {
		horizon = 1
	}
	return searchPooled(ctx, pos, depth, workers, nil, nil, poolConfig{
		horizon:   horizon,
		spineOnly: true,
		noYBW:     true,
	})
}
