package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerThieves hammers the Chase-Lev deque: one owner pushing
// and popping, several thieves stealing. Every task must be delivered
// exactly once. Run under -race this also exercises the bottom/top
// handshake.
func TestDequeOwnerThieves(t *testing.T) {
	const total = 20000
	const thieves = 4
	var d deque
	d.init()
	tasks := make([]task, total)
	taken := make([]atomic.Int32, total)
	var delivered atomic.Int64
	grab := func(tk *task) {
		if tk == nil {
			return
		}
		if taken[tk.idx].Add(1) != 1 {
			t.Errorf("task %d delivered twice", tk.idx)
		}
		delivered.Add(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, _, _ := d.steal()
				grab(tk)
			}
		}()
	}
	rng := rand.New(rand.NewSource(42))
	next := 0
	for next < total || delivered.Load() < total {
		if next < total && (rng.Intn(3) > 0 || delivered.Load() == int64(next)) {
			tasks[next].idx = next
			d.push(&tasks[next])
			next++
		} else {
			grab(d.pop())
		}
		if next == total && delivered.Load() < total {
			grab(d.pop()) // drain what the thieves leave behind
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	if delivered.Load() != total {
		t.Fatalf("delivered %d of %d tasks", delivered.Load(), total)
	}
}

// TestPooledMatchesSpawnAndSequential pins the substrate swap: the pooled
// cascade, the legacy goroutine-per-sibling cascade and the sequential
// search must agree on every value.
func TestPooledMatchesSpawnAndSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		depth := 3 + rng.Intn(4)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)
		for _, workers := range []int{1, 2, 4, 16} {
			pooled, err := SearchParallel(context.Background(), p, depth, workers)
			if err != nil {
				t.Fatal(err)
			}
			spawn, err := searchParallelSpawn(context.Background(), p, depth, workers)
			if err != nil {
				t.Fatal(err)
			}
			if pooled.Value != seq.Value || spawn.Value != seq.Value {
				t.Fatalf("trial %d workers %d: pooled %d spawn %d sequential %d",
					trial, workers, pooled.Value, spawn.Value, seq.Value)
			}
		}
	}
}

// TestPooledNodeParityOneWorker: with a single worker the pooled cascade
// pops its own tasks in move order with the freshest window — it IS the
// sequential search, node for node (above the sequential-handoff horizon
// both visit the same set).
func TestPooledNodeParityOneWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		depth := 4 + rng.Intn(3)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)
		pooled, err := SearchParallel(context.Background(), p, depth, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pooled.Nodes != seq.Nodes {
			t.Fatalf("trial %d: pooled(1 worker) visited %d nodes, sequential %d",
				trial, pooled.Nodes, seq.Nodes)
		}
	}
}

// TestSearchParallelRace is the -race stress test of the pooled
// substrate: many workers, deep trees, a shared transposition table, and
// several concurrent top-level searches over the same table.
func TestSearchParallelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var next uint64
	pos := buildHashed(rng, 7, 3, &next)
	want := Search(pos, 7).Value
	table := NewTable(1 << 10) // tiny: force constant bucket collisions
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r, err := SearchParallelTT(context.Background(), pos, 7,
					SearchOptions{Table: table, Workers: 8})
				if err != nil {
					t.Error(err)
					return
				}
				if r.Value != want {
					t.Errorf("concurrent pooled search: %d want %d", r.Value, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPooledCancellationMidSearch: cancelling while workers are stealing
// must stop the pool promptly and report ErrCancelled.
func TestPooledCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := buildRandomPos(rng, 12, 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SearchParallel(ctx, p, 12, 8)
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && err != ErrCancelled {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestScratchBufferReuse: a MoveAppender position searched through the
// engine must see recycled buffers (the free list grows to the recursion
// depth, not the node count) and still produce the plain-Moves value.
func TestScratchBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		depth := 3 + rng.Intn(3)
		p := buildRandomPos(rng, depth, 4)
		a := appendPos{p}
		plain := Search(p, depth)
		viaAppend := Search(a, depth)
		if plain.Value != viaAppend.Value || plain.Nodes != viaAppend.Nodes {
			t.Fatalf("trial %d: append path %v != plain %v", trial, viaAppend, plain)
		}
		par, err := SearchParallel(context.Background(), a, depth, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Value != plain.Value {
			t.Fatalf("trial %d: parallel append path %d != %d", trial, par.Value, plain.Value)
		}
	}
}

// appendPos wraps treePos with a MoveAppender implementation.
type appendPos struct{ p *treePos }

func (a appendPos) Evaluate() int32 { return a.p.Evaluate() }

func (a appendPos) Moves() []Position { return a.AppendMoves(nil) }

func (a appendPos) AppendMoves(dst []Position) []Position {
	dst = dst[:0]
	for _, k := range a.p.kids {
		dst = append(dst, appendPos{k})
	}
	return dst
}
