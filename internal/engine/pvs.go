package engine

import "context"

// This file implements Principal Variation Search (NegaScout), the modern
// engineering form of Pearl's SCOUT (the paper's reference [7]): the first
// successor is searched with the full window; each later successor is
// first *tested* with a null window, and re-searched with the full window
// only if the test fails high. With good move ordering almost every test
// succeeds and the search visits close to the Knuth-Moore optimal set.

// SearchPVS evaluates pos to the given depth with principal variation
// search. It returns the same value as Search. An optional transposition
// table (opt.Table) accelerates both tests and re-searches. Cancelling
// ctx unwinds the search within checkMask nodes and returns ErrCancelled;
// the table keeps only entries stored before the interrupt.
func SearchPVS(ctx context.Context, pos Position, depth int, opt SearchOptions) (Result, error) {
	opt.Table.Advance()
	e := &searcher{ctx: ctx, table: opt.Table}
	v, best := e.pvs(pos, depth, -scoreInf, scoreInf)
	if ctx.Err() != nil {
		return Result{}, ErrCancelled
	}
	return Result{Value: int32(v), Best: best, Nodes: e.nodes}, nil
}

func (e *searcher) pvs(pos Position, depth int, alpha, beta int64) (int64, int) {
	e.nodes++
	if (e.halt || e.nodes&checkMask == 0) && e.interrupted() {
		return alpha, -1
	}
	if depth == 0 {
		return int64(pos.Evaluate()), -1
	}
	moves, scratch := e.genMoves(pos)
	if len(moves) == 0 {
		e.putMoves(moves, scratch)
		return int64(pos.Evaluate()), -1
	}

	var hash uint64
	hashed := false
	ttBest := -1
	if e.table != nil {
		if h, ok := pos.(Hasher); ok {
			hash, hashed = h.Hash(), true
			if v, d, flag, tb, hit := e.table.ProbeAt(hash, depth); hit {
				if tb >= 0 && tb < len(moves) {
					ttBest = tb
				}
				if d >= depth {
					switch flag {
					case BoundExact:
						e.putMoves(moves, scratch)
						return int64(v), ttBest
					case BoundLower:
						if int64(v) > alpha {
							alpha = int64(v)
						}
					case BoundUpper:
						if int64(v) < beta {
							beta = int64(v)
						}
					}
					if alpha >= beta {
						e.putMoves(moves, scratch)
						return int64(v), ttBest
					}
				}
			}
		}
	}
	alpha0 := alpha

	best := int64(-scoreInf)
	bestIdx := -1
	for j := 0; j < len(moves); j++ {
		i := j
		if ttBest >= 0 {
			switch {
			case j == 0:
				i = ttBest
			case j <= ttBest:
				i = j - 1
			}
		}
		var v int64
		if j == 0 {
			v2, _ := e.pvs(moves[i], depth-1, -beta, -alpha)
			v = -v2
		} else {
			// Null-window test: is this move better than alpha?
			v2, _ := e.pvs(moves[i], depth-1, -alpha-1, -alpha)
			v = -v2
			if v > alpha && v < beta {
				// Fail high inside an open window: re-search exactly.
				v3, _ := e.pvs(moves[i], depth-1, -beta, -v)
				v = -v3
			}
		}
		if v > best {
			best = v
			bestIdx = i
		}
		if best > alpha {
			alpha = best
		}
		if alpha >= beta {
			break
		}
	}
	if hashed && !e.interrupted() {
		flag := BoundExact
		switch {
		case best <= alpha0:
			flag = BoundUpper
		case best >= beta:
			flag = BoundLower
		}
		e.table.StoreShared(hash, int32(best), depth, flag, bestIdx)
	}
	e.putMoves(moves, scratch)
	return best, bestIdx
}
