package engine

import (
	"math/rand"
	"testing"
)

func TestPVSMatchesNegamax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		depth := 1 + rng.Intn(6)
		pos := buildRandomPos(rng, depth, 4)
		plain := Search(pos, depth)
		pvs := SearchPVS(pos, depth, SearchOptions{})
		if pvs.Value != plain.Value {
			t.Fatalf("trial %d: PVS %d != negamax %d", trial, pvs.Value, plain.Value)
		}
	}
}

func TestPVSWithTableMatchesOnTreeGames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		var next uint64
		depth := 3 + rng.Intn(3)
		pos := buildHashed(rng, depth, 3, &next)
		plain := Search(pos, depth)
		pvs := SearchPVS(pos, depth, SearchOptions{Table: NewTable(1 << 12)})
		if pvs.Value != plain.Value {
			t.Fatalf("trial %d: PVS+TT %d != negamax %d", trial, pvs.Value, plain.Value)
		}
	}
}

// On a position with reasonable move ordering the null-window tests pay:
// PVS should not blow up the node count relative to plain alpha-beta.
func TestPVSNodeEconomy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var plainTotal, pvsTotal int64
	for trial := 0; trial < 20; trial++ {
		depth := 5
		pos := buildRandomPos(rng, depth, 4)
		plainTotal += Search(pos, depth).Nodes
		pvsTotal += SearchPVS(pos, depth, SearchOptions{}).Nodes
	}
	if pvsTotal > 2*plainTotal {
		t.Errorf("PVS visited %d nodes vs plain %d (blow-up)", pvsTotal, plainTotal)
	}
}

func TestPVSTerminalAndHorizon(t *testing.T) {
	leaf := &treePos{val: -4}
	if r := SearchPVS(leaf, 3, SearchOptions{}); r.Value != -4 || r.Best != -1 {
		t.Errorf("terminal: %+v", r)
	}
	deep := buildRandomPos(rand.New(rand.NewSource(4)), 3, 3)
	if r := SearchPVS(deep, 0, SearchOptions{}); r.Value != deep.val {
		t.Errorf("horizon: %+v", r)
	}
}
