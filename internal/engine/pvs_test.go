package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestPVSMatchesNegamax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		depth := 1 + rng.Intn(6)
		pos := buildRandomPos(rng, depth, 4)
		plain := Search(pos, depth)
		pvs, err := SearchPVS(context.Background(), pos, depth, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pvs.Value != plain.Value {
			t.Fatalf("trial %d: PVS %d != negamax %d", trial, pvs.Value, plain.Value)
		}
	}
}

func TestPVSWithTableMatchesOnTreeGames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		var next uint64
		depth := 3 + rng.Intn(3)
		pos := buildHashed(rng, depth, 3, &next)
		plain := Search(pos, depth)
		pvs, err := SearchPVS(context.Background(), pos, depth, SearchOptions{Table: NewTable(1 << 12)})
		if err != nil {
			t.Fatal(err)
		}
		if pvs.Value != plain.Value {
			t.Fatalf("trial %d: PVS+TT %d != negamax %d", trial, pvs.Value, plain.Value)
		}
	}
}

// On a position with reasonable move ordering the null-window tests pay:
// PVS should not blow up the node count relative to plain alpha-beta.
func TestPVSNodeEconomy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var plainTotal, pvsTotal int64
	for trial := 0; trial < 20; trial++ {
		depth := 5
		pos := buildRandomPos(rng, depth, 4)
		plainTotal += Search(pos, depth).Nodes
		pvs, err := SearchPVS(context.Background(), pos, depth, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pvsTotal += pvs.Nodes
	}
	if pvsTotal > 2*plainTotal {
		t.Errorf("PVS visited %d nodes vs plain %d (blow-up)", pvsTotal, plainTotal)
	}
}

func TestPVSTerminalAndHorizon(t *testing.T) {
	leaf := &treePos{val: -4}
	if r, err := SearchPVS(context.Background(), leaf, 3, SearchOptions{}); err != nil || r.Value != -4 || r.Best != -1 {
		t.Errorf("terminal: %+v (err %v)", r, err)
	}
	deep := buildRandomPos(rand.New(rand.NewSource(4)), 3, 3)
	if r, err := SearchPVS(context.Background(), deep, 0, SearchOptions{}); err != nil || r.Value != deep.val {
		t.Errorf("horizon: %+v (err %v)", r, err)
	}
}

// TestPVSCancellation pins that SearchPVS honours its context — the bug
// this guards against was a hardcoded context.Background() that made PVS
// the only search in the package immune to cancellation.
func TestPVSCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pos := buildRandomPos(rand.New(rand.NewSource(9)), 10, 3)
	r, err := SearchPVS(ctx, pos, 10, SearchOptions{})
	if err != ErrCancelled {
		t.Fatalf("pre-cancelled ctx: want ErrCancelled, got %v (result %+v)", err, r)
	}

	// A timeout mid-search must unwind within the checkMask poll budget,
	// not run the full tree.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	big := buildRandomPos(rand.New(rand.NewSource(10)), 14, 4)
	start := time.Now()
	if _, err := SearchPVS(ctx2, big, 14, SearchOptions{}); err != ErrCancelled {
		t.Fatalf("timeout: want ErrCancelled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, poll budget ignored", elapsed)
	}
}
