package engine

// Resident search pool: the work-stealing worker set of searchPooled kept
// alive across searches. A one-shot SearchParallelTT pays pool
// construction — worker structs, deque rings, helper goroutine spawns —
// on every call; a service handling sustained traffic pays it once per
// Pool and runs each request as a park/wake cycle on warm workers. The
// transposition table is shared by reference, so several Pools over one
// Table give concurrent searches that cross-seed each other's move
// ordering (the serve layer's core configuration).

import (
	"context"
	"errors"
	"sync"

	"gametree/internal/telemetry"
)

// ErrPoolClosed is returned by Pool.Search after Close.
var ErrPoolClosed = errors.New("engine: search pool closed")

// Pool is a resident work-stealing search pool. A Pool runs one search
// at a time — Search serializes callers — so concurrency across requests
// comes from several Pools sharing one Table, not from one Pool.
type Pool struct {
	mu     sync.Mutex
	p      *pool
	table  *Table
	closed bool
}

// NewPool builds a resident pool of workers (0 = GOMAXPROCS) over table
// (nil disables the transposition table) with telemetry shards 0..w-1 of
// rec (nil keeps the pool uninstrumented).
func NewPool(workers int, table *Table, rec *telemetry.Recorder) *Pool {
	return NewPoolShards(workers, table, rec, 0)
}

// NewPoolShards is NewPool with an explicit telemetry shard base: pool k
// of a set sharing one Recorder should pass base k*workers so every
// worker keeps a private single-writer shard.
func NewPoolShards(workers int, table *Table, rec *telemetry.Recorder, shardBase int) *Pool {
	return NewPoolOpt(SearchOptions{Workers: workers, Table: table, Telemetry: rec}, shardBase)
}

// NewPoolOpt is NewPoolShards taking the full option set, so resident
// pools honour the split-shaping knobs (SplitHorizon, SpineOnly) in
// addition to Workers, Table and Telemetry. The knobs are fixed for the
// pool's lifetime; every Search runs under them.
func NewPoolOpt(opt SearchOptions, shardBase int) *Pool {
	return &Pool{
		p:     newPool(opt.Workers, opt.Table, opt.Telemetry, shardBase, opt.poolConfig()),
		table: opt.Table,
	}
}

// Workers reports the pool's worker count (after the 0 = GOMAXPROCS
// default is applied).
func (rp *Pool) Workers() int { return len(rp.p.workers) }

// Search runs one search on the resident workers, with the calling
// goroutine as worker 0. The table generation is advanced per search,
// mirroring SearchParallelTT. Cancellation follows the pooled contract:
// ErrCancelled on ctx cancel, additionally wrapping
// context.DeadlineExceeded when the deadline expired — in both cases the
// Result is the zero value, never a partial search passed off as
// complete.
func (rp *Pool) Search(ctx context.Context, pos Position, depth int) (Result, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.closed {
		return Result{}, ErrPoolClosed
	}
	rp.table.Advance() // nil-safe
	return rp.p.runSearch(ctx, func(w0 *worker) (int64, int) {
		return w0.search(pos, depth, -scoreInf, scoreInf, nil, true)
	})
}

// Fanout runs fn concurrently on the resident workers — the hook that
// lets other engines (the proof-number solver) borrow the pool's warm
// worker set. fn is invoked with the executing worker's id, that
// worker's telemetry shard (nil when the pool is uninstrumented; shards
// are single-writer, and Fanout is serialized against Search, so fn may
// write them freely) and a stop predicate that turns true when ctx is
// cancelled or a sibling invocation panicked; fn must poll it and return
// promptly. Worker 0 runs on the calling goroutine and may execute more
// than one invocation (helping), so fn must be safe to run repeatedly.
// The error contract matches Search: ErrCancelled (wrapping
// context.DeadlineExceeded on timeout) or ErrSearchPanic.
func (rp *Pool) Fanout(ctx context.Context, fn func(id int, tm *telemetry.Shard, stopped func() bool)) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.closed {
		return ErrPoolClosed
	}
	rp.table.Advance() // nil-safe
	stopped := func() bool { return rp.p.stop.Load() }
	return rp.p.fanout(ctx, func(w *worker) {
		fn(w.id, w.tm, stopped)
	})
}

// Close shuts the helper goroutines down. Idempotent; Search returns
// ErrPoolClosed afterwards.
func (rp *Pool) Close() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.closed {
		return
	}
	rp.closed = true
	rp.p.close()
}
