package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// lazyDeep is an effectively infinite lazily-generated tree: Moves
// materialises children on demand, so a deep search runs until the
// deadline with no up-front allocation. Used by the cancellation and
// deadline-contract tests.
type lazyDeep struct{ seed uint64 }

func (p lazyDeep) Moves() []Position {
	out := make([]Position, 6)
	for i := range out {
		out[i] = lazyDeep{seed: p.seed*6 + uint64(i) + 1}
	}
	return out
}

func (p lazyDeep) Evaluate() int32 { return int32(p.seed%201) - 100 }

// TestResidentPoolReuse: a Pool must give the same answers as the
// one-shot engine across many consecutive searches — stale per-search
// state (stop flags, node counters, parked-worker wakeups) would show up
// as wrong values or a hang here.
func TestResidentPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rp := NewPool(2, NewTable(1<<10), nil)
	defer rp.Close()
	var next uint64
	for trial := 0; trial < 12; trial++ {
		depth := 2 + rng.Intn(4)
		pos := buildHashed(rng, depth, 4, &next)
		want := Search(pos, depth)
		got, err := rp.Search(context.Background(), pos, depth)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Value != want.Value {
			t.Fatalf("trial %d: pool %d != plain %d", trial, got.Value, want.Value)
		}
	}
}

// TestResidentPoolNodeParityPerSearch: with one worker and no table the
// pooled search visits exactly the sequential node set, and the count
// must not accumulate across searches — each run starts from zero.
func TestResidentPoolNodeParityPerSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rp := NewPool(1, nil, nil)
	defer rp.Close()
	for trial := 0; trial < 6; trial++ {
		depth := 3 + rng.Intn(3)
		pos := buildRandomPos(rng, depth, 3)
		want := Search(pos, depth)
		got, err := rp.Search(context.Background(), pos, depth)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Nodes != want.Nodes {
			t.Fatalf("trial %d: pool nodes %d != sequential %d", trial, got.Nodes, want.Nodes)
		}
	}
}

// TestResidentPoolClosed: Search after Close fails fast with
// ErrPoolClosed; Close is idempotent.
func TestResidentPoolClosed(t *testing.T) {
	rp := NewPool(2, nil, nil)
	rp.Close()
	rp.Close()
	if _, err := rp.Search(context.Background(), lazyDeep{}, 2); err != ErrPoolClosed {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
}

// TestSearchTTCancellation: SearchTT honours its context — both when the
// context is dead on arrival and when it expires mid-search. The error
// is the bare ErrCancelled sentinel (sequential path, no deadline
// wrapping).
func TestSearchTTCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r, err := SearchTT(ctx, lazyDeep{}, 3, SearchOptions{}); err != ErrCancelled {
		t.Fatalf("pre-cancelled: want ErrCancelled, got %v (result %+v)", err, r)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := SearchTT(ctx2, lazyDeep{}, 30, SearchOptions{Table: NewTable(1 << 10)}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("timeout: want ErrCancelled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestDeadlineNoPartialResult pins the SearchParallelOpt deadline
// contract: a timed-out search returns the zero Result — never a partial
// value passed off as complete — and an error matching both ErrCancelled
// and context.DeadlineExceeded, so callers can tell a timeout from an
// explicit cancel.
func TestDeadlineNoPartialResult(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := SearchParallelOpt(ctx, lazyDeep{}, 30, SearchOptions{
		Workers: 2,
		Table:   NewTable(1 << 10),
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want errors.Is(err, ErrCancelled), got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want errors.Is(err, context.DeadlineExceeded), got %v", err)
	}
	if res != (Result{}) {
		t.Fatalf("timed-out search leaked a partial result: %+v", res)
	}

	// An explicit cancel keeps the bare sentinel: == must still hold for
	// existing callers, and DeadlineExceeded must not match.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	res2, err2 := SearchParallelOpt(ctx2, lazyDeep{}, 30, SearchOptions{Workers: 2})
	if err2 != ErrCancelled {
		t.Fatalf("explicit cancel: want bare ErrCancelled, got %v", err2)
	}
	if errors.Is(err2, context.DeadlineExceeded) {
		t.Fatal("explicit cancel must not report DeadlineExceeded")
	}
	if res2 != (Result{}) {
		t.Fatalf("cancelled search leaked a partial result: %+v", res2)
	}
}

// TestConcurrentSearchesSharedTable: several goroutines hammer one
// shared Table — via SearchParallelTT and via resident Pools — on
// distinct positions with unique hashes. Every value must match the
// isolated sequential search: a torn or misattributed TT entry surfaces
// as a wrong root value, and the data paths run under -race in CI. The
// table is deliberately tiny so goroutines evict each other constantly.
func TestConcurrentSearchesSharedTable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var next uint64
	const nFix = 4
	type fixture struct {
		pos   hashedPos
		depth int
		want  int32
	}
	fixtures := make([]fixture, nFix)
	for i := range fixtures {
		depth := 3 + rng.Intn(3)
		pos := buildHashed(rng, depth, 3, &next)
		fixtures[i] = fixture{pos: pos, depth: depth, want: Search(pos, depth).Value}
	}

	shared := NewTable(1 << 8)
	rounds := 8
	if testing.Short() {
		rounds = 3
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*nFix*rounds*2)

	// Path 1: concurrent one-shot SearchParallelTT calls on the shared
	// table, each goroutine walking the fixtures in a different rotation.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f := fixtures[(g+r)%nFix]
				res, err := SearchParallelTT(context.Background(), f.pos, f.depth, SearchOptions{
					Workers: 2,
					Table:   shared,
				})
				if err != nil {
					errs <- err
					return
				}
				if res.Value != f.want {
					t.Errorf("goroutine %d round %d: shared-table value %d != isolated %d",
						g, r, res.Value, f.want)
					return
				}
			}
		}(g)
	}

	// Path 2: two resident Pools over the same table, searching
	// concurrently (the serve-layer configuration).
	pools := []*Pool{NewPool(2, shared, nil), NewPool(2, shared, nil)}
	defer pools[0].Close()
	defer pools[1].Close()
	for g, rp := range pools {
		wg.Add(1)
		go func(g int, rp *Pool) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f := fixtures[(g*2+r)%nFix]
				res, err := rp.Search(context.Background(), f.pos, f.depth)
				if err != nil {
					errs <- err
					return
				}
				if res.Value != f.want {
					t.Errorf("pool %d round %d: shared-table value %d != isolated %d",
						g, r, res.Value, f.want)
					return
				}
			}
		}(g, rp)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
