package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// SearchRootSplit is the classical "tree splitting" parallelization the
// paper contrasts with (its references [2] Baudet and [4] Finkel &
// Fishburn): the root's moves are distributed across workers, each
// searched sequentially with a shared, atomically-tightened alpha. It is
// simple and embarrassingly parallel but — unlike the cascade — wastes
// work exactly where alpha-beta's sequential dependence matters most, so
// its speedup saturates early; the engine keeps it as a baseline.
func SearchRootSplit(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	moves := pos.Moves()
	if depth == 0 || len(moves) == 0 {
		return Result{Value: pos.Evaluate(), Best: -1, Nodes: 1}, nil
	}

	var sharedAlpha atomic.Int64
	sharedAlpha.Store(-scoreInf)
	type res struct {
		idx int
		val int64
	}
	results := make(chan res, len(moves))
	var nodes atomic.Int64
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, m := range moves {
		wg.Add(1)
		go func(i int, m Position) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results <- res{i, -scoreInf}
				return
			}
			e := &searcher{ctx: ctx}
			// Each worker reads the freshest shared alpha at start; a
			// stale (smaller) alpha is sound, merely less sharp.
			v, _ := e.negamax(m, depth-1, -scoreInf, -sharedAlpha.Load(), false)
			v = -v
			nodes.Add(e.nodes.Load())
			// Monotonically raise the shared alpha.
			for {
				cur := sharedAlpha.Load()
				if v <= cur || sharedAlpha.CompareAndSwap(cur, v) {
					break
				}
			}
			results <- res{i, v}
		}(i, m)
	}
	go func() { wg.Wait(); close(results) }()

	best := int64(-scoreInf)
	bestIdx := -1
	for r := range results {
		if r.val > best {
			best, bestIdx = r.val, r.idx
		}
	}
	if ctx.Err() != nil {
		return Result{}, ErrCancelled
	}
	return Result{Value: int32(best), Best: bestIdx, Nodes: nodes.Load() + 1}, nil
}
