package engine

import "context"

// SearchRootSplit is the classical "tree splitting" parallelization the
// paper contrasts with (its references [2] Baudet and [4] Finkel &
// Fishburn): the root's moves are distributed across workers, each
// searched sequentially with a shared, atomically-tightened alpha. It is
// simple and embarrassingly parallel but — unlike the cascade — wastes
// work exactly where alpha-beta's sequential dependence matters most, so
// its speedup saturates early; the engine keeps it as a baseline. It runs
// on the same pooled work-stealing substrate as SearchParallel: every
// root move is a stealable task (there is no phase-1 spine and the root
// window is full, so the characteristic speculation waste is preserved).
func SearchRootSplit(ctx context.Context, pos Position, depth, workers int) (Result, error) {
	return searchRootSplitPooled(ctx, pos, depth, workers)
}
