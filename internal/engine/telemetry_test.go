package engine

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"gametree/internal/telemetry"
)

// TestTelemetrySingleWorkerExact pins the counter semantics where they
// are deterministic: with one worker there is no one to steal from or be
// pre-empted by asynchronously, so the counters must be exact — zero
// steals, node parity with the sequential search, and the split/task
// accounting identity.
func TestTelemetrySingleWorkerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		depth := 4 + rng.Intn(3)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)

		rec := telemetry.NewRecorder()
		r, err := SearchParallelOpt(context.Background(), p, depth,
			SearchOptions{Workers: 1, Telemetry: rec})
		if err != nil {
			t.Fatal(err)
		}
		c := rec.Snapshot().Total

		if c.Steals != 0 || c.StealAttempts != 0 {
			t.Fatalf("trial %d: single worker recorded %d steals / %d attempts",
				trial, c.Steals, c.StealAttempts)
		}
		if c.Nodes != r.Nodes || r.Nodes != seq.Nodes {
			t.Fatalf("trial %d: telemetry nodes %d, result %d, sequential %d",
				trial, c.Nodes, r.Nodes, seq.Nodes)
		}
		// Every split's sibling tasks complete exactly once: as a run
		// (Tasks), as a skip (Aborts), or as a run that was then
		// pre-empted (both). Hence Tasks <= total siblings <= Tasks+Aborts.
		// The per-split sibling counts aren't observable here, but each
		// split schedules at least one sibling, so Splits is a lower bound.
		if c.Tasks+c.Aborts < c.Splits {
			t.Fatalf("trial %d: %d tasks + %d aborts < %d splits",
				trial, c.Tasks, c.Aborts, c.Splits)
		}
		if depth > seqSplitDepth && c.Splits == 0 {
			t.Fatalf("trial %d: depth %d search opened no splits", trial, depth)
		}

		// Single-worker runs are deterministic: a second run must
		// reproduce every counter bit-for-bit. AbortDrainNs is the one
		// wall-clock field — nested YBWC cutoffs fire even at one worker,
		// and their drain latency is time, not structure — so it is
		// excluded from the comparison.
		rec2 := telemetry.NewRecorder()
		if _, err := SearchParallelOpt(context.Background(), p, depth,
			SearchOptions{Workers: 1, Telemetry: rec2}); err != nil {
			t.Fatal(err)
		}
		c2 := rec2.Snapshot().Total
		cc, cc2 := c, c2
		cc.AbortDrainNs, cc2.AbortDrainNs = 0, 0
		if cc2 != cc {
			t.Fatalf("trial %d: single-worker counters not deterministic:\n%+v\n%+v", trial, c, c2)
		}
	}
}

// TestTelemetryPessimalTreeAccounting uses the fixed pessimal benchmark
// tree in spine-only mode, where the split structure is known exactly:
// splits open only along the leftmost spine above the sequential horizon,
// each scheduling branch-1 siblings. (Recursive YBWC — the default —
// splits inside speculative subtrees too; its accounting is pinned by
// TestYBWCNestedAccounting.)
func TestTelemetryPessimalTreeAccounting(t *testing.T) {
	const depth, branch = 6, 4
	tree := NewPessimalTree(depth, branch, 0)
	rec := telemetry.NewRecorder()
	if _, err := SearchParallelOpt(context.Background(), (*BenchTreeAppender)(tree), depth,
		SearchOptions{Workers: 1, Telemetry: rec, SpineOnly: true}); err != nil {
		t.Fatal(err)
	}
	c := rec.Snapshot().Total
	wantSplits := int64(depth - seqSplitDepth)
	if c.Splits != wantSplits {
		t.Fatalf("splits %d, want %d (spine above the horizon)", c.Splits, wantSplits)
	}
	siblings := wantSplits * (branch - 1)
	if c.Tasks > siblings || c.Tasks+c.Aborts < siblings {
		t.Fatalf("task accounting: %d tasks, %d aborts, %d siblings scheduled",
			c.Tasks, c.Aborts, siblings)
	}
	if c.DequeMax < 1 || c.DequeMax > siblings {
		t.Fatalf("deque high-water %d outside [1, %d]", c.DequeMax, siblings)
	}
}

// deepHashed is a tree position whose children also hash (the shared
// hashedPos fixture only hashes its root), so TT traffic happens at
// every interior node of the search.
type deepHashed struct {
	kids []Position
	val  int32
	id   uint64
}

func (h *deepHashed) Evaluate() int32   { return h.val }
func (h *deepHashed) Moves() []Position { return h.kids }
func (h *deepHashed) Hash() uint64      { return h.id }

func buildDeepHashed(rng *rand.Rand, depth, maxKids int, next *uint64) *deepHashed {
	h := &deepHashed{val: int32(rng.Intn(201) - 100), id: *next}
	*next++
	if depth == 0 {
		return h
	}
	for i := 0; i < maxKids; i++ {
		h.kids = append(h.kids, buildDeepHashed(rng, depth-1, maxKids, next))
	}
	return h
}

// TestTelemetryTTCounters: the table-backed search must report probe,
// hit, store and eviction traffic, and the counters must be consistent
// with each other (hits never exceed probes, evictions never exceed
// stores).
func TestTelemetryTTCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var next uint64
	pos := buildDeepHashed(rng, 7, 3, &next)
	rec := telemetry.NewRecorder()
	table := NewTable(1 << 4) // tiny, to force evictions
	if _, err := SearchParallelTT(context.Background(), pos, 7,
		SearchOptions{Table: table, Workers: 2, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	c := rec.Snapshot().Total
	if c.TTProbes == 0 || c.TTStores == 0 {
		t.Fatalf("no TT traffic recorded: %+v", c)
	}
	if c.TTHits > c.TTProbes {
		t.Fatalf("hits %d exceed probes %d", c.TTHits, c.TTProbes)
	}
	if c.TTEvictions > c.TTStores {
		t.Fatalf("evictions %d exceed stores %d", c.TTEvictions, c.TTStores)
	}
	if c.TTEvictions == 0 {
		t.Fatalf("tiny table saw no evictions (stores %d)", c.TTStores)
	}

	// The sequential table search shares the same counters.
	rec2 := telemetry.NewRecorder()
	if _, err := SearchTT(context.Background(), pos, 5, SearchOptions{Table: NewTable(1 << 8), Telemetry: rec2}); err != nil {
		t.Fatal(err)
	}
	if c2 := rec2.Snapshot().Total; c2.TTProbes == 0 || c2.Nodes == 0 {
		t.Fatalf("sequential TT search recorded nothing: %+v", c2)
	}
}

// TestTelemetrySnapshotDuringSearch snapshots a live instrumented search
// from another goroutine. Under -race this is the satellite guarantee
// that mid-run Snapshot is safe; the monotonicity check catches torn or
// regressing reads.
func TestTelemetrySnapshotDuringSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := buildRandomPos(rng, 8, 3)
	rec := telemetry.NewRecorder()
	var done atomic.Bool
	snaps := make(chan telemetry.Snapshot, 1)
	go func() {
		var lastTasks, lastNodes int64
		var last telemetry.Snapshot
		for !done.Load() {
			s := rec.Snapshot()
			if s.Total.Tasks < lastTasks || s.Total.Nodes < lastNodes {
				t.Errorf("counters regressed: tasks %d->%d nodes %d->%d",
					lastTasks, s.Total.Tasks, lastNodes, s.Total.Nodes)
				break
			}
			lastTasks, lastNodes = s.Total.Tasks, s.Total.Nodes
			last = s
			runtime.Gosched()
		}
		snaps <- last
	}()
	r, err := SearchParallelOpt(context.Background(), p, 8,
		SearchOptions{Workers: 4, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	<-snaps
	final := rec.Snapshot().Total
	if final.Nodes != r.Nodes {
		t.Fatalf("quiesced telemetry nodes %d != result nodes %d", final.Nodes, r.Nodes)
	}
	if got := len(rec.Snapshot().PerWorker); got != 4 {
		t.Fatalf("shard count %d, want 4", got)
	}
}

// TestTelemetryTracingSpans: with tracing enabled, every joined split
// must leave a well-formed span (ordered timestamps, a real task count).
func TestTelemetryTracingSpans(t *testing.T) {
	tree := NewPessimalTree(6, 4, 0)
	rec := telemetry.NewRecorder()
	rec.EnableTrace(0)
	if _, err := SearchParallelOpt(context.Background(), (*BenchTreeAppender)(tree), 6,
		SearchOptions{Workers: 2, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	spans, dropped := rec.Spans()
	if dropped != 0 {
		t.Fatalf("%d spans dropped below the default cap", dropped)
	}
	c := rec.Snapshot().Total
	if int64(len(spans)) != c.Splits {
		t.Fatalf("%d spans for %d splits", len(spans), c.Splits)
	}
	for i, s := range spans {
		if s.Start > s.Join || s.Join > s.End {
			t.Fatalf("span %d not ordered: %+v", i, s)
		}
		if s.Tasks < 1 || s.Name != "split" {
			t.Fatalf("span %d malformed: %+v", i, s)
		}
	}
}

// TestTelemetryNilRecorderSearch: the uninstrumented path must stay
// identical in value and node count to the instrumented one.
func TestTelemetryNilRecorderSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := buildRandomPos(rng, 6, 4)
	plain, err := SearchParallelOpt(context.Background(), p, 6, SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	inst, err := SearchParallelOpt(context.Background(), p, 6,
		SearchOptions{Workers: 2, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != inst.Value {
		t.Fatalf("instrumentation changed the value: %d vs %d", plain.Value, inst.Value)
	}
}

// TestTelemetryHistograms: an instrumented pooled search must populate
// the per-family histograms consistently with its counters — every
// executed task has a run-time sample, every abort drain a latency
// sample, every split a deque-depth sample, every TT probe a depth
// sample — and the quantiles must be ordered.
func TestTelemetryHistograms(t *testing.T) {
	tree := NewPessimalTree(8, 4, 0)
	rec := telemetry.NewRecorder()
	if _, err := SearchParallelOpt(context.Background(), (*BenchTreeAppender)(tree), 8,
		SearchOptions{Workers: 4, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	c := s.Total

	if run := s.Hist[telemetry.HistTaskRunNs]; run.Count != c.Tasks {
		t.Fatalf("task run samples %d != tasks %d", run.Count, c.Tasks)
	}
	if drain := s.Hist[telemetry.HistAbortDrainNs]; drain.Count != c.AbortDrains {
		t.Fatalf("drain samples %d != abort drains %d", drain.Count, c.AbortDrains)
	}
	if dq := s.Hist[telemetry.HistDequeDepth]; dq.Count != c.Splits {
		t.Fatalf("deque samples %d != splits %d", dq.Count, c.Splits)
	} else if dq.Max != c.DequeMax {
		t.Fatalf("deque histogram max %d != high-water counter %d", dq.Max, c.DequeMax)
	}
	if sr := s.Hist[telemetry.HistStealRetries]; sr.Count != c.StealAttempts {
		t.Fatalf("steal-retry samples %d != steal attempts %d", sr.Count, c.StealAttempts)
	}

	rep := s.Report()
	if c.AbortDrains > 0 {
		if !(rep.AbortDrainP50Us > 0 && rep.AbortDrainP50Us <= rep.AbortDrainP95Us &&
			rep.AbortDrainP95Us <= rep.AbortDrainP99Us && rep.AbortDrainP99Us <= rep.AbortDrainMaxUs) {
			t.Fatalf("drain quantiles disordered: %+v", rep)
		}
	}
	if c.Tasks > 0 && !(rep.TaskRunP50Us > 0 && rep.TaskRunP50Us <= rep.TaskRunP99Us) {
		t.Fatalf("task run quantiles disordered: p50=%v p99=%v", rep.TaskRunP50Us, rep.TaskRunP99Us)
	}

	// TT probe depth: table-backed search on the hashed fixture.
	rng := rand.New(rand.NewSource(35))
	var next uint64
	pos := buildDeepHashed(rng, 6, 3, &next)
	ttRec := telemetry.NewRecorder()
	if _, err := SearchParallelTT(context.Background(), pos, 6,
		SearchOptions{Table: NewTable(1 << 10), Workers: 2, Telemetry: ttRec}); err != nil {
		t.Fatal(err)
	}
	ts := ttRec.Snapshot()
	if pd := ts.Hist[telemetry.HistTTProbeDepth]; pd.Count != ts.Total.TTProbes {
		t.Fatalf("probe-depth samples %d != probes %d", pd.Count, ts.Total.TTProbes)
	} else if pd.Max > 6 || pd.Max < 1 {
		t.Fatalf("probe depth max %d outside the search depth range", pd.Max)
	}
}

// TestTelemetryEventLog: with the event log on, the scheduler events must
// reconcile with the counters (splits = split-open events, steals = steal
// events) and replay cleanly through the JSONL round trip.
func TestTelemetryEventLog(t *testing.T) {
	tree := NewPessimalTree(7, 4, 0)
	rec := telemetry.NewRecorder()
	rec.EnableEvents(0)
	if _, err := SearchParallelOpt(context.Background(), (*BenchTreeAppender)(tree), 7,
		SearchOptions{Workers: 4, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	events, dropped := rec.Events()
	if dropped != 0 {
		t.Fatalf("%d events dropped below the default cap", dropped)
	}
	c := rec.Snapshot().Total
	kinds := map[string]int64{}
	for i, e := range events {
		kinds[e.Kind]++
		if e.Ns < 0 || e.Worker < 0 || e.Worker >= 4 {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
	}
	if kinds[telemetry.EventSplitOpen] != c.Splits {
		t.Fatalf("%d split-open events for %d splits", kinds[telemetry.EventSplitOpen], c.Splits)
	}
	if kinds[telemetry.EventJoin] != c.Splits {
		t.Fatalf("%d join events for %d splits", kinds[telemetry.EventJoin], c.Splits)
	}
	if kinds[telemetry.EventSteal] != c.Steals {
		t.Fatalf("%d steal events for %d steals", kinds[telemetry.EventSteal], c.Steals)
	}
	if kinds[telemetry.EventAbort] != c.Aborts {
		t.Fatalf("%d abort events for %d aborts", kinds[telemetry.EventAbort], c.Aborts)
	}

	// JSONL round trip and Chrome replay must both accept the log.
	var jsonl strings.Builder
	if err := rec.WriteEvents(&jsonl); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadEvents(strings.NewReader(jsonl.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	var trace strings.Builder
	if err := telemetry.WriteEventTrace(&trace, back); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(trace.String()), &doc); err != nil {
		t.Fatalf("event trace is not valid JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != len(events) {
		t.Fatalf("event trace has %v entries for %d events", doc["traceEvents"], len(events))
	}
}
