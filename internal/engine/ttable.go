package engine

import (
	"math/bits"
	"sync/atomic"
)

// Hasher is an optional interface for Position: a position that can hash
// itself enables the transposition table. Hashes must be (with high
// probability) unique per position and identical for transposed positions
// that are truly equivalent.
type Hasher interface {
	Hash() uint64
}

// Bound flags for table entries. Exported so the shard tier can carry
// entries between processes in the two-level table. BoundPN marks a
// proof-number entry: the value lane carries packed proof/disproof
// numbers instead of a negamax score. Alpha-beta probes fall through
// every case of their bound switch on it (and PN probes ignore the other
// three), so the two engines share one table without misreading each
// other's entries.
const (
	BoundExact uint64 = iota
	BoundLower
	BoundUpper
	BoundPN
)

// RemoteTT is the remote half of a two-level transposition table: a
// client that forwards traffic to the shard owning a hash. Both methods
// MUST be non-blocking and asynchronous — they run on the search hot
// path. A remote probe does not return the entry; the remote layer
// installs any reply into the local table (Store), so it pays off on the
// NEXT probe of the same position. That keeps the hot path free of
// network latency while still sharing deep results between shards.
type RemoteTT interface {
	// Probe asks the owning shard for its entry of hash, on behalf of a
	// local probe at the given remaining depth.
	Probe(hash uint64, depth int)
	// Store forwards a locally stored entry to the owning shard.
	Store(hash uint64, value int32, depth int, flag uint64, best int)
}

// remoteHook pairs a remote client with its depth gate. Swapped
// atomically so SetRemote is safe against concurrent searches.
type remoteHook struct {
	r        RemoteTT
	minDepth int
}

// Entry packing: [ value:32 | depth:10 | gen:6 | flag:2 | best:14 ].
const (
	ttDepthBits = 10
	ttDepthMax  = 1<<ttDepthBits - 1 // also stands in for "no horizon"
	ttGenBits   = 6
	ttGenMask   = 1<<ttGenBits - 1
	ttBestBits  = 14
	ttNoMove    = 1<<ttBestBits - 1 // sentinel: no move

	// bucketWays entries share a bucket; at 16 bytes per entry a 4-way
	// bucket is exactly one 64-byte cache line.
	bucketWays = 4

	// ttAgePenalty is the replacement-score cost of each generation of
	// age: a stale deep entry loses to a current shallow one once it is
	// depth/ttAgePenalty generations old.
	ttAgePenalty = 8
)

// Table is a fixed-size lock-free transposition table shared between
// goroutines. Entries are grouped into 4-way buckets (one cache line);
// each entry is a pair of 64-bit words written atomically with the
// standard XOR validation trick (key^data, data): a torn read/write is
// detected by the checksum failing, never returned as a wrong entry.
// Within a bucket, replacement is depth-preferred with generation aging —
// a same-position entry is always updated, otherwise an empty slot is
// taken, otherwise the entry with the lowest depth-minus-age score is
// evicted — so deep results no longer vanish to replace-always
// collisions. Hits are advisory either way.
type Table struct {
	words  []atomic.Uint64 // 2 per entry, bucketWays entries per bucket
	mask   uint64          // bucket-index mask
	gen    atomic.Uint32   // current generation (aging clock)
	remote atomic.Pointer[remoteHook]
}

// NewTable allocates a table with at least the given number of entries
// (rounded up so the bucket count is a power of two). Sizes below 1 panic.
func NewTable(entries int) *Table {
	if entries < 1 {
		panic("engine: table needs at least one entry")
	}
	buckets := (entries + bucketWays - 1) / bucketWays
	n := 1 << bits.Len(uint(buckets-1))
	return &Table{words: make([]atomic.Uint64, 2*bucketWays*n), mask: uint64(n - 1)}
}

// Advance bumps the aging clock. Call it once per top-level search so
// entries from earlier searches become progressively cheaper to evict.
func (t *Table) Advance() {
	if t != nil {
		t.gen.Add(1)
	}
}

// packEntry encodes value, depth, flag, best-move index and generation
// into one word. Negative depths (depth-unlimited searches, which carry
// exact-to-terminal results) and depths beyond the field width clamp to
// ttDepthMax, so a later `stored >= wanted` probe comparison stays sound
// instead of wrapping around.
func packEntry(value int32, depth int, flag uint64, best, gen int) uint64 {
	if depth < 0 || depth > ttDepthMax {
		depth = ttDepthMax
	}
	if best < 0 || best >= ttNoMove {
		best = ttNoMove
	}
	return uint64(uint32(value))<<32 | uint64(depth)<<22 |
		uint64(gen&ttGenMask)<<16 | flag<<14 | uint64(best)
}

func unpackEntry(d uint64) (value int32, depth int, flag uint64, best int) {
	value = int32(uint32(d >> 32))
	depth = int(d >> 22 & ttDepthMax)
	flag = (d >> 14) & 3
	best = int(d & ttNoMove)
	if best == ttNoMove {
		best = -1
	}
	return
}

func entryGen(d uint64) int { return int(d >> 16 & ttGenMask) }

// Store records a search result for the position with the given hash.
// The return value reports whether the write displaced a live entry of a
// different position (an eviction) — refreshes of the same position and
// writes into empty slots return false. It feeds the telemetry layer's
// eviction counter; callers are free to ignore it.
func (t *Table) Store(hash uint64, value int32, depth int, flag uint64, best int) bool {
	if t == nil {
		return false
	}
	gen := int(t.gen.Load())
	d := packEntry(value, depth, flag, best, gen)
	base := (hash & t.mask) * (2 * bucketWays)
	slot := base
	evicted := false
	empty, victim := uint64(0), uint64(0)
	haveEmpty, haveVictim := false, false
	minScore := 0
	for s := uint64(0); s < bucketWays; s++ {
		i := base + 2*s
		k := t.words[i].Load()
		e := t.words[i+1].Load()
		if k^e == hash {
			// Same position: always refresh.
			slot = i
			goto write
		}
		if k == 0 && e == 0 {
			if !haveEmpty {
				empty, haveEmpty = i, true
			}
			continue
		}
		_, edepth, _, _ := unpackEntry(e)
		score := edepth - ttAgePenalty*((gen-entryGen(e))&ttGenMask)
		if !haveVictim || score < minScore {
			victim, haveVictim, minScore = i, true, score
		}
	}
	switch {
	case haveEmpty:
		slot = empty
	case haveVictim:
		slot = victim
		evicted = true
	}
write:
	t.words[slot].Store(hash ^ d)
	t.words[slot+1].Store(d)
	return evicted
}

// Probe looks the position up across its bucket. ok is false on a miss
// (or a torn entry).
func (t *Table) Probe(hash uint64) (value int32, depth int, flag uint64, best int, ok bool) {
	if t == nil {
		return 0, 0, 0, -1, false
	}
	base := (hash & t.mask) * (2 * bucketWays)
	for s := uint64(0); s < bucketWays; s++ {
		i := base + 2*s
		k := t.words[i].Load()
		d := t.words[i+1].Load()
		if k|d == 0 {
			continue // empty slot (also rejects phantom hash-0 hits)
		}
		if k^d == hash {
			value, depth, flag, best = unpackEntry(d)
			return value, depth, flag, best, true
		}
	}
	return 0, 0, 0, -1, false
}

// Len returns the capacity in entries.
func (t *Table) Len() int { return len(t.words) / 2 }

// Proof-number entries pack both numbers into the 32-bit value lane of
// the standard entry layout: [pn:16 | dn:16], with 0xFFFF standing for
// infinity and finite values saturating at 0xFFFE. Saturation is safe:
// stored numbers only seed a re-expanded node's initialization — the
// solver recomputes exact numbers from the children — and the entries
// that decide correctness (solved: pn or dn zero) always pack exactly.
const (
	// PNInf is the solver-side infinity for proof/disproof numbers.
	PNInf uint32 = ^uint32(0)

	pnPackedInf = 0xFFFF
	pnPackedMax = 0xFFFE
)

// packPNHalf narrows one proof/disproof number to its 16-bit lane.
func packPNHalf(n uint32) uint64 {
	if n == PNInf {
		return pnPackedInf
	}
	if n > pnPackedMax {
		n = pnPackedMax
	}
	return uint64(n)
}

// unpackPNHalf widens one 16-bit lane back to a solver number.
func unpackPNHalf(h uint64) uint32 {
	if h == pnPackedInf {
		return PNInf
	}
	return uint32(h)
}

// StorePN records proof/disproof numbers for the position with the given
// hash. Solved entries (pn or dn zero: a decided subtree, exact forever)
// are stored at the maximum depth, so the depth-preferred replacement
// keeps them ahead of unsolved hints and the two-level remote tier
// forwards them to the owning shard; unsolved snapshots stay at depth 1 —
// local move-ordering fuel, too volatile to ship. The eviction return
// matches Store.
func (t *Table) StorePN(hash uint64, pn, dn uint32) bool {
	depth := 1
	if pn == 0 || dn == 0 {
		depth = ttDepthMax
	}
	value := int32(packPNHalf(pn)<<16 | packPNHalf(dn))
	return t.StoreShared(hash, value, depth, BoundPN, -1)
}

// ProbePN looks up proof/disproof numbers, ignoring entries of any other
// bound kind (ok false). On a complete miss an asynchronous remote probe
// is issued at the solved-entry depth, so shards cross-seed solved
// subtrees; a live local entry — even an unsolved hint — suppresses the
// remote traffic, which would otherwise fire on every expansion.
func (t *Table) ProbePN(hash uint64) (pn, dn uint32, ok bool) {
	value, _, flag, _, hit := t.Probe(hash)
	if t != nil && !hit {
		if h := t.remote.Load(); h != nil {
			h.r.Probe(hash, ttDepthMax)
		}
	}
	if !hit || flag != BoundPN {
		return 0, 0, false
	}
	v := uint64(uint32(value))
	return unpackPNHalf(v >> 16), unpackPNHalf(v & 0xFFFF), true
}

// SetRemote attaches (or, with nil, detaches) the remote half of a
// two-level table. Probes and stores at remaining depth >= minDepth are
// mirrored to the remote client: shallow traffic — the overwhelming bulk,
// and the least valuable — stays local, so the remote window never
// saturates on leaf-adjacent positions.
func (t *Table) SetRemote(r RemoteTT, minDepth int) {
	if t == nil {
		return
	}
	if r == nil {
		t.remote.Store(nil)
		return
	}
	t.remote.Store(&remoteHook{r: r, minDepth: minDepth})
}

// ProbeAt is Probe plus the remote tier: on a local miss (or a local
// entry too shallow for depth) it issues an asynchronous remote probe and
// returns the local result immediately. The remote reply, if one comes,
// lands in this table for later probes of the same position.
func (t *Table) ProbeAt(hash uint64, depth int) (value int32, d int, flag uint64, best int, ok bool) {
	value, d, flag, best, ok = t.Probe(hash)
	if t == nil {
		return
	}
	if h := t.remote.Load(); h != nil && depth >= h.minDepth && (!ok || d < depth) {
		h.r.Probe(hash, depth)
	}
	return
}

// StoreShared is Store plus the remote tier: entries deep enough for the
// depth gate are also forwarded (asynchronously) to the owning shard.
// The remote layer itself installs replies and remote stores via plain
// Store, which never forwards — that asymmetry is what prevents echo.
func (t *Table) StoreShared(hash uint64, value int32, depth int, flag uint64, best int) bool {
	evicted := t.Store(hash, value, depth, flag, best)
	if t == nil {
		return false
	}
	if h := t.remote.Load(); h != nil && depth >= h.minDepth {
		h.r.Store(hash, value, depth, flag, best)
	}
	return evicted
}
