package engine

import (
	"math/bits"
	"sync/atomic"
)

// Hasher is an optional interface for Position: a position that can hash
// itself enables the transposition table. Hashes must be (with high
// probability) unique per position and identical for transposed positions
// that are truly equivalent.
type Hasher interface {
	Hash() uint64
}

// Bound flags for table entries.
const (
	boundExact uint64 = iota
	boundLower
	boundUpper
)

// Table is a fixed-size lock-free transposition table shared between
// goroutines. Each entry is a pair of 64-bit words written atomically
// with the standard XOR validation trick (key^data, data): a torn
// read/write is detected by the checksum failing, never returned as a
// wrong entry. Collisions overwrite (replace-always), which is safe
// because table hits are advisory.
type Table struct {
	words []atomic.Uint64 // 2 per entry
	mask  uint64
}

// NewTable allocates a table with at least the given number of entries
// (rounded up to a power of two). Sizes below 1 panic.
func NewTable(entries int) *Table {
	if entries < 1 {
		panic("engine: table needs at least one entry")
	}
	n := 1 << bits.Len(uint(entries-1))
	return &Table{words: make([]atomic.Uint64, 2*n), mask: uint64(n - 1)}
}

// pack encodes value, depth, flag and best-move index into one word:
// [ value:32 | depth:16 | flag:2 | best:14 ].
func packEntry(value int32, depth int, flag uint64, best int) uint64 {
	if best < 0 || best >= 1<<14-1 {
		best = 1<<14 - 1 // sentinel: no move
	}
	return uint64(uint32(value))<<32 | uint64(uint16(depth))<<16 | flag<<14 | uint64(best)
}

func unpackEntry(d uint64) (value int32, depth int, flag uint64, best int) {
	value = int32(uint32(d >> 32))
	depth = int(uint16(d >> 16))
	flag = (d >> 14) & 3
	best = int(d & (1<<14 - 1))
	if best == 1<<14-1 {
		best = -1
	}
	return
}

// Store records a search result for the position with the given hash.
func (t *Table) Store(hash uint64, value int32, depth int, flag uint64, best int) {
	if t == nil {
		return
	}
	d := packEntry(value, depth, flag, best)
	i := (hash & t.mask) * 2
	t.words[i].Store(hash ^ d)
	t.words[i+1].Store(d)
}

// Probe looks the position up. ok is false on a miss (or a torn entry).
func (t *Table) Probe(hash uint64) (value int32, depth int, flag uint64, best int, ok bool) {
	if t == nil {
		return 0, 0, 0, -1, false
	}
	i := (hash & t.mask) * 2
	k := t.words[i].Load()
	d := t.words[i+1].Load()
	if k^d != hash {
		return 0, 0, 0, -1, false
	}
	value, depth, flag, best = unpackEntry(d)
	return value, depth, flag, best, true
}

// Len returns the capacity in entries.
func (t *Table) Len() int { return len(t.words) / 2 }
