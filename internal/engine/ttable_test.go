package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEntryPackRoundTrip(t *testing.T) {
	f := func(value int32, depth uint16, flag uint8, best uint16, gen uint8) bool {
		fl := uint64(flag % 3)
		b := int(best % 1000)
		d := int(depth) % (ttDepthMax + 1)
		g := int(gen) & ttGenMask
		e := packEntry(value, d, fl, b, g)
		v2, d2, f2, b2 := unpackEntry(e)
		return v2 == value && d2 == d && f2 == fl && b2 == b && entryGen(e) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The no-move sentinel round-trips to -1.
	if _, _, _, b := unpackEntry(packEntry(5, 3, BoundExact, -1, 0)); b != -1 {
		t.Errorf("sentinel best = %d", b)
	}
}

// Negative depths (depth-unlimited searches) used to wrap to 65535 via the
// uint16 conversion, making every later `stored >= wanted` probe
// comparison bogus; they must clamp to the "no horizon" maximum instead.
func TestNegativeDepthClamps(t *testing.T) {
	for _, depth := range []int{-1, -5, -1 << 20} {
		if _, d, _, _ := unpackEntry(packEntry(9, depth, BoundExact, 2, 0)); d != ttDepthMax {
			t.Errorf("packEntry(depth=%d) round-trips to %d, want %d", depth, d, ttDepthMax)
		}
	}
	// Over-wide positive depths clamp too, rather than corrupting fields.
	if _, d, _, _ := unpackEntry(packEntry(9, ttDepthMax+1, BoundExact, 2, 0)); d != ttDepthMax {
		t.Errorf("oversized depth round-trips to %d, want %d", d, ttDepthMax)
	}
	tab := NewTable(64)
	tab.Store(77, 3, -1, BoundExact, 1)
	v, d, _, _, ok := tab.Probe(77)
	if !ok || v != 3 || d != ttDepthMax {
		t.Errorf("stored depth -1: got v=%d d=%d ok=%v, want v=3 d=%d", v, d, ok, ttDepthMax)
	}
	// A depth-unlimited entry satisfies any probe's depth requirement.
	if d < 20 || d < -1 {
		t.Errorf("clamped depth %d does not dominate finite requests", d)
	}
}

// A depth-unlimited (negative depth) search must return the same exact
// values with and without a transposition table — the regression the old
// uint16 wraparound broke.
func TestSearchTTDepthUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		var next uint64
		pos := buildHashed(rng, 3+rng.Intn(3), 3, &next)
		plain := Search(pos, -1)
		tab := NewTable(1 << 12)
		tt, err := SearchTT(context.Background(), pos, -1, SearchOptions{Table: tab})
		if err != nil || plain.Value != tt.Value {
			t.Fatalf("trial %d: plain %d != tt %d (err %v)", trial, plain.Value, tt.Value, err)
		}
		// A second pass over the warm table must agree as well.
		if again, err := SearchTT(context.Background(), pos, -1, SearchOptions{Table: tab}); err != nil || again.Value != plain.Value {
			t.Fatalf("trial %d: warm tt %d != plain %d (err %v)", trial, again.Value, plain.Value, err)
		}
	}
}

func TestTableStoreProbe(t *testing.T) {
	tab := NewTable(1000)
	if tab.Len() != 1024 {
		t.Errorf("capacity %d, want 1024", tab.Len())
	}
	tab.Store(42, -7, 5, BoundLower, 2)
	v, d, f, b, ok := tab.Probe(42)
	if !ok || v != -7 || d != 5 || f != BoundLower || b != 2 {
		t.Errorf("probe: %v %v %v %v %v", v, d, f, b, ok)
	}
	if _, _, _, _, ok := tab.Probe(43); ok {
		t.Error("phantom hit")
	}
	// Same-position stores refresh in place.
	tab.Store(42, 11, 6, BoundExact, 3)
	if v, d, _, _, ok := tab.Probe(42); !ok || v != 11 || d != 6 {
		t.Errorf("refresh lost: %v %v %v", v, d, ok)
	}
	// A colliding hash (same bucket) lands in another way of the 4-way
	// bucket: both entries survive, and neither false-hits the other.
	other := uint64(42 + 4*tab.Len())
	tab.Store(other, 9, 1, BoundExact, 0)
	if v, _, _, _, ok := tab.Probe(42); !ok || v != 11 {
		t.Error("bucketed entry evicted by a single collision")
	}
	if v, _, _, _, ok := tab.Probe(other); !ok || v != 9 {
		t.Error("colliding entry lost")
	}
	var nilTab *Table
	nilTab.Store(1, 1, 1, BoundExact, 0) // must not panic
	nilTab.Advance()
	if _, _, _, _, ok := nilTab.Probe(1); ok {
		t.Error("nil table hit")
	}
}

// Depth-preferred aging replacement: when a bucket overflows, the
// shallowest stale entry goes first and deep current entries survive.
func TestTableBucketReplacement(t *testing.T) {
	tab := NewTable(bucketWays) // a single bucket
	buckets := uint64(tab.Len() / bucketWays)
	// Fill the bucket with same-bucket hashes at increasing depths.
	for i := 0; i < bucketWays; i++ {
		tab.Store(uint64(i)*buckets, int32(i), i+2, BoundExact, 0)
	}
	// Overflow with a deep entry: the shallowest (depth 2) is evicted.
	extra := uint64(bucketWays) * buckets
	tab.Store(extra, 99, 9, BoundExact, 0)
	if _, _, _, _, ok := tab.Probe(0); ok {
		t.Error("shallowest entry should have been evicted")
	}
	if v, _, _, _, ok := tab.Probe(extra); !ok || v != 99 {
		t.Error("new deep entry missing")
	}
	for i := 1; i < bucketWays; i++ {
		if _, _, _, _, ok := tab.Probe(uint64(i) * buckets); !ok {
			t.Errorf("deeper entry %d lost", i)
		}
	}
	// Aging: after many generations, even a deep entry yields to a
	// current shallow one.
	for i := 0; i < ttGenMask; i++ {
		tab.Advance()
	}
	tab.Store(extra+buckets, 7, 3, BoundExact, 0)
	if v, _, _, _, ok := tab.Probe(extra + buckets); !ok || v != 7 {
		t.Error("current shallow entry could not displace stale deep ones")
	}
}

func TestTableConcurrentTornWrites(t *testing.T) {
	tab := NewTable(4) // tiny: force constant collisions
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				h := rng.Uint64()
				val := int32(h >> 33)
				tab.Store(h, val, int(h%64), BoundExact, int(h%7))
				if v, _, _, _, ok := tab.Probe(h); ok && v != val {
					// A hit must carry the value stored under that
					// exact hash; the XOR checksum guarantees it.
					t.Errorf("corrupted read: %d != %d", v, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTable(0)
}

// hashedPos is a tree position with identity hashing for TT tests.
type hashedPos struct {
	*treePos
	id uint64
}

func buildHashed(rng *rand.Rand, depth, maxKids int, next *uint64) hashedPos {
	p := buildRandomPos(rng, 0, 1) // leaf shell; we rebuild kids below
	p.kids = nil
	p.val = int32(rng.Intn(201) - 100)
	h := hashedPos{treePos: p, id: *next}
	*next++
	if depth == 0 {
		return h
	}
	n := 1 + rng.Intn(maxKids)
	for i := 0; i < n; i++ {
		child := buildHashed(rng, depth-1, maxKids, next)
		p.kids = append(p.kids, child.treePos)
	}
	return h
}

func (h hashedPos) Hash() uint64 { return h.id }

func TestSearchTTMatchesPlain(t *testing.T) {
	// Trees have no transpositions, so the TT can only help ordering —
	// values must be identical to the plain search.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var next uint64
		depth := 2 + rng.Intn(4)
		pos := buildHashed(rng, depth, 4, &next)
		plain := Search(pos, depth)
		tt, err := SearchTT(context.Background(), pos, depth, SearchOptions{Table: NewTable(1 << 12)})
		if err != nil || plain.Value != tt.Value {
			t.Fatalf("trial %d: plain %d != tt %d (err %v)", trial, plain.Value, tt.Value, err)
		}
	}
}

func TestSearchIterativeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		var next uint64
		depth := 3 + rng.Intn(3)
		pos := buildHashed(rng, depth, 3, &next)
		direct := Search(pos, depth)
		iter, pv, err := SearchIterative(context.Background(), pos, depth, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if iter.Value != direct.Value {
			t.Fatalf("trial %d: iterative %d != direct %d", trial, iter.Value, direct.Value)
		}
		if len(pv) == 0 || pv[0] != iter.Best {
			t.Fatalf("trial %d: pv %v does not start with best move %d", trial, pv, iter.Best)
		}
		if len(pv) > depth {
			t.Fatalf("trial %d: pv longer than depth: %v", trial, pv)
		}
		// Every PV move must be legal.
		cur := Position(pos)
		for i, mv := range pv {
			moves := cur.Moves()
			if mv < 0 || mv >= len(moves) {
				t.Fatalf("trial %d: pv[%d]=%d illegal (%d moves)", trial, i, mv, len(moves))
			}
			cur = moves[mv]
		}
	}
}

func TestSearchIterativeCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var next uint64
	pos := buildHashed(rng, 12, 3, &next)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SearchIterative(ctx, pos, 12, SearchOptions{}); err != ErrCancelled {
		t.Errorf("want ErrCancelled, got %v", err)
	}
}

func TestSearchParallelTTMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		var next uint64
		depth := 4 + rng.Intn(3)
		pos := buildHashed(rng, depth, 3, &next)
		plain := Search(pos, depth)
		par, err := SearchParallelTT(context.Background(), pos, depth,
			SearchOptions{Table: NewTable(1 << 12), Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Value != plain.Value {
			t.Fatalf("trial %d: parallel-tt %d != plain %d", trial, par.Value, plain.Value)
		}
	}
}
