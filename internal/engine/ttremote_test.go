package engine

import "testing"

// fakeRemote records the traffic the two-level hook forwards.
type fakeRemote struct {
	probes []uint64
	stores []uint64
}

func (f *fakeRemote) Probe(hash uint64, depth int) { f.probes = append(f.probes, hash) }
func (f *fakeRemote) Store(hash uint64, value int32, depth int, flag uint64, best int) {
	f.stores = append(f.stores, hash)
}

func TestTableRemoteHook(t *testing.T) {
	tab := NewTable(64)
	rem := &fakeRemote{}
	tab.SetRemote(rem, 4)

	// Below the depth gate: miss stays local, no remote probe.
	if _, _, _, _, ok := tab.ProbeAt(100, 3); ok || len(rem.probes) != 0 {
		t.Fatalf("shallow miss leaked to remote: probes=%v", rem.probes)
	}
	// At the gate: a miss issues a remote probe.
	if _, _, _, _, ok := tab.ProbeAt(100, 4); ok {
		t.Fatal("phantom hit")
	}
	if len(rem.probes) != 1 || rem.probes[0] != 100 {
		t.Fatalf("deep miss did not probe remote: %v", rem.probes)
	}

	// Deep store forwards; shallow store does not.
	tab.StoreShared(100, 5, 6, BoundExact, 1)
	tab.StoreShared(200, 7, 2, BoundExact, 0)
	if len(rem.stores) != 1 || rem.stores[0] != 100 {
		t.Fatalf("store forwarding wrong: %v", rem.stores)
	}

	// A sufficient local entry suppresses the remote probe...
	rem.probes = nil
	if v, _, _, _, ok := tab.ProbeAt(100, 5); !ok || v != 5 {
		t.Fatalf("local hit lost: ok=%v v=%d", ok, v)
	}
	if len(rem.probes) != 0 {
		t.Fatalf("sufficient local entry still probed remote: %v", rem.probes)
	}
	// ...but a too-shallow local entry still asks the remote for better.
	if v, _, _, _, ok := tab.ProbeAt(100, 8); !ok || v != 5 {
		t.Fatalf("local hit lost at depth 8: ok=%v v=%d", ok, v)
	}
	if len(rem.probes) != 1 {
		t.Fatalf("shallow local entry did not probe remote: %v", rem.probes)
	}

	// Plain Store never forwards — the remote layer installs replies with
	// it, and forwarding there would echo entries back and forth.
	tab.Store(300, 9, 9, BoundExact, 0)
	if len(rem.stores) != 1 {
		t.Fatalf("plain Store forwarded: %v", rem.stores)
	}

	// Detach: traffic stops, local behaviour intact.
	tab.SetRemote(nil, 0)
	tab.ProbeAt(999, 9)
	tab.StoreShared(999, 1, 9, BoundExact, 0)
	if len(rem.probes) != 1 || len(rem.stores) != 1 {
		t.Fatalf("detached remote still saw traffic: %v %v", rem.probes, rem.stores)
	}

	// Nil table: every entry point is a no-op, never a panic.
	var nilTab *Table
	nilTab.SetRemote(rem, 0)
	nilTab.ProbeAt(1, 9)
	nilTab.StoreShared(1, 1, 9, BoundExact, 0)
}
