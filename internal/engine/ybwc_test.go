package engine

// Tests of the recursive YBWC splitting discipline: node parity with the
// sequential search at one worker, the nested split/abort accounting, and
// the chained abort rule draining multiple levels of split points.

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"gametree/internal/telemetry"
)

// TestYBWCNodeParityOneWorker: with one worker the owner pops its own
// tasks in sequential move order and the shared alpha mirrors the
// sequential loop's, so the YBWC path must visit exactly the sequential
// node count and return identical values and best moves — on the random
// fixture suite and on the pessimal tree. The windows are finite inside
// speculative subtrees (unlike the old spine-only splitter's full-window
// tasks), so nested beta cutoffs fire even with no concurrency; the test
// also pins that those cutoffs happen at all.
func TestYBWCNodeParityOneWorker(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	var drains int64
	for trial := 0; trial < 10; trial++ {
		depth := 5 + rng.Intn(3)
		p := buildRandomPos(rng, depth, 4)
		seq := Search(p, depth)

		rec := telemetry.NewRecorder()
		par, err := SearchParallelOpt(ctx, p, depth,
			SearchOptions{Workers: 1, Telemetry: rec})
		if err != nil {
			t.Fatal(err)
		}
		if par.Value != seq.Value || par.Best != seq.Best {
			t.Fatalf("trial %d: YBWC w=1 got (value %d, best %d), sequential (value %d, best %d)",
				trial, par.Value, par.Best, seq.Value, seq.Best)
		}
		if par.Nodes != seq.Nodes {
			t.Fatalf("trial %d: YBWC w=1 visited %d nodes, sequential %d",
				trial, par.Nodes, seq.Nodes)
		}
		drains += rec.Snapshot().Total.AbortDrains
	}
	if drains == 0 {
		t.Fatal("no abort drains across the suite: nested split windows are not producing cutoffs")
	}

	// Pessimal tree: same parity on the fixture the benchmarks use.
	const depth, branch = 7, 4
	tree := (*BenchTreeAppender)(NewPessimalTree(depth, branch, 0))
	seq := Search(tree, depth)
	par, err := SearchParallel(ctx, tree, depth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par.Value != seq.Value || par.Nodes != seq.Nodes {
		t.Fatalf("pessimal tree: YBWC w=1 (value %d, nodes %d), sequential (value %d, nodes %d)",
			par.Value, par.Nodes, seq.Value, seq.Nodes)
	}
}

// TestYBWCNestedAccounting pins the split accounting of the recursive
// discipline on the pessimal tree at one worker, where scheduling is
// deterministic: the phase-1 spine opens exactly depth-horizon splits
// with no enclosing split (up == nil), and every other split opens inside
// a speculative subtree and must be counted as nested.
func TestYBWCNestedAccounting(t *testing.T) {
	const depth, branch = 6, 4
	tree := NewPessimalTree(depth, branch, 0)
	rec := telemetry.NewRecorder()
	if _, err := SearchParallelOpt(context.Background(), (*BenchTreeAppender)(tree), depth,
		SearchOptions{Workers: 1, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	c := rec.Snapshot().Total
	spine := int64(depth - seqSplitDepth)
	if c.Splits-c.NestedSplits != spine {
		t.Fatalf("splits %d, nested %d: want exactly %d non-nested spine splits",
			c.Splits, c.NestedSplits, spine)
	}
	if c.NestedSplits == 0 {
		t.Fatal("pessimal tree opened no nested splits: tasks are not re-entering the searcher")
	}
	if c.Tasks+c.Aborts < c.Splits {
		t.Fatalf("task accounting: %d tasks + %d aborts < %d splits", c.Tasks, c.Aborts, c.Splits)
	}
}

// gatedLeaf is a leaf position whose Evaluate can block on a channel,
// close another, or sleep — the scaffolding of the booby-trapped tree in
// TestYBWCNestedAbortDrain. A blocked Evaluate times out (loudly, via
// fallthrough after 10s) rather than deadlocking the suite.
type gatedLeaf struct {
	val     int32
	waitFor chan struct{} // block until closed (nil = don't)
	closes  chan struct{} // close on first evaluation (nil = don't)
	sleep   time.Duration
	closed  atomic.Bool
}

func (g *gatedLeaf) Moves() []Position { return nil }
func (g *gatedLeaf) Evaluate() int32 {
	if g.closes != nil && g.closed.CompareAndSwap(false, true) {
		close(g.closes)
	}
	if g.waitFor != nil {
		select {
		case <-g.waitFor:
		case <-time.After(10 * time.Second):
		}
	}
	if g.sleep > 0 {
		time.Sleep(g.sleep)
	}
	return g.val
}

// node is a plain interior position over explicit children.
type node struct{ kids []Position }

func (n *node) Moves() []Position { return n.kids }
func (n *node) Evaluate() int32   { return 0 }

// TestYBWCNestedAbortDrain builds a booby-trapped tree where a beta
// cutoff at a grandparent split must drain two levels of split points:
//
//	R (depth 5)          — phase 1 on C0 raises root alpha to 10,
//	├── C0 = -10           then splits S0 over X
//	└── X (depth 4)      — eldest X0 leaves alpha < beta, splits S1
//	    ├── X0 = 20        (nested under S0) over X1..X3
//	    ├── X1 (depth 3) — splits S2 (nested under S1) over Y1..Y6
//	    │   ├── Y0 = -12
//	    │   └── Y1..Y6 = -12 (Y1 opens the gate; Y2.. sleep)
//	    ├── X2 = 8       — blocks until S2 is open, then completes and
//	    │                  raises the beta cutoff at S1
//	    └── X3 = 50      — blocks alongside X2 (steal fodder)
//
// X is searched with window (-inf, -10); X2's completion gives S1 alpha
// -8 >= beta -10, aborting S1 while S2 still holds sleeping and queued
// siblings. The chained abort (S2.up == S1) must pre-empt them all:
// every pending sibling completes ok=false, nothing partial merges (the
// root value stays exact), and the nested-abort counter records the
// ancestor-driven skips. Run under -race in CI.
func TestYBWCNestedAbortDrain(t *testing.T) {
	s2open := make(chan struct{})
	leaf := func(v int32) Position { return &gatedLeaf{val: v} }

	ykids := []Position{&gatedLeaf{val: -12}, &gatedLeaf{val: -12, closes: s2open}}
	for i := 0; i < 5; i++ {
		ykids = append(ykids, &gatedLeaf{val: -12, sleep: 150 * time.Millisecond})
	}
	x1 := &node{kids: ykids}
	x := &node{kids: []Position{
		leaf(20),
		x1,
		&gatedLeaf{val: 8, waitFor: s2open},
		&gatedLeaf{val: 50, waitFor: s2open},
	}}
	root := &node{kids: []Position{leaf(-10), x}}

	// Hand-computed minimax: X1 = 12, X = max(-20,-12,-8,-50) = -8,
	// R = max(10, 8) = 10 with best move 0. The raised watermark forces
	// eager splitting — the demand-driven gate would otherwise keep the
	// owner sequential while X2/X3 sit queued, and this test is about
	// the abort machinery, not the gate policy.
	rec := telemetry.NewRecorder()
	r, err := searchPooled(context.Background(), root, 5, 4, nil, rec,
		poolConfig{watermark: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 10 || r.Best != 0 {
		t.Fatalf("got (value %d, best %d), want (10, 0): a pre-empted sibling's partial value merged",
			r.Value, r.Best)
	}

	c := rec.Snapshot().Total
	if c.Splits != 3 || c.NestedSplits != 2 {
		t.Fatalf("splits %d (nested %d), want 3 (2): S0 at the root, S1 and S2 nested",
			c.Splits, c.NestedSplits)
	}
	if c.AbortDrains == 0 {
		t.Fatal("S1's beta cutoff recorded no abort drain")
	}
	if c.NestedAborts == 0 {
		t.Fatal("no nested aborts: S2's pending siblings were not pre-empted by the ancestor cutoff")
	}
}
