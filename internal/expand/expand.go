// Package expand implements the node-expansion model of Sections 1 and 5
// of Karp & Zhang (1989). The algorithm is given only the root of the
// input tree; applying the node-expansion operation to a node either
// reveals its leaf value or produces its children. The unit of work is one
// expansion; a basic step expands a set of nodes simultaneously.
//
// The package provides N-Sequential SOLVE and N-Parallel SOLVE of width w
// for NOR trees, and N-Sequential alpha-beta and N-Parallel alpha-beta of
// width w for MIN/MAX trees. The simulators operate on a fully
// materialized tree but only ever inspect nodes that have been generated,
// so they are faithful to the model.
package expand

import (
	"errors"
	"fmt"
	"math"

	"gametree/internal/tree"
)

// ErrStepLimit is returned when a simulation exceeds its MaxSteps budget.
var ErrStepLimit = errors.New("expand: step limit exceeded")

// Metrics is the outcome of one node-expansion run.
type Metrics struct {
	Value      int32
	Steps      int64   // basic steps (running time)
	Work       int64   // total node expansions
	Processors int     // max expansions in one step
	DegreeHist []int64 // DegreeHist[k] = steps of parallel degree k

	// Expanded lists expansions in order when Options.RecordNodes is set.
	Expanded []tree.NodeID
}

// Options configures a run.
type Options struct {
	RecordNodes bool
	MaxSteps    int64
}

func (m *Metrics) recordStep(degree int) {
	m.Steps++
	m.Work += int64(degree)
	if degree > m.Processors {
		m.Processors = degree
	}
	for len(m.DegreeHist) <= degree {
		m.DegreeHist = append(m.DegreeHist, 0)
	}
	m.DegreeHist[degree]++
}

// ---------------------------------------------------------------------------
// NOR trees

type norState struct {
	t        *tree.Tree
	expanded []bool
	det      []int8 // determined value in T*, -1 unknown
	zeroKids []int32
	selected []tree.NodeID
}

func newNorState(t *tree.Tree) *norState {
	if t.Kind != tree.NOR {
		panic("expand: SOLVE algorithms require a NOR tree")
	}
	s := &norState{
		t:        t,
		expanded: make([]bool, t.Len()),
		det:      make([]int8, t.Len()),
		zeroKids: make([]int32, t.Len()),
	}
	for i := range s.det {
		s.det[i] = -1
	}
	return s
}

func (s *norState) determine(v tree.NodeID, b int8) {
	for v != tree.None {
		if s.det[v] >= 0 {
			return
		}
		s.det[v] = b
		p := s.t.Node(v).Parent
		if p == tree.None {
			return
		}
		if b == 1 {
			b, v = 0, p
			continue
		}
		s.zeroKids[p]++
		if s.zeroKids[p] == s.t.Node(p).NumChildren {
			b, v = 1, p
			continue
		}
		return
	}
}

// expand applies the node-expansion operation to v.
func (s *norState) expand(v tree.NodeID) {
	s.expanded[v] = true
	if s.t.IsLeaf(v) {
		s.determine(v, int8(s.t.LeafValue(v)))
	}
	// For internal nodes, expansion generates the children; generation is
	// implicit (a node is generated iff its parent is expanded).
}

// collect gathers live frontier nodes (generated = parent expanded, live =
// no determined ancestor, not yet expanded) with pruning number at most
// budget, in left-to-right order.
func (s *norState) collect(v tree.NodeID, budget int) {
	if !s.expanded[v] {
		s.selected = append(s.selected, v)
		return
	}
	nd := s.t.Node(v)
	if nd.NumChildren == 0 {
		return // expanded leaf: determined, never reached (dead)
	}
	live := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.det[c] >= 0 {
			continue
		}
		if budget-live < 0 {
			return
		}
		s.collect(c, budget-live)
		live++
	}
}

func (s *norState) run(w int, opt Options) (Metrics, error) {
	var m Metrics
	for s.det[0] < 0 {
		s.selected = s.selected[:0]
		s.collect(0, w)
		if len(s.selected) == 0 {
			return m, fmt.Errorf("expand: no frontier nodes but root undetermined (bug)")
		}
		for _, v := range s.selected {
			s.expand(v)
		}
		if opt.RecordNodes {
			m.Expanded = append(m.Expanded, s.selected...)
		}
		m.recordStep(len(s.selected))
		if opt.MaxSteps > 0 && m.Steps > opt.MaxSteps {
			return m, ErrStepLimit
		}
	}
	m.Value = int32(s.det[0])
	return m, nil
}

// NSequentialSolve runs N-Sequential SOLVE: at each step, expand the
// leftmost frontier node.
func NSequentialSolve(t *tree.Tree, opt Options) (Metrics, error) {
	return NParallelSolve(t, 0, opt)
}

// NParallelSolve runs N-Parallel SOLVE of width w: at each step, expand
// all frontier nodes with pruning number at most w. Width 0 is identical
// to N-Sequential SOLVE (Section 5); width 1 is the algorithm of
// Theorem 4.
func NParallelSolve(t *tree.Tree, w int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("expand: width must be >= 0, got %d", w)
	}
	s := newNorState(t)
	return s.run(w, opt)
}

// ---------------------------------------------------------------------------
// MIN/MAX trees

const (
	negInf = math.MinInt32
	posInf = math.MaxInt32
)

type minmaxState struct {
	t         *tree.Tree
	expanded  []bool
	deleted   []bool
	finished  []bool
	val       []int32
	finKids   []int32
	liveKids  []int32
	workBelow []int32 // expansions in the subtree, guides the pruning walk
	selected  []tree.NodeID
}

func newMinmaxState(t *tree.Tree) *minmaxState {
	if t.Kind != tree.MinMax {
		panic("expand: alpha-beta algorithms require a MinMax tree")
	}
	s := &minmaxState{
		t:         t,
		expanded:  make([]bool, t.Len()),
		deleted:   make([]bool, t.Len()),
		finished:  make([]bool, t.Len()),
		val:       make([]int32, t.Len()),
		finKids:   make([]int32, t.Len()),
		liveKids:  make([]int32, t.Len()),
		workBelow: make([]int32, t.Len()),
	}
	for i := range s.liveKids {
		s.liveKids[i] = t.Node(tree.NodeID(i)).NumChildren
	}
	return s
}

func (s *minmaxState) refreshValue(v tree.NodeID) {
	nd := s.t.Node(v)
	first := true
	var best int32
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || !s.finished[c] {
			continue
		}
		cv := s.val[c]
		if first {
			best, first = cv, false
			continue
		}
		if s.t.IsMaxNode(v) == (cv > best) {
			best = cv
		}
	}
	if first {
		panic("expand: refreshValue with no finished children")
	}
	s.val[v] = best
}

func (s *minmaxState) maybeFinish(p tree.NodeID) {
	for p != tree.None && s.expanded[p] && !s.finished[p] && s.liveKids[p] > 0 && s.finKids[p] == s.liveKids[p] {
		s.refreshValue(p)
		s.finished[p] = true
		q := s.t.Node(p).Parent
		if q != tree.None {
			s.finKids[q]++
		}
		p = q
	}
}

func (s *minmaxState) expand(v tree.NodeID) {
	s.expanded[v] = true
	if s.t.IsLeaf(v) {
		s.finished[v] = true
		s.val[v] = s.t.LeafValue(v)
		if p := s.t.Node(v).Parent; p != tree.None {
			s.finKids[p]++
			s.maybeFinish(p)
		}
	}
	for x := v; x != tree.None; x = s.t.Node(x).Parent {
		s.workBelow[x]++
	}
}

func (s *minmaxState) deleteSubtree(v tree.NodeID) {
	s.deleted[v] = true
	p := s.t.Node(v).Parent
	if p == tree.None {
		return
	}
	s.liveKids[p]--
	if s.finished[v] {
		s.finKids[p]--
	}
	s.maybeFinish(p)
}

func (s *minmaxState) prunePass() bool {
	pruned := false
	var walk func(v tree.NodeID, alpha, beta int64)
	walk = func(v tree.NodeID, alpha, beta int64) {
		if !s.expanded[v] {
			return
		}
		nd := s.t.Node(v)
		if nd.NumChildren == 0 {
			return
		}
		isMax := s.t.IsMaxNode(v)
		contrib := int64(negInf)
		if !isMax {
			contrib = int64(posInf)
		}
		have := false
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.deleted[c] || !s.finished[c] {
				continue
			}
			cv := int64(s.val[c])
			if isMax == (cv > contrib) {
				contrib = cv
			}
			have = true
		}
		ca, cb := alpha, beta
		if have {
			if isMax {
				if contrib > ca {
					ca = contrib
				}
			} else if contrib < cb {
				cb = contrib
			}
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			if s.deleted[c] || s.finished[c] {
				continue
			}
			if ca >= cb {
				s.deleteSubtree(c)
				pruned = true
				continue
			}
			if s.workBelow[c] > 0 {
				walk(c, ca, cb)
			}
		}
	}
	if !s.finished[0] {
		walk(0, int64(negInf), int64(posInf))
	}
	return pruned
}

// collect gathers non-deleted, unexpanded nodes of the pruned generated
// tree with pruning number at most budget (counting unfinished
// left-siblings of ancestors).
func (s *minmaxState) collect(v tree.NodeID, budget int) {
	if !s.expanded[v] {
		s.selected = append(s.selected, v)
		return
	}
	nd := s.t.Node(v)
	unfinished := 0
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.deleted[c] || s.finished[c] {
			continue
		}
		if budget-unfinished < 0 {
			return
		}
		s.collect(c, budget-unfinished)
		unfinished++
	}
}

func (s *minmaxState) run(w int, opt Options) (Metrics, error) {
	var m Metrics
	for !s.finished[0] {
		s.selected = s.selected[:0]
		s.collect(0, w)
		if len(s.selected) == 0 {
			return m, fmt.Errorf("expand: no frontier nodes but root unfinished (bug)")
		}
		for _, v := range s.selected {
			s.expand(v)
		}
		if opt.RecordNodes {
			m.Expanded = append(m.Expanded, s.selected...)
		}
		m.recordStep(len(s.selected))
		for s.prunePass() {
		}
		if opt.MaxSteps > 0 && m.Steps > opt.MaxSteps {
			return m, ErrStepLimit
		}
	}
	m.Value = s.val[0]
	return m, nil
}

// NSequentialAlphaBeta runs the node-expansion version of the sequential
// alpha-beta pruning procedure: expand the leftmost unexpanded node of the
// pruned generated tree.
func NSequentialAlphaBeta(t *tree.Tree, opt Options) (Metrics, error) {
	return NParallelAlphaBeta(t, 0, opt)
}

// NParallelAlphaBeta runs the node-expansion version of Parallel
// alpha-beta of width w (Section 5 notes the conversion; Theorem 3's
// speedup carries over).
func NParallelAlphaBeta(t *tree.Tree, w int, opt Options) (Metrics, error) {
	if w < 0 {
		return Metrics{}, fmt.Errorf("expand: width must be >= 0, got %d", w)
	}
	s := newMinmaxState(t)
	return s.run(w, opt)
}

// collectLeftmost gathers the leftmost `limit` live frontier nodes (the
// step of N-Team SOLVE).
func (s *norState) collectLeftmost(v tree.NodeID, limit int) {
	if len(s.selected) >= limit {
		return
	}
	if !s.expanded[v] {
		s.selected = append(s.selected, v)
		return
	}
	nd := s.t.Node(v)
	for i := int32(0); i < nd.NumChildren; i++ {
		c := nd.FirstChild + tree.NodeID(i)
		if s.det[c] >= 0 {
			continue
		}
		s.collectLeftmost(c, limit)
		if len(s.selected) >= limit {
			return
		}
	}
}

// NTeamSolve runs the node-expansion Team SOLVE: at each step, expand the
// leftmost p live frontier nodes. With p=1 it is N-Sequential SOLVE.
func NTeamSolve(t *tree.Tree, p int, opt Options) (Metrics, error) {
	if p < 1 {
		return Metrics{}, fmt.Errorf("expand: NTeamSolve requires p >= 1, got %d", p)
	}
	s := newNorState(t)
	var m Metrics
	for s.det[0] < 0 {
		s.selected = s.selected[:0]
		s.collectLeftmost(0, p)
		if len(s.selected) == 0 {
			return m, fmt.Errorf("expand: no frontier nodes but root undetermined (bug)")
		}
		for _, v := range s.selected {
			s.expand(v)
		}
		if opt.RecordNodes {
			m.Expanded = append(m.Expanded, s.selected...)
		}
		m.recordStep(len(s.selected))
		if opt.MaxSteps > 0 && m.Steps > opt.MaxSteps {
			return m, ErrStepLimit
		}
	}
	m.Value = int32(s.det[0])
	return m, nil
}
