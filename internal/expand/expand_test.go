package expand

import (
	"math/rand"
	"testing"

	"gametree/internal/bounds"
	"gametree/internal/core"
	"gametree/internal/tree"
)

func TestNSolveCorrectValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(6)
		tr := tree.IIDNor(d, n, 0.5, rng.Int63())
		want := tr.Evaluate()
		for w := 0; w <= 3; w++ {
			m, err := NParallelSolve(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d width %d: value %d, want %d", trial, w, m.Value, want)
			}
		}
	}
}

func TestNAlphaBetaCorrectValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := rng.Intn(5)
		tr := tree.IIDMinMax(d, n, -100, 100, rng.Int63())
		want := tr.Evaluate()
		for w := 0; w <= 3; w++ {
			m, err := NParallelAlphaBeta(tr, w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d width %d: value %d, want %d", trial, w, m.Value, want)
			}
		}
	}
}

// Section 5: "The skeleton H_T consists of precisely those nodes of T that
// are expanded by N-Sequential SOLVE on T."
func TestNSequentialSolveExpandsExactlySkeleton(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		n := 1 + rng.Intn(5)
		tr := tree.IIDNor(d, n, 0.5, rng.Int63())
		seq, err := core.SequentialSolve(tr, core.Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		m, err := NSequentialSolve(tr, Options{RecordNodes: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Work != int64(h.Len()) {
			t.Fatalf("trial %d: S*(T)=%d expansions, skeleton has %d nodes", trial, m.Work, h.Len())
		}
		// Cross-check membership: every expanded node is an ancestor of
		// an evaluated leaf.
		inL := map[tree.NodeID]bool{}
		for _, l := range seq.Leaves {
			inL[l] = true
		}
		for _, v := range m.Expanded {
			ok := false
			for _, l := range seq.Leaves {
				if tr.IsAncestor(v, l) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: expanded node %d not in skeleton", trial, v)
			}
		}
	}
}

// Sequential expansion of B(d,n) worst case expands every node.
func TestNSequentialWorstCase(t *testing.T) {
	for _, d := range []int{2, 3} {
		for n := 1; n <= 5; n++ {
			tr := tree.WorstCaseNOR(d, n, 1)
			m, err := NSequentialSolve(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Work != int64(tr.Len()) {
				t.Errorf("B(%d,%d) worst: expanded %d of %d nodes", d, n, m.Work, tr.Len())
			}
		}
	}
}

// Proposition 6: t*_{k+1}(H_T) <= (n-k) C(n,k) (d-1)^k for width-1 runs on
// skeletons.
func TestProposition6(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(4)
		tr := tree.IIDNor(d, n, 0.618, rng.Int63())
		seq, err := core.SequentialSolve(tr, core.Options{RecordLeaves: true})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := tree.Skeleton(tr, seq.Leaves)
		m, err := NParallelSolve(h, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for deg := 1; deg < len(m.DegreeHist); deg++ {
			b := bounds.Prop6Bound(d, n, deg-1)
			if b.IsInt64() && m.DegreeHist[deg] > b.Int64() {
				t.Errorf("trial %d: t*_%d = %d exceeds Prop 6 bound %d",
					trial, deg, m.DegreeHist[deg], b.Int64())
			}
		}
	}
}

func TestNWidthZeroOneExpansionPerStep(t *testing.T) {
	tr := tree.IIDNor(3, 4, 0.5, 5)
	m, err := NSequentialSolve(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Processors != 1 || m.Steps != m.Work {
		t.Errorf("sequential expansion not 1/step: %+v", m)
	}
	mm := tree.IIDMinMax(3, 4, -9, 9, 5)
	m2, err := NSequentialAlphaBeta(mm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Processors != 1 || m2.Steps != m2.Work {
		t.Errorf("sequential alpha-beta expansion not 1/step: %+v", m2)
	}
}

// N-Sequential alpha-beta expands at most the nodes of the full tree and at
// least the leaf-model work (every evaluated leaf costs one expansion, plus
// internal nodes).
func TestNAlphaBetaWorkSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		tr := tree.IIDMinMax(2+rng.Intn(2), 1+rng.Intn(4), -50, 50, rng.Int63())
		leafModel, err := core.SequentialAlphaBeta(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NSequentialAlphaBeta(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Work < leafModel.Work {
			t.Errorf("trial %d: expansions %d < leaves evaluated %d", trial, m.Work, leafModel.Work)
		}
		if m.Work > int64(tr.Len()) {
			t.Errorf("trial %d: expansions %d > tree size %d", trial, m.Work, tr.Len())
		}
	}
}

func TestNParallelFasterThanNSequential(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 9, 1)
	seq, err := NSequentialSolve(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NParallelSolve(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Steps >= seq.Steps {
		t.Errorf("width 1 (%d steps) not faster than sequential (%d steps)", par.Steps, seq.Steps)
	}
}

func TestExpandErrorsAndLimits(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 8, 1)
	if _, err := NParallelSolve(tr, -1, Options{}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NSequentialSolve(tr, Options{MaxSteps: 2}); err != ErrStepLimit {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
	mm := tree.WorstOrderedMinMax(2, 6, 1)
	if _, err := NParallelAlphaBeta(mm, -2, Options{}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NSequentialAlphaBeta(mm, Options{MaxSteps: 2}); err != ErrStepLimit {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
}

func TestExpandSingleLeaf(t *testing.T) {
	nor := tree.FromNested(tree.NOR, 0)
	m, err := NSequentialSolve(nor, Options{})
	if err != nil || m.Value != 0 || m.Work != 1 {
		t.Errorf("NOR leaf: %+v %v", m, err)
	}
	mm := tree.FromNested(tree.MinMax, 13)
	m2, err := NSequentialAlphaBeta(mm, Options{})
	if err != nil || m2.Value != 13 || m2.Work != 1 {
		t.Errorf("MinMax leaf: %+v %v", m2, err)
	}
}

func TestNTeamSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		tr := tree.IIDNor(2+rng.Intn(2), rng.Intn(6), 0.5, rng.Int63())
		want := tr.Evaluate()
		prev := int64(1 << 62)
		for _, p := range []int{1, 2, 4, 8} {
			m, err := NTeamSolve(tr, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d p=%d: value %d, want %d", trial, p, m.Value, want)
			}
			if m.Processors > p {
				t.Fatalf("trial %d p=%d: used %d processors", trial, p, m.Processors)
			}
			if m.Steps > prev {
				t.Fatalf("trial %d p=%d: steps not monotone", trial, p)
			}
			prev = m.Steps
		}
	}
	// p=1 is N-Sequential SOLVE exactly.
	tr := tree.WorstCaseNOR(2, 7, 1)
	a, err := NTeamSolve(tr, 1, Options{RecordNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NSequentialSolve(tr, Options{RecordNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Work != b.Work || a.Steps != b.Steps {
		t.Errorf("NTeamSolve(1) %+v != sequential %+v", a, b)
	}
	for i := range a.Expanded {
		if a.Expanded[i] != b.Expanded[i] {
			t.Fatalf("expansion order differs at %d", i)
		}
	}
	if _, err := NTeamSolve(tr, 0, Options{}); err == nil {
		t.Error("p=0 accepted")
	}
}
