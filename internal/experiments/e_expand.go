package experiments

import (
	"fmt"
	"strconv"

	"gametree/internal/bounds"
	"gametree/internal/core"
	"gametree/internal/expand"
	"gametree/internal/randomized"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

func mustNSolve(t *tree.Tree, w int, opt expand.Options) expand.Metrics {
	m, err := expand.NParallelSolve(t, w, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: NParallelSolve(%d): %v", w, err))
	}
	return m
}

func mustNAB(t *tree.Tree, w int, opt expand.Options) expand.Metrics {
	m, err := expand.NParallelAlphaBeta(t, w, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: NParallelAlphaBeta(%d): %v", w, err))
	}
	return m
}

// E7NodeExpansion — Theorem 4: N-Parallel SOLVE of width 1 achieves
// S*(T)/P*(T) >= c(n+1); and Proposition 6's (corrected) bound
// t*_{k+1} <= (n-k+1) C(n,k) (d-1)^k holds on skeletons. The alpha-beta
// counterparts (Section 5's closing remark) are swept as well.
func E7NodeExpansion(cfg Config) []*stats.Table {
	var tables []*stats.Table

	tb := stats.NewTable("E7a N-Parallel SOLVE width 1 on B(2,n)",
		"n", "kind", "S*(T)", "P*(T)", "speedup", "c=speedup/(n+1)")
	for _, kind := range []string{"worst", "iid-critical"} {
		for n := 4; n <= cfg.pick(14, 8); n += 2 {
			tr := norInstance(kind, 2, n, cfg.seed())
			seq := mustNSolve(tr, 0, expand.Options{})
			par := mustNSolve(tr, 1, expand.Options{})
			speedup := float64(seq.Steps) / float64(par.Steps)
			tb.AddRow(n, kind, seq.Steps, par.Steps, speedup, speedup/float64(n+1))
		}
	}
	tables = append(tables, tb)

	tb2 := stats.NewTable("E7b N-Parallel alpha-beta width 1 on M(2,n) i.i.d. values",
		"n", "S*", "P*", "speedup", "c=speedup/(n+1)")
	for n := 4; n <= cfg.pick(11, 6); n += 2 {
		var sw, pw stats.Welford
		for i := 0; i < cfg.trials(4); i++ {
			tr := tree.IIDMinMax(2, n, -1_000_000, 1_000_000, cfg.seed()+int64(i*17))
			sw.Add(float64(mustNAB(tr, 0, expand.Options{}).Steps))
			pw.Add(float64(mustNAB(tr, 1, expand.Options{}).Steps))
		}
		speedup := sw.Mean() / pw.Mean()
		tb2.AddRow(n, sw.Mean(), pw.Mean(), speedup, speedup/float64(n+1))
	}
	tables = append(tables, tb2)

	// Proposition 6 histogram check on a skeleton.
	d, n := 2, cfg.pick(12, 7)
	tr := norInstance("iid-critical", d, n, cfg.seed())
	seqLeaf := mustSolve(tr, 0, core.Options{RecordLeaves: true})
	h, _ := tree.Skeleton(tr, seqLeaf.Leaves)
	par := mustNSolve(h, 1, expand.Options{})
	tb3 := stats.NewTable("E7c expansion-degree histogram on H_T vs Prop. 6 bound, B(2,"+strconv.Itoa(n)+")",
		"degree k+1", "t*_{k+1}(H_T)", "(n-k+1)C(n,k)(d-1)^k", "within")
	ok := true
	for deg := 1; deg < len(par.DegreeHist); deg++ {
		if par.DegreeHist[deg] == 0 {
			continue
		}
		b := bounds.Prop6Bound(d, n, deg-1)
		within := float64(par.DegreeHist[deg]) <= bounds.Float(b)
		ok = ok && within
		tb3.AddRow(deg, par.DegreeHist[deg], b.String(), within)
	}
	tb3.AddNote("all degrees within the corrected Proposition 6 bound: %v", ok)
	tb3.AddNote("the paper prints the factor as (n-k); its own sum over path lengths m=k..n has n-k+1 terms")
	tables = append(tables, tb3)
	return tables
}

// E8Randomized — Theorems 5 and 6: the randomized parallel algorithms keep
// an expected linear speedup over their randomized sequential
// counterparts, on worst-case instances where determinism is hopeless.
func E8Randomized(cfg Config) []*stats.Table {
	var tables []*stats.Table
	trials := cfg.trials(20)

	tb := stats.NewTable("E8a R-Parallel SOLVE width 1 vs R-Sequential SOLVE, worst-case B(2,n)",
		"n", "E[S_R*]", "E[P_R*]", "expected speedup", "c=speedup/(n+1)")
	for n := 4; n <= cfg.pick(12, 8); n += 2 {
		tr := tree.WorstCaseNOR(2, n, 1)
		seqMean := randomized.ExpectedWork(trials, cfg.seed(), func(seed int64) int64 {
			_, w := randomized.RSequentialSolve(tr, seed)
			return w
		})
		parMean, err := randomized.ExpectedSteps(trials, cfg.seed(), func(seed int64) (expand.Metrics, error) {
			return randomized.RParallelSolve(tr, 1, seed, expand.Options{})
		})
		if err != nil {
			panic(err)
		}
		speedup := seqMean / parMean
		tb.AddRow(n, seqMean, parMean, speedup, speedup/float64(n+1))
	}
	tables = append(tables, tb)

	tb2 := stats.NewTable("E8b R-Parallel alpha-beta width 1 vs R-Sequential alpha-beta, worst-ordered M(2,n)",
		"n", "E[S~_R]", "E[P~_R]", "expected speedup", "c=speedup/(n+1)")
	for n := 4; n <= cfg.pick(10, 6); n += 2 {
		tr := tree.WorstOrderedMinMax(2, n, cfg.seed())
		seqMean := randomized.ExpectedWork(trials, cfg.seed(), func(seed int64) int64 {
			_, w := randomized.RSequentialAlphaBeta(tr, seed)
			return w
		})
		parMean, err := randomized.ExpectedSteps(trials, cfg.seed(), func(seed int64) (expand.Metrics, error) {
			return randomized.RParallelAlphaBeta(tr, 1, seed, expand.Options{})
		})
		if err != nil {
			panic(err)
		}
		speedup := seqMean / parMean
		tb2.AddRow(n, seqMean, parMean, speedup, speedup/float64(n+1))
	}
	tables = append(tables, tb2)
	return tables
}
