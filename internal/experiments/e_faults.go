package experiments

import (
	"fmt"
	"time"

	"gametree/internal/faultnet"
	"gametree/internal/msgpass"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

// faultProtocol is the fast-reaction protocol tuning used by the sweep:
// the defaults are sized for human-scale runs, these for experiment-scale
// ones, so crash recovery fits inside the measured window.
func faultProtocol() msgpass.ProtocolConfig {
	return msgpass.ProtocolConfig{
		HeartbeatEvery:  time.Millisecond,
		DeadAfter:       12 * time.Millisecond,
		RetransmitAfter: time.Millisecond,
		RetransmitMax:   8 * time.Millisecond,
	}
}

// E14Faults — Section 7 under faults: the reliability protocol (ack/
// retransmit, heartbeat crash detection, level reassignment) restores the
// exact root value under message loss, duplication and processor crashes,
// and the pre-emption rule's indifference to stale values makes duplicate
// and reordered delivery semantically free — only loss costs anything,
// and what it costs is retransmits, not correctness.
func E14Faults(cfg Config) []*stats.Table {
	var tables []*stats.Table
	n := cfg.pick(12, 10)
	spin := cfg.pick(5000, 1500)
	trc := tree.WorstCaseNOR(2, n, 1)
	want := trc.Evaluate()

	run := func(net faultnet.Network) (msgpass.Metrics, time.Duration) {
		start := time.Now()
		m, err := msgpass.Evaluate(trc, msgpass.Options{
			Processors:       4,
			WorkPerExpansion: spin,
			Net:              net,
			Protocol:         faultProtocol(),
		})
		el := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("E14 msgpass run failed: %v", err))
		}
		return m, el
	}

	// Baseline: the perfect in-process path (Net nil, zero protocol).
	startClean := time.Now()
	clean, err := msgpass.Evaluate(trc, msgpass.Options{Processors: 4, WorkPerExpansion: spin})
	cleanTime := time.Since(startClean)
	if err != nil || clean.Value != want {
		panic(fmt.Sprintf("E14 baseline failed: %v %+v", err, clean))
	}

	tb := stats.NewTable("E14a retransmit overhead vs drop rate, worst-case B(2,"+fmt.Sprint(n)+"), 4 procs",
		"drop", "value ok", "wire sent", "dropped", "retransmits", "elapsed", "vs clean")
	tb.AddRow("none (Net=nil)", clean.Value == want, "-", "-", "-",
		cleanTime.Round(time.Microsecond).String(), 1.0)
	for _, drop := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		m, el := run(faultnet.NewInjector(faultnet.Config{Seed: cfg.seed(), Drop: drop}))
		tb.AddRow(fmt.Sprintf("%.0f%%", drop*100), m.Value == want,
			m.Net.Sent, m.Net.Dropped, m.Protocol.Retransmits,
			el.Round(time.Microsecond).String(), float64(el)/float64(cleanTime))
	}
	tb.AddNote("every row returns the exact root value; loss costs retransmit latency (bounded by the backoff cap), never correctness")
	tables = append(tables, tb)

	// The "stale/dup delivery is free" claim: node values are deterministic,
	// so the pre-emption rule's staleness filtering already tolerates any
	// re-delivered val — dedup exists for protocol hygiene, not safety.
	tb2 := stats.NewTable("E14b duplication and reordering are free (pre-emption rule claim)",
		"fault", "value ok", "duplicated/delayed", "dup-dropped", "retransmits", "vs clean")
	dup, dupEl := run(faultnet.NewInjector(faultnet.Config{Seed: cfg.seed(), Dup: 0.3}))
	tb2.AddRow("dup=30%", dup.Value == want, dup.Net.Duplicated, dup.Protocol.DupDropped,
		dup.Protocol.Retransmits, float64(dupEl)/float64(cleanTime))
	reo, reoEl := run(faultnet.NewInjector(faultnet.Config{
		Seed: cfg.seed(), Reorder: 0.3, DelayMax: time.Millisecond,
	}))
	tb2.AddRow("reorder=30%", reo.Value == want, reo.Net.Delayed+reo.Net.Reordered,
		reo.Protocol.DupDropped, reo.Protocol.Retransmits, float64(reoEl)/float64(cleanTime))
	tb2.AddNote("duplicates are absorbed by seq dedup and reordering by the pre-emption rule; neither changes the value,")
	tb2.AddNote("confirming empirically that the Section 7 staleness discipline subsumes both faults (a delayed ack can")
	tb2.AddNote("still trip the retransmit timer — those retransmits are spurious and land in the dup-dropped column)")
	tables = append(tables, tb2)

	// Crash recovery: kill one processor mid-run; a survivor adopts its
	// levels and re-derives the lost invocations from surviving parents.
	tb3 := stats.NewTable("E14c crash recovery, one processor killed mid-run",
		"crash", "value ok", "deaths", "levels adopted", "memo replies", "elapsed", "vs clean")
	crash, crashEl := run(faultnet.NewInjector(faultnet.Config{
		Seed:    cfg.seed(),
		Drop:    0.02,
		Crashes: []faultnet.ProcCrash{{Proc: 1, At: 2 * time.Millisecond}},
	}))
	tb3.AddRow("proc 1 @2ms", crash.Value == want, crash.Protocol.Deaths,
		crash.Protocol.LevelsReassigned, crash.Protocol.MemoReplies,
		crashEl.Round(time.Microsecond).String(), float64(crashEl)/float64(cleanTime))
	tb3.AddNote("recovery latency is bounded by DeadAfter (the heartbeat silence threshold) plus one retransmit round;")
	tb3.AddNote("a run that finishes before the crash fires reports deaths=0 — the value is exact either way")
	tables = append(tables, tb3)
	return tables
}
