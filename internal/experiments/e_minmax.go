package experiments

import (
	"strconv"

	"gametree/internal/bounds"
	"gametree/internal/core"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

// E6ParallelAlphaBeta — Theorem 3: on every instance of M(d,n), Parallel
// alpha-beta of width 1 achieves S~(T)/P~(T) >= c(n+1) with n+1
// processors.
func E6ParallelAlphaBeta(cfg Config) []*stats.Table {
	var tables []*stats.Table
	type family struct {
		d    int
		kind string
		maxN int
	}
	fams := []family{
		{2, "iid", cfg.pick(12, 6)},
		{2, "worst-ordered", cfg.pick(11, 6)},
		{2, "best-ordered", cfg.pick(12, 6)},
		{3, "iid", cfg.pick(8, 5)},
	}
	minMaxInstance := func(kind string, d, n int, seed int64) *tree.Tree {
		switch kind {
		case "iid":
			return tree.IIDMinMax(d, n, -1_000_000, 1_000_000, seed)
		case "worst-ordered":
			return tree.WorstOrderedMinMax(d, n, seed)
		case "best-ordered":
			return tree.BestOrderedMinMax(d, n, seed)
		default:
			panic("experiments: unknown MinMax instance kind " + kind)
		}
	}
	for _, f := range fams {
		tb := stats.NewTable("E6 Parallel alpha-beta width 1 on M("+strconv.Itoa(f.d)+",n) "+f.kind,
			"n", "S~(T)", "P~(T)", "speedup", "procs", "c=speedup/(n+1)")
		minC := 1e18
		for n := 4; n <= f.maxN; n += 2 {
			trials := cfg.trials(4)
			if f.kind != "iid" {
				trials = 1
			}
			var sSum, pSum, procMax float64
			for i := 0; i < trials; i++ {
				tr := minMaxInstance(f.kind, f.d, n, cfg.seed()+int64(i*37))
				seq := mustAB(tr, 0, core.Options{})
				par := mustAB(tr, 1, core.Options{})
				sSum += float64(seq.Steps)
				pSum += float64(par.Steps)
				if float64(par.Processors) > procMax {
					procMax = float64(par.Processors)
				}
			}
			speedup := sSum / pSum
			c := speedup / float64(n+1)
			if c < minC {
				minC = c
			}
			tb.AddRow(n, sSum/float64(trials), pSum/float64(trials), speedup, procMax, c)
		}
		tb.AddNote("min measured c over the sweep: %.3f (Theorem 3)", minC)
		if f.kind == "best-ordered" {
			tb.AddNote("best-ordered S~ equals the Knuth-Moore optimum d^ceil(n/2)+d^floor(n/2)-1; e.g. n=%d: %s",
				f.maxN, bounds.KnuthMoore(f.d, f.maxN).String())
		}
		tables = append(tables, tb)
	}
	return tables
}
