package experiments

import (
	"math"
	"strconv"

	"gametree/internal/bounds"
	"gametree/internal/core"
	"gametree/internal/sched"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

// stationaryBias is the self-reproducing i.i.d. leaf bias for NOR trees
// (the NOR-side image of Althofer's golden-ratio constant), the hardest
// i.i.d. regime — used by every "iid-critical" instance below.
func stationaryBias(d int) float64 { return bounds.StationaryBias(d) }

// E1TeamSolve — Proposition 1: Team SOLVE with p processors achieves a
// speedup of Omega(sqrt(p)) over Sequential SOLVE on every uniform
// instance, and there are instances on which O(sqrt(p)) is also an upper
// bound. The best-case (maximal-pruning) family exhibits the sqrt ceiling:
// most of a team's extra leaves die when the leftmost one resolves. On the
// worst-case family nothing ever dies, so the team gets a full linear
// speedup — both regimes are reported. The log-log slope should sit near
// 1/2 on the best-case family and near 1 on the worst-case family.
func E1TeamSolve(cfg Config) []*stats.Table {
	d := 2
	n := cfg.pick(14, 8)
	maxP := cfg.pick(1024, 32)
	var tables []*stats.Table
	for _, kind := range []string{"best", "iid-critical", "worst"} {
		tb := stats.NewTable("E1 Team SOLVE on B(2,"+strconv.Itoa(n)+") "+kind,
			"p", "steps", "speedup", "sqrt(p)")
		tr := norInstance(kind, d, n, cfg.seed())
		seq := mustTeam(tr, 1, core.Options{})
		var ps, sp []float64
		for p := 1; p <= maxP; p *= 2 {
			m := mustTeam(tr, p, core.Options{})
			speedup := float64(seq.Steps) / float64(m.Steps)
			tb.AddRow(p, m.Steps, speedup, math.Sqrt(float64(p)))
			if p > 1 {
				ps = append(ps, float64(p))
				sp = append(sp, speedup)
			}
		}
		if len(ps) >= 2 {
			tb.AddNote("log-log slope of speedup vs p: %.3f (Prop. 1: >= ~0.5 always; =1 when nothing prunes)",
				stats.LogLogSlope(ps, sp))
		}
		tables = append(tables, tb)
	}
	return tables
}

// E2ParallelSolve — Theorem 1: on every instance of B(d,n), Parallel SOLVE
// of width 1 achieves S(T)/P(T) >= c(n+1) with n+1 processors. We sweep n
// for several instance families and report the measured c.
func E2ParallelSolve(cfg Config) []*stats.Table {
	var tables []*stats.Table
	type family struct {
		d    int
		kind string
		maxN int
	}
	fams := []family{
		{2, "worst", cfg.pick(16, 8)},
		{2, "iid-critical", cfg.pick(16, 8)},
		{2, "best", cfg.pick(16, 8)},
		{3, "iid-critical", cfg.pick(10, 6)},
		{4, "worst", cfg.pick(8, 5)},
	}
	for _, f := range fams {
		tb := stats.NewTable("E2 Parallel SOLVE width 1 on B("+strconv.Itoa(f.d)+",n) "+f.kind,
			"n", "S(T)", "P(T)", "speedup", "procs", "c=speedup/(n+1)")
		minC := 1e18
		for n := 4; n <= f.maxN; n += 2 {
			var sSum, pSum, procMax float64
			trials := cfg.trials(5)
			if f.kind == "worst" || f.kind == "best" {
				trials = 1
			}
			for i := 0; i < trials; i++ {
				tr := norInstance(f.kind, f.d, n, cfg.seed()+int64(i*7919))
				seq := mustSolve(tr, 0, core.Options{})
				par := mustSolve(tr, 1, core.Options{})
				sSum += float64(seq.Steps)
				pSum += float64(par.Steps)
				if float64(par.Processors) > procMax {
					procMax = float64(par.Processors)
				}
			}
			speedup := sSum / pSum
			c := speedup / float64(n+1)
			if c < minC {
				minC = c
			}
			tb.AddRow(n, sSum/float64(trials), pSum/float64(trials), speedup, procMax, c)
		}
		tb.AddNote("min measured c over the sweep: %.3f (Theorem 1: c is a positive absolute constant)", minC)
		tables = append(tables, tb)
	}
	return tables
}

// E3TotalWork — Corollary 1: the total work of Parallel SOLVE of width 1
// is at most c' * S(T).
func E3TotalWork(cfg Config) []*stats.Table {
	tb := stats.NewTable("E3 width-1 total work vs sequential work, B(2,n)",
		"n", "kind", "S(T)", "W(T)", "W/S")
	maxRatio := 0.0
	for _, kind := range []string{"worst", "iid-critical", "best"} {
		for n := 4; n <= cfg.pick(16, 8); n += 2 {
			tr := norInstance(kind, 2, n, cfg.seed())
			seq := mustSolve(tr, 0, core.Options{})
			par := mustSolve(tr, 1, core.Options{})
			ratio := float64(par.Work) / float64(seq.Work)
			if ratio > maxRatio {
				maxRatio = ratio
			}
			tb.AddRow(n, kind, seq.Work, par.Work, ratio)
		}
	}
	tb.AddNote("max W/S observed: %.3f (Corollary 1: bounded by an absolute constant c')", maxRatio)
	return []*stats.Table{tb}
}

// E4StepBound — Proposition 3: during a width-1 run on the skeleton H_T,
// the number of steps of parallel degree k+1 is at most
// sigma_k = C(n,k)(d-1)^k.
func E4StepBound(cfg Config) []*stats.Table {
	d, n := 2, cfg.pick(14, 8)
	tr := norInstance("iid-critical", d, n, cfg.seed())
	seq := mustSolve(tr, 0, core.Options{RecordLeaves: true})
	h, _ := tree.Skeleton(tr, seq.Leaves)
	par := mustSolve(h, 1, core.Options{})
	tb := stats.NewTable("E4 degree histogram of width-1 on skeleton H_T, B(2,"+strconv.Itoa(n)+") critical bias",
		"degree k+1", "t_{k+1}(H_T)", "sigma_k bound", "within")
	ok := true
	for deg := 1; deg < len(par.DegreeHist); deg++ {
		if par.DegreeHist[deg] == 0 {
			continue
		}
		b := bounds.SigmaK(d, n, deg-1)
		within := float64(par.DegreeHist[deg]) <= bounds.Float(b)
		ok = ok && within
		tb.AddRow(deg, par.DegreeHist[deg], b.String(), within)
	}
	tb.AddNote("all degrees within the Proposition 3 bound: %v", ok)

	// The proof object behind the bound: base-path codes must strictly
	// decrease lexicographically, and the degree of every step equals one
	// plus the number of non-zero code components.
	steps, _, err := core.TraceParallelSolve(h, 1, core.Options{})
	if err != nil {
		panic(err)
	}
	decreasing, degreeIdentity := true, true
	for i, st := range steps {
		if i > 0 && core.CompareCodes(st.Code, steps[i-1].Code) >= 0 {
			decreasing = false
		}
		if st.Degree() != 1+st.NonZeroCode() {
			degreeIdentity = false
		}
	}
	tb2 := stats.NewTable("E4b base-path codes on the same skeleton (Prop. 3 proof objects)",
		"property", "holds")
	tb2.AddRow("codes strictly decrease lexicographically", decreasing)
	tb2.AddRow("degree = 1 + #nonzero code components", degreeIdentity)
	tb2.AddRow("steps traced", len(steps))
	return []*stats.Table{tb, tb2}
}

// E5LowerBounds — Fact 1 and Fact 2: the total work of every algorithm on
// every instance is at least the proof-tree bound.
func E5LowerBounds(cfg Config) []*stats.Table {
	tb := stats.NewTable("E5 total work vs inherent lower bounds",
		"model", "instance", "n", "work", "bound", "work>=bound")
	n := cfg.pick(12, 6)
	allOK := true
	for _, kind := range []string{"worst", "best", "iid-critical"} {
		tr := norInstance(kind, 2, n, cfg.seed())
		lb := bounds.Fact1(2, n)
		for w := 0; w <= 2; w++ {
			m := mustSolve(tr, w, core.Options{})
			ok := float64(m.Work) >= bounds.Float(lb)
			allOK = allOK && ok
			tb.AddRow("NOR width "+strconv.Itoa(w), kind, n, m.Work, lb.String(), ok)
		}
	}
	nm := cfg.pick(10, 6)
	for _, ord := range []string{"best-ordered", "worst-ordered", "iid"} {
		var tr *tree.Tree
		switch ord {
		case "best-ordered":
			tr = tree.BestOrderedMinMax(2, nm, cfg.seed())
		case "worst-ordered":
			tr = tree.WorstOrderedMinMax(2, nm, cfg.seed())
		default:
			tr = tree.IIDMinMax(2, nm, -1000, 1000, cfg.seed())
		}
		lb := bounds.Fact2(2, nm)
		for w := 0; w <= 1; w++ {
			m := mustAB(tr, w, core.Options{})
			ok := float64(m.Work) >= bounds.Float(lb)
			allOK = allOK && ok
			tb.AddRow("MinMax width "+strconv.Itoa(w), ord, nm, m.Work, lb.String(), ok)
		}
	}
	tb.AddNote("all runs at or above the Fact 1 / Fact 2 bound: %v", allOK)
	tb.AddNote("best-ordered MinMax at width 0 meets Fact 2 with equality (Knuth-Moore optimum)")
	return []*stats.Table{tb}
}

// E9GoldenBias — Section 6: at the critical bias p = (sqrt(5)-1)/2 the
// i.i.d. model is hardest for binary NOR trees (Althofer's setting); the
// width-1 speedup persists across biases, including at criticality.
func E9GoldenBias(cfg Config) []*stats.Table {
	n := cfg.pick(14, 8)
	stationary := stationaryBias(2)         // (3-sqrt(5))/2 ~= 0.382
	andOrConstant := bounds.CriticalBias(2) // (sqrt(5)-1)/2 ~= 0.618
	tb := stats.NewTable("E9 width-1 speedup vs i.i.d. leaf bias, B(2,"+strconv.Itoa(n)+")",
		"bias", "mean S(T)", "mean P(T)", "speedup", "c=speedup/(n+1)")
	for _, p := range []float64{0.30, stationary, 0.50, andOrConstant, 0.90} {
		var sw, pw stats.Welford
		for i := 0; i < cfg.trials(8); i++ {
			tr := tree.IIDNor(2, n, p, cfg.seed()+int64(i)*104729)
			sw.Add(float64(mustSolve(tr, 0, core.Options{}).Steps))
			pw.Add(float64(mustSolve(tr, 1, core.Options{}).Steps))
		}
		speedup := sw.Mean() / pw.Mean()
		tb.AddRow(p, sw.Mean(), pw.Mean(), speedup, speedup/float64(n+1))
	}
	tb.AddNote("bias %.6f is the NOR-side stationary bias (hardest instances); %.6f is Althofer's", stationary, andOrConstant)
	tb.AddNote("AND/OR-side golden-ratio constant, whose NOR image is the former; the speedup persists across all biases")
	return []*stats.Table{tb}
}

// E10WidthSweep — Conclusion: raising the width raises the processor count
// (O(n^w) for width w) and the speedup keeps growing, at decreasing
// per-processor efficiency; the paper conjectures linearity for fixed
// width >= 2.
func E10WidthSweep(cfg Config) []*stats.Table {
	var tables []*stats.Table
	n := cfg.pick(14, 8)
	tr := norInstance("worst", 2, n, cfg.seed())
	seq := mustSolve(tr, 0, core.Options{})
	tb := stats.NewTable("E10a width sweep, Parallel SOLVE on worst-case B(2,"+strconv.Itoa(n)+")",
		"width", "steps", "procs", "speedup", "efficiency")
	for w := 0; w <= 3; w++ {
		m := mustSolve(tr, w, core.Options{})
		speedup := float64(seq.Steps) / float64(m.Steps)
		tb.AddRow(w, m.Steps, m.Processors, speedup, speedup/float64(m.Processors))
	}
	tables = append(tables, tb)

	nm := cfg.pick(10, 6)
	trm := tree.WorstOrderedMinMax(2, nm, cfg.seed())
	seqM := mustAB(trm, 0, core.Options{})
	tb2 := stats.NewTable("E10b width sweep, Parallel alpha-beta on worst-ordered M(2,"+strconv.Itoa(nm)+")",
		"width", "steps", "procs", "speedup", "efficiency")
	for w := 0; w <= 3; w++ {
		m := mustAB(trm, w, core.Options{})
		speedup := float64(seqM.Steps) / float64(m.Steps)
		tb2.AddRow(w, m.Steps, m.Processors, speedup, speedup/float64(m.Processors))
	}
	tables = append(tables, tb2)

	// Fixed processor budgets (the leaf-model reading of Section 7's
	// closing remark): width-3 candidates, p processors.
	tb3 := stats.NewTable("E10c fixed-p Parallel SOLVE (width 3 candidates) on worst-case B(2,"+strconv.Itoa(n)+")",
		"p", "steps", "speedup", "efficiency")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		m, err := core.ParallelSolveFixed(tr, 3, p, core.Options{})
		if err != nil {
			panic(err)
		}
		speedup := float64(seq.Steps) / float64(m.Steps)
		tb3.AddRow(p, m.Steps, speedup, speedup/float64(p))
	}
	tb3.AddNote("with p=1 this is exactly Sequential SOLVE; efficiency stays high while p is below the width's processor demand")
	tables = append(tables, tb3)

	// Brent replay: take ONE width-3 run and replay its degree profile
	// under every processor budget (ceil(degree/P) per step), checking
	// the Brent sandwich T_inf <= T_P <= T_inf + W/P.
	m3 := mustSolve(tr, 3, core.Options{})
	prof := sched.FromMetrics(m3)
	tb4 := stats.NewTable("E10d Brent replay of one width-3 run on worst-case B(2,"+strconv.Itoa(n)+")",
		"P", "T_P", "lower bound", "Brent upper", "speedup vs T_1")
	t1 := prof.Replay(1)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		tp := prof.Replay(p)
		tb4.AddRow(p, tp, prof.LowerBound(p), prof.BrentUpper(p), float64(t1)/float64(tp))
	}
	tb4.AddNote("T_inf = %d steps, W = %d leaf evaluations; the curve saturates once P covers the max degree %d",
		prof.Steps(), prof.Work(), m3.Processors)
	tables = append(tables, tb4)

	// The conclusion's open problem: no counting argument is known for
	// width >= 2. Empirically the width-2 degree histogram on a skeleton
	// still decays fast past a bulk — the shape the conjecture needs.
	tr2 := norInstance("iid-critical", 2, cfg.pick(14, 8), cfg.seed())
	seq2 := mustSolve(tr2, 0, core.Options{RecordLeaves: true})
	h2, _ := tree.Skeleton(tr2, seq2.Leaves)
	m2 := mustSolve(h2, 2, core.Options{})
	tb5 := stats.NewTable("E10e width-2 degree histogram on a skeleton (open-problem territory)",
		"degree", "steps of that degree")
	for deg := 1; deg < len(m2.DegreeHist); deg++ {
		if m2.DegreeHist[deg] > 0 {
			tb5.AddRow(deg, m2.DegreeHist[deg])
		}
	}
	tb5.AddNote("the paper's width-1 counting (base-path codes) does not extend to width 2; this histogram is")
	tb5.AddNote("the empirical object a future proof must bound — steps %d for work %d (speedup structure intact)",
		m2.Steps, m2.Work)
	tables = append(tables, tb5)
	return tables
}

// E11NearUniform — Corollary 2: trees with degrees in [alpha*d, d] and
// leaf depths in [beta*n, n] keep the linear width-1 speedup.
func E11NearUniform(cfg Config) []*stats.Table {
	d := 4
	alpha, beta := 0.5, 0.5
	tb := stats.NewTable("E11 width-1 on near-uniform trees (d=4, alpha=beta=0.5)",
		"n", "mean S", "mean P", "speedup", "c=speedup/(n+1)")
	for n := 6; n <= cfg.pick(12, 8); n += 2 {
		var sw, pw stats.Welford
		for i := 0; i < cfg.trials(5); i++ {
			seed := cfg.seed() + int64(i)*7
			tr := tree.NearUniform(tree.NOR, d, n, alpha, beta, seed,
				tree.BernoulliLeaves(stationaryBias(d), seed+1))
			sw.Add(float64(mustSolve(tr, 0, core.Options{}).Steps))
			pw.Add(float64(mustSolve(tr, 1, core.Options{}).Steps))
		}
		speedup := sw.Mean() / pw.Mean()
		tb.AddRow(n, sw.Mean(), pw.Mean(), speedup, speedup/float64(n+1))
	}
	return []*stats.Table{tb}
}
