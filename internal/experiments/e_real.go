package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"gametree/internal/alphabeta"
	"gametree/internal/core"
	"gametree/internal/engine"
	"gametree/internal/expand"
	"gametree/internal/games"
	"gametree/internal/msgpass"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

// E12MessagePassing — Section 7: the message-passing implementation of
// N-Parallel SOLVE of width 1 computes the correct value with work within
// a constant factor of the simulator, and the same cascade idea in the
// goroutine engine yields real wall-clock speedup on multicore hardware.
func E12MessagePassing(cfg Config) []*stats.Table {
	var tables []*stats.Table

	tb := stats.NewTable("E12a Section 7 message-passing vs node-expansion simulator, B(2,n)",
		"n", "kind", "sim P*(T) work", "msgpass exp (per-level)", "msgs", "msgpass exp (1 proc, zones)", "msgs(1)", "value ok")
	for _, kind := range []string{"worst", "iid-critical"} {
		for n := 6; n <= cfg.pick(14, 8); n += 2 {
			tr := norInstance(kind, 2, n, cfg.seed())
			sim := mustNSolve(tr, 1, expand.Options{})
			m, err := msgpass.Evaluate(tr, msgpass.Options{})
			if err != nil {
				panic(err)
			}
			m1, err := msgpass.Evaluate(tr, msgpass.Options{Processors: 1})
			if err != nil {
				panic(err)
			}
			tb.AddRow(n, kind, sim.Work, m.Expansions, m.Messages, m1.Expansions, m1.Messages,
				m.Value == tr.Evaluate() && m1.Value == tr.Evaluate())
		}
	}
	tb.AddNote("expansions stay within a small constant of the simulator's work (traversal delays fold into Prop. 6 counting)")
	tb.AddNote("with one multiplexing processor the cascade visits every level (many messages); with a goroutine per")
	tb.AddNote("level on this machine (GOMAXPROCS=%d) leading S-invocations often finish before deeper P-invocations are", runtime.GOMAXPROCS(0))
	tb.AddNote("scheduled, so fewer messages are needed — both schedules return the exact value")
	tables = append(tables, tb)

	// Wall-clock speedup of the message-passing machine itself, with
	// synthetic per-expansion work, 1 processor vs one per level.
	n := cfg.pick(12, 8)
	spin := cfg.pick(3000, 800)
	tr := tree.WorstCaseNOR(2, n, 1)
	tb2 := stats.NewTable("E12b msgpass wall-clock, worst-case B(2,"+strconv.Itoa(n)+"), "+
		strconv.Itoa(spin)+" spin/expansion",
		"processors", "time", "speedup vs p=1")
	var base time.Duration
	for _, p := range []int{1, 2, 4, n + 1} {
		start := time.Now()
		m, err := msgpass.Evaluate(tr, msgpass.Options{Processors: p, WorkPerExpansion: spin})
		el := time.Since(start)
		if err != nil || m.Value != 1 {
			panic(fmt.Sprintf("msgpass wall-clock run failed: %v %+v", err, m))
		}
		if p == 1 {
			base = el
		}
		tb2.AddRow(p, el.Round(time.Microsecond).String(), float64(base)/float64(el))
	}
	tables = append(tables, tb2)

	// Real-game engine: sequential vs parallel wall clock on Connect-4.
	depth := cfg.pick(9, 6)
	pos := games.StandardConnect4()
	tb3 := stats.NewTable("E12c goroutine engine on Connect-4 7x6, depth "+strconv.Itoa(depth),
		"workers", "nodes", "time", "speedup vs sequential")
	engine.Search(pos, depth) // warm-up: page in the search before timing
	start := time.Now()
	seq := engine.Search(pos, depth)
	seqTime := time.Since(start)
	tb3.AddRow("sequential", seq.Nodes, seqTime.Round(time.Millisecond).String(), 1.0)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		start = time.Now()
		par, err := engine.SearchParallel(context.Background(), pos, depth, w)
		el := time.Since(start)
		if err != nil {
			panic(err)
		}
		if par.Value != seq.Value {
			panic(fmt.Sprintf("engine value mismatch: %d vs %d", par.Value, seq.Value))
		}
		tb3.AddRow(w, par.Nodes, el.Round(time.Millisecond).String(), float64(seqTime)/float64(el))
	}
	start = time.Now()
	rs, err := engine.SearchRootSplit(context.Background(), pos, depth, runtime.GOMAXPROCS(0))
	if err != nil {
		panic(err)
	}
	rsTime := time.Since(start)
	if rs.Value != seq.Value {
		panic("root-split value mismatch")
	}
	tb3.AddRow("root-split", rs.Nodes, rsTime.Round(time.Millisecond).String(), float64(seqTime)/float64(rsTime))
	tb3.AddNote("root-split is the classical references-[2,4] baseline: more speculative nodes than the cascade")
	tb3.AddNote("GOMAXPROCS=%d; on a single-CPU host the parallel cascade can only match the sequential wall", runtime.GOMAXPROCS(0))
	tb3.AddNote("clock (the value is still exact); on a multicore host the speculative siblings run concurrently")
	tb3.AddNote("and the wall clock drops while node counts rise slightly (speculation)")
	tables = append(tables, tb3)

	// The alpha-beta message-passing machine (the Section 7 construction
	// carried to MIN/MAX trees, which the paper only sketches).
	tb4 := stats.NewTable("E12d message-passing Parallel alpha-beta on M(2,n) i.i.d.",
		"n", "sequential AB leaves", "msgpass expansions", "messages", "value ok")
	for n := 6; n <= cfg.pick(12, 8); n += 2 {
		trm := tree.IIDMinMax(2, n, -1_000_000, 1_000_000, cfg.seed())
		ref := alphabeta.AlphaBeta(trm)
		m, err := msgpass.EvaluateAlphaBeta(trm, msgpass.Options{Processors: 1})
		if err != nil {
			panic(err)
		}
		tb4.AddRow(n, ref.Leaves, m.Expansions, m.Messages, m.Value == ref.Value)
	}
	tb4.AddNote("run with one multiplexing processor so the cascade is fully exercised; expansions include internal nodes and bounded speculation")
	tables = append(tables, tb4)

	// Baseline triangle: classical alpha-beta vs SCOUT vs SSS* (the
	// comparison behind the paper's reference [11]).
	tb5 := stats.NewTable("E12e sequential baselines: leaves evaluated on M(2,n)",
		"n", "ordering", "minimax", "alpha-beta", "SCOUT", "SSS*")
	for _, ord := range []string{"best", "random", "worst"} {
		for n := 6; n <= cfg.pick(12, 8); n += 3 {
			var trm *tree.Tree
			switch ord {
			case "best":
				trm = tree.BestOrderedMinMax(2, n, cfg.seed())
			case "worst":
				trm = tree.WorstOrderedMinMax(2, n, cfg.seed())
			default:
				trm = tree.IIDMinMax(2, n, -1_000_000, 1_000_000, cfg.seed())
			}
			mm := alphabeta.Minimax(trm)
			ab := alphabeta.AlphaBeta(trm)
			sc := alphabeta.Scout(trm)
			ss := alphabeta.SSS(trm)
			tb5.AddRow(n, ord, mm.Leaves, ab.Leaves, sc.Leaves, ss.Leaves)
		}
	}
	tb5.AddNote("SSS* never exceeds alpha-beta (Stockman dominance); the gap is largest on worst-ordered trees")
	tables = append(tables, tb5)
	return tables
}

// E13Constant — Conclusion: "The provable constant c in Theorem 1 is
// rather poor. Some simulations we did indicate that a better constant is
// achievable." We measure c = speedup/(n+1) at the largest heights of the
// E2/E6 sweeps and contrast with the provable floor.
func E13Constant(cfg Config) []*stats.Table {
	tb := stats.NewTable("E13 measured width-1 constants c = speedup/(n+1) at the largest height",
		"setting", "n", "speedup", "measured c")
	record := func(name string, n int, sSteps, pSteps float64) {
		speedup := sSteps / pSteps
		tb.AddRow(name, n, speedup, speedup/float64(n+1))
	}
	n := cfg.pick(16, 8)
	for _, kind := range []string{"worst", "iid-critical", "best"} {
		tr := norInstance(kind, 2, n, cfg.seed())
		seq := mustSolve(tr, 0, core.Options{})
		par := mustSolve(tr, 1, core.Options{})
		record("B(2,n) "+kind, n, float64(seq.Steps), float64(par.Steps))
	}
	nm := cfg.pick(12, 6)
	trm := tree.IIDMinMax(2, nm, -1_000_000, 1_000_000, cfg.seed())
	seqM := mustAB(trm, 0, core.Options{})
	parM := mustAB(trm, 1, core.Options{})
	record("M(2,n) iid", nm, float64(seqM.Steps), float64(parM.Steps))

	tb.AddNote("the provable constant from the Lemma 1/2 machinery is on the order of beta/4 with beta ~ 0.01-0.1;")
	tb.AddNote("measured constants sit orders of magnitude above it, confirming the paper's closing remark")
	return []*stats.Table{tb}
}
