// Package experiments drives the reproduction suite E1–E14 defined in
// DESIGN.md: one experiment per quantitative claim of Karp & Zhang (1989).
// Each experiment returns plain-text tables; cmd/gtbench renders the full
// suite and bench_test.go exposes one testing.B benchmark per experiment.
package experiments

import (
	"fmt"

	"gametree/internal/core"
	"gametree/internal/stats"
	"gametree/internal/tree"
)

// Config scales the suite. The zero value runs the full sizes used in
// EXPERIMENTS.md; Quick shrinks every sweep for fast runs.
type Config struct {
	Quick  bool
	Seed   int64
	Trials int // random instances per data point; 0 means a default
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 2
	}
	return def
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1989_05 // the paper's date
}

// pick returns q when Quick, else f.
func (c Config) pick(f, q int) int {
	if c.Quick {
		return q
	}
	return f
}

// Experiment pairs an id with the function that produces its tables.
type Experiment struct {
	ID    string
	Claim string
	Run   func(Config) []*stats.Table
}

// Suite lists all experiments in order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", "Prop. 1: Team SOLVE(p) speedup grows as sqrt(p)", E1TeamSolve},
		{"E2", "Thm. 1: Parallel SOLVE width 1 speedup is linear in n+1", E2ParallelSolve},
		{"E3", "Cor. 1: width-1 total work within a constant of S(T)", E3TotalWork},
		{"E4", "Prop. 3: step-degree histogram below sigma_k", E4StepBound},
		{"E5", "Facts 1-2: no algorithm beats the proof-tree bound", E5LowerBounds},
		{"E6", "Thm. 3: Parallel alpha-beta width 1 speedup linear in n+1", E6ParallelAlphaBeta},
		{"E7", "Thm. 4 / Prop. 6: node-expansion model speedups", E7NodeExpansion},
		{"E8", "Thms. 5-6: randomized variants, expected linear speedup", E8Randomized},
		{"E9", "Sec. 6: behavior at the critical i.i.d. bias (golden ratio)", E9GoldenBias},
		{"E10", "Conclusion: width sweep, processors vs speedup", E10WidthSweep},
		{"E11", "Cor. 2: near-uniform trees keep the linear speedup", E11NearUniform},
		{"E12", "Sec. 7: message-passing implementation and real goroutine engine", E12MessagePassing},
		{"E13", "Conclusion: the measured constant c beats the provable one", E13Constant},
		{"E14", "Sec. 7 under faults: exact value despite loss, duplication and crashes", E14Faults},
	}
}

// mustSolve runs core.ParallelSolve and panics on the (impossible in these
// workloads) internal errors, keeping experiment code linear.
func mustSolve(t *tree.Tree, w int, opt core.Options) core.Metrics {
	m, err := core.ParallelSolve(t, w, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: ParallelSolve(%d): %v", w, err))
	}
	return m
}

func mustTeam(t *tree.Tree, p int, opt core.Options) core.Metrics {
	m, err := core.TeamSolve(t, p, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: TeamSolve(%d): %v", p, err))
	}
	return m
}

func mustAB(t *tree.Tree, w int, opt core.Options) core.Metrics {
	m, err := core.ParallelAlphaBeta(t, w, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: ParallelAlphaBeta(%d): %v", w, err))
	}
	return m
}

// norInstance generates the named instance family member.
func norInstance(kind string, d, n int, seed int64) *tree.Tree {
	switch kind {
	case "worst":
		return tree.WorstCaseNOR(d, n, 1)
	case "best":
		return tree.BestCaseNOR(d, n, 1)
	case "iid-critical":
		return tree.IIDNor(d, n, stationaryBias(d), seed)
	case "iid-half":
		return tree.IIDNor(d, n, 0.5, seed)
	default:
		panic("experiments: unknown NOR instance kind " + kind)
	}
}
