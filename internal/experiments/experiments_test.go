package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The quick configuration must run every experiment end to end and produce
// well-formed tables. This is the integration test of the whole harness.
func TestSuiteQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range Suite() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				for _, r := range tb.Rows {
					if len(r) != len(tb.Columns) {
						t.Errorf("%s: ragged row in %q", e.ID, tb.Title)
					}
				}
				if !strings.HasPrefix(tb.Title, e.ID) {
					t.Errorf("%s: table title %q does not carry the experiment id", e.ID, tb.Title)
				}
				out := tb.String()
				if len(out) == 0 {
					t.Errorf("%s: empty render", e.ID)
				}
			}
		})
	}
}

func TestSuiteIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for i, e := range Suite() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has id %s, want %s", i, e.ID, want)
		}
		if e.Claim == "" {
			t.Errorf("%s has no claim", e.ID)
		}
	}
	if len(seen) != 14 {
		t.Errorf("expected 14 experiments, got %d", len(seen))
	}
}

// Quantitative shape checks on quick runs: the headline speedups must
// actually materialize even at small sizes.
func TestShapesQuick(t *testing.T) {
	cfg := Config{Quick: true}

	// E2: on the worst-case family the width-1 speedup at the largest n
	// must exceed 2 (it is ~c(n+1) with c around 1/4 or better).
	tables := E2ParallelSolve(cfg)
	worst := tables[0]
	last := worst.Rows[len(worst.Rows)-1]
	sp, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", last[3])
	}
	if sp < 2 {
		t.Errorf("E2 worst-case speedup %.2f at top height too small", sp)
	}

	// E1: Team SOLVE speedup at max p must be well below p (sqrt scaling)
	// on the best-case (maximal-pruning) instance, the first table.
	t1 := E1TeamSolve(cfg)[0]
	lastRow := t1.Rows[len(t1.Rows)-1]
	p, _ := strconv.ParseFloat(lastRow[0], 64)
	sp1, err := strconv.ParseFloat(lastRow[2], 64)
	if err != nil {
		t.Fatalf("bad cell %q", lastRow[2])
	}
	if sp1 > 0.9*p {
		t.Errorf("E1 speedup %.2f at p=%v looks linear, expected sqrt-like", sp1, p)
	}
	if sp1 < 1 {
		t.Errorf("E1 speedup %.2f below 1", sp1)
	}
}

func TestConfigHelpers(t *testing.T) {
	var c Config
	if c.trials(7) != 7 || c.seed() == 0 || c.pick(10, 3) != 10 {
		t.Error("full defaults wrong")
	}
	q := Config{Quick: true, Seed: 5, Trials: 9}
	if q.trials(7) != 9 || q.seed() != 5 || q.pick(10, 3) != 3 {
		t.Error("quick overrides wrong")
	}
}
