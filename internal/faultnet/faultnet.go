// Package faultnet is the pluggable message network under the Section 7
// message-passing machine. The paper's model assumes a perfect unit-time
// network; the machine's robustness claim — superseded invocations are
// simply dropped — is only *exercised* when the network misbehaves. This
// package provides the two ends of that spectrum behind one interface:
//
//   - Perfect: synchronous, lossless, in-order delivery (the behaviour the
//     in-process channel realization always had).
//   - Injector: a deterministic, seeded fault injector with per-link drop
//     probability, bounded random delay, duplication, reordering (as
//     overtaking jitter), and a schedule of processor crash and stall
//     events.
//
// Determinism discipline: every fault decision for the k'th packet on a
// link (from→to) is drawn from a PRNG stream keyed only by (seed, from,
// to) and the link-local index k. Goroutine interleaving can change which
// *message* is the k'th on a link, but never what happens to it, and the
// injector's event log — the per-link decision stream — is reproducible
// byte-for-byte for a fixed send sequence (see WriteLog).
//
// The consumer (internal/msgpass) treats a nil Network as "perfect and
// inlined": the fast path is one nil check, the same pattern the
// telemetry layer uses, so fault injection costs nothing when disabled.
package faultnet

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Packet is one datagram: an opaque payload routed from one processor to
// another. Processor ids are small non-negative integers; id -1 is the
// run coordinator/monitor, which never crashes or stalls.
type Packet struct {
	From, To int
	Payload  any
}

// Network routes packets between processors. Implementations must make
// Send non-blocking and safe from any goroutine; delivery happens on an
// unspecified goroutine via the callback installed by Start.
type Network interface {
	// Start installs the delivery callback. It must be called exactly once
	// before the first Send. The callback must not block.
	Start(deliver func(Packet))
	// Send routes pkt toward its destination. The network may drop, delay,
	// duplicate or reorder it, and drops traffic from or to crashed
	// processors.
	Send(pkt Packet)
	// Alive reports whether a processor is up (false once a scheduled
	// crash event has fired). The coordinator (-1) is always alive.
	Alive(proc int) bool
	// StalledUntil reports whether the processor is currently frozen by a
	// stall event and, if so, when the stall ends.
	StalledUntil(proc int) (time.Time, bool)
	// Close stops delivery; pending delayed packets are discarded.
	Close()
	// Stats returns the cumulative traffic counters.
	Stats() Stats
}

// Stats counts what the network did to the traffic it carried.
type Stats struct {
	Sent         int64 `json:"sent"`          // Send calls accepted
	Delivered    int64 `json:"delivered"`     // packets handed to the delivery callback
	Dropped      int64 `json:"dropped"`       // lost to the per-link drop probability
	Duplicated   int64 `json:"duplicated"`    // extra copies created
	Delayed      int64 `json:"delayed"`       // packets held back before delivery
	Reordered    int64 `json:"reordered"`     // packets given overtaking jitter
	CrashDropped int64 `json:"crash_dropped"` // lost because an endpoint had crashed

	PartitionDropped int64 `json:"partition_dropped,omitempty"` // lost inside a scheduled link partition window
}

func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d duplicated=%d delayed=%d reordered=%d crash_dropped=%d partition_dropped=%d",
		s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Delayed, s.Reordered, s.CrashDropped, s.PartitionDropped)
}

// Perfect is the lossless network: Send delivers synchronously on the
// sender's goroutine, in order, and no processor ever fails. It exists so
// the reliability protocol can be run — and its overhead measured —
// without any injected faults.
type Perfect struct {
	deliver   func(Packet)
	closed    atomic.Bool
	sent      atomic.Int64
	delivered atomic.Int64
}

// NewPerfect returns a perfect network.
func NewPerfect() *Perfect { return &Perfect{} }

func (p *Perfect) Start(deliver func(Packet)) { p.deliver = deliver }

func (p *Perfect) Send(pkt Packet) {
	if p.closed.Load() {
		return
	}
	p.sent.Add(1)
	p.delivered.Add(1)
	p.deliver(pkt)
}

func (p *Perfect) Alive(int) bool { return true }

func (p *Perfect) StalledUntil(int) (time.Time, bool) { return time.Time{}, false }

func (p *Perfect) Close() { p.closed.Store(true) }

func (p *Perfect) Stats() Stats {
	return Stats{Sent: p.sent.Load(), Delivered: p.delivered.Load()}
}
