package faultnet

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPerfectDeliversInOrder(t *testing.T) {
	n := NewPerfect()
	var got []int
	n.Start(func(p Packet) { got = append(got, p.Payload.(int)) })
	for i := 0; i < 100; i++ {
		n.Send(Packet{From: 0, To: 1, Payload: i})
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
	st := n.Stats()
	if st.Sent != 100 || st.Delivered != 100 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	n.Close()
	n.Send(Packet{From: 0, To: 1, Payload: 101})
	if len(got) != 100 {
		t.Fatal("delivered after Close")
	}
}

func TestInjectorDropRate(t *testing.T) {
	in := NewInjector(Config{Seed: 42, Drop: 0.3})
	var delivered atomic.Int64
	in.Start(func(Packet) { delivered.Add(1) })
	defer in.Close()
	const N = 10000
	for i := 0; i < N; i++ {
		in.Send(Packet{From: 0, To: 1, Payload: i})
	}
	st := in.Stats()
	if st.Dropped+st.Delivered != N {
		t.Fatalf("dropped %d + delivered %d != %d", st.Dropped, st.Delivered, N)
	}
	rate := float64(st.Dropped) / N
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %.3f far from 0.3", rate)
	}
	if got := delivered.Load(); got != st.Delivered {
		t.Fatalf("callback count %d != stats delivered %d", got, st.Delivered)
	}
}

func TestInjectorDuplication(t *testing.T) {
	in := NewInjector(Config{Seed: 7, Dup: 0.5})
	var delivered atomic.Int64
	in.Start(func(Packet) { delivered.Add(1) })
	defer in.Close()
	const N = 2000
	for i := 0; i < N; i++ {
		in.Send(Packet{From: 1, To: 2, Payload: i})
	}
	st := in.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at dup=0.5")
	}
	if delivered.Load() != int64(N)+st.Duplicated {
		t.Fatalf("delivered %d, want %d originals + %d dups", delivered.Load(), N, st.Duplicated)
	}
}

func TestInjectorDelayAndReorder(t *testing.T) {
	in := NewInjector(Config{Seed: 9, Reorder: 0.3, DelayMax: 2 * time.Millisecond})
	var mu sync.Mutex
	var got []int
	done := make(chan struct{}, 1)
	const N = 500
	in.Start(func(p Packet) {
		mu.Lock()
		got = append(got, p.Payload.(int))
		if len(got) == N {
			done <- struct{}{}
		}
		mu.Unlock()
	})
	defer in.Close()
	for i := 0; i < N; i++ {
		in.Send(Packet{From: 0, To: 1, Payload: i})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d of %d delivered", len(got), N)
	}
	if in.Stats().Reordered == 0 {
		t.Fatal("no reordering at reorder=0.3")
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("delivery order identical to send order despite jitter")
	}
}

func TestInjectorCrashDropsTraffic(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Crashes: []ProcCrash{{Proc: 2, At: 0}}})
	var delivered atomic.Int64
	in.Start(func(Packet) { delivered.Add(1) })
	defer in.Close()
	time.Sleep(5 * time.Millisecond) // let the crash timer fire
	if in.Alive(2) {
		t.Fatal("proc 2 should be dead")
	}
	if !in.Alive(0) || !in.Alive(-1) {
		t.Fatal("procs 0 and coordinator should be alive")
	}
	in.Send(Packet{From: 0, To: 2, Payload: 1})
	in.Send(Packet{From: 2, To: 0, Payload: 2})
	in.Send(Packet{From: 0, To: 1, Payload: 3})
	if delivered.Load() != 1 {
		t.Fatalf("delivered %d, want only the 0->1 packet", delivered.Load())
	}
	if in.Stats().CrashDropped != 2 {
		t.Fatalf("crash_dropped %d, want 2", in.Stats().CrashDropped)
	}
}

// TestInjectorPartitionWindow: during the scheduled window both
// directions of the A-B link blackhole while every other link keeps
// flowing; after the window the link heals. Partition drops must bypass
// the per-link PRNG lanes entirely (like crash drops), so an event log
// recorded under a partition stays aligned with a partition-free replay.
func TestInjectorPartitionWindow(t *testing.T) {
	in := NewInjector(Config{
		Seed:       1,
		Partitions: []LinkPartition{{A: 0, B: 1, At: 0, For: 100 * time.Millisecond}},

		LogEvents: true,
	})
	var delivered atomic.Int64
	in.Start(func(Packet) { delivered.Add(1) })
	defer in.Close()

	// Inside the window: 0<->1 is severed both ways, 0<->2 is not, and
	// both endpoints are still alive (a partition is not a crash).
	in.Send(Packet{From: 0, To: 1, Payload: 1})
	in.Send(Packet{From: 1, To: 0, Payload: 2})
	in.Send(Packet{From: 0, To: 2, Payload: 3})
	in.Send(Packet{From: 2, To: 1, Payload: 4})
	if !in.Alive(0) || !in.Alive(1) {
		t.Fatal("partitioned endpoints should stay alive")
	}
	if got := delivered.Load(); got != 2 {
		t.Fatalf("delivered %d during window, want only the 0->2 and 2->1 packets", got)
	}
	if pd := in.Stats().PartitionDropped; pd != 2 {
		t.Fatalf("partition_dropped %d, want 2", pd)
	}
	// Blackholed sends never reached the lanes: the decision log holds
	// only the two packets that flowed, so replays stay aligned.
	if ev := in.Events(); len(ev) != 2 {
		t.Fatalf("event log has %d entries, want 2 (partition drops must not consume lane decisions): %+v", len(ev), ev)
	}

	// After the window the link heals.
	deadline := time.Now().Add(5 * time.Second)
	for in.partitioned(0, 1, time.Now()) {
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(time.Millisecond)
	}
	in.Send(Packet{From: 0, To: 1, Payload: 5})
	in.Send(Packet{From: 1, To: 0, Payload: 6})
	if got := delivered.Load(); got != 4 {
		t.Fatalf("delivered %d after heal, want 4", got)
	}
}

func TestInjectorStallWindow(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Stalls: []ProcStall{{Proc: 1, At: 0, For: 50 * time.Millisecond}}})
	in.Start(func(Packet) {})
	defer in.Close()
	time.Sleep(5 * time.Millisecond)
	if _, ok := in.StalledUntil(1); !ok {
		t.Fatal("proc 1 should be stalled now")
	}
	if _, ok := in.StalledUntil(0); ok {
		t.Fatal("proc 0 should not be stalled")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := in.StalledUntil(1); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall never ended")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSeedReplay is the reproducibility contract: same seed, same per-link
// send sequence => byte-for-byte identical event log; a different seed
// must diverge. The script uses several links and only probabilistic
// faults (no wall-clock schedule), sent single-threaded so the per-link
// ordering is fixed.
func TestSeedReplay(t *testing.T) {
	script := func(seed int64) []byte {
		in := NewInjector(Config{
			Seed:     seed,
			Drop:     0.2,
			Dup:      0.1,
			Reorder:  0.1,
			Delay:    0.15,
			DelayMax: time.Millisecond,

			LogEvents: true,
		})
		in.Start(func(Packet) {})
		links := [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {-1, 0}, {3, -1}}
		for i := 0; i < 1000; i++ {
			l := links[i%len(links)]
			in.Send(Packet{From: l[0], To: l[1], Payload: i})
		}
		var buf bytes.Buffer
		if err := in.WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		in.Close()
		return buf.Bytes()
	}
	a, b := script(12345), script(12345)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event logs")
	}
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	c := script(54321)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical event logs")
	}
}

// TestLaneIndependence: interleaving sends across links differently must
// not change any link's decision stream.
func TestLaneIndependence(t *testing.T) {
	run := func(order []int) []byte {
		in := NewInjector(Config{Seed: 99, Drop: 0.3, Dup: 0.2, LogEvents: true})
		in.Start(func(Packet) {})
		counts := map[int]int{}
		for _, link := range order {
			in.Send(Packet{From: link, To: 10 + link, Payload: counts[link]})
			counts[link]++
		}
		var buf bytes.Buffer
		if err := in.WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		in.Close()
		return buf.Bytes()
	}
	// Same multiset of per-link sends, radically different interleaving.
	var a, b []int
	for i := 0; i < 300; i++ {
		a = append(a, i%3)
	}
	for link := 0; link < 3; link++ {
		for i := 0; i < 100; i++ {
			b = append(b, link)
		}
	}
	if !bytes.Equal(run(a), run(b)) {
		t.Fatal("per-link decisions depend on cross-link interleaving")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Drop: 1.5},
		{Dup: -0.1},
		{Delay: 0.5},                       // delay prob without bound
		{Reorder: 0.1},                     // reorder without jitter bound
		{Crashes: []ProcCrash{{Proc: -1}}}, // negative proc
		{Stalls: []ProcStall{{Proc: 0, At: 0, For: 0}}},             // zero stall
		{Stalls: []ProcStall{{Proc: 0, At: -1, For: 1}}},            // negative start
		{Partitions: []LinkPartition{{A: -1, B: 2, For: 1}}},        // negative proc
		{Partitions: []LinkPartition{{A: 2, B: 2, For: 1}}},         // self link
		{Partitions: []LinkPartition{{A: 0, B: 1, For: 0}}},         // zero window
		{Partitions: []LinkPartition{{A: 0, B: 1, At: -1, For: 1}}}, // negative start
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
	good := Config{Seed: 1, Drop: 0.3, Dup: 0.1, Reorder: 0.1, Delay: 0.2, DelayMax: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("drop=0.1,dup=0.02,reorder=0.05,delay=2ms,delayp=0.2,crash=3@50ms,stall=2@20ms+30ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.1 || cfg.Dup != 0.02 || cfg.Reorder != 0.05 {
		t.Fatalf("probabilities wrong: %+v", cfg)
	}
	if cfg.Delay != 0.2 || cfg.DelayMax != 2*time.Millisecond {
		t.Fatalf("delay wrong: %+v", cfg)
	}
	if len(cfg.Crashes) != 1 || cfg.Crashes[0] != (ProcCrash{Proc: 3, At: 50 * time.Millisecond}) {
		t.Fatalf("crash wrong: %+v", cfg.Crashes)
	}
	if len(cfg.Stalls) != 1 || cfg.Stalls[0] != (ProcStall{Proc: 2, At: 20 * time.Millisecond, For: 30 * time.Millisecond}) {
		t.Fatalf("stall wrong: %+v", cfg.Stalls)
	}
	if cfg.Seed != 7 {
		t.Fatalf("seed wrong: %d", cfg.Seed)
	}

	cfg, err = ParseSpec("partition=1-2@50ms+200ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Partitions) != 1 || cfg.Partitions[0] != (LinkPartition{A: 1, B: 2, At: 50 * time.Millisecond, For: 200 * time.Millisecond}) {
		t.Fatalf("partition wrong: %+v", cfg.Partitions)
	}

	// delay without delayp means "always delay, bounded".
	cfg, err = ParseSpec("delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Delay != 1 || cfg.DelayMax != time.Millisecond {
		t.Fatalf("bare delay wrong: %+v", cfg)
	}

	// reorder plus delay bound: bound is jitter only, not always-delay.
	cfg, err = ParseSpec("reorder=0.1,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Delay != 0 || cfg.Reorder != 0.1 {
		t.Fatalf("reorder+bound wrong: %+v", cfg)
	}

	for _, bad := range []string{
		"drop",            // not key=value
		"drop=2",          // out of range
		"drop=x",          // not a number
		"wibble=1",        // unknown key
		"crash=3",         // missing @
		"crash=-1@5ms",    // bad proc
		"crash=1@xx",      // bad duration
		"stall=1@5ms",     // missing +duration
		"stall=1@5ms+0ms", // zero duration
		"reorder=0.1",     // no jitter bound
		"delayp=0.5",      // delayp without delay
		"seed=abc",        // bad seed
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestSummary(t *testing.T) {
	cfg, err := ParseSpec("drop=0.1,crash=3@50ms,partition=1-2@50ms+200ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Summary()
	for _, want := range []string{"drop=10%", "crash=[3@50ms]", "partition=[1-2@50ms+200ms]", "seed=7"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
