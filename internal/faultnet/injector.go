package faultnet

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ProcCrash schedules a permanent processor failure: At after the network
// starts, Proc stops receiving and sending forever.
type ProcCrash struct {
	Proc int           `json:"proc"`
	At   time.Duration `json:"at"`
}

// ProcStall schedules a transient freeze: from At to At+For the processor
// executes nothing (its mailbox still accumulates). A stall longer than
// the protocol's death timeout looks exactly like a crash to the rest of
// the machine — that is the false-positive scenario the fencing logic in
// msgpass exists for.
type ProcStall struct {
	Proc int           `json:"proc"`
	At   time.Duration `json:"at"`
	For  time.Duration `json:"for"`
}

// LinkPartition schedules a bidirectional link blackhole: from At to
// At+For after the network starts, every packet between processors A
// and B — either direction — is silently dropped; the link heals when
// the window closes. Both endpoints stay alive and keep talking to the
// rest of the machine, which is what distinguishes a partition from a
// crash or a stall. Like crash drops, partition drops are counted in
// Stats but never consume a per-link PRNG decision and never appear in
// the event log, so the replay log stays aligned across runs.
type LinkPartition struct {
	A   int           `json:"a"`
	B   int           `json:"b"`
	At  time.Duration `json:"at"`
	For time.Duration `json:"for"`
}

// Config describes the fault mix for an Injector.
type Config struct {
	// Seed keys every per-link PRNG lane. Two injectors with the same seed
	// make identical decisions for the k'th packet on every link.
	Seed int64 `json:"seed"`

	// Drop, Dup, Reorder are per-packet probabilities in [0,1].
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`

	// Delay is the probability a packet is held back; DelayMax bounds the
	// uniform random hold time. Reordered packets use the same bound as
	// overtaking jitter (later sends on the link arrive first).
	Delay    float64       `json:"delay,omitempty"`
	DelayMax time.Duration `json:"delay_max,omitempty"`

	// Crashes and Stalls are processor failure schedules, fired off a
	// wall-clock timer from Start.
	Crashes []ProcCrash `json:"crashes,omitempty"`
	Stalls  []ProcStall `json:"stalls,omitempty"`

	// Partitions are scheduled bidirectional link blackholes.
	Partitions []LinkPartition `json:"partitions,omitempty"`

	// LogEvents records every per-link fault decision for replay
	// verification; MaxLogEvents bounds memory (0 = 1<<16 entries).
	LogEvents    bool `json:"log_events,omitempty"`
	MaxLogEvents int  `json:"max_log_events,omitempty"`
}

// Validate reports the first nonsensical knob, with enough context to fix
// the flag that produced it.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faultnet: %s probability %g out of range [0,1]", name, v)
		}
		return nil
	}
	if err := check("drop", c.Drop); err != nil {
		return err
	}
	if err := check("dup", c.Dup); err != nil {
		return err
	}
	if err := check("reorder", c.Reorder); err != nil {
		return err
	}
	if err := check("delay", c.Delay); err != nil {
		return err
	}
	if c.DelayMax < 0 {
		return fmt.Errorf("faultnet: negative delay bound %v", c.DelayMax)
	}
	if (c.Delay > 0 || c.Reorder > 0) && c.DelayMax == 0 {
		return fmt.Errorf("faultnet: delay/reorder enabled but delay bound is zero (set delay=<duration>)")
	}
	for _, cr := range c.Crashes {
		if cr.Proc < 0 {
			return fmt.Errorf("faultnet: crash of negative processor %d", cr.Proc)
		}
		if cr.At < 0 {
			return fmt.Errorf("faultnet: crash of processor %d at negative time %v", cr.Proc, cr.At)
		}
	}
	for _, st := range c.Stalls {
		if st.Proc < 0 {
			return fmt.Errorf("faultnet: stall of negative processor %d", st.Proc)
		}
		if st.At < 0 || st.For <= 0 {
			return fmt.Errorf("faultnet: stall of processor %d needs at>=0 and for>0 (got at=%v for=%v)", st.Proc, st.At, st.For)
		}
	}
	for _, pt := range c.Partitions {
		if pt.A < 0 || pt.B < 0 {
			return fmt.Errorf("faultnet: partition of negative processor (%d-%d)", pt.A, pt.B)
		}
		if pt.A == pt.B {
			return fmt.Errorf("faultnet: partition %d-%d needs two distinct processors", pt.A, pt.B)
		}
		if pt.At < 0 || pt.For <= 0 {
			return fmt.Errorf("faultnet: partition %d-%d needs at>=0 and for>0 (got at=%v for=%v)", pt.A, pt.B, pt.At, pt.For)
		}
	}
	return nil
}

// Event is one fault decision on one link: the idx'th packet sent from
// From to To was given Action (deliver, drop, dup, delay, reorder), with
// DelayNs the hold time when one applies. The (From,To,Idx) triple is the
// replay key: it is independent of goroutine scheduling.
type Event struct {
	From, To int
	Idx      int64
	Action   string
	DelayNs  int64
}

// splitmix64 is the standard 64-bit finalizer; good enough to decorrelate
// lane seeds derived from small integers.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// lane is the deterministic per-link decision stream. All state is
// guarded by the owning Injector's mutex.
type lane struct {
	state uint64 // splitmix64 stream state
	idx   int64  // packets seen on this link
}

func newLane(seed int64, from, to int) *lane {
	s := splitmix64(uint64(seed))
	s = splitmix64(s ^ uint64(from+1)*0x9E3779B97F4A7C15)
	s = splitmix64(s ^ uint64(to+2)*0xBF58476D1CE4E5B9)
	return &lane{state: s}
}

// next returns a uniform float64 in [0,1).
func (l *lane) next() float64 {
	l.state = splitmix64(l.state)
	return float64(l.state>>11) / (1 << 53)
}

// linkKey packs (from,to) — ids are small, and -1 is in range.
type linkKey struct{ from, to int }

// delayedPacket sits in the scheduler heap until its due time.
type delayedPacket struct {
	pkt Packet
	due time.Time
	seq int64 // tiebreak: stable pop order for equal due times
}

type delayHeap []delayedPacket

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)         { *h = append(*h, x.(delayedPacket)) }
func (h *delayHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h delayHeap) peek() delayedPacket { return h[0] }

// Injector is the seeded chaos network. Fault decisions are drawn per
// link in send order under a mutex; delayed and duplicated packets are
// re-delivered by a single scheduler goroutine off a min-heap, so
// delivery callbacks never run concurrently with the sender's fast path
// more than the real machine already tolerates.
type Injector struct {
	cfg     Config
	deliver func(Packet)
	start   time.Time

	mu     sync.Mutex
	lanes  map[linkKey]*lane
	events []Event
	heap   delayHeap
	seq    int64
	closed bool
	wake   chan struct{}
	done   chan struct{}

	crashed []atomic.Bool // indexed by proc id; grown under mu
	stalls  []ProcStall
	timers  []*time.Timer

	stats struct {
		sent, delivered, dropped, duplicated, delayed, reordered, crashDropped atomic.Int64
		partitionDropped                                                       atomic.Int64
	}
}

// NewInjector builds a chaos network from cfg. The caller should
// Validate first; NewInjector panics on an invalid config to catch
// programming errors (flag paths validate and return errors instead).
func NewInjector(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	max := cfg.MaxLogEvents
	if max == 0 {
		max = 1 << 16
	}
	cfg.MaxLogEvents = max
	return &Injector{
		cfg:   cfg,
		lanes: make(map[linkKey]*lane),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

func (in *Injector) Start(deliver func(Packet)) {
	in.deliver = deliver
	in.start = time.Now()
	in.stalls = in.cfg.Stalls
	for _, cr := range in.cfg.Crashes {
		in.growCrashed(cr.Proc)
		proc := cr.Proc
		in.timers = append(in.timers, time.AfterFunc(cr.At, func() {
			in.crashed[proc].Store(true)
		}))
	}
	go in.scheduler()
}

func (in *Injector) growCrashed(proc int) {
	for len(in.crashed) <= proc {
		in.crashed = append(in.crashed, atomic.Bool{})
	}
}

func (in *Injector) Alive(proc int) bool {
	if proc < 0 || proc >= len(in.crashed) {
		return true
	}
	return !in.crashed[proc].Load()
}

func (in *Injector) StalledUntil(proc int) (time.Time, bool) {
	now := time.Now()
	for _, st := range in.stalls {
		if st.Proc != proc {
			continue
		}
		begin := in.start.Add(st.At)
		end := begin.Add(st.For)
		if now.After(begin) && now.Before(end) {
			return end, true
		}
	}
	return time.Time{}, false
}

// partitioned reports whether the (from,to) link sits inside an active
// partition window at time now. Checked before the lane draw — like the
// crash gate — so partition drops consume no PRNG indices and the
// per-link decision log stays replayable with or without the partition.
func (in *Injector) partitioned(from, to int, now time.Time) bool {
	for _, pt := range in.cfg.Partitions {
		if (pt.A != from || pt.B != to) && (pt.A != to || pt.B != from) {
			continue
		}
		begin := in.start.Add(pt.At)
		if !now.Before(begin) && now.Before(begin.Add(pt.For)) {
			return true
		}
	}
	return false
}

func (in *Injector) Send(pkt Packet) {
	in.stats.sent.Add(1)
	if !in.Alive(pkt.From) || !in.Alive(pkt.To) {
		in.stats.crashDropped.Add(1)
		return
	}
	if in.partitioned(pkt.From, pkt.To, time.Now()) {
		in.stats.partitionDropped.Add(1)
		return
	}

	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	key := linkKey{pkt.From, pkt.To}
	l := in.lanes[key]
	if l == nil {
		l = newLane(in.cfg.Seed, pkt.From, pkt.To)
		in.lanes[key] = l
	}
	idx := l.idx
	l.idx++

	// Fixed draw order — drop, delay, reorder, dup — so the decision
	// stream for packet k on a link is a pure function of (seed, link, k).
	action, holdNs, dup := "deliver", int64(0), false
	if in.cfg.Drop > 0 && l.next() < in.cfg.Drop {
		action = "drop"
	} else {
		if in.cfg.Delay > 0 && l.next() < in.cfg.Delay {
			action = "delay"
			holdNs = int64(l.next() * float64(in.cfg.DelayMax))
		}
		if in.cfg.Reorder > 0 && l.next() < in.cfg.Reorder {
			// Overtaking jitter: hold this packet long enough that the
			// link's subsequent sends can arrive first.
			action = "reorder"
			holdNs = int64((0.5 + 0.5*l.next()) * float64(in.cfg.DelayMax))
		}
		if in.cfg.Dup > 0 && l.next() < in.cfg.Dup {
			dup = true
		}
	}
	if in.cfg.LogEvents && len(in.events) < in.cfg.MaxLogEvents {
		in.events = append(in.events, Event{From: pkt.From, To: pkt.To, Idx: idx, Action: action, DelayNs: holdNs})
		if dup && len(in.events) < in.cfg.MaxLogEvents {
			in.events = append(in.events, Event{From: pkt.From, To: pkt.To, Idx: idx, Action: "dup"})
		}
	}

	switch action {
	case "drop":
		in.mu.Unlock()
		in.stats.dropped.Add(1)
		return
	case "delay", "reorder":
		if action == "delay" {
			in.stats.delayed.Add(1)
		} else {
			in.stats.reordered.Add(1)
		}
		in.enqueueLocked(pkt, time.Duration(holdNs))
		if dup {
			in.stats.duplicated.Add(1)
			in.enqueueLocked(pkt, time.Duration(holdNs))
		}
		in.mu.Unlock()
		return
	}
	in.mu.Unlock()
	in.deliverNow(pkt)
	if dup {
		in.stats.duplicated.Add(1)
		in.deliverNow(pkt)
	}
}

// enqueueLocked schedules pkt for future delivery; callers hold in.mu.
func (in *Injector) enqueueLocked(pkt Packet, hold time.Duration) {
	in.seq++
	heap.Push(&in.heap, delayedPacket{pkt: pkt, due: time.Now().Add(hold), seq: in.seq})
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

func (in *Injector) deliverNow(pkt Packet) {
	if !in.Alive(pkt.To) {
		in.stats.crashDropped.Add(1)
		return
	}
	// A delayed packet is still "on the link": a partition window that
	// opens while it is in flight severs it.
	if in.partitioned(pkt.From, pkt.To, time.Now()) {
		in.stats.partitionDropped.Add(1)
		return
	}
	in.stats.delivered.Add(1)
	in.deliver(pkt)
}

// scheduler drains the delay heap in due order on one goroutine.
func (in *Injector) scheduler() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return
		}
		var wait time.Duration = time.Hour
		now := time.Now()
		for len(in.heap) > 0 {
			next := in.heap.peek()
			if next.due.After(now) {
				wait = next.due.Sub(now)
				break
			}
			heap.Pop(&in.heap)
			in.mu.Unlock()
			in.deliverNow(next.pkt)
			in.mu.Lock()
			now = time.Now()
		}
		in.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-in.wake:
		case <-timer.C:
		case <-in.done:
			return
		}
	}
}

func (in *Injector) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.heap = nil
	in.mu.Unlock()
	close(in.done)
	for _, t := range in.timers {
		t.Stop()
	}
}

func (in *Injector) Stats() Stats {
	return Stats{
		Sent:         in.stats.sent.Load(),
		Delivered:    in.stats.delivered.Load(),
		Dropped:      in.stats.dropped.Load(),
		Duplicated:   in.stats.duplicated.Load(),
		Delayed:      in.stats.delayed.Load(),
		Reordered:    in.stats.reordered.Load(),
		CrashDropped: in.stats.crashDropped.Load(),

		PartitionDropped: in.stats.partitionDropped.Load(),
	}
}

// Events returns a copy of the recorded decision log, sorted by
// (from, to, idx) — a canonical order independent of goroutine
// interleaving between links.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Idx != b.Idx {
			return a.Idx < b.Idx
		}
		return a.Action < b.Action
	})
	return out
}

// WriteLog writes the canonical event log, one decision per line. Two
// runs with the same seed and the same per-link send counts produce
// byte-for-byte identical output.
func (in *Injector) WriteLog(w io.Writer) error {
	for _, e := range in.Events() {
		if _, err := fmt.Fprintf(w, "%d>%d #%d %s %d\n", e.From, e.To, e.Idx, e.Action, e.DelayNs); err != nil {
			return err
		}
	}
	return nil
}
