package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the -faults flag syntax into a Config:
//
//	drop=0.1,dup=0.02,reorder=0.05,delay=2ms,delayp=0.2,crash=3@50ms,stall=2@20ms+30ms,seed=7
//
// Keys:
//
//	drop=P     per-packet drop probability, 0..1
//	dup=P      duplication probability, 0..1
//	reorder=P  overtaking-jitter probability, 0..1
//	delay=D    max hold duration (Go duration syntax); enables delay with
//	           probability 1 unless delayp is given
//	delayp=P   delay probability, 0..1
//	crash=N@T  processor N crashes T after start (repeatable)
//	stall=N@T+D  processor N freezes at T for D (repeatable)
//	partition=A-B@T+D  the A<->B link blackholes at T for D, both
//	           directions, healing after (repeatable)
//	seed=N     PRNG seed (default 1)
//
// The returned Config is already validated.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	delayP := -1.0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: %q is not key=value (expected e.g. drop=0.1)", part)
		}
		switch key {
		case "drop", "dup", "reorder", "delayp":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("faults: %s=%q must be a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "reorder":
				cfg.Reorder = p
			case "delayp":
				delayP = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("faults: delay=%q must be a positive duration like 2ms", val)
			}
			cfg.DelayMax = d
		case "crash":
			proc, at, err := parseProcAt(val)
			if err != nil {
				return cfg, fmt.Errorf("faults: crash=%q must be proc@time like 3@50ms: %v", val, err)
			}
			cfg.Crashes = append(cfg.Crashes, ProcCrash{Proc: proc, At: at})
		case "stall":
			pa, dur, ok := strings.Cut(val, "+")
			if !ok {
				return cfg, fmt.Errorf("faults: stall=%q must be proc@start+duration like 2@20ms+30ms", val)
			}
			proc, at, err := parseProcAt(pa)
			if err != nil {
				return cfg, fmt.Errorf("faults: stall=%q must be proc@start+duration like 2@20ms+30ms: %v", val, err)
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("faults: stall duration %q must be a positive duration like 30ms", dur)
			}
			cfg.Stalls = append(cfg.Stalls, ProcStall{Proc: proc, At: at, For: d})
		case "partition":
			pair, window, ok := strings.Cut(val, "@")
			if !ok {
				return cfg, fmt.Errorf("faults: partition=%q must be procA-procB@start+duration like 1-2@50ms+200ms", val)
			}
			as, bs, ok := strings.Cut(pair, "-")
			if !ok {
				return cfg, fmt.Errorf("faults: partition=%q must name two processors like 1-2@50ms+200ms", val)
			}
			a, errA := strconv.Atoi(as)
			b, errB := strconv.Atoi(bs)
			if errA != nil || errB != nil || a < 0 || b < 0 {
				return cfg, fmt.Errorf("faults: partition=%q has a bad processor id (want e.g. 1-2@50ms+200ms)", val)
			}
			if a == b {
				return cfg, fmt.Errorf("faults: partition=%q must name two distinct processors", val)
			}
			ts, ds, ok := strings.Cut(window, "+")
			if !ok {
				return cfg, fmt.Errorf("faults: partition=%q must schedule a window like 1-2@50ms+200ms", val)
			}
			at, err := time.ParseDuration(ts)
			if err != nil || at < 0 {
				return cfg, fmt.Errorf("faults: partition start %q must be a non-negative duration like 50ms", ts)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("faults: partition duration %q must be a positive duration like 200ms", ds)
			}
			cfg.Partitions = append(cfg.Partitions, LinkPartition{A: a, B: b, At: at, For: d})
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: seed=%q must be an integer", val)
			}
			cfg.Seed = n
		default:
			return cfg, fmt.Errorf("faults: unknown key %q (known: drop dup reorder delay delayp crash stall partition seed)", key)
		}
	}
	if cfg.DelayMax > 0 {
		if delayP >= 0 {
			cfg.Delay = delayP
		} else if cfg.Reorder == 0 {
			cfg.Delay = 1
		}
	} else if delayP > 0 {
		return cfg, fmt.Errorf("faults: delayp set but no delay=<duration> bound")
	}
	if cfg.Reorder > 0 && cfg.DelayMax == 0 {
		return cfg, fmt.Errorf("faults: reorder needs a delay=<duration> jitter bound")
	}
	return cfg, cfg.Validate()
}

func parseProcAt(s string) (int, time.Duration, error) {
	ps, ts, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("missing @")
	}
	proc, err := strconv.Atoi(ps)
	if err != nil || proc < 0 {
		return 0, 0, fmt.Errorf("bad processor id %q", ps)
	}
	at, err := time.ParseDuration(ts)
	if err != nil || at < 0 {
		return 0, 0, fmt.Errorf("bad time %q", ts)
	}
	return proc, at, nil
}

// Summary renders the active knobs for run reports, e.g.
// "drop=10% dup=2% crash=[3@50ms] seed=7".
func (c Config) Summary() string {
	var parts []string
	pct := func(name string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g%%", name, p*100))
		}
	}
	pct("drop", c.Drop)
	pct("dup", c.Dup)
	pct("reorder", c.Reorder)
	if c.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g%%<=%v", c.Delay*100, c.DelayMax))
	} else if c.DelayMax > 0 {
		parts = append(parts, fmt.Sprintf("jitter<=%v", c.DelayMax))
	}
	for _, cr := range c.Crashes {
		parts = append(parts, fmt.Sprintf("crash=[%d@%v]", cr.Proc, cr.At))
	}
	for _, st := range c.Stalls {
		parts = append(parts, fmt.Sprintf("stall=[%d@%v+%v]", st.Proc, st.At, st.For))
	}
	for _, pt := range c.Partitions {
		parts = append(parts, fmt.Sprintf("partition=[%d-%d@%v+%v]", pt.A, pt.B, pt.At, pt.For))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	return strings.Join(parts, " ")
}
