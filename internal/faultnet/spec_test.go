package faultnet

import (
	"strings"
	"testing"
)

// TestParseSpecErrorPaths holds every rejection branch of ParseSpec to
// two properties TestParseSpec's err-only sweep does not: the message
// must name the offending knob (an operator typing a 7-knob fault spec
// into a CI variable debugs from this string alone), and near-miss
// values on the range boundaries must land on the right side.
func TestParseSpecErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string // substring the error must carry
	}{
		{"bare key", "drop", "not key=value"},
		{"empty value", "drop=", "probability"},
		{"probability above one", "dup=1.0001", "dup"},
		{"probability negative", "reorder=-0.1", "reorder"},
		{"probability not a number", "drop=lots", "drop"},
		{"delay zero", "delay=0s", "positive duration"},
		{"delay negative", "delay=-2ms", "positive duration"},
		{"delay not a duration", "delay=fast", "delay"},
		{"crash missing at", "crash=3", "crash"},
		{"crash negative proc", "crash=-1@5ms", "crash"},
		{"crash bad time", "crash=1@soon", "crash"},
		{"stall missing duration", "stall=1@5ms", "stall"},
		{"stall zero duration", "stall=1@5ms+0s", "positive duration"},
		{"stall bad start", "stall=x@5ms+1ms", "stall"},
		{"partition missing window", "partition=1-2", "partition"},
		{"partition missing peer", "partition=1@5ms+1ms", "partition"},
		{"partition bad proc", "partition=a-2@5ms+1ms", "partition"},
		{"partition negative proc", "partition=-1-2@5ms+1ms", "partition"},
		{"partition self link", "partition=2-2@5ms+1ms", "distinct"},
		{"partition missing duration", "partition=1-2@5ms", "partition"},
		{"partition zero duration", "partition=1-2@5ms+0s", "positive duration"},
		{"partition bad start", "partition=1-2@soon+1ms", "partition start"},
		{"seed not integer", "seed=1.5", "seed"},
		{"seed empty", "seed=", "seed"},
		{"unknown knob", "wibble=1", "unknown key"},
		{"unknown knob names known set", "wibble=1", "drop dup reorder"},
		{"reorder without jitter bound", "reorder=0.1", "delay"},
		{"delayp without delay", "delayp=0.5", "delayp"},
		{"bad knob after good ones", "drop=0.1,dup=0.1,oops=1", "oops"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ParseSpec(%q) error %q does not mention %q", tc.spec, err, tc.want)
			}
		})
	}

	// Boundary values that must parse: the closed interval ends and
	// whitespace/empty-part tolerance (trailing comma, padded parts).
	for _, good := range []string{
		"",
		"drop=0",
		"drop=1",
		"delay=1ns",
		"crash=0@0s",
		"partition=0-1@0s+1ns",
		" drop=0.5 , dup=0.25 ,",
	} {
		if _, err := ParseSpec(good); err != nil {
			t.Errorf("ParseSpec(%q) rejected: %v", good, err)
		}
	}
}
