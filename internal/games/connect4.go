package games

import (
	"fmt"
	"strings"

	"gametree/internal/engine"
)

// Connect4 is a connect-four position on a parametric board (standard play
// is 7 columns by 6 rows, four in a row to win). Columns fill bottom-up.
type Connect4 struct {
	W, H    int
	Need    int // in-a-row needed to win (4 in the standard game)
	Grid    []int8
	Heights []int8
	Mover   int8 // 1 or 2
	LastCol int8 // column of the last move, -1 initially
}

// NewConnect4 returns the empty board. Zero or negative dimensions panic.
func NewConnect4(w, h, need int) *Connect4 {
	if w < 1 || h < 1 || need < 2 {
		panic("games: NewConnect4 requires w,h >= 1 and need >= 2")
	}
	return &Connect4{
		W: w, H: h, Need: need,
		Grid:    make([]int8, w*h),
		Heights: make([]int8, w),
		Mover:   1,
		LastCol: -1,
	}
}

// StandardConnect4 returns the classic 7x6 four-in-a-row board.
func StandardConnect4() *Connect4 { return NewConnect4(7, 6, 4) }

func (p *Connect4) at(c, r int) int8 {
	if c < 0 || c >= p.W || r < 0 || r >= p.H {
		return -1
	}
	return p.Grid[c*p.H+r]
}

// Drop returns the position after the mover drops in column c, or nil if
// the column is full or out of range.
func (p *Connect4) Drop(c int) *Connect4 {
	if c < 0 || c >= p.W || int(p.Heights[c]) >= p.H {
		return nil
	}
	q := &Connect4{
		W: p.W, H: p.H, Need: p.Need,
		Grid:    append([]int8(nil), p.Grid...),
		Heights: append([]int8(nil), p.Heights...),
		Mover:   3 - p.Mover,
		LastCol: int8(c),
	}
	q.Grid[c*p.H+int(p.Heights[c])] = p.Mover
	q.Heights[c]++
	return q
}

// lastWon reports whether the player who made the last move completed a
// line through the last-dropped disc.
func (p *Connect4) lastWon() bool {
	if p.LastCol < 0 {
		return false
	}
	c := int(p.LastCol)
	r := int(p.Heights[c]) - 1
	who := p.at(c, r)
	dirs := [4][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}}
	for _, d := range dirs {
		run := 1
		for k := 1; p.at(c+k*d[0], r+k*d[1]) == who; k++ {
			run++
		}
		for k := 1; p.at(c-k*d[0], r-k*d[1]) == who; k++ {
			run++
		}
		if run >= p.Need {
			return true
		}
	}
	return false
}

// Moves returns the successor positions, center columns first (the
// standard ordering heuristic, which the paper's left-to-right semantics
// reward).
func (p *Connect4) Moves() []engine.Position {
	return p.AppendMoves(nil)
}

// AppendMoves implements engine.MoveAppender: the successors of Moves
// appended to dst, so the engine can recycle per-worker move buffers.
func (p *Connect4) AppendMoves(dst []engine.Position) []engine.Position {
	dst = dst[:0]
	if p.lastWon() {
		return dst
	}
	mid := p.W / 2
	for off := 0; off < p.W; off++ {
		cols := [2]int{mid - off, mid + off}
		for i, c := range cols {
			if i == 1 && off == 0 {
				break // mid only once
			}
			if c < 0 || c >= p.W {
				continue
			}
			if q := p.Drop(c); q != nil {
				dst = append(dst, q)
			}
		}
	}
	return dst
}

// Evaluate scores the position for the side to move: loss if the opponent
// just won; otherwise a heuristic counting open lines.
func (p *Connect4) Evaluate() int32 {
	if p.lastWon() {
		return -engine.WinScore()
	}
	me := p.Mover
	opp := int8(3 - me)
	var score int32
	// Score every window of length Need: +1 per my disc in windows with
	// no opponent disc, symmetric for the opponent, squared weighting.
	dirs := [4][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}}
	for c := 0; c < p.W; c++ {
		for r := 0; r < p.H; r++ {
			for _, d := range dirs {
				ec, er := c+(p.Need-1)*d[0], r+(p.Need-1)*d[1]
				if ec < 0 || ec >= p.W || er < 0 || er >= p.H {
					continue
				}
				var mine, theirs int32
				for k := 0; k < p.Need; k++ {
					switch p.at(c+k*d[0], r+k*d[1]) {
					case me:
						mine++
					case opp:
						theirs++
					}
				}
				if theirs == 0 {
					score += mine * mine
				}
				if mine == 0 {
					score -= theirs * theirs
				}
			}
		}
	}
	return score
}

// Full reports whether the board has no empty cells.
func (p *Connect4) Full() bool {
	for c := 0; c < p.W; c++ {
		if int(p.Heights[c]) < p.H {
			return false
		}
	}
	return true
}

func (p *Connect4) String() string {
	sym := [...]string{".", "X", "O"}
	var b strings.Builder
	for r := p.H - 1; r >= 0; r-- {
		for c := 0; c < p.W; c++ {
			b.WriteString(sym[p.at(c, r)])
		}
		b.WriteString("\n")
	}
	for c := 0; c < p.W; c++ {
		fmt.Fprintf(&b, "%d", c%10)
	}
	return b.String()
}

var (
	_ engine.Position     = (*Connect4)(nil)
	_ engine.MoveAppender = (*Connect4)(nil)
)

// Hash returns a position hash (FNV-1a over the grid and mover),
// enabling the engine's transposition table.
func (p *Connect4) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, c := range p.Grid {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= uint64(p.Mover)
	h *= 1099511628211
	return h
}
