package games

import (
	"strings"

	"gametree/internal/engine"
)

// Domineering is the classic combinatorial game: two players alternately
// place dominoes on a grid, Vertical covering two vertically adjacent
// cells and Horizontal two horizontally adjacent cells; the first player
// unable to move loses. Small boards have known game-theoretic outcomes
// (e.g. the 2x2, 3x3 and 4x4 boards are first-player wins for Vertical),
// which makes Domineering another closed-form oracle for the engine, with
// a very different branching structure from Nim or Connect-4.
type Domineering struct {
	W, H     int
	Occupied []bool
	// VerticalToMove: Vertical places vertical dominoes, Horizontal
	// horizontal ones. Vertical moves first by convention.
	VerticalToMove bool
}

// NewDomineering returns the empty w-by-h board with Vertical to move.
func NewDomineering(w, h int) *Domineering {
	if w < 1 || h < 1 {
		panic("games: NewDomineering requires positive dimensions")
	}
	return &Domineering{W: w, H: h, Occupied: make([]bool, w*h), VerticalToMove: true}
}

func (p *Domineering) at(c, r int) bool { return p.Occupied[r*p.W+c] }

// place returns the position after covering the two given cells.
func (p *Domineering) place(a, b int) *Domineering {
	q := &Domineering{
		W: p.W, H: p.H,
		Occupied:       append([]bool(nil), p.Occupied...),
		VerticalToMove: !p.VerticalToMove,
	}
	q.Occupied[a] = true
	q.Occupied[b] = true
	return q
}

// Moves returns every legal domino placement for the side to move.
func (p *Domineering) Moves() []engine.Position {
	return p.AppendMoves(nil)
}

// AppendMoves implements engine.MoveAppender: every legal domino placement
// appended to dst, letting the engine recycle per-worker move buffers.
func (p *Domineering) AppendMoves(dst []engine.Position) []engine.Position {
	dst = dst[:0]
	if p.VerticalToMove {
		for r := 0; r+1 < p.H; r++ {
			for c := 0; c < p.W; c++ {
				if !p.at(c, r) && !p.at(c, r+1) {
					dst = append(dst, p.place(r*p.W+c, (r+1)*p.W+c))
				}
			}
		}
		return dst
	}
	for r := 0; r < p.H; r++ {
		for c := 0; c+1 < p.W; c++ {
			if !p.at(c, r) && !p.at(c+1, r) {
				dst = append(dst, p.place(r*p.W+c, r*p.W+c+1))
			}
		}
	}
	return dst
}

// Evaluate: a player with no moves has lost. Non-terminal positions score
// by mobility difference (own moves minus opponent's), a standard
// Domineering heuristic.
func (p *Domineering) Evaluate() int32 {
	mine := int32(len(p.Moves()))
	if mine == 0 {
		return -engine.WinScore()
	}
	opp := &Domineering{W: p.W, H: p.H, Occupied: p.Occupied, VerticalToMove: !p.VerticalToMove}
	return mine - int32(len(opp.Moves()))
}

// MaxMoves bounds the game length (each move covers two cells).
func (p *Domineering) MaxMoves() int { return p.W * p.H / 2 }

// Hash returns a position hash (FNV-1a over cells and mover).
func (p *Domineering) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, o := range p.Occupied {
		x := uint64(0)
		if o {
			x = 1
		}
		h ^= x
		h *= 1099511628211
	}
	if p.VerticalToMove {
		h ^= 2
		h *= 1099511628211
	}
	return h
}

func (p *Domineering) String() string {
	var b strings.Builder
	for r := 0; r < p.H; r++ {
		for c := 0; c < p.W; c++ {
			if p.at(c, r) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if r+1 < p.H {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

var _ engine.Position = (*Domineering)(nil)
var _ engine.Hasher = (*Domineering)(nil)
var _ engine.MoveAppender = (*Domineering)(nil)
