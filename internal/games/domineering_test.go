package games

import (
	"context"
	"testing"

	"gametree/internal/engine"
)

// Known small-board outcomes (normal play, Vertical moves first):
// see Berlekamp/Conway/Guy "Winning Ways". On m x n boards:
//
//	1x1: no moves at all -> Vertical (to move) loses.
//	2x1: Vertical wins (one vertical move, then Horizontal is stuck).
//	1x2: Vertical has no move -> loses.
//	2x2: Vertical wins.
//	3x3: first player (Vertical) wins.
func TestDomineeringKnownOutcomes(t *testing.T) {
	cases := []struct {
		w, h        int
		verticalWin bool
	}{
		{1, 1, false},
		{1, 2, true},  // one vertical placement available (w=1,h=2)
		{2, 1, false}, // only a horizontal slot; Vertical cannot move
		{2, 2, true},
		{3, 3, true},
		{2, 3, true}, // 2 wide, 3 tall: Vertical wins
	}
	for _, c := range cases {
		p := NewDomineering(c.w, c.h)
		depth := c.w*c.h/2 + 1
		r := engine.Search(p, depth)
		got := r.Value > 0
		if got != c.verticalWin {
			t.Errorf("%dx%d: vertical wins=%v, want %v (value %d)", c.w, c.h, got, c.verticalWin, r.Value)
		}
	}
}

func TestDomineeringMoveGeneration(t *testing.T) {
	p := NewDomineering(3, 2)
	// Vertical: each of the 3 columns has one vertical slot.
	if got := len(p.Moves()); got != 3 {
		t.Errorf("vertical moves = %d, want 3", got)
	}
	q := p.Moves()[0].(*Domineering)
	if q.VerticalToMove {
		t.Error("turn did not flip")
	}
	// Horizontal on the remaining board: 2 rows x 2 slots = 4 minus those
	// blocked by the placed domino in column 0.
	if got := len(q.Moves()); got != 2 {
		t.Errorf("horizontal moves after vertical at col 0 = %d, want 2\n%s", got, q)
	}
}

func TestDomineeringTerminalAndString(t *testing.T) {
	p := NewDomineering(1, 1)
	if len(p.Moves()) != 0 {
		t.Error("1x1 has no moves")
	}
	if p.Evaluate() != -engine.WinScore() {
		t.Error("stuck player has lost")
	}
	if p.String() != "." {
		t.Errorf("String: %q", p.String())
	}
	full := NewDomineering(2, 2).Moves()[0].(*Domineering)
	if got := full.String(); got != "#.\n#." {
		t.Errorf("String:\n%s", got)
	}
}

func TestDomineeringParallelAndTT(t *testing.T) {
	p := NewDomineering(4, 3)
	depth := p.MaxMoves() + 1
	seq := engine.Search(p, depth)
	par, err := engine.SearchParallel(context.Background(), p, depth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Value != seq.Value {
		t.Errorf("parallel %d != sequential %d", par.Value, seq.Value)
	}
	tt, err := engine.SearchTT(context.Background(), p, depth, engine.SearchOptions{Table: engine.NewTable(1 << 16)})
	if err != nil || tt.Value != seq.Value {
		t.Errorf("tt %d != sequential %d (err %v)", tt.Value, seq.Value, err)
	}
	if tt.Nodes >= seq.Nodes {
		t.Errorf("domineering transposes, tt should help: %d vs %d nodes", tt.Nodes, seq.Nodes)
	}
}

func TestDomineeringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDomineering(0, 3)
}
