package games

import "testing"

// FuzzParseTTT: the board parser must never panic and must only accept
// 9-cell boards with plausible piece counts.
func FuzzParseTTT(f *testing.F) {
	for _, seed := range []string{"XOX.O..X.", ".........", "XXXXXXXXX", "", "XO"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseTTT(s)
		if err != nil {
			return
		}
		var x, o int
		for _, c := range p.Cells {
			switch c {
			case 1:
				x++
			case 2:
				o++
			}
		}
		if o > x || x > o+1 {
			t.Fatalf("accepted impossible counts X=%d O=%d from %q", x, o, s)
		}
		_ = p.Moves()
		_ = p.Evaluate()
	})
}
