package games

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"gametree/internal/core"
	"gametree/internal/engine"
)

// ---------------------------------------------------------------------------
// Tic-tac-toe

func TestTTTIsADraw(t *testing.T) {
	// The full game tree of tic-tac-toe is a draw under perfect play.
	r := engine.Search(TTT{}, 9)
	if r.Value != 0 {
		t.Errorf("tic-tac-toe value = %d, want 0 (draw)", r.Value)
	}
}

func TestTTTParallelAgrees(t *testing.T) {
	seq := engine.Search(TTT{}, 9)
	par, err := engine.SearchParallel(context.Background(), TTT{}, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Value != par.Value {
		t.Errorf("parallel %d != sequential %d", par.Value, seq.Value)
	}
}

func TestTTTForcedWin(t *testing.T) {
	// X to move with two in a row must win immediately.
	p, err := ParseTTT("XX.OO....")
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Search(p, 9)
	if r.Value != engine.WinScore() {
		t.Errorf("value %d, want winning score", r.Value)
	}
	q := p.Moves()[r.Best].(TTT)
	if cell := p.MoveCell(q); cell != 2 {
		t.Errorf("best move fills cell %d, want 2", cell)
	}
}

func TestTTTBlocksThreat(t *testing.T) {
	// O must block X's two in a row (cells 0,1 -> block at 2).
	p, err := ParseTTT("XX....O..")
	if err != nil {
		t.Fatal(err)
	}
	if p.mover() != 2 {
		t.Fatalf("expected O to move, got %d", p.mover())
	}
	r := engine.Search(p, 9)
	q := p.Moves()[r.Best].(TTT)
	if cell := p.MoveCell(q); cell != 2 {
		t.Errorf("O played %d, must block at 2", cell)
	}
}

func TestTTTWinnerAndTerminal(t *testing.T) {
	p, err := ParseTTT("XXXOO....")
	if err != nil {
		t.Fatal(err)
	}
	if p.Winner() != 1 {
		t.Errorf("winner %d, want X", p.Winner())
	}
	if len(p.Moves()) != 0 {
		t.Error("finished game should have no moves")
	}
	if p.Evaluate() != -engine.WinScore() {
		t.Errorf("loser-to-move evaluation %d", p.Evaluate())
	}
}

func TestParseTTTErrors(t *testing.T) {
	for _, bad := range []string{"", "XXXX", "XXXXXXXXXX", "OOOOOOOOO", "O........", "XX......."} {
		if _, err := ParseTTT(bad); err == nil {
			t.Errorf("ParseTTT(%q) should fail", bad)
		}
	}
	p, err := ParseTTT("X O\n...\n..X") // whitespace ignored, 9 cells X/O/.
	if err == nil {
		_ = p
	}
	good, err := ParseTTT("XOX.O..X.")
	if err != nil {
		t.Fatal(err)
	}
	if good.mover() != 2 { // 4 X vs 2 O -> wait: X=3 O=2 -> O? count: X,O,X,.,O,.,.,X,. -> X=3 O=2 -> O moves
		t.Errorf("mover = %d", good.mover())
	}
	if !strings.Contains(good.String(), "XOX") {
		t.Errorf("String:\n%s", good)
	}
}

// ---------------------------------------------------------------------------
// Connect 4

func TestConnect4WinDetection(t *testing.T) {
	p := NewConnect4(5, 4, 3)
	// X drops 0,0 is interleaved with O: X:0 O:4 X:1 O:4 X:2 -> X wins (3 in a row).
	seq := []int{0, 4, 1, 4, 2}
	cur := p
	for i, c := range seq {
		cur = cur.Drop(c)
		if cur == nil {
			t.Fatalf("drop %d failed", c)
		}
		if i < len(seq)-1 && cur.lastWon() {
			t.Fatalf("premature win after move %d", i)
		}
	}
	if !cur.lastWon() {
		t.Fatal("X should have won")
	}
	if len(cur.Moves()) != 0 {
		t.Error("won game should be terminal")
	}
	if cur.Evaluate() != -engine.WinScore() {
		t.Errorf("loser-to-move eval %d", cur.Evaluate())
	}
}

func TestConnect4VerticalDiagonalWins(t *testing.T) {
	// Vertical: X drops column 0 three times (3-in-a-row board).
	p := NewConnect4(4, 4, 3)
	cur := p
	for _, c := range []int{0, 1, 0, 1, 0} {
		cur = cur.Drop(c)
	}
	if !cur.lastWon() {
		t.Error("vertical win missed")
	}
	// Diagonal: build a staircase.
	cur = NewConnect4(4, 4, 3)
	for _, c := range []int{0, 1, 1, 2, 3, 2, 2} {
		cur = cur.Drop(c)
		if cur == nil {
			t.Fatal("drop failed")
		}
	}
	if !cur.lastWon() {
		t.Errorf("diagonal win missed:\n%s", cur)
	}
}

func TestConnect4DropBounds(t *testing.T) {
	p := NewConnect4(3, 2, 3)
	if p.Drop(-1) != nil || p.Drop(3) != nil {
		t.Error("out-of-range drop accepted")
	}
	cur := p.Drop(0).Drop(0)
	if cur.Drop(0) != nil {
		t.Error("overfull column accepted")
	}
	if cur.Full() {
		t.Error("board not full yet")
	}
}

func TestConnect4MovesCenterFirst(t *testing.T) {
	p := StandardConnect4()
	moves := p.Moves()
	if len(moves) != 7 {
		t.Fatalf("%d root moves", len(moves))
	}
	first := moves[0].(*Connect4)
	if first.LastCol != 3 {
		t.Errorf("first move column %d, want center 3", first.LastCol)
	}
}

func TestConnect4EngineFindsImmediateWin(t *testing.T) {
	// X has three in a row on the bottom; X to move wins by dropping at
	// column 3.
	p := NewConnect4(7, 6, 4)
	cur := p
	for _, c := range []int{0, 6, 1, 6, 2, 5} {
		cur = cur.Drop(c)
	}
	r, err := engine.SearchParallel(context.Background(), cur, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != engine.WinScore() {
		t.Errorf("value %d, want win", r.Value)
	}
	best := cur.Moves()[r.Best].(*Connect4)
	if best.LastCol != 3 {
		t.Errorf("winning move column %d, want 3", best.LastCol)
	}
}

func TestConnect4ParallelAgreesWithSequential(t *testing.T) {
	p := NewConnect4(5, 4, 3)
	for depth := 1; depth <= 6; depth++ {
		seq := engine.Search(p, depth)
		par, err := engine.SearchParallel(context.Background(), p, depth, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Value != par.Value {
			t.Errorf("depth %d: parallel %d != sequential %d", depth, par.Value, seq.Value)
		}
	}
}

func TestConnect4Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewConnect4(0, 5, 4)
}

// ---------------------------------------------------------------------------
// Nim

func TestNimMatchesXorRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		heaps := make([]int, 1+rng.Intn(3))
		for i := range heaps {
			heaps[i] = rng.Intn(4)
		}
		p := NewNim(heaps...)
		depth := p.TotalObjects()
		if depth == 0 {
			continue
		}
		r := engine.Search(p, depth)
		wantWin := p.XorValue() != 0
		gotWin := r.Value > 0
		if wantWin != gotWin {
			t.Errorf("nim%v: engine says win=%v, xor rule says %v (value %d)",
				heaps, gotWin, wantWin, r.Value)
		}
	}
}

func TestNimTerminal(t *testing.T) {
	p := NewNim(0, 0)
	if len(p.Moves()) != 0 {
		t.Error("empty nim should be terminal")
	}
	if p.Evaluate() != -engine.WinScore() {
		t.Error("side to move at empty heaps has lost")
	}
	if NewNim(1, 2, 3).String() != "nim[1 2 3]" {
		t.Errorf("String: %s", NewNim(1, 2, 3))
	}
}

func TestNimPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNim(1, -2)
}

// ---------------------------------------------------------------------------
// Horn prover

func TestHornBasicDeduction(t *testing.T) {
	kb, err := NewKB([]Rule{
		{Head: "mortal", Body: []string{"man"}},
		{Head: "man", Body: []string{"socrates"}},
		{Head: "socrates"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Provable("mortal") {
		t.Error("mortal should be provable")
	}
	if kb.Provable("god") {
		t.Error("god should not be provable")
	}
	got, err := kb.ProvableByTree("mortal")
	if err != nil || !got {
		t.Errorf("tree proof failed: %v %v", got, err)
	}
	got, err = kb.ProvableByTree("god")
	if err != nil || got {
		t.Errorf("tree disproof failed: %v %v", got, err)
	}
}

func TestHornConjunctionAndDisjunction(t *testing.T) {
	kb, err := NewKB([]Rule{
		{Head: "g", Body: []string{"a", "b"}},
		{Head: "g", Body: []string{"c"}},
		{Head: "a"},
		// b missing: first rule fails
		{Head: "c", Body: []string{"a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Provable("g") {
		t.Error("g provable via second rule")
	}
	byTree, err := kb.ProvableByTree("g")
	if err != nil || !byTree {
		t.Errorf("tree: %v %v", byTree, err)
	}
}

func TestHornCycleRejected(t *testing.T) {
	_, err := NewKB([]Rule{
		{Head: "a", Body: []string{"b"}},
		{Head: "b", Body: []string{"a"}},
	})
	if err == nil {
		t.Error("cyclic KB accepted")
	}
	if _, err := NewKB([]Rule{{Head: "x", Body: []string{"x"}}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewKB([]Rule{{Head: ""}}); err == nil {
		t.Error("empty head accepted")
	}
}

// Property: for random layered KBs, the recursive prover and the NOR-tree
// evaluation agree, and so do all the paper's SOLVE algorithms.
func TestHornTreeAgreesWithProverAndSolvers(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		kb, goal := LayeredKB(3, 3, 2, 2, 0.5, seed)
		want := kb.Provable(goal)
		tr, err := kb.ProofTree(goal, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Evaluate() == 0; got != want {
			t.Fatalf("seed %d: tree %v, prover %v", seed, got, want)
		}
		for w := 0; w <= 2; w++ {
			m, err := core.ParallelSolve(tr, w, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Value == 0; got != want {
				t.Fatalf("seed %d width %d: SOLVE %v, prover %v", seed, w, got, want)
			}
		}
	}
}

func TestHornNodeLimit(t *testing.T) {
	kb, goal := LayeredKB(6, 2, 3, 3, 0.5, 1)
	if _, err := kb.ProofTree(goal, 10); err == nil {
		t.Error("node limit not enforced")
	}
}

func TestHornAtoms(t *testing.T) {
	kb, err := NewKB([]Rule{{Head: "b", Body: []string{"a"}}, {Head: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	atoms := kb.Atoms()
	if len(atoms) != 2 || atoms[0] != "a" || atoms[1] != "b" {
		t.Errorf("atoms: %v", atoms)
	}
}

func TestLayeredKBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LayeredKB(0, 1, 1, 1, 0.5, 1)
}

func TestTranspositionTableHelpsOnConnect4(t *testing.T) {
	pos := NewConnect4(6, 5, 4)
	const depth = 7
	plain := engine.Search(pos, depth)
	tab := engine.NewTable(1 << 16)
	first, err := engine.SearchTT(context.Background(), pos, depth, engine.SearchOptions{Table: tab})
	if err != nil || first.Value != plain.Value {
		t.Fatalf("tt value %d != plain %d (err %v)", first.Value, plain.Value, err)
	}
	// Connect-4 transposes heavily (move-order permutations), so even the
	// first table-backed search must beat the plain one.
	if first.Nodes >= plain.Nodes {
		t.Errorf("tt search visited %d nodes, plain %d", first.Nodes, plain.Nodes)
	}
	// A repeated search on the warm table is nearly free.
	second, err := engine.SearchTT(context.Background(), pos, depth, engine.SearchOptions{Table: tab})
	if err != nil || second.Value != plain.Value {
		t.Fatalf("warm tt value %d (err %v)", second.Value, err)
	}
	if second.Nodes > first.Nodes/10 {
		t.Errorf("warm table search visited %d nodes (cold %d)", second.Nodes, first.Nodes)
	}
}

func TestIterativeDeepeningOnTTT(t *testing.T) {
	r, pv, err := engine.SearchIterative(context.Background(), TTT{}, 9, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Errorf("tic-tac-toe iterative value %d, want draw", r.Value)
	}
	if len(pv) == 0 {
		t.Error("no principal variation")
	}
	// Replay the PV: it must be a legal line of play.
	cur := engine.Position(TTT{})
	for i, mv := range pv {
		moves := cur.Moves()
		if mv < 0 || mv >= len(moves) {
			t.Fatalf("pv[%d]=%d illegal", i, mv)
		}
		cur = moves[mv]
	}
}

func TestHashesDistinguishPositions(t *testing.T) {
	a, _ := ParseTTT("X........")
	b, _ := ParseTTT(".X.......")
	if a.Hash() == b.Hash() {
		t.Error("distinct TTT positions share a hash")
	}
	if NewNim(1, 12).Hash() == NewNim(11, 2).Hash() {
		t.Error("nim (1,12) and (11,2) share a hash")
	}
	c1 := StandardConnect4().Drop(0)
	c2 := StandardConnect4().Drop(1)
	if c1.Hash() == c2.Hash() {
		t.Error("distinct connect4 positions share a hash")
	}
}
