package games

import (
	"fmt"
	"sort"

	"gametree/internal/tree"
)

// This file implements the theorem-proving motivation from Section 1 of
// the paper: "The evaluation problem for AND/OR trees is closely related
// to the problem of efficiently executing theorem-proving algorithms for
// the propositional calculus based on backward-chaining deduction."
//
// A Horn knowledge base maps a goal to the AND/OR tree of its backward-
// chaining proof search: the goal is an OR over the rules that conclude
// it; a rule is an AND over its premises. That AND/OR tree converts to the
// paper's NOR normal form (complementing leaves at even depth and the root
// value), and all the SOLVE algorithms apply to it.

// Rule is a definite Horn clause: Head :- Body[0], ..., Body[k-1].
// An empty Body makes Head a fact.
type Rule struct {
	Head string
	Body []string
}

// KB is a propositional Horn knowledge base.
type KB struct {
	rules map[string][]Rule
}

// NewKB builds a knowledge base from rules. It rejects cyclic dependency
// graphs, since backward chaining over a cyclic KB yields an infinite
// AND/OR tree.
func NewKB(rules []Rule) (*KB, error) {
	kb := &KB{rules: make(map[string][]Rule)}
	for _, r := range rules {
		if r.Head == "" {
			return nil, fmt.Errorf("games: rule with empty head")
		}
		kb.rules[r.Head] = append(kb.rules[r.Head], r)
	}
	if cyc := kb.findCycle(); cyc != "" {
		return nil, fmt.Errorf("games: cyclic knowledge base through %q", cyc)
	}
	return kb, nil
}

func (kb *KB) findCycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(g string) string
	visit = func(g string) string {
		color[g] = gray
		for _, r := range kb.rules[g] {
			for _, p := range r.Body {
				switch color[p] {
				case gray:
					return p
				case white:
					if c := visit(p); c != "" {
						return c
					}
				}
			}
		}
		color[g] = black
		return ""
	}
	heads := make([]string, 0, len(kb.rules))
	for h := range kb.rules {
		heads = append(heads, h)
	}
	sort.Strings(heads)
	for _, h := range heads {
		if color[h] == white {
			if c := visit(h); c != "" {
				return c
			}
		}
	}
	return ""
}

// Provable reports whether goal follows from the KB, by direct recursive
// backward chaining. It is the oracle for the tree-based proofs.
func (kb *KB) Provable(goal string) bool {
	var prove func(g string) bool
	prove = func(g string) bool {
		for _, r := range kb.rules[g] {
			ok := true
			for _, p := range r.Body {
				if !prove(p) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	return prove(goal)
}

// ProofTree builds the backward-chaining search space for goal as a NOR
// tree; evaluating the NOR tree and complementing the root (the root is at
// even depth) decides provability. ProofSize limits the number of nodes to
// protect against blow-up; 0 means one million.
func (kb *KB) ProofTree(goal string, maxNodes int) (*tree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	b := tree.NewBuilder(tree.NOR)
	n := 0
	// The AND/OR value of a leaf, complemented iff the leaf sits at even
	// depth, per the NOR-equivalence of Section 2 (the leaf's AND/OR
	// value g becomes the NOR leaf value g XOR [depth even]).
	leafVal := func(depth int, val bool) int32 {
		if depth%2 == 0 {
			val = !val
		}
		if val {
			return 1
		}
		return 0
	}
	var grow func(dst tree.NodeID, g string, depth int) error
	// grow builds the OR node for goal g at dst.
	grow = func(dst tree.NodeID, g string, depth int) error {
		if n++; n > maxNodes {
			return fmt.Errorf("games: proof tree for %q exceeds %d nodes", goal, maxNodes)
		}
		rules := kb.rules[g]
		if len(rules) == 0 {
			// Unprovable atom: OR of nothing = false.
			b.SetLeafValue(dst, leafVal(depth, false))
			return nil
		}
		// Facts (empty-body rules) make the goal immediately true.
		for _, r := range rules {
			if len(r.Body) == 0 {
				b.SetLeafValue(dst, leafVal(depth, true))
				return nil
			}
		}
		first := b.AddChildren(dst, len(rules))
		for i, r := range rules {
			and := first + tree.NodeID(i)
			if n++; n > maxNodes {
				return fmt.Errorf("games: proof tree for %q exceeds %d nodes", goal, maxNodes)
			}
			// AND node over the premises.
			pfirst := b.AddChildren(and, len(r.Body))
			for j, prem := range r.Body {
				if err := grow(pfirst+tree.NodeID(j), prem, depth+2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := grow(b.Root(), goal, 0); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ProvableByTree decides provability by building the NOR tree and
// evaluating it: goal provable iff the NOR root evaluates to 0 (the root's
// AND/OR value is the complement of the NOR value at even depth).
func (kb *KB) ProvableByTree(goal string) (bool, error) {
	t, err := kb.ProofTree(goal, 0)
	if err != nil {
		return false, err
	}
	return t.Evaluate() == 0, nil
}

// Atoms returns the sorted atoms mentioned anywhere in the KB.
func (kb *KB) Atoms() []string {
	set := map[string]bool{}
	for h, rs := range kb.rules {
		set[h] = true
		for _, r := range rs {
			for _, p := range r.Body {
				set[p] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// LayeredKB generates a synthetic layered knowledge base for benchmarks:
// layers levels of atoms, each atom concluded by rulesPer rules whose
// bodies reference bodyLen atoms of the next layer down; the bottom layer
// atoms are facts with probability factBias (deterministically from seed).
// The proof search space for the top atom is a uniform-ish AND/OR tree —
// exactly the workload the paper's intro motivates.
func LayeredKB(layers, atomsPer, rulesPer, bodyLen int, factBias float64, seed int64) (*KB, string) {
	if layers < 1 || atomsPer < 1 || rulesPer < 1 || bodyLen < 1 {
		panic("games: LayeredKB parameters must be positive")
	}
	name := func(layer, i int) string { return fmt.Sprintf("a%d_%d", layer, i%atomsPer) }
	rng := newSplitMix(uint64(seed))
	var rules []Rule
	for l := 0; l < layers; l++ {
		for i := 0; i < atomsPer; i++ {
			for r := 0; r < rulesPer; r++ {
				body := make([]string, bodyLen)
				for j := range body {
					body[j] = name(l+1, int(rng.next()%uint64(atomsPer)))
				}
				rules = append(rules, Rule{Head: name(l, i), Body: body})
			}
		}
	}
	for i := 0; i < atomsPer; i++ {
		if float64(rng.next()%1000)/1000 < factBias {
			rules = append(rules, Rule{Head: name(layers, i)})
		}
	}
	kb, err := NewKB(rules)
	if err != nil {
		panic("games: LayeredKB built a cyclic KB (bug): " + err.Error())
	}
	return kb, name(0, 0)
}

// splitMix is a tiny deterministic RNG so LayeredKB does not depend on
// math/rand ordering guarantees.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
