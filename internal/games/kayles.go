package games

import (
	"fmt"
	"sort"

	"gametree/internal/engine"
)

// Kayles is the classic octal game 0.77: a row of pins; a move knocks
// down one pin or two adjacent pins, possibly splitting a row into two
// independent rows; the player who cannot move loses. Its Sprague-Grundy
// values are famously eventually periodic with period 12, giving an exact
// closed-form oracle for the engine on yet another move structure
// (splitting positions into independent components).
type Kayles struct {
	Rows []int // lengths of the remaining independent rows
}

// NewKayles returns a position with the given row lengths.
func NewKayles(rows ...int) Kayles {
	for _, r := range rows {
		if r < 0 {
			panic("games: negative Kayles row")
		}
	}
	return Kayles{Rows: append([]int(nil), rows...)}
}

// kaylesGrundyTable holds the Grundy values for rows 0..83; from 71 on the
// sequence is purely periodic with period 12:
// 4 1 2 8 1 4 7 2 1 8 2 7.
var kaylesGrundyTable = []int{
	0, 1, 2, 3, 1, 4, 3, 2, 1, 4, 2, 6,
	4, 1, 2, 7, 1, 4, 3, 2, 1, 4, 6, 7,
	4, 1, 2, 8, 5, 4, 7, 2, 1, 8, 6, 7,
	4, 1, 2, 3, 1, 4, 7, 2, 1, 8, 2, 7,
	4, 1, 2, 8, 1, 4, 7, 2, 1, 4, 2, 7,
	4, 1, 2, 8, 1, 4, 7, 2, 1, 8, 6, 7,
	4, 1, 2, 8, 1, 4, 7, 2, 1, 8, 2, 7,
}

// KaylesGrundy returns the Grundy value of a single row of length n.
func KaylesGrundy(n int) int {
	if n < 0 {
		panic("games: negative row")
	}
	if n < len(kaylesGrundyTable) {
		return kaylesGrundyTable[n]
	}
	// Purely periodic with period 12 beyond the table.
	return kaylesGrundyTable[71+(n-71)%12]
}

// GrundyValue returns the nim-sum of the row Grundy values; the side to
// move wins under perfect play iff it is non-zero.
func (p Kayles) GrundyValue() int {
	g := 0
	for _, r := range p.Rows {
		g ^= KaylesGrundy(r)
	}
	return g
}

// Moves returns every position reachable by removing one pin or two
// adjacent pins from one row (splitting it into the two remaining parts).
func (p Kayles) Moves() []engine.Position {
	var out []engine.Position
	emit := func(rowIdx, left, right int) {
		q := Kayles{Rows: make([]int, 0, len(p.Rows)+1)}
		for j, r := range p.Rows {
			if j == rowIdx {
				continue
			}
			q.Rows = append(q.Rows, r)
		}
		if left > 0 {
			q.Rows = append(q.Rows, left)
		}
		if right > 0 {
			q.Rows = append(q.Rows, right)
		}
		out = append(out, q)
	}
	for i, r := range p.Rows {
		for take := 1; take <= 2 && take <= r; take++ {
			// Removing `take` pins starting at offset o splits the row
			// into o and r-o-take. Offsets o and r-o-take produce
			// mirror-duplicate positions; generating all is simplest
			// and still correct.
			for o := 0; o+take <= r; o++ {
				emit(i, o, r-o-take)
			}
		}
	}
	return out
}

// Evaluate: the side to move with no pins left has lost.
func (p Kayles) Evaluate() int32 {
	for _, r := range p.Rows {
		if r > 0 {
			return 0
		}
	}
	return -engine.WinScore()
}

// TotalPins bounds the remaining game length.
func (p Kayles) TotalPins() int {
	n := 0
	for _, r := range p.Rows {
		n += r
	}
	return n
}

// Hash returns a canonical position hash (rows sorted: row order is
// irrelevant to the game value).
func (p Kayles) Hash() uint64 {
	s := append([]int(nil), p.Rows...)
	sort.Ints(s)
	h := uint64(1469598103934665603)
	for _, r := range s {
		if r == 0 {
			continue
		}
		h ^= uint64(r)
		h *= 1099511628211
		h ^= 0xaa
		h *= 1099511628211
	}
	return h
}

func (p Kayles) String() string {
	s := append([]int(nil), p.Rows...)
	sort.Ints(s)
	return fmt.Sprintf("kayles%v", s)
}

var _ engine.Position = Kayles{}
var _ engine.Hasher = Kayles{}
