package games

import (
	"context"
	"testing"

	"gametree/internal/engine"
)

// grundyByRecursion computes Grundy values from first principles (mex over
// moves), independent of the table.
func grundyByRecursion(n int, memo map[int]int) int {
	if g, ok := memo[n]; ok {
		return g
	}
	reach := map[int]bool{}
	for take := 1; take <= 2 && take <= n; take++ {
		for o := 0; o+take <= n; o++ {
			reach[grundyByRecursion(o, memo)^grundyByRecursion(n-o-take, memo)] = true
		}
	}
	g := 0
	for reach[g] {
		g++
	}
	memo[n] = g
	return g
}

func TestKaylesGrundyTableAgainstRecursion(t *testing.T) {
	memo := map[int]int{0: 0}
	for n := 0; n <= 120; n++ {
		want := grundyByRecursion(n, memo)
		if got := KaylesGrundy(n); got != want {
			t.Fatalf("G(%d) = %d, recursion says %d", n, got, want)
		}
	}
}

func TestKaylesEngineMatchesGrundyTheory(t *testing.T) {
	cases := [][]int{
		{1}, {2}, {3}, {5}, {1, 1}, {2, 1}, {3, 4},
		{2, 2}, {5, 4, 1}, {6, 3},
	}
	tab := engine.NewTable(1 << 16)
	for _, rows := range cases {
		p := NewKayles(rows...)
		depth := p.TotalPins() + 1
		r, err := engine.SearchTT(context.Background(), p, depth, engine.SearchOptions{Table: tab})
		if err != nil {
			t.Fatal(err)
		}
		engineWin := r.Value > 0
		theoryWin := p.GrundyValue() != 0
		if engineWin != theoryWin {
			t.Errorf("kayles%v: engine win=%v, Grundy theory win=%v (G=%d)",
				rows, engineWin, theoryWin, p.GrundyValue())
		}
	}
}

func TestKaylesParallelAgrees(t *testing.T) {
	p := NewKayles(4, 3)
	depth := p.TotalPins() + 1
	seq := engine.Search(p, depth)
	par, err := engine.SearchParallel(context.Background(), p, depth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Value != seq.Value {
		t.Errorf("parallel %d != sequential %d", par.Value, seq.Value)
	}
}

func TestKaylesBasics(t *testing.T) {
	p := NewKayles(0)
	if len(p.Moves()) != 0 || p.Evaluate() != -engine.WinScore() {
		t.Error("empty kayles should be a terminal loss")
	}
	one := NewKayles(1)
	if len(one.Moves()) != 1 {
		t.Errorf("row of 1: %d moves", len(one.Moves()))
	}
	two := NewKayles(2)
	// take 1 at offset 0 -> [1]; take 1 at offset 1 -> [1]; take 2 -> [].
	if len(two.Moves()) != 3 {
		t.Errorf("row of 2: %d moves", len(two.Moves()))
	}
	if NewKayles(3, 1).String() != "kayles[1 3]" {
		t.Errorf("String: %s", NewKayles(3, 1))
	}
	// Hash is order-canonical.
	if NewKayles(3, 1).Hash() != NewKayles(1, 3).Hash() {
		t.Error("hash not canonical under row order")
	}
	if NewKayles(3).Hash() == NewKayles(1, 2).Hash() {
		t.Error("distinct positions share a hash")
	}
}

func TestKaylesPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewKayles(-1) })
	mustPanic(func() { KaylesGrundy(-2) })
}
