package games

import (
	"fmt"
	"sort"

	"gametree/internal/engine"
)

// Nim is a normal-play Nim position: the player who takes the last object
// wins (a player facing all-empty heaps has lost). Its game value is known
// in closed form (the Sprague–Grundy xor rule), which makes it the perfect
// correctness oracle for the search engine.
type Nim struct {
	Heaps []int
}

// NewNim returns a Nim position with the given heaps. Negative heap sizes
// panic.
func NewNim(heaps ...int) Nim {
	for _, h := range heaps {
		if h < 0 {
			panic("games: negative Nim heap")
		}
	}
	return Nim{Heaps: append([]int(nil), heaps...)}
}

// XorValue returns the nim-sum. The side to move wins under perfect play
// iff it is non-zero.
func (p Nim) XorValue() int {
	x := 0
	for _, h := range p.Heaps {
		x ^= h
	}
	return x
}

// Moves returns every position reachable by removing 1..h objects from a
// single heap.
func (p Nim) Moves() []engine.Position {
	var out []engine.Position
	for i, h := range p.Heaps {
		for take := 1; take <= h; take++ {
			q := Nim{Heaps: append([]int(nil), p.Heaps...)}
			q.Heaps[i] -= take
			out = append(out, q)
		}
	}
	return out
}

// Evaluate returns the terminal score: all heaps empty means the side to
// move lost (the opponent took the last object).
func (p Nim) Evaluate() int32 {
	for _, h := range p.Heaps {
		if h > 0 {
			return 0 // non-terminal; only reached at a depth horizon
		}
	}
	return -engine.WinScore()
}

// TotalObjects returns the number of objects left (an upper bound on the
// remaining game length, hence a sufficient search depth).
func (p Nim) TotalObjects() int {
	n := 0
	for _, h := range p.Heaps {
		n += h
	}
	return n
}

func (p Nim) String() string {
	s := append([]int(nil), p.Heaps...)
	sort.Ints(s)
	return fmt.Sprintf("nim%v", s)
}

var _ engine.Position = Nim{}

// Hash returns a position hash (FNV-1a over the heap sizes in order),
// enabling the engine's transposition table.
func (p Nim) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, heap := range p.Heaps {
		h ^= uint64(heap)
		h *= 1099511628211
		h ^= 0xff // separator so (1,12) and (11,2) differ
		h *= 1099511628211
	}
	return h
}
