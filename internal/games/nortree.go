package games

import (
	"fmt"

	"gametree/internal/engine"
	"gametree/internal/tree"
)

// NORTree adapts a node of a Boolean NOR tree (the paper's normal form,
// and the shape games/horn.ProofTree emits) to an engine.Position, so
// the proof-number solver can decide NOR trees through the same
// interface as Nim or Kayles.
//
// The game reading of a NOR tree: the player to move at v picks a child
// and hands the move to the opponent; at a leaf, the side to move wins
// iff the leaf value is 0. By induction the side to move at v wins iff
// the NOR value f(v) is 0 — at an internal node the mover wins iff some
// child c has the opponent losing, i.e. f(c) = 1, i.e. f(v) = 0. A
// Proven verdict at the root therefore means the NOR root evaluates to
// 0, which for Horn proof trees is exactly "the goal is provable"
// (see ProvableByTree).
type NORTree struct {
	T *tree.Tree
	// ID is the node this position stands at (the root for a fresh
	// instance).
	ID tree.NodeID
	// Seed perturbs the position hash so distinct trees sharing one
	// transposition table do not alias node ids.
	Seed uint64
}

// NewNORTree returns the root position of t. It panics on non-NOR trees:
// the win condition below is only meaningful for the Boolean kind.
func NewNORTree(t *tree.Tree, seed uint64) NORTree {
	if t.Kind != tree.NOR {
		panic("games: NORTree requires a NOR tree")
	}
	return NORTree{T: t, ID: t.Root(), Seed: seed}
}

// Moves returns one successor position per child.
func (p NORTree) Moves() []engine.Position {
	n := p.T.Node(p.ID)
	out := make([]engine.Position, n.NumChildren)
	for i := range out {
		out[i] = NORTree{T: p.T, ID: n.FirstChild + tree.NodeID(i), Seed: p.Seed}
	}
	return out
}

// Evaluate scores a leaf from the mover's perspective: leaf value 0
// means the side to move wins.
func (p NORTree) Evaluate() int32 {
	n := p.T.Node(p.ID)
	if n.NumChildren > 0 {
		return 0 // non-terminal; only reached at a depth horizon
	}
	if n.Value == 0 {
		return engine.WinScore()
	}
	return -engine.WinScore()
}

// Hash mixes the node id with the tree seed (splitmix64 finalizer).
// Node ids are unique within one arena, so within a tree the hash is
// collision-free up to mixing.
func (p NORTree) Hash() uint64 {
	z := p.Seed + 0x9e3779b97f4a7c15*(uint64(p.ID)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p NORTree) String() string { return fmt.Sprintf("nor@%d", p.ID) }

var _ engine.Position = NORTree{}
var _ engine.Hasher = NORTree{}
