package games

// Race-detector stress of the pooled parallel engine on real games: small
// boards, many more workers than cores, and a shared transposition table
// hammered by concurrent top-level searches. Run via `make race` (or
// `go test -race ./internal/games/ ...`).

import (
	"context"
	"sync"
	"testing"

	"gametree/internal/engine"
)

func TestSearchParallelRaceConnect4(t *testing.T) {
	pos := NewConnect4(5, 4, 3) // small board, real branching
	want := engine.Search(pos, 6).Value
	table := engine.NewTable(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				r, err := engine.SearchParallelTT(context.Background(), pos, 6,
					engine.SearchOptions{Table: table, Workers: 8})
				if err != nil {
					t.Error(err)
					return
				}
				if r.Value != want {
					t.Errorf("connect4 pooled search: %d want %d", r.Value, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSearchParallelRaceTicTacToe(t *testing.T) {
	var pos TTT // empty board: draw under perfect play
	r, err := engine.SearchParallel(context.Background(), pos, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Errorf("tic-tac-toe value %d, want 0 (draw)", r.Value)
	}
	// Root split on the same substrate, many workers.
	rs, err := engine.SearchRootSplit(context.Background(), pos, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Value != 0 {
		t.Errorf("tic-tac-toe root-split value %d, want 0 (draw)", rs.Value)
	}
}
