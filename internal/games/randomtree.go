package games

// RandomTree is a lazy, deterministic synthetic game: a uniform tree of
// the given branching factor whose node identities (and therefore leaf
// values) are pure functions of a 64-bit seed. Children derive their
// seeds by mixing the parent seed with the move index, so the whole tree
// is reproducible from the root seed without materializing a node — in
// contrast to engine.NewPessimalTree, which allocates the full tree up
// front. That makes RandomTree the serving-layer workload of choice: a
// gtload request is just a seed, distinct seeds give independent trees,
// and repeated seeds are byte-identical positions the server can
// coalesce and cache.
//
// RandomTree implements engine.Hasher (the seed is the identity) and
// engine.MoveAppender (children are generated into the recycled buffer).

import (
	"fmt"

	"gametree/internal/engine"
)

// RandomTree is one node of the synthetic tree. The zero value is not
// valid; use NewRandomTree.
type RandomTree struct {
	Seed   uint64
	Branch int8
}

// NewRandomTree returns the root of the synthetic tree for seed. branch
// is clamped to [2, 16].
func NewRandomTree(seed uint64, branch int) RandomTree {
	if branch < 2 {
		branch = 2
	}
	if branch > 16 {
		branch = 16
	}
	return RandomTree{Seed: seed, Branch: int8(branch)}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// so child seeds inherit no exploitable structure from the parent's.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// child returns the i'th child node.
func (p RandomTree) child(i int) RandomTree {
	return RandomTree{Seed: mix64(p.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1), Branch: p.Branch}
}

// Child returns the i'th child node. Exported for the serving tier's
// position expander, which needs to name children by their canonical
// "seed:branch" strings without searching them.
func (p RandomTree) Child(i int) RandomTree { return p.child(i) }

// Moves returns the children. The tree is infinite — the search horizon
// (depth) bounds every game on it.
func (p RandomTree) Moves() []engine.Position {
	out := make([]engine.Position, p.Branch)
	for i := range out {
		out[i] = p.child(i)
	}
	return out
}

// AppendMoves implements engine.MoveAppender.
func (p RandomTree) AppendMoves(dst []engine.Position) []engine.Position {
	for i := 0; i < int(p.Branch); i++ {
		dst = append(dst, p.child(i))
	}
	return dst
}

// Evaluate returns a deterministic pseudo-random value in [-1000, 1000],
// from the mover's perspective (negamax convention) and well inside the
// engine's win-score sentinels.
func (p RandomTree) Evaluate() int32 {
	return int32(mix64(p.Seed^0xd1b54a32d192ed03)%2001) - 1000
}

// Hash implements engine.Hasher. Seeds are already avalanche-mixed along
// every path, so the seed itself is the hash; the branching factor is
// folded in because trees of different width share no positions.
func (p RandomTree) Hash() uint64 {
	return p.Seed ^ (uint64(p.Branch) * 0x2545f4914f6cdd1d)
}

func (p RandomTree) String() string {
	return fmt.Sprintf("random(seed=%d,b=%d)", p.Seed, p.Branch)
}
