package games

import (
	"context"
	"testing"

	"gametree/internal/engine"
)

func TestRandomTreeDeterministic(t *testing.T) {
	a := NewRandomTree(42, 5)
	b := NewRandomTree(42, 5)
	if a.Hash() != b.Hash() || a.Evaluate() != b.Evaluate() {
		t.Fatal("same seed must give identical positions")
	}
	am, bm := a.Moves(), b.Moves()
	if len(am) != 5 || len(bm) != 5 {
		t.Fatalf("branch 5 gave %d/%d moves", len(am), len(bm))
	}
	for i := range am {
		if am[i].(RandomTree).Hash() != bm[i].(RandomTree).Hash() {
			t.Fatalf("child %d differs across identical roots", i)
		}
	}
	if NewRandomTree(43, 5).Hash() == a.Hash() {
		t.Fatal("distinct seeds collided")
	}
	if NewRandomTree(42, 4).Hash() == a.Hash() {
		t.Fatal("distinct branch factors collided")
	}
	// Search determinism: the whole point of the workload.
	r1 := engine.Search(a, 6)
	r2 := engine.Search(b, 6)
	if r1.Value != r2.Value || r1.Nodes != r2.Nodes {
		t.Fatalf("searches diverged: %+v vs %+v", r1, r2)
	}
}

func TestRandomTreeAppendMovesMatchesMoves(t *testing.T) {
	p := NewRandomTree(7, 6)
	moves := p.Moves()
	appended := p.AppendMoves(nil)
	if len(moves) != len(appended) {
		t.Fatalf("lengths differ: %d vs %d", len(moves), len(appended))
	}
	for i := range moves {
		if moves[i].(RandomTree) != appended[i].(RandomTree) {
			t.Fatalf("move %d differs", i)
		}
	}
}

func TestRandomTreeEvaluateBounded(t *testing.T) {
	p := NewRandomTree(99, 3)
	for i := 0; i < 1000; i++ {
		v := p.Evaluate()
		if v < -1000 || v > 1000 {
			t.Fatalf("evaluate %d out of range at step %d", v, i)
		}
		p = p.child(int(p.Seed % uint64(p.Branch)))
	}
}

func TestRandomTreeEngineAgreement(t *testing.T) {
	for _, seed := range []uint64{1, 2, 1000} {
		p := NewRandomTree(seed, 4)
		const depth = 6
		seq := engine.Search(p, depth)
		par, err := engine.SearchParallel(context.Background(), p, depth, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Value != seq.Value {
			t.Errorf("seed %d: parallel %d != sequential %d", seed, par.Value, seq.Value)
		}
		tt, err := engine.SearchParallelTT(context.Background(), p, depth,
			engine.SearchOptions{Table: engine.NewTable(1 << 12), Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if tt.Value != seq.Value {
			t.Errorf("seed %d: parallel tt %d != sequential %d", seed, tt.Value, seq.Value)
		}
	}
}
