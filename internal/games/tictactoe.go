// Package games provides concrete game substrates for the engine and the
// examples: tic-tac-toe, Connect-4 on a parametric board, Nim (whose
// game-theoretic value is known in closed form, making it a correctness
// oracle for the search engine), and a Horn-clause backward-chaining
// prover whose proof search is exactly the AND/OR-tree evaluation problem
// that motivates the paper.
package games

import (
	"fmt"
	"strings"

	"gametree/internal/engine"
)

// TTT is a tic-tac-toe position. The zero value is the empty board with X
// to move. Cells hold 0 (empty), 1 (X) or 2 (O).
type TTT struct {
	Cells  [9]int8
	ToMove int8 // 1 or 2; 0 means 1 (zero value usable)
}

func (p TTT) mover() int8 {
	if p.ToMove == 0 {
		return 1
	}
	return p.ToMove
}

var tttLines = [8][3]int{
	{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, // rows
	{0, 3, 6}, {1, 4, 7}, {2, 5, 8}, // columns
	{0, 4, 8}, {2, 4, 6}, // diagonals
}

// Winner returns 1 or 2 if that player has three in a row, else 0.
func (p TTT) Winner() int8 {
	for _, l := range tttLines {
		if c := p.Cells[l[0]]; c != 0 && c == p.Cells[l[1]] && c == p.Cells[l[2]] {
			return c
		}
	}
	return 0
}

// Moves returns the successor positions (engine.Position).
func (p TTT) Moves() []engine.Position {
	return p.AppendMoves(nil)
}

// AppendMoves implements engine.MoveAppender: the successors of Moves
// appended to dst, so the engine can recycle per-worker move buffers.
func (p TTT) AppendMoves(dst []engine.Position) []engine.Position {
	dst = dst[:0]
	if p.Winner() != 0 {
		return dst
	}
	me := p.mover()
	for i, c := range p.Cells {
		if c != 0 {
			continue
		}
		q := p
		q.Cells[i] = me
		q.ToMove = 3 - me
		dst = append(dst, q)
	}
	return dst
}

// Evaluate scores the position for the side to move: a lost position (the
// opponent just completed a line) scores -WinScore, a draw 0.
func (p TTT) Evaluate() int32 {
	if w := p.Winner(); w != 0 {
		if w == p.mover() {
			return engine.WinScore() // cannot occur in legal play
		}
		return -engine.WinScore()
	}
	return 0
}

// MoveCell returns the cell index that turns p into q (both must be legal
// consecutive positions).
func (p TTT) MoveCell(q TTT) int {
	for i := range p.Cells {
		if p.Cells[i] != q.Cells[i] {
			return i
		}
	}
	return -1
}

func (p TTT) String() string {
	sym := [...]string{".", "X", "O"}
	var b strings.Builder
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			b.WriteString(sym[p.Cells[3*r+c]])
		}
		if r < 2 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ParseTTT parses a 9-character board like "XOX.O..X." with X to move
// inferred from the piece counts.
func ParseTTT(s string) (TTT, error) {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case 'X', 'O', '.', 'x', 'o':
			return r
		}
		return -1
	}, s)
	if len(clean) != 9 {
		return TTT{}, fmt.Errorf("games: board needs 9 cells, got %d", len(clean))
	}
	var p TTT
	var x, o int
	for i, r := range clean {
		switch r {
		case 'X', 'x':
			p.Cells[i] = 1
			x++
		case 'O', 'o':
			p.Cells[i] = 2
			o++
		}
	}
	if o > x || x > o+1 {
		return TTT{}, fmt.Errorf("games: impossible piece counts X=%d O=%d", x, o)
	}
	if x == o {
		p.ToMove = 1
	} else {
		p.ToMove = 2
	}
	return p, nil
}

var (
	_ engine.Position     = TTT{}
	_ engine.MoveAppender = TTT{}
)

// Hash returns a position hash (FNV-1a over the cells and mover),
// enabling the engine's transposition table.
func (p TTT) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, c := range p.Cells {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= uint64(p.mover())
	h *= 1099511628211
	return h
}
