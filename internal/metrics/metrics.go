// Package metrics provides the streaming histogram primitive behind the
// search observatory. The paper's quantitative claims (Theorem 3's step
// bounds, the Section 7 message costs) are statements about distributions
// — steps per processor, leaves per step, drain latency after a cutoff —
// and a cumulative counter collapses every such quantity to a mean. A
// Histogram keeps the whole shape at a fixed, tiny cost.
//
// The design mirrors the telemetry layer's counter discipline:
//
//   - Fixed log₂ bucketing: bucket 0 holds observations ≤ 1, bucket i
//     (i ≥ 1) holds observations in (2^(i-1), 2^i]. 64 buckets cover the
//     whole non-negative int64 range, so Observe never allocates, never
//     rebalances and never locks — it is two atomic adds and a max update.
//   - Snapshot is race-clean at any time: bucket counts only grow, so a
//     mid-run snapshot is a momentary view whose total count is monotone
//     across successive snapshots.
//   - Quantiles (p50/p95/p99/...) are extracted from a snapshot by
//     cumulative walk with linear interpolation inside the bucket; the
//     error is bounded by the bucket width (a factor of 2), which is the
//     right resolution for latencies spanning nanoseconds to seconds.
//
// Histograms are embedded per telemetry shard (single writer), so the
// atomics exist only to make concurrent snapshots clean under the race
// detector — increments never contend.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count: bucket 0 plus one bucket per
// power of two up to 2^63, covering every non-negative int64.
const NumBuckets = 64

// Histogram is a lock-free fixed-bucket log₂ histogram. The zero value is
// ready to use. Observe is safe from any goroutine (the owning shard's
// writer in practice); Snapshot is safe concurrently with Observe.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps an observation to its bucket: 0 for v ≤ 1, else the i
// with v in (2^(i-1), 2^i].
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i; 1 for
// bucket 0; MaxInt64 for the top bucket, whose nominal bound 2^63 is not
// representable). It is the `le` value of the Prometheus exposition.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values clamp into bucket 0 with a
// contribution of 0 to the sum (latencies and counts are never negative;
// the clamp keeps a clock anomaly from corrupting the sum).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistSnapshot is a plain (non-atomic) image of a Histogram, the unit of
// aggregation and quantile extraction.
type HistSnapshot struct {
	Buckets [NumBuckets]int64 `json:"-"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
}

// Snapshot copies the histogram. Bucket counts are read before sum and
// max, so a concurrent snapshot's Count is monotone and never exceeds the
// number of completed Observe calls.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge folds o into s (buckets, count and sum add; max takes the max).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the sample mean (0 for an empty histogram).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by walking
// the cumulative bucket counts and interpolating linearly inside the
// bucket that crosses the target rank. NaN for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo, hi := float64(0), float64(BucketUpper(i))
			if i > 0 {
				lo = float64(BucketUpper(i - 1))
			}
			// Never report beyond the observed maximum: the top bucket's
			// upper bound can be far above it.
			if float64(s.Max) < hi && float64(s.Max) > lo {
				hi = float64(s.Max)
			}
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(s.Max)
}

// P50, P95 and P99 are the quantiles the reports publish.
func (s HistSnapshot) P50() float64 { return s.Quantile(0.50) }
func (s HistSnapshot) P95() float64 { return s.Quantile(0.95) }
func (s HistSnapshot) P99() float64 { return s.Quantile(0.99) }
