package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the log₂ bucketing scheme the Prometheus
// exposition and the README document: bucket 0 is v ≤ 1, bucket i is
// (2^(i-1), 2^i].
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1 << 20, 20},
		{1<<20 + 1, 21},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps before bucketing
		}
		if got := bucketOf(v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 1; i < NumBuckets; i++ {
		up, prev := BucketUpper(i), BucketUpper(i-1)
		if bucketOf(up) != i {
			t.Errorf("upper bound %d not in its own bucket %d", up, i)
		}
		if bucketOf(prev+1) != i {
			t.Errorf("lower edge %d of bucket %d lands in %d", prev+1, i, bucketOf(prev+1))
		}
	}
}

// TestObserveAndQuantiles checks count/sum/max bookkeeping and that
// quantile estimates stay inside the bucket that holds the true value (the
// documented factor-of-2 resolution).
func TestObserveAndQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum %d, want %d", s.Sum, 1000*1001/2)
	}
	if s.Max != 1000 {
		t.Fatalf("max %d, want 1000", s.Max)
	}
	if m := s.Mean(); m != 500.5 {
		t.Fatalf("mean %v, want 500.5", m)
	}
	for _, c := range []struct {
		q    float64
		true float64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(c.q)
		// The estimate must land in the same log₂ bucket as the true value.
		if b, want := bucketOf(int64(got)), bucketOf(int64(c.true)); b != want {
			t.Errorf("q%.2f = %v lands in bucket %d, true value %v in %d",
				c.q, got, b, c.true, want)
		}
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("q1.0 = %v, want the max 1000", q)
	}

	var empty Histogram
	if !math.IsNaN(empty.Snapshot().Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	if empty.Snapshot().Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
}

// TestMerge folds two snapshots and checks the aggregate.
func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(4)
	a.Observe(100)
	b.Observe(7)
	b.Observe(5000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 || sa.Sum != 4+100+7+5000 || sa.Max != 5000 {
		t.Fatalf("merged snapshot wrong: %+v", sa)
	}
	if sa.Buckets[bucketOf(7)] != 1 || sa.Buckets[bucketOf(4)] != 1 {
		t.Fatalf("merged buckets wrong: %+v", sa.Buckets)
	}
}

// TestConcurrentObserveSnapshot is the race-detector guarantee of the
// tentpole: observers hammer one histogram while a reader snapshots it,
// asserting (a) the snapshot total count is monotone across successive
// snapshots, (b) it never exceeds the observations issued, and (c) the
// final snapshot conserves the exact total count and sum.
func TestConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(int64(i*perWriter + j))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count regressed: %d -> %d", last, s.Count)
				return
			}
			if s.Count > writers*perWriter {
				t.Errorf("snapshot overcounts: %d > %d", s.Count, writers*perWriter)
				return
			}
			last = s.Count
			if s.Count == writers*perWriter {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	final := h.Snapshot()
	if final.Count != writers*perWriter {
		t.Fatalf("final count %d, want %d", final.Count, writers*perWriter)
	}
	var wantSum int64
	for i := int64(0); i < writers*perWriter; i++ {
		wantSum += i
	}
	if final.Sum != wantSum {
		t.Fatalf("final sum %d, want %d", final.Sum, wantSum)
	}
	if final.Max != writers*perWriter-1 {
		t.Fatalf("final max %d, want %d", final.Max, writers*perWriter-1)
	}
}
