package msgpass

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"gametree/internal/telemetry"
	"gametree/internal/tree"
)

// This file extends the Section 7 message-passing machine to MIN/MAX
// trees. The paper notes that "Sequential α-β and Parallel α-β can also
// be converted into their node-expansion versions" and that the same
// implementation strategy applies, but — "given the space limitation" —
// does not present it; this is that conversion, engineered to mirror the
// SOLVE machine exactly:
//
//	S-AB*(v, α, β)        sequential alpha-beta DFS on the subtree at v
//	P-AB*(v, α, β)        width-1 parallel coordination at v
//	P-AB**(v, α, β)       as P-AB*, v expanded, both child values pending
//	P-AB***(v, α, β, l)   as P-AB*, v expanded, left child resolved to l
//	val(v) = x            value report to the level above
//
// Each invocation carries its alpha-beta window. The left child of a
// coordinated node is searched in parallel with the *speculative* right
// child, which runs under the window as of spawn time (wider than the
// sequential algorithm would use — always sound, merely less sharp). When
// the left child resolves without a cutoff the right child is promoted to
// a parallel search with the sharpened window, converting its DFS stack
// into the cascade exactly as in the SOLVE machine. The pre-emption rule
// and the one-processor-per-level allocation (with zones for fixed p) are
// unchanged. Windows only ever tighten for a given node, and a value
// computed under a wider window is at least as informative, so stale
// value messages remain safe to match by node identity.

const (
	abNegInf = int64(math.MinInt32) - 1
	abPosInf = int64(math.MaxInt32) + 1
)

// abMsgType enumerates the MIN/MAX machine's message types.
type abMsgType uint8

const (
	abSSolve  abMsgType = iota // S-AB*(v, alpha, beta)
	abPSolve                   // P-AB*(v, alpha, beta)
	abPSolve2                  // P-AB**(v, alpha, beta)
	abPSolve3                  // P-AB***(v, alpha, beta, lval)
	abVal                      // val(v) = x
)

type abMessage struct {
	typ         abMsgType
	v           tree.NodeID
	alpha, beta int64
	val         int64
}

// abMailbox is the unbounded queue (same design as the Boolean machine).
type abMailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []abMessage
	halted bool
}

func newABMailbox() *abMailbox {
	mb := &abMailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *abMailbox) send(m abMessage) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *abMailbox) halt() {
	mb.mu.Lock()
	mb.halted = true
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *abMailbox) drain(wait bool) ([]abMessage, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for wait && len(mb.queue) == 0 && !mb.halted {
		mb.cond.Wait()
	}
	msgs := mb.queue
	mb.queue = nil
	return msgs, mb.halted
}

// abFrame is a DFS frame of S-AB*: the node, the evaluation stage
// (0: about to expand, 1: in the left child, 2: left done, in the right
// child), the node's window and the left child's resolved value.
type abFrame struct {
	node        tree.NodeID
	stage       int8
	alpha, beta int64
	lval        int64
}

type abSState struct {
	root  tree.NodeID
	stack []abFrame
}

// abPState is a P-AB*/**/*** invocation.
type abPState struct {
	v           tree.NodeID
	w, x        tree.NodeID
	alpha, beta int64
	lval, rval  int64
	lok, rok    bool
}

type abLevelState struct {
	s *abSState
	p *abPState
}

type abRun struct {
	t          *tree.Tree
	procs      []*abProcessor
	nprocs     int
	rootResult chan int64
	expansions atomic.Int64
	messages   atomic.Int64
	workSpin   int

	// reported[v]: val(v) has been sent upward. See the SOLVE machine's
	// field of the same name: the asynchronous realization needs this
	// staleness test on invocation messages, which the paper's
	// synchronous network provides implicitly.
	reported []atomic.Bool
}

func (r *abRun) markReported(v tree.NodeID) { r.reported[v].Store(true) }

func (r *abRun) stale(v tree.NodeID) bool {
	for x := v; x != tree.None; x = r.t.Node(x).Parent {
		if r.reported[x].Load() {
			return true
		}
	}
	return false
}

type abProcessor struct {
	r      *abRun
	id     int
	mb     *abMailbox
	sh     *telemetry.Shard // this processor's message counters
	levels map[int]*abLevelState
	owned  []int
	next   int
}

// send counts the message against this processor's shard and routes it.
func (p *abProcessor) send(level int, m abMessage) {
	p.sh.MsgsSent.Add(1)
	p.r.send(level, m)
}

// EvaluateAlphaBeta runs the message-passing width-1 Parallel alpha-beta
// on a binary MIN/MAX tree and returns the exact root value with run
// statistics.
func EvaluateAlphaBeta(t *tree.Tree, opt Options) (Metrics, error) {
	if t.Kind != tree.MinMax {
		return Metrics{}, errors.New("msgpass: EvaluateAlphaBeta requires a MinMax tree")
	}
	for i := range t.Nodes {
		if nc := t.Nodes[i].NumChildren; nc != 0 && nc != 2 {
			return Metrics{}, fmt.Errorf("msgpass: node %d has %d children; the machine requires a binary tree", i, nc)
		}
	}
	np := opt.Processors
	if np <= 0 || np > t.Height+1 {
		np = t.Height + 1
	}
	r := &abRun{
		t:          t,
		nprocs:     np,
		rootResult: make(chan int64, 1),
		workSpin:   opt.WorkPerExpansion,
		reported:   make([]atomic.Bool, t.Len()),
	}
	rec := opt.Telemetry
	if rec == nil {
		rec = telemetry.NewRecorder()
	}
	r.procs = make([]*abProcessor, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		p := &abProcessor{r: r, id: i, mb: newABMailbox(), sh: rec.Shard(i), levels: map[int]*abLevelState{}}
		for lvl := i; lvl <= t.Height; lvl += np {
			p.owned = append(p.owned, lvl)
		}
		r.procs[i] = p
	}
	base := make([]ProcStats, np)
	for i, p := range r.procs {
		base[i] = ProcStats{
			Sent:         p.sh.MsgsSent.Load(),
			Received:     p.sh.MsgsRecv.Load(),
			StaleDropped: p.sh.MsgsStale.Load(),
		}
	}
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func(p *abProcessor) {
			defer wg.Done()
			p.loop()
		}(r.procs[i])
	}
	r.send(0, abMessage{typ: abPSolve, v: t.Root(), alpha: abNegInf, beta: abPosInf})
	val := <-r.rootResult
	for _, p := range r.procs {
		p.mb.halt()
	}
	wg.Wait()
	m := Metrics{
		Value:      int32(val),
		Expansions: r.expansions.Load(),
		Messages:   r.messages.Load(),
		Processors: np,
	}
	m.PerProcessor = make([]ProcStats, np)
	for i, p := range r.procs {
		m.PerProcessor[i] = ProcStats{
			Sent:         p.sh.MsgsSent.Load() - base[i].Sent,
			Received:     p.sh.MsgsRecv.Load() - base[i].Received,
			StaleDropped: p.sh.MsgsStale.Load() - base[i].StaleDropped,
		}
	}
	return m, nil
}

// abDebugHook, when set, observes every message at send time (test-only).
var abDebugHook func(level int, m abMessage)

func (r *abRun) send(level int, m abMessage) {
	r.messages.Add(1)
	if abDebugHook != nil {
		abDebugHook(level, m)
	}
	if level < 0 {
		if m.typ != abVal {
			panic("msgpass: only val messages go to the coordinator")
		}
		select {
		case r.rootResult <- m.val:
		default:
		}
		return
	}
	r.procs[level%r.nprocs].mb.send(m)
}

func (r *abRun) expand() {
	r.expansions.Add(1)
	if r.workSpin > 0 {
		spin(r.workSpin)
	}
}

func (p *abProcessor) loop() {
	for {
		msgs, halted := p.mb.drain(!p.hasWork())
		if halted {
			return
		}
		for _, m := range msgs {
			p.sh.MsgsRecv.Add(1)
			p.handle(m)
		}
		p.stepWork()
	}
}

func (p *abProcessor) hasWork() bool {
	for _, ls := range p.levels {
		if ls.s != nil {
			return true
		}
	}
	return false
}

func (p *abProcessor) state(level int) *abLevelState {
	ls := p.levels[level]
	if ls == nil {
		ls = &abLevelState{}
		p.levels[level] = ls
	}
	return ls
}

func (p *abProcessor) handle(m abMessage) {
	t := p.r.t
	if m.typ != abVal && p.r.stale(m.v) {
		p.sh.MsgsStale.Add(1)
		return // superseded invocation: an ancestor's value is already out
	}
	switch m.typ {
	case abSSolve:
		ls := p.state(t.Depth(m.v))
		if ls.p != nil && ls.p.v == m.v {
			return // a P-invocation owns this node
		}
		ls.s = &abSState{root: m.v, stack: []abFrame{{node: m.v, alpha: m.alpha, beta: m.beta}}}
	case abPSolve:
		p.startP(m)
	case abPSolve2:
		p.startPVariant(m, false)
	case abPSolve3:
		p.startPVariant(m, true)
	case abVal:
		p.handleVal(m.v, m.val)
	}
}

func (p *abProcessor) startP(m abMessage) {
	t := p.r.t
	v := m.v
	level := t.Depth(v)
	ls := p.state(level)
	if ls.s != nil && ls.s.root == v {
		p.handoff(ls.s)
		ls.s = nil
		return
	}
	p.r.expand()
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		p.r.markReported(v)
		p.send(level-1, abMessage{typ: abVal, v: v, val: int64(nd.Value)})
		ls.p = nil
		return
	}
	w, x := nd.FirstChild, nd.FirstChild+1
	ls.p = &abPState{v: v, w: w, x: x, alpha: m.alpha, beta: m.beta}
	p.send(level+1, abMessage{typ: abPSolve, v: w, alpha: m.alpha, beta: m.beta})
	p.send(level+1, abMessage{typ: abSSolve, v: x, alpha: m.alpha, beta: m.beta})
}

func (p *abProcessor) startPVariant(m abMessage, haveLeft bool) {
	t := p.r.t
	nd := t.Node(m.v)
	if nd.NumChildren == 0 {
		p.r.markReported(m.v)
		p.send(t.Depth(m.v)-1, abMessage{typ: abVal, v: m.v, val: int64(nd.Value)})
		return
	}
	ls := p.state(t.Depth(m.v))
	st := &abPState{v: m.v, w: nd.FirstChild, x: nd.FirstChild + 1, alpha: m.alpha, beta: m.beta}
	if haveLeft {
		st.lval, st.lok = m.val, true
	}
	ls.p = st
	if ls.s != nil && ls.s.root == m.v {
		ls.s = nil
	}
}

// handoff converts an in-progress S-AB* DFS into cascade invocations,
// carrying each path node's window (and, on right turns, the left child's
// resolved value) into the messages.
func (p *abProcessor) handoff(s *abSState) {
	t := p.r.t
	for _, f := range s.stack {
		u := f.node
		level := t.Depth(u)
		switch f.stage {
		case 1:
			p.send(level, abMessage{typ: abPSolve2, v: u, alpha: f.alpha, beta: f.beta})
			p.send(level+1, abMessage{typ: abSSolve, v: t.Node(u).FirstChild + 1, alpha: f.alpha, beta: f.beta})
		case 2:
			p.send(level, abMessage{typ: abPSolve3, v: u, alpha: f.alpha, beta: f.beta, val: f.lval})
		default:
			p.send(level, abMessage{typ: abPSolve, v: u, alpha: f.alpha, beta: f.beta})
		}
	}
}

// combine resolves a MAX/MIN parent from two child values (fail-hard).
func combine(isMax bool, a, b int64) int64 {
	if isMax == (a > b) {
		return a
	}
	return b
}

// cutoff reports whether a child value already decides the parent within
// its window: value >= beta at a MAX node, value <= alpha at a MIN node.
func (st *abPState) cutoff(isMax bool, val int64) bool {
	if isMax {
		return val >= st.beta
	}
	return val <= st.alpha
}

func (p *abProcessor) handleVal(v tree.NodeID, x int64) {
	t := p.r.t
	parentLevel := t.Depth(v) - 1
	ls := p.levels[parentLevel]
	if ls == nil || ls.p == nil {
		p.sh.MsgsStale.Add(1)
		return
	}
	st := ls.p
	isMax := t.IsMaxNode(st.v)
	switch v {
	case st.w:
		if st.lok {
			p.sh.MsgsStale.Add(1)
			return
		}
		st.lval, st.lok = x, true
		if st.cutoff(isMax, x) {
			p.finish(parentLevel, st, x)
			return
		}
		if st.rok {
			p.finish(parentLevel, st, combine(isMax, st.lval, st.rval))
			return
		}
		// Promote the speculative right child with the sharpened window.
		alpha, beta := st.alpha, st.beta
		if isMax {
			if x > alpha {
				alpha = x
			}
		} else if x < beta {
			beta = x
		}
		p.send(parentLevel+1, abMessage{typ: abPSolve, v: st.x, alpha: alpha, beta: beta})
	case st.x:
		if st.rok {
			p.sh.MsgsStale.Add(1)
			return
		}
		st.rval, st.rok = x, true
		if st.cutoff(isMax, x) {
			p.finish(parentLevel, st, x)
			return
		}
		if st.lok {
			p.finish(parentLevel, st, combine(isMax, st.lval, st.rval))
		}
	default:
		p.sh.MsgsStale.Add(1) // value for a child this invocation is not waiting on
	}
}

func (p *abProcessor) finish(level int, st *abPState, val int64) {
	p.r.markReported(st.v)
	p.send(level-1, abMessage{typ: abVal, v: st.v, val: val})
	if ls := p.levels[level]; ls != nil && ls.p == st {
		ls.p = nil
	}
}

func (p *abProcessor) stepWork() {
	for i := 0; i < len(p.owned); i++ {
		lvl := p.owned[(p.next+i)%len(p.owned)]
		if ls := p.levels[lvl]; ls != nil && ls.s != nil {
			p.next = (p.next + i + 1) % len(p.owned)
			p.stepS(ls)
			return
		}
	}
}

// stepS performs one expansion of the sequential alpha-beta DFS, plus the
// free value propagation.
func (p *abProcessor) stepS(ls *abLevelState) {
	t := p.r.t
	s := ls.s
	top := &s.stack[len(s.stack)-1]
	p.r.expand()
	nd := t.Node(top.node)
	if nd.NumChildren == 0 {
		p.propagateS(ls, int64(nd.Value))
		return
	}
	top.stage = 1
	s.stack = append(s.stack, abFrame{node: nd.FirstChild, alpha: top.alpha, beta: top.beta})
}

func (p *abProcessor) propagateS(ls *abLevelState, val int64) {
	t := p.r.t
	s := ls.s
	s.stack = s.stack[:len(s.stack)-1]
	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		isMax := t.IsMaxNode(top.node)
		if top.stage == 1 {
			// Left child resolved.
			if isMax && val >= top.beta || !isMax && val <= top.alpha {
				// Cutoff: the right child is pruned.
				s.stack = s.stack[:len(s.stack)-1]
				continue
			}
			top.stage = 2
			top.lval = val
			alpha, beta := top.alpha, top.beta
			if isMax {
				if val > alpha {
					alpha = val
				}
			} else if val < beta {
				beta = val
			}
			s.stack = append(s.stack, abFrame{node: t.Node(top.node).FirstChild + 1, alpha: alpha, beta: beta})
			return
		}
		// Right child resolved: combine.
		val = combine(isMax, top.lval, val)
		s.stack = s.stack[:len(s.stack)-1]
	}
	p.r.markReported(s.root)
	p.send(t.Depth(s.root)-1, abMessage{typ: abVal, v: s.root, val: val})
	ls.s = nil
}
