package msgpass

import (
	"math/rand"
	"sync"
	"testing"

	"gametree/internal/alphabeta"
	"gametree/internal/tree"
)

func TestABCorrectValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(9)
		tr := tree.IIDMinMax(2, n, -1000, 1000, rng.Int63())
		want := tr.Evaluate()
		m, err := EvaluateAlphaBeta(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != want {
			t.Fatalf("trial %d (n=%d): got %d, want %d", trial, n, m.Value, want)
		}
	}
}

func TestABOrderedAndAdversarialTrees(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, gen := range []func(int, int, int64) *tree.Tree{
			tree.BestOrderedMinMax, tree.WorstOrderedMinMax,
		} {
			tr := gen(2, n, int64(n))
			want := tr.Evaluate()
			m, err := EvaluateAlphaBeta(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("n=%d: got %d, want %d", n, m.Value, want)
			}
		}
	}
}

func TestABZones(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		tr := tree.IIDMinMax(2, n, -50, 50, rng.Int63())
		want := tr.Evaluate()
		for _, procs := range []int{1, 2, 3, n + 1} {
			m, err := EvaluateAlphaBeta(tr, Options{Processors: procs})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d procs=%d: got %d, want %d", trial, procs, m.Value, want)
			}
		}
	}
}

// Boolean MIN/MAX trees are AND/OR trees; the alpha-beta machine must
// agree with the SOLVE machine through the NOR equivalence.
func TestABAgreesWithSolveMachineOnBooleanTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		nor := tree.IIDNor(2, 1+rng.Intn(7), 0.618, rng.Int63())
		ao := tree.NORToAndOr(nor)
		mAB, err := EvaluateAlphaBeta(ao, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mSolve, err := Evaluate(nor, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mAB.Value != 1-mSolve.Value {
			t.Fatalf("trial %d: AB machine %d, SOLVE machine %d (should be complements)",
				trial, mAB.Value, mSolve.Value)
		}
	}
}

// The machine's total expansions must stay within a small constant of the
// classical sequential alpha-beta leaf count plus internal nodes — the
// speculation is bounded, as in the SOLVE machine.
func TestABWorkBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(5)
		tr := tree.IIDMinMax(2, n, -100, 100, rng.Int63())
		ref := alphabeta.AlphaBeta(tr)
		m, err := EvaluateAlphaBeta(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Internal expansions at most ~2x leaves in a binary tree, plus
		// speculative overshoot; allow a generous constant.
		if m.Expansions > 8*ref.Leaves+64 {
			t.Errorf("trial %d (n=%d): %d expansions vs %d sequential leaves",
				trial, n, m.Expansions, ref.Leaves)
		}
	}
}

func TestABRejectsBadInput(t *testing.T) {
	if _, err := EvaluateAlphaBeta(tree.IIDNor(2, 3, 0.5, 1), Options{}); err == nil {
		t.Error("NOR tree accepted")
	}
	if _, err := EvaluateAlphaBeta(tree.IIDMinMax(3, 3, 0, 9, 1), Options{}); err == nil {
		t.Error("ternary tree accepted")
	}
}

func TestABSingleLeaf(t *testing.T) {
	tr := tree.FromNested(tree.MinMax, 17)
	m, err := EvaluateAlphaBeta(tr, Options{})
	if err != nil || m.Value != 17 || m.Expansions != 1 {
		t.Errorf("leaf: %+v %v", m, err)
	}
}

func TestABStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(10)
		tr := tree.IIDMinMax(2, n, -10, 10, rng.Int63()) // narrow range: many ties
		want := tr.Evaluate()
		procs := 1 + rng.Intn(n+2)
		m, err := EvaluateAlphaBeta(tr, Options{Processors: procs})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != want {
			t.Fatalf("trial %d n=%d procs=%d: got %d want %d", trial, n, procs, m.Value, want)
		}
	}
}

// Protocol invariants of the alpha-beta machine: invocations route to
// their node's level, values route one level up, windows are always
// non-empty (alpha < beta) on invocation messages, and the coordinator
// receives the exact root value.
func TestABProtocolInvariants(t *testing.T) {
	type traced struct {
		level int
		m     abMessage
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		tr := tree.IIDMinMax(2, 2+rng.Intn(6), -100, 100, rng.Int63())
		var mu sync.Mutex
		var log []traced
		abDebugHook = func(level int, m abMessage) {
			mu.Lock()
			log = append(log, traced{level, m})
			mu.Unlock()
		}
		res, err := EvaluateAlphaBeta(tr, Options{})
		abDebugHook = nil
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Evaluate()
		if res.Value != want {
			t.Fatalf("trial %d: wrong value", trial)
		}
		first := log[0]
		if first.level != 0 || first.m.typ != abPSolve || first.m.alpha != abNegInf || first.m.beta != abPosInf {
			t.Fatalf("trial %d: bad kick-off %+v", trial, first)
		}
		sawRoot := false
		for i, e := range log {
			switch e.m.typ {
			case abSSolve, abPSolve, abPSolve2, abPSolve3:
				if e.level != tr.Depth(e.m.v) {
					t.Fatalf("trial %d msg %d: routed to %d, want %d", trial, i, e.level, tr.Depth(e.m.v))
				}
				if e.m.alpha >= e.m.beta {
					t.Fatalf("trial %d msg %d: empty window [%d,%d]", trial, i, e.m.alpha, e.m.beta)
				}
			case abVal:
				if e.level != tr.Depth(e.m.v)-1 {
					t.Fatalf("trial %d msg %d: val routed to %d", trial, i, e.level)
				}
				if e.level == -1 {
					sawRoot = true
					if e.m.val != int64(want) {
						t.Fatalf("trial %d: coordinator got %d, want %d", trial, e.m.val, want)
					}
				}
			}
		}
		if !sawRoot {
			t.Fatalf("trial %d: no root value", trial)
		}
	}
}
