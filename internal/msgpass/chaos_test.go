package msgpass

import (
	"fmt"
	"testing"
	"time"

	"gametree/internal/faultnet"
	"gametree/internal/tree"
)

// Fast protocol knobs for tests: real defaults are tuned for human-scale
// runs; the suite wants death detection and retransmission to fit in a
// CI budget.
func chaosProtocol() ProtocolConfig {
	return ProtocolConfig{
		HeartbeatEvery:  time.Millisecond,
		DeadAfter:       15 * time.Millisecond,
		RetransmitAfter: time.Millisecond,
		RetransmitMax:   8 * time.Millisecond,
	}
}

// chaosScenario is one fault mix of the regression matrix.
type chaosScenario struct {
	name string
	cfg  func(seed int64) faultnet.Config
	// depth/work size the tree so the run is still alive when scheduled
	// faults fire.
	depth int
	work  int
	// wantDeaths requires the crash-recovery path to have actually run.
	wantDeaths bool
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			name:  "drop10",
			cfg:   func(seed int64) faultnet.Config { return faultnet.Config{Seed: seed, Drop: 0.1} },
			depth: 8,
			work:  5000,
		},
		{
			name:  "drop30",
			cfg:   func(seed int64) faultnet.Config { return faultnet.Config{Seed: seed, Drop: 0.3} },
			depth: 7,
			work:  5000,
		},
		{
			name:  "dup",
			cfg:   func(seed int64) faultnet.Config { return faultnet.Config{Seed: seed, Dup: 0.3} },
			depth: 8,
			work:  5000,
		},
		{
			name: "delay",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{Seed: seed, Delay: 0.5, DelayMax: time.Millisecond}
			},
			depth: 8,
			work:  5000,
		},
		{
			name: "reorder",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{Seed: seed, Reorder: 0.3, DelayMax: time.Millisecond}
			},
			depth: 8,
			work:  5000,
		},
		{
			name: "combo",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{
					Seed: seed, Drop: 0.15, Dup: 0.1, Reorder: 0.1,
					Delay: 0.2, DelayMax: time.Millisecond,
				}
			},
			depth: 7,
			work:  5000,
		},
		{
			name: "crash",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{
					Seed: seed, Drop: 0.05,
					Crashes: []faultnet.ProcCrash{{Proc: 1, At: 2 * time.Millisecond}},
				}
			},
			depth:      10,
			work:       30000,
			wantDeaths: true,
		},
		{
			// Stall shorter than DeadAfter: the processor freezes and
			// resumes; no death should be needed for a correct result.
			name: "stall-short",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{
					Seed:   seed,
					Stalls: []faultnet.ProcStall{{Proc: 1, At: 2 * time.Millisecond, For: 5 * time.Millisecond}},
				}
			},
			depth: 9,
			work:  5000,
		},
		{
			// Stall far past DeadAfter: a false-positive death. The stalled
			// processor is fenced when it wakes; the adopter carries its
			// levels. This is the hardest scenario — two processors both
			// believing they own a level is the classic split-brain.
			name: "stall-dead",
			cfg: func(seed int64) faultnet.Config {
				return faultnet.Config{
					Seed:   seed,
					Stalls: []faultnet.ProcStall{{Proc: 1, At: 2 * time.Millisecond, For: 80 * time.Millisecond}},
				}
			},
			depth:      10,
			work:       30000,
			wantDeaths: true,
		},
	}
}

// runChaos evaluates one tree over one faulty network with a watchdog.
func runChaos(t *testing.T, tr *tree.Tree, opt Options, timeout time.Duration) Metrics {
	t.Helper()
	type res struct {
		m   Metrics
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := Evaluate(tr, opt)
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Evaluate: %v", r.err)
		}
		return r.m
	case <-time.After(timeout):
		t.Fatalf("watchdog: run did not terminate within %v", timeout)
		return Metrics{}
	}
}

// TestChaosMatrix is the acceptance gate of the fault injection work:
// every scenario × seed must return exactly the fault-free root value and
// terminate. Values are deterministic per node, so any liveness bug shows
// up as a watchdog timeout and any safety bug as a wrong root value.
func TestChaosMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range chaosScenarios() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				tr := tree.IIDNor(2, sc.depth, 0.5, seed)
				want := tr.Evaluate()
				cfg := sc.cfg(seed)
				if err := cfg.Validate(); err != nil {
					t.Fatal(err)
				}
				m := runChaos(t, tr, Options{
					Processors:       4,
					WorkPerExpansion: sc.work,
					Net:              faultnet.NewInjector(cfg),
					Protocol:         chaosProtocol(),
				}, 2*time.Minute)
				if m.Value != want {
					t.Fatalf("root value %d under %s faults, want %d (protocol %+v, net %v)",
						m.Value, sc.name, want, m.Protocol, m.Net)
				}
				if sc.wantDeaths && m.Protocol.Deaths == 0 {
					t.Fatalf("scenario %s expected at least one declared death; protocol %+v net %v",
						sc.name, m.Protocol, m.Net)
				}
			})
		}
	}
}

// TestChaosDropForcesRetransmits pins that the loss scenarios exercise
// the ack/retransmit path rather than passing vacuously.
func TestChaosDropForcesRetransmits(t *testing.T) {
	// WorstCaseNOR forces full exploration and the synthetic work keeps
	// the run alive across many retransmit windows, so drops cannot all
	// land on redundant traffic.
	tr := tree.WorstCaseNOR(2, 10, 1)
	want := tr.Evaluate()
	m := runChaos(t, tr, Options{
		Processors:       4,
		WorkPerExpansion: 20000,
		Net:              faultnet.NewInjector(faultnet.Config{Seed: 42, Drop: 0.3}),
		Protocol:         chaosProtocol(),
	}, 2*time.Minute)
	if m.Value != want {
		t.Fatalf("root value %d, want %d", m.Value, want)
	}
	if m.Protocol.Retransmits == 0 {
		t.Fatalf("30%% drop produced zero retransmits: %+v (net %v)", m.Protocol, m.Net)
	}
	if m.Net.Dropped == 0 {
		t.Fatalf("injector dropped nothing: %v", m.Net)
	}
}

// TestChaosDupIsFree checks the claim that the pre-emption rule plus
// sequence-number dedup make duplicate delivery harmless: a heavy-dup run
// returns the right value and the duplicates are visibly suppressed.
func TestChaosDupIsFree(t *testing.T) {
	tr := tree.IIDNor(2, 8, 0.5, 7)
	want := tr.Evaluate()
	m := runChaos(t, tr, Options{
		Processors: 4,
		Net:        faultnet.NewInjector(faultnet.Config{Seed: 7, Dup: 0.5}),
		Protocol:   chaosProtocol(),
	}, 2*time.Minute)
	if m.Value != want {
		t.Fatalf("root value %d, want %d", m.Value, want)
	}
	if m.Net.Duplicated == 0 {
		t.Fatalf("injector duplicated nothing: %v", m.Net)
	}
	if m.Protocol.DupDropped == 0 {
		t.Fatalf("transport deduplicated nothing despite %d duplicates", m.Net.Duplicated)
	}
}

// TestProtocolOverPerfectNet runs the full reliability protocol with no
// faults at all: the result must match, and nothing may deadlock. (Spurious
// retransmits are allowed — an ack can simply be slower than the timeout —
// but no processor may die.)
func TestProtocolOverPerfectNet(t *testing.T) {
	for _, n := range []int{4, 8, 10} {
		// Work keeps the depth-10 run alive long enough that heartbeats
		// demonstrably flow; the shallow runs end before the first beat.
		work := 0
		if n == 10 {
			work = 20000
		}
		tr := tree.IIDNor(2, n, 0.5, int64(n))
		want := tr.Evaluate()
		m := runChaos(t, tr, Options{
			Processors:       3,
			WorkPerExpansion: work,
			Net:              faultnet.NewPerfect(),
			Protocol:         chaosProtocol(),
		}, time.Minute)
		if m.Value != want {
			t.Fatalf("depth %d: root value %d, want %d", n, m.Value, want)
		}
		if m.Protocol.Deaths != 0 {
			t.Fatalf("depth %d: declared %d deaths on a perfect network", n, m.Protocol.Deaths)
		}
		if n == 10 && m.Protocol.Heartbeats == 0 {
			t.Fatalf("depth %d: protocol emitted no heartbeats", n)
		}
	}
}

// TestPerfectPathUntouched pins the zero-overhead contract: with Net nil
// the run must report no protocol traffic at all.
func TestPerfectPathUntouched(t *testing.T) {
	tr := tree.IIDNor(2, 8, 0.5, 3)
	m, err := Evaluate(tr, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Protocol != (ProtocolStats{}) {
		t.Fatalf("nil-Net run reported protocol traffic: %+v", m.Protocol)
	}
	if m.Net != (faultnet.Stats{}) {
		t.Fatalf("nil-Net run reported network stats: %v", m.Net)
	}
	if m.Value != tr.Evaluate() {
		t.Fatalf("root value %d, want %d", m.Value, tr.Evaluate())
	}
}
