// Package msgpass implements Section 7 of Karp & Zhang (1989): the
// message-passing multiprocessor implementation of N-Parallel SOLVE of
// width 1 for binary NOR trees.
//
// One processor is assigned to each level of the tree (or, with fewer
// processors than levels, levels are divided into zones and a processor
// multiplexes the levels congruent to its index, exactly as the paper's
// closing remark describes). Processors exchange the paper's six message
// types:
//
//	S-SOLVE*(v)    run the sequential left-to-right DFS on the subtree at v
//	P-SOLVE*(v)    coordinate the width-1 parallel evaluation at v
//	P-SOLVE**(v)   as P-SOLVE*, but v already expanded, left child pending
//	P-SOLVE***(v)  as P-SOLVE*, but v expanded and left child known 0
//	val(v)=0/1     report a computed value to the level above
//
// The pre-emption rule is followed literally: a processor works only on
// the most recent S-invocation and the most recent P-invocation per level
// it owns, and it works on S-SOLVE*(v) only while not directed to run
// P-SOLVE*(v); superseded invocations are dropped, and stale val messages
// are discarded by matching them against the children the current
// invocation is actually waiting on. Each goroutine is a processor;
// channels plus a condition-variable mailbox model the unit-time
// message-passing network.
package msgpass

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/faultnet"
	"gametree/internal/telemetry"
	"gametree/internal/tree"
)

// Options configures a run.
type Options struct {
	// Processors is the number of processor goroutines; 0 means one per
	// level (height+1), the paper's default allocation.
	Processors int
	// WorkPerExpansion adds synthetic CPU work (iterations of a mixing
	// loop) to every node expansion, modeling expensive leaf evaluation
	// so that wall-clock speedup is observable.
	WorkPerExpansion int
	// Telemetry, when non-nil, receives the per-processor message
	// counters (shard i = processor i). When nil a run-local recorder is
	// used; either way Metrics.PerProcessor reports the counts.
	Telemetry *telemetry.Recorder
	// Net, when non-nil, routes every message through the given network
	// and arms the reliability protocol (sequence numbers,
	// ack/retransmit with backoff, heartbeat crash detection, level
	// reassignment — see reliable.go). nil keeps the direct in-process
	// path, whose only added cost is one nil check per send.
	Net faultnet.Network
	// Protocol tunes the reliability protocol; zero fields take the
	// defaults. Ignored when Net is nil.
	Protocol ProtocolConfig
}

// ProcStats is one processor's message telemetry: invocations and values
// it sent, messages it drained from its mailbox, and messages it dropped
// as stale (superseded invocations and values no live invocation waits
// on).
type ProcStats struct {
	Sent         int64
	Received     int64
	StaleDropped int64
}

// Metrics reports the outcome of a run.
type Metrics struct {
	Value      int32
	Expansions int64 // total node expansions performed (including speculative ones)
	Messages   int64 // total messages delivered
	Processors int
	// ByType counts messages per kind, indexed S-SOLVE*, P-SOLVE*,
	// P-SOLVE**, P-SOLVE***, val.
	ByType [5]int64
	// PerProcessor is the per-processor message telemetry (index =
	// processor id). The coordinator's kickoff message is counted in
	// Messages but attributed to no processor.
	PerProcessor []ProcStats
	// Protocol reports the reliability-protocol traffic of a faultnet
	// run; all zero on the perfect in-process path.
	Protocol ProtocolStats
	// Net reports what the network did to the traffic; zero value when
	// Options.Net was nil.
	Net faultnet.Stats
}

type msgType uint8

const (
	msgSSolve  msgType = iota // S-SOLVE*(v)
	msgPSolve                 // P-SOLVE*(v)
	msgPSolve2                // P-SOLVE**(v)
	msgPSolve3                // P-SOLVE***(v)
	msgVal                    // val(v) = b
	// msgReassign is transport-level control (reliable.go): a dead
	// processor's levels now belong to an adopter. Never counted in
	// Metrics.ByType; only exists on faultnet runs.
	msgReassign
)

type message struct {
	typ    msgType
	v      tree.NodeID
	val    int8
	sentNs int64        // recorder timestamp at send; queue-residence timebase
	ctrl   *reassignCmd // payload of msgReassign, nil otherwise
}

// mailbox is an unbounded MPSC queue so that sends never block (the model
// assumes any processor can send a message in unit time).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	halted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) send(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *mailbox) halt() {
	mb.mu.Lock()
	mb.halted = true
	mb.mu.Unlock()
	mb.cond.Signal()
}

// drain returns all pending messages. If wait is true and none are
// pending, it blocks until a message arrives or the run halts. The second
// result reports whether the run has halted.
func (mb *mailbox) drain(wait bool) ([]message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for wait && len(mb.queue) == 0 && !mb.halted {
		mb.cond.Wait()
	}
	msgs := mb.queue
	mb.queue = nil
	return msgs, mb.halted
}

// ---------------------------------------------------------------------------
// Per-level invocation state

// sFrame is one frame of the non-recursive DFS stack of S-SOLVE*: the
// node, and the stage of its evaluation (0: about to expand, 1: searching
// the left child, 2: left child was 0, searching the right child).
type sFrame struct {
	node  tree.NodeID
	stage int8
}

// sState is an S-SOLVE* invocation. The stack always ends in a stage-0
// frame: the node the DFS is ready to expand next.
type sState struct {
	root  tree.NodeID
	stack []sFrame
}

// pState is a P-SOLVE*/**/*** invocation at some node v.
type pState struct {
	v    tree.NodeID
	w, x tree.NodeID // left and right child (None if v is a leaf)
	lval int8        // -1 unknown
	rval int8        // -1 unknown
}

// levelState holds the (at most) one S-invocation and one P-invocation a
// processor maintains for one level it owns.
type levelState struct {
	s *sState
	p *pState
}

// ---------------------------------------------------------------------------
// Run

type run struct {
	t          *tree.Tree
	procs      []*processor
	nprocs     int
	rec        *telemetry.Recorder // timebase for message queue residence
	rootResult chan int8
	expansions atomic.Int64
	messages   atomic.Int64
	byType     [5]atomic.Int64
	workSpin   int
	tr         *transport // nil on the perfect in-process path

	// reported[v] is set when val(v) has been sent upward. The paper's
	// synchronous unit-time network makes the pre-emption rule
	// sufficient on its own; in this asynchronous goroutine realization
	// a superseded invocation can be handled late and spawn child
	// invocations that collide with the live cascade. An invocation is
	// stale exactly when some ancestor's value has already been
	// reported, so every processor checks that (shared, monotonic)
	// condition before acting on an invocation message.
	reported []atomic.Bool

	// vals memoizes each reported value (stored as val+1; 0 = unset).
	// Over a faulty network the original val message can die with a
	// crashed recipient, so a re-issued invocation for a reported node is
	// answered from this memo instead of being dropped as stale.
	vals []atomic.Int32
}

// markReported records that val(v)=val has been sent to the level above.
// The memo is written before the flag so any reader that observes the
// flag sees a valid value.
func (r *run) markReported(v tree.NodeID, val int8) {
	r.vals[v].Store(int32(val) + 1)
	r.reported[v].Store(true)
}

// reportedVal returns the memoized value of a reported node.
func (r *run) reportedVal(v tree.NodeID) int8 { return int8(r.vals[v].Load() - 1) }

// stale reports whether an invocation rooted at v is obsolete: the value
// of v or of one of its ancestors has already been reported.
func (r *run) stale(v tree.NodeID) bool {
	for x := v; x != tree.None; x = r.t.Node(x).Parent {
		if r.reported[x].Load() {
			return true
		}
	}
	return false
}

type processor struct {
	r      *run
	id     int
	mb     *mailbox
	sh     *telemetry.Shard // this processor's message counters
	levels map[int]*levelState
	owned  []int // levels this processor owns, ascending (for fair multiplexing)
	next   int   // round-robin cursor into owned
	fenced bool  // declared dead by the protocol; go silent (reliable.go)
}

// send counts the message against this processor's shard and routes it.
func (p *processor) send(level int, m message) {
	p.sh.MsgsSent.Add(1)
	p.r.sendFrom(p.id, level, m)
}

// Evaluate runs the Section 7 implementation on a binary NOR tree and
// returns the root value with run statistics. The tree must be a NOR tree
// in which every internal node has exactly two children.
func Evaluate(t *tree.Tree, opt Options) (Metrics, error) {
	if t.Kind != tree.NOR {
		return Metrics{}, errors.New("msgpass: input must be a NOR tree")
	}
	for i := range t.Nodes {
		if nc := t.Nodes[i].NumChildren; nc != 0 && nc != 2 {
			return Metrics{}, fmt.Errorf("msgpass: node %d has %d children; Section 7 requires a binary tree", i, nc)
		}
	}
	np := opt.Processors
	if np <= 0 {
		np = t.Height + 1
	}
	if np > t.Height+1 {
		np = t.Height + 1 // extra processors would own no level
	}
	rec := opt.Telemetry
	if rec == nil {
		rec = telemetry.NewRecorder()
	}
	r := &run{
		t:          t,
		nprocs:     np,
		rec:        rec,
		rootResult: make(chan int8, 1),
		workSpin:   opt.WorkPerExpansion,
		reported:   make([]atomic.Bool, t.Len()),
		vals:       make([]atomic.Int32, t.Len()),
	}
	r.procs = make([]*processor, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		p := &processor{r: r, id: i, mb: newMailbox(), sh: rec.Shard(i), levels: map[int]*levelState{}}
		for lvl := i; lvl <= t.Height; lvl += np {
			p.owned = append(p.owned, lvl)
		}
		r.procs[i] = p
	}
	base := make([]ProcStats, np)
	for i, p := range r.procs {
		base[i] = ProcStats{
			Sent:         p.sh.MsgsSent.Load(),
			Received:     p.sh.MsgsRecv.Load(),
			StaleDropped: p.sh.MsgsStale.Load(),
		}
	}
	if opt.Net != nil {
		r.tr = newTransport(r, opt.Net, opt.Protocol.withDefaults(), rec)
	}
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func(p *processor) {
			defer wg.Done()
			p.loop()
		}(r.procs[i])
	}
	if r.tr != nil {
		r.tr.start()
	}
	// Kick off: P-SOLVE*(root) to the processor owning level 0.
	r.sendFrom(-1, 0, message{typ: msgPSolve, v: t.Root()})
	val := <-r.rootResult
	if r.tr != nil {
		r.tr.stop()
		opt.Net.Close()
	}
	for _, p := range r.procs {
		p.mb.halt()
	}
	wg.Wait()
	m := Metrics{
		Value:      int32(val),
		Expansions: r.expansions.Load(),
		Messages:   r.messages.Load(),
		Processors: np,
	}
	for i := range m.ByType {
		m.ByType[i] = r.byType[i].Load()
	}
	m.PerProcessor = make([]ProcStats, np)
	for i, p := range r.procs {
		// Subtract the pre-run baseline so a recorder reused across runs
		// still yields this run's counts in Metrics.
		m.PerProcessor[i] = ProcStats{
			Sent:         p.sh.MsgsSent.Load() - base[i].Sent,
			Received:     p.sh.MsgsRecv.Load() - base[i].Received,
			StaleDropped: p.sh.MsgsStale.Load() - base[i].StaleDropped,
		}
	}
	if r.tr != nil {
		m.Protocol = r.tr.snapshotStats()
		m.Net = opt.Net.Stats()
	}
	return m, nil
}

// send routes a message to the processor owning the given level. Level -1
// is the coordinator awaiting the root value.
var debugHook func(level int, m message)

// debugHandle, when set, observes every message as a processor handles it
// (tag "h") and every val drop (tag "drop"). Test-only.
var debugHandle func(tag string, proc int, m message)

// dumpState reports the live invocations of every processor (test-only
// deadlock diagnosis).
func (r *run) dumpState() string {
	out := ""
	for _, p := range r.procs {
		p.mb.mu.Lock()
		for lvl, ls := range p.levels {
			if ls.s != nil {
				out += fmt.Sprintf("p%d L%d S(root=%d stack=%d) ", p.id, lvl, ls.s.root, len(ls.s.stack))
			}
			if ls.p != nil {
				out += fmt.Sprintf("p%d L%d P(v=%d w=%d x=%d lval=%d rval=%d) ", p.id, lvl, ls.p.v, ls.p.w, ls.p.x, ls.p.lval, ls.p.rval)
			}
		}
		out += fmt.Sprintf("p%d queue=%d; ", p.id, len(p.mb.queue))
		p.mb.mu.Unlock()
	}
	return out
}

func (r *run) send(level int, m message) { r.sendFrom(-1, level, m) }

// sendFrom routes a message from processor `from` (-1: the coordinator)
// to the owner of `level`. On the perfect path that is a direct mailbox
// append; with a network armed it becomes a reliable transport send.
func (r *run) sendFrom(from, level int, m message) {
	r.messages.Add(1)
	if m.typ < msgReassign {
		r.byType[m.typ].Add(1)
	}
	m.sentNs = r.rec.Now()
	if debugHook != nil {
		debugHook(level, m)
	}
	if r.tr != nil {
		r.tr.send(from, level, -1, m)
		return
	}
	if level < 0 {
		if m.typ != msgVal {
			panic("msgpass: only val messages go to the coordinator")
		}
		select {
		case r.rootResult <- m.val:
		default: // a second (stale) root report is impossible, but harmless
		}
		return
	}
	r.procs[level%r.nprocs].mb.send(m)
}

// expand performs the synthetic work of one node expansion.
func (r *run) expand() {
	r.expansions.Add(1)
	if r.workSpin > 0 {
		spin(r.workSpin)
	}
}

var spinSink uint64

// spin burns CPU deterministically; the result is published to a package
// sink so the loop cannot be optimized away.
func spin(n int) {
	z := uint64(n)
	for i := 0; i < n; i++ {
		z ^= z << 13
		z ^= z >> 7
		z ^= z << 17
	}
	atomic.StoreUint64(&spinSink, z)
}

func (p *processor) loop() {
	for {
		msgs, halted := p.mb.drain(!p.hasWork())
		if halted {
			return
		}
		if tr := p.r.tr; tr != nil {
			if !tr.net.Alive(p.id) {
				p.awaitHalt() // crashed: execute nothing more
				return
			}
			if until, ok := tr.net.StalledUntil(p.id); ok {
				time.Sleep(time.Until(until))
			}
		}
		for _, m := range msgs {
			if p.fenced {
				break
			}
			p.sh.MsgsRecv.Add(1)
			p.sh.Hist[telemetry.HistMsgResidenceNs].Observe(p.r.rec.Now() - m.sentNs)
			if debugHandle != nil {
				debugHandle("h", p.id, m)
			}
			p.handle(m)
		}
		if p.fenced {
			p.awaitHalt()
			return
		}
		p.stepWork()
	}
}

// awaitHalt discards all further traffic until the run ends; the terminal
// state of crashed and fenced processors.
func (p *processor) awaitHalt() {
	for {
		if _, halted := p.mb.drain(true); halted {
			return
		}
	}
}

func (p *processor) hasWork() bool {
	for _, ls := range p.levels {
		if ls.s != nil {
			return true
		}
	}
	return false
}

func (p *processor) state(level int) *levelState {
	ls := p.levels[level]
	if ls == nil {
		ls = &levelState{}
		p.levels[level] = ls
	}
	return ls
}

func (p *processor) handle(m message) {
	t := p.r.t
	if m.typ == msgReassign {
		p.onReassign(m.ctrl)
		return
	}
	if m.typ != msgVal {
		if p.r.reported[m.v].Load() {
			// v's value is already out. On the perfect network the
			// invocation is simply superseded; over a faulty one the
			// earlier val may have died with a crashed recipient, so a
			// re-issued invocation is answered from the memo.
			if tr := p.r.tr; tr != nil {
				tr.stats.memoReplies.Add(1)
				p.send(t.Depth(m.v)-1, message{typ: msgVal, v: m.v, val: p.r.reportedVal(m.v)})
			} else {
				p.sh.MsgsStale.Add(1)
			}
			return
		}
		if p.r.stale(m.v) {
			p.sh.MsgsStale.Add(1)
			return // superseded invocation: an ancestor's value is already out
		}
	}
	switch m.typ {
	case msgSSolve:
		// Pre-emption: the most recent S-invocation at this level
		// replaces any older one — unless we have been directed to run
		// P-SOLVE*(v) for this same node, in which case the P
		// invocation owns the node.
		ls := p.state(t.Depth(m.v))
		if ls.p != nil && ls.p.v == m.v {
			return
		}
		ls.s = &sState{root: m.v, stack: []sFrame{{node: m.v}}}
	case msgPSolve:
		p.startPSolve(m.v)
	case msgPSolve2:
		p.startPVariant(m.v, -1)
	case msgPSolve3:
		p.startPVariant(m.v, 0)
	case msgVal:
		p.handleVal(m.v, m.val)
	}
}

// onReassign applies a level-reassignment broadcast (reliable.go). The
// declared-dead processor fences itself; the adopter takes ownership of
// the orphaned levels; and every survivor re-issues the child invocations
// its live P-invocations had sent into those levels, since the originals
// died with the processor that owned them. Values are deterministic per
// node, so redundant re-invocations converge (reported nodes answer from
// the memo, live ones are superseded by the pre-emption rule).
func (p *processor) onReassign(c *reassignCmd) {
	if c.dead == p.id {
		p.fenced = true
		p.levels = map[int]*levelState{}
		return
	}
	if c.adopter == p.id {
		for _, l := range c.levels {
			if !slices.Contains(p.owned, l) {
				p.owned = append(p.owned, l)
			}
		}
		slices.Sort(p.owned)
	}
	reassigned := make(map[int]bool, len(c.levels))
	for _, l := range c.levels {
		reassigned[l] = true
	}
	for level, ls := range p.levels {
		if ls.p == nil || !reassigned[level+1] {
			continue
		}
		st := ls.p
		switch {
		case st.lval < 0 && st.rval < 0:
			p.send(level+1, message{typ: msgPSolve, v: st.w})
			p.send(level+1, message{typ: msgSSolve, v: st.x})
		case st.lval < 0:
			p.send(level+1, message{typ: msgPSolve, v: st.w})
		case st.lval == 0 && st.rval < 0:
			p.send(level+1, message{typ: msgPSolve, v: st.x})
		}
	}
}

// startPSolve implements the two cases of "P-SOLVE*(v)".
func (p *processor) startPSolve(v tree.NodeID) {
	t := p.r.t
	level := t.Depth(v)
	ls := p.state(level)
	if ls.s != nil && ls.s.root == v {
		// Case 2: an execution of S-SOLVE*(v) is in progress here.
		// Convert its DFS path into the cascade of invocations.
		p.handoff(ls.s)
		ls.s = nil
		return
	}
	// Case 1: start fresh. The most recent P-invocation wins the level.
	p.r.expand()
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		p.r.markReported(v, int8(nd.Value))
		p.send(level-1, message{typ: msgVal, v: v, val: int8(nd.Value)})
		ls.p = nil
		return
	}
	w, x := nd.FirstChild, nd.FirstChild+1
	ls.p = &pState{v: v, w: w, x: x, lval: -1, rval: -1}
	p.send(level+1, message{typ: msgPSolve, v: w})
	p.send(level+1, message{typ: msgSSolve, v: x})
}

// startPVariant implements "P-SOLVE**(v)" (lval = -1: left child pending)
// and "P-SOLVE***(v)" (lval = 0: left child known to be 0). In both cases
// v has already been expanded and the child invocations are already
// running, so the processor only waits for value messages.
func (p *processor) startPVariant(v tree.NodeID, lval int8) {
	t := p.r.t
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		// Cannot happen: the handoff sends P-variants only for internal
		// path nodes.
		p.r.markReported(v, int8(nd.Value))
		p.send(t.Depth(v)-1, message{typ: msgVal, v: v, val: int8(nd.Value)})
		return
	}
	ls := p.state(t.Depth(v))
	ls.p = &pState{v: v, w: nd.FirstChild, x: nd.FirstChild + 1, lval: lval, rval: -1}
	if ls.s != nil && ls.s.root == v {
		ls.s = nil // the P-invocation owns the node now
	}
}

// handoff converts an in-progress S-SOLVE* DFS into width-1 cascade
// invocations: for every node u on the current DFS path, the path's
// direction at u determines the message, and the terminal node receives a
// fresh P-SOLVE*.
func (p *processor) handoff(s *sState) {
	t := p.r.t
	for _, f := range s.stack {
		u := f.node
		level := t.Depth(u)
		switch f.stage {
		case 1: // path continues into the left child
			p.send(level, message{typ: msgPSolve2, v: u})
			p.send(level+1, message{typ: msgSSolve, v: t.Node(u).FirstChild + 1})
		case 2: // left child resolved to 0; path continues right
			p.send(level, message{typ: msgPSolve3, v: u})
		default: // stage 0: the terminal node of the path
			p.send(level, message{typ: msgPSolve, v: u})
		}
	}
}

// handleVal delivers val(v)=b to the P-invocation waiting on v, if any.
// Stale values (from superseded invocations) match no waiter and are
// dropped.
func (p *processor) handleVal(v tree.NodeID, b int8) {
	t := p.r.t
	parentLevel := t.Depth(v) - 1
	ls := p.levels[parentLevel]
	if ls == nil || ls.p == nil {
		p.sh.MsgsStale.Add(1)
		if debugHandle != nil {
			debugHandle("drop-noP", p.id, message{typ: msgVal, v: v, val: b})
		}
		return
	}
	st := ls.p
	switch v {
	case st.w:
		if st.lval >= 0 {
			p.sh.MsgsStale.Add(1)
			return // duplicate/stale
		}
		st.lval = b
		if b == 1 {
			p.finishP(parentLevel, st, 0)
			return
		}
		// Left child is 0: promote the right child's sequential search
		// to a parallel one.
		if st.rval < 0 {
			p.send(parentLevel+1, message{typ: msgPSolve, v: st.x})
		} else {
			p.finishP(parentLevel, st, 1-st.rval)
		}
	case st.x:
		if st.rval >= 0 {
			p.sh.MsgsStale.Add(1)
			return
		}
		st.rval = b
		if b == 1 {
			p.finishP(parentLevel, st, 0)
			return
		}
		if st.lval == 0 {
			p.finishP(parentLevel, st, 1)
		}
		// Otherwise keep waiting for the left child.
	default:
		p.sh.MsgsStale.Add(1) // value for a child this invocation is not waiting on
	}
}

func (p *processor) finishP(level int, st *pState, val int8) {
	p.r.markReported(st.v, val)
	p.send(level-1, message{typ: msgVal, v: st.v, val: val})
	if ls := p.levels[level]; ls != nil && ls.p == st {
		ls.p = nil
	}
}

// stepWork advances one S-SOLVE* invocation by one node expansion,
// multiplexing fairly (round-robin) over the levels this processor owns —
// the "zones" scheme of the paper's closing remark.
func (p *processor) stepWork() {
	for i := 0; i < len(p.owned); i++ {
		lvl := p.owned[(p.next+i)%len(p.owned)]
		if ls := p.levels[lvl]; ls != nil && ls.s != nil {
			p.next = (p.next + i + 1) % len(p.owned)
			p.stepS(ls)
			return
		}
	}
}

// stepS performs one expansion of the DFS and the (free) value
// propagation that follows it.
func (p *processor) stepS(ls *levelState) {
	t := p.r.t
	s := ls.s
	top := &s.stack[len(s.stack)-1]
	p.r.expand()
	nd := t.Node(top.node)
	if nd.NumChildren == 0 {
		p.propagateS(ls, int8(nd.Value))
		return
	}
	top.stage = 1
	s.stack = append(s.stack, sFrame{node: nd.FirstChild})
}

// propagateS pops the finished node's value up the DFS stack: a 1 child
// makes the parent 0 immediately; a 0 child advances the parent to its
// right child or, if both children were 0, resolves the parent to 1.
func (p *processor) propagateS(ls *levelState, val int8) {
	t := p.r.t
	s := ls.s
	s.stack = s.stack[:len(s.stack)-1]
	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		if val == 1 {
			val = 0 // NOR: parent determined 0
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		if top.stage == 1 {
			top.stage = 2
			s.stack = append(s.stack, sFrame{node: t.Node(top.node).FirstChild + 1})
			return
		}
		// stage 2 and the right child returned 0: parent is 1.
		val = 1
		s.stack = s.stack[:len(s.stack)-1]
	}
	// The whole invocation finished.
	p.r.markReported(s.root, val)
	p.send(t.Depth(s.root)-1, message{typ: msgVal, v: s.root, val: val})
	ls.s = nil
}
