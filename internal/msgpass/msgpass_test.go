package msgpass

import (
	"math/rand"
	"testing"

	"gametree/internal/expand"
	"gametree/internal/tree"
)

func TestCorrectValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(9)
		p := []float64{0.3, 0.5, 0.618}[rng.Intn(3)]
		tr := tree.IIDNor(2, n, p, rng.Int63())
		want := tr.Evaluate()
		m, err := Evaluate(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != want {
			t.Fatalf("trial %d (n=%d): got %d, want %d", trial, n, m.Value, want)
		}
		if m.Processors != n+1 {
			t.Fatalf("trial %d: %d processors, want %d", trial, m.Processors, n+1)
		}
	}
}

func TestCorrectValueAdversarialTrees(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, rv := range []int32{0, 1} {
			for _, gen := range []func(int, int, int32) *tree.Tree{tree.WorstCaseNOR, tree.BestCaseNOR} {
				tr := gen(2, n, rv)
				m, err := Evaluate(tr, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if m.Value != rv {
					t.Fatalf("n=%d rv=%d: got %d", n, rv, m.Value)
				}
			}
		}
	}
}

func TestZonesFixedProcessorCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		tr := tree.IIDNor(2, n, 0.5, rng.Int63())
		want := tr.Evaluate()
		for _, procs := range []int{1, 2, 3, n + 1, 2 * (n + 1)} {
			m, err := Evaluate(tr, Options{Processors: procs})
			if err != nil {
				t.Fatal(err)
			}
			if m.Value != want {
				t.Fatalf("trial %d procs=%d: got %d, want %d", trial, procs, m.Value, want)
			}
			if procs <= n+1 && m.Processors != procs {
				t.Fatalf("trial %d: reported %d processors, want %d", trial, m.Processors, procs)
			}
		}
	}
}

func TestSingleLeaf(t *testing.T) {
	for _, v := range []int32{0, 1} {
		tr := tree.FromNested(tree.NOR, int(v))
		m, err := Evaluate(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != v || m.Expansions != 1 {
			t.Errorf("leaf %d: %+v", v, m)
		}
	}
}

func TestRejectsNonBinaryAndMinMax(t *testing.T) {
	if _, err := Evaluate(tree.IIDNor(3, 2, 0.5, 1), Options{}); err == nil {
		t.Error("ternary tree accepted")
	}
	if _, err := Evaluate(tree.IIDMinMax(2, 2, 0, 5, 1), Options{}); err == nil {
		t.Error("MinMax tree accepted")
	}
}

// The implementation should not expand wildly more nodes than the
// node-expansion simulator's width-1 run: Section 7 argues the traversal
// delays fold into the Proposition 6 counting, so total work stays within
// a constant factor of N-Parallel SOLVE's work (which itself is within a
// constant of sequential work by Corollary 1's analogue).
func TestWorkWithinConstantOfSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(5)
		tr := tree.IIDNor(2, n, 0.618, rng.Int63())
		sim, err := expand.NParallelSolve(tr, 1, expand.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Evaluate(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Expansions > 4*sim.Work+16 {
			t.Errorf("trial %d (n=%d): msgpass expanded %d, simulator %d",
				trial, n, m.Expansions, sim.Work)
		}
	}
}

func TestMessagesCounted(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 6, 1)
	m, err := Evaluate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages <= 0 || m.Expansions <= 0 {
		t.Errorf("no accounting: %+v", m)
	}
}

func TestSyntheticWorkStillCorrect(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 7, 1)
	m, err := Evaluate(tr, Options{WorkPerExpansion: 200})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value != 1 {
		t.Errorf("value %d", m.Value)
	}
}

func TestManySeedsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(11)
		tr := tree.IIDNor(2, n, rng.Float64(), rng.Int63())
		want := tr.Evaluate()
		procs := 1 + rng.Intn(n+2)
		m, err := Evaluate(tr, Options{Processors: procs})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != want {
			t.Fatalf("trial %d n=%d procs=%d: got %d want %d", trial, n, procs, m.Value, want)
		}
	}
}

// Binarization extends the Section 7 machine to arbitrary branching
// factors: binarize the d-ary tree, run the machine, compare values.
func TestBinarizedDaryTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := 3 + rng.Intn(3)
		n := rng.Intn(4)
		tr := tree.IIDNor(d, n, 0.4, rng.Int63())
		bin := tree.BinarizeNOR(tr)
		m, err := Evaluate(bin, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != tr.Evaluate() {
			t.Fatalf("trial %d (d=%d): msgpass on binarized tree gave %d, want %d",
				trial, d, m.Value, tr.Evaluate())
		}
	}
}

func TestMessageTypeAccounting(t *testing.T) {
	tr := tree.IIDNor(2, 8, 0.382, 3)
	m, err := Evaluate(tr, Options{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range m.ByType {
		sum += c
	}
	if sum != m.Messages {
		t.Errorf("type counts sum to %d, total %d", sum, m.Messages)
	}
	// A multiplexed run exercises every message type of Section 7.
	for i, name := range []string{"S-SOLVE*", "P-SOLVE*", "P-SOLVE**", "P-SOLVE***", "val"} {
		if m.ByType[i] == 0 {
			t.Errorf("message type %s never sent", name)
		}
	}
}
