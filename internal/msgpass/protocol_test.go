package msgpass

import (
	"math/rand"
	"sync"
	"testing"

	"gametree/internal/tree"
)

// TestMessageProtocolInvariants traces every message of a run and checks
// the routing discipline of Section 7: the run begins with P-SOLVE*(root)
// at level 0; every invocation message is addressed to the level of its
// node; every val message goes one level up; and a root value reaches the
// coordinator (level -1) matching the result.
func TestMessageProtocolInvariants(t *testing.T) {
	type traced struct {
		level int
		m     message
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		tr := tree.IIDNor(2, 2+rng.Intn(7), 0.618, rng.Int63())
		var mu sync.Mutex
		var log []traced
		debugHook = func(level int, m message) {
			mu.Lock()
			log = append(log, traced{level, m})
			mu.Unlock()
		}
		res, err := Evaluate(tr, Options{})
		debugHook = nil
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != tr.Evaluate() {
			t.Fatalf("trial %d: wrong value", trial)
		}
		if len(log) == 0 {
			t.Fatal("no messages traced")
		}
		first := log[0]
		if first.level != 0 || first.m.typ != msgPSolve || first.m.v != tr.Root() {
			t.Fatalf("trial %d: run must start with P-SOLVE*(root) at level 0, got %+v", trial, first)
		}
		sawRootVal := false
		for i, e := range log {
			switch e.m.typ {
			case msgSSolve, msgPSolve, msgPSolve2, msgPSolve3:
				if e.level != tr.Depth(e.m.v) {
					t.Fatalf("trial %d msg %d: invocation for node %d routed to level %d, want %d",
						trial, i, e.m.v, e.level, tr.Depth(e.m.v))
				}
			case msgVal:
				if e.level != tr.Depth(e.m.v)-1 {
					t.Fatalf("trial %d msg %d: val(%d) routed to level %d, want %d",
						trial, i, e.m.v, e.level, tr.Depth(e.m.v)-1)
				}
				if e.level == -1 {
					sawRootVal = true
					if e.m.val != int8(res.Value) {
						t.Fatalf("trial %d: coordinator val %d != result %d", trial, e.m.val, res.Value)
					}
				}
			}
		}
		if !sawRootVal {
			t.Fatalf("trial %d: no root value message", trial)
		}
	}
}

// On a worst-case rv=0 instance the cascade must actually descend the left
// spine: the number of distinct levels receiving P-invocations grows with
// n. With many processors the observation is timing-dependent (the root
// can short-circuit first), so this runs on a single multiplexing
// processor, where message handling is deterministic and the cascade
// always out-runs the step-at-a-time S-SOLVE work.
func TestCascadeDepthGrows(t *testing.T) {
	depthOf := func(n int) int {
		tr := tree.WorstCaseNOR(2, n, 0)
		var mu sync.Mutex
		levels := map[int]bool{}
		debugHook = func(level int, m message) {
			if m.typ == msgPSolve || m.typ == msgPSolve2 || m.typ == msgPSolve3 {
				mu.Lock()
				levels[level] = true
				mu.Unlock()
			}
		}
		defer func() { debugHook = nil }()
		if _, err := Evaluate(tr, Options{Processors: 1}); err != nil {
			t.Fatal(err)
		}
		return len(levels)
	}
	if d4, d8 := depthOf(4), depthOf(8); d8 <= d4 {
		t.Errorf("cascade did not deepen: %d levels at n=4, %d at n=8", d4, d8)
	}
}
