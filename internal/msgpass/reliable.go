package msgpass

// The reliability protocol that lets the Section 7 machine keep its
// correctness over a faulty network (internal/faultnet). The paper's
// pre-emption rule already makes the machine idempotent against *stale*
// traffic; this layer adds what the rule cannot give:
//
//   - Loss: every data frame carries a globally unique sequence number
//     and is retransmitted with exponential backoff until acknowledged.
//   - Duplication: receivers acknowledge every copy (the ack itself may
//     have been lost) but deliver each sequence number once.
//   - Crash: a monitor emits heartbeats on behalf of each processor
//     through the same lossy network; silence beyond DeadAfter declares
//     the processor dead, reassigns its zone levels to a surviving
//     adopter, and broadcasts the reassignment so parents re-issue the
//     child invocations that died with it. A processor that was declared
//     dead wrongly (a long stall) is fenced: on hearing its own death it
//     drops all state and goes silent, so the adopter's recovery is never
//     raced.
//   - Lost values: markReported memoizes each reported value, so a
//     re-issued invocation for an already-solved node is answered from
//     the memo instead of being silently dropped (the original val(v) may
//     have died with its crashed recipient).
//
// Retransmits of level-addressed frames re-resolve the owning processor,
// so traffic redirected by a reassignment reaches the adopter. All of
// this sits behind Options.Net: when nil, the machine keeps its direct
// in-process path and the only cost is one nil check per send.

import (
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/faultnet"
	"gametree/internal/telemetry"
)

// ProtocolConfig tunes the reliability protocol. Zero fields take the
// defaults noted on each knob.
type ProtocolConfig struct {
	// HeartbeatEvery is the heartbeat emission period (default 2ms).
	HeartbeatEvery time.Duration
	// DeadAfter is the heartbeat silence after which a processor is
	// declared dead (default 30ms). Must comfortably exceed
	// HeartbeatEvery plus the network's delay bound, or stalls and
	// unlucky drop runs will fence healthy processors — recoverable, but
	// wasteful.
	DeadAfter time.Duration
	// RetransmitAfter is the initial ack timeout (default 2ms); the
	// backoff doubles per retransmission up to RetransmitMax (default
	// 20ms).
	RetransmitAfter time.Duration
	RetransmitMax   time.Duration
}

func (c ProtocolConfig) withDefaults() ProtocolConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 30 * time.Millisecond
	}
	if c.RetransmitAfter <= 0 {
		c.RetransmitAfter = 2 * time.Millisecond
	}
	if c.RetransmitMax <= 0 {
		c.RetransmitMax = 20 * time.Millisecond
	}
	return c
}

// ProtocolStats reports the reliability-protocol traffic of one run.
type ProtocolStats struct {
	Retransmits      int64 // data frames re-sent after an ack timeout
	Heartbeats       int64 // heartbeats emitted
	Deaths           int64 // processors declared dead
	LevelsReassigned int64 // levels adopted by survivors
	DupDropped       int64 // duplicate deliveries suppressed by sequence number
	MemoReplies      int64 // re-issued invocations answered from the value memo
}

// reassignCmd is the payload of a msgReassign control message: dead's
// levels now belong to adopter.
type reassignCmd struct {
	dead    int
	adopter int
	levels  []int
}

type wireKind uint8

const (
	wireData wireKind = iota // a machine message (or reassign control)
	wireAck                  // acknowledges one data sequence number
	wireBeat                 // heartbeat
)

// frame is what actually crosses the faultnet: a wire kind, the sequence
// number, the sending processor, the destination level (levelCtrl for
// processor-addressed control traffic) and, for data, the machine message.
type frame struct {
	kind  wireKind
	seq   uint64
	from  int
	level int
	m     message
}

// levelCtrl marks a frame as processor-addressed (reassign broadcasts)
// rather than level-addressed.
const levelCtrl = -2

// pendingMsg is one unacknowledged data frame awaiting ack or
// retransmission. Immutable after creation except dueNs/backoff, which
// only the protocol goroutine touches (under tr.mu).
type pendingMsg struct {
	seq     uint64
	from    int
	level   int // destination level, or levelCtrl
	proc    int // fixed destination when level == levelCtrl
	m       message
	firstNs int64 // recorder time of the first transmission
	dueNs   int64
	backoff time.Duration
}

type transport struct {
	r   *run
	net faultnet.Network
	cfg ProtocolConfig
	np  int

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*pendingMsg
	seen    map[uint64]bool // data seqs already delivered (dedup)

	// owner maps level -> current owning processor; rewritten by
	// reassignment so retransmits follow the adoption.
	owner    []atomic.Int32
	lastBeat []atomic.Int64 // recorder time of last heartbeat/traffic per proc
	dead     []atomic.Bool  // declared dead (monotonic)
	rootSeen atomic.Bool

	// sh is shard np of the run's recorder: the protocol goroutine's own
	// single-writer counter block (processors own shards 0..np-1).
	sh *telemetry.Shard

	stats struct {
		retransmits, heartbeats, deaths, levelsReassigned, dupDropped, memoReplies atomic.Int64
	}

	done chan struct{}
	wg   sync.WaitGroup
}

func newTransport(r *run, net faultnet.Network, cfg ProtocolConfig, rec *telemetry.Recorder) *transport {
	tr := &transport{
		r:        r,
		net:      net,
		cfg:      cfg,
		np:       r.nprocs,
		pending:  map[uint64]*pendingMsg{},
		seen:     map[uint64]bool{},
		owner:    make([]atomic.Int32, r.t.Height+1),
		lastBeat: make([]atomic.Int64, r.nprocs),
		dead:     make([]atomic.Bool, r.nprocs),
		sh:       rec.Shard(r.nprocs),
		done:     make(chan struct{}),
	}
	for l := range tr.owner {
		tr.owner[l].Store(int32(l % tr.np))
	}
	return tr
}

func (tr *transport) start() {
	now := tr.r.rec.Now()
	for q := range tr.lastBeat {
		tr.lastBeat[q].Store(now)
	}
	tr.net.Start(tr.onPacket)
	tr.wg.Add(1)
	go tr.protoLoop()
}

func (tr *transport) stop() {
	close(tr.done)
	tr.wg.Wait()
}

func (tr *transport) snapshotStats() ProtocolStats {
	return ProtocolStats{
		Retransmits:      tr.stats.retransmits.Load(),
		Heartbeats:       tr.stats.heartbeats.Load(),
		Deaths:           tr.stats.deaths.Load(),
		LevelsReassigned: tr.stats.levelsReassigned.Load(),
		DupDropped:       tr.stats.dupDropped.Load(),
		MemoReplies:      tr.stats.memoReplies.Load(),
	}
}

// resolve maps a destination level to its current owner (-1: coordinator).
func (tr *transport) resolve(level int) int {
	if level < 0 {
		return -1
	}
	return int(tr.owner[level].Load())
}

// send transmits one data frame reliably: it is tracked in pending and
// retransmitted until acked. level == levelCtrl addresses the fixed
// processor proc instead of a level owner. Never called with tr.mu held
// (the network may deliver synchronously, and delivery takes tr.mu).
func (tr *transport) send(from, level, proc int, m message) {
	s := tr.seq.Add(1)
	to := proc
	if level != levelCtrl {
		to = tr.resolve(level)
	}
	now := tr.r.rec.Now()
	pm := &pendingMsg{
		seq: s, from: from, level: level, proc: proc, m: m,
		firstNs: now,
		dueNs:   now + tr.cfg.RetransmitAfter.Nanoseconds(),
		backoff: tr.cfg.RetransmitAfter,
	}
	tr.mu.Lock()
	tr.pending[s] = pm
	tr.mu.Unlock()
	tr.net.Send(faultnet.Packet{From: from, To: to, Payload: frame{kind: wireData, seq: s, from: from, level: level, m: m}})
}

// onPacket is the network delivery callback. It may run on any goroutine
// (the sender's for synchronous networks, the injector's scheduler for
// delayed traffic), so it touches only transport state and mailboxes.
func (tr *transport) onPacket(pkt faultnet.Packet) {
	f, ok := pkt.Payload.(frame)
	if !ok {
		return
	}
	switch f.kind {
	case wireBeat:
		tr.noteBeat(f.from)
	case wireAck:
		tr.noteBeat(f.from)
		tr.mu.Lock()
		delete(tr.pending, f.seq)
		tr.mu.Unlock()
	case wireData:
		tr.noteBeat(f.from)
		// Ack every copy: the previous ack may itself have been lost.
		tr.net.Send(faultnet.Packet{From: pkt.To, To: pkt.From, Payload: frame{kind: wireAck, seq: f.seq, from: pkt.To}})
		tr.mu.Lock()
		dup := tr.seen[f.seq]
		if !dup {
			tr.seen[f.seq] = true
		}
		tr.mu.Unlock()
		if dup {
			tr.stats.dupDropped.Add(1)
			return
		}
		if pkt.To < 0 {
			// Coordinator: the root value.
			if f.m.typ == msgVal {
				tr.rootSeen.Store(true)
				select {
				case tr.r.rootResult <- f.m.val:
				default:
				}
			}
			return
		}
		tr.r.procs[pkt.To].mb.send(f.m)
	}
}

func (tr *transport) noteBeat(proc int) {
	if proc >= 0 && proc < tr.np {
		tr.lastBeat[proc].Store(tr.r.rec.Now())
	}
}

// protoLoop is the single protocol goroutine: heartbeat emission, death
// detection, and the retransmit scan. Centralizing emission (gated on the
// network's own Alive/StalledUntil so crashed and stalled processors fall
// silent exactly as real ones would) keeps the processor hot loop
// untouched; centralizing the scan gives the telemetry shard a single
// writer.
func (tr *transport) protoLoop() {
	defer tr.wg.Done()
	tick := tr.cfg.HeartbeatEvery / 4
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var lastEmitNs int64 = -1 << 62
	for {
		select {
		case <-tr.done:
			return
		case <-ticker.C:
		}
		nowNs := tr.r.rec.Now()

		if nowNs-lastEmitNs >= tr.cfg.HeartbeatEvery.Nanoseconds() {
			lastEmitNs = nowNs
			for q := 0; q < tr.np; q++ {
				if tr.dead[q].Load() || !tr.net.Alive(q) {
					continue
				}
				if _, stalled := tr.net.StalledUntil(q); stalled {
					continue
				}
				tr.stats.heartbeats.Add(1)
				tr.sh.Heartbeats.Add(1)
				tr.net.Send(faultnet.Packet{From: q, To: -1, Payload: frame{kind: wireBeat, from: q}})
			}
		}

		for q := 0; q < tr.np; q++ {
			if tr.dead[q].Load() {
				continue
			}
			if silence := nowNs - tr.lastBeat[q].Load(); silence > tr.cfg.DeadAfter.Nanoseconds() {
				tr.declareDead(q, silence)
			}
		}

		var resend []*pendingMsg
		tr.mu.Lock()
		for s, pm := range tr.pending {
			if pm.from >= 0 && !tr.net.Alive(pm.from) {
				// A dead processor cannot retransmit; its lost sends are
				// what the recovery sweep re-derives.
				delete(tr.pending, s)
				continue
			}
			if pm.level == levelCtrl && !tr.net.Alive(pm.proc) {
				delete(tr.pending, s) // undeliverable forever
				continue
			}
			if nowNs >= pm.dueNs {
				pm.backoff *= 2
				if pm.backoff > tr.cfg.RetransmitMax {
					pm.backoff = tr.cfg.RetransmitMax
				}
				pm.dueNs = nowNs + pm.backoff.Nanoseconds()
				resend = append(resend, pm)
			}
		}
		tr.mu.Unlock()
		for _, pm := range resend {
			to := pm.proc
			if pm.level != levelCtrl {
				to = tr.resolve(pm.level) // follow any reassignment
			}
			tr.stats.retransmits.Add(1)
			tr.sh.Retransmits.Add(1)
			tr.sh.Hist[telemetry.HistRetransmitDelayNs].Observe(nowNs - pm.firstNs)
			tr.net.Send(faultnet.Packet{From: pm.from, To: to, Payload: frame{kind: wireData, seq: pm.seq, from: pm.from, level: pm.level, m: pm.m}})
		}
	}
}

// declareDead marks proc dead, hands its levels to the next surviving
// processor, and broadcasts the reassignment reliably to everyone —
// including the "dead" processor itself, which fences on hearing it.
// The last surviving processor is never declared dead: with no possible
// adopter the declaration could only wedge the run.
func (tr *transport) declareDead(proc int, silenceNs int64) {
	alive := 0
	for q := 0; q < tr.np; q++ {
		if !tr.dead[q].Load() {
			alive++
		}
	}
	if alive <= 1 {
		return
	}
	tr.dead[proc].Store(true)
	tr.stats.deaths.Add(1)
	tr.sh.Hist[telemetry.HistRecoveryNs].Observe(silenceNs)

	adopter := -1
	for d := 1; d < tr.np; d++ {
		if q := (proc + d) % tr.np; !tr.dead[q].Load() {
			adopter = q
			break
		}
	}
	if adopter < 0 {
		return // unreachable given alive > 1
	}
	var levels []int
	hadRoot := false
	for l := range tr.owner {
		if int(tr.owner[l].Load()) == proc {
			tr.owner[l].Store(int32(adopter))
			levels = append(levels, l)
			if l == 0 {
				hadRoot = true
			}
		}
	}
	tr.stats.levelsReassigned.Add(int64(len(levels)))
	tr.sh.Reassigns.Add(int64(len(levels)))

	cmd := &reassignCmd{dead: proc, adopter: adopter, levels: levels}
	for q := 0; q < tr.np; q++ {
		tr.send(-1, levelCtrl, q, message{typ: msgReassign, ctrl: cmd})
	}
	if hadRoot && !tr.rootSeen.Load() {
		// The root invocation has no parent to re-derive it from; the
		// monitor re-kicks it. If the root already resolved on the dead
		// processor, the adopter answers from the value memo.
		tr.r.sendFrom(-1, 0, message{typ: msgPSolve, v: tr.r.t.Root()})
	}
}
