package msgpass

import (
	"testing"
	"time"

	"gametree/internal/tree"
)

// Regression test for the asynchronous staleness bug: without the shared
// reported-ancestor check, a superseded invocation handled late could
// spawn child invocations that clobber the live cascade's per-level slot
// and orphan a promoted coordinator (observed as a deadlock on worst-case
// B(2,12) with zones and synthetic per-expansion work). Run the exact
// configurations that exposed it, with a watchdog.
func TestNoDeadlockUnderZonesAndWork(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	run := func(name string, f func() (Metrics, error), want int32) {
		t.Helper()
		done := make(chan Metrics, 1)
		go func() {
			m, err := f()
			if err != nil {
				t.Error(err)
			}
			done <- m
		}()
		select {
		case m := <-done:
			if m.Value != want {
				t.Fatalf("%s: value %d, want %d", name, m.Value, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: deadlock (watchdog fired)", name)
		}
	}
	for trial := 0; trial < trials; trial++ {
		for _, procs := range []int{2, 3, 4, 13} {
			nor := tree.WorstCaseNOR(2, 12, 1)
			run("solve", func() (Metrics, error) {
				return Evaluate(nor, Options{Processors: procs, WorkPerExpansion: 1000})
			}, 1)
			mm := tree.WorstOrderedMinMax(2, 10, int64(trial))
			run("alphabeta", func() (Metrics, error) {
				return EvaluateAlphaBeta(mm, Options{Processors: procs, WorkPerExpansion: 500})
			}, mm.Evaluate())
		}
	}
}
