package msgpass

import (
	"math/rand"
	"testing"

	"gametree/internal/telemetry"
	"gametree/internal/tree"
)

// TestPerProcessorCountsConsistent pins the message accounting identity
// on both machines: every delivered message except the coordinator's
// kickoff was sent by some processor, so sum(PerProcessor.Sent) must be
// Metrics.Messages - 1. Receipts are bounded by deliveries (the root val
// goes to the coordinator, not a processor, and mailboxes may hold
// undrained messages when the run halts), and stale drops never exceed
// receipts.
func TestPerProcessorCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)

		nor := tree.IIDNor(2, n, 0.618, rng.Int63())
		m, err := Evaluate(nor, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkProcStats(t, "solve", m)

		mm := tree.IIDMinMax(2, n, 0, 9, rng.Int63())
		ab, err := EvaluateAlphaBeta(mm, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkProcStats(t, "alphabeta", ab)
	}
}

func checkProcStats(t *testing.T, machine string, m Metrics) {
	t.Helper()
	if len(m.PerProcessor) != m.Processors {
		t.Fatalf("%s: %d PerProcessor entries for %d processors",
			machine, len(m.PerProcessor), m.Processors)
	}
	var sent, recv, stale int64
	for i, ps := range m.PerProcessor {
		if ps.Sent < 0 || ps.Received < 0 || ps.StaleDropped < 0 {
			t.Fatalf("%s: negative counters at processor %d: %+v", machine, i, ps)
		}
		if ps.StaleDropped > ps.Received {
			t.Fatalf("%s: processor %d dropped %d of %d received",
				machine, i, ps.StaleDropped, ps.Received)
		}
		sent += ps.Sent
		recv += ps.Received
		stale += ps.StaleDropped
	}
	if sent != m.Messages-1 {
		t.Fatalf("%s: processors sent %d messages, delivered %d (expect sent = delivered - kickoff)",
			machine, sent, m.Messages)
	}
	if recv == 0 || recv > m.Messages {
		t.Fatalf("%s: processors received %d of %d delivered messages", machine, recv, m.Messages)
	}
	_ = stale // non-negativity and the per-processor bound are the invariants
}

// TestExternalRecorderReuse: a caller-supplied recorder accumulates
// across runs, while Metrics.PerProcessor must still report each run's
// own counts (the baseline subtraction).
func TestExternalRecorderReuse(t *testing.T) {
	rec := telemetry.NewRecorder()
	tr := tree.WorstCaseNOR(2, 5, 1)

	m1, err := Evaluate(tr, Options{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	checkProcStats(t, "run1", m1)
	afterFirst := rec.Snapshot().Total

	m2, err := Evaluate(tr, Options{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	checkProcStats(t, "run2", m2)

	// The recorder accumulates across runs while each run's PerProcessor
	// reflects only that run (the baseline subtraction): run1's
	// per-processor sums equal the recorder after run1, and the final
	// recorder holds exactly the sum of both runs.
	sum := func(m Metrics) (s int64) {
		for _, ps := range m.PerProcessor {
			s += ps.Sent
		}
		return
	}
	if sum(m1) != afterFirst.MsgsSent {
		t.Fatalf("run1 per-processor sent %d != recorder %d", sum(m1), afterFirst.MsgsSent)
	}
	total := rec.Snapshot().Total
	if total.MsgsSent != sum(m1)+sum(m2) {
		t.Fatalf("recorder did not accumulate: %d != %d + %d",
			total.MsgsSent, sum(m1), sum(m2))
	}
}

// TestStaleDropsCounted: the pre-emption rule must actually fire on
// configurations that provoke it — the zoned, work-laden worst-case runs
// of the staleness regression test — and the drops must be visible in
// telemetry.
func TestStaleDropsCounted(t *testing.T) {
	var sawStale bool
	for trial := 0; trial < 10 && !sawStale; trial++ {
		for _, procs := range []int{2, 3} {
			tr := tree.WorstCaseNOR(2, 10, 1)
			m, err := Evaluate(tr, Options{Processors: procs, WorkPerExpansion: 500})
			if err != nil {
				t.Fatal(err)
			}
			for _, ps := range m.PerProcessor {
				if ps.StaleDropped > 0 {
					sawStale = true
				}
			}
		}
	}
	if !sawStale {
		t.Fatal("no run recorded a stale drop; pre-emption telemetry looks dead")
	}
}

// TestMsgResidenceHistogram: every message a processor drains is sampled
// into the queue-residence family, so the family's count must equal the
// receipts and the quantiles must be finite and ordered.
func TestMsgResidenceHistogram(t *testing.T) {
	rec := telemetry.NewRecorder()
	tr := tree.WorstCaseNOR(2, 8, 1)
	m, err := Evaluate(tr, Options{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	var recv int64
	for _, ps := range m.PerProcessor {
		recv += ps.Received
	}
	res := rec.Snapshot().Hist[telemetry.HistMsgResidenceNs]
	if res.Count != recv {
		t.Fatalf("residence samples %d != messages received %d", res.Count, recv)
	}
	p50, p99 := res.P50(), res.P99()
	if !(p50 >= 0 && p99 >= p50 && float64(res.Max) >= p99) {
		t.Fatalf("residence quantiles disordered: p50=%v p99=%v max=%d", p50, p99, res.Max)
	}
}
