package msgpass

// WireCodec serializes the reliable protocol's frames for a transport
// that carries bytes instead of in-memory values (internal/transport's
// TCP Network). It exists because everything a frame carries is plain
// data — tree.NodeID is an int32, values are int8 — so the exact
// protocol that runs over the in-memory faultnet can cross process
// boundaries without change: same acks, same retransmission, same
// fencing. The codec satisfies transport.Codec structurally.
//
// Layout (big endian):
//
//	uint8   wire kind (data/ack/beat)
//	uint64  sequence number
//	int32   sending processor
//	int32   destination level (levelCtrl for processor-addressed)
//	uint8   message type
//	int32   node id
//	int8    value
//	int64   sentNs
//	uint8   0 = no reassign payload; 1 = followed by:
//	int32   dead processor
//	int32   adopter processor
//	uint16  level count, then that many int32 levels
//
// Decode must never panic on arbitrary bytes: a socket peer can write
// anything.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gametree/internal/tree"
)

// WireCodec is stateless; the zero value is ready to use.
type WireCodec struct{}

const wireFixedLen = 1 + 8 + 4 + 4 + 1 + 4 + 1 + 8 + 1

var (
	errWirePayload = errors.New("msgpass: payload is not a protocol frame")
	errWireShort   = errors.New("msgpass: truncated wire frame")
)

// Encode renders one protocol frame to bytes. It rejects payloads of any
// other type — the reliable transport is the only legal sender.
func (WireCodec) Encode(payload any) ([]byte, error) {
	f, ok := payload.(frame)
	if !ok {
		return nil, fmt.Errorf("%w: %T", errWirePayload, payload)
	}
	n := wireFixedLen
	if f.m.ctrl != nil {
		n += 4 + 4 + 2 + 4*len(f.m.ctrl.levels)
	}
	b := make([]byte, 0, n)
	b = append(b, byte(f.kind))
	b = binary.BigEndian.AppendUint64(b, f.seq)
	b = binary.BigEndian.AppendUint32(b, uint32(int32(f.from)))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(f.level)))
	b = append(b, byte(f.m.typ))
	b = binary.BigEndian.AppendUint32(b, uint32(f.m.v))
	b = append(b, byte(f.m.val))
	b = binary.BigEndian.AppendUint64(b, uint64(f.m.sentNs))
	if f.m.ctrl == nil {
		return append(b, 0), nil
	}
	c := f.m.ctrl
	if len(c.levels) > 0xffff {
		return nil, fmt.Errorf("msgpass: reassign carries %d levels", len(c.levels))
	}
	b = append(b, 1)
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.dead)))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.adopter)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.levels)))
	for _, lv := range c.levels {
		b = binary.BigEndian.AppendUint32(b, uint32(int32(lv)))
	}
	return b, nil
}

// Decode is the inverse of Encode. Trailing garbage, truncation, and
// absurd level counts are errors, not panics.
func (WireCodec) Decode(data []byte) (any, error) {
	if len(data) < wireFixedLen {
		return nil, errWireShort
	}
	var f frame
	f.kind = wireKind(data[0])
	f.seq = binary.BigEndian.Uint64(data[1:])
	f.from = int(int32(binary.BigEndian.Uint32(data[9:])))
	f.level = int(int32(binary.BigEndian.Uint32(data[13:])))
	f.m.typ = msgType(data[17])
	f.m.v = tree.NodeID(binary.BigEndian.Uint32(data[18:]))
	f.m.val = int8(data[22])
	f.m.sentNs = int64(binary.BigEndian.Uint64(data[23:]))
	hasCtrl := data[31]
	rest := data[wireFixedLen:]
	switch hasCtrl {
	case 0:
		if len(rest) != 0 {
			return nil, errWireShort
		}
		return f, nil
	case 1:
		if len(rest) < 10 {
			return nil, errWireShort
		}
		c := &reassignCmd{
			dead:    int(int32(binary.BigEndian.Uint32(rest))),
			adopter: int(int32(binary.BigEndian.Uint32(rest[4:]))),
		}
		count := int(binary.BigEndian.Uint16(rest[8:]))
		rest = rest[10:]
		if len(rest) != 4*count {
			return nil, errWireShort
		}
		if count > 0 {
			c.levels = make([]int, count)
			for i := range c.levels {
				c.levels[i] = int(int32(binary.BigEndian.Uint32(rest[4*i:])))
			}
		}
		f.m.ctrl = c
		return f, nil
	default:
		return nil, fmt.Errorf("msgpass: bad reassign marker %d", hasCtrl)
	}
}
