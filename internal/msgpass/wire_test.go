package msgpass

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"gametree/internal/faultnet"
	nettrans "gametree/internal/transport"
	"gametree/internal/tree"
)

func TestWireCodecRoundTrip(t *testing.T) {
	frames := []frame{
		{},
		{kind: wireData, seq: 1, from: 0, level: 3,
			m: message{typ: msgPSolve, v: 12345, val: 1, sentNs: 987654321}},
		{kind: wireAck, seq: 1 << 40, from: 3},
		{kind: wireBeat, from: 2, level: -1},
		{kind: wireData, seq: 9, from: 1, level: levelCtrl,
			m: message{typ: msgReassign, v: -1, val: -1, sentNs: -5,
				ctrl: &reassignCmd{dead: 2, adopter: 0, levels: []int{0, 3, 7}}}},
		{kind: wireData, seq: 2, from: -1, level: levelCtrl,
			m: message{typ: msgReassign, ctrl: &reassignCmd{dead: 1, adopter: -1}}},
	}
	for i, f := range frames {
		b, err := WireCodec{}.Encode(f)
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		got, err := WireCodec{}.Decode(b)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame %d: round trip\n got %+v\nwant %+v", i, got, f)
		}
	}
}

func TestWireCodecErrors(t *testing.T) {
	if _, err := (WireCodec{}).Encode("not a frame"); err == nil {
		t.Fatal("encode accepted a non-frame payload")
	}

	good, err := WireCodec{}.Encode(frame{kind: wireData, seq: 1,
		m: message{ctrl: &reassignCmd{dead: 1, adopter: 2, levels: []int{4}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid frame must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := (WireCodec{}).Decode(good[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte frame", n, len(good))
		}
	}
	if _, err := (WireCodec{}).Decode(append(append([]byte{}, good...), 0xee)); err == nil {
		t.Fatal("decode accepted trailing garbage")
	}
	bad := append([]byte{}, good...)
	bad[wireFixedLen-1] = 7 // reassign marker must be 0 or 1
	if _, err := (WireCodec{}).Decode(bad); err == nil {
		t.Fatal("decode accepted a bad reassign marker")
	}
}

// tcpChaosNet composes the seeded fault injector over a real loopback
// TCP transport carrying protocol frames through WireCodec: the packets
// that survive injection cross actual sockets as bytes.
func tcpChaosNet(t *testing.T, procs int, cfg faultnet.Config) faultnet.Network {
	t.Helper()
	local := []int{-1} // the monitor/heartbeat sink lives in-process too
	for i := 0; i < procs; i++ {
		local = append(local, i)
	}
	lower, err := nettrans.New(nettrans.Config{
		Listen:   "127.0.0.1:0",
		Local:    local,
		Loopback: true, // force every packet over the socket
		Codec:    WireCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nettrans.Chaos(faultnet.NewInjector(cfg), lower)
}

// TestChaosMatrixOverTCP is the distribution acceptance gate: the exact
// regression matrix of TestChaosMatrix, with the in-memory network
// replaced by injector-over-TCP. Every protocol frame is serialized,
// crosses a real socket, and is decoded on the far side; the root value
// must still be exact under every fault mix.
func TestChaosMatrixOverTCP(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range chaosScenarios() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				tr := tree.IIDNor(2, sc.depth, 0.5, seed)
				want := tr.Evaluate()
				cfg := sc.cfg(seed)
				if err := cfg.Validate(); err != nil {
					t.Fatal(err)
				}
				net := tcpChaosNet(t, 4, cfg)
				m := runChaos(t, tr, Options{
					Processors:       4,
					WorkPerExpansion: sc.work,
					Net:              net,
					Protocol:         chaosProtocol(),
				}, 2*time.Minute)
				if m.Value != want {
					t.Fatalf("root value %d under %s faults over TCP, want %d (protocol %+v, net %v)",
						m.Value, sc.name, want, m.Protocol, m.Net)
				}
				if sc.wantDeaths && m.Protocol.Deaths == 0 {
					t.Fatalf("scenario %s expected at least one declared death; protocol %+v net %v",
						sc.name, m.Protocol, m.Net)
				}
			})
		}
	}
}

// TestProtocolOverBareTCP drops the injector entirely: the reliable
// protocol over nothing but sockets. Exactness and termination must hold
// with zero declared deaths.
func TestProtocolOverBareTCP(t *testing.T) {
	lower, err := nettrans.New(nettrans.Config{
		Listen:   "127.0.0.1:0",
		Local:    []int{-1, 0, 1, 2},
		Loopback: true,
		Codec:    WireCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.IIDNor(2, 9, 0.5, 11)
	want := tr.Evaluate()
	m := runChaos(t, tr, Options{
		Processors: 3,
		Net:        lower,
		Protocol:   chaosProtocol(),
	}, time.Minute)
	if m.Value != want {
		t.Fatalf("root value %d over bare TCP, want %d", m.Value, want)
	}
	if m.Protocol.Deaths != 0 {
		t.Fatalf("declared %d deaths on a healthy TCP loopback", m.Protocol.Deaths)
	}
}
