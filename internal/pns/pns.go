// Package pns implements proof-number search over engine.Position games:
// the sequential PN algorithm (Allis), the two-level PN² variant, and a
// parallel solver that distributes most-proving-node descents across the
// resident workers of an engine.Pool using virtual proof numbers.
//
// Proof-number search answers a binary question — does the side to move
// win? — by growing the tree toward the node that is cheapest to decide.
// The solver uses the φ-δ (negamax) formulation: every node carries
// φ = proof number of "the side to move here wins" and δ = its disproof
// number. An internal node satisfies φ = min over children of δ(c) and
// δ = Σ φ(c); a terminal where the mover wins has (φ, δ) = (0, ∞), a
// terminal where the mover loses (∞, 0). The root is Proven once its φ
// reaches 0 and Disproven once its δ does.
//
// Parallelism follows the virtual proof-number scheme: a descending
// worker increments a per-node virtual counter along its path, and child
// selection orders siblings by effective δ (real δ plus virtual count).
// Concurrent workers therefore diverge toward different most-proving
// nodes instead of piling onto one leaf, while every termination and
// verdict decision reads only the real numbers, so virtual inflation can
// never produce a wrong answer. With one worker the virtual counts are
// zero at every selection point (they are incremented only below the
// worker's own position and unwound after each descent), so the w=1
// parallel solver expands exactly the node sequence of sequential PN.
//
// Solved subtrees are shared through the engine's transposition table:
// proof/disproof numbers pack into the standard entry layout under the
// BoundPN flag (see engine.StorePN), so PN solvers, alpha-beta searches
// and the two-level remote table all trade work through one structure.
package pns

import (
	"context"
	"sync"
	"sync/atomic"

	"gametree/internal/engine"
	"gametree/internal/telemetry"
)

// Inf is the solver infinity for proof/disproof numbers.
const Inf = engine.PNInf

// infMax is the largest finite number: saturation point for δ sums.
const infMax = Inf - 1

// Verdict is the outcome of a solve.
type Verdict int

const (
	// Unknown means the solve stopped (budget, cancellation) before the
	// root was decided.
	Unknown Verdict = iota
	// Proven means the side to move at the root wins under perfect play.
	Proven
	// Disproven means the side to move at the root loses.
	Disproven
)

func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Disproven:
		return "disproven"
	default:
		return "unknown"
	}
}

// Options configures a Solver.
type Options struct {
	// Table is an optional shared transposition table. Child
	// initialization probes it and number updates store through it, so
	// concurrent solvers (and alpha-beta searches over the same table)
	// share solved subtrees. Nil disables sharing.
	Table *engine.Table

	// MaxNodes bounds the total number of expansions (0 = unlimited).
	// When the budget is exhausted the solve returns Unknown; the tree
	// is retained, so a later call resumes where it stopped.
	MaxNodes int64

	// PN2Budget enables PN² in SolveSequential: each expanded frontier
	// child is pre-searched by a nested bounded PN whose expansion
	// budget is the current first-level tree size divided by the child
	// count (at least PN2Budget). Zero disables the second level.
	PN2Budget int64

	// Telemetry is an optional shard for sequential solves. Parallel
	// solves use the pool's per-worker shards instead.
	Telemetry *telemetry.Shard
}

// Result is the outcome of one Solve call.
type Result struct {
	Verdict Verdict
	PN, DN  uint32 // root proof/disproof numbers (0/Inf when solved)
	Nodes   int64  // nodes traversed during descents
	Expands int64  // leaf expansions (including nested PN² expansions)
}

// Progress is a race-clean snapshot of a running (or stopped) solve,
// the unit streamed by the serve layer's /v1/solve progress frames.
type Progress struct {
	PN, DN        uint32 // current root numbers
	Nodes         int64
	Expands       int64
	FrontierDepth int64 // deepest most-proving node reached so far
}

// node is one tree node. pd packs φ (high 32 bits) and δ (low 32) into
// one word so readers never see a torn pair; virt is the virtual-number
// counter of in-flight descents through this node; mu serializes
// expansion and number recomputation.
type node struct {
	pd       atomic.Uint64
	virt     atomic.Int64
	mu       sync.Mutex
	pos      engine.Position
	hash     uint64
	hashed   bool
	children []*node
	expanded atomic.Bool
	depth    int32
}

func packPD(phi, delta uint32) uint64 { return uint64(phi)<<32 | uint64(delta) }
func unpackPD(pd uint64) (phi, delta uint32) {
	return uint32(pd >> 32), uint32(pd)
}

func (n *node) numbers() (phi, delta uint32) { return unpackPD(n.pd.Load()) }

func (n *node) solved() bool {
	phi, delta := n.numbers()
	return phi == 0 || delta == 0
}

// Solver holds the solve state for one root position. It is retained
// across calls: a budget- or deadline-stopped solve keeps its tree and
// a later Solve/SolveParallel call resumes from it (the serve layer's
// resumable partial responses rely on this).
type Solver struct {
	opt  Options
	root *node

	nodes    atomic.Int64
	expands  atomic.Int64
	updates  atomic.Int64
	frontier atomic.Int64 // deepest MPN reached (high-water)
}

// New builds a solver for pos. The position (and every successor) should
// implement engine.Hasher for transposition-table sharing; positions
// without hashes still solve, just without the table.
func New(pos engine.Position, opt Options) *Solver {
	s := &Solver{opt: opt}
	s.root = s.newNode(pos, 0)
	return s
}

// newNode allocates a frontier node with numbers seeded from the
// transposition table when available, else (1, 1).
func (s *Solver) newNode(pos engine.Position, depth int32) *node {
	n := &node{pos: pos, depth: depth}
	if h, ok := pos.(engine.Hasher); ok {
		n.hash = h.Hash()
		n.hashed = true
	}
	phi, delta := uint32(1), uint32(1)
	if n.hashed {
		if pn, dn, ok := s.opt.Table.ProbePN(n.hash); ok {
			phi, delta = pn, dn
		}
	}
	n.pd.Store(packPD(phi, delta))
	return n
}

// SetMaxNodes replaces the expansion budget before a resume — the serve
// layer re-arms a checked-out partial solver with the new request's
// budget. Not safe to call while a solve is running.
func (s *Solver) SetMaxNodes(n int64) { s.opt.MaxNodes = n }

// Progress returns a race-clean snapshot of the current state.
func (s *Solver) Progress() Progress {
	phi, delta := s.root.numbers()
	return Progress{
		PN:            phi,
		DN:            delta,
		Nodes:         s.nodes.Load(),
		Expands:       s.expands.Load(),
		FrontierDepth: s.frontier.Load(),
	}
}

// Result returns the current verdict and counters — the partial state
// when the solve was stopped, the final state once it is decided.
func (s *Solver) Result() Result {
	phi, delta := s.root.numbers()
	r := Result{
		PN:      phi,
		DN:      delta,
		Nodes:   s.nodes.Load(),
		Expands: s.expands.Load(),
	}
	switch {
	case phi == 0:
		r.Verdict = Proven
	case delta == 0:
		r.Verdict = Disproven
	}
	return r
}

// Solve runs sequential proof-number search (PN² when PN2Budget is set)
// until the root is decided, the MaxNodes budget is exhausted (Unknown),
// or ctx is cancelled (Unknown, engine.ErrCancelled). The calling
// goroutine does all the work.
func (s *Solver) Solve(ctx context.Context) (Result, error) {
	err := s.loop(ctx.Done(), s.opt.Telemetry, func() bool { return false })
	if err != nil && ctx.Err() == context.DeadlineExceeded {
		err = deadlineErr{}
	}
	return s.Result(), err
}

// deadlineErr matches the pooled cancellation contract: it is
// engine.ErrCancelled and wraps context.DeadlineExceeded.
type deadlineErr struct{}

func (deadlineErr) Error() string { return engine.ErrCancelled.Error() }
func (deadlineErr) Is(target error) bool {
	return target == engine.ErrCancelled || target == context.DeadlineExceeded
}

// SolveParallel runs the solve on pool's resident workers. Every worker
// executes the same descend-expand-update loop over the shared tree;
// virtual numbers steer them apart. The error contract follows
// Pool.Fanout: engine.ErrCancelled on cancellation (wrapping
// context.DeadlineExceeded on timeout), engine.ErrSearchPanic if a
// worker panicked. On error the solver retains its partial tree.
func (s *Solver) SolveParallel(ctx context.Context, pool *engine.Pool) (Result, error) {
	err := pool.Fanout(ctx, func(id int, tm *telemetry.Shard, stopped func() bool) {
		s.loop(nil, tm, stopped)
	})
	return s.Result(), err
}

// loop is the solver body: repeatedly descend to a most-proving node,
// expand it, and recompute ancestors, until the root is solved or a
// stop condition fires. done is an optional context-done channel (used
// by the sequential path; the pooled path passes its stop predicate
// instead). Safe to run concurrently from many goroutines.
func (s *Solver) loop(done <-chan struct{}, tm *telemetry.Shard, stopped func() bool) error {
	var path []*node
	for iter := 0; ; iter++ {
		if s.root.solved() || stopped() {
			return nil
		}
		if s.opt.MaxNodes > 0 && s.expands.Load() >= s.opt.MaxNodes {
			return nil
		}
		if done != nil && iter&15 == 0 {
			select {
			case <-done:
				return engine.ErrCancelled
			default:
			}
		}
		path = s.descend(path[:0], tm)
		mpn := path[len(path)-1]
		s.observeFrontier(int64(mpn.depth), tm)
		if !mpn.expanded.Load() && !mpn.solved() {
			s.expand(mpn, tm)
		}
		s.updatePath(path, tm)
	}
}

// descend walks from the root to a most-proving node: at each expanded
// node it selects the child with minimal effective δ (real δ plus the
// virtual count of in-flight descents), increments that child's virtual
// counter, and continues. The walk stops at a frontier node, a solved
// node (stale parent numbers can point at one; the caller's update pass
// repairs them), or a node whose children are all disproven. The root
// carries no virtual count — every worker starts there anyway.
func (s *Solver) descend(path []*node, tm *telemetry.Shard) []*node {
	n := s.root
	path = append(path, n)
	visited := int64(1)
	for n.expanded.Load() && !n.solved() && len(n.children) > 0 {
		best, bestEff := (*node)(nil), uint64(infMax)+1
		for _, c := range n.children {
			_, delta := c.numbers()
			if delta == Inf {
				continue
			}
			eff := uint64(delta) + uint64(c.virt.Load())
			if eff < bestEff {
				best, bestEff = c, eff
			}
		}
		if best == nil {
			break // every child disproven; update pass will fold this in
		}
		best.virt.Add(1)
		path = append(path, best)
		n = best
		visited++
	}
	if tm != nil {
		tm.PNNodes.Add(visited)
	}
	s.nodes.Add(visited)
	return path
}

// observeFrontier raises the frontier-depth high-water mark and samples
// the MPN depth histogram.
func (s *Solver) observeFrontier(depth int64, tm *telemetry.Shard) {
	for {
		cur := s.frontier.Load()
		if depth <= cur || s.frontier.CompareAndSwap(cur, depth) {
			break
		}
	}
	if tm != nil {
		tm.Hist[telemetry.HistPNMPNDepth].Observe(depth)
	}
}

// expand materializes a frontier node: terminals get their final
// numbers from Evaluate (mover wins → (0, ∞), mover loses → (∞, 0));
// interior nodes get children seeded from the transposition table or
// (1, 1). Under PN² each child is additionally pre-searched by a nested
// bounded sequential PN. The per-node lock makes concurrent expansion
// of one node idempotent: the loser of the race returns without work.
func (s *Solver) expand(n *node, tm *telemetry.Shard) {
	n.mu.Lock()
	if n.expanded.Load() {
		n.mu.Unlock()
		return
	}
	moves := n.pos.Moves()
	if len(moves) == 0 {
		if n.pos.Evaluate() > 0 {
			n.pd.Store(packPD(0, Inf))
		} else {
			n.pd.Store(packPD(Inf, 0))
		}
	} else {
		children := make([]*node, len(moves))
		for i, m := range moves {
			children[i] = s.newNode(m, n.depth+1)
		}
		n.children = children
	}
	n.expanded.Store(true)
	n.mu.Unlock()
	if tm != nil {
		tm.PNExpands.Add(1)
	}
	s.expands.Add(1)
	s.storePN(n)
	if s.opt.PN2Budget > 0 && len(n.children) > 0 {
		s.preSearch(n, tm)
	}
}

// preSearch is the PN² second level: each fresh child is probed by a
// nested bounded sequential PN over the shared table, and its first-
// level numbers are seeded from the nested root. The budget grows with
// the first-level tree, so early expansions are cheap and deep critical
// lines get real lookahead. Nested expansions count toward this
// solver's totals (and its MaxNodes budget) — PN² trades more work per
// expansion for a smaller first-level tree, and the accounting must
// show that trade honestly.
func (s *Solver) preSearch(n *node, tm *telemetry.Shard) {
	budget := s.expands.Load() / int64(len(n.children))
	if budget < s.opt.PN2Budget {
		budget = s.opt.PN2Budget
	}
	for _, c := range n.children {
		if c.solved() {
			continue
		}
		nested := New(c.pos, Options{Table: s.opt.Table, MaxNodes: budget})
		nested.loop(nil, tm, func() bool { return false })
		s.nodes.Add(nested.nodes.Load())
		s.expands.Add(nested.expands.Load())
		s.updates.Add(nested.updates.Load())
		phi, delta := nested.root.numbers()
		c.pd.Store(packPD(phi, delta))
		if phi == 0 || delta == 0 {
			s.storePN(c)
		}
	}
}

// updatePath recomputes proof/disproof numbers bottom-up along a
// descent path and unwinds the virtual counters the descent planted.
// Each node is recomputed under its own lock from atomic child
// snapshots; locks never nest. Concurrent updates of one node can
// interleave, but the worker that changed a child always recomputes the
// parent afterwards (the parent is on its path), so the final write to
// any node folds in the freshest child values — stale intermediate
// states are transient, never sticky.
func (s *Solver) updatePath(path []*node, tm *telemetry.Shard) {
	updated := int64(0)
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if i > 0 {
			// Unwind this descent's virtual count planted by descend
			// (the root is never virtually counted).
			n.virt.Add(-1)
		}
		if !n.expanded.Load() || len(n.children) == 0 {
			continue // frontier or terminal: numbers already final
		}
		n.mu.Lock()
		phi, delta := recompute(n)
		old := n.pd.Load()
		changed := old != packPD(phi, delta)
		if changed {
			n.pd.Store(packPD(phi, delta))
		}
		n.mu.Unlock()
		if changed {
			updated++
			s.storePN(n)
		}
	}
	if updated > 0 {
		if tm != nil {
			tm.PNUpdates.Add(updated)
		}
		s.updates.Add(updated)
	}
}

// recompute derives a node's (φ, δ) from its children's current
// numbers: φ = min δ(c), δ = Σ φ(c) saturating below infinity.
func recompute(n *node) (phi, delta uint32) {
	phi = Inf
	var sum uint64
	for _, c := range n.children {
		cphi, cdelta := c.numbers()
		if cdelta < phi {
			phi = cdelta
		}
		if cphi == Inf {
			sum = uint64(Inf)
		} else if sum < uint64(Inf) {
			sum += uint64(cphi)
			if sum > uint64(infMax) {
				sum = uint64(infMax)
			}
		}
	}
	return phi, uint32(sum)
}

// storePN shares a node's current numbers through the transposition
// table (solved entries travel to the remote tier; unsolved ones stay
// local hints — see engine.StorePN).
func (s *Solver) storePN(n *node) {
	if n.hashed {
		phi, delta := n.numbers()
		s.opt.Table.StorePN(n.hash, phi, delta)
	}
}
