package pns

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"gametree/internal/engine"
	"gametree/internal/games"
	"gametree/internal/tree"
)

// randomNim returns a Nim position small enough to solve quickly but
// large enough to need a real tree.
func randomNim(rng *rand.Rand) games.Nim {
	heaps := make([]int, 2+rng.Intn(3))
	for i := range heaps {
		heaps[i] = 1 + rng.Intn(6)
	}
	return games.NewNim(heaps...)
}

// randomKayles returns a Kayles position with a few short rows.
func randomKayles(rng *rand.Rand) games.Kayles {
	rows := make([]int, 1+rng.Intn(3))
	for i := range rows {
		rows[i] = 1 + rng.Intn(6)
	}
	return games.NewKayles(rows...)
}

func verdictWord(win bool) Verdict {
	if win {
		return Proven
	}
	return Disproven
}

// TestSolveMatchesSpragueGrundy checks the pooled parallel solver
// against the closed-form oracles on ≥50 random instances: Nim's xor
// rule and Kayles' periodic Grundy values. All instances share one
// table and one pool, so the test also exercises TT cross-seeding
// between solves.
func TestSolveMatchesSpragueGrundy(t *testing.T) {
	table := engine.NewTable(1 << 14)
	pool := engine.NewPool(4, table, nil)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		pos := randomNim(rng)
		want := verdictWord(pos.XorValue() != 0)
		s := New(pos, Options{Table: table})
		res, err := s.SolveParallel(context.Background(), pool)
		if err != nil {
			t.Fatalf("nim %v: %v", pos, err)
		}
		if res.Verdict != want {
			t.Fatalf("nim %v: verdict %v, xor oracle says %v", pos, res.Verdict, want)
		}
	}
	for i := 0; i < 30; i++ {
		pos := randomKayles(rng)
		want := verdictWord(pos.GrundyValue() != 0)
		s := New(pos, Options{Table: table})
		res, err := s.SolveParallel(context.Background(), pool)
		if err != nil {
			t.Fatalf("kayles %v: %v", pos, err)
		}
		if res.Verdict != want {
			t.Fatalf("kayles %v: verdict %v, Grundy oracle says %v", pos, res.Verdict, want)
		}
	}
}

// TestSequentialMatchesOracle covers the sequential baseline and PN²
// on the same oracles.
func TestSequentialMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	table := engine.NewTable(1 << 14)
	for i := 0; i < 20; i++ {
		pos := randomNim(rng)
		want := verdictWord(pos.XorValue() != 0)
		for _, pn2 := range []int64{0, 8} {
			s := New(pos, Options{PN2Budget: pn2, Table: table})
			res, err := s.Solve(context.Background())
			if err != nil {
				t.Fatalf("nim %v pn2=%d: %v", pos, pn2, err)
			}
			if res.Verdict != want {
				t.Fatalf("nim %v pn2=%d: verdict %v, want %v", pos, pn2, res.Verdict, want)
			}
		}
	}
}

// TestW1NodeParity pins the virtual-number discipline: with one worker
// the virtual counts are zero at every selection point, so the pooled
// solver must expand exactly the node sequence — and count — of
// sequential PN. Tables are nil so no cross-seeding perturbs either run.
func TestW1NodeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := engine.NewPool(1, nil, nil)
	defer pool.Close()
	for i := 0; i < 8; i++ {
		heaps := make([]int, 2+rng.Intn(2))
		for j := range heaps {
			heaps[j] = 1 + rng.Intn(4)
		}
		pos := games.NewNim(heaps...)
		seq := New(pos, Options{})
		seqRes, err := seq.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		par := New(pos, Options{})
		parRes, err := par.SolveParallel(context.Background(), pool)
		if err != nil {
			t.Fatal(err)
		}
		if seqRes.Expands != parRes.Expands || seqRes.Nodes != parRes.Nodes {
			t.Fatalf("nim %v: sequential (expands=%d nodes=%d) != w=1 pooled (expands=%d nodes=%d)",
				pos, seqRes.Expands, seqRes.Nodes, parRes.Expands, parRes.Nodes)
		}
		if seqRes.Verdict != parRes.Verdict {
			t.Fatalf("nim %v: verdicts diverge: %v vs %v", pos, seqRes.Verdict, parRes.Verdict)
		}
	}
}

// TestNORTree solves Horn-KB proof trees and random NOR trees through
// the NORTree adapter: Proven must coincide with the NOR root
// evaluating to 0.
func TestNORTree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := tree.IIDNor(4, 3, 0.35, seed)
		pos := games.NewNORTree(tr, uint64(seed)*0x9e3779b9)
		want := verdictWord(tr.Evaluate() == 0)
		s := New(pos, Options{})
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != want {
			t.Fatalf("seed %d: verdict %v, NOR root is %d", seed, res.Verdict, tr.Evaluate())
		}
	}
}

// TestMaxNodesResume stops a solve on a tiny expansion budget, checks
// the partial state, then resumes the same solver to completion.
func TestMaxNodesResume(t *testing.T) {
	pos := games.NewNim(3, 5, 7)
	s := New(pos, Options{MaxNodes: 5})
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("budget 5 solved nim[3 5 7] already: %+v", res)
	}
	if res.Expands < 5 {
		t.Fatalf("stopped after %d expands, budget was 5", res.Expands)
	}
	prog := s.Progress()
	if prog.PN == 0 || prog.DN == 0 {
		t.Fatalf("partial progress claims a solved root: %+v", prog)
	}
	s.opt.MaxNodes = 0
	res2, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != verdictWord(pos.XorValue() != 0) {
		t.Fatalf("resumed verdict %v", res2.Verdict)
	}
	if res2.Expands <= res.Expands {
		t.Fatalf("resume did not continue counting: %d then %d", res.Expands, res2.Expands)
	}
}

// TestDeadline checks the cancellation contract on both paths: an
// expired context yields engine.ErrCancelled wrapping
// context.DeadlineExceeded and an Unknown partial result, and the
// solver stays resumable afterwards.
func TestDeadline(t *testing.T) {
	pool := engine.NewPool(2, nil, nil)
	defer pool.Close()
	pos := games.NewNim(9, 10, 11, 12)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	s := New(pos, Options{})
	res, err := s.SolveParallel(ctx, pool)
	if !errors.Is(err, engine.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pooled deadline error %v", err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("expired deadline produced verdict %v", res.Verdict)
	}

	s2 := New(pos, Options{})
	_, err = s2.Solve(ctx)
	if !errors.Is(err, engine.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sequential deadline error %v", err)
	}

	// The deadline-stopped solver resumes on a healthy context (budget-
	// bounded: the position is deliberately too big to finish here).
	s.opt.MaxNodes = 2000
	if _, err := s.SolveParallel(context.Background(), pool); err != nil {
		t.Fatal(err)
	}
}

// TestTTSharing solves the same position twice over one table; the
// second solver must start from the stored solved root and finish
// without expanding anything.
func TestTTSharing(t *testing.T) {
	table := engine.NewTable(1 << 12)
	pos := games.NewNim(4, 5)
	first := New(pos, Options{Table: table})
	if _, err := first.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := New(pos, Options{Table: table})
	res, err := second.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != verdictWord(pos.XorValue() != 0) {
		t.Fatalf("warm verdict %v", res.Verdict)
	}
	if res.Expands != 0 {
		t.Fatalf("warm solve expanded %d nodes; the table held the solved root", res.Expands)
	}
}

// TestVerdictString pins the wire words used by /v1/solve.
func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Unknown: "unknown", Proven: "proven", Disproven: "disproven"} {
		if v.String() != want {
			t.Fatalf("%d.String() = %q", v, v.String())
		}
	}
}
