// Package randomized implements the randomized algorithms of Section 6 of
// Karp & Zhang (1989): R-Sequential SOLVE, R-Parallel SOLVE, R-Sequential
// alpha-beta and R-Parallel alpha-beta, all in the node-expansion model.
//
// Conceptually each R-algorithm is its deterministic counterpart run on a
// randomly permuted input tree (children of every node independently and
// uniformly permuted). The package provides both that faithful "permute
// then run" form — used for the parallel algorithms, whose step-synchronous
// schedule needs the full permuted tree — and, for the sequential
// algorithms, the practical lazy form in which "randomizations are
// performed only to the extent necessary to determine the steps of the
// algorithm" (a random depth-first search).
package randomized

import (
	"math/rand"

	"gametree/internal/expand"
	"gametree/internal/tree"
)

// RSequentialSolve runs R-Sequential SOLVE on a NOR tree: expand the root,
// then repeatedly evaluate a random unexpanded child recursively until the
// value of the node is determined. Returns the root value and the number
// of node expansions (the randomized complexity measure of Section 6).
// The lazy recursion is exactly equivalent in distribution to
// N-Sequential SOLVE on a permuted tree.
func RSequentialSolve(t *tree.Tree, seed int64) (int32, int64) {
	if t.Kind != tree.NOR {
		panic("randomized: RSequentialSolve requires a NOR tree")
	}
	rng := rand.New(rand.NewSource(seed))
	var work int64
	var solve func(v tree.NodeID) int32
	solve = func(v tree.NodeID) int32 {
		work++ // expand v
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			return nd.Value
		}
		for _, i := range rng.Perm(int(nd.NumChildren)) {
			if solve(nd.FirstChild+tree.NodeID(i)) == 1 {
				return 0
			}
		}
		return 1
	}
	return solve(t.Root()), work
}

// RSequentialAlphaBeta runs the randomized sequential alpha-beta of
// Section 6: a depth-first alpha-beta search that visits the children of
// every node in random order. Returns the root value and the number of
// node expansions.
func RSequentialAlphaBeta(t *tree.Tree, seed int64) (int32, int64) {
	if t.Kind != tree.MinMax {
		panic("randomized: RSequentialAlphaBeta requires a MinMax tree")
	}
	rng := rand.New(rand.NewSource(seed))
	var work int64
	var search func(v tree.NodeID, alpha, beta int64) int64
	search = func(v tree.NodeID, alpha, beta int64) int64 {
		work++ // expand v
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			return int64(nd.Value)
		}
		if t.IsMaxNode(v) {
			best := int64(-1 << 40)
			for _, i := range rng.Perm(int(nd.NumChildren)) {
				x := search(nd.FirstChild+tree.NodeID(i), alpha, beta)
				if x > best {
					best = x
				}
				if best > alpha {
					alpha = best
				}
				if alpha >= beta {
					break
				}
			}
			return best
		}
		best := int64(1 << 40)
		for _, i := range rng.Perm(int(nd.NumChildren)) {
			x := search(nd.FirstChild+tree.NodeID(i), alpha, beta)
			if x < best {
				best = x
			}
			if best < beta {
				beta = best
			}
			if alpha >= beta {
				break
			}
		}
		return best
	}
	return int32(search(t.Root(), -1<<40, 1<<40)), work
}

// RParallelSolve runs R-Parallel SOLVE of width w: N-Parallel SOLVE on the
// randomly permuted input tree.
func RParallelSolve(t *tree.Tree, w int, seed int64, opt expand.Options) (expand.Metrics, error) {
	return expand.NParallelSolve(tree.Permute(t, seed), w, opt)
}

// RParallelAlphaBeta runs R-Parallel alpha-beta of width w: N-Parallel
// alpha-beta on the randomly permuted input tree.
func RParallelAlphaBeta(t *tree.Tree, w int, seed int64, opt expand.Options) (expand.Metrics, error) {
	return expand.NParallelAlphaBeta(tree.Permute(t, seed), w, opt)
}

// RSequentialSolveViaPermute is the "permute then run" form of
// R-Sequential SOLVE. It exists to cross-check the lazy recursion: the two
// have identical work distributions.
func RSequentialSolveViaPermute(t *tree.Tree, seed int64, opt expand.Options) (expand.Metrics, error) {
	return expand.NSequentialSolve(tree.Permute(t, seed), opt)
}

// ExpectedWork estimates E[work] of a randomized run by averaging over
// trials seeds derived from baseSeed. run must return the work of one run.
func ExpectedWork(trials int, baseSeed int64, run func(seed int64) int64) float64 {
	if trials <= 0 {
		panic("randomized: trials must be positive")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(run(baseSeed + int64(i)*2654435761))
	}
	return sum / float64(trials)
}

// ExpectedSteps estimates E[steps] of a randomized parallel run.
func ExpectedSteps(trials int, baseSeed int64, run func(seed int64) (expand.Metrics, error)) (float64, error) {
	if trials <= 0 {
		panic("randomized: trials must be positive")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		m, err := run(baseSeed + int64(i)*2654435761)
		if err != nil {
			return 0, err
		}
		sum += float64(m.Steps)
	}
	return sum / float64(trials), nil
}

// RScout is the randomized SCOUT variant whose optimality among
// randomized algorithms for uniform MIN/MAX trees is the subject of the
// paper's closing remark in Section 6 (proved by Saks and Wigderson for
// the Boolean case): SCOUT with the children of every node visited in
// random order, in both the test and the evaluation phases. Returns the
// root value and the number of leaves evaluated.
func RScout(t *tree.Tree, seed int64) (int32, int64) {
	if t.Kind != tree.MinMax {
		panic("randomized: RScout requires a MinMax tree")
	}
	rng := rand.New(rand.NewSource(seed))
	var leaves int64

	var test func(v tree.NodeID, bound int64, gt bool) bool
	var eval func(v tree.NodeID) int64

	test = func(v tree.NodeID, bound int64, gt bool) bool {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			if gt {
				return int64(nd.Value) > bound
			}
			return int64(nd.Value) < bound
		}
		isMax := t.IsMaxNode(v)
		for _, i := range rng.Perm(int(nd.NumChildren)) {
			c := nd.FirstChild + tree.NodeID(i)
			if isMax {
				if test(c, bound, gt) {
					if gt {
						return true
					}
				} else if !gt {
					return false
				}
			} else {
				if test(c, bound, gt) {
					if !gt {
						return true
					}
				} else if gt {
					return false
				}
			}
		}
		if isMax {
			return !gt
		}
		return gt
	}

	eval = func(v tree.NodeID) int64 {
		nd := t.Node(v)
		if nd.NumChildren == 0 {
			leaves++
			return int64(nd.Value)
		}
		order := rng.Perm(int(nd.NumChildren))
		best := eval(nd.FirstChild + tree.NodeID(order[0]))
		for _, i := range order[1:] {
			c := nd.FirstChild + tree.NodeID(i)
			if t.IsMaxNode(v) {
				if test(c, best, true) {
					best = eval(c)
				}
			} else {
				if test(c, best, false) {
					best = eval(c)
				}
			}
		}
		return best
	}
	return int32(eval(t.Root())), leaves
}
