package randomized

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gametree/internal/expand"
	"gametree/internal/tree"
)

// The value returned must equal the true value for every seed.
func TestValueIndependentOfSeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nor := tree.IIDNor(2+rng.Intn(2), rng.Intn(5), 0.5, rng.Int63())
		wantN := nor.Evaluate()
		if v, _ := RSequentialSolve(nor, seed); v != wantN {
			return false
		}
		mp, err := RParallelSolve(nor, 1, seed, expand.Options{})
		if err != nil || mp.Value != wantN {
			return false
		}
		mm := tree.IIDMinMax(2+rng.Intn(2), rng.Intn(4), -50, 50, rng.Int63())
		wantM := mm.Evaluate()
		if v, _ := RSequentialAlphaBeta(mm, seed); v != wantM {
			return false
		}
		mp2, err := RParallelAlphaBeta(mm, 1, seed, expand.Options{})
		return err == nil && mp2.Value == wantM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The lazy recursion and the permute-then-run form must agree in expected
// work (they are identical in distribution). Deterministic given the
// seeds, so no flakiness.
func TestLazyEqualsPermuteInExpectation(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 6, 1)
	const trials = 400
	lazy := ExpectedWork(trials, 1000, func(seed int64) int64 {
		_, w := RSequentialSolve(tr, seed)
		return w
	})
	perm := ExpectedWork(trials, 5000, func(seed int64) int64 {
		m, err := RSequentialSolveViaPermute(tr, seed, expand.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m.Work
	})
	ratio := lazy / perm
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("lazy %.1f vs permute %.1f expected work (ratio %.3f)", lazy, perm, ratio)
	}
}

// Randomization must beat the deterministic worst case: on the worst-case
// instance, E[work] of R-Sequential SOLVE is strictly below evaluating
// everything (Saks–Wigderson: the randomized complexity of uniform
// AND/OR trees is o(number of leaves)).
func TestRandomizationBeatsWorstCase(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 8, 1)
	full := int64(tr.Len())
	mean := ExpectedWork(200, 7, func(seed int64) int64 {
		_, w := RSequentialSolve(tr, seed)
		return w
	})
	if mean >= float64(full) {
		t.Errorf("mean randomized work %.1f not below full expansion %d", mean, full)
	}
	// It should in fact be well below: at most 95% of full for n=8.
	if mean > 0.95*float64(full) {
		t.Errorf("mean randomized work %.1f suspiciously close to full %d", mean, full)
	}
}

// Theorem 5's shape: R-Parallel SOLVE of width 1 needs fewer expected
// steps than R-Sequential SOLVE.
func TestRParallelExpectedSpeedup(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 8, 1)
	const trials = 50
	seqMean := ExpectedWork(trials, 11, func(seed int64) int64 {
		_, w := RSequentialSolve(tr, seed)
		return w
	})
	parMean, err := ExpectedSteps(trials, 11, func(seed int64) (expand.Metrics, error) {
		return RParallelSolve(tr, 1, seed, expand.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	speedup := seqMean / parMean
	if speedup < 1.5 {
		t.Errorf("expected speedup %.2f too small (seq %.1f, par %.1f)", speedup, seqMean, parMean)
	}
}

func TestRAlphaBetaExpectedSpeedup(t *testing.T) {
	tr := tree.WorstOrderedMinMax(2, 7, 3)
	const trials = 40
	seqMean := ExpectedWork(trials, 13, func(seed int64) int64 {
		_, w := RSequentialAlphaBeta(tr, seed)
		return w
	})
	parMean, err := ExpectedSteps(trials, 13, func(seed int64) (expand.Metrics, error) {
		return RParallelAlphaBeta(tr, 1, seed, expand.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if speedup := seqMean / parMean; speedup < 1.5 {
		t.Errorf("expected alpha-beta speedup %.2f too small", speedup)
	}
}

func TestExpectedHelpersPanic(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { ExpectedWork(0, 1, func(int64) int64 { return 0 }) })
	mustPanic(func() {
		_, _ = ExpectedSteps(0, 1, func(int64) (expand.Metrics, error) { return expand.Metrics{}, nil })
	})
	nor := tree.IIDNor(2, 2, 0.5, 1)
	mm := tree.IIDMinMax(2, 2, 0, 5, 1)
	mustPanic(func() { RSequentialSolve(mm, 1) })
	mustPanic(func() { RSequentialAlphaBeta(nor, 1) })
}

func TestRScoutCorrectForEverySeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.IIDMinMax(2+rng.Intn(3), rng.Intn(5), -100, 100, rng.Int63())
		v, leaves := RScout(tr, seed)
		// leaves counts evaluations, not distinct leaves: SCOUT's failed
		// tests re-search, so it can exceed NumLeaves (bounded by a
		// constant factor).
		return v == tr.Evaluate() && leaves >= 1 && leaves <= 4*int64(tr.NumLeaves())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On worst-ordered instances the randomized SCOUT must beat deterministic
// alpha-beta in expectation (randomization defeats the adversarial order).
func TestRScoutBeatsWorstOrdering(t *testing.T) {
	tr := tree.WorstOrderedMinMax(2, 8, 5)
	det := float64(256) // all leaves: worst ordering defeats alpha-beta badly
	mean := ExpectedWork(100, 31, func(seed int64) int64 {
		_, l := RScout(tr, seed)
		return l
	})
	if mean >= det {
		t.Errorf("RScout mean %.1f not below full leaf count %v", mean, det)
	}
	if mean > 0.95*det {
		t.Errorf("RScout mean %.1f suspiciously close to full scan", mean)
	}
}

func TestRScoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RScout(tree.IIDNor(2, 2, 0.5, 1), 1)
}
