package reqtrace

// Merging scraped per-process trace dumps into one timeline. The
// coordinator's dump carries per-peer clock offsets estimated from the
// shard protocol's hello→ping echo (see DESIGN.md); Merge rewrites
// every non-coordinator span onto the coordinator's clock with them,
// falling back to the scrape-time NowNs difference when a peer has no
// echo estimate (a coarse bound that still lines the lanes up to within
// the scrape spread). The output feeds two consumers: WriteChromeTrace
// (a trace_event JSON with one lane per process) and Breakdown (the
// per-request, per-stage latency table).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Merge aligns the spans of the scraped dumps onto one clock: the
// process that published offsets (the coordinator) is the reference;
// every other process's spans are shifted by -offset so that equal
// timestamps mean equal instants. Spans come back sorted by aligned
// start time. The returned base is the smallest aligned start (the
// Chrome trace origin), 0 when there are no spans.
func Merge(dumps []Dump) (spans []Span, base int64) {
	var ref *Dump
	for i := range dumps {
		if len(dumps[i].Offsets) > 0 {
			ref = &dumps[i]
			break
		}
	}
	// Per-proc shift: aligned = raw - shift.
	shift := map[int]int64{}
	for i := range dumps {
		d := &dumps[i]
		if ref == nil || d.Proc == ref.Proc {
			continue
		}
		if o, ok := ref.Offsets[strconv.Itoa(d.Proc)]; ok {
			shift[d.Proc] = o.OffsetNs
		} else if d.NowNs != 0 && ref.NowNs != 0 {
			shift[d.Proc] = d.NowNs - ref.NowNs // scrape-spread fallback
		}
	}
	for _, d := range dumps {
		for _, s := range d.Spans {
			s.StartNs -= shift[s.Proc]
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })
	if len(spans) > 0 {
		base = spans[0].StartNs
	}
	return spans, base
}

// MergeRoles collects each scraped process's self-reported role, for
// labelling the merged trace's lanes.
func MergeRoles(dumps []Dump) map[int]string {
	roles := make(map[int]string, len(dumps))
	for _, d := range dumps {
		roles[d.Proc] = d.Role
	}
	return roles
}

// WriteChromeTrace emits merged spans in the Trace Event Format: one
// process lane per ring process (pid = proc, named via process_name
// metadata), tasks on their own rows (tid = task id) so concurrent RPC
// and compute spans do not overdraw each other, and the trace ID in
// every event's args for Perfetto's flow queries. Timestamps are
// microseconds relative to base. roles labels each lane (see
// MergeRoles); missing entries fall back to the ring convention
// (proc 0 coordinates). Deterministic for a given span slice.
func WriteChromeTrace(w io.Writer, spans []Span, base int64, roles map[int]string) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}
	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	}
	seen := map[int]bool{}
	for _, s := range spans {
		if seen[s.Proc] {
			continue
		}
		seen[s.Proc] = true
		role := roles[s.Proc]
		if role == "" {
			role = "worker"
			if s.Proc == 0 {
				role = "coordinator"
			}
		}
		if err := emit(meta{Name: "process_name", Ph: "M", Pid: s.Proc,
			Args: map[string]any{"name": fmt.Sprintf("%s (proc %d)", role, s.Proc)}}); err != nil {
			return err
		}
	}
	type event struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  uint64         `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args,omitempty"`
	}
	for _, s := range spans {
		args := map[string]any{"trace": s.Trace}
		if s.Task != 0 {
			args["task"] = s.Task
		}
		if s.Worker != 0 {
			args["worker"] = s.Worker
		}
		if s.Note != "" {
			args["note"] = s.Note
		}
		if err := emit(event{
			Name: s.Stage, Cat: "reqtrace", Ph: "X",
			Pid: s.Proc, Tid: s.Task,
			Ts: float64(s.StartNs-base) / 1e3, Dur: float64(s.DurNs) / 1e3,
			Args: args,
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// StageTotal is one stage's aggregate inside a request.
type StageTotal struct {
	Stage string
	Count int
	SumNs int64
	Procs map[int]bool // processes that contributed spans of this stage
}

// RequestBreakdown is the per-stage latency account of one trace.
type RequestBreakdown struct {
	Trace   string
	Stages  []StageTotal // canonical stage order, only populated stages
	TotalNs int64        // the request span's duration (0 when no serve span was captured)
	Procs   []int        // distinct processes that contributed, ascending
}

// Breakdown groups merged spans by trace ID and sums durations per
// stage. Traces come back ordered by the earliest span start, so a
// scrape during a burst lists requests in arrival order.
func Breakdown(spans []Span) []RequestBreakdown {
	type acc struct {
		first  int64
		total  int64
		stages map[string]*StageTotal
		procs  map[int]bool
	}
	byTrace := map[string]*acc{}
	var order []string
	for _, s := range spans {
		a := byTrace[s.Trace]
		if a == nil {
			a = &acc{first: s.StartNs, stages: map[string]*StageTotal{}, procs: map[int]bool{}}
			byTrace[s.Trace] = a
			order = append(order, s.Trace)
		}
		if s.StartNs < a.first {
			a.first = s.StartNs
		}
		a.procs[s.Proc] = true
		st := a.stages[s.Stage]
		if st == nil {
			st = &StageTotal{Stage: s.Stage, Procs: map[int]bool{}}
			a.stages[s.Stage] = st
		}
		st.Count++
		st.SumNs += s.DurNs
		st.Procs[s.Proc] = true
		if s.Stage == StageRequest && s.DurNs > a.total {
			a.total = s.DurNs
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return byTrace[order[i]].first < byTrace[order[j]].first })
	out := make([]RequestBreakdown, 0, len(order))
	for _, tr := range order {
		a := byTrace[tr]
		rb := RequestBreakdown{Trace: tr, TotalNs: a.total}
		for _, stage := range stageNames {
			if st, ok := a.stages[stage]; ok {
				rb.Stages = append(rb.Stages, *st)
			}
		}
		for p := range a.procs {
			rb.Procs = append(rb.Procs, p)
		}
		sort.Ints(rb.Procs)
		out = append(out, rb)
	}
	return out
}

// WriteBreakdown renders breakdowns as an aligned text table, one block
// per trace: stage, span count, summed duration, and the processes the
// stage ran on. Durations print in milliseconds.
func WriteBreakdown(w io.Writer, breakdowns []RequestBreakdown) error {
	for i, rb := range breakdowns {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "trace %s  procs=%v  total=%.3fms\n",
			rb.Trace, rb.Procs, float64(rb.TotalNs)/1e6); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-14s %6s %12s  %s\n", "stage", "spans", "sum_ms", "procs"); err != nil {
			return err
		}
		for _, st := range rb.Stages {
			procs := make([]int, 0, len(st.Procs))
			for p := range st.Procs {
				procs = append(procs, p)
			}
			sort.Ints(procs)
			if _, err := fmt.Fprintf(w, "  %-14s %6d %12.3f  %v\n",
				st.Stage, st.Count, float64(st.SumNs)/1e6, procs); err != nil {
				return err
			}
		}
	}
	return nil
}
