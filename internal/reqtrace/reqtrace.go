// Package reqtrace is the request-scoped distributed tracing layer of
// the serving tiers. Where internal/telemetry's spans describe one
// process's scheduler (split points on worker tracks, recorder-epoch
// monotonic time), reqtrace follows one *request* across the shard
// ring: gtserve mints a trace ID per sampled request (or adopts an
// inbound X-GT-Trace header), the ID rides the serve context into the
// shard coordinator, crosses the wire in every task envelope, survives
// reissue to a ring successor, and stamps the worker's compute,
// done-cache and remote-TT activity — so the question "where did this
// request's 80ms go?" has a per-stage answer instead of a histogram
// shrug.
//
// Design points, in the spirit of the PR 2 telemetry layer:
//
//   - A nil *Tracer is valid "tracing off"; every method no-ops. An
//     empty trace ID means "this request is unsampled" and every
//     recording site guards on it first, so the unsampled hot path is
//     one string comparison and zero allocations (asserted by test).
//   - Spans carry wall-clock UnixNano timestamps, not a process-local
//     monotonic epoch, because they must be merged across processes.
//     Cross-process clock skew is corrected at merge time from the
//     coordinator's ping-echo offset estimates (see Offset), never at
//     record time — raw local timestamps stay honest in the buffer.
//   - The span buffer is a bounded overwrite-oldest ring: a resident
//     server traced for hours keeps the most recent spans (the ones a
//     scrape during an incident wants) and counts what it overwrote.
//   - Per-stage durations also feed fixed log₂ histograms published as
//     the gametree_shard_stage_ns{stage=...} Prometheus family, so the
//     stage decomposition survives without any trace scrape at all.
//
// The HTTP surface is GET /debug/gttrace: one JSON Dump of the local
// buffer plus (on the coordinator) the per-peer clock offsets. The
// gtobs command scrapes every ring process, aligns clocks, and merges
// the dumps into one Chrome/Perfetto trace with per-process lanes.
package reqtrace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/metrics"
)

// Stage names. Stable strings: they are the JSON schema, the Chrome
// trace event names and the Prometheus stage label values.
const (
	StageRequest     = "request"      // serve: whole HTTP request, admission to response
	StageQueue       = "queue"        // serve: leader's wait for a pool token; worker: task queue residence
	StageSearch      = "search"       // serve: leader's backend/pool search, start to settle
	StageExpand      = "expand"       // coordinator: root expansion to the task frontier
	StageRoute       = "route"        // coordinator: consistent-hash routing + dispatch of the frontier
	StageRPC         = "rpc"          // coordinator: one task in flight, first dispatch to result
	StageFold        = "fold"         // coordinator: negamax fold of the completed frontier
	StageCompute     = "compute"      // worker: one task's pool search
	StageDoneCache   = "done-cache"   // worker: a reissued duplicate re-answered from the result cache
	StageRemoteProbe = "remote-probe" // worker: remote TT probe, send to reply
	StageReissue     = "reissue"      // coordinator: a stale task re-sent to a ring successor
	StageRejoin      = "rejoin"       // coordinator: a worker admitted back; DurNs is the outage when one preceded
	StageLocal       = "local"        // coordinator: a leaf computed on the fallback pool (degraded mode)
)

// stageIndex maps a stage name onto its histogram slot. Unknown stages
// (future additions crossing version skew) fall out at -1 and are
// recorded as spans but not histogrammed.
var stageNames = [...]string{
	StageRequest, StageQueue, StageSearch, StageExpand, StageRoute,
	StageRPC, StageFold, StageCompute, StageDoneCache, StageRemoteProbe,
	StageReissue, StageRejoin, StageLocal,
}

func stageIndex(stage string) int {
	for i, s := range stageNames {
		if s == stage {
			return i
		}
	}
	return -1
}

// Span is one stage of one request on one process. Times are wall-clock
// UnixNano on the recording process; merge-time offset correction maps
// them onto the coordinator's clock.
type Span struct {
	Trace   string `json:"trace"`
	Proc    int    `json:"proc"`
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Task    uint64 `json:"task,omitempty"`   // shard task id (rpc/compute/done-cache/reissue)
	Worker  int    `json:"worker,omitempty"` // peer proc involved (rpc/reissue destination)
	Note    string `json:"note,omitempty"`   // outcome detail: status, cache verdict, error
}

// Offset is one peer's estimated clock offset relative to the observing
// process (conventionally the coordinator): peer_wall_ns ≈ local_wall_ns
// + OffsetNs at the same instant. RTTNs is the round trip the estimate
// came from — the lower it is, the tighter the bound on the error
// (at most RTT/2, from the usual NTP-style symmetric-delay argument).
type Offset struct {
	OffsetNs int64 `json:"offset_ns"`
	RTTNs    int64 `json:"rtt_ns"`
}

// Dump is the /debug/gttrace response: one process's span buffer plus
// identity and (when the process estimates them) per-peer clock offsets
// keyed by decimal proc id.
type Dump struct {
	Proc    int               `json:"proc"`
	Role    string            `json:"role"`
	NowNs   int64             `json:"now_ns"` // scrape-time wall clock, a coarse offset fallback
	Sample  int               `json:"sample"`
	Dropped int64             `json:"dropped"`
	Offsets map[string]Offset `json:"offsets,omitempty"`
	Spans   []Span            `json:"spans"`
}

// defaultMaxSpans bounds the ring buffer; at ~10 spans per traced
// request this keeps the last few hundred requests.
const defaultMaxSpans = 1 << 13

// Tracer is one process's request-span recorder. Construct with New;
// a nil *Tracer is "tracing off" and every method is a no-op.
type Tracer struct {
	proc    int
	role    string
	sampleN int64
	counter atomic.Int64 // sampling decisions

	mu      sync.Mutex
	buf     []Span // overwrite-oldest ring
	next    int    // ring write cursor
	wrapped bool
	dropped int64 // spans overwritten

	offsets func() map[int]Offset // optional, installed by the coordinator

	hists [len(stageNames)]metrics.Histogram // per-stage durations (unknown stages skip)
}

// New builds a tracer for one process. sampleN selects span recording
// for requests without an inbound trace header: 1 records every
// request, N > 1 records one in N, 0 (or negative) records none —
// though an explicit inbound X-GT-Trace header is always honoured.
// maxSpans bounds the ring (<= 0 takes the default).
func New(proc int, role string, sampleN, maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	return &Tracer{
		proc:    proc,
		role:    role,
		sampleN: int64(sampleN),
		buf:     make([]Span, 0, maxSpans),
	}
}

// Proc returns the tracer's processor id (0 when nil).
func (t *Tracer) Proc() int {
	if t == nil {
		return 0
	}
	return t.proc
}

// SampleNext decides whether the next headerless request should be
// traced. Nil-safe: a nil tracer samples nothing.
func (t *Tracer) SampleNext() bool {
	if t == nil || t.sampleN <= 0 {
		return false
	}
	if t.sampleN == 1 {
		return true
	}
	return t.counter.Add(1)%t.sampleN == 1
}

// idRand seeds trace-ID minting once per process; IDs only need to be
// distinct within a trace scrape window, not cryptographic.
var (
	idMu   sync.Mutex
	idRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// MintID returns a fresh 64-bit hex trace ID.
func MintID() string {
	idMu.Lock()
	v := idRand.Uint64()
	idMu.Unlock()
	return fmt.Sprintf("%016x", v)
}

// Record appends a span if tracing is on and the span carries a trace
// ID. The empty-trace guard is the whole sampling contract: unsampled
// requests flow through every instrumented site with Trace == "" and
// never reach the buffer or the histograms.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == "" {
		return
	}
	s.Proc = t.proc
	if i := stageIndex(s.Stage); i >= 0 {
		t.hists[i].Observe(s.DurNs)
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.wrapped = true
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Spans returns the buffered spans oldest-first and the count
// overwritten by the ring. Nil-safe.
func (t *Tracer) Spans() ([]Span, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Span(nil), t.buf...), t.dropped
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out, t.dropped
}

// SetOffsets installs the per-peer clock-offset source (the shard
// coordinator's ping-echo estimator) surfaced in the Dump. Nil-safe.
func (t *Tracer) SetOffsets(f func() map[int]Offset) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.offsets = f
	t.mu.Unlock()
}

// DumpState snapshots the tracer as a Dump.
func (t *Tracer) DumpState() Dump {
	if t == nil {
		return Dump{NowNs: time.Now().UnixNano()}
	}
	spans, dropped := t.Spans()
	d := Dump{
		Proc:    t.proc,
		Role:    t.role,
		NowNs:   time.Now().UnixNano(),
		Sample:  int(t.sampleN),
		Dropped: dropped,
		Spans:   spans,
	}
	t.mu.Lock()
	off := t.offsets
	t.mu.Unlock()
	if off != nil {
		m := off()
		if len(m) > 0 {
			d.Offsets = make(map[string]Offset, len(m))
			for p, o := range m {
				d.Offsets[fmt.Sprintf("%d", p)] = o
			}
		}
	}
	return d
}

// Handler serves the tracer as GET /debug/gttrace. Nil-safe: a nil
// tracer serves an empty dump, so the endpoint can be mounted
// unconditionally.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.DumpState())
	})
}

// PromSection returns an AddPromSection-compatible writer publishing the
// per-stage duration histograms as one labelled family,
// gametree_shard_stage_ns{stage="..."}. Only sampled requests feed the
// family (the same requests that produce spans), which keeps the
// unsampled hot path untouched; with sampling at 1 the family is a
// complete per-stage latency account.
func (t *Tracer) PromSection() func(io.Writer) error {
	return func(w io.Writer) error {
		if t == nil {
			return nil
		}
		if _, err := fmt.Fprintf(w,
			"# HELP gametree_shard_stage_ns Per-stage latency of traced (sampled) requests, nanoseconds.\n# TYPE gametree_shard_stage_ns histogram\n"); err != nil {
			return err
		}
		for i, stage := range stageNames {
			snap := t.hists[i].Snapshot()
			if snap.Count == 0 {
				continue
			}
			if err := promLabelledHist(w, "gametree_shard_stage_ns", "stage", stage, snap); err != nil {
				return err
			}
		}
		return nil
	}
}

// promLabelledHist writes one labelled histogram series: ascending
// cumulative le buckets up to the highest populated one, +Inf, _sum and
// _count — the internal/telemetry exposition shape with a label pair.
func promLabelledHist(w io.Writer, name, label, value string, s metrics.HistSnapshot) error {
	hi := -1
	for i, c := range s.Buckets {
		if c > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%d\"} %d\n",
			name, label, value, metrics.BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum{%s=%q} %d\n%s_count{%s=%q} %d\n",
		name, label, value, s.Sum, name, label, value, s.Count)
	return err
}

// ctxKey carries the trace ID through a request's context chain.
type ctxKey struct{}

// NewContext returns ctx carrying the trace ID; an empty ID returns ctx
// unchanged (unsampled requests allocate no context node).
func NewContext(ctx context.Context, trace string) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, trace)
}

// FromContext extracts the trace ID ("" when the request is unsampled
// or the context never saw the serving layer).
func FromContext(ctx context.Context) string {
	s, _ := ctx.Value(ctxKey{}).(string)
	return s
}
