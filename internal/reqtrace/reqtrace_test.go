package reqtrace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSampleNext(t *testing.T) {
	var nilT *Tracer
	if nilT.SampleNext() {
		t.Error("nil tracer sampled")
	}
	if New(0, "x", 0, 0).SampleNext() {
		t.Error("sampleN=0 sampled")
	}
	every := New(0, "x", 1, 0)
	for i := 0; i < 5; i++ {
		if !every.SampleNext() {
			t.Fatal("sampleN=1 skipped a request")
		}
	}
	oneIn4 := New(0, "x", 4, 0)
	picked := 0
	for i := 0; i < 400; i++ {
		if oneIn4.SampleNext() {
			picked++
		}
	}
	if picked != 100 {
		t.Errorf("1-in-4 sampling picked %d of 400", picked)
	}
}

// TestUnsampledZeroAlloc is the satellite contract: a request that was
// not sampled (empty trace ID) must cross every recording site without
// allocating — the hot path keeps PR 2's one-branch-when-off cost.
func TestUnsampledZeroAlloc(t *testing.T) {
	tr := New(0, "coordinator", 2, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(Span{Trace: "", Stage: StageCompute, StartNs: 1, DurNs: 2})
	})
	if allocs != 0 {
		t.Errorf("unsampled Record allocated %.1f per call, want 0", allocs)
	}
	var nilT *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nilT.Record(Span{Trace: "abc", Stage: StageCompute, StartNs: 1, DurNs: 2})
	})
	if allocs != 0 {
		t.Errorf("nil-tracer Record allocated %.1f per call, want 0", allocs)
	}
}

func TestRingBufferOverwritesOldest(t *testing.T) {
	tr := New(1, "worker", 1, 4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Trace: "t", Stage: StageCompute, StartNs: int64(i)})
	}
	spans, dropped := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("kept %d spans, want 4", len(spans))
	}
	if dropped != 3 {
		t.Errorf("dropped=%d, want 3", dropped)
	}
	for i, s := range spans {
		if want := int64(i + 3); s.StartNs != want {
			t.Errorf("span %d: start %d, want %d (oldest-first after wrap)", i, s.StartNs, want)
		}
		if s.Proc != 1 {
			t.Errorf("span %d: proc %d, want tracer's proc 1", i, s.Proc)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != "" {
		t.Errorf("empty context carried trace %q", got)
	}
	if NewContext(ctx, "") != ctx {
		t.Error("empty trace should not wrap the context")
	}
	ctx2 := NewContext(ctx, "deadbeef")
	if got := FromContext(ctx2); got != "deadbeef" {
		t.Errorf("round trip: %q", got)
	}
}

func TestMintIDDistinct(t *testing.T) {
	a, b := MintID(), MintID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("ids %q %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Error("two minted ids collided")
	}
}

func TestHandlerDump(t *testing.T) {
	tr := New(0, "coordinator", 1, 0)
	tr.Record(Span{Trace: "abc", Stage: StageExpand, StartNs: 100, DurNs: 50})
	tr.SetOffsets(func() map[int]Offset {
		return map[int]Offset{1: {OffsetNs: -250, RTTNs: 900}}
	})
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/gttrace", nil))
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Proc != 0 || d.Role != "coordinator" || len(d.Spans) != 1 {
		t.Fatalf("dump %+v", d)
	}
	if d.Spans[0].Stage != StageExpand {
		t.Errorf("stage %q", d.Spans[0].Stage)
	}
	if o := d.Offsets["1"]; o.OffsetNs != -250 || o.RTTNs != 900 {
		t.Errorf("offsets %+v", d.Offsets)
	}
	if d.NowNs == 0 {
		t.Error("dump missing scrape clock")
	}

	// Nil tracer: the endpoint must still answer with an empty dump.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/gttrace", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 0 {
		t.Errorf("nil tracer dumped %d spans", len(d.Spans))
	}
}

func TestPromSection(t *testing.T) {
	tr := New(0, "coordinator", 1, 0)
	tr.Record(Span{Trace: "abc", Stage: StageRPC, StartNs: 1, DurNs: 1000})
	tr.Record(Span{Trace: "abc", Stage: StageRPC, StartNs: 2, DurNs: 3000})
	tr.Record(Span{Trace: "abc", Stage: StageFold, StartNs: 3, DurNs: 10})
	var sb strings.Builder
	if err := tr.PromSection()(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gametree_shard_stage_ns histogram",
		`gametree_shard_stage_ns_count{stage="rpc"} 2`,
		`gametree_shard_stage_ns_sum{stage="rpc"} 4000`,
		`gametree_shard_stage_ns_count{stage="fold"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unpopulated stages are omitted.
	if strings.Contains(out, `stage="compute"`) {
		t.Error("exposition contains a stage with no observations")
	}
}

func TestMergeAlignsClocks(t *testing.T) {
	// Worker 1's clock runs 5ms ahead of the coordinator's; the
	// coordinator's offset table knows it. Worker 2 has no estimate but
	// its scrape NowNs is 2ms ahead, which the fallback should use.
	coord := Dump{
		Proc: 0, Role: "coordinator", NowNs: 1_000_000_000,
		Offsets: map[string]Offset{"1": {OffsetNs: 5_000_000, RTTNs: 100_000}},
		Spans: []Span{
			{Trace: "t1", Proc: 0, Stage: StageRequest, StartNs: 1_000_000_000, DurNs: 30_000_000},
		},
	}
	w1 := Dump{Proc: 1, Role: "worker", NowNs: 1_005_000_000, Spans: []Span{
		{Trace: "t1", Proc: 1, Stage: StageCompute, StartNs: 1_010_000_000, DurNs: 10_000_000},
	}}
	w2 := Dump{Proc: 2, Role: "worker", NowNs: 1_002_000_000, Spans: []Span{
		{Trace: "t1", Proc: 2, Stage: StageCompute, StartNs: 1_012_000_000, DurNs: 10_000_000},
	}}
	spans, base := Merge([]Dump{coord, w1, w2})
	if len(spans) != 3 {
		t.Fatalf("merged %d spans", len(spans))
	}
	if base != 1_000_000_000 {
		t.Errorf("base %d", base)
	}
	for _, s := range spans {
		switch s.Proc {
		case 1:
			if s.StartNs != 1_005_000_000 {
				t.Errorf("worker 1 span not shifted by the echo offset: %d", s.StartNs)
			}
		case 2:
			if s.StartNs != 1_010_000_000 {
				t.Errorf("worker 2 span not shifted by the NowNs fallback: %d", s.StartNs)
			}
		}
	}
	// Sorted by aligned start: coordinator request first.
	if spans[0].Proc != 0 || spans[0].Stage != StageRequest {
		t.Errorf("first span %+v", spans[0])
	}
}

func TestWriteChromeTraceLanes(t *testing.T) {
	spans := []Span{
		{Trace: "t1", Proc: 0, Stage: StageRequest, StartNs: 100, DurNs: 50},
		{Trace: "t1", Proc: 1, Stage: StageCompute, StartNs: 110, DurNs: 20, Task: 7, Note: "ok"},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, spans, 100, map[int]string{0: "coordinator"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	// 2 process_name metadata + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d events", len(doc.TraceEvents))
	}
	for _, want := range []string{
		`"coordinator (proc 0)"`, `"worker (proc 1)"`,
		`"name":"request"`, `"name":"compute"`, `"trace":"t1"`, `"task":7,`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdown(t *testing.T) {
	spans := []Span{
		{Trace: "t1", Proc: 0, Stage: StageRequest, StartNs: 100, DurNs: 1_000_000},
		{Trace: "t1", Proc: 0, Stage: StageExpand, StartNs: 110, DurNs: 100_000},
		{Trace: "t1", Proc: 0, Stage: StageRPC, StartNs: 120, DurNs: 400_000, Task: 1, Worker: 1},
		{Trace: "t1", Proc: 0, Stage: StageRPC, StartNs: 120, DurNs: 500_000, Task: 2, Worker: 2},
		{Trace: "t1", Proc: 1, Stage: StageCompute, StartNs: 130, DurNs: 300_000, Task: 1},
		{Trace: "t1", Proc: 2, Stage: StageCompute, StartNs: 130, DurNs: 350_000, Task: 2},
		{Trace: "t2", Proc: 0, Stage: StageRequest, StartNs: 500, DurNs: 2_000_000},
	}
	bds := Breakdown(spans)
	if len(bds) != 2 {
		t.Fatalf("%d breakdowns", len(bds))
	}
	b := bds[0]
	if b.Trace != "t1" || b.TotalNs != 1_000_000 {
		t.Fatalf("first breakdown %+v", b)
	}
	if want := []int{0, 1, 2}; len(b.Procs) != 3 || b.Procs[0] != want[0] || b.Procs[2] != want[2] {
		t.Errorf("procs %v", b.Procs)
	}
	var rpc, compute *StageTotal
	for i := range b.Stages {
		switch b.Stages[i].Stage {
		case StageRPC:
			rpc = &b.Stages[i]
		case StageCompute:
			compute = &b.Stages[i]
		}
	}
	if rpc == nil || rpc.Count != 2 || rpc.SumNs != 900_000 {
		t.Errorf("rpc stage %+v", rpc)
	}
	if compute == nil || compute.Count != 2 || len(compute.Procs) != 2 {
		t.Errorf("compute stage %+v", compute)
	}

	var sb strings.Builder
	if err := WriteBreakdown(&sb, bds); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace t1", "rpc", "compute", "total=1.000ms", "trace t2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestSpanWallClock pins the recording convention: StartNs is wall-clock
// UnixNano, so two processes on one machine produce directly comparable
// spans even before offset correction.
func TestSpanWallClock(t *testing.T) {
	tr := New(0, "x", 1, 0)
	before := time.Now().UnixNano()
	start := time.Now()
	tr.Record(Span{Trace: "w", Stage: StageQueue, StartNs: start.UnixNano(), DurNs: 1})
	spans, _ := tr.Spans()
	if len(spans) != 1 || spans[0].StartNs < before {
		t.Fatalf("span %+v not on the wall clock (before=%d)", spans, before)
	}
}
