// Package sched replays step-synchronous runs under a finite processor
// budget. The paper's leaf-evaluation model charges one time unit per
// step regardless of the step's parallel degree; with P physical
// processors a step of degree k costs ceil(k/P) units (greedy list
// scheduling). Replaying a recorded run under every P yields the full
// speedup-vs-processors curve from a single simulation, and Brent's
// theorem bounds it:
//
//	T_P <= T_inf + (W - T_inf)/P,   T_P >= max(T_inf, W/P)
//
// where T_inf is the step count (unbounded processors) and W the total
// work.
package sched

import (
	"fmt"

	"gametree/internal/core"
	"gametree/internal/tree"
)

// Profile is the per-step degree sequence of a run.
type Profile []int

// FromMetrics extracts a Profile from a run's degree histogram. The
// per-step order is lost (histograms aggregate), which is fine: replay
// cost is order-independent.
func FromMetrics(m core.Metrics) Profile {
	var p Profile
	for deg, count := range m.DegreeHist {
		for i := int64(0); i < count; i++ {
			p = append(p, deg)
		}
	}
	return p
}

// FromTraces extracts a Profile preserving step order.
func FromTraces(steps []core.StepTrace) Profile {
	p := make(Profile, len(steps))
	for i, st := range steps {
		p[i] = st.Degree()
	}
	return p
}

// Work returns the total number of leaf evaluations.
func (p Profile) Work() int64 {
	var w int64
	for _, d := range p {
		w += int64(d)
	}
	return w
}

// Steps returns T_inf, the time under unbounded processors.
func (p Profile) Steps() int64 { return int64(len(p)) }

// Replay returns T_P: the time to execute the run with P processors,
// charging ceil(degree/P) per step.
func (p Profile) Replay(procs int) int64 {
	if procs < 1 {
		panic(fmt.Sprintf("sched: Replay requires procs >= 1, got %d", procs))
	}
	var t int64
	for _, d := range p {
		t += int64((d + procs - 1) / procs)
	}
	return t
}

// BrentUpper returns the Brent bound T_inf + (W - T_inf)/P (rounded up).
func (p Profile) BrentUpper(procs int) int64 {
	if procs < 1 {
		panic("sched: BrentUpper requires procs >= 1")
	}
	tinf := p.Steps()
	w := p.Work()
	extra := (w - tinf + int64(procs) - 1) / int64(procs)
	return tinf + extra
}

// LowerBound returns max(T_inf, ceil(W/P)).
func (p Profile) LowerBound(procs int) int64 {
	if procs < 1 {
		panic("sched: LowerBound requires procs >= 1")
	}
	w := (p.Work() + int64(procs) - 1) / int64(procs)
	if t := p.Steps(); t > w {
		return t
	}
	return w
}

// Curve returns (P, T_P) pairs for P = 1, 2, 4, ..., up to maxProcs.
func (p Profile) Curve(maxProcs int) [][2]int64 {
	var out [][2]int64
	for procs := 1; procs <= maxProcs; procs *= 2 {
		out = append(out, [2]int64{int64(procs), p.Replay(procs)})
	}
	return out
}

// LevelCosts returns, for each traced step, the cost of executing it
// under a per-level processor allocation in the LEAF-evaluation model: a
// step costs the maximum number of selected leaves sharing a depth, since
// same-level leaves serialize on their level's processor. On uniform
// trees every leaf sits at the bottom level, so this allocation
// degenerates to full serialization (cost = degree) — which is precisely
// why Section 7 builds its machine in the node-expansion model, where the
// cascade's work is one expansion per level. LevelCosts quantifies that
// distinction; on near-uniform trees (leaves at many depths) it sits
// between the ideal step count and the total work.
func LevelCosts(t *tree.Tree, steps []core.StepTrace) []int64 {
	out := make([]int64, len(steps))
	depthCount := map[int]int64{}
	for i, st := range steps {
		clear(depthCount)
		var maxAt int64
		for _, l := range st.Leaves {
			d := t.Depth(l)
			depthCount[d]++
			if depthCount[d] > maxAt {
				maxAt = depthCount[d]
			}
		}
		if maxAt == 0 {
			maxAt = 1
		}
		out[i] = maxAt
	}
	return out
}

// LevelReplay sums LevelCosts: the total time of the run under the
// per-level allocation.
func LevelReplay(t *tree.Tree, steps []core.StepTrace) int64 {
	var total int64
	for _, c := range LevelCosts(t, steps) {
		total += c
	}
	return total
}
