package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gametree/internal/core"
	"gametree/internal/tree"
)

func TestReplayBasics(t *testing.T) {
	p := Profile{4, 2, 1, 8}
	if p.Work() != 15 || p.Steps() != 4 {
		t.Fatalf("work %d steps %d", p.Work(), p.Steps())
	}
	// P=1: time = work. P=inf-ish: time = steps.
	if got := p.Replay(1); got != 15 {
		t.Errorf("T_1 = %d, want 15", got)
	}
	if got := p.Replay(100); got != 4 {
		t.Errorf("T_100 = %d, want 4", got)
	}
	// P=2: ceil(4/2)+ceil(2/2)+ceil(1/2)+ceil(8/2) = 2+1+1+4 = 8.
	if got := p.Replay(2); got != 8 {
		t.Errorf("T_2 = %d, want 8", got)
	}
	if got := p.Replay(3); got != 2+1+1+3 {
		t.Errorf("T_3 = %d", got)
	}
}

// Property: the replayed time always lies between the lower bound and the
// Brent upper bound, and is non-increasing in P.
func TestBrentSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make(Profile, 1+rng.Intn(40))
		for i := range p {
			p[i] = 1 + rng.Intn(20)
		}
		prev := int64(1 << 62)
		for procs := 1; procs <= 32; procs *= 2 {
			tp := p.Replay(procs)
			if tp < p.LowerBound(procs) || tp > p.BrentUpper(procs) {
				return false
			}
			if tp > prev {
				return false
			}
			prev = tp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Replaying a real width-1 run: with P = n+1 processors the replay time
// equals the step count (no step exceeds the processor bound), recovering
// Theorem 1's statement that n+1 processors suffice.
func TestWidthOneRunFitsInHeightPlusOneProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(7)
		tr := tree.IIDNor(2, n, 0.382, rng.Int63())
		m, err := core.ParallelSolve(tr, 1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := FromMetrics(m)
		if got := p.Replay(n + 1); got != m.Steps {
			t.Errorf("trial %d: T_{n+1} = %d != steps %d", trial, got, m.Steps)
		}
		if p.Work() != m.Work {
			t.Errorf("trial %d: profile work %d != metrics %d", trial, p.Work(), m.Work)
		}
	}
}

func TestFromTracesPreservesOrder(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 6, 1)
	steps, m, err := core.TraceParallelSolve(tr, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := FromTraces(steps)
	if p.Steps() != m.Steps || p.Work() != m.Work {
		t.Errorf("profile %d/%d vs metrics %d/%d", p.Steps(), p.Work(), m.Steps, m.Work)
	}
	if p[0] != steps[0].Degree() {
		t.Error("order lost")
	}
}

func TestCurve(t *testing.T) {
	p := Profile{8, 8}
	c := p.Curve(8)
	if len(c) != 4 || c[0] != [2]int64{1, 16} || c[3] != [2]int64{8, 2} {
		t.Errorf("curve %v", c)
	}
}

func TestSchedPanics(t *testing.T) {
	p := Profile{1}
	for _, f := range []func(){
		func() { p.Replay(0) },
		func() { p.BrentUpper(0) },
		func() { p.LowerBound(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// The per-level leaf-model allocation: sandwiched between the ideal step
// count and the total work; on near-uniform trees (leaves at many depths)
// it beats full serialization, while on uniform trees it degenerates to
// cost = degree (the reason Section 7 works in the node-expansion model).
func TestLevelReplayWidthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		seed := rng.Int63()
		tr := tree.NearUniform(tree.NOR, 4, 10, 0.5, 0.4, seed, tree.BernoulliLeaves(0.3, seed+1))
		steps, m, err := core.TraceParallelSolve(tr, 1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lr := LevelReplay(tr, steps)
		if lr < m.Steps || lr > m.Work {
			t.Fatalf("trial %d: level replay %d outside [steps %d, work %d]", trial, lr, m.Steps, m.Work)
		}
		costs := LevelCosts(tr, steps)
		if int64(len(costs)) != m.Steps {
			t.Fatalf("cost count mismatch")
		}
	}
	// Uniform trees at width 1: every selected leaf of a step sits at the
	// SAME depth n (all leaves are at the bottom), so the per-level
	// allocation serializes the whole step: cost == degree.
	tr := tree.WorstCaseNOR(2, 8, 1)
	steps, _, err := core.TraceParallelSolve(tr, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costs := LevelCosts(tr, steps)
	for i, st := range steps {
		if costs[i] != int64(st.Degree()) {
			t.Fatalf("step %d: cost %d != degree %d on a uniform tree", i, costs[i], st.Degree())
		}
	}
}
