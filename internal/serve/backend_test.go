package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"

	"gametree/internal/engine"
)

// fakeBackend counts searches and returns a deterministic value.
type fakeBackend struct {
	calls atomic.Int64
	fail  atomic.Bool
}

func (b *fakeBackend) Search(ctx context.Context, game, position string, depth int) (engine.Result, error) {
	b.calls.Add(1)
	if b.fail.Load() {
		return engine.Result{}, errors.New("backend exploded")
	}
	if err := ctx.Err(); err != nil {
		return engine.Result{}, engine.ErrCancelled
	}
	return engine.Result{Value: 42, Best: 1, Nodes: 7}, nil
}

// TestBackendModeServesAndCaches: with a Backend configured the server
// builds no local pools, routes leader searches to the backend, and the
// cache and coalescing layers work unchanged in front of it.
func TestBackendModeServesAndCaches(t *testing.T) {
	b := &fakeBackend{}
	s, ts := newTestServer(t, Config{Pools: 2, Backend: b})
	if s.Table() != nil {
		t.Error("backend mode built a local table")
	}

	code, ok, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Position: "", Depth: 3})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ok.Value != 42 || ok.Best != 1 || ok.Nodes != 7 {
		t.Errorf("backend result not passed through: %+v", ok)
	}
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times, want 1", got)
	}

	// Second identical request: served from cache, backend untouched.
	code, ok, _, _ = postSearch(t, ts.URL, SearchRequest{Game: "ttt", Position: "", Depth: 3})
	if code != http.StatusOK || !ok.Cached {
		t.Errorf("repeat not cached: code=%d cached=%v", code, ok.Cached)
	}
	if got := b.calls.Load(); got != 1 {
		t.Errorf("cache miss went to backend: calls=%d", got)
	}

	// Invalid positions are rejected before reaching the backend.
	code, _, _, _ = postSearch(t, ts.URL, SearchRequest{Game: "ttt", Position: "XX", Depth: 3})
	if code != http.StatusBadRequest {
		t.Errorf("bad position got %d", code)
	}
	if got := b.calls.Load(); got != 1 {
		t.Errorf("invalid request reached backend: calls=%d", got)
	}

	// Backend failure surfaces as 500, not a hang.
	b.fail.Store(true)
	code, _, fail, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Position: "X........", Depth: 3})
	if code != http.StatusInternalServerError {
		t.Errorf("backend error got %d (%s)", code, fail.Error)
	}
}

func TestBackendModeHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Pools: 1, Backend: &fakeBackend{}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Backend != "shard" {
		t.Errorf("healthz backend = %q, want shard", body.Backend)
	}
}
