package serve

// Two layers of duplicate suppression sit in front of the engine pools:
//
//   - flightGroup coalesces identical *in-flight* searches: the first
//     request for a key becomes the leader and runs the search, later
//     arrivals block on its completion and share the Result. Coalesced
//     joiners never enter the admission queue, so a duplicate-heavy burst
//     costs one queue slot, not N.
//   - resultCache is a bounded LRU of *completed* searches keyed by
//     (position key, depth): repeats after completion are served without
//     touching a pool at all. It memoizes exact root results — distinct
//     from the shared transposition table, which memoizes interior bounds
//     and survives eviction churn.

import (
	"container/list"
	"sync"

	"gametree/internal/engine"
)

// flightCall is one in-flight search: joiners block on done and read
// res/err afterwards (the channel close is the happens-before edge).
type flightCall struct {
	done     chan struct{}
	res      engine.Result
	err      error
	degraded bool // backend answered in degraded mode (set before done closes)
}

// flightGroup indexes in-flight searches by full request key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// join returns the call for key, creating it when absent. leader reports
// whether this caller created it — the leader must eventually settle the
// call with finish.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c := g.calls[key]; c != nil {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish settles a call: the key is unregistered first, so requests
// arriving after this point start a fresh flight (and will normally hit
// the result cache instead), then the waiters are released.
func (g *flightGroup) finish(key string, c *flightCall, res engine.Result, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
}

// resultCache is a bounded LRU over completed search results. A zero or
// negative capacity disables it (get always misses, put is a no-op).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res engine.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return &resultCache{}
	}
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (engine.Result, bool) {
	if c.cap == 0 {
		return engine.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return engine.Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res engine.Result) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the live entry count (for tests and /healthz).
func (c *resultCache) len() int {
	if c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
