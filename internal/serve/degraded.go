package serve

// Degraded-mode plumbing: the backend (the shard coordinator, when its
// worker ring is empty and it fell back to local compute) marks the
// search context, and the mark surfaces on the response so callers can
// tell an exact-but-degraded answer from a healthy one. The flag rides
// the context rather than the error path because degraded answers are
// still exact — they are successes with an operational footnote.

import (
	"context"
	"sync/atomic"
)

// DegradedFlag records whether the search it is attached to was served
// in degraded mode. Safe for concurrent use.
type DegradedFlag struct {
	set atomic.Bool
}

// Get reports whether the flag was marked.
func (f *DegradedFlag) Get() bool { return f.set.Load() }

type degradedKey struct{}

// WithDegraded attaches a fresh DegradedFlag to ctx. The server wraps
// every leader search context with it; the returned flag is read after
// the search settles.
func WithDegraded(ctx context.Context) (context.Context, *DegradedFlag) {
	f := &DegradedFlag{}
	return context.WithValue(ctx, degradedKey{}, f), f
}

// MarkDegraded flips the context's DegradedFlag, if one is attached.
// Backends call it when a search was answered without the full healthy
// path (e.g. coordinator-local compute on an empty ring). No-op on a
// context without a flag, so backends can call it unconditionally.
func MarkDegraded(ctx context.Context) {
	if f, ok := ctx.Value(degradedKey{}).(*DegradedFlag); ok {
		f.set.Store(true)
	}
}
