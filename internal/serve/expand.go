package serve

// Position expansion for the shard tier: an ExpandFunc names the
// children of a position *as canonical position strings*, in exactly the
// order the game's Moves() generates them. The coordinator expands the
// root a bounded number of plies, ships the frontier to workers as
// independent (position, depth) tasks, and folds the results back up
// with the negamax rule — so move-index answers (Result.Best) stay
// byte-identical to a sequential search, which requires the expansion
// order to match Moves() exactly. The test suite cross-checks every
// registered expander against the parser and Moves() for that game.

import (
	"fmt"
	"strconv"
	"sync"

	"gametree/internal/games"
)

// ExpandFunc returns the canonical child position strings of a canonical
// position, in Moves() order. Terminal positions return an empty slice.
type ExpandFunc func(position string) ([]string, error)

var (
	expandersMu sync.RWMutex
	expanders   = map[string]ExpandFunc{
		"ttt":      expandTTT,
		"connect4": expandConnect4,
		"random":   expandRandom,
	}
)

// RegisterExpander adds (or replaces) a game expander. Games without an
// expander can still be served, just not sharded at the root.
func RegisterExpander(name string, expand ExpandFunc) {
	expandersMu.Lock()
	defer expandersMu.Unlock()
	expanders[name] = expand
}

// Expand resolves a game's expander and applies it. The position must
// already be canonical (as returned by ParsePosition).
func Expand(game, position string) ([]string, error) {
	expandersMu.RLock()
	expand := expanders[game]
	expandersMu.RUnlock()
	if expand == nil {
		return nil, fmt.Errorf("game %q has no expander", game)
	}
	return expand(position)
}

// expandTTT mirrors games.TTT.AppendMoves: ascending cell order, mover's
// mark placed, no children once somebody has three in a row.
func expandTTT(position string) ([]string, error) {
	pos, canon, err := parseTTTPosition(position)
	if err != nil {
		return nil, err
	}
	p := pos.(games.TTT)
	if p.Winner() != 0 {
		return nil, nil
	}
	// The mover follows from piece counts, as in ParseTTT.
	mark := byte('X')
	x, o := 0, 0
	for _, c := range p.Cells {
		switch c {
		case 1:
			x++
		case 2:
			o++
		}
	}
	if x > o {
		mark = 'O'
	}
	var out []string
	for i := 0; i < 9; i++ {
		if canon[i] != '.' {
			continue
		}
		child := []byte(canon)
		child[i] = mark
		out = append(out, string(child))
	}
	return out, nil
}

// expandConnect4 mirrors games.Connect4.AppendMoves: center column
// first, then alternating outward, skipping full columns; no children
// after a win. The child canonical form is the parent move string plus
// the column digit.
func expandConnect4(position string) ([]string, error) {
	pos, canon, err := parseConnect4Position(position)
	if err != nil {
		return nil, err
	}
	p := pos.(*games.Connect4)
	if len(p.Moves()) == 0 {
		return nil, nil // won (or full) position: terminal
	}
	mid := p.W / 2
	var out []string
	for off := 0; off < p.W; off++ {
		for i, c := range [2]int{mid - off, mid + off} {
			if i == 1 && off == 0 {
				break
			}
			if c < 0 || c >= p.W {
				continue
			}
			if p.Drop(c) != nil {
				out = append(out, canon+strconv.Itoa(c))
			}
		}
	}
	return out, nil
}

// expandRandom names the synthetic tree's children by their derived
// seeds. The tree is infinite, so there are no terminal positions; the
// search horizon alone bounds the game.
func expandRandom(position string) ([]string, error) {
	pos, _, err := parseRandomPosition(position)
	if err != nil {
		return nil, err
	}
	p := pos.(games.RandomTree)
	out := make([]string, p.Branch)
	for i := range out {
		c := p.Child(i)
		out[i] = fmt.Sprintf("%d:%d", c.Seed, c.Branch)
	}
	return out, nil
}
