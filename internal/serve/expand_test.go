package serve

import (
	"fmt"
	"testing"

	"gametree/internal/engine"
)

// hashOf keys a position for identity comparison: Hash when the game
// supports it, else the String form.
func hashOf(p engine.Position) string {
	if h, ok := p.(engine.Hasher); ok {
		return fmt.Sprintf("h%x", h.Hash())
	}
	return fmt.Sprintf("s%v", p)
}

// TestExpandersMatchMoves is the contract the shard tier's Best-index
// fidelity rests on: for every registered game, expanding a canonical
// position yields exactly the positions of Moves(), in Moves() order.
func TestExpandersMatchMoves(t *testing.T) {
	cases := []struct{ game, pos string }{
		{"ttt", ""},             // empty board
		{"ttt", "XOX.O..X."},    // midgame
		{"ttt", "XXXOO...."},    // won: terminal
		{"ttt", "XOXXOOOXX"},    // full board: terminal
		{"connect4", ""},        // empty board, center-first ordering
		{"connect4", "333"},     // stacked center
		{"connect4", "3344"},    // midgame
		{"connect4", "3434343"}, // vertical win for player 1: terminal
		{"random", "42"},
		{"random", "7:3"},
		{"random", "18446744073709551615:16"}, // max seed, max branch
	}
	for _, tc := range cases {
		t.Run(tc.game+"/"+tc.pos, func(t *testing.T) {
			pos, key, err := ParsePosition(tc.game, tc.pos)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			canon := key[len(tc.game)+1:]
			children, err := Expand(tc.game, canon)
			if err != nil {
				t.Fatalf("expand: %v", err)
			}
			moves := pos.Moves()
			if len(children) != len(moves) {
				t.Fatalf("expander gives %d children, Moves gives %d", len(children), len(moves))
			}
			for i, c := range children {
				got, childKey, err := ParsePosition(tc.game, c)
				if err != nil {
					t.Fatalf("child %d %q does not parse: %v", i, c, err)
				}
				if childKey != tc.game+"|"+c {
					t.Errorf("child %d %q is not canonical: key %q", i, c, childKey)
				}
				if hashOf(got) != hashOf(moves[i]) {
					t.Errorf("child %d: expander gives %v, Moves gives %v", i, got, moves[i])
				}
			}
		})
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := Expand("nosuch", ""); err == nil {
		t.Error("unknown game expanded")
	}
	if _, err := Expand("ttt", "XX"); err == nil {
		t.Error("short ttt board expanded")
	}
	if _, err := Expand("connect4", "9"); err == nil {
		t.Error("out-of-range connect4 column expanded")
	}
	if _, err := Expand("random", "notanumber"); err == nil {
		t.Error("bad random seed expanded")
	}
}
