package serve

// Serving-layer observability: request-path counters plus queue-wait and
// end-to-end latency histograms, exposed as gametree_serve_* families on
// the same /metrics endpoint as the engine telemetry (registered with
// the Recorder via AddPromSection). Counters are plain atomics — the
// request path is already orders of magnitude coarser-grained than the
// search hot path, so per-goroutine sharding would buy nothing.

import (
	"io"
	"sync/atomic"

	"gametree/internal/metrics"
	"gametree/internal/telemetry"
)

// serveStats is the counter block of one Server.
type serveStats struct {
	requests         atomic.Int64 // POST /v1/search received
	admitted         atomic.Int64 // leader searches granted a pool
	rejectedQueue    atomic.Int64 // 429: admission queue full
	rejectedDraining atomic.Int64 // 503: draining or shut down
	coalesced        atomic.Int64 // joined an identical in-flight search
	cacheHits        atomic.Int64 // served from the LRU result cache
	cacheMisses      atomic.Int64
	deadlineExceeded atomic.Int64 // 504: request deadline expired
	completed        atomic.Int64 // 200s (cached, coalesced or searched)
	degraded         atomic.Int64 // 200s answered in degraded mode (local fallback)
	failed           atomic.Int64 // 500: search error
	inflight         atomic.Int64 // requests between admission check and response
	solveRequests    atomic.Int64 // POST /v1/solve received
	solvePartial     atomic.Int64 // solves stopped before a verdict (parked for resume)
	solveResumed     atomic.Int64 // solves that continued a parked partial tree

	queueWaitNs metrics.Histogram // leader wait for a free pool
	latencyNs   metrics.Histogram // full request latency, all outcomes
}

// writeProm writes the gametree_serve_* families. The fixed order keeps
// the exposition deterministic (and therefore diffable in CI artifacts).
func (s *serveStats) writeProm(w io.Writer) error {
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"gametree_serve_requests_total", "Search requests received.", &s.requests},
		{"gametree_serve_admitted_total", "Leader searches granted an engine pool.", &s.admitted},
		{"gametree_serve_rejected_queue_total", "Requests shed with 429: admission queue full.", &s.rejectedQueue},
		{"gametree_serve_rejected_draining_total", "Requests shed with 503: server draining.", &s.rejectedDraining},
		{"gametree_serve_coalesced_total", "Requests coalesced onto an identical in-flight search.", &s.coalesced},
		{"gametree_serve_cache_hits_total", "Requests served from the result cache.", &s.cacheHits},
		{"gametree_serve_cache_misses_total", "Requests that missed the result cache.", &s.cacheMisses},
		{"gametree_serve_deadline_exceeded_total", "Requests that exceeded their deadline (504).", &s.deadlineExceeded},
		{"gametree_serve_completed_total", "Requests answered 200.", &s.completed},
		{"gametree_serve_degraded_total", "Requests answered 200 in degraded mode (shard ring empty, local fallback).", &s.degraded},
		{"gametree_serve_failed_total", "Requests answered 500 (search error).", &s.failed},
		{"gametree_serve_solve_requests_total", "Solve requests received.", &s.solveRequests},
		{"gametree_serve_solve_partial_total", "Solves stopped before a verdict and parked for resume.", &s.solvePartial},
		{"gametree_serve_solve_resumed_total", "Solves that continued a parked partial tree.", &s.solveResumed},
	}
	for _, c := range counters {
		if err := telemetry.PromCounter(w, c.name, c.help, c.v.Load()); err != nil {
			return err
		}
	}
	if err := telemetry.PromGauge(w, "gametree_serve_inflight",
		"Requests currently between admission check and response.", s.inflight.Load()); err != nil {
		return err
	}
	if err := telemetry.PromHistogram(w, "gametree_serve_queue_wait_ns",
		"Leader wait for a free engine pool, nanoseconds.", s.queueWaitNs.Snapshot()); err != nil {
		return err
	}
	return telemetry.PromHistogram(w, "gametree_serve_latency_ns",
		"End-to-end request latency, nanoseconds.", s.latencyNs.Snapshot())
}
