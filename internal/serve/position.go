package serve

// Request positions arrive as (game, position) string pairs and must map
// to an engine.Position plus a canonical cache key. The key doubles as
// the singleflight identity, so two requests coalesce exactly when their
// canonical keys (and depth) match.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gametree/internal/engine"
	"gametree/internal/games"
)

// ParseFunc maps a position string to an engine Position and its
// canonical form (the position part of the cache/coalescing key).
type ParseFunc func(position string) (engine.Position, string, error)

var (
	parsersMu sync.RWMutex
	parsers   = map[string]ParseFunc{
		"ttt":      parseTTTPosition,
		"connect4": parseConnect4Position,
		"random":   parseRandomPosition,
		"nim":      parseNimPosition,
		"kayles":   parseKaylesPosition,
	}
)

// RegisterGame adds (or replaces) a game parser. Tests use it to inject
// controllable positions; embedders can use it to serve their own games.
func RegisterGame(name string, parse ParseFunc) {
	parsersMu.Lock()
	defer parsersMu.Unlock()
	parsers[name] = parse
}

// ParsePosition resolves a request's (game, position) pair. The returned
// key is "<game>|<canonical position>", unique across games.
func ParsePosition(game, position string) (engine.Position, string, error) {
	parsersMu.RLock()
	parse := parsers[game]
	parsersMu.RUnlock()
	if parse == nil {
		return nil, "", fmt.Errorf("unknown game %q (want ttt, connect4, random, nim or kayles)", game)
	}
	pos, canon, err := parse(position)
	if err != nil {
		return nil, "", fmt.Errorf("game %s: %w", game, err)
	}
	return pos, game + "|" + canon, nil
}

// parseTTTPosition accepts the 9-character board form of games.ParseTTT
// ("XOX.O..X.", row-major); "" is the empty board. The canonical form is
// the upper-cased board, so case variants coalesce.
func parseTTTPosition(position string) (engine.Position, string, error) {
	if position == "" {
		position = "........."
	}
	canon := strings.ToUpper(position)
	p, err := games.ParseTTT(canon)
	if err != nil {
		return nil, "", err
	}
	return p, canon, nil
}

// parseConnect4Position accepts a sequence of 0-based column digits
// played from the standard 7x6 board ("334" = center, center, col 4); ""
// is the empty board. The move string itself is the canonical form:
// transposed move orders reaching the same grid get distinct keys and
// rely on the shared transposition table, not the result cache.
func parseConnect4Position(position string) (engine.Position, string, error) {
	p := games.StandardConnect4()
	for i, r := range position {
		if r < '0' || r > '9' {
			return nil, "", fmt.Errorf("move %d: column %q is not a digit", i, string(r))
		}
		next := p.Drop(int(r - '0'))
		if next == nil {
			return nil, "", fmt.Errorf("move %d: column %c is full or out of range", i, r)
		}
		p = next
	}
	return p, position, nil
}

// parseIntList accepts comma- or space-separated non-negative decimals
// ("3,5,7" or "3 5 7"), the shared syntax of the nim and kayles
// positions. The canonical form sorts them ascending and drops zero
// entries, so permutations (and empty heaps) coalesce — the game values
// are symmetric in both.
func parseIntList(position, what string, max int) ([]int, string, error) {
	fields := strings.FieldsFunc(position, func(r rune) bool { return r == ',' || r == ' ' })
	if len(fields) == 0 {
		return nil, "", fmt.Errorf("empty %s position", what)
	}
	vals := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, "", fmt.Errorf("%s %q: %w", what, f, err)
		}
		if v < 0 || v > max {
			return nil, "", fmt.Errorf("%s %d out of range [0, %d]", what, v, max)
		}
		if v > 0 {
			vals = append(vals, v)
		}
	}
	sort.Ints(vals)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.Itoa(v)
	}
	canon := strings.Join(parts, ",")
	if canon == "" {
		canon = "0"
	}
	return vals, canon, nil
}

// parseNimPosition accepts Nim heap sizes ("3,5,7"); heaps are capped so
// a request cannot pose an astronomically wide tree.
func parseNimPosition(position string) (engine.Position, string, error) {
	heaps, canon, err := parseIntList(position, "heap", 64)
	if err != nil {
		return nil, "", err
	}
	return games.NewNim(heaps...), canon, nil
}

// parseKaylesPosition accepts Kayles row lengths ("5,6").
func parseKaylesPosition(position string) (engine.Position, string, error) {
	rows, canon, err := parseIntList(position, "row", 64)
	if err != nil {
		return nil, "", err
	}
	return games.NewKayles(rows...), canon, nil
}

// parseRandomPosition accepts "seed" or "seed:branch" (decimal, branch
// defaults to 5) naming a games.RandomTree root. The canonical form
// re-renders both numbers, so leading zeros coalesce.
func parseRandomPosition(position string) (engine.Position, string, error) {
	seedStr, branchStr, hasBranch := strings.Cut(position, ":")
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, "", fmt.Errorf("seed %q: %w", seedStr, err)
	}
	branch := 5
	if hasBranch {
		b, err := strconv.Atoi(branchStr)
		if err != nil {
			return nil, "", fmt.Errorf("branch %q: %w", branchStr, err)
		}
		branch = b
	}
	p := games.NewRandomTree(seed, branch)
	return p, fmt.Sprintf("%d:%d", p.Seed, p.Branch), nil
}
