// Package serve is the resident search service behind cmd/gtserve: an
// HTTP JSON layer that holds a set of resident engine pools over one
// shared transposition table and multiplexes concurrent search requests
// onto them.
//
// Request path:
//
//	decode → admission check (503 while draining) → result cache →
//	singleflight join (duplicates of an in-flight search wait for the
//	leader) → bounded admission queue (429 + Retry-After when full) →
//	acquire a resident pool → search under the request deadline →
//	cache + respond
//
// The pools are built once at New and reused for every request — the
// whole point of the engine's resident-pool refactor: a request costs a
// park/wake cycle on warm workers instead of worker construction, deque
// allocation and goroutine spawns. The shared Table means every request
// searches under the accumulated move-ordering knowledge of all previous
// ones.
//
// Overload semantics: concurrency is bounded by the pool count, queueing
// by QueueDepth *leaders* (coalesced duplicates never hold queue slots).
// Beyond that the server sheds immediately with 429 and a Retry-After
// hint rather than queue without bound; during drain it sheds with 503.
// Every admitted request gets a response — drain waits for in-flight
// requests (cancelling their searches only if the drain grace expires,
// which still produces 5xx responses, never dropped connections).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/engine"
	"gametree/internal/reqtrace"
	"gametree/internal/telemetry"
)

// Config parameterizes a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	// Workers per engine pool (0 = GOMAXPROCS).
	Workers int
	// Pools is the number of resident pools — the maximum number of
	// concurrently running searches (0 = 2).
	Pools int
	// QueueDepth bounds how many leader requests may wait for a pool
	// before new ones are shed with 429 (0 = 64; negative = no queue).
	QueueDepth int
	// TableEntries sizes the shared transposition table (0 = 1<<20).
	TableEntries int
	// CacheEntries bounds the LRU result cache (0 = 4096; negative
	// disables caching).
	CacheEntries int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (0 = 2s). MaxDeadline clamps request deadlines (0 = 30s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxDepth clamps the request depth (0 = 16).
	MaxDepth int
	// SolveMaxNodes caps (and defaults) the expansion budget of one
	// /v1/solve request (0 = 1<<21). Budget-stopped solves return a
	// resumable partial response.
	SolveMaxNodes int64
	// SolveStoreEntries bounds the store of parked partial solvers
	// awaiting resume (0 = 32; negative disables parking).
	SolveStoreEntries int
	// RetryAfter is the hint attached to 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// SplitHorizon is the engine's sequential horizon: subtrees at or
	// below this remaining depth run in place instead of splitting into
	// stealable tasks (0 = the engine default, 2 ply).
	SplitHorizon int
	// SpineOnly disables recursive YBWC splitting in the engine pools:
	// stolen tasks run plain sequential negamax (the pre-YBWC engine).
	// The default (false) lets speculative subtrees split recursively.
	SpineOnly bool
	// Telemetry receives the engine counters of all pools (on disjoint
	// shard ranges) and the serve counter section for /metrics. Nil
	// creates a private recorder so /metrics always works.
	Telemetry *telemetry.Recorder
	// Backend, when non-nil, replaces the resident local pools with an
	// external search executor — the shard coordinator, in the
	// distributed deployment. The request path is unchanged (admission,
	// cache, coalescing, queue, deadline), with Pools bounding the
	// number of concurrently running backend searches; no local table or
	// pools are built.
	Backend Backend
	// Tracer records request-scoped spans for sampled requests (its
	// sample rate decides which headerless requests are traced; an
	// inbound X-GT-Trace header is always honoured) and backs the
	// /debug/gttrace endpoint. Optional (nil = tracing off).
	Tracer *reqtrace.Tracer
	// AccessLog, when non-nil, receives one JSON line per request:
	// trace ID, game, depth, outcome, queue-wait ns, total ns, status.
	// Writes are serialized by the server.
	AccessLog io.Writer
}

// Backend runs one search to completion and returns the exact result.
// Implementations must honour ctx cancellation. The shard tier's
// Coordinator satisfies this interface; nil selects the built-in local
// pool set.
type Backend interface {
	Search(ctx context.Context, game, position string, depth int) (engine.Result, error)
}

func (c *Config) applyDefaults() {
	if c.Pools == 0 {
		c.Pools = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.TableEntries == 0 {
		c.TableEntries = 1 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.SolveMaxNodes == 0 {
		c.SolveMaxNodes = 1 << 21
	}
	if c.SolveStoreEntries == 0 {
		c.SolveStoreEntries = 32
	}
	if c.SolveStoreEntries < 0 {
		c.SolveStoreEntries = 0
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRecorder()
	}
}

// SearchRequest is the POST /v1/search body.
type SearchRequest struct {
	Game     string `json:"game"`     // ttt | connect4 | random
	Position string `json:"position"` // game-specific encoding (see README)
	Depth    int    `json:"depth"`
	// DeadlineMs overrides the server's default per-request deadline,
	// clamped to the configured maximum.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// SearchResponse is the 200 body. Nodes is the node count of the search
// that produced the value — a cached or coalesced response reports the
// producing search's count, not zero.
type SearchResponse struct {
	Game      string  `json:"game"`
	Position  string  `json:"position"` // canonical form
	Depth     int     `json:"depth"`
	Value     int32   `json:"value"`
	Best      int     `json:"best"`
	Nodes     int64   `json:"nodes"`
	ElapsedMs float64 `json:"elapsed_ms"`
	QueueMs   float64 `json:"queue_ms,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	// Degraded marks an answer produced without the full healthy path —
	// the shard backend computed it locally because the worker ring was
	// empty. The value is still exact.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// errOverloaded settles a flight whose leader was shed before searching;
// joiners translate it back to 429.
var errOverloaded = errors.New("serve: overloaded")

// Server is the resident search service. Construct with New, mount
// Handler, and call Drain on shutdown.
type Server struct {
	cfg   Config
	table *engine.Table
	free  chan *engine.Pool // resident pools not currently searching

	queued  atomic.Int64 // leaders waiting for a pool
	flights flightGroup
	cache   *resultCache
	stats   serveStats

	solves     solveFlights // in-flight /v1/solve leaders
	solveCache *solveCache  // completed solve verdicts
	partials   *solverStore // parked partial solvers awaiting resume

	drainMu  sync.RWMutex // guards draining vs inflight.Add
	draining bool
	inflight sync.WaitGroup

	accessMu sync.Mutex // serializes cfg.AccessLog writes

	baseCtx    context.Context // parent of every search ctx; cancelled on hard stop
	baseCancel context.CancelFunc

	mux   *http.ServeMux
	start time.Time
}

// New builds the server and its resident pools. The pools share one
// transposition table and disjoint telemetry shard ranges of
// cfg.Telemetry.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{cfg: cfg, start: time.Now()}
	s.cache = newResultCache(cfg.CacheEntries)
	s.solveCache = newSolveCache(cfg.CacheEntries)
	s.partials = newSolverStore(cfg.SolveStoreEntries)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.free = make(chan *engine.Pool, cfg.Pools)
	if cfg.Backend != nil {
		// Remote backend: the free channel carries nil tokens that bound
		// concurrent backend searches exactly as pools bound local ones.
		for i := 0; i < cfg.Pools; i++ {
			s.free <- nil
		}
	} else {
		s.table = engine.NewTable(cfg.TableEntries)
		workers := 0
		for i := 0; i < cfg.Pools; i++ {
			p := engine.NewPoolOpt(engine.SearchOptions{
				Workers: cfg.Workers, Table: s.table, Telemetry: cfg.Telemetry,
				SplitHorizon: cfg.SplitHorizon, SpineOnly: cfg.SpineOnly,
			}, i*workers)
			workers = p.Workers() // resolve the 0 = GOMAXPROCS default once
			s.free <- p
		}
	}
	cfg.Telemetry.AddPromSection(s.stats.writeProm)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", telemetry.PromHandler(cfg.Telemetry))
	// Nil-safe: with tracing off the endpoint serves an empty dump, so
	// gtobs can always scrape every ring process.
	s.mux.Handle("/debug/gttrace", reqtrace.Handler(cfg.Tracer))
	return s
}

// Handler returns the HTTP handler tree (POST /v1/search, GET /healthz,
// GET /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Table exposes the shared transposition table (for load harnesses that
// want the serve configuration without HTTP).
func (s *Server) Table() *engine.Table { return s.table }

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	start := time.Now()

	// Trace selection: an inbound X-GT-Trace header is always honoured,
	// otherwise the tracer's sampler picks 1-in-N. trace == "" means the
	// request is unsampled and every recording site below no-ops on it —
	// the unsampled path allocates nothing (no wrapper, no context node)
	// unless the access log needs the status anyway.
	trace := r.Header.Get("X-GT-Trace")
	if trace == "" && s.cfg.Tracer.SampleNext() {
		trace = reqtrace.MintID()
	}
	var rec *accessRecord
	if trace != "" || s.cfg.AccessLog != nil {
		sw := &statusWriter{ResponseWriter: w}
		w = sw
		rec = &accessRecord{sw: sw, trace: trace}
		if trace != "" {
			w.Header().Set("X-GT-Trace", trace)
		}
		defer s.finishRequest(rec, start)
	}

	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	pos, posKey, err := ParsePosition(req.Game, req.Position)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if req.Depth < 0 || req.Depth > s.cfg.MaxDepth {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{fmt.Sprintf("depth %d out of range [0, %d]", req.Depth, s.cfg.MaxDepth)})
		return
	}
	if rec != nil {
		rec.game, rec.pos, rec.depth = req.Game, keyPosition(posKey), req.Depth
	}

	// Admission gate: no new work once draining. The RLock pairs with
	// Drain's Lock so a request either sees draining (shed here) or has
	// joined the inflight group before Drain starts waiting — never the
	// gap in between, which would let Drain return with this request
	// unanswered.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)
	defer func() { s.stats.latencyNs.Observe(time.Since(start).Nanoseconds()) }()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	key := posKey + "/d" + strconv.Itoa(req.Depth)
	resp := SearchResponse{Game: req.Game, Position: keyPosition(posKey), Depth: req.Depth}

	if res, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		if rec != nil {
			rec.outcome = "cache-hit"
		}
		resp.fill(res, start, 0)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.stats.cacheMisses.Add(1)

	call, leader := s.flights.join(key)
	if !leader {
		// Coalesce: wait for the leader's search under this request's own
		// deadline. The search itself keeps running on the leader's ctx —
		// one slow joiner times out alone, it does not cancel the others.
		s.stats.coalesced.Add(1)
		if rec != nil {
			rec.outcome = "coalesced"
		}
		select {
		case <-call.done:
		case <-time.After(deadline):
			s.stats.deadlineExceeded.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{"deadline exceeded waiting for coalesced search"})
			return
		case <-s.baseCtx.Done():
			s.stats.rejectedDraining.Add(1)
			s.shed(w, http.StatusServiceUnavailable, "cancelled by shutdown")
			return
		case <-r.Context().Done():
			return // client went away; nothing to answer
		}
		s.respondSettled(w, resp, call, start, 0, true)
		return
	}

	// Leader path: bounded admission queue, then a resident pool.
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.flights.finish(key, call, engine.Result{}, errOverloaded)
		s.stats.rejectedQueue.Add(1)
		s.shed(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	waitStart := time.Now()
	var pool *engine.Pool
	select {
	case pool = <-s.free:
	case <-time.After(deadline):
		s.queued.Add(-1)
		s.flights.finish(key, call, engine.Result{}, errOverloaded)
		s.stats.deadlineExceeded.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "deadline exceeded waiting for a pool")
		return
	case <-s.baseCtx.Done():
		s.queued.Add(-1)
		s.flights.finish(key, call, engine.Result{}, errOverloaded)
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	s.queued.Add(-1)
	queueWait := time.Since(waitStart)
	s.stats.queueWaitNs.Observe(queueWait.Nanoseconds())
	s.stats.admitted.Add(1)
	if rec != nil {
		rec.outcome = "search"
		rec.queueNs = queueWait.Nanoseconds()
	}
	if trace != "" {
		s.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageQueue,
			StartNs: waitStart.UnixNano(), DurNs: queueWait.Nanoseconds(),
		})
	}

	// The search runs detached, under the server's lifetime plus the
	// remaining request budget — decoupled from the leader's connection,
	// so a leader disconnect (or backstop timeout below) does not strand
	// the coalesced joiners, and the pool is reclaimed by this goroutine
	// no matter how the leader's response went.
	budget := deadline - queueWait
	sctx, cancel := context.WithTimeout(s.baseCtx, budget)
	// The trace rides the search context into the backend (the shard
	// coordinator reads it there); coalesced joiners see the leader's
	// trace on the spans, which is where the work actually ran.
	sctx = reqtrace.NewContext(sctx, trace)
	// The degraded flag lets the backend mark an exact-but-degraded
	// answer (coordinator-local compute on an empty worker ring); it is
	// copied onto the flight before it settles so joiners see it too.
	sctx, degradedFlag := WithDegraded(sctx)
	go func() {
		defer cancel()
		var res engine.Result
		var err error
		searchStart := time.Now()
		if pool != nil {
			res, err = pool.Search(sctx, pos, req.Depth)
		} else {
			res, err = s.cfg.Backend.Search(sctx, req.Game, req.Position, req.Depth)
		}
		if trace != "" {
			note := "ok"
			if err != nil {
				note = "err: " + err.Error()
			}
			s.cfg.Tracer.Record(reqtrace.Span{
				Trace: trace, Stage: reqtrace.StageSearch,
				StartNs: searchStart.UnixNano(), DurNs: time.Since(searchStart).Nanoseconds(),
				Note: note,
			})
		}
		s.free <- pool
		if err == nil {
			s.cache.put(key, res)
		}
		call.degraded = degradedFlag.Get() // before finish: done's close publishes it
		s.flights.finish(key, call, res, err)
	}()
	select {
	case <-call.done:
		if call.degraded && rec != nil {
			rec.outcome = "degraded"
		}
		s.respondSettled(w, resp, call, start, queueWait, false)
	case <-time.After(budget + searchGrace):
		// The search did not return even after its ctx expired: it is
		// stuck in Position code that never polls (user-provided games
		// can do that). Answer 504 and abandon it — the goroutine above
		// settles the flight and reclaims the pool if it ever surfaces.
		s.stats.deadlineExceeded.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"search deadline exceeded"})
	case <-s.baseCtx.Done():
		// Hard shutdown: the search ctx is cancelled with the base ctx;
		// answer now rather than racing its unwind.
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "cancelled by shutdown")
	}
}

// searchGrace is the slack between a search ctx expiring and the leader
// giving up on the search returning at all (see the backstop above).
const searchGrace = 250 * time.Millisecond

// statusWriter captures the response status once so the request span
// and access log can report it without touching every write site.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

// accessRecord accumulates one request's identity and outcome as the
// handler learns them; finishRequest turns it into the request span and
// the access-log line. Only allocated for traced or logged requests.
type accessRecord struct {
	sw      *statusWriter
	trace   string
	game    string
	pos     string
	depth   int
	outcome string // cache-hit | coalesced | search | degraded | "" (failed before admission)
	queueNs int64
}

// accessLine is the JSONL access-log schema: one self-contained line per
// request, so request-level data survives without a trace scrape.
type accessLine struct {
	TS      string `json:"ts"`
	Trace   string `json:"trace,omitempty"`
	Game    string `json:"game,omitempty"`
	Pos     string `json:"pos,omitempty"`
	Depth   int    `json:"depth"`
	Outcome string `json:"outcome,omitempty"`
	QueueNs int64  `json:"queue_ns"`
	TotalNs int64  `json:"total_ns"`
	Status  int    `json:"status"`
}

func (s *Server) finishRequest(rec *accessRecord, start time.Time) {
	totalNs := time.Since(start).Nanoseconds()
	status := rec.sw.status
	if status == 0 {
		status = http.StatusOK
	}
	if rec.trace != "" {
		note := strconv.Itoa(status)
		if rec.outcome != "" {
			note += " " + rec.outcome
		}
		s.cfg.Tracer.Record(reqtrace.Span{
			Trace: rec.trace, Stage: reqtrace.StageRequest,
			StartNs: start.UnixNano(), DurNs: totalNs,
			Note: note,
		})
	}
	if s.cfg.AccessLog == nil {
		return
	}
	b, err := json.Marshal(accessLine{
		TS:      start.UTC().Format(time.RFC3339Nano),
		Trace:   rec.trace,
		Game:    rec.game,
		Pos:     rec.pos,
		Depth:   rec.depth,
		Outcome: rec.outcome,
		QueueNs: rec.queueNs,
		TotalNs: totalNs,
		Status:  status,
	})
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.accessMu.Lock()
	_, _ = s.cfg.AccessLog.Write(b)
	s.accessMu.Unlock()
}

// respondSettled renders a settled flight for one waiter (leader or
// joiner).
func (s *Server) respondSettled(w http.ResponseWriter, resp SearchResponse, call *flightCall, start time.Time, queueWait time.Duration, coalesced bool) {
	if err := call.err; err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			s.stats.rejectedQueue.Add(1)
			s.shed(w, http.StatusTooManyRequests, "coalesced leader was shed")
		case errors.Is(err, context.DeadlineExceeded):
			s.stats.deadlineExceeded.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{"search deadline exceeded"})
		case errors.Is(err, engine.ErrCancelled), errors.Is(err, engine.ErrPoolClosed):
			s.stats.rejectedDraining.Add(1)
			s.shed(w, http.StatusServiceUnavailable, "search cancelled by shutdown")
		default:
			s.stats.failed.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		}
		return
	}
	s.stats.completed.Add(1)
	resp.fill(call.res, start, queueWait)
	resp.Coalesced = coalesced
	if call.degraded {
		resp.Degraded = true
		s.stats.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *SearchResponse) fill(res engine.Result, start time.Time, queueWait time.Duration) {
	r.Value = res.Value
	r.Best = res.Best
	r.Nodes = res.Nodes
	r.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6
	r.QueueMs = float64(queueWait.Nanoseconds()) / 1e6
}

// keyPosition strips the "<game>|" prefix off a position key, recovering
// the canonical position string for the response.
func keyPosition(posKey string) string {
	for i := 0; i < len(posKey); i++ {
		if posKey[i] == '|' {
			return posKey[i+1:]
		}
	}
	return posKey
}

// shed writes an overload response with the Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeJSON(w, status, errorResponse{msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	status, code := "ok", http.StatusOK
	if draining {
		// 503 takes a draining instance out of load-balancer rotation.
		status, code = "draining", http.StatusServiceUnavailable
	}
	backend := "local"
	if s.cfg.Backend != nil {
		backend = "shard"
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"backend":     backend,
		"uptime_s":    time.Since(s.start).Seconds(),
		"pools":       s.cfg.Pools,
		"queue_depth": s.cfg.QueueDepth,
		"queued":      s.queued.Load(),
		"inflight":    s.stats.inflight.Load(),
		"cache_len":   s.cache.len(),
	})
}

// Drain performs the graceful shutdown sequence: stop admitting, wait
// for every in-flight request to be answered, then cancel any detached
// searches still running and close the pools. If ctx expires before the
// requests are answered, the in-flight searches are cancelled early —
// their handlers still respond (with 5xx), so no request is dropped
// without a response — and Drain returns ctx.Err() once they have.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return nil
	}
	quiesced := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(quiesced)
	}()
	var err error
	select {
	case <-quiesced:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight searches; handlers respond 5xx
		<-quiesced
	}
	// Handlers are all answered. Cancel searches that outlived their
	// leader (504 backstop) and close the pools as their searches hand
	// them back. A search wedged in Position code that never polls can
	// hold its pool past ctx; those pools are closed by a reaper as they
	// surface rather than holding Drain hostage.
	s.baseCancel()
	for i := 0; i < s.cfg.Pools; i++ {
		select {
		case p := <-s.free:
			if p != nil {
				p.Close()
			}
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			remaining := s.cfg.Pools - i
			go func() {
				for j := 0; j < remaining; j++ {
					if p := <-s.free; p != nil {
						p.Close()
					}
				}
			}()
			return err
		}
	}
	return err
}

// Stats returns a snapshot of the serve counters (for tests and the
// gtserve shutdown report).
func (s *Server) Stats() map[string]int64 {
	return map[string]int64{
		"requests":          s.stats.requests.Load(),
		"admitted":          s.stats.admitted.Load(),
		"rejected_queue":    s.stats.rejectedQueue.Load(),
		"rejected_draining": s.stats.rejectedDraining.Load(),
		"coalesced":         s.stats.coalesced.Load(),
		"cache_hits":        s.stats.cacheHits.Load(),
		"cache_misses":      s.stats.cacheMisses.Load(),
		"deadline_exceeded": s.stats.deadlineExceeded.Load(),
		"completed":         s.stats.completed.Load(),
		"failed":            s.stats.failed.Load(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
