package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gametree/internal/engine"
)

// blockPos is a test position whose leaf evaluation blocks until its
// gate channel is closed, making coalescing/admission/drain timing fully
// deterministic: a search is provably in flight until the test releases
// it.
type blockPos struct {
	id   uint64
	gate chan struct{}
}

func (p blockPos) Moves() []engine.Position { return nil }
func (p blockPos) Evaluate() int32 {
	<-p.gate
	return int32(p.id % 100)
}
func (p blockPos) Hash() uint64 { return p.id }

// blockRegistry hands out gates per position id.
type blockRegistry struct {
	mu    sync.Mutex
	gates map[uint64]chan struct{}
}

func (r *blockRegistry) gate(id uint64) chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gates == nil {
		r.gates = make(map[uint64]chan struct{})
	}
	if r.gates[id] == nil {
		r.gates[id] = make(chan struct{})
	}
	return r.gates[id]
}

func (r *blockRegistry) release(id uint64) { close(r.gate(id)) }

func init() {
	// The "block" game: position string is a decimal id; every search of
	// id N blocks until the test releases gate N.
	RegisterGame("block", func(position string) (engine.Position, string, error) {
		var id uint64
		if _, err := fmt.Sscanf(position, "%d", &id); err != nil {
			return nil, "", err
		}
		return blockPos{id: id, gate: testGates.gate(id)}, position, nil
	})
}

var testGates blockRegistry

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

func postSearch(t *testing.T, url string, req SearchRequest) (int, SearchResponse, errorResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok SearchResponse
	var fail errorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else if err := dec.Decode(&fail); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ok, fail, resp.Header
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSearchTTTExactValue(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1})
	// The empty tic-tac-toe board searched to the full depth is a draw.
	code, ok, fail, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 9})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, fail)
	}
	if ok.Value != 0 {
		t.Fatalf("empty ttt board value %d, want 0 (draw)", ok.Value)
	}
	if ok.Cached || ok.Coalesced {
		t.Fatalf("first search flagged cached=%v coalesced=%v", ok.Cached, ok.Coalesced)
	}
	// The identical request is a cache hit with the same value.
	code, again, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 9})
	if code != http.StatusOK || !again.Cached || again.Value != 0 {
		t.Fatalf("repeat: status %d cached=%v value=%d", code, again.Cached, again.Value)
	}
	if again.Nodes != ok.Nodes {
		t.Fatalf("cached nodes %d != original %d", again.Nodes, ok.Nodes)
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Pools: 1, MaxDepth: 8})
	for _, tc := range []SearchRequest{
		{Game: "nosuch", Depth: 3},
		{Game: "ttt", Position: "XX", Depth: 3},
		{Game: "ttt", Depth: 9}, // beyond MaxDepth 8
		{Game: "ttt", Depth: -1},
		{Game: "connect4", Position: "7", Depth: 3}, // column out of range
		{Game: "random", Position: "nan", Depth: 3}, // bad seed
	} {
		code, _, _, _ := postSearch(t, ts.URL, tc)
		if code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", tc, code)
		}
	}
	if code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "connect4", Position: "333", Depth: 4}); code != http.StatusOK {
		t.Errorf("valid connect4 request got %d", code)
	}
}

func TestCoalescingSharesOneSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	const id = 1001
	results := make(chan SearchResponse, 3)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		code, ok, fail, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: fmt.Sprint(id), Depth: 0, DeadlineMs: 5000})
		if code != http.StatusOK {
			t.Errorf("status %d: %+v", code, fail)
			return
		}
		results <- ok
	}
	wg.Add(1)
	go post()
	// Wait until the leader's search is provably running, then pile on.
	waitFor(t, "leader admitted", func() bool { return s.Stats()["admitted"] == 1 })
	wg.Add(2)
	go post()
	go post()
	waitFor(t, "joiners coalesced", func() bool { return s.Stats()["coalesced"] == 2 })
	testGates.release(id)
	wg.Wait()
	close(results)
	var coalesced int
	for r := range results {
		if r.Value != id%100 {
			t.Errorf("value %d, want %d", r.Value, id%100)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != 2 {
		t.Errorf("coalesced responses %d, want 2", coalesced)
	}
	if st := s.Stats(); st["admitted"] != 1 {
		t.Errorf("admitted %d searches for 3 identical requests", st["admitted"])
	}
}

func TestOverloadShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Pools: 1, QueueDepth: 1})
	// Occupy the only pool.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "2001", Depth: 0, DeadlineMs: 5000})
		if code != http.StatusOK {
			t.Errorf("occupier status %d", code)
		}
	}()
	waitFor(t, "pool occupied", func() bool { return s.Stats()["admitted"] == 1 })
	// Fill the single queue slot with a second distinct position.
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "2002", Depth: 0, DeadlineMs: 5000})
		if code != http.StatusOK {
			t.Errorf("queued status %d", code)
		}
	}()
	waitFor(t, "queue occupied", func() bool { return s.queued.Load() == 1 })
	// The third distinct leader must be shed immediately with 429.
	code, _, _, hdr := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "2003", Depth: 0, DeadlineMs: 5000})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.Stats()["rejected_queue"] == 0 {
		t.Error("rejected_queue counter not bumped")
	}
	testGates.release(2001)
	testGates.release(2002)
	wg.Wait()
}

func TestRequestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	done := make(chan int, 1)
	go func() {
		code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "3001", Depth: 0, DeadlineMs: 50})
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not fire")
	}
	if s.Stats()["deadline_exceeded"] == 0 {
		t.Error("deadline_exceeded counter not bumped")
	}
	testGates.release(3001) // unblock the abandoned search so Drain can finish
}

func TestDrainAnswersInflightAndShedsNew(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	inflight := make(chan int, 1)
	go func() {
		code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "4001", Depth: 0, DeadlineMs: 5000})
		inflight <- code
	}()
	waitFor(t, "search in flight", func() bool { return s.Stats()["admitted"] == 1 })
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, "draining visible", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	// New requests are shed with 503 while the old one is still running.
	code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "4002", Depth: 0})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", code)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a request still in flight", err)
	default:
	}
	testGates.release(4001)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request answered %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain is idempotent and the pools are closed.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDrainGraceCancelsSearches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	inflight := make(chan int, 1)
	go func() {
		// Never released: only the drain grace expiry can end this search.
		code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "block", Position: "5001", Depth: 1, DeadlineMs: 30000})
		inflight <- code
	}()
	waitFor(t, "search in flight", func() bool { return s.Stats()["admitted"] == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("drain err %v, want deadline exceeded", err)
	}
	// The cancelled search still produced a response — 5xx, not a drop.
	select {
	case code := <-inflight:
		if code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
			t.Fatalf("cancelled in-flight request answered %d, want 503/504", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never answered")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s := New(Config{Workers: 1, Pools: 1, CacheEntries: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	c := s.cache
	c.put("a", engine.Result{Value: 1})
	c.put("b", engine.Result{Value: 2})
	c.put("c", engine.Result{Value: 3}) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted")
	}
	if r, ok := c.get("b"); !ok || r.Value != 2 {
		t.Error("b lost")
	}
	c.put("d", engine.Result{Value: 4}) // evicts c (b was just used)
	if _, ok := c.get("c"); ok {
		t.Error("c should have been evicted")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("b lost after second eviction")
	}
}

func TestMetricsEndpointHasServeFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	if code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "random", Position: "77", Depth: 4}); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, family := range []string{
		"gametree_serve_requests_total",
		"gametree_serve_admitted_total 1",
		"gametree_serve_latency_ns_count",
		"gametree_serve_queue_wait_ns_count",
		"gametree_nodes_total", // engine telemetry shares the endpoint
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Pools: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["pools"].(float64) != 3 {
		t.Fatalf("healthz %+v", h)
	}
}

func TestParsePositionKeys(t *testing.T) {
	for _, tc := range []struct {
		game, pos, wantKey string
	}{
		{"ttt", "", "ttt|........."},
		{"ttt", "xox.o..x.", "ttt|XOX.O..X."},
		{"connect4", "33", "connect4|33"},
		{"random", "42", "random|42:5"},
		{"random", "042:7", "random|42:7"},
	} {
		_, key, err := ParsePosition(tc.game, tc.pos)
		if err != nil {
			t.Errorf("%s/%s: %v", tc.game, tc.pos, err)
			continue
		}
		if key != tc.wantKey {
			t.Errorf("%s/%s: key %q, want %q", tc.game, tc.pos, key, tc.wantKey)
		}
	}
}
