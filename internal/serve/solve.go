package serve

// POST /v1/solve: proof-number solving behind the same operational stack
// as /v1/search — drain gate, result cache, singleflight coalescing,
// bounded admission queue, pool tokens, request deadlines. Differences
// that matter:
//
//   - A solve answers a win/loss question; the response carries a
//     verdict plus the root proof/disproof numbers instead of a score.
//   - Long solves can stream: stream=true switches the response to
//     newline-delimited JSON progress frames (root pn/dn, node counts,
//     frontier depth) followed by one final result frame. Streaming
//     requests run attached to the client connection, so a client
//     disconnect cancels the solve and releases the pool workers
//     promptly (the solve-smoke CI job asserts exactly this via the
//     pns counters on /metrics).
//   - A deadline does not produce a 504: the solver's partial tree is
//     parked in a bounded store keyed by canonical position and the
//     response is a 200 with partial=true and the best-so-far numbers.
//     A later request for the same position checks the parked solver
//     out and resumes where it stopped.
//
// Solving requires the local pool substrate; a Backend (shard
// coordinator) deployment answers 501.

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"gametree/internal/engine"
	"gametree/internal/pns"
)

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	Game     string `json:"game"`     // any registered game; nim and kayles are the natural fits
	Position string `json:"position"` // game-specific encoding (see README)
	// DeadlineMs overrides the default per-request deadline, clamped to
	// the configured maximum. On expiry the response is a 200 partial,
	// not a 504 — see Partial below.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// MaxNodes bounds the solve's expansions (0 = server cap; clamped to
	// it otherwise). A budget-stopped solve returns partial=true.
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// Stream switches the response to newline-delimited JSON: progress
	// frames every ProgressMs, then one result frame.
	Stream bool `json:"stream,omitempty"`
	// ProgressMs is the streaming frame interval (0 = 100ms).
	ProgressMs int `json:"progress_ms,omitempty"`
}

// SolveResponse is the result payload — the whole 200 body for unary
// requests, the final frame's "result" field for streaming ones.
type SolveResponse struct {
	Game     string `json:"game"`
	Position string `json:"position"` // canonical form
	// Verdict is "proven" (the side to move wins), "disproven" (loses),
	// or "unknown" (stopped on budget or deadline; see Partial).
	Verdict string `json:"verdict"`
	// PN and DN are the root proof/disproof numbers; 4294967295 stands
	// for infinity. A proven root has pn=0, a disproven one dn=0.
	PN            uint32  `json:"pn"`
	DN            uint32  `json:"dn"`
	Nodes         int64   `json:"nodes"`
	Expands       int64   `json:"expands"`
	FrontierDepth int64   `json:"frontier_depth"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	QueueMs       float64 `json:"queue_ms,omitempty"`
	Cached        bool    `json:"cached,omitempty"`
	Coalesced     bool    `json:"coalesced,omitempty"`
	// Partial marks a solve stopped before a verdict (deadline or node
	// budget). The partial tree is retained server-side: repeating the
	// request resumes it (Resumed on the follow-up response).
	Partial bool `json:"partial,omitempty"`
	// Resumed marks a solve that continued a previously parked partial
	// tree rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`
}

// SolveProgress is one streaming progress frame (wrapped as
// {"progress": {...}} on the wire; the final frame is {"result": {...}}).
type SolveProgress struct {
	PN            uint32  `json:"pn"`
	DN            uint32  `json:"dn"`
	Nodes         int64   `json:"nodes"`
	Expands       int64   `json:"expands"`
	FrontierDepth int64   `json:"frontier_depth"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

// solveOutcome is the settled state of one solve flight.
type solveOutcome struct {
	verdict  pns.Verdict
	progress pns.Progress
	partial  bool
	resumed  bool
}

// solveCall is one in-flight solve; the solve mirror of flightCall.
type solveCall struct {
	done chan struct{}
	out  solveOutcome
	err  error
}

// solveFlights indexes in-flight solves by canonical position key.
type solveFlights struct {
	mu    sync.Mutex
	calls map[string]*solveCall
}

func (g *solveFlights) join(key string) (c *solveCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*solveCall)
	}
	if c := g.calls[key]; c != nil {
		return c, false
	}
	c = &solveCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

func (g *solveFlights) finish(key string, c *solveCall, out solveOutcome, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.out, c.err = out, err
	close(c.done)
}

// solverStore parks partially-solved trees between requests, bounded LRU
// with checkout semantics: take removes the solver, so two concurrent
// requests can never run one solver at once (the loser starts fresh and
// leans on the shared transposition table instead).
type solverStore struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type solverEntry struct {
	key string
	s   *pns.Solver
}

func newSolverStore(capacity int) *solverStore {
	if capacity <= 0 {
		return &solverStore{}
	}
	return &solverStore{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (st *solverStore) take(key string) (*pns.Solver, bool) {
	if st.cap == 0 {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.items[key]
	if !ok {
		return nil, false
	}
	st.ll.Remove(el)
	delete(st.items, key)
	return el.Value.(*solverEntry).s, true
}

func (st *solverStore) put(key string, s *pns.Solver) {
	if st.cap == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.items[key]; ok {
		el.Value.(*solverEntry).s = s
		st.ll.MoveToFront(el)
		return
	}
	st.items[key] = st.ll.PushFront(&solverEntry{key: key, s: s})
	if st.ll.Len() > st.cap {
		oldest := st.ll.Back()
		st.ll.Remove(oldest)
		delete(st.items, oldest.Value.(*solverEntry).key)
	}
}

func (st *solverStore) len() int {
	if st.cap == 0 {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

// solveProgressInterval is the default streaming frame cadence.
const solveProgressInterval = 100 * time.Millisecond

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.stats.solveRequests.Add(1)
	start := time.Now()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	if s.cfg.Backend != nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{"solve requires local pools (shard backend configured)"})
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	pos, posKey, err := ParsePosition(req.Game, req.Position)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	// Admission gate: identical to /v1/search (see handleSearch).
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)
	defer func() { s.stats.latencyNs.Observe(time.Since(start).Nanoseconds()) }()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	maxNodes := req.MaxNodes
	if maxNodes <= 0 || maxNodes > s.cfg.SolveMaxNodes {
		maxNodes = s.cfg.SolveMaxNodes
	}

	key := "solve!" + posKey
	resp := SolveResponse{Game: req.Game, Position: keyPosition(posKey)}

	if out, ok := s.solveCache.get(key); ok {
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		resp.fill(out, start, 0)
		resp.Cached = true
		if req.Stream {
			writeSolveStream(w, resp, nil)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.stats.cacheMisses.Add(1)

	if req.Stream {
		s.streamSolve(w, r, pos, posKey, key, resp, deadline, maxNodes, req.ProgressMs, start)
		return
	}

	call, leader := s.solves.join(key)
	if !leader {
		s.stats.coalesced.Add(1)
		select {
		case <-call.done:
		case <-time.After(deadline):
			s.stats.deadlineExceeded.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{"deadline exceeded waiting for coalesced solve"})
			return
		case <-s.baseCtx.Done():
			s.stats.rejectedDraining.Add(1)
			s.shed(w, http.StatusServiceUnavailable, "cancelled by shutdown")
			return
		case <-r.Context().Done():
			return
		}
		s.respondSolve(w, resp, call, start, 0, true)
		return
	}

	// Leader path: bounded admission queue, then a resident pool.
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.solves.finish(key, call, solveOutcome{}, errOverloaded)
		s.stats.rejectedQueue.Add(1)
		s.shed(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	waitStart := time.Now()
	var pool *engine.Pool
	select {
	case pool = <-s.free:
	case <-time.After(deadline):
		s.queued.Add(-1)
		s.solves.finish(key, call, solveOutcome{}, errOverloaded)
		s.stats.deadlineExceeded.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "deadline exceeded waiting for a pool")
		return
	case <-s.baseCtx.Done():
		s.queued.Add(-1)
		s.solves.finish(key, call, solveOutcome{}, errOverloaded)
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	s.queued.Add(-1)
	queueWait := time.Since(waitStart)
	s.stats.queueWaitNs.Observe(queueWait.Nanoseconds())
	s.stats.admitted.Add(1)

	// Detached like a search leader: the solve survives a leader
	// disconnect for the sake of coalesced joiners, and the pool token is
	// returned by this goroutine no matter how the response went.
	budget := deadline - queueWait
	sctx, cancel := context.WithTimeout(s.baseCtx, budget)
	go func() {
		defer cancel()
		out, err := s.runSolve(sctx, pool, posKey, pos, maxNodes)
		s.free <- pool
		if err == nil && !out.partial {
			s.solveCache.put(key, out)
		}
		s.solves.finish(key, call, out, err)
	}()
	select {
	case <-call.done:
		s.respondSolve(w, resp, call, start, queueWait, false)
	case <-time.After(budget + searchGrace):
		// Solver loops poll their stop predicate every descent, so this
		// fires only if Position code wedged without returning.
		s.stats.deadlineExceeded.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"solve deadline exceeded"})
	case <-s.baseCtx.Done():
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "cancelled by shutdown")
	}
}

// runSolve checks out (or creates) the solver for posKey, runs it on
// pool, and re-parks it when it stops without a verdict. A deadline
// expiry is not an error here: the caller answers 200 with the partial
// state — that is the /v1/solve contract. Other cancellations (drain,
// pool close, panic) surface as errors.
func (s *Server) runSolve(ctx context.Context, pool *engine.Pool, posKey string, pos engine.Position, maxNodes int64) (solveOutcome, error) {
	solver, resumed := s.partials.take(posKey)
	if resumed {
		s.stats.solveResumed.Add(1)
		// The request budget is incremental on resume: the parked tree
		// already spent its previous budget.
		solver.SetMaxNodes(solver.Progress().Expands + maxNodes)
	} else {
		solver = pns.New(pos, pns.Options{Table: s.table, MaxNodes: maxNodes})
	}
	res, err := solver.SolveParallel(ctx, pool)
	out := solveOutcome{
		verdict:  res.Verdict,
		progress: solver.Progress(),
		resumed:  resumed,
	}
	if res.Verdict == pns.Unknown {
		out.partial = true
		s.partials.put(posKey, solver)
		s.stats.solvePartial.Add(1)
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		err = nil // deadline → 200 with partial state, never 504
	}
	return out, err
}

// respondSolve renders a settled solve flight for one waiter.
func (s *Server) respondSolve(w http.ResponseWriter, resp SolveResponse, call *solveCall, start time.Time, queueWait time.Duration, coalesced bool) {
	if err := call.err; err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			s.stats.rejectedQueue.Add(1)
			s.shed(w, http.StatusTooManyRequests, "coalesced leader was shed")
		case errors.Is(err, engine.ErrCancelled), errors.Is(err, engine.ErrPoolClosed):
			s.stats.rejectedDraining.Add(1)
			s.shed(w, http.StatusServiceUnavailable, "solve cancelled by shutdown")
		default:
			s.stats.failed.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		}
		return
	}
	s.stats.completed.Add(1)
	resp.fill(call.out, start, queueWait)
	resp.Coalesced = coalesced
	writeJSON(w, http.StatusOK, resp)
}

func (r *SolveResponse) fill(out solveOutcome, start time.Time, queueWait time.Duration) {
	r.Verdict = out.verdict.String()
	r.PN = out.progress.PN
	r.DN = out.progress.DN
	r.Nodes = out.progress.Nodes
	r.Expands = out.progress.Expands
	r.FrontierDepth = out.progress.FrontierDepth
	r.Partial = out.partial
	r.Resumed = out.resumed
	r.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6
	r.QueueMs = float64(queueWait.Nanoseconds()) / 1e6
}

// streamSolve runs the solve attached to the client connection and
// streams progress frames. Streaming requests skip coalescing — each
// client gets its own frame cadence — but still pay the admission queue
// and a pool token, and still park partial trees for resume.
func (s *Server) streamSolve(w http.ResponseWriter, r *http.Request, pos engine.Position, posKey, cacheKey string, resp SolveResponse, deadline time.Duration, maxNodes int64, progressMs int, start time.Time) {
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.stats.rejectedQueue.Add(1)
		s.shed(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	waitStart := time.Now()
	var pool *engine.Pool
	select {
	case pool = <-s.free:
	case <-time.After(deadline):
		s.queued.Add(-1)
		s.stats.deadlineExceeded.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "deadline exceeded waiting for a pool")
		return
	case <-s.baseCtx.Done():
		s.queued.Add(-1)
		s.stats.rejectedDraining.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "shutting down")
		return
	case <-r.Context().Done():
		s.queued.Add(-1)
		return
	}
	s.queued.Add(-1)
	queueWait := time.Since(waitStart)
	s.stats.queueWaitNs.Observe(queueWait.Nanoseconds())
	s.stats.admitted.Add(1)

	// Attached context: client disconnect cancels the solve, which is
	// what releases the pool workers promptly mid-stream. Server
	// shutdown (baseCtx) must cut in too.
	budget := deadline - queueWait
	sctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel)
	defer stopWatch()

	solver, resumed := s.partials.take(posKey)
	if resumed {
		s.stats.solveResumed.Add(1)
		// The request budget is incremental on resume: the parked tree
		// already spent its previous budget.
		solver.SetMaxNodes(solver.Progress().Expands + maxNodes)
	} else {
		solver = pns.New(pos, pns.Options{Table: s.table, MaxNodes: maxNodes})
	}

	type solveDone struct {
		res pns.Result
		err error
	}
	doneCh := make(chan solveDone, 1)
	go func() {
		res, err := solver.SolveParallel(sctx, pool)
		s.free <- pool
		doneCh <- solveDone{res, err}
	}()

	interval := solveProgressInterval
	if progressMs > 0 {
		interval = time.Duration(progressMs) * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-ticker.C:
			p := solver.Progress()
			frame := SolveProgress{
				PN: p.PN, DN: p.DN, Nodes: p.Nodes, Expands: p.Expands,
				FrontierDepth: p.FrontierDepth,
				ElapsedMs:     float64(time.Since(start).Nanoseconds()) / 1e6,
			}
			if err := enc.Encode(map[string]SolveProgress{"progress": frame}); err != nil {
				// Client gone: cancel and wait for the workers to unwind
				// so the pool token is back before we return.
				cancel()
				<-doneCh
				s.parkPartial(posKey, solver)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case d := <-doneCh:
			out := solveOutcome{verdict: d.res.Verdict, progress: solver.Progress(), resumed: resumed}
			if d.res.Verdict == pns.Unknown {
				out.partial = true
				s.parkPartial(posKey, solver)
			} else if d.err == nil {
				s.solveCache.put(cacheKey, out)
			}
			if d.err != nil && !errors.Is(d.err, context.DeadlineExceeded) && !errors.Is(d.err, context.Canceled) {
				s.stats.failed.Add(1)
				writeSolveStream(w, resp, fmt.Errorf("solve failed: %w", d.err))
				return
			}
			s.stats.completed.Add(1)
			resp.fill(out, start, queueWait)
			writeSolveStream(w, resp, nil)
			return
		}
	}
}

// parkPartial stores a stopped solver for resume and bumps the counter.
func (s *Server) parkPartial(posKey string, solver *pns.Solver) {
	s.partials.put(posKey, solver)
	s.stats.solvePartial.Add(1)
}

// writeSolveStream emits the final frame of a streaming response (the
// status line is already written, so errors ride inside the stream).
func writeSolveStream(w http.ResponseWriter, resp SolveResponse, err error) {
	enc := json.NewEncoder(w)
	if err != nil {
		_ = enc.Encode(map[string]string{"error": err.Error()})
	} else {
		_ = enc.Encode(map[string]SolveResponse{"result": resp})
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// SolveStats reports the solve-path counters (tests, shutdown report).
func (s *Server) SolveStats() map[string]int64 {
	return map[string]int64{
		"solve_requests": s.stats.solveRequests.Load(),
		"solve_partial":  s.stats.solvePartial.Load(),
		"solve_resumed":  s.stats.solveResumed.Load(),
		"parked_solvers": int64(s.partials.len()),
	}
}

// solveCache is a bounded LRU of completed (non-partial) solve
// outcomes — the solve twin of resultCache.
type solveCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type solveCacheEntry struct {
	key string
	out solveOutcome
}

func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		return &solveCache{}
	}
	return &solveCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *solveCache) get(key string) (solveOutcome, bool) {
	if c.cap == 0 {
		return solveOutcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return solveOutcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*solveCacheEntry).out, true
}

func (c *solveCache) put(key string, out solveOutcome) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*solveCacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&solveCacheEntry{key: key, out: out})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*solveCacheEntry).key)
	}
}
