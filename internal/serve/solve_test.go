package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func postSolve(t *testing.T, url string, req SolveRequest) (int, SolveResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok SolveResponse
	var fail errorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else if err := dec.Decode(&fail); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ok, fail
}

// TestSolveVerdicts checks exact Sprague-Grundy verdicts over the wire:
// nim with nonzero xor is proven, zero xor disproven; same for Kayles
// Grundy values.
func TestSolveVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1})
	cases := []struct {
		game, pos string
		proven    bool
	}{
		{"nim", "1,2,3", false}, // 1^2^3 = 0
		{"nim", "1,2,4", true},
		{"nim", "5,5", false},
		{"nim", "7", true},
		{"kayles", "1", true},
		{"kayles", "3,2,1", false}, // 3^2^1 = 0 in Grundy values for rows ≤ 3
		{"kayles", "5,6", true},    // 4^3 = 7
	}
	for _, tc := range cases {
		code, ok, fail := postSolve(t, ts.URL, SolveRequest{Game: tc.game, Position: tc.pos})
		if code != http.StatusOK {
			t.Fatalf("%s %s: status %d: %+v", tc.game, tc.pos, code, fail)
		}
		want := "disproven"
		if tc.proven {
			want = "proven"
		}
		if ok.Verdict != want {
			t.Fatalf("%s %s: verdict %q, want %q", tc.game, tc.pos, ok.Verdict, want)
		}
		if tc.proven && ok.PN != 0 {
			t.Fatalf("%s %s: proven with pn=%d", tc.game, tc.pos, ok.PN)
		}
		if !tc.proven && ok.DN != 0 {
			t.Fatalf("%s %s: disproven with dn=%d", tc.game, tc.pos, ok.DN)
		}
	}

	// Identical repeat: served from the solve cache.
	code, again, _ := postSolve(t, ts.URL, SolveRequest{Game: "nim", Position: "1,2,4"})
	if code != http.StatusOK || !again.Cached || again.Verdict != "proven" {
		t.Fatalf("repeat: status %d cached=%v verdict=%q", code, again.Cached, again.Verdict)
	}

	// Heap permutations canonicalize to one key: also a cache hit.
	code, perm, _ := postSolve(t, ts.URL, SolveRequest{Game: "nim", Position: "4 1 2"})
	if code != http.StatusOK || !perm.Cached {
		t.Fatalf("permuted heaps missed the cache: status %d cached=%v", code, perm.Cached)
	}
}

// TestSolveValidation covers the 4xx/501 paths.
func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Pools: 1})
	for _, tc := range []SolveRequest{
		{Game: "nosuch", Position: "1"},
		{Game: "nim", Position: "x,2"},
		{Game: "nim", Position: ""},
		{Game: "kayles", Position: "1,-2"},
		{Game: "nim", Position: "9999"}, // heap beyond cap
	} {
		code, _, _ := postSolve(t, ts.URL, tc)
		if code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", tc, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestSolveBackend501 pins that a shard-backend deployment refuses
// solves explicitly instead of panicking on nil pools.
func TestSolveBackend501(t *testing.T) {
	_, ts := newTestServer(t, Config{Pools: 1, Backend: &fakeBackend{}})
	code, _, fail := postSolve(t, ts.URL, SolveRequest{Game: "nim", Position: "1,2,4"})
	if code != http.StatusNotImplemented {
		t.Fatalf("status %d (%+v), want 501", code, fail)
	}
}

// TestSolveDeadlinePartialResume: a tiny node budget stops the solve
// with a 200 partial (never 504), parks the tree, and the repeat
// request resumes it — visible as resumed=true and continued counters.
func TestSolveDeadlinePartialResume(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Pools: 1})
	req := SolveRequest{Game: "nim", Position: "9,10,11,12", MaxNodes: 50}
	code, first, fail := postSolve(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, fail)
	}
	if !first.Partial || first.Verdict != "unknown" {
		t.Fatalf("budget-stopped solve: partial=%v verdict=%q", first.Partial, first.Verdict)
	}
	if got := s.SolveStats()["parked_solvers"]; got != 1 {
		t.Fatalf("parked_solvers = %d, want 1", got)
	}

	code, second, _ := postSolve(t, ts.URL, req)
	if code != http.StatusOK || !second.Resumed {
		t.Fatalf("repeat: status %d resumed=%v", code, second.Resumed)
	}
	if second.Expands <= first.Expands {
		t.Fatalf("resume did not continue: %d then %d expands", first.Expands, second.Expands)
	}

	// A real deadline expiry behaves the same: 200 + partial, not 504.
	code, dl, fail := postSolve(t, ts.URL,
		SolveRequest{Game: "nim", Position: "11,12,13,14", DeadlineMs: 30})
	if code != http.StatusOK {
		t.Fatalf("deadline solve: status %d (%+v), want 200 partial", code, fail)
	}
	if !dl.Partial {
		t.Fatalf("deadline solve finished?! %+v", dl)
	}
}

// TestSolveStream reads the newline-delimited streaming response: zero
// or more progress frames, then exactly one result frame with the right
// verdict.
func TestSolveStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1})
	body, _ := json.Marshal(SolveRequest{
		Game: "nim", Position: "4,5,6", Stream: true, ProgressMs: 5,
	})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	var result *SolveResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame struct {
			Progress *SolveProgress `json:"progress"`
			Result   *SolveResponse `json:"result"`
			Error    string         `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if frame.Error != "" {
			t.Fatalf("stream error: %s", frame.Error)
		}
		if frame.Result != nil {
			if result != nil {
				t.Fatal("two result frames")
			}
			result = frame.Result
		} else if frame.Progress == nil {
			t.Fatalf("frame %q is neither progress nor result", sc.Text())
		} else if result != nil {
			t.Fatal("progress frame after the result frame")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if result == nil {
		t.Fatal("stream ended without a result frame")
	}
	if result.Verdict != "proven" { // 4^5^6 = 7 ≠ 0
		t.Fatalf("verdict %q, want proven", result.Verdict)
	}
}

// TestSolveStreamClientCancel drops the connection mid-solve and
// asserts the workers unwind promptly: the pool token must come back
// (a follow-up solve succeeds quickly) and the partial tree is parked.
func TestSolveStreamClientCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Pools: 1, MaxDeadline: time.Minute})
	body, _ := json.Marshal(SolveRequest{
		Game: "nim", Position: "12,13,14,15", Stream: true,
		DeadlineMs: 60000, ProgressMs: 5,
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one progress frame so the solve is provably running, then
	// drop the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first frame: %v", sc.Err())
	}
	resp.Body.Close()

	// Worker release: the single pool must serve a fresh solve soon.
	waitFor(t, "parked partial solver", func() bool {
		return s.SolveStats()["parked_solvers"] >= 1
	})
	code, ok, fail := postSolve(t, ts.URL, SolveRequest{Game: "nim", Position: "1,2,4"})
	if code != http.StatusOK || ok.Verdict != "proven" {
		t.Fatalf("post-cancel solve: status %d %+v %+v", code, ok, fail)
	}
}

// TestSolveCoalescing: concurrent identical unary solves share one
// leader.
func TestSolveCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Pools: 1})
	const n = 4
	type res struct {
		code int
		ok   SolveResponse
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		go func() {
			code, ok, _ := postSolve(t, ts.URL, SolveRequest{Game: "nim", Position: "6,7,8,9"})
			results <- res{code, ok}
		}()
	}
	coalesced := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if r.ok.Verdict != "disproven" { // 6^7^8^9 = 0
			t.Fatalf("verdict %q", r.ok.Verdict)
		}
		if r.ok.Coalesced {
			coalesced++
		}
	}
	// Timing may let some requests arrive after completion (cache hits);
	// the stats must show every request answered and none failed.
	if s.Stats()["failed"] != 0 {
		t.Fatalf("failed searches: %+v", s.Stats())
	}
	_ = coalesced // any split between coalesced/cached/leader is legal
}
