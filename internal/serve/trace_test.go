package serve

// The serving layer's half of the request-trace contract: header
// adoption and echo, 1-in-N sampling, the request/queue/search spans,
// and the JSONL access log.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"

	"gametree/internal/reqtrace"
)

// syncBuf is an io.Writer safe to read while the server writes.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func tracerSpans(tr *reqtrace.Tracer, trace, stage string) []reqtrace.Span {
	spans, _ := tr.Spans()
	var out []reqtrace.Span
	for _, s := range spans {
		if s.Trace == trace && s.Stage == stage {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceHeaderAdopted: an inbound X-GT-Trace is honoured regardless
// of sampling, echoed on the response, and stamps the request, queue and
// search spans.
func TestTraceHeaderAdopted(t *testing.T) {
	tr := reqtrace.New(0, "single", 0, 0) // sampling off: only the header opts in
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1, Tracer: tr})

	body, _ := json.Marshal(SearchRequest{Game: "ttt", Depth: 3})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(body))
	req.Header.Set("X-GT-Trace", "tr-serve-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GT-Trace"); got != "tr-serve-1" {
		t.Fatalf("echoed trace header: got %q, want tr-serve-1", got)
	}
	reqs := tracerSpans(tr, "tr-serve-1", reqtrace.StageRequest)
	if len(reqs) != 1 {
		t.Fatalf("request spans: got %d, want 1", len(reqs))
	}
	if !strings.HasPrefix(reqs[0].Note, "200") {
		t.Errorf("request span note: got %q, want 200 ...", reqs[0].Note)
	}
	if n := len(tracerSpans(tr, "tr-serve-1", reqtrace.StageQueue)); n != 1 {
		t.Errorf("queue spans: got %d, want 1", n)
	}
	// The search span is recorded by the detached search goroutine and
	// can trail the response.
	waitFor(t, "search span", func() bool {
		return len(tracerSpans(tr, "tr-serve-1", reqtrace.StageSearch)) == 1
	})
}

// TestTraceSampling: sample 1 mints an ID for headerless requests;
// sample 0 leaves them untraced with zero recorded spans.
func TestTraceSampling(t *testing.T) {
	tr := reqtrace.New(0, "single", 1, 0)
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1, Tracer: tr})
	code, _, _, hdr := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	id := hdr.Get("X-GT-Trace")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("minted trace ID %q, want 16 hex digits", id)
	}
	if n := len(tracerSpans(tr, id, reqtrace.StageRequest)); n != 1 {
		t.Errorf("request spans for minted ID: got %d, want 1", n)
	}

	off := reqtrace.New(0, "single", 0, 0)
	_, ts2 := newTestServer(t, Config{Workers: 2, Pools: 1, Tracer: off})
	code, _, _, hdr = postSearch(t, ts2.URL, SearchRequest{Game: "ttt", Depth: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := hdr.Get("X-GT-Trace"); got != "" {
		t.Errorf("unsampled response carries trace header %q", got)
	}
	if spans, _ := off.Spans(); len(spans) != 0 {
		t.Errorf("unsampled requests recorded %d spans", len(spans))
	}
}

// TestAccessLog: one JSON line per request — leader search, cache hit
// and a 4xx — each with outcome, latency and status.
func TestAccessLog(t *testing.T) {
	tr := reqtrace.New(0, "single", 1, 0)
	var buf syncBuf
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1, Tracer: tr, AccessLog: &buf})

	if code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 2}); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if code, ok, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 2}); code != 200 || !ok.Cached {
		t.Fatalf("expected cache hit, got status %d cached=%v", code, ok.Cached)
	}
	if code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "nope", Depth: 2}); code != http.StatusBadRequest {
		t.Fatalf("bad game status %d", code)
	}

	waitFor(t, "3 access-log lines", func() bool {
		return strings.Count(buf.String(), "\n") == 3
	})
	type line struct {
		Trace   string `json:"trace"`
		Game    string `json:"game"`
		Depth   int    `json:"depth"`
		Outcome string `json:"outcome"`
		QueueNs int64  `json:"queue_ns"`
		TotalNs int64  `json:"total_ns"`
		Status  int    `json:"status"`
	}
	var lines []line
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad access-log line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	if lines[0].Outcome != "search" || lines[0].Status != 200 || lines[0].Game != "ttt" ||
		lines[0].Depth != 2 || lines[0].Trace == "" || lines[0].TotalNs <= 0 {
		t.Errorf("leader line: %+v", lines[0])
	}
	if lines[1].Outcome != "cache-hit" || lines[1].Status != 200 {
		t.Errorf("cache-hit line: %+v", lines[1])
	}
	if lines[2].Status != http.StatusBadRequest || lines[2].Outcome != "" {
		t.Errorf("bad-request line: %+v", lines[2])
	}
}

// TestGTTraceEndpoint: the mux serves /debug/gttrace with the process
// dump (and an empty dump when tracing is off).
func TestGTTraceEndpoint(t *testing.T) {
	tr := reqtrace.New(0, "single", 1, 0)
	_, ts := newTestServer(t, Config{Workers: 2, Pools: 1, Tracer: tr})
	if code, _, _, _ := postSearch(t, ts.URL, SearchRequest{Game: "ttt", Depth: 2}); code != 200 {
		t.Fatalf("search failed")
	}
	resp, err := http.Get(ts.URL + "/debug/gttrace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d reqtrace.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Role != "single" || d.Sample != 1 || len(d.Spans) == 0 {
		t.Errorf("dump: role=%q sample=%d spans=%d", d.Role, d.Sample, len(d.Spans))
	}
}
