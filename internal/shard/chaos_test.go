package shard

// The shard-protocol chaos matrix: the whole tier — coordinator, two
// workers, task/result/ping/hello/TT traffic — runs over one shared
// faultnet.Injector, and every fault kind the injector knows must leave
// root values bit-identical to the sequential engine, with membership
// converging back to a full ring (same epoch everywhere) once the fault
// schedule heals. Seeded and repeated, so a regression in the reissue,
// fencing or rejoin machinery fails deterministically.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
)

// chaosHub adapts one shared Injector into per-process faultnet.Network
// views, so an in-process cluster's traffic all flows through a single
// seeded fault schedule — the in-memory analogue of the multi-process
// deployment's network.
type chaosHub struct {
	inj   *faultnet.Injector
	start time.Time // fault-clock origin: when the injector started

	mu       sync.Mutex
	handlers map[int]func(faultnet.Packet)
}

func newChaosHub(cfg faultnet.Config) *chaosHub {
	h := &chaosHub{
		inj:      faultnet.NewInjector(cfg),
		handlers: make(map[int]func(faultnet.Packet)),
	}
	// The injector starts (and its fault clock begins) before any view
	// registers; packets to an unregistered processor fall on the floor,
	// matching a process that has not bound its listener yet.
	h.start = time.Now()
	h.inj.Start(h.dispatch)
	return h
}

func (h *chaosHub) dispatch(pkt faultnet.Packet) {
	h.mu.Lock()
	fn := h.handlers[pkt.To]
	h.mu.Unlock()
	if fn != nil {
		fn(pkt)
	}
}

func (h *chaosHub) view(proc int) *hubView { return &hubView{h: h, proc: proc} }

type hubView struct {
	h    *chaosHub
	proc int
}

func (v *hubView) Start(deliver func(faultnet.Packet)) {
	v.h.mu.Lock()
	v.h.handlers[v.proc] = deliver
	v.h.mu.Unlock()
}

func (v *hubView) Send(pkt faultnet.Packet) { v.h.inj.Send(pkt) }

func (v *hubView) Alive(proc int) bool { return v.h.inj.Alive(proc) }

func (v *hubView) StalledUntil(proc int) (time.Time, bool) { return v.h.inj.StalledUntil(proc) }

// Close is a no-op: the hub (and injector) outlive every per-process
// view and are closed once by the test.
func (v *hubView) Close() {}

func (v *hubView) Stats() faultnet.Stats { return v.h.inj.Stats() }

// chaosCase is one position searched repeatedly through the fault window.
type chaosCase struct {
	game, pos string
	depth     int
}

func TestShardChaosMatrix(t *testing.T) {
	const (
		taskTimeout = 100 * time.Millisecond
		deadAfter   = 250 * time.Millisecond
	)
	scenarios := []struct {
		name string
		cfg  faultnet.Config
		// healAt is when the last scheduled fault window closes; 0 for
		// stochastic faults that never stop (drop/dup/...), where healing
		// is not expected and convergence is asserted on injector-alive
		// processors under the ongoing fault load.
		healAt time.Duration
	}{
		{name: "drop", cfg: faultnet.Config{Drop: 0.15}},
		{name: "dup", cfg: faultnet.Config{Dup: 0.3}},
		{name: "reorder", cfg: faultnet.Config{Reorder: 0.5, DelayMax: 20 * time.Millisecond}},
		{name: "delay", cfg: faultnet.Config{Delay: 0.5, DelayMax: 40 * time.Millisecond}},
		{name: "crash", cfg: faultnet.Config{
			Crashes: []faultnet.ProcCrash{{Proc: 2, At: 250 * time.Millisecond}},
		}},
		// Stall longer than DeadAfter: a false death — the worker must be
		// declared dead, then rejoin with the same boot nonce.
		{name: "stall", cfg: faultnet.Config{
			Stalls: []faultnet.ProcStall{{Proc: 1, At: 150 * time.Millisecond, For: 600 * time.Millisecond}},
		}, healAt: 750 * time.Millisecond},
		// Coordinator–worker partition longer than DeadAfter: same false
		// death, but the worker keeps computing and its post-heal answers
		// for superseded issues are exactly what the fence exists for.
		{name: "partition", cfg: faultnet.Config{
			Partitions: []faultnet.LinkPartition{{A: 0, B: 1, At: 150 * time.Millisecond, For: 500 * time.Millisecond}},
		}, healAt: 650 * time.Millisecond},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	cases := []chaosCase{
		{"random", "11:3", 4},
		{"ttt", "X...O....", 4},
		{"random", "7:2", 5},
		{"connect4", "33", 3},
	}
	wants := make([]engine.Result, len(cases))
	for i, c := range cases {
		wants[i] = reference(t, c.game, c.pos, c.depth)
	}

	for _, sc := range scenarios {
		for _, seed := range seeds {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := sc.cfg
				cfg.Seed = seed
				hub := newChaosHub(cfg)

				procs := []int{1, 2}
				var workers []*Worker
				for _, p := range procs {
					w := NewWorker(WorkerConfig{
						Net:          hub.view(p),
						Self:         p,
						Coordinator:  0,
						Workers:      procs,
						PoolWorkers:  2,
						TableEntries: 1 << 12,
						PingEvery:    25 * time.Millisecond,
					})
					w.Start()
					workers = append(workers, w)
				}
				pool := engine.NewPoolOpt(engine.SearchOptions{Workers: 2}, 0)
				coord := NewCoordinator(Config{
					Net:         hub.view(0),
					Self:        0,
					Workers:     procs,
					ExpandDepth: 1,
					TaskTimeout: taskTimeout,
					DeadAfter:   deadAfter,
					HelloEvery:  50 * time.Millisecond,
					RetryBudget: 50, // ride out the whole fault window on retries
					Fallback:    pool,
				})
				coord.Start()
				t.Cleanup(func() {
					coord.Close()
					for _, w := range workers {
						w.Close()
					}
					pool.Close()
					hub.inj.Close()
				})

				ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
				defer cancel()

				// Phase 1: search straight through the fault window. Every
				// answer must be bit-identical to the sequential engine no
				// matter what the injector does to the protocol.
				end := time.Now().Add(1200 * time.Millisecond)
				for i := 0; time.Now().Before(end); i++ {
					c := cases[i%len(cases)]
					want := wants[i%len(cases)]
					got, err := coord.Search(ctx, c.game, c.pos, c.depth)
					if err != nil {
						t.Fatalf("search %s %q under chaos: %v", c.game, c.pos, err)
					}
					if got.Value != want.Value || got.Best != want.Best {
						t.Fatalf("%s %q d=%d under chaos: got (v=%d best=%d), sequential (v=%d best=%d)",
							c.game, c.pos, c.depth, got.Value, got.Best, want.Value, want.Best)
					}
				}

				// Phase 2: wait out any scheduled fault windows, then require
				// membership to converge — every injector-alive worker back in
				// the ring and caught up to the coordinator's epoch.
				if sc.healAt > 0 {
					time.Sleep(time.Until(hubStart(hub).Add(sc.healAt)))
				}
				converged := func() bool {
					for i, p := range procs {
						if !hub.inj.Alive(p) {
							continue // injector-crashed: stays out by design
						}
						if !coord.Alive(p) || workers[i].Epoch() != coord.Epoch() {
							return false
						}
					}
					return true
				}
				deadline := time.Now().Add(30 * time.Second)
				for !converged() {
					if time.Now().After(deadline) {
						for i, p := range procs {
							t.Logf("proc %d: injAlive=%v coordAlive=%v workerEpoch=%d coordEpoch=%d",
								p, hub.inj.Alive(p), coord.Alive(p), workers[i].Epoch(), coord.Epoch())
						}
						t.Fatal("membership never converged after the fault window")
					}
					time.Sleep(5 * time.Millisecond)
				}

				// Phase 3: a post-heal burst stays exact.
				for i, c := range cases {
					got, err := coord.Search(ctx, c.game, c.pos, c.depth)
					if err != nil {
						t.Fatalf("post-heal search %s %q: %v", c.game, c.pos, err)
					}
					if got.Value != wants[i].Value || got.Best != wants[i].Best {
						t.Fatalf("post-heal %s %q: got (v=%d best=%d), sequential (v=%d best=%d)",
							c.game, c.pos, got.Value, got.Best, wants[i].Value, wants[i].Best)
					}
				}
			})
		}
	}
}

// hubStart recovers the injector's fault-clock origin: scheduled windows
// are relative to Injector.Start, which newChaosHub calls at build time.
func hubStart(h *chaosHub) time.Time { return h.start }
