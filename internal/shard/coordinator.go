package shard

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

// PeerSetter is the optional transport capability the tier uses to
// spread addresses at runtime: the TCP transport implements it, the
// in-memory fault injector does not need it.
type PeerSetter interface {
	SetPeer(proc int, addr string)
}

// restartNotifier is the optional transport capability that reports a
// fresh process answering on a known address (transport.TCP implements
// it via its connection preamble). The coordinator uses it to expire a
// restarted worker's stale liveness immediately instead of waiting out
// DeadAfter.
type restartNotifier interface {
	SetRestartHandler(fn func(addr string, oldID, newID uint64))
}

// Config parameterizes a Coordinator. Net and Workers are required.
type Config struct {
	// Net carries the shard protocol; the coordinator calls Start and
	// owns Close.
	Net faultnet.Network
	// Self is this coordinator's processor id (conventionally 0).
	Self int
	// Workers lists the worker processor ids; they form the consistent-
	// hash ring for both task routing and TT ownership.
	Workers []int
	// ExpandDepth is how many plies the coordinator expands before
	// shipping the frontier as tasks (default 1: the root's children).
	ExpandDepth int
	// TaskTimeout is how long a dispatched task may stay unanswered
	// before its first reissue to the next live ring successor (default
	// 2s). Subsequent reissues back off exponentially with jitter up to
	// RetryBackoffMax.
	TaskTimeout time.Duration
	// RetryBudget bounds reissues per task: a task reissued more than
	// this many times is quarantined — settled with a QuarantineError,
	// or handed to the Fallback pool when one is configured — instead of
	// being retried forever (default 6).
	RetryBudget int
	// RetryBackoffMax caps the per-task backoff between reissues
	// (default 8x TaskTimeout).
	RetryBackoffMax time.Duration
	// Fallback, when non-nil, is a local resident pool the coordinator
	// computes leaves on when the live ring is empty or a task exhausts
	// its retry budget: answers stay exact, latency degrades, and the
	// gametree_shard_degraded gauge flips instead of requests burning to
	// their deadline. The caller owns the pool and closes it after the
	// coordinator.
	Fallback *engine.Pool
	// DeadAfter marks a worker dead when its last ping is older than
	// this (default 3s). Dead workers are routed around.
	DeadAfter time.Duration
	// HelloEvery paces the peer-table broadcast (default 1s).
	HelloEvery time.Duration
	// PeerAddrs maps processor ids to transport addresses; announced in
	// hellos so workers can open worker-to-worker TT streams. Optional.
	PeerAddrs map[int]string
	// Telemetry records ShardTasks/ShardReissues and the shard_rpc_ns
	// round-trip histogram on its shard 0. Optional.
	Telemetry *telemetry.Recorder
	// Tracer records request-scoped spans (expand/route/rpc/fold/reissue)
	// for tasks whose envelopes carry a trace ID. Optional (nil = off).
	Tracer *reqtrace.Tracer
	// RecoveryP99 is the crash-recovery threshold: after a worker death
	// is detected, recovery is declared once the windowed p99 of task RPC
	// latency falls back under it (default 500ms).
	RecoveryP99 time.Duration
}

func (c Config) withDefaults() Config {
	if c.ExpandDepth <= 0 {
		c.ExpandDepth = 1
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.HelloEvery <= 0 {
		c.HelloEvery = time.Second
	}
	if c.RecoveryP99 <= 0 {
		c.RecoveryP99 = 500 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 6
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 8 * c.TaskTimeout
	}
	return c
}

// QuarantineError is the typed failure for a task that exhausted its
// retry budget with no fallback pool to absorb it — e.g. a poison leaf
// that kills every worker it touches, on a coordinator running without
// local compute.
type QuarantineError struct {
	Task     uint64 // task id
	Key      string // routing key ("game|pos")
	Attempts int    // reissues spent before quarantine
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("shard: task %d (%s) quarantined after %d reissues", e.Task, e.Key, e.Attempts)
}

// pendingTask is one dispatched leaf awaiting its result.
type pendingTask struct {
	env       *Envelope
	key       string // routing key: "game|pos"
	to        int
	sentAt    time.Time
	first     time.Time // first dispatch, for the RPC histogram
	firstWall int64     // first dispatch, wall clock, for the rpc span
	done      chan struct{}
	res       *Envelope
	err       error

	issueEpoch uint64    // membership epoch of the latest (re)issue; results below it are fenced
	attempts   int       // reissues so far
	nextDue    time.Time // earliest next reissue (jittered exponential backoff)
	local      bool      // being computed on the fallback pool, not the ring
	settled    bool      // done closed; late results and reissues must not touch it
	degraded   bool      // answered by the fallback pool
}

// recoveryMinSamples is how many post-death RPC completions must land in
// the latency window before the p99 test can declare recovery — a guard
// against declaring victory on a near-empty window.
const recoveryMinSamples = 16

// recoveryTracker measures crash-recovery time: from the moment a
// worker's liveness lapses until the windowed p99 of task RPC latency is
// back under threshold. All methods are called under Coordinator.mu.
type recoveryTracker struct {
	threshold int64 // ns
	window    [64]int64
	n         int // filled window entries
	idx       int
	samples   int   // completions observed since the current death
	deathNs   int64 // wall ns of the death being recovered from; 0 = steady
	lastNs    int64 // duration of the most recently completed recovery
	deaths    int64
}

func (r *recoveryTracker) noteDeath(nowNs int64) {
	r.deaths++
	if r.deathNs == 0 {
		r.deathNs = nowNs
	}
	r.samples = 0
}

func (r *recoveryTracker) observe(latNs, nowNs int64) {
	r.window[r.idx] = latNs
	r.idx = (r.idx + 1) % len(r.window)
	if r.n < len(r.window) {
		r.n++
	}
	if r.deathNs == 0 {
		return
	}
	r.samples++
	if r.samples < recoveryMinSamples {
		return
	}
	if r.p99() <= r.threshold {
		r.lastNs = nowNs - r.deathNs
		r.deathNs = 0
	}
}

func (r *recoveryTracker) p99() int64 {
	buf := make([]int64, r.n)
	copy(buf, r.window[:r.n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(r.n*99)/100]
}

// Coordinator expands root positions, routes the frontier to workers by
// consistent hash, reissues timed-out tasks to ring successors, and
// folds worker results back into exact root values with the negamax
// rule. It implements the serve.Backend contract (Search), so gtserve
// can swap it in for the local pool set.
type Coordinator struct {
	cfg  Config
	ring *Ring
	tm   *telemetry.Shard

	nextID atomic.Uint64

	mu        sync.Mutex
	pending   map[uint64]*pendingTask
	lastPing  map[int]time.Time
	wasAlive  map[int]bool            // previous liveness sweep, for death-edge detection
	offsets   map[int]reqtrace.Offset // per-worker clock offsets from ping echoes
	recovery  recoveryTracker
	epoch     uint64            // membership epoch: bumps on every death edge and rejoin; coordinator is the single writer
	lastBoot  map[int]uint64    // last boot nonce seen per worker, for fast-restart detection
	deadSince map[int]time.Time // when each currently-dead worker's liveness lapsed
	peerAddrs map[int]string    // mutable copy of cfg.PeerAddrs; rejoins rewrite entries
	rng       *rand.Rand        // backoff jitter; guarded by mu
	member    map[int]bool      // ring membership, for filtering foreign pings

	rejoins       int64 // workers admitted back (epoch bumps from pings)
	fenced        int64 // stale-epoch results discarded
	quarantined   int64 // tasks that exhausted their retry budget
	degradedTasks int64 // leaves computed on the fallback pool

	localCtx    context.Context // bounds fallback-pool searches; cancelled by Close
	localCancel context.CancelFunc

	closed  chan struct{}
	closeMu sync.Mutex
	isClose bool
	wg      sync.WaitGroup
}

// NewCoordinator builds a coordinator over an un-started network. Call
// Start before Search.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		ring:      NewRing(cfg.Workers),
		tm:        cfg.Telemetry.Shard(0),
		pending:   make(map[uint64]*pendingTask),
		lastPing:  make(map[int]time.Time),
		wasAlive:  make(map[int]bool),
		offsets:   make(map[int]reqtrace.Offset),
		epoch:     1,
		lastBoot:  make(map[int]uint64),
		deadSince: make(map[int]time.Time),
		peerAddrs: make(map[int]string, len(cfg.PeerAddrs)),
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		member:    make(map[int]bool, len(cfg.Workers)),
		closed:    make(chan struct{}),
	}
	for p, a := range cfg.PeerAddrs {
		c.peerAddrs[p] = a
	}
	for _, w := range cfg.Workers {
		c.member[w] = true
	}
	c.localCtx, c.localCancel = context.WithCancel(context.Background())
	c.recovery.threshold = cfg.RecoveryP99.Nanoseconds()
	return c
}

// Start installs the delivery callback and spawns the hello and reissue
// loops. Workers start optimistic: every ring member is presumed alive
// until DeadAfter elapses without a ping.
func (c *Coordinator) Start() {
	now := time.Now()
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		c.lastPing[w] = now
		c.wasAlive[w] = true
	}
	c.mu.Unlock()
	if rn, ok := c.cfg.Net.(restartNotifier); ok {
		rn.SetRestartHandler(func(addr string, _, _ uint64) { c.peerRestarted(addr) })
	}
	c.cfg.Net.Start(c.deliver)
	c.sendHellos()
	c.wg.Add(2)
	go c.helloLoop()
	go c.reissueLoop()
}

// peerRestarted handles the transport's fresh-process signal: every
// worker routed to that address has its liveness expired on the spot, so
// the death edge (and the epoch bump that fences its ghost's results)
// lands at the next sweep instead of DeadAfter later. The fresh
// process's own pings — carrying a new boot nonce — complete the rejoin.
func (c *Coordinator) peerRestarted(addr string) {
	now := time.Now()
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		if c.peerAddrs[w] != addr {
			continue
		}
		if c.aliveLocked(w, now) {
			c.lastPing[w] = now.Add(-c.cfg.DeadAfter)
		}
	}
	c.mu.Unlock()
}

// Close stops the loops and closes the network. Idempotent. In-flight
// Searches return ErrClosed.
func (c *Coordinator) Close() {
	c.closeMu.Lock()
	if c.isClose {
		c.closeMu.Unlock()
		return
	}
	c.isClose = true
	close(c.closed)
	c.closeMu.Unlock()
	c.localCancel()
	c.wg.Wait()
	c.cfg.Net.Close()
}

// ErrClosed is returned by Search once the coordinator is closed.
var ErrClosed = fmt.Errorf("shard: coordinator closed")

func (c *Coordinator) deliver(pkt faultnet.Packet) {
	env, ok := pkt.Payload.(*Envelope)
	if !ok {
		return
	}
	switch env.Kind {
	case KindResult:
		now := time.Now()
		c.mu.Lock()
		p := c.pending[env.ID]
		if p != nil && env.Epoch != 0 && env.Epoch < p.issueEpoch {
			// Fence: this answer was computed under an issuance the ring
			// has moved past — a pre-crash ghost, or a worker answering a
			// superseded copy. Folding it could race the live reissue's
			// answer, so it is discarded, never folded.
			c.fenced++
			fencedTrace, issued := p.env.Trace, p.issueEpoch
			c.mu.Unlock()
			if fencedTrace != "" {
				c.cfg.Tracer.Record(reqtrace.Span{
					Trace: fencedTrace, Stage: reqtrace.StageRPC,
					StartNs: now.UnixNano(), Task: env.ID, Worker: pkt.From,
					Note: fmt.Sprintf("fenced epoch=%d<%d", env.Epoch, issued),
				})
			}
			return
		}
		if p != nil {
			c.settleLocked(p, env, nil)
			c.recovery.observe(now.Sub(p.first).Nanoseconds(), now.UnixNano())
		}
		c.mu.Unlock()
		if p != nil {
			if c.tm != nil {
				c.tm.Hist[telemetry.HistShardRPCNs].Observe(now.Sub(p.first).Nanoseconds())
			}
			if p.env.Trace != "" {
				c.cfg.Tracer.Record(reqtrace.Span{
					Trace: p.env.Trace, Stage: reqtrace.StageRPC,
					StartNs: p.firstWall, DurNs: now.UnixNano() - p.firstWall,
					Task: env.ID, Worker: p.to,
				})
			}
		}
	case KindPing:
		c.handlePing(pkt.From, env)
	}
}

// settleLocked finalizes a task exactly once: records the result or
// error, removes it from pending, and releases the waiter. Late results,
// duplicate reissues and the local-fallback path all funnel through
// here, so the done channel can never be closed twice. Callers hold
// c.mu.
func (c *Coordinator) settleLocked(p *pendingTask, res *Envelope, err error) bool {
	if p.settled {
		return false
	}
	p.settled = true
	p.res, p.err = res, err
	delete(c.pending, p.env.ID)
	close(p.done)
	return true
}

// handlePing refreshes liveness and admits rejoining workers. A ping
// from a ring member that was not considered alive — or whose boot
// nonce changed, catching a restart faster than DeadAfter — bumps the
// membership epoch: tasks issued from here on carry the new epoch, and
// anything the previous incarnation still answers is fenced. The
// coordinator is the single writer of the epoch; workers only echo it.
func (c *Coordinator) handlePing(from int, env *Envelope) {
	if !c.member[from] {
		return
	}
	now := time.Now()
	c.mu.Lock()
	prevAlive := c.aliveLocked(from, now)
	bootChanged := env.Boot != 0 && c.lastBoot[from] != 0 && env.Boot != c.lastBoot[from]
	if env.Boot != 0 {
		c.lastBoot[from] = env.Boot
	}
	var newAddr string
	if env.Addr != "" && c.peerAddrs[from] != env.Addr {
		c.peerAddrs[from] = env.Addr
		newAddr = env.Addr
	}
	rejoined := !prevAlive || bootChanged
	var outageNs int64
	if rejoined {
		c.epoch++
		c.rejoins++
		if t, ok := c.deadSince[from]; ok && !prevAlive {
			outageNs = now.Sub(t).Nanoseconds()
		}
		delete(c.deadSince, from)
		c.wasAlive[from] = true
	}
	c.lastPing[from] = now
	if env.EchoNs != 0 && env.SentNs != 0 {
		c.observeOffsetLocked(from, env, now)
	}
	epoch := c.epoch
	c.mu.Unlock()

	if newAddr != "" {
		// A worker restarted on a fresh port announced itself: re-route
		// its stream and let the next hello spread the address ring-wide.
		if ps, ok := c.cfg.Net.(PeerSetter); ok {
			ps.SetPeer(from, newAddr)
		}
	}
	if rejoined {
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: fmt.Sprintf("rejoin-%d", from), Stage: reqtrace.StageRejoin,
			StartNs: now.UnixNano() - outageNs, DurNs: outageNs, Worker: from,
			Note: fmt.Sprintf("epoch=%d", epoch),
		})
		// Re-announce the peer table promptly so the rejoined worker can
		// rebuild its worker-to-worker TT streams without waiting a tick.
		c.sendHellos()
	}
}

// observeOffsetLocked folds one ping echo into the per-worker clock
// offset estimate, NTP-style: the echo bounds the round trip on the
// coordinator's clock, and the worker's own send stamp at the midpoint
// gives offset = SentNs - (EchoNs + rtt/2), with error at most rtt/2.
// The lowest-RTT sample is kept, aged slightly on every rejected sample
// so a long-lived minimum cannot pin a drift-stale estimate forever
// (the TCP RTT estimator trick; see DESIGN.md). Callers hold c.mu.
func (c *Coordinator) observeOffsetLocked(from int, env *Envelope, now time.Time) {
	rtt := now.UnixNano() - env.EchoNs
	if rtt < 0 {
		return // clock stepped backwards mid-flight; discard
	}
	off := env.SentNs - (env.EchoNs + rtt/2)
	cur, ok := c.offsets[from]
	if !ok || rtt <= cur.RTTNs {
		c.offsets[from] = reqtrace.Offset{OffsetNs: off, RTTNs: rtt}
		return
	}
	cur.RTTNs += cur.RTTNs/16 + 1
	c.offsets[from] = cur
}

// ClockOffsets snapshots the per-worker clock-offset estimates for the
// tracer's /debug/gttrace dump (reqtrace.Tracer.SetOffsets).
func (c *Coordinator) ClockOffsets() map[int]reqtrace.Offset {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]reqtrace.Offset, len(c.offsets))
	for p, o := range c.offsets {
		out[p] = o
	}
	return out
}

// alive reports ping freshness. Callers hold c.mu.
func (c *Coordinator) aliveLocked(proc int, now time.Time) bool {
	last, ok := c.lastPing[proc]
	return ok && now.Sub(last) < c.cfg.DeadAfter
}

// Alive reports whether a worker is currently considered live.
func (c *Coordinator) Alive(proc int) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked(proc, now)
}

func (c *Coordinator) helloLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HelloEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sendHellos()
		}
	}
}

func (c *Coordinator) sendHellos() {
	c.mu.Lock()
	peers := make(map[string]string, len(c.peerAddrs))
	for p, a := range c.peerAddrs {
		peers[strconv.Itoa(p)] = a
	}
	epoch := c.epoch
	c.mu.Unlock()
	for _, w := range c.cfg.Workers {
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: w, Payload: &Envelope{
			Kind:   KindHello,
			Peers:  peers,
			Epoch:  epoch,
			SentNs: time.Now().UnixNano(),
		}})
	}
}

func (c *Coordinator) reissueLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.TaskTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sweepLiveness(time.Now())
			c.reissueStale()
		}
	}
}

// sweepLiveness detects alive→dead edges for the recovery clock and the
// membership epoch. Sharing the reissue tick keeps death detection at
// TaskTimeout/4 granularity, which is also the soonest a death can have
// any latency consequence.
func (c *Coordinator) sweepLiveness(now time.Time) {
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		a := c.aliveLocked(w, now)
		if c.wasAlive[w] && !a {
			c.recovery.noteDeath(now.UnixNano())
			// Membership shrank: bump the epoch so everything issued from
			// here on outranks whatever the dead worker still answers.
			c.epoch++
			c.deadSince[w] = now
		}
		c.wasAlive[w] = a
	}
	c.mu.Unlock()
}

// backoffLocked computes the wait before a task's next reissue: the
// base TaskTimeout doubled per attempt, capped at RetryBackoffMax, with
// ±25% jitter so a burst of simultaneously-stale tasks does not reissue
// in lockstep forever. Callers hold c.mu.
func (c *Coordinator) backoffLocked(attempts int) time.Duration {
	d := c.cfg.TaskTimeout
	for i := 0; i < attempts && d < c.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	return time.Duration(float64(d) * (0.75 + 0.5*c.rng.Float64()))
}

// reissueStale re-sends every pending task past its backoff deadline,
// preferring a live processor other than the one that went quiet; with
// nobody else alive it retries the same one (the transport may simply
// have dropped the frame). Each reissue is stamped with the current
// membership epoch, superseding earlier copies. A task over its retry
// budget is quarantined; quarantined tasks — and every stale task when
// the whole ring is dead — fall back to the local pool when one is
// configured.
func (c *Coordinator) reissueStale() {
	now := time.Now()
	type resend struct {
		env *Envelope
		to  int
	}
	var out []resend
	var locals []*pendingTask
	c.mu.Lock()
	for _, p := range c.pending {
		if p.local || now.Before(p.nextDue) {
			continue
		}
		p.attempts++
		if p.attempts > c.cfg.RetryBudget {
			c.quarantined++
			if c.cfg.Fallback != nil {
				p.local = true
				delete(c.pending, p.env.ID)
				locals = append(locals, p)
			} else {
				c.settleLocked(p, nil, &QuarantineError{Task: p.env.ID, Key: p.key, Attempts: p.attempts - 1})
			}
			continue
		}
		prev := p.to
		to, ok := c.ring.OwnerLiveString(p.key, func(q int) bool {
			return q != prev && c.aliveLocked(q, now)
		})
		if !ok {
			to, ok = c.ring.OwnerLiveString(p.key, func(q int) bool {
				return c.aliveLocked(q, now)
			})
			if !ok {
				if c.cfg.Fallback != nil {
					// The whole ring is dead: stop burning the retry budget
					// on a void and compute the leaf here.
					p.local = true
					delete(c.pending, p.env.ID)
					locals = append(locals, p)
					continue
				}
				to = prev // everyone looks dead: retry where it was
			}
		}
		p.to = to
		p.sentAt = now
		p.nextDue = now.Add(c.backoffLocked(p.attempts))
		p.issueEpoch = c.epoch
		// Resend a copy: the original envelope may still be in the hands
		// of an in-process delivery path.
		env := *p.env
		env.SentNs = now.UnixNano()
		env.Epoch = c.epoch
		out = append(out, resend{env: &env, to: to})
	}
	c.mu.Unlock()
	for _, p := range locals {
		c.runLocal(p)
	}
	for _, r := range out {
		if c.tm != nil {
			c.tm.ShardReissues.Add(1)
		}
		if r.env.Trace != "" {
			c.cfg.Tracer.Record(reqtrace.Span{
				Trace: r.env.Trace, Stage: reqtrace.StageReissue,
				StartNs: r.env.SentNs, Task: r.env.ID, Worker: r.to,
			})
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: r.to, Payload: r.env})
	}
}

// runLocal computes one leaf on the fallback pool and settles it as
// degraded. The answer is exactly what a worker would have produced —
// the same engine, full window — only the latency story changes.
func (c *Coordinator) runLocal(p *pendingTask) {
	c.mu.Lock()
	c.degradedTasks++
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		wall := time.Now().UnixNano()
		res := &Envelope{Kind: KindResult, ID: p.env.ID}
		pos, _, err := serve.ParsePosition(p.env.Game, p.env.Pos)
		if err == nil {
			var r engine.Result
			r, err = c.cfg.Fallback.Search(c.localCtx, pos, p.env.Depth)
			if err == nil {
				res.Value, res.Best, res.Nodes = r.Value, r.Best, r.Nodes
			}
		}
		if p.env.Trace != "" {
			c.cfg.Tracer.Record(reqtrace.Span{
				Trace: p.env.Trace, Stage: reqtrace.StageLocal,
				StartNs: wall, DurNs: time.Now().UnixNano() - wall,
				Task: p.env.ID, Worker: c.cfg.Self,
			})
		}
		c.mu.Lock()
		p.degraded = true
		if err != nil {
			c.settleLocked(p, nil, err)
		} else {
			c.settleLocked(p, res, nil)
		}
		c.mu.Unlock()
	}()
}

// expandNode is the coordinator's view of the tree above the task
// frontier: either a leaf (a task shipped to a worker) or an interior
// node folded locally.
type expandNode struct {
	children []*expandNode
	task     *pendingTask
}

// buildTree expands (game, pos) for `plies` more levels. Terminal
// positions and exhausted depth become leaves regardless of plies left.
func (c *Coordinator) buildTree(game, pos string, depth, plies int, trace string) (*expandNode, []*pendingTask, error) {
	if plies <= 0 || depth <= 0 {
		leaf := c.newTask(game, pos, depth, trace)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	children, err := serve.Expand(game, pos)
	if err != nil {
		return nil, nil, err
	}
	if len(children) == 0 {
		leaf := c.newTask(game, pos, depth, trace)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	n := &expandNode{children: make([]*expandNode, len(children))}
	var leaves []*pendingTask
	for i, ch := range children {
		sub, subLeaves, err := c.buildTree(game, ch, depth-1, plies-1, trace)
		if err != nil {
			return nil, nil, err
		}
		n.children[i] = sub
		leaves = append(leaves, subLeaves...)
	}
	return n, leaves, nil
}

func (c *Coordinator) newTask(game, pos string, depth int, trace string) *pendingTask {
	id := c.nextID.Add(1)
	return &pendingTask{
		env:  &Envelope{Kind: KindTask, ID: id, Game: game, Pos: pos, Depth: depth, Trace: trace},
		key:  game + "|" + pos,
		done: make(chan struct{}),
	}
}

// fold computes the negamax value of the expansion tree from completed
// leaf results: interior value = max over children of -child value, with
// the FIRST strict improvement winning — the same rule a sequential
// full-window negamax applies, so both the value and the root move index
// match engine.Search exactly.
func fold(n *expandNode) (value int32, best int, nodes int64, err error) {
	if n.task != nil {
		if n.task.err != nil {
			return 0, -1, 0, n.task.err
		}
		r := n.task.res
		if r.Err != "" {
			return 0, -1, 0, fmt.Errorf("shard: worker error: %s", r.Err)
		}
		return r.Value, r.Best, r.Nodes, nil
	}
	best = -1
	first := true
	for i, ch := range n.children {
		v, _, cn, cerr := fold(ch)
		if cerr != nil {
			return 0, -1, 0, cerr
		}
		nodes += cn
		if first || -v > value {
			value, best, first = -v, i, false
		}
	}
	return value, best, nodes, nil
}

// Search evaluates (game, position) to depth and returns the exact
// sequential result: the root is expanded ExpandDepth plies, the
// frontier searched on workers with full windows, and the values folded
// back with negamax. Cancelling ctx abandons the outstanding tasks
// (workers finish and their results are dropped as unknown IDs).
func (c *Coordinator) Search(ctx context.Context, game, position string, depth int) (engine.Result, error) {
	_, key, err := serve.ParsePosition(game, position)
	if err != nil {
		return engine.Result{}, err
	}
	canon := key[len(game)+1:]

	trace := reqtrace.FromContext(ctx)
	wallExpand := time.Now().UnixNano()
	root, leaves, err := c.buildTree(game, canon, depth, c.cfg.ExpandDepth, trace)
	if err != nil {
		return engine.Result{}, err
	}
	if trace != "" {
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageExpand,
			StartNs: wallExpand, DurNs: time.Now().UnixNano() - wallExpand,
			Note: fmt.Sprintf("leaves=%d", len(leaves)),
		})
	}

	// Dispatch every leaf to the live owner of its position key; with
	// nobody alive and a fallback pool configured, a leaf skips the ring
	// entirely and computes here — degraded, not hung.
	now := time.Now()
	wallRoute := now.UnixNano()
	var locals []*pendingTask
	type sendItem struct {
		to  int
		env *Envelope
	}
	var sends []sendItem
	c.mu.Lock()
	for _, p := range leaves {
		p.first = now
		p.firstWall = wallRoute
		p.issueEpoch = c.epoch
		to, ok := c.ring.OwnerLiveString(p.key, func(q int) bool { return c.aliveLocked(q, now) })
		if !ok && c.cfg.Fallback != nil {
			p.local = true
			locals = append(locals, p)
			continue
		}
		p.to = to
		p.sentAt = now
		p.nextDue = now.Add(c.cfg.TaskTimeout)
		p.env.SentNs = wallRoute
		p.env.Epoch = c.epoch
		c.pending[p.env.ID] = p
		// Snapshot the route under the lock: the reissue loop may rewrite
		// p.to / p.local the moment a task is visible in pending.
		sends = append(sends, sendItem{to: to, env: p.env})
	}
	c.mu.Unlock()
	for _, p := range locals {
		c.runLocal(p)
	}
	for _, s := range sends {
		if c.tm != nil {
			c.tm.ShardTasks.Add(1)
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: s.to, Payload: s.env})
	}
	if trace != "" {
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageRoute,
			StartNs: wallRoute, DurNs: time.Now().UnixNano() - wallRoute,
			Note: fmt.Sprintf("tasks=%d", len(leaves)),
		})
	}

	// Await every leaf (reissueLoop handles retries meanwhile).
	for _, p := range leaves {
		select {
		case <-p.done:
		case <-ctx.Done():
			c.abandon(leaves)
			return engine.Result{}, engine.ErrCancelled
		case <-c.closed:
			c.abandon(leaves)
			return engine.Result{}, ErrClosed
		}
	}

	// Any leaf answered by the fallback pool makes the whole response
	// degraded-but-exact; surface that to the serving tier.
	degraded := false
	c.mu.Lock()
	for _, p := range leaves {
		if p.degraded {
			degraded = true
			break
		}
	}
	c.mu.Unlock()
	if degraded {
		serve.MarkDegraded(ctx)
	}

	wallFold := time.Now().UnixNano()
	value, best, nodes, err := fold(root)
	if trace != "" {
		note := "ok"
		if err != nil {
			note = "err"
		}
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageFold,
			StartNs: wallFold, DurNs: time.Now().UnixNano() - wallFold,
			Note: note,
		})
	}
	if err != nil {
		return engine.Result{}, err
	}
	return engine.Result{Value: value, Best: best, Nodes: nodes}, nil
}

func (c *Coordinator) abandon(leaves []*pendingTask) {
	c.mu.Lock()
	for _, p := range leaves {
		delete(c.pending, p.env.ID)
	}
	c.mu.Unlock()
}

// Pending reports the number of outstanding tasks (for tests and the
// healthz surface).
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Epoch returns the current membership epoch. It starts at 1 and bumps
// on every membership transition: a worker's liveness lapsing, and a
// worker being admitted back.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Rejoins counts workers admitted back into the ring.
func (c *Coordinator) Rejoins() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejoins
}

// FencedResults counts stale-epoch results discarded instead of folded.
func (c *Coordinator) FencedResults() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fenced
}

// Quarantined counts tasks that exhausted their retry budget.
func (c *Coordinator) Quarantined() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// DegradedTasks counts leaves computed on the fallback pool.
func (c *Coordinator) DegradedTasks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degradedTasks
}

// DegradedMode reports whether the live ring is currently empty — the
// state in which new leaves go straight to the fallback pool.
func (c *Coordinator) DegradedMode() bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.cfg.Workers {
		if c.aliveLocked(w, now) {
			return false
		}
	}
	return true
}

// PromSection publishes ring membership, per-worker liveness and the
// crash-recovery clock for telemetry.Recorder.AddPromSection.
func (c *Coordinator) PromSection() func(io.Writer) error {
	return func(w io.Writer) error {
		now := time.Now()
		procs := append([]int(nil), c.cfg.Workers...)
		sort.Ints(procs)
		alive := make(map[int]bool, len(procs))
		anyAlive := false
		c.mu.Lock()
		for _, p := range procs {
			alive[p] = c.aliveLocked(p, now)
			anyAlive = anyAlive || alive[p]
		}
		deaths := c.recovery.deaths
		var recovering int64
		if c.recovery.deathNs != 0 {
			recovering = 1
		}
		lastNs := c.recovery.lastNs
		epoch := c.epoch
		rejoins := c.rejoins
		fenced := c.fenced
		quarantined := c.quarantined
		degradedTasks := c.degradedTasks
		c.mu.Unlock()
		var degraded int64
		if !anyAlive {
			degraded = 1
		}
		if err := writeRingMembership(w, procs); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# HELP gametree_shard_worker_alive Per-worker liveness (1 = pings fresher than -shard-dead-after).\n# TYPE gametree_shard_worker_alive gauge\n"); err != nil {
			return err
		}
		for _, p := range procs {
			v := 0
			if alive[p] {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "gametree_shard_worker_alive{proc=\"%d\"} %d\n", p, v); err != nil {
				return err
			}
		}
		if err := telemetry.PromCounter(w, "gametree_shard_worker_deaths_total",
			"Worker alive-to-dead liveness transitions observed by the coordinator.", deaths); err != nil {
			return err
		}
		if err := telemetry.PromGauge(w, "gametree_shard_recovering",
			"1 while a detected worker death has not yet passed the p99 recovery test.", recovering); err != nil {
			return err
		}
		if err := telemetry.PromGauge(w, "gametree_shard_recovery_last_ns",
			"Duration of the most recent crash recovery: death detection until windowed p99 task RPC latency fell back under threshold.", lastNs); err != nil {
			return err
		}
		if err := telemetry.PromGauge(w, "gametree_shard_epoch",
			"Current membership epoch; bumps on every worker death edge and rejoin. Results stamped below a task's issue epoch are fenced.", int64(epoch)); err != nil {
			return err
		}
		if err := telemetry.PromCounter(w, "gametree_shard_worker_rejoins_total",
			"Workers admitted back into the ring (restart or liveness recovery).", rejoins); err != nil {
			return err
		}
		if err := telemetry.PromCounter(w, "gametree_shard_fenced_results_total",
			"Stale-epoch results discarded by the fence instead of folded.", fenced); err != nil {
			return err
		}
		if err := telemetry.PromCounter(w, "gametree_shard_quarantined_total",
			"Tasks that exhausted their retry budget.", quarantined); err != nil {
			return err
		}
		if err := telemetry.PromCounter(w, "gametree_shard_degraded_tasks_total",
			"Leaves computed on the coordinator's local fallback pool.", degradedTasks); err != nil {
			return err
		}
		return telemetry.PromGauge(w, "gametree_shard_degraded",
			"1 while the live ring is empty and leaves fall back to local compute.", degraded)
	}
}

// writeRingMembership emits the ring gauges shared by every shard role.
func writeRingMembership(w io.Writer, procs []int) error {
	if err := telemetry.PromGauge(w, "gametree_shard_ring_size",
		"Worker processes in the consistent-hash ring.", int64(len(procs))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP gametree_shard_ring_member Ring membership by processor id.\n# TYPE gametree_shard_ring_member gauge\n"); err != nil {
		return err
	}
	for _, p := range procs {
		if _, err := fmt.Fprintf(w, "gametree_shard_ring_member{proc=\"%d\"} 1\n", p); err != nil {
			return err
		}
	}
	return nil
}
