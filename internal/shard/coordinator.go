package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

// PeerSetter is the optional transport capability the tier uses to
// spread addresses at runtime: the TCP transport implements it, the
// in-memory fault injector does not need it.
type PeerSetter interface {
	SetPeer(proc int, addr string)
}

// Config parameterizes a Coordinator. Net and Workers are required.
type Config struct {
	// Net carries the shard protocol; the coordinator calls Start and
	// owns Close.
	Net faultnet.Network
	// Self is this coordinator's processor id (conventionally 0).
	Self int
	// Workers lists the worker processor ids; they form the consistent-
	// hash ring for both task routing and TT ownership.
	Workers []int
	// ExpandDepth is how many plies the coordinator expands before
	// shipping the frontier as tasks (default 1: the root's children).
	ExpandDepth int
	// TaskTimeout is how long a dispatched task may stay unanswered
	// before it is reissued to the next live ring successor (default 2s).
	TaskTimeout time.Duration
	// DeadAfter marks a worker dead when its last ping is older than
	// this (default 3s). Dead workers are routed around.
	DeadAfter time.Duration
	// HelloEvery paces the peer-table broadcast (default 1s).
	HelloEvery time.Duration
	// PeerAddrs maps processor ids to transport addresses; announced in
	// hellos so workers can open worker-to-worker TT streams. Optional.
	PeerAddrs map[int]string
	// Telemetry records ShardTasks/ShardReissues and the shard_rpc_ns
	// round-trip histogram on its shard 0. Optional.
	Telemetry *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.ExpandDepth <= 0 {
		c.ExpandDepth = 1
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.HelloEvery <= 0 {
		c.HelloEvery = time.Second
	}
	return c
}

// pendingTask is one dispatched leaf awaiting its result.
type pendingTask struct {
	env    *Envelope
	key    string // routing key: "game|pos"
	to     int
	sentAt time.Time
	first  time.Time // first dispatch, for the RPC histogram
	done   chan struct{}
	res    *Envelope
}

// Coordinator expands root positions, routes the frontier to workers by
// consistent hash, reissues timed-out tasks to ring successors, and
// folds worker results back into exact root values with the negamax
// rule. It implements the serve.Backend contract (Search), so gtserve
// can swap it in for the local pool set.
type Coordinator struct {
	cfg  Config
	ring *Ring
	tm   *telemetry.Shard

	nextID atomic.Uint64

	mu       sync.Mutex
	pending  map[uint64]*pendingTask
	lastPing map[int]time.Time

	closed  chan struct{}
	closeMu sync.Mutex
	isClose bool
	wg      sync.WaitGroup
}

// NewCoordinator builds a coordinator over an un-started network. Call
// Start before Search.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Workers),
		tm:       cfg.Telemetry.Shard(0),
		pending:  make(map[uint64]*pendingTask),
		lastPing: make(map[int]time.Time),
		closed:   make(chan struct{}),
	}
	return c
}

// Start installs the delivery callback and spawns the hello and reissue
// loops. Workers start optimistic: every ring member is presumed alive
// until DeadAfter elapses without a ping.
func (c *Coordinator) Start() {
	now := time.Now()
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		c.lastPing[w] = now
	}
	c.mu.Unlock()
	c.cfg.Net.Start(c.deliver)
	c.sendHellos()
	c.wg.Add(2)
	go c.helloLoop()
	go c.reissueLoop()
}

// Close stops the loops and closes the network. Idempotent. In-flight
// Searches return ErrClosed.
func (c *Coordinator) Close() {
	c.closeMu.Lock()
	if c.isClose {
		c.closeMu.Unlock()
		return
	}
	c.isClose = true
	close(c.closed)
	c.closeMu.Unlock()
	c.wg.Wait()
	c.cfg.Net.Close()
}

// ErrClosed is returned by Search once the coordinator is closed.
var ErrClosed = fmt.Errorf("shard: coordinator closed")

func (c *Coordinator) deliver(pkt faultnet.Packet) {
	env, ok := pkt.Payload.(*Envelope)
	if !ok {
		return
	}
	switch env.Kind {
	case KindResult:
		c.mu.Lock()
		p := c.pending[env.ID]
		if p != nil {
			delete(c.pending, env.ID)
			p.res = env
			close(p.done)
		}
		c.mu.Unlock()
		if p != nil && c.tm != nil {
			c.tm.Hist[telemetry.HistShardRPCNs].Observe(time.Since(p.first).Nanoseconds())
		}
	case KindPing:
		c.mu.Lock()
		c.lastPing[pkt.From] = time.Now()
		c.mu.Unlock()
	}
}

// alive reports ping freshness. Callers hold c.mu.
func (c *Coordinator) aliveLocked(proc int, now time.Time) bool {
	last, ok := c.lastPing[proc]
	return ok && now.Sub(last) < c.cfg.DeadAfter
}

// Alive reports whether a worker is currently considered live.
func (c *Coordinator) Alive(proc int) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked(proc, now)
}

func (c *Coordinator) helloLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HelloEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sendHellos()
		}
	}
}

func (c *Coordinator) sendHellos() {
	peers := make(map[string]string, len(c.cfg.PeerAddrs))
	for p, a := range c.cfg.PeerAddrs {
		peers[strconv.Itoa(p)] = a
	}
	for _, w := range c.cfg.Workers {
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: w, Payload: &Envelope{
			Kind:   KindHello,
			Peers:  peers,
			SentNs: time.Now().UnixNano(),
		}})
	}
}

func (c *Coordinator) reissueLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.TaskTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.reissueStale()
		}
	}
}

// reissueStale re-sends every pending task older than TaskTimeout,
// preferring a live processor other than the one that went quiet; with
// nobody else alive it retries the same one (the transport may simply
// have dropped the frame).
func (c *Coordinator) reissueStale() {
	now := time.Now()
	type resend struct {
		env *Envelope
		to  int
	}
	var out []resend
	c.mu.Lock()
	for _, p := range c.pending {
		if now.Sub(p.sentAt) < c.cfg.TaskTimeout {
			continue
		}
		prev := p.to
		to, ok := c.ring.OwnerLiveString(p.key, func(q int) bool {
			return q != prev && c.aliveLocked(q, now)
		})
		if !ok {
			to, ok = c.ring.OwnerLiveString(p.key, func(q int) bool {
				return c.aliveLocked(q, now)
			})
			if !ok {
				to = prev // everyone looks dead: retry where it was
			}
		}
		p.to = to
		p.sentAt = now
		// Resend a copy: the original envelope may still be in the hands
		// of an in-process delivery path.
		env := *p.env
		env.SentNs = now.UnixNano()
		out = append(out, resend{env: &env, to: to})
	}
	c.mu.Unlock()
	for _, r := range out {
		if c.tm != nil {
			c.tm.ShardReissues.Add(1)
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: r.to, Payload: r.env})
	}
}

// expandNode is the coordinator's view of the tree above the task
// frontier: either a leaf (a task shipped to a worker) or an interior
// node folded locally.
type expandNode struct {
	children []*expandNode
	task     *pendingTask
}

// buildTree expands (game, pos) for `plies` more levels. Terminal
// positions and exhausted depth become leaves regardless of plies left.
func (c *Coordinator) buildTree(game, pos string, depth, plies int) (*expandNode, []*pendingTask, error) {
	if plies <= 0 || depth <= 0 {
		leaf := c.newTask(game, pos, depth)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	children, err := serve.Expand(game, pos)
	if err != nil {
		return nil, nil, err
	}
	if len(children) == 0 {
		leaf := c.newTask(game, pos, depth)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	n := &expandNode{children: make([]*expandNode, len(children))}
	var leaves []*pendingTask
	for i, ch := range children {
		sub, subLeaves, err := c.buildTree(game, ch, depth-1, plies-1)
		if err != nil {
			return nil, nil, err
		}
		n.children[i] = sub
		leaves = append(leaves, subLeaves...)
	}
	return n, leaves, nil
}

func (c *Coordinator) newTask(game, pos string, depth int) *pendingTask {
	id := c.nextID.Add(1)
	return &pendingTask{
		env:  &Envelope{Kind: KindTask, ID: id, Game: game, Pos: pos, Depth: depth},
		key:  game + "|" + pos,
		done: make(chan struct{}),
	}
}

// fold computes the negamax value of the expansion tree from completed
// leaf results: interior value = max over children of -child value, with
// the FIRST strict improvement winning — the same rule a sequential
// full-window negamax applies, so both the value and the root move index
// match engine.Search exactly.
func fold(n *expandNode) (value int32, best int, nodes int64, err error) {
	if n.task != nil {
		r := n.task.res
		if r.Err != "" {
			return 0, -1, 0, fmt.Errorf("shard: worker error: %s", r.Err)
		}
		return r.Value, r.Best, r.Nodes, nil
	}
	best = -1
	first := true
	for i, ch := range n.children {
		v, _, cn, cerr := fold(ch)
		if cerr != nil {
			return 0, -1, 0, cerr
		}
		nodes += cn
		if first || -v > value {
			value, best, first = -v, i, false
		}
	}
	return value, best, nodes, nil
}

// Search evaluates (game, position) to depth and returns the exact
// sequential result: the root is expanded ExpandDepth plies, the
// frontier searched on workers with full windows, and the values folded
// back with negamax. Cancelling ctx abandons the outstanding tasks
// (workers finish and their results are dropped as unknown IDs).
func (c *Coordinator) Search(ctx context.Context, game, position string, depth int) (engine.Result, error) {
	_, key, err := serve.ParsePosition(game, position)
	if err != nil {
		return engine.Result{}, err
	}
	canon := key[len(game)+1:]

	root, leaves, err := c.buildTree(game, canon, depth, c.cfg.ExpandDepth)
	if err != nil {
		return engine.Result{}, err
	}

	// Dispatch every leaf to the live owner of its position key.
	now := time.Now()
	c.mu.Lock()
	for _, p := range leaves {
		to, _ := c.ring.OwnerLiveString(p.key, func(q int) bool { return c.aliveLocked(q, now) })
		p.to = to
		p.sentAt = now
		p.first = now
		p.env.SentNs = now.UnixNano()
		c.pending[p.env.ID] = p
	}
	c.mu.Unlock()
	for _, p := range leaves {
		if c.tm != nil {
			c.tm.ShardTasks.Add(1)
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: p.to, Payload: p.env})
	}

	// Await every leaf (reissueLoop handles retries meanwhile).
	for _, p := range leaves {
		select {
		case <-p.done:
		case <-ctx.Done():
			c.abandon(leaves)
			return engine.Result{}, engine.ErrCancelled
		case <-c.closed:
			c.abandon(leaves)
			return engine.Result{}, ErrClosed
		}
	}

	value, best, nodes, err := fold(root)
	if err != nil {
		return engine.Result{}, err
	}
	return engine.Result{Value: value, Best: best, Nodes: nodes}, nil
}

func (c *Coordinator) abandon(leaves []*pendingTask) {
	c.mu.Lock()
	for _, p := range leaves {
		delete(c.pending, p.env.ID)
	}
	c.mu.Unlock()
}

// Pending reports the number of outstanding tasks (for tests and the
// healthz surface).
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
