package shard

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

// PeerSetter is the optional transport capability the tier uses to
// spread addresses at runtime: the TCP transport implements it, the
// in-memory fault injector does not need it.
type PeerSetter interface {
	SetPeer(proc int, addr string)
}

// Config parameterizes a Coordinator. Net and Workers are required.
type Config struct {
	// Net carries the shard protocol; the coordinator calls Start and
	// owns Close.
	Net faultnet.Network
	// Self is this coordinator's processor id (conventionally 0).
	Self int
	// Workers lists the worker processor ids; they form the consistent-
	// hash ring for both task routing and TT ownership.
	Workers []int
	// ExpandDepth is how many plies the coordinator expands before
	// shipping the frontier as tasks (default 1: the root's children).
	ExpandDepth int
	// TaskTimeout is how long a dispatched task may stay unanswered
	// before it is reissued to the next live ring successor (default 2s).
	TaskTimeout time.Duration
	// DeadAfter marks a worker dead when its last ping is older than
	// this (default 3s). Dead workers are routed around.
	DeadAfter time.Duration
	// HelloEvery paces the peer-table broadcast (default 1s).
	HelloEvery time.Duration
	// PeerAddrs maps processor ids to transport addresses; announced in
	// hellos so workers can open worker-to-worker TT streams. Optional.
	PeerAddrs map[int]string
	// Telemetry records ShardTasks/ShardReissues and the shard_rpc_ns
	// round-trip histogram on its shard 0. Optional.
	Telemetry *telemetry.Recorder
	// Tracer records request-scoped spans (expand/route/rpc/fold/reissue)
	// for tasks whose envelopes carry a trace ID. Optional (nil = off).
	Tracer *reqtrace.Tracer
	// RecoveryP99 is the crash-recovery threshold: after a worker death
	// is detected, recovery is declared once the windowed p99 of task RPC
	// latency falls back under it (default 500ms).
	RecoveryP99 time.Duration
}

func (c Config) withDefaults() Config {
	if c.ExpandDepth <= 0 {
		c.ExpandDepth = 1
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.HelloEvery <= 0 {
		c.HelloEvery = time.Second
	}
	if c.RecoveryP99 <= 0 {
		c.RecoveryP99 = 500 * time.Millisecond
	}
	return c
}

// pendingTask is one dispatched leaf awaiting its result.
type pendingTask struct {
	env       *Envelope
	key       string // routing key: "game|pos"
	to        int
	sentAt    time.Time
	first     time.Time // first dispatch, for the RPC histogram
	firstWall int64     // first dispatch, wall clock, for the rpc span
	done      chan struct{}
	res       *Envelope
}

// recoveryMinSamples is how many post-death RPC completions must land in
// the latency window before the p99 test can declare recovery — a guard
// against declaring victory on a near-empty window.
const recoveryMinSamples = 16

// recoveryTracker measures crash-recovery time: from the moment a
// worker's liveness lapses until the windowed p99 of task RPC latency is
// back under threshold. All methods are called under Coordinator.mu.
type recoveryTracker struct {
	threshold int64 // ns
	window    [64]int64
	n         int // filled window entries
	idx       int
	samples   int   // completions observed since the current death
	deathNs   int64 // wall ns of the death being recovered from; 0 = steady
	lastNs    int64 // duration of the most recently completed recovery
	deaths    int64
}

func (r *recoveryTracker) noteDeath(nowNs int64) {
	r.deaths++
	if r.deathNs == 0 {
		r.deathNs = nowNs
	}
	r.samples = 0
}

func (r *recoveryTracker) observe(latNs, nowNs int64) {
	r.window[r.idx] = latNs
	r.idx = (r.idx + 1) % len(r.window)
	if r.n < len(r.window) {
		r.n++
	}
	if r.deathNs == 0 {
		return
	}
	r.samples++
	if r.samples < recoveryMinSamples {
		return
	}
	if r.p99() <= r.threshold {
		r.lastNs = nowNs - r.deathNs
		r.deathNs = 0
	}
}

func (r *recoveryTracker) p99() int64 {
	buf := make([]int64, r.n)
	copy(buf, r.window[:r.n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(r.n*99)/100]
}

// Coordinator expands root positions, routes the frontier to workers by
// consistent hash, reissues timed-out tasks to ring successors, and
// folds worker results back into exact root values with the negamax
// rule. It implements the serve.Backend contract (Search), so gtserve
// can swap it in for the local pool set.
type Coordinator struct {
	cfg  Config
	ring *Ring
	tm   *telemetry.Shard

	nextID atomic.Uint64

	mu       sync.Mutex
	pending  map[uint64]*pendingTask
	lastPing map[int]time.Time
	wasAlive map[int]bool            // previous liveness sweep, for death-edge detection
	offsets  map[int]reqtrace.Offset // per-worker clock offsets from ping echoes
	recovery recoveryTracker

	closed  chan struct{}
	closeMu sync.Mutex
	isClose bool
	wg      sync.WaitGroup
}

// NewCoordinator builds a coordinator over an un-started network. Call
// Start before Search.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Workers),
		tm:       cfg.Telemetry.Shard(0),
		pending:  make(map[uint64]*pendingTask),
		lastPing: make(map[int]time.Time),
		wasAlive: make(map[int]bool),
		offsets:  make(map[int]reqtrace.Offset),
		closed:   make(chan struct{}),
	}
	c.recovery.threshold = cfg.RecoveryP99.Nanoseconds()
	return c
}

// Start installs the delivery callback and spawns the hello and reissue
// loops. Workers start optimistic: every ring member is presumed alive
// until DeadAfter elapses without a ping.
func (c *Coordinator) Start() {
	now := time.Now()
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		c.lastPing[w] = now
		c.wasAlive[w] = true
	}
	c.mu.Unlock()
	c.cfg.Net.Start(c.deliver)
	c.sendHellos()
	c.wg.Add(2)
	go c.helloLoop()
	go c.reissueLoop()
}

// Close stops the loops and closes the network. Idempotent. In-flight
// Searches return ErrClosed.
func (c *Coordinator) Close() {
	c.closeMu.Lock()
	if c.isClose {
		c.closeMu.Unlock()
		return
	}
	c.isClose = true
	close(c.closed)
	c.closeMu.Unlock()
	c.wg.Wait()
	c.cfg.Net.Close()
}

// ErrClosed is returned by Search once the coordinator is closed.
var ErrClosed = fmt.Errorf("shard: coordinator closed")

func (c *Coordinator) deliver(pkt faultnet.Packet) {
	env, ok := pkt.Payload.(*Envelope)
	if !ok {
		return
	}
	switch env.Kind {
	case KindResult:
		now := time.Now()
		c.mu.Lock()
		p := c.pending[env.ID]
		if p != nil {
			delete(c.pending, env.ID)
			p.res = env
			close(p.done)
			c.recovery.observe(now.Sub(p.first).Nanoseconds(), now.UnixNano())
		}
		c.mu.Unlock()
		if p != nil {
			if c.tm != nil {
				c.tm.Hist[telemetry.HistShardRPCNs].Observe(now.Sub(p.first).Nanoseconds())
			}
			if p.env.Trace != "" {
				c.cfg.Tracer.Record(reqtrace.Span{
					Trace: p.env.Trace, Stage: reqtrace.StageRPC,
					StartNs: p.firstWall, DurNs: now.UnixNano() - p.firstWall,
					Task: env.ID, Worker: p.to,
				})
			}
		}
	case KindPing:
		now := time.Now()
		c.mu.Lock()
		c.lastPing[pkt.From] = now
		if env.EchoNs != 0 && env.SentNs != 0 {
			c.observeOffsetLocked(pkt.From, env, now)
		}
		c.mu.Unlock()
	}
}

// observeOffsetLocked folds one ping echo into the per-worker clock
// offset estimate, NTP-style: the echo bounds the round trip on the
// coordinator's clock, and the worker's own send stamp at the midpoint
// gives offset = SentNs - (EchoNs + rtt/2), with error at most rtt/2.
// The lowest-RTT sample is kept, aged slightly on every rejected sample
// so a long-lived minimum cannot pin a drift-stale estimate forever
// (the TCP RTT estimator trick; see DESIGN.md). Callers hold c.mu.
func (c *Coordinator) observeOffsetLocked(from int, env *Envelope, now time.Time) {
	rtt := now.UnixNano() - env.EchoNs
	if rtt < 0 {
		return // clock stepped backwards mid-flight; discard
	}
	off := env.SentNs - (env.EchoNs + rtt/2)
	cur, ok := c.offsets[from]
	if !ok || rtt <= cur.RTTNs {
		c.offsets[from] = reqtrace.Offset{OffsetNs: off, RTTNs: rtt}
		return
	}
	cur.RTTNs += cur.RTTNs/16 + 1
	c.offsets[from] = cur
}

// ClockOffsets snapshots the per-worker clock-offset estimates for the
// tracer's /debug/gttrace dump (reqtrace.Tracer.SetOffsets).
func (c *Coordinator) ClockOffsets() map[int]reqtrace.Offset {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]reqtrace.Offset, len(c.offsets))
	for p, o := range c.offsets {
		out[p] = o
	}
	return out
}

// alive reports ping freshness. Callers hold c.mu.
func (c *Coordinator) aliveLocked(proc int, now time.Time) bool {
	last, ok := c.lastPing[proc]
	return ok && now.Sub(last) < c.cfg.DeadAfter
}

// Alive reports whether a worker is currently considered live.
func (c *Coordinator) Alive(proc int) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked(proc, now)
}

func (c *Coordinator) helloLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HelloEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sendHellos()
		}
	}
}

func (c *Coordinator) sendHellos() {
	peers := make(map[string]string, len(c.cfg.PeerAddrs))
	for p, a := range c.cfg.PeerAddrs {
		peers[strconv.Itoa(p)] = a
	}
	for _, w := range c.cfg.Workers {
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: w, Payload: &Envelope{
			Kind:   KindHello,
			Peers:  peers,
			SentNs: time.Now().UnixNano(),
		}})
	}
}

func (c *Coordinator) reissueLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.TaskTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sweepLiveness(time.Now())
			c.reissueStale()
		}
	}
}

// sweepLiveness detects alive→dead edges for the recovery clock. Sharing
// the reissue tick keeps death detection at TaskTimeout/4 granularity,
// which is also the soonest a death can have any latency consequence.
func (c *Coordinator) sweepLiveness(now time.Time) {
	c.mu.Lock()
	for _, w := range c.cfg.Workers {
		a := c.aliveLocked(w, now)
		if c.wasAlive[w] && !a {
			c.recovery.noteDeath(now.UnixNano())
		}
		c.wasAlive[w] = a
	}
	c.mu.Unlock()
}

// reissueStale re-sends every pending task older than TaskTimeout,
// preferring a live processor other than the one that went quiet; with
// nobody else alive it retries the same one (the transport may simply
// have dropped the frame).
func (c *Coordinator) reissueStale() {
	now := time.Now()
	type resend struct {
		env *Envelope
		to  int
	}
	var out []resend
	c.mu.Lock()
	for _, p := range c.pending {
		if now.Sub(p.sentAt) < c.cfg.TaskTimeout {
			continue
		}
		prev := p.to
		to, ok := c.ring.OwnerLiveString(p.key, func(q int) bool {
			return q != prev && c.aliveLocked(q, now)
		})
		if !ok {
			to, ok = c.ring.OwnerLiveString(p.key, func(q int) bool {
				return c.aliveLocked(q, now)
			})
			if !ok {
				to = prev // everyone looks dead: retry where it was
			}
		}
		p.to = to
		p.sentAt = now
		// Resend a copy: the original envelope may still be in the hands
		// of an in-process delivery path.
		env := *p.env
		env.SentNs = now.UnixNano()
		out = append(out, resend{env: &env, to: to})
	}
	c.mu.Unlock()
	for _, r := range out {
		if c.tm != nil {
			c.tm.ShardReissues.Add(1)
		}
		if r.env.Trace != "" {
			c.cfg.Tracer.Record(reqtrace.Span{
				Trace: r.env.Trace, Stage: reqtrace.StageReissue,
				StartNs: r.env.SentNs, Task: r.env.ID, Worker: r.to,
			})
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: r.to, Payload: r.env})
	}
}

// expandNode is the coordinator's view of the tree above the task
// frontier: either a leaf (a task shipped to a worker) or an interior
// node folded locally.
type expandNode struct {
	children []*expandNode
	task     *pendingTask
}

// buildTree expands (game, pos) for `plies` more levels. Terminal
// positions and exhausted depth become leaves regardless of plies left.
func (c *Coordinator) buildTree(game, pos string, depth, plies int, trace string) (*expandNode, []*pendingTask, error) {
	if plies <= 0 || depth <= 0 {
		leaf := c.newTask(game, pos, depth, trace)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	children, err := serve.Expand(game, pos)
	if err != nil {
		return nil, nil, err
	}
	if len(children) == 0 {
		leaf := c.newTask(game, pos, depth, trace)
		return &expandNode{task: leaf}, []*pendingTask{leaf}, nil
	}
	n := &expandNode{children: make([]*expandNode, len(children))}
	var leaves []*pendingTask
	for i, ch := range children {
		sub, subLeaves, err := c.buildTree(game, ch, depth-1, plies-1, trace)
		if err != nil {
			return nil, nil, err
		}
		n.children[i] = sub
		leaves = append(leaves, subLeaves...)
	}
	return n, leaves, nil
}

func (c *Coordinator) newTask(game, pos string, depth int, trace string) *pendingTask {
	id := c.nextID.Add(1)
	return &pendingTask{
		env:  &Envelope{Kind: KindTask, ID: id, Game: game, Pos: pos, Depth: depth, Trace: trace},
		key:  game + "|" + pos,
		done: make(chan struct{}),
	}
}

// fold computes the negamax value of the expansion tree from completed
// leaf results: interior value = max over children of -child value, with
// the FIRST strict improvement winning — the same rule a sequential
// full-window negamax applies, so both the value and the root move index
// match engine.Search exactly.
func fold(n *expandNode) (value int32, best int, nodes int64, err error) {
	if n.task != nil {
		r := n.task.res
		if r.Err != "" {
			return 0, -1, 0, fmt.Errorf("shard: worker error: %s", r.Err)
		}
		return r.Value, r.Best, r.Nodes, nil
	}
	best = -1
	first := true
	for i, ch := range n.children {
		v, _, cn, cerr := fold(ch)
		if cerr != nil {
			return 0, -1, 0, cerr
		}
		nodes += cn
		if first || -v > value {
			value, best, first = -v, i, false
		}
	}
	return value, best, nodes, nil
}

// Search evaluates (game, position) to depth and returns the exact
// sequential result: the root is expanded ExpandDepth plies, the
// frontier searched on workers with full windows, and the values folded
// back with negamax. Cancelling ctx abandons the outstanding tasks
// (workers finish and their results are dropped as unknown IDs).
func (c *Coordinator) Search(ctx context.Context, game, position string, depth int) (engine.Result, error) {
	_, key, err := serve.ParsePosition(game, position)
	if err != nil {
		return engine.Result{}, err
	}
	canon := key[len(game)+1:]

	trace := reqtrace.FromContext(ctx)
	wallExpand := time.Now().UnixNano()
	root, leaves, err := c.buildTree(game, canon, depth, c.cfg.ExpandDepth, trace)
	if err != nil {
		return engine.Result{}, err
	}
	if trace != "" {
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageExpand,
			StartNs: wallExpand, DurNs: time.Now().UnixNano() - wallExpand,
			Note: fmt.Sprintf("leaves=%d", len(leaves)),
		})
	}

	// Dispatch every leaf to the live owner of its position key.
	now := time.Now()
	wallRoute := now.UnixNano()
	c.mu.Lock()
	for _, p := range leaves {
		to, _ := c.ring.OwnerLiveString(p.key, func(q int) bool { return c.aliveLocked(q, now) })
		p.to = to
		p.sentAt = now
		p.first = now
		p.firstWall = wallRoute
		p.env.SentNs = wallRoute
		c.pending[p.env.ID] = p
	}
	c.mu.Unlock()
	for _, p := range leaves {
		if c.tm != nil {
			c.tm.ShardTasks.Add(1)
		}
		c.cfg.Net.Send(faultnet.Packet{From: c.cfg.Self, To: p.to, Payload: p.env})
	}
	if trace != "" {
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageRoute,
			StartNs: wallRoute, DurNs: time.Now().UnixNano() - wallRoute,
			Note: fmt.Sprintf("tasks=%d", len(leaves)),
		})
	}

	// Await every leaf (reissueLoop handles retries meanwhile).
	for _, p := range leaves {
		select {
		case <-p.done:
		case <-ctx.Done():
			c.abandon(leaves)
			return engine.Result{}, engine.ErrCancelled
		case <-c.closed:
			c.abandon(leaves)
			return engine.Result{}, ErrClosed
		}
	}

	wallFold := time.Now().UnixNano()
	value, best, nodes, err := fold(root)
	if trace != "" {
		note := "ok"
		if err != nil {
			note = "err"
		}
		c.cfg.Tracer.Record(reqtrace.Span{
			Trace: trace, Stage: reqtrace.StageFold,
			StartNs: wallFold, DurNs: time.Now().UnixNano() - wallFold,
			Note: note,
		})
	}
	if err != nil {
		return engine.Result{}, err
	}
	return engine.Result{Value: value, Best: best, Nodes: nodes}, nil
}

func (c *Coordinator) abandon(leaves []*pendingTask) {
	c.mu.Lock()
	for _, p := range leaves {
		delete(c.pending, p.env.ID)
	}
	c.mu.Unlock()
}

// Pending reports the number of outstanding tasks (for tests and the
// healthz surface).
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// PromSection publishes ring membership, per-worker liveness and the
// crash-recovery clock for telemetry.Recorder.AddPromSection.
func (c *Coordinator) PromSection() func(io.Writer) error {
	return func(w io.Writer) error {
		now := time.Now()
		procs := append([]int(nil), c.cfg.Workers...)
		sort.Ints(procs)
		alive := make(map[int]bool, len(procs))
		c.mu.Lock()
		for _, p := range procs {
			alive[p] = c.aliveLocked(p, now)
		}
		deaths := c.recovery.deaths
		var recovering int64
		if c.recovery.deathNs != 0 {
			recovering = 1
		}
		lastNs := c.recovery.lastNs
		c.mu.Unlock()
		if err := writeRingMembership(w, procs); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# HELP gametree_shard_worker_alive Per-worker liveness (1 = pings fresher than -shard-dead-after).\n# TYPE gametree_shard_worker_alive gauge\n"); err != nil {
			return err
		}
		for _, p := range procs {
			v := 0
			if alive[p] {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "gametree_shard_worker_alive{proc=\"%d\"} %d\n", p, v); err != nil {
				return err
			}
		}
		if err := telemetry.PromCounter(w, "gametree_shard_worker_deaths_total",
			"Worker alive-to-dead liveness transitions observed by the coordinator.", deaths); err != nil {
			return err
		}
		if err := telemetry.PromGauge(w, "gametree_shard_recovering",
			"1 while a detected worker death has not yet passed the p99 recovery test.", recovering); err != nil {
			return err
		}
		return telemetry.PromGauge(w, "gametree_shard_recovery_last_ns",
			"Duration of the most recent crash recovery: death detection until windowed p99 task RPC latency fell back under threshold.", lastNs)
	}
}

// writeRingMembership emits the ring gauges shared by every shard role.
func writeRingMembership(w io.Writer, procs []int) error {
	if err := telemetry.PromGauge(w, "gametree_shard_ring_size",
		"Worker processes in the consistent-hash ring.", int64(len(procs))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP gametree_shard_ring_member Ring membership by processor id.\n# TYPE gametree_shard_ring_member gauge\n"); err != nil {
		return err
	}
	for _, p := range procs {
		if _, err := fmt.Fprintf(w, "gametree_shard_ring_member{proc=\"%d\"} 1\n", p); err != nil {
			return err
		}
	}
	return nil
}
